#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/convex_hull.hpp"
#include "geom/grid_index.hpp"
#include "geom/location.hpp"
#include "geom/point.hpp"
#include "geom/polygon.hpp"
#include "geom/rtree.hpp"
#include "sim/random.hpp"

namespace stem::geom {
namespace {

TEST(PointTest, VectorOps) {
  const Point a{1, 2}, b{4, 6};
  EXPECT_EQ(a + b, (Point{5, 8}));
  EXPECT_EQ(b - a, (Point{3, 4}));
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 16.0);
  EXPECT_DOUBLE_EQ(cross(a, b), -2.0);
  EXPECT_GT(orientation({0, 0}, {1, 0}, {1, 1}), 0.0);  // CCW
  EXPECT_LT(orientation({0, 0}, {1, 0}, {1, -1}), 0.0);  // CW
  EXPECT_DOUBLE_EQ(orientation({0, 0}, {1, 1}, {2, 2}), 0.0);  // collinear
}

TEST(BBoxTest, EmptyAndExpand) {
  BoundingBox b;
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.intersects(b));
  b.expand(Point{1, 1});
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.area(), 0.0);
  b.expand(Point{3, 5});
  EXPECT_DOUBLE_EQ(b.area(), 8.0);
  EXPECT_TRUE(b.contains(Point{2, 3}));
  EXPECT_FALSE(b.contains(Point{0, 0}));
}

TEST(BBoxTest, IntersectContainEnlarge) {
  const BoundingBox a({0, 0}, {4, 4});
  const BoundingBox b({2, 2}, {6, 6});
  const BoundingBox c({5, 5}, {7, 7});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.contains(BoundingBox({1, 1}, {2, 2})));
  EXPECT_FALSE(a.contains(b));
  EXPECT_DOUBLE_EQ(a.enlargement(b), 36.0 - 16.0);
  EXPECT_EQ(a.united(c), BoundingBox({0, 0}, {7, 7}));
}

TEST(PolygonTest, RejectsDegenerate) {
  EXPECT_THROW(Polygon(std::vector<Point>{{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(PolygonTest, AreaCentroidPerimeter) {
  const Polygon sq = Polygon::rectangle({0, 0}, {4, 2});
  EXPECT_DOUBLE_EQ(sq.area(), 8.0);
  EXPECT_DOUBLE_EQ(sq.perimeter(), 12.0);
  const Point c = sq.centroid();
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);

  // Winding direction must not change the absolute area.
  const Polygon cw({{0, 0}, {0, 2}, {4, 2}, {4, 0}});
  EXPECT_DOUBLE_EQ(cw.area(), 8.0);
  EXPECT_LT(cw.signed_area() * sq.signed_area(), 0.0);
}

TEST(PolygonTest, ContainsPointIncludingBoundary) {
  const Polygon tri({{0, 0}, {10, 0}, {0, 10}});
  EXPECT_TRUE(tri.contains({1, 1}));
  EXPECT_TRUE(tri.contains({0, 0}));       // vertex
  EXPECT_TRUE(tri.contains({5, 0}));       // edge
  EXPECT_TRUE(tri.contains({5, 5}));       // hypotenuse
  EXPECT_FALSE(tri.contains({6, 6}));
  EXPECT_FALSE(tri.contains({-1, 0}));
}

TEST(PolygonTest, ContainsPointNonConvex) {
  // A "U" shape: region between the prongs is outside.
  const Polygon u({{0, 0}, {6, 0}, {6, 5}, {4, 5}, {4, 2}, {2, 2}, {2, 5}, {0, 5}});
  EXPECT_TRUE(u.contains({1, 4}));   // left prong
  EXPECT_TRUE(u.contains({5, 4}));   // right prong
  EXPECT_TRUE(u.contains({3, 1}));   // base
  EXPECT_FALSE(u.contains({3, 4}));  // notch
}

TEST(PolygonTest, PolygonContainsPolygon) {
  const Polygon outer = Polygon::rectangle({0, 0}, {10, 10});
  const Polygon inner = Polygon::rectangle({2, 2}, {4, 4});
  const Polygon cross = Polygon::rectangle({8, 8}, {12, 12});
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_FALSE(outer.contains(cross));
}

TEST(PolygonTest, IntersectsCoversAllRegimes) {
  const Polygon a = Polygon::rectangle({0, 0}, {4, 4});
  EXPECT_TRUE(a.intersects(Polygon::rectangle({2, 2}, {6, 6})));   // overlap
  EXPECT_TRUE(a.intersects(Polygon::rectangle({4, 0}, {8, 4})));   // shared edge
  EXPECT_TRUE(a.intersects(Polygon::rectangle({1, 1}, {2, 2})));   // containment
  EXPECT_TRUE(Polygon::rectangle({1, 1}, {2, 2}).intersects(a));   // containment, flipped
  EXPECT_FALSE(a.intersects(Polygon::rectangle({5, 5}, {6, 6})));  // disjoint
}

TEST(PolygonTest, DistanceToPoint) {
  const Polygon sq = Polygon::rectangle({0, 0}, {4, 4});
  EXPECT_DOUBLE_EQ(sq.distance_to({2, 2}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(sq.distance_to({6, 2}), 2.0);   // right of edge
  EXPECT_DOUBLE_EQ(sq.distance_to({7, 8}), 5.0);   // 3-4-5 to corner (4,4)
}

TEST(PolygonTest, DiskApproximation) {
  const Polygon d = Polygon::disk({0, 0}, 10.0, 64);
  EXPECT_NEAR(d.area(), 100.0 * std::numbers::pi, 2.0);
  EXPECT_TRUE(d.contains({0, 0}));
  EXPECT_TRUE(d.contains({9.5, 0}));
  EXPECT_FALSE(d.contains({10.5, 0}));
  EXPECT_THROW(Polygon::disk({0, 0}, -1.0), std::invalid_argument);
  EXPECT_THROW(Polygon::disk({0, 0}, 1.0, 2), std::invalid_argument);
}

TEST(PolygonTest, TranslatedPreservesShape) {
  const Polygon tri({{0, 0}, {3, 0}, {0, 3}});
  const Polygon moved = tri.translated({10, 20});
  EXPECT_DOUBLE_EQ(moved.area(), tri.area());
  EXPECT_TRUE(moved.contains({10.5, 20.5}));
  EXPECT_FALSE(moved.contains({0.5, 0.5}));
}

TEST(SegmentTest, IntersectionCases) {
  EXPECT_TRUE(segments_intersect({0, 0}, {4, 4}, {0, 4}, {4, 0}));   // proper cross
  EXPECT_TRUE(segments_intersect({0, 0}, {4, 0}, {4, 0}, {4, 4}));   // shared endpoint
  EXPECT_TRUE(segments_intersect({0, 0}, {4, 0}, {2, 0}, {6, 0}));   // collinear overlap
  EXPECT_FALSE(segments_intersect({0, 0}, {4, 0}, {5, 0}, {6, 0}));  // collinear disjoint
  EXPECT_FALSE(segments_intersect({0, 0}, {4, 0}, {0, 1}, {4, 1}));  // parallel
}

TEST(SegmentTest, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 5}, {-2, 0}, {2, 0}), 5.0);  // projects inside
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 4}, {-2, 0}, {2, 0}), 5.0);  // clamps to endpoint
  EXPECT_DOUBLE_EQ(point_segment_distance({1, 1}, {1, 1}, {1, 1}), 0.0);   // degenerate segment
}

TEST(ConvexHullTest, BasicHull) {
  const auto hull = convex_hull({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 1}});
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(hull->size(), 4u);
  EXPECT_DOUBLE_EQ(hull->area(), 16.0);
  EXPECT_GT(hull->signed_area(), 0.0);  // CCW
}

TEST(ConvexHullTest, CollinearAndTooFewPoints) {
  EXPECT_FALSE(convex_hull({{0, 0}, {1, 1}}).has_value());
  EXPECT_FALSE(convex_hull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).has_value());
  EXPECT_FALSE(convex_hull({{1, 1}, {1, 1}, {1, 1}}).has_value());
}

TEST(ConvexHullTest, HullContainsAllInputs) {
  sim::Rng rng(42);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  const auto hull = convex_hull(pts);
  ASSERT_TRUE(hull.has_value());
  for (const Point& p : pts) EXPECT_TRUE(hull->contains(p)) << p.x << "," << p.y;
}

// --- Location & spatial operators ----------------------------------------

TEST(LocationTest, PointFieldBasics) {
  const Location p(Point{1, 2});
  const Location f(Polygon::rectangle({0, 0}, {4, 4}));
  EXPECT_TRUE(p.is_point());
  EXPECT_TRUE(f.is_field());
  EXPECT_EQ(p.representative(), (Point{1, 2}));
  EXPECT_TRUE(almost_equal(f.representative(), {2, 2}));
  EXPECT_TRUE(f.covers({1, 1}));
  EXPECT_FALSE(f.covers({5, 5}));
  EXPECT_TRUE(p.covers({1, 2}));
}

TEST(SpatialOpTest, PointPoint) {
  const Location a(Point{1, 1}), b(Point{1, 1}), c(Point{2, 2});
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kEqual, b));
  EXPECT_FALSE(eval_spatial(a, SpatialOp::kEqual, c));
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kJoint, b));
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kOutside, c));
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kInside, b));  // coincident point
  EXPECT_FALSE(eval_spatial(a, SpatialOp::kInside, c));
}

TEST(SpatialOpTest, PointField) {
  const Location p(Point{2, 2});
  const Location out(Point{9, 9});
  const Location f(Polygon::rectangle({0, 0}, {4, 4}));
  EXPECT_TRUE(eval_spatial(p, SpatialOp::kInside, f));
  EXPECT_TRUE(eval_spatial(f, SpatialOp::kContains, p));
  EXPECT_TRUE(eval_spatial(out, SpatialOp::kOutside, f));
  EXPECT_FALSE(eval_spatial(p, SpatialOp::kOutside, f));
  EXPECT_FALSE(eval_spatial(p, SpatialOp::kEqual, f));  // mixed kinds never equal
}

TEST(SpatialOpTest, FieldField) {
  const Location a(Polygon::rectangle({0, 0}, {4, 4}));
  const Location b(Polygon::rectangle({2, 2}, {6, 6}));
  const Location inner(Polygon::rectangle({1, 1}, {2, 2}));
  const Location far(Polygon::rectangle({10, 10}, {12, 12}));
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kJoint, b));
  EXPECT_TRUE(eval_spatial(inner, SpatialOp::kInside, a));
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kContains, inner));
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kOutside, far));
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kDisjoint, far));
  EXPECT_TRUE(eval_spatial(a, SpatialOp::kEqual, a));
  EXPECT_FALSE(eval_spatial(a, SpatialOp::kEqual, b));
}

TEST(SpatialOpTest, DistanceBetweenLocations) {
  const Location p(Point{0, 0});
  const Location q(Point{3, 4});
  const Location f(Polygon::rectangle({10, 0}, {12, 2}));
  EXPECT_DOUBLE_EQ(location_distance(p, q), 5.0);
  EXPECT_DOUBLE_EQ(location_distance(p, f), 10.0);
  EXPECT_DOUBLE_EQ(location_distance(f, p), 10.0);
  const Location g(Polygon::rectangle({11, 1}, {13, 3}));
  EXPECT_DOUBLE_EQ(location_distance(f, g), 0.0);  // joint
  const Location h(Polygon::rectangle({15, 0}, {16, 2}));
  EXPECT_DOUBLE_EQ(location_distance(f, h), 3.0);
}

TEST(SpatialOpTest, StringRoundTrip) {
  for (const SpatialOp op : {SpatialOp::kEqual, SpatialOp::kInside, SpatialOp::kOutside,
                             SpatialOp::kContains, SpatialOp::kJoint, SpatialOp::kDisjoint}) {
    EXPECT_EQ(spatial_op_from_string(to_string(op)), op);
  }
  EXPECT_FALSE(spatial_op_from_string("around").has_value());
}

TEST(SpatialAggregateTest, CentroidHullUnionBox) {
  const std::vector<Location> locs = {Location(Point{0, 0}), Location(Point{4, 0}),
                                      Location(Point{4, 4}), Location(Point{0, 4})};
  const Location c = aggregate_locations(SpatialAggregate::kCentroid, locs.data(), locs.size());
  ASSERT_TRUE(c.is_point());
  EXPECT_TRUE(almost_equal(c.as_point(), {2, 2}));

  const Location h = aggregate_locations(SpatialAggregate::kHull, locs.data(), locs.size());
  ASSERT_TRUE(h.is_field());
  EXPECT_DOUBLE_EQ(h.as_field().area(), 16.0);

  const Location u = aggregate_locations(SpatialAggregate::kUnionBox, locs.data(), locs.size());
  ASSERT_TRUE(u.is_field());
  EXPECT_DOUBLE_EQ(u.as_field().area(), 16.0);
}

TEST(SpatialAggregateTest, HullDegradesToCentroidForCollinear) {
  const std::vector<Location> locs = {Location(Point{0, 0}), Location(Point{2, 2})};
  const Location h = aggregate_locations(SpatialAggregate::kHull, locs.data(), locs.size());
  ASSERT_TRUE(h.is_point());
  EXPECT_TRUE(almost_equal(h.as_point(), {1, 1}));
}

TEST(SpatialAggregateTest, EmptyThrows) {
  EXPECT_THROW(aggregate_locations(SpatialAggregate::kCentroid, nullptr, 0),
               std::invalid_argument);
}

// --- Spatial indexes: results must match brute force. ---------------------

struct IndexFixture : public ::testing::Test {
  void SetUp() override {
    sim::Rng rng(1234);
    for (int i = 0; i < 500; ++i) {
      const Point lo{rng.uniform(0, 1000), rng.uniform(0, 1000)};
      const Point hi{lo.x + rng.uniform(0.1, 20), lo.y + rng.uniform(0.1, 20)};
      boxes.emplace_back(lo, hi);
    }
    for (int i = 0; i < 50; ++i) {
      const Point lo{rng.uniform(-50, 1000), rng.uniform(-50, 1000)};
      const Point hi{lo.x + rng.uniform(1, 120), lo.y + rng.uniform(1, 120)};
      queries.emplace_back(lo, hi);
    }
  }

  [[nodiscard]] std::vector<int> brute(const BoundingBox& q) const {
    std::vector<int> out;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].intersects(q)) out.push_back(static_cast<int>(i));
    }
    return out;
  }

  std::vector<BoundingBox> boxes;
  std::vector<BoundingBox> queries;
};

TEST_F(IndexFixture, GridMatchesBruteForce) {
  GridIndex<int> grid(25.0);
  for (std::size_t i = 0; i < boxes.size(); ++i) grid.insert(boxes[i], static_cast<int>(i));
  EXPECT_EQ(grid.size(), boxes.size());
  for (const auto& q : queries) {
    auto got = grid.query(q);
    auto want = brute(q);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST_F(IndexFixture, RTreeMatchesBruteForce) {
  RTree<int> tree;
  for (std::size_t i = 0; i < boxes.size(); ++i) tree.insert(boxes[i], static_cast<int>(i));
  EXPECT_EQ(tree.size(), boxes.size());
  EXPECT_GT(tree.height(), 1u);  // 500 entries must have split
  for (const auto& q : queries) {
    auto got = tree.query(q);
    auto want = brute(q);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST_F(IndexFixture, RTreeVisitMatchesQuery) {
  RTree<int> tree;
  for (std::size_t i = 0; i < boxes.size(); ++i) tree.insert(boxes[i], static_cast<int>(i));
  for (const auto& q : queries) {
    std::vector<int> visited;
    tree.visit(q, [&](const int& v) { visited.push_back(v); });
    auto direct = tree.query(q);
    std::sort(visited.begin(), visited.end());
    std::sort(direct.begin(), direct.end());
    EXPECT_EQ(visited, direct);
  }
}

TEST_F(IndexFixture, GridEraseMatchesBruteForce) {
  // Erase every third entry (plus churn via reinsertion) and check the
  // index still answers exactly like a brute-force scan of the survivors.
  GridIndex<int> grid(25.0);
  for (std::size_t i = 0; i < boxes.size(); ++i) grid.insert(boxes[i], static_cast<int>(i));
  std::vector<bool> alive(boxes.size(), true);
  for (std::size_t i = 0; i < boxes.size(); i += 3) {
    EXPECT_TRUE(grid.erase(boxes[i], static_cast<int>(i)));
    alive[i] = false;
  }
  EXPECT_FALSE(grid.erase(boxes[0], static_cast<int>(0)));  // already gone
  // Freed entry records are reused by later insertions.
  for (std::size_t i = 0; i < boxes.size(); i += 6) {
    grid.insert(boxes[i], static_cast<int>(i));
    alive[i] = true;
  }
  for (const auto& q : queries) {
    auto got = grid.query(q);
    std::vector<int> want;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (alive[i] && boxes[i].intersects(q)) want.push_back(static_cast<int>(i));
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST_F(IndexFixture, RTreeEraseMatchesBruteForce) {
  RTree<int> tree;
  for (std::size_t i = 0; i < boxes.size(); ++i) tree.insert(boxes[i], static_cast<int>(i));
  std::vector<bool> alive(boxes.size(), true);
  for (std::size_t i = 0; i < boxes.size(); i += 3) {
    EXPECT_TRUE(tree.erase(boxes[i], static_cast<int>(i)));
    alive[i] = false;
  }
  EXPECT_FALSE(tree.erase(boxes[0], static_cast<int>(0)));
  for (std::size_t i = 0; i < boxes.size(); i += 6) {
    tree.insert(boxes[i], static_cast<int>(i));
    alive[i] = true;
  }
  for (const auto& q : queries) {
    auto got = tree.query(q);
    std::vector<int> want;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (alive[i] && boxes[i].intersects(q)) want.push_back(static_cast<int>(i));
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST(RTreeTest, EraseToEmptyAndRefill) {
  RTree<int> t;
  for (int i = 0; i < 40; ++i) {
    t.insert(BoundingBox({double(i), 0.0}, {double(i) + 1.0, 1.0}), i);
  }
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(t.erase(BoundingBox({double(i), 0.0}, {double(i) + 1.0, 1.0}), i));
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1u);  // single-child root chains collapsed
  t.insert(BoundingBox({0, 0}, {1, 1}), 99);
  EXPECT_EQ(t.query(BoundingBox({0, 0}, {2, 2})), std::vector<int>{99});
}

TEST(GridIndexTest, RejectsBadInput) {
  EXPECT_THROW(GridIndex<int>(0.0), std::invalid_argument);
  GridIndex<int> g(10.0);
  EXPECT_THROW(g.insert(BoundingBox(), 1), std::invalid_argument);
  EXPECT_TRUE(g.query(BoundingBox({0, 0}, {1, 1})).empty());
}

TEST(RTreeTest, EmptyAndClear) {
  RTree<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.query(BoundingBox({0, 0}, {1, 1})).empty());
  t.insert(BoundingBox({0, 0}, {1, 1}), 7);
  EXPECT_EQ(t.size(), 1u);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t.insert(BoundingBox(), 1), std::invalid_argument);
}

}  // namespace
}  // namespace stem::geom
