#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

/// Differential concurrency suite: the sharded runtime's merged instance
/// stream must be *exactly* equal — same instances, same order, same
/// sequence numbers — to a single sequential DetectionEngine fed the same
/// arrivals, across shard counts {1, 2, 4, 8}, ingest batch sizes
/// {1, 16, 256}, both consumption modes, wildcard-definition replication
/// (a shard hosting an any-filter definition receives the full stream),
/// same-event-type co-location, and tight-queue backpressure. Mirrors
/// tests/engine_index_test.cpp, with the sequential engine — itself
/// differentially verified against the seed semantics — as the reference.

namespace stem::runtime {
namespace {

using core::ConsumptionMode;
using core::DetectionEngine;
using core::EventDefinition;
using core::EventInstance;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

core::PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq,
                              TimePoint t, Point p, double value) {
  core::PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

/// A definition mix that stresses every placement/routing rule: keyed
/// thresholds (threshold sub-index routing), spatial/temporal joins
/// across sensors (multi-key definitions), a self-binding pair, two
/// definitions *sharing an event type* (must be co-located or sequence
/// numbers diverge), a wildcard single-slot definition and a wildcard
/// join slot (their host shards must see the full stream).
std::vector<EventDefinition> shard_definitions(ConsumptionMode mode, const std::string& tag) {
  std::vector<EventDefinition> defs;

  EventDefinition hot{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      mode};
  hot.synthesis.attributes.push_back(
      core::AttributeRule{"value", core::ValueAggregate::kMax, "value", {0}});
  defs.push_back(hot);

  // Same event type as HOT, different sensor and threshold: shares HOT's
  // instance sequence counter, so the runtime must co-locate the two.
  defs.push_back(EventDefinition{EventTypeId("HOT_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 40.0),
                                 seconds(60),
                                 {},
                                 mode});

  // Spatial + temporal join across two sensors.
  defs.push_back(EventDefinition{EventTypeId("NEAR_" + tag),
                                 {{"a", SlotFilter::observation(SensorId("SRa"))},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                              core::c_distance(0, 1, core::RelationalOp::kLt, 8.0)}),
                                 seconds(4),
                                 {},
                                 mode});

  // Self-binding pair: both slots accept the same sensor.
  defs.push_back(EventDefinition{EventTypeId("PAIR_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRc"))},
                                  {"y", SlotFilter::observation(SensorId("SRc"))}},
                                 core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                              core::c_distance(0, 1, core::RelationalOp::kLt, 12.0)}),
                                 seconds(5),
                                 {},
                                 mode});

  // Wildcard single-slot definition: its shard receives every arrival.
  defs.push_back(EventDefinition{EventTypeId("WILD_" + tag),
                                 {{"w", SlotFilter::any()}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 85.0),
                                 seconds(60),
                                 {},
                                 mode});

  // Wildcard join slot: replication must interleave with a keyed slot.
  defs.push_back(EventDefinition{EventTypeId("WNEAR_" + tag),
                                 {{"w", SlotFilter::any()},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                              core::c_distance(0, 1, core::RelationalOp::kLt, 6.0)}),
                                 seconds(3),
                                 {},
                                 mode});

  // 3-way join with an OR branch.
  defs.push_back(EventDefinition{
      EventTypeId("TRIO_" + tag),
      {{"a", SlotFilter::observation(SensorId("SRa"))},
       {"b", SlotFilter::observation(SensorId("SRb"))},
       {"c", SlotFilter::observation(SensorId("SRc"))}},
      core::c_and(
          {core::c_distance(0, 1, core::RelationalOp::kLt, 9.0),
           core::c_or({core::c_distance(1, 2, core::RelationalOp::kLt, 6.0),
                       core::c_attr(core::ValueAggregate::kMin, "value", {0, 1, 2},
                                    core::RelationalOp::kGt, 75.0)})}),
      seconds(3),
      {},
      mode});

  return defs;
}

struct Stream {
  std::vector<core::Entity> entities;
  std::vector<TimePoint> nows;
};

Stream make_stream(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  const char* sensors[] = {"SRa", "SRb", "SRc", "SRd"};  // SRd only matches wildcards
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(100 + rng.uniform_int(0, 900));
    const auto* sensor = sensors[rng.uniform_int(0, 3)];
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 1500));
    s.entities.push_back(core::Entity(obs(static_cast<int>(rng.uniform_int(1, 4)), sensor,
                                          static_cast<std::uint64_t>(i), t,
                                          {rng.uniform(0, 24), rng.uniform(0, 24)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

void run_differential(std::uint64_t seed, std::size_t shards, std::size_t batch_size,
                      ConsumptionMode mode, const std::string& tag,
                      std::size_t queue_capacity = 4096) {
  RuntimeOptions options;
  options.shards = shards;
  options.queue_capacity = queue_capacity;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  for (const EventDefinition& def : shard_definitions(mode, tag)) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  const Stream stream = make_stream(seed, 320);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst : sequential.observe(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }

  std::vector<std::string> got;
  const auto collect = [&](std::vector<EventInstance> instances) {
    for (const EventInstance& inst : instances) got.push_back(describe(inst));
  };
  for (std::size_t i = 0; i < stream.entities.size(); i += batch_size) {
    const std::size_t n = std::min(batch_size, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
    collect(sharded.poll());
  }
  collect(sharded.flush());

  const std::string ctx = tag + " seed=" + std::to_string(seed) +
                          " shards=" + std::to_string(shards) +
                          " batch=" + std::to_string(batch_size);
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k], want[k]) << ctx << " instance " << k;
  }

  // Counter invariants at quiescence: every instance merged exactly once,
  // every delivery observed by exactly one shard engine.
  const RuntimeStats stats = sharded.stats();
  EXPECT_EQ(stats.instances, want.size()) << ctx;
  EXPECT_EQ(stats.engine.instances_out, stats.instances) << ctx;
  EXPECT_EQ(stats.engine.entities_in, stats.deliveries) << ctx;
  EXPECT_GE(stats.deliveries, stats.arrivals) << ctx;
  EXPECT_EQ(stats.arrivals + stats.dropped, stream.entities.size()) << ctx;
}

class ShardedVsSequentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedVsSequentialTest, UnrestrictedStreamsMatch) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t batch : {1u, 16u, 256u}) {
      run_differential(GetParam(), shards, batch, ConsumptionMode::kUnrestricted, "U");
    }
  }
}

TEST_P(ShardedVsSequentialTest, ConsumeStreamsMatch) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t batch : {1u, 16u, 256u}) {
      run_differential(GetParam() ^ 0x5eedULL, shards, batch, ConsumptionMode::kConsume, "C");
    }
  }
}

TEST_P(ShardedVsSequentialTest, TightQueueBackpressureStreamsMatch) {
  // A 8-arrival inbox forces ingest to block on the workers repeatedly;
  // ordering and equality must survive the throttling.
  run_differential(GetParam() ^ 0xbacULL, 4, 16, ConsumptionMode::kUnrestricted, "Q", 8);
  run_differential(GetParam() ^ 0xbac2ULL, 8, 256, ConsumptionMode::kConsume, "Q2", 8);
}

TEST_P(ShardedVsSequentialTest, TinyCapacityConstantWrapStreamsMatch) {
  // capacity {1,2}: the ring wraps on (almost) every push, producers park
  // and wake constantly, and batches larger than the capacity take the
  // oversized-batch admission path — the ordering contract must hold
  // under permanent backpressure.
  for (const std::size_t capacity : {1u, 2u}) {
    run_differential(GetParam() ^ 0x71c0ULL, 4, 1, ConsumptionMode::kUnrestricted,
                     "T" + std::to_string(capacity), capacity);
    run_differential(GetParam() ^ 0x71c1ULL, 2, 16, ConsumptionMode::kConsume,
                     "T" + std::to_string(capacity) + "b", capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedVsSequentialTest, ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(ShardPlacement, SameEventTypeCoLocated) {
  RuntimeOptions options;
  options.shards = 8;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def :
       shard_definitions(ConsumptionMode::kUnrestricted, "P")) {
    rt.add_definition(def);
  }
  // Definitions 0 and 1 share EventTypeId "HOT_P".
  EXPECT_EQ(rt.shard_of(0), rt.shard_of(1));
  EXPECT_EQ(rt.definition_count(), 7u);
  EXPECT_EQ(rt.shard_count(), 8u);
}

TEST(ShardPlacement, DefinitionsSpreadAcrossShards) {
  // 16 independent single-sensor definitions over 4 shards: least-loaded
  // placement must balance them exactly.
  RuntimeOptions options;
  options.shards = 4;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (int i = 0; i < 16; ++i) {
    rt.add_definition(EventDefinition{
        EventTypeId("D" + std::to_string(i)),
        {{"x", SlotFilter::observation(SensorId("SR" + std::to_string(i)))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
        seconds(60),
        {},
        ConsumptionMode::kConsume});
  }
  std::vector<int> load(4, 0);
  for (std::size_t d = 0; d < rt.definition_count(); ++d) ++load[rt.shard_of(d)];
  for (const int l : load) EXPECT_EQ(l, 4);
}

TEST(ShardPlacement, AddDefinitionAfterIngestThrows) {
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0});
  rt.add_definition(EventDefinition{
      EventTypeId("D"),
      {{"x", SlotFilter::observation(SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
      seconds(60),
      {},
      ConsumptionMode::kConsume});
  rt.ingest(core::Entity(obs(1, "SR", 0, TimePoint::epoch(), {0, 0}, 80.0)), TimePoint::epoch());
  EXPECT_THROW(rt.add_definition(EventDefinition{
                   EventTypeId("E"),
                   {{"x", SlotFilter::observation(SensorId("SR"))}},
                   core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                core::RelationalOp::kGt, 50.0),
                   seconds(60),
                   {},
                   ConsumptionMode::kConsume}),
               std::logic_error);
  EXPECT_EQ(rt.flush().size(), 1u);
}

}  // namespace
}  // namespace stem::runtime
