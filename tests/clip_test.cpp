#include <gtest/gtest.h>

#include "geom/clip.hpp"
#include "sim/random.hpp"

namespace stem::geom {
namespace {

TEST(ConvexityTest, ClassifiesShapes) {
  EXPECT_TRUE(is_convex(Polygon::rectangle({0, 0}, {4, 4})));
  EXPECT_TRUE(is_convex(Polygon::disk({0, 0}, 5, 16)));
  EXPECT_TRUE(is_convex(Polygon({{0, 0}, {4, 0}, {2, 3}})));
  // A "U" shape is not convex.
  EXPECT_FALSE(is_convex(
      Polygon({{0, 0}, {6, 0}, {6, 5}, {4, 5}, {4, 2}, {2, 2}, {2, 5}, {0, 5}})));
  // Collinear vertices don't break convexity.
  EXPECT_TRUE(is_convex(Polygon({{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}})));
}

TEST(ClipTest, RectangleOverlap) {
  const Polygon a = Polygon::rectangle({0, 0}, {4, 4});
  const Polygon b = Polygon::rectangle({2, 2}, {6, 6});
  const auto clipped = clip_convex(a, b);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_NEAR(clipped->area(), 4.0, 1e-9);  // 2x2 overlap
  EXPECT_NEAR(intersection_area(a, b), 4.0, 1e-9);
  EXPECT_NEAR(intersection_area(b, a), 4.0, 1e-9);  // symmetric
}

TEST(ClipTest, DisjointAndContained) {
  const Polygon a = Polygon::rectangle({0, 0}, {4, 4});
  const Polygon far = Polygon::rectangle({10, 10}, {12, 12});
  EXPECT_FALSE(clip_convex(a, far).has_value());
  EXPECT_DOUBLE_EQ(intersection_area(a, far), 0.0);

  const Polygon inner = Polygon::rectangle({1, 1}, {2, 2});
  EXPECT_NEAR(intersection_area(a, inner), inner.area(), 1e-9);
  EXPECT_NEAR(intersection_area(inner, a), inner.area(), 1e-9);
}

TEST(ClipTest, ClipWindingDoesNotMatter) {
  const Polygon subject = Polygon::rectangle({0, 0}, {4, 4});
  const Polygon ccw({{2, 2}, {6, 2}, {6, 6}, {2, 6}});
  const Polygon cw({{2, 2}, {2, 6}, {6, 6}, {6, 2}});
  EXPECT_NEAR(intersection_area(subject, ccw), intersection_area(subject, cw), 1e-9);
}

TEST(ClipTest, NonConvexSubjectAgainstConvexClip) {
  // U-shape clipped by a rect covering one prong.
  const Polygon u({{0, 0}, {6, 0}, {6, 5}, {4, 5}, {4, 2}, {2, 2}, {2, 5}, {0, 5}});
  const Polygon clip = Polygon::rectangle({0, 3}, {2, 5});
  EXPECT_NEAR(intersection_area(u, clip), 4.0, 1e-9);  // left prong part
}

TEST(ClipTest, NeitherConvexThrows) {
  const Polygon u({{0, 0}, {6, 0}, {6, 5}, {4, 5}, {4, 2}, {2, 2}, {2, 5}, {0, 5}});
  EXPECT_THROW((void)intersection_area(u, u.translated({1, 0})), std::invalid_argument);
}

TEST(ClipTest, IouProperties) {
  const Polygon a = Polygon::rectangle({0, 0}, {4, 4});
  EXPECT_NEAR(iou(a, a), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(iou(a, Polygon::rectangle({10, 10}, {11, 11})), 0.0);
  const double half = iou(a, Polygon::rectangle({2, 0}, {6, 4}));
  EXPECT_NEAR(half, 8.0 / 24.0, 1e-9);  // overlap 8, union 24
}

TEST(ClipTest, RandomizedInclusionExclusionOnDisks) {
  // Property sweep: for random convex pairs, intersection area is
  // symmetric, bounded by min(area), and IoU is in [0, 1].
  sim::Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const Polygon a = Polygon::disk({rng.uniform(0, 50), rng.uniform(0, 50)},
                                    rng.uniform(3, 15), 20);
    const Polygon b = Polygon::disk({rng.uniform(0, 50), rng.uniform(0, 50)},
                                    rng.uniform(3, 15), 20);
    const double ab = intersection_area(a, b);
    const double ba = intersection_area(b, a);
    EXPECT_NEAR(ab, ba, 1e-6);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, std::min(a.area(), b.area()) + 1e-9);
    const double j = iou(a, b);
    EXPECT_GE(j, 0.0);
    EXPECT_LE(j, 1.0 + 1e-12);
    // Consistency with the boolean predicate.
    if (ab > 1e-9) {
      EXPECT_TRUE(a.intersects(b));
    }
  }
}

TEST(ClipTest, IdenticalDisksFullOverlap) {
  const Polygon d = Polygon::disk({5, 5}, 4, 24);
  EXPECT_NEAR(intersection_area(d, d), d.area(), 1e-9);
}

}  // namespace
}  // namespace stem::geom
