#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/routing.hpp"
#include "sim/random.hpp"

/// Engine-level migration units: extract_definition_state /
/// implant_definition_state must hand a definition's full dynamic state —
/// partial-match buffers (with cross-slot stamp identity), sequence
/// counters, horizon watermarks, spatial-index backing — to another
/// engine so the split pipeline emits exactly what one engine would have;
/// and RoutingIndex::remove must be the exact refcounted inverse of add.

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

PhysicalObservation obs(const char* sensor, std::uint64_t seq, TimePoint t, Point where,
                        double value) {
  PhysicalObservation o;
  o.mote = ObserverId("MT1");
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(where);
  o.attributes.set("value", value);
  return o;
}

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

/// A mix that exercises every piece of migrated state: a threshold (seq
/// counter continuity), a co-located second definition of the same type
/// (shared counter), a consume-mode self-join (cross-slot stamp
/// identity), and a retain-mode spatial join whose buffer crosses the
/// spatial-index activation threshold (index rebuild on implant).
std::vector<EventDefinition> state_mix() {
  std::vector<EventDefinition> defs;
  defs.push_back(EventDefinition{
      EventTypeId("TH"),
      {{"x", SlotFilter::observation(SensorId("SRa"))}},
      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 50.0),
      seconds(60),
      {},
      ConsumptionMode::kConsume});
  defs.push_back(EventDefinition{
      EventTypeId("TH"),  // same type: shares TH's sequence counter
      {{"x", SlotFilter::observation(SensorId("SRb"))}},
      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 70.0),
      seconds(60),
      {},
      ConsumptionMode::kConsume});
  defs.push_back(EventDefinition{
      EventTypeId("SELF"),
      {{"x", SlotFilter::observation(SensorId("SRc"))},
       {"y", SlotFilter::observation(SensorId("SRc"))}},
      c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
             c_distance(0, 1, RelationalOp::kLt, 10.0)}),
      seconds(30),
      {},
      ConsumptionMode::kConsume});
  defs.push_back(EventDefinition{
      EventTypeId("NEAR"),
      {{"a", SlotFilter::observation(SensorId("SRa"))},
       {"b", SlotFilter::observation(SensorId("SRb"))}},
      c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
             c_distance(0, 1, RelationalOp::kLt, 6.0)}),
      seconds(3600),  // never prunes: buffers grow past index activation
      {},
      ConsumptionMode::kUnrestricted});
  return defs;
}

struct Arrival {
  Entity entity;
  TimePoint now;
};

std::vector<Arrival> make_arrivals(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  std::vector<Arrival> out;
  TimePoint now = TimePoint::epoch();
  const char* sensors[] = {"SRa", "SRb", "SRc"};
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(50 + rng.uniform_int(0, 400));
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 800));
    out.push_back(Arrival{Entity(obs(sensors[rng.uniform_int(0, 2)],
                                     static_cast<std::uint64_t>(i), t,
                                     {rng.uniform(0, 16), rng.uniform(0, 16)},
                                     rng.uniform(0, 100))),
                          now});
  }
  return out;
}

/// Splits the stream at `cut`: engine A processes everything up to it,
/// then the chosen definitions migrate to a fresh engine B, and both
/// engines see the rest of the stream (each detecting with the
/// definitions it holds, as the sharded runtime's shards do). The
/// concatenated per-arrival emissions must match one uninterrupted
/// engine exactly.
void run_split_differential(std::uint64_t seed, std::size_t cut,
                            const std::vector<std::size_t>& moved) {
  const auto defs = state_mix();
  DetectionEngine whole(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  DetectionEngine a(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  DetectionEngine b(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  for (const EventDefinition& def : defs) {
    whole.add_definition(def);
    a.add_definition(def);
  }

  const auto arrivals = make_arrivals(seed, 200);
  std::vector<std::string> want;
  std::vector<std::string> got;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (i == cut) {
      for (const std::size_t d : moved) {
        b.implant_definition_state(a.extract_definition_state(d));
      }
    }
    for (const EventInstance& inst : whole.observe(arrivals[i].entity, arrivals[i].now)) {
      want.push_back(describe(inst));
    }
    // B's definitions keep their relative (registration) order in this
    // mix, so A-then-B concatenation preserves within-arrival order for
    // the moved tail; the runtime's merge handles the general reorder.
    for (const EventInstance& inst : a.observe(arrivals[i].entity, arrivals[i].now)) {
      got.push_back(describe(inst));
    }
    if (i >= cut) {
      for (const EventInstance& inst : b.observe(arrivals[i].entity, arrivals[i].now)) {
        got.push_back(describe(inst));
      }
    }
  }
  ASSERT_EQ(got.size(), want.size()) << "seed=" << seed << " cut=" << cut;
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k], want[k]) << "seed=" << seed << " cut=" << cut << " instance " << k;
  }
}

TEST(EngineMigrationTest, SplitStreamMatchesWholeAcrossCutsAndGroups) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    // Move the co-located TH pair (indices 0+1, tail of the order), the
    // consume-mode self-join, and the retain-mode spatial join.
    run_split_differential(seed, 60, {2, 3});
    run_split_differential(seed ^ 0xfeedULL, 97, {3});
    run_split_differential(seed ^ 0xbeefULL, 140, {2});
  }
}

TEST(EngineMigrationTest, SequenceCounterContinuesAcrossMigration) {
  DetectionEngine a(ObserverId("OB"), Layer::kSensor, {0, 0});
  DetectionEngine b(ObserverId("OB"), Layer::kSensor, {0, 0});
  a.add_definition(state_mix()[0]);  // TH threshold

  auto fire = [](DetectionEngine& eng, std::uint64_t seq, TimePoint t) {
    return eng.observe(Entity(obs("SRa", seq, t, {0, 0}, 90.0)), t);
  };
  const auto first = fire(a, 0, TimePoint(1000));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].key.seq, 0u);

  b.implant_definition_state(a.extract_definition_state(0));
  const auto second = fire(b, 1, TimePoint(2000));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].key.seq, 1u);  // continuous, not reset

  // Round-trip back: the counter keeps counting on A again.
  a.implant_definition_state(b.extract_definition_state(0));
  const auto third = fire(a, 2, TimePoint(3000));
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0].key.seq, 2u);
}

TEST(EngineMigrationTest, ExtractTombstonesAndImplantReusesTheSlot) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  const auto defs = state_mix();
  for (const EventDefinition& def : defs) eng.add_definition(def);
  ASSERT_EQ(eng.definition_count(), 4u);

  auto state = eng.extract_definition_state(1);
  EXPECT_EQ(eng.definition_count(), 3u);
  // Double extract and out-of-range extract are rejected.
  EXPECT_THROW((void)eng.extract_definition_state(1), std::out_of_range);
  EXPECT_THROW((void)eng.extract_definition_state(9), std::out_of_range);

  // The tombstoned index is reused, so indices of the other definitions
  // (and the tags of their emissions) never shift.
  EXPECT_EQ(eng.implant_definition_state(std::move(state)), 1u);
  EXPECT_EQ(eng.definition_count(), 4u);
}

TEST(EngineMigrationTest, ExtractedDefinitionStopsDetecting) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  eng.add_definition(state_mix()[0]);
  const auto state = eng.extract_definition_state(0);
  EXPECT_EQ(state.def.id.value(), "TH");
  // No routing entries remain: the arrival is not even counted as routed.
  const auto out = eng.observe(Entity(obs("SRa", 0, TimePoint(1000), {0, 0}, 99.0)),
                               TimePoint(1000));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(eng.stats().bindings_tried, 0u);
}

TEST(EngineMigrationTest, BufferedStateCarriesWatermarkAndLoads) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  eng.add_definition(state_mix()[2]);  // SELF join, 30 s window
  const TimePoint t0(1'000'000);
  (void)eng.observe(Entity(obs("SRc", 0, t0, {1, 1}, 10.0)), t0);

  const auto state = eng.extract_definition_state(0);
  ASSERT_EQ(state.buffers.size(), 2u);
  EXPECT_EQ(state.buffers[0].size() + state.buffers[1].size(), 2u);  // both slots buffer it
  // Watermark = occurrence end + window, exactly.
  EXPECT_EQ(state.next_prune_at, t0 + seconds(30));
  EXPECT_EQ(state.load_routed, 1u);
  EXPECT_GE(state.load_tried, 1u);
}

TEST(EngineMigrationTest, DefinitionLoadsAttributePerDefinition) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  const auto defs = state_mix();
  for (const EventDefinition& def : defs) eng.add_definition(def);
  const TimePoint t(1000);
  (void)eng.observe(Entity(obs("SRa", 0, t, {0, 0}, 90.0)), t);  // TH + NEAR slot a
  (void)eng.observe(Entity(obs("SRc", 1, t, {0, 0}, 90.0)), t);  // SELF

  std::vector<std::pair<std::uint32_t, DefinitionLoad>> loads;
  eng.collect_definition_loads(loads);
  ASSERT_EQ(loads.size(), 4u);
  EXPECT_EQ(loads[0].second.routed, 1u);  // TH (SRa)
  EXPECT_EQ(loads[1].second.routed, 0u);  // TH' (SRb) never routed
  EXPECT_EQ(loads[2].second.routed, 1u);  // SELF (SRc)
  EXPECT_EQ(loads[3].second.routed, 1u);  // NEAR (SRa slot)
  EXPECT_EQ(loads[3].second.buffered, 1u);  // retained in NEAR's slot-a buffer
}

TEST(EngineMigrationTest, ImplantEnforcesDestinationBufferCap) {
  // Source engine buffers generously; the destination's smaller
  // max_buffer must hold after implant (oldest imports evicted), or the
  // over-cap state would persist indefinitely.
  EngineOptions big;
  big.max_buffer = 64;
  DetectionEngine src(ObserverId("OB"), Layer::kSensor, {0, 0}, big);
  src.add_definition(state_mix()[3]);  // NEAR retain-mode join, never prunes
  const TimePoint t0(1'000'000);
  for (int i = 0; i < 20; ++i) {
    (void)src.observe(Entity(obs("SRa", static_cast<std::uint64_t>(i),
                                 t0 + seconds(i), {100.0 + i, 100.0}, 1.0)),
                      t0 + seconds(i));
  }
  auto state = src.extract_definition_state(0);
  ASSERT_EQ(state.buffers[0].size(), 20u);

  EngineOptions small;
  small.max_buffer = 4;
  DetectionEngine dst(ObserverId("OB"), Layer::kSensor, {0, 0}, small);
  dst.implant_definition_state(std::move(state));
  EXPECT_EQ(dst.stats().evicted, 16u);  // 20 imported - cap 4

  std::vector<std::pair<std::uint32_t, DefinitionLoad>> loads;
  dst.collect_definition_loads(loads);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].second.buffered, 4u);  // slot a at the cap, slot b empty
}

// ---------------------------------------------------------------------------
// RoutingIndex incremental removal.
// ---------------------------------------------------------------------------

std::vector<SlotRoute> collect_all(RoutingIndex& idx, const Entity& e) {
  std::vector<SlotRoute> out;
  idx.collect(e, out, [](const SlotRoute&) { return true; });
  return out;
}

TEST(RoutingRemoveTest, RemoveIsInverseOfAdd) {
  const auto defs = state_mix();
  RoutingIndex idx;
  for (std::uint32_t d = 0; d < defs.size(); ++d) idx.add(defs[d], d);

  const Entity ea(obs("SRa", 0, TimePoint(10), {0, 0}, 80.0));
  ASSERT_EQ(collect_all(idx, ea).size(), 2u);  // TH threshold + NEAR slot a

  idx.remove(defs[0], 0);
  const auto after = collect_all(idx, ea);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].def_idx, 3u);  // NEAR remains

  idx.remove(defs[3], 3);
  EXPECT_TRUE(collect_all(idx, ea).empty());

  // Removing again (or removing a never-added registration) is a logic
  // error, not silent corruption.
  EXPECT_THROW(idx.remove(defs[0], 0), std::logic_error);
}

TEST(RoutingRemoveTest, CollapsedDuplicatesAreRefcounted) {
  // Two single-slot thresholds with the same sensor, op, and constant,
  // collapsed onto the same shard index: one physical route entry with
  // refcount 2. Removing one registration must keep the route alive.
  EventDefinition t1{EventTypeId("A"),
                     {{"x", SlotFilter::observation(SensorId("SR"))}},
                     c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 50.0),
                     seconds(60),
                     {},
                     ConsumptionMode::kConsume};
  EventDefinition t2 = t1;
  t2.id = EventTypeId("B");

  RoutingIndex idx;
  idx.add_collapsed(t1, 7);
  idx.add_collapsed(t2, 7);
  const Entity hit(obs("SR", 0, TimePoint(10), {0, 0}, 80.0));
  ASSERT_EQ(collect_all(idx, hit).size(), 1u);  // deduplicated

  idx.remove_collapsed(t1, 7);
  const auto still = collect_all(idx, hit);
  ASSERT_EQ(still.size(), 1u);  // t2's registration keeps it alive
  EXPECT_EQ(still[0].def_idx, 7u);

  idx.remove_collapsed(t2, 7);
  EXPECT_TRUE(collect_all(idx, hit).empty());
}

TEST(RoutingRemoveTest, WildcardAndKeyedBucketsEmptyCleanly) {
  const auto defs = state_mix();
  EventDefinition wild{EventTypeId("W"),
                       {{"w", SlotFilter::any()}},
                       c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 0.0),
                       seconds(60),
                       {},
                       ConsumptionMode::kConsume};
  RoutingIndex idx;
  idx.add(wild, 0);
  idx.add(defs[2], 1);  // SELF: two keyed slots on SRc

  const Entity ec(obs("SRc", 0, TimePoint(10), {0, 0}, 1.0));
  ASSERT_EQ(collect_all(idx, ec).size(), 3u);  // wildcard + 2 slots

  idx.remove(defs[2], 1);
  ASSERT_EQ(collect_all(idx, ec).size(), 1u);  // wildcard only
  idx.remove(wild, 0);
  EXPECT_TRUE(collect_all(idx, ec).empty());
}

}  // namespace
}  // namespace stem::core
