#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using geom::Polygon;
using time_model::Duration;
using time_model::OccurrenceTime;
using time_model::seconds;
using time_model::TimePoint;

PhysicalObservation obs(const char* mote, const char* sensor, std::uint64_t seq, TimePoint t,
                        Point where, double value) {
  PhysicalObservation o;
  o.mote = ObserverId(mote);
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(where);
  o.attributes.set("value", value);
  return o;
}

/// Threshold definition: one slot, value > 25.
EventDefinition threshold_def(const char* id = "HOT") {
  EventDefinition def{EventTypeId(id),
                      {{"x", SlotFilter::observation(SensorId("SRtemp"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 25.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume};
  def.synthesis.attributes.push_back(AttributeRule{"value", ValueAggregate::kAverage, "value", {0}});
  return def;
}

/// Two-slot spatio-temporal definition matching the paper's S1:
/// x before y AND distance(x, y) <= 5.
EventDefinition s1_def() {
  EventDefinition def{EventTypeId("S1"),
                      {{"x", SlotFilter::observation(SensorId("SRx")).from(ObserverId("MT1"))},
                       {"y", SlotFilter::observation(SensorId("SRy")).from(ObserverId("MT2"))}},
                      c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                             c_distance(0, 1, RelationalOp::kLe, 5.0)}),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume};
  return def;
}

TEST(DetectionEngineTest, RejectsBadDefinitions) {
  DetectionEngine eng(ObserverId("MT1"), Layer::kSensor, {0, 0});
  EventDefinition no_slots{EventTypeId("X"),
                           {},
                           c_attr(ValueAggregate::kCount, "v", {}, RelationalOp::kGe, 0.0),
                           seconds(1),
                           {},
                           ConsumptionMode::kConsume};
  EXPECT_THROW(eng.add_definition(no_slots), std::invalid_argument);

  EventDefinition bad_ref{EventTypeId("Y"),
                          {{"x", SlotFilter::any()}},
                          c_time(0, time_model::TemporalOp::kBefore, 3),  // slot 3 undeclared
                          seconds(1),
                          {},
                          ConsumptionMode::kConsume};
  EXPECT_THROW(eng.add_definition(bad_ref), std::invalid_argument);
}

TEST(DetectionEngineTest, ThresholdFiresOnlyAboveThreshold) {
  DetectionEngine eng(ObserverId("MT1"), Layer::kSensor, {1, 1});
  eng.add_definition(threshold_def());

  auto none = eng.observe(Entity(obs("MT1", "SRtemp", 0, TimePoint(10), {0, 0}, 20.0)),
                          TimePoint(10));
  EXPECT_TRUE(none.empty());

  auto fired = eng.observe(Entity(obs("MT1", "SRtemp", 1, TimePoint(20), {0, 0}, 30.0)),
                           TimePoint(20));
  ASSERT_EQ(fired.size(), 1u);
  const EventInstance& inst = fired.front();
  EXPECT_EQ(inst.key.observer, ObserverId("MT1"));
  EXPECT_EQ(inst.key.event, EventTypeId("HOT"));
  EXPECT_EQ(inst.key.seq, 0u);
  EXPECT_EQ(inst.layer, Layer::kSensor);
  EXPECT_EQ(inst.gen_time, TimePoint(20));
  EXPECT_EQ(inst.gen_location, (Point{1, 1}));
  EXPECT_EQ(inst.est_time, OccurrenceTime(TimePoint(20)));
  EXPECT_DOUBLE_EQ(*inst.attributes.number("value"), 30.0);
  EXPECT_DOUBLE_EQ(inst.confidence, 1.0);
  ASSERT_EQ(inst.provenance.size(), 1u);
  EXPECT_EQ(inst.provenance.front().event, EventTypeId("obs:SRtemp"));
}

TEST(DetectionEngineTest, SequenceNumbersIncrementPerEventType) {
  DetectionEngine eng(ObserverId("MT1"), Layer::kSensor, {0, 0});
  eng.add_definition(threshold_def());
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto fired = eng.observe(
        Entity(obs("MT1", "SRtemp", i, TimePoint(static_cast<time_model::Tick>(10 * (i + 1))),
                   {0, 0}, 30.0)),
        TimePoint(static_cast<time_model::Tick>(10 * (i + 1))));
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired.front().key.seq, i);
  }
}

TEST(DetectionEngineTest, TwoSlotJoinDetectsPaperS1) {
  DetectionEngine eng(ObserverId("SINK"), Layer::kCyberPhysical, {50, 50});
  eng.add_definition(s1_def());

  // x at t=100 (0,0); y at t=200 (3,4): distance 5 <= 5 and x before y.
  EXPECT_TRUE(eng.observe(Entity(obs("MT1", "SRx", 0, TimePoint(100), {0, 0}, 1.0)),
                          TimePoint(100))
                  .empty());
  auto fired = eng.observe(Entity(obs("MT2", "SRy", 0, TimePoint(200), {3, 4}, 1.0)),
                           TimePoint(200));
  ASSERT_EQ(fired.size(), 1u);
  const EventInstance& inst = fired.front();
  EXPECT_EQ(inst.key.event, EventTypeId("S1"));
  // Synthesized occurrence spans both constituents.
  EXPECT_EQ(inst.est_time, OccurrenceTime(time_model::TimeInterval(TimePoint(100), TimePoint(200))));
  EXPECT_EQ(inst.provenance.size(), 2u);
}

TEST(DetectionEngineTest, JoinRespectsOrderCondition) {
  DetectionEngine eng(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  eng.add_definition(s1_def());
  // y arrives first in *occurrence* time order reversed: y at 200 first,
  // then x at 300 — "x before y" must NOT fire.
  EXPECT_TRUE(eng.observe(Entity(obs("MT2", "SRy", 0, TimePoint(200), {3, 4}, 1.0)),
                          TimePoint(200))
                  .empty());
  EXPECT_TRUE(eng.observe(Entity(obs("MT1", "SRx", 0, TimePoint(300), {0, 0}, 1.0)),
                          TimePoint(300))
                  .empty());
}

TEST(DetectionEngineTest, JoinRespectsDistanceCondition) {
  DetectionEngine eng(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  eng.add_definition(s1_def());
  EXPECT_TRUE(eng.observe(Entity(obs("MT1", "SRx", 0, TimePoint(100), {0, 0}, 1.0)),
                          TimePoint(100))
                  .empty());
  // Distance 10 > 5: no fire.
  EXPECT_TRUE(eng.observe(Entity(obs("MT2", "SRy", 0, TimePoint(200), {6, 8}, 1.0)),
                          TimePoint(200))
                  .empty());
}

TEST(DetectionEngineTest, WindowExpiryPreventsStaleJoins) {
  DetectionEngine eng(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  auto def = s1_def();
  def.window = Duration(50);
  eng.add_definition(def);

  EXPECT_TRUE(eng.observe(Entity(obs("MT1", "SRx", 0, TimePoint(100), {0, 0}, 1.0)),
                          TimePoint(100))
                  .empty());
  // y arrives at t=200; x (occurred at 100) is beyond the 50-tick window.
  EXPECT_TRUE(eng.observe(Entity(obs("MT2", "SRy", 0, TimePoint(200), {3, 4}, 1.0)),
                          TimePoint(200))
                  .empty());
  EXPECT_GT(eng.stats().evicted, 0u);
}

TEST(DetectionEngineTest, ConsumptionPreventsReuse) {
  DetectionEngine eng(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  eng.add_definition(s1_def());  // kConsume

  eng.observe(Entity(obs("MT1", "SRx", 0, TimePoint(100), {0, 0}, 1.0)), TimePoint(100));
  auto first = eng.observe(Entity(obs("MT2", "SRy", 0, TimePoint(200), {3, 4}, 1.0)),
                           TimePoint(200));
  ASSERT_EQ(first.size(), 1u);
  // A second y should find no x left to pair with.
  auto second = eng.observe(Entity(obs("MT2", "SRy", 1, TimePoint(210), {3, 4}, 1.0)),
                            TimePoint(210));
  EXPECT_TRUE(second.empty());
}

TEST(DetectionEngineTest, UnrestrictedModeAllowsReuse) {
  DetectionEngine eng(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  auto def = s1_def();
  def.consumption = ConsumptionMode::kUnrestricted;
  eng.add_definition(def);

  eng.observe(Entity(obs("MT1", "SRx", 0, TimePoint(100), {0, 0}, 1.0)), TimePoint(100));
  EXPECT_EQ(eng.observe(Entity(obs("MT2", "SRy", 0, TimePoint(200), {3, 4}, 1.0)), TimePoint(200))
                .size(),
            1u);
  // Same x pairs again with a later y.
  EXPECT_EQ(eng.observe(Entity(obs("MT2", "SRy", 1, TimePoint(210), {3, 4}, 1.0)), TimePoint(210))
                .size(),
            1u);
}

TEST(DetectionEngineTest, ConfidencePolicies) {
  // Feed two sensor-event instances with rho 0.8 and 0.5 into a CCU-level
  // conjunction and check each combination policy.
  const auto make_def = [](ConfidencePolicy policy, const char* id) {
    EventDefinition def{EventTypeId(id),
                        {{"a", SlotFilter::instance_of(EventTypeId("SA"))},
                         {"b", SlotFilter::instance_of(EventTypeId("SB"))}},
                        c_confidence(ValueAggregate::kCount, {0, 1}, RelationalOp::kGe, 0.0),
                        seconds(60),
                        {},
                        ConsumptionMode::kConsume};
    def.synthesis.confidence = policy;
    def.synthesis.observer_confidence = 0.9;
    return def;
  };

  const auto inst_entity = [](const char* type, double rho, TimePoint t) {
    EventInstance i;
    i.key = EventInstanceKey{ObserverId("MT1"), EventTypeId(type), 0};
    i.layer = Layer::kSensor;
    i.gen_time = t;
    i.est_time = OccurrenceTime(t);
    i.est_location = Location(Point{0, 0});
    i.confidence = rho;
    return Entity(std::move(i));
  };

  const struct {
    ConfidencePolicy policy;
    const char* id;
    double expected;
  } cases[] = {
      {ConfidencePolicy::kMin, "CMIN", 0.5 * 0.9},
      {ConfidencePolicy::kProduct, "CPROD", 0.8 * 0.5 * 0.9},
      {ConfidencePolicy::kMean, "CMEAN", 0.65 * 0.9},
  };
  for (const auto& c : cases) {
    DetectionEngine eng(ObserverId("CCU1"), Layer::kCyber, {0, 0});
    eng.add_definition(make_def(c.policy, c.id));
    eng.observe(inst_entity("SA", 0.8, TimePoint(10)), TimePoint(10));
    auto fired = eng.observe(inst_entity("SB", 0.5, TimePoint(20)), TimePoint(20));
    ASSERT_EQ(fired.size(), 1u) << c.id;
    EXPECT_NEAR(fired.front().confidence, c.expected, 1e-12) << c.id;
  }
}

TEST(DetectionEngineTest, FieldSynthesisFromPointEvents) {
  // Sink builds a field event (convex hull) from three point observations
  // (paper Sec. 4.2: a field is made of >= 2 point events).
  EventDefinition def{EventTypeId("FIRE"),
                      {{"a", SlotFilter::observation(SensorId("SRheat")).from(ObserverId("M1"))},
                       {"b", SlotFilter::observation(SensorId("SRheat")).from(ObserverId("M2"))},
                       {"c", SlotFilter::observation(SensorId("SRheat")).from(ObserverId("M3"))}},
                      c_attr(ValueAggregate::kMin, "value", {0, 1, 2}, RelationalOp::kGt, 50.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume};
  def.synthesis.location = geom::SpatialAggregate::kHull;

  DetectionEngine eng(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  eng.add_definition(def);

  eng.observe(Entity(obs("M1", "SRheat", 0, TimePoint(10), {0, 0}, 80.0)), TimePoint(10));
  eng.observe(Entity(obs("M2", "SRheat", 0, TimePoint(11), {10, 0}, 80.0)), TimePoint(11));
  auto fired = eng.observe(Entity(obs("M3", "SRheat", 0, TimePoint(12), {0, 10}, 80.0)),
                           TimePoint(12));
  ASSERT_EQ(fired.size(), 1u);
  const EventInstance& inst = fired.front();
  ASSERT_TRUE(inst.est_location.is_field());
  EXPECT_DOUBLE_EQ(inst.est_location.as_field().area(), 50.0);
  EXPECT_TRUE(inst.est_location.covers({2, 2}));
}

TEST(DetectionEngineTest, SelfPairingDoesNotDuplicate) {
  // A definition whose two slots both match the same entity kind must not
  // emit the (e, e) self-binding twice for one arrival.
  EventDefinition def{EventTypeId("PAIR"),
                      {{"x", SlotFilter::observation(SensorId("SR"))},
                       {"y", SlotFilter::observation(SensorId("SR"))}},
                      c_time(0, time_model::TemporalOp::kBefore, 1),
                      seconds(60),
                      {},
                      ConsumptionMode::kUnrestricted};
  DetectionEngine eng(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  eng.add_definition(def);

  EXPECT_TRUE(eng.observe(Entity(obs("M1", "SR", 0, TimePoint(10), {0, 0}, 1.0)), TimePoint(10))
                  .empty());  // e before e is false; no self-match
  auto fired = eng.observe(Entity(obs("M1", "SR", 1, TimePoint(20), {0, 0}, 1.0)), TimePoint(20));
  // Exactly one binding (first@x, second@y) satisfies "x before y".
  ASSERT_EQ(fired.size(), 1u);
}

TEST(DetectionEngineTest, BufferCapEvictsOldest) {
  // Buffering (and hence the cap) applies to multi-slot definitions;
  // single-slot definitions never re-read their buffer and skip it.
  EngineOptions opts;
  opts.max_buffer = 4;
  DetectionEngine eng(ObserverId("MT1"), Layer::kSensor, {0, 0}, opts);
  EventDefinition def{EventTypeId("NEVER"),
                      {{"x", SlotFilter::observation(SensorId("SRtemp"))},
                       {"y", SlotFilter::observation(SensorId("SRtemp"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0, 1}, RelationalOp::kGt, 1e9),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume};
  eng.add_definition(def);  // never fires; buffers only grow

  for (int i = 0; i < 20; ++i) {
    eng.observe(Entity(obs("MT1", "SRtemp", static_cast<std::uint64_t>(i),
                           TimePoint(static_cast<time_model::Tick>(i)), {0, 0}, 2.0)),
                TimePoint(static_cast<time_model::Tick>(i)));
  }
  // Each arrival lands in both slot buffers (cap 4): 2 * (20 - 4) evictions.
  EXPECT_GE(eng.stats().evicted, 32u);
}

TEST(DetectionEngineTest, StatsCountersAdvance) {
  DetectionEngine eng(ObserverId("MT1"), Layer::kSensor, {0, 0});
  eng.add_definition(threshold_def());
  eng.observe(Entity(obs("MT1", "SRtemp", 0, TimePoint(10), {0, 0}, 30.0)), TimePoint(10));
  eng.observe(Entity(obs("MT1", "SRtemp", 1, TimePoint(20), {0, 0}, 10.0)), TimePoint(20));
  const EngineStats& s = eng.stats();
  EXPECT_EQ(s.entities_in, 2u);
  // The second arrival (value 10 < 25) is rejected by the threshold
  // routing index before any binding is formed, so only one was tried.
  EXPECT_EQ(s.bindings_tried, 1u);
  EXPECT_EQ(s.bindings_matched, 1u);
  EXPECT_EQ(s.instances_out, 1u);
}

TEST(DetectionEngineTest, ObserveBatchStatsEqualObserveLoop) {
  // observe_batch must be exactly the observe loop: same instances in the
  // same order and — the shard-safe stats contract — the same counters.
  DetectionEngine batched(ObserverId("MT1"), Layer::kSensor, {0, 0});
  DetectionEngine looped(ObserverId("MT1"), Layer::kSensor, {0, 0});
  for (DetectionEngine* eng : {&batched, &looped}) {
    eng->add_definition(threshold_def());
    eng->add_definition(s1_def());
  }

  std::vector<Entity> entities;
  std::vector<TimePoint> nows;
  for (int i = 0; i < 24; ++i) {
    const auto t = TimePoint(static_cast<time_model::Tick>(10 * i));
    const char* sensor = i % 3 == 0 ? "SRtemp" : (i % 3 == 1 ? "SRx" : "SRy");
    const char* mote = i % 3 == 1 ? "MT1" : "MT2";
    entities.push_back(Entity(obs(mote, sensor, static_cast<std::uint64_t>(i), t,
                                  {static_cast<double>(i % 4), 0}, 20.0 + i)));
    nows.push_back(t);
  }

  const auto batch_out = batched.observe_batch(entities, nows);
  std::vector<EventInstance> loop_out;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    for (EventInstance& inst : looped.observe(entities[i], nows[i])) {
      loop_out.push_back(std::move(inst));
    }
  }

  EXPECT_GT(batch_out.size(), 0u);
  ASSERT_EQ(batch_out.size(), loop_out.size());
  for (std::size_t k = 0; k < batch_out.size(); ++k) {
    EXPECT_EQ(batch_out[k].key, loop_out[k].key);
  }
  EXPECT_EQ(batched.stats(), looped.stats());
  EXPECT_EQ(batched.stats().instances_out, batch_out.size());
  EXPECT_EQ(batched.stats().entities_in, entities.size());
}

TEST(DetectionEngineTest, ObserveBatchRejectsMismatchedSpans) {
  DetectionEngine eng(ObserverId("MT1"), Layer::kSensor, {0, 0});
  eng.add_definition(threshold_def());
  const std::vector<Entity> entities{
      Entity(obs("MT1", "SRtemp", 0, TimePoint(10), {0, 0}, 30.0))};
  const std::vector<TimePoint> nows{TimePoint(10), TimePoint(20)};
  EXPECT_THROW((void)eng.observe_batch(entities, nows), std::invalid_argument);
}

TEST(DetectionEngineTest, MultipleDefinitionsShareEngine) {
  DetectionEngine eng(ObserverId("MT1"), Layer::kSensor, {0, 0});
  eng.add_definition(threshold_def("HOT"));
  EventDefinition cold{EventTypeId("COLD"),
                       {{"x", SlotFilter::observation(SensorId("SRtemp"))}},
                       c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kLt, 5.0),
                       seconds(60),
                       {},
                       ConsumptionMode::kConsume};
  eng.add_definition(cold);
  EXPECT_EQ(eng.definition_count(), 2u);

  auto hot = eng.observe(Entity(obs("MT1", "SRtemp", 0, TimePoint(10), {0, 0}, 30.0)),
                         TimePoint(10));
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot.front().key.event, EventTypeId("HOT"));

  auto coldout = eng.observe(Entity(obs("MT1", "SRtemp", 1, TimePoint(20), {0, 0}, 1.0)),
                             TimePoint(20));
  ASSERT_EQ(coldout.size(), 1u);
  EXPECT_EQ(coldout.front().key.event, EventTypeId("COLD"));
}

TEST(DetectionEngineTest, SharedEventTypeSequencesStayUnique) {
  // Two definitions emitting the same event type must share a sequence
  // counter, or their EventInstanceKeys would collide.
  DetectionEngine eng(ObserverId("MT1"), Layer::kSensor, {0, 0});
  eng.add_definition(threshold_def("HOT"));
  EventDefinition other{EventTypeId("HOT"),
                        {{"x", SlotFilter::observation(SensorId("SRtemp"))}},
                        c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 50.0),
                        seconds(60),
                        {},
                        ConsumptionMode::kConsume};
  eng.add_definition(other);

  // value 60 fires both definitions: same type, distinct sequence numbers.
  auto fired = eng.observe(Entity(obs("MT1", "SRtemp", 0, TimePoint(10), {0, 0}, 60.0)),
                           TimePoint(10));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].key.event, fired[1].key.event);
  EXPECT_NE(fired[0].key.seq, fired[1].key.seq);
}

TEST(DetectionEngineTest, SingleSlotTimeAggregateCollapsesInterval) {
  // kEarliest over one interval-valued slot is not the identity: it
  // collapses the interval to its start. est_time [100,200] is entirely
  // before 150 only under that collapse.
  TemporalCondition cond;
  cond.lhs = TimeExpr{time_model::TimeAggregate::kEarliest, {0}, Duration::zero()};
  cond.op = time_model::TemporalOp::kBefore;
  cond.rhs = OccurrenceTime(TimePoint(150));
  EventDefinition def{EventTypeId("EARLY"),
                      {{"x", SlotFilter::instance_of(EventTypeId("SPAN"))}},
                      ConditionExpr(cond),
                      seconds(60),
                      {},
                      ConsumptionMode::kUnrestricted};
  DetectionEngine eng(ObserverId("CCU"), Layer::kCyber, {0, 0});
  eng.add_definition(def);

  EventInstance span;
  span.key = EventInstanceKey{ObserverId("MT1"), EventTypeId("SPAN"), 0};
  span.layer = Layer::kSensor;
  span.gen_time = TimePoint(200);
  span.est_time = OccurrenceTime(time_model::TimeInterval(TimePoint(100), TimePoint(200)));
  span.est_location = Location(Point{0, 0});
  EXPECT_EQ(eng.observe(Entity(span), TimePoint(200)).size(), 1u);
}

TEST(DetectionEngineTest, InstanceChainAcrossLayers) {
  // Fig. 2 in miniature: observation -> sensor event -> cyber-physical
  // event, with provenance linking back down the hierarchy.
  DetectionEngine mote(ObserverId("MT1"), Layer::kSensor, {0, 0});
  mote.add_definition(threshold_def("HOT"));

  EventDefinition cp{EventTypeId("CP_HOT"),
                     {{"h", SlotFilter::instance_of(EventTypeId("HOT"))}},
                     c_confidence(ValueAggregate::kMin, {0}, RelationalOp::kGe, 0.5),
                     seconds(60),
                     {},
                     ConsumptionMode::kConsume};
  DetectionEngine sink(ObserverId("SINK"), Layer::kCyberPhysical, {100, 100});
  sink.add_definition(cp);

  auto sensor_events = mote.observe(
      Entity(obs("MT1", "SRtemp", 0, TimePoint(10), {0, 0}, 30.0)), TimePoint(10));
  ASSERT_EQ(sensor_events.size(), 1u);

  auto cp_events = sink.observe(Entity(sensor_events.front()), TimePoint(15));
  ASSERT_EQ(cp_events.size(), 1u);
  const EventInstance& top = cp_events.front();
  EXPECT_EQ(top.layer, Layer::kCyberPhysical);
  ASSERT_EQ(top.provenance.size(), 1u);
  EXPECT_EQ(top.provenance.front().event, EventTypeId("HOT"));
  EXPECT_EQ(top.provenance.front().observer, ObserverId("MT1"));
  // Estimated occurrence time survives the hierarchy unchanged.
  EXPECT_EQ(top.est_time, OccurrenceTime(TimePoint(10)));
}

}  // namespace
}  // namespace stem::core
