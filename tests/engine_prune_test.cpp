#include <gtest/gtest.h>

#include "core/engine.hpp"

/// Horizon-watermark pruning edge cases, locking in the amortized-prune
/// semantics: an entity is evictable strictly *after* `occurrence end +
/// window` (arrival exactly at the horizon still binds), a zero-length
/// window keeps only same-instant partners, and clear() resets the
/// watermarks (no phantom evictions, and they re-arm for new entities).

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using time_model::Duration;
using time_model::seconds;
using time_model::TimePoint;

PhysicalObservation obs(const char* sensor, std::uint64_t seq, TimePoint t, Point where,
                        double value) {
  PhysicalObservation o;
  o.mote = ObserverId("MT1");
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(where);
  o.attributes.set("value", value);
  return o;
}

/// Two-slot join over one sensor: x before y, both within `window`.
EventDefinition pair_def(Duration window) {
  return EventDefinition{EventTypeId("PAIR"),
                         {{"x", SlotFilter::observation(SensorId("SR"))},
                          {"y", SlotFilter::observation(SensorId("SR"))}},
                         c_time(0, time_model::TemporalOp::kBefore, 1),
                         window,
                         {},
                         ConsumptionMode::kUnrestricted};
}

TEST(EnginePruneTest, ArrivalExactlyAtHorizonStillBinds) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  eng.add_definition(pair_def(seconds(10)));

  const TimePoint t0(1'000'000);
  ASSERT_TRUE(eng.observe(Entity(obs("SR", 0, t0, {0, 0}, 1.0)), t0).empty());

  // now == t0 + window: the horizon is exactly t0; eviction requires
  // end < horizon, so the buffered entity is still eligible and binds.
  const TimePoint at_horizon = t0 + seconds(10);
  const auto hit = eng.observe(Entity(obs("SR", 1, at_horizon, {0, 0}, 2.0)), at_horizon);
  EXPECT_EQ(hit.size(), 1u);
  EXPECT_EQ(eng.stats().evicted, 0u);
}

TEST(EnginePruneTest, OneTickPastHorizonEvicts) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  eng.add_definition(pair_def(seconds(10)));

  const TimePoint t0(1'000'000);
  ASSERT_TRUE(eng.observe(Entity(obs("SR", 0, t0, {0, 0}, 1.0)), t0).empty());

  const TimePoint past = t0 + seconds(10) + Duration(1);
  const auto miss = eng.observe(Entity(obs("SR", 1, past, {0, 0}, 2.0)), past);
  EXPECT_TRUE(miss.empty());
  // Evicted from both slot buffers before the binding attempt.
  EXPECT_EQ(eng.stats().evicted, 2u);
}

TEST(EnginePruneTest, ZeroLengthWindowKeepsOnlySameInstantPartners) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  // Window 0: horizon == now, so anything with end < now is evicted the
  // moment pruning runs; only same-instant entities may still join.
  EventDefinition def = pair_def(Duration::zero());
  // Time-agnostic, but distance > 0 so the entity cannot pair with its
  // own two-slot insertion (distance to itself is 0).
  def.condition = c_distance(0, 1, RelationalOp::kGt, 0.0);
  eng.add_definition(def);

  const TimePoint t0(2'000'000);
  ASSERT_TRUE(eng.observe(Entity(obs("SR", 0, t0, {1, 1}, 1.0)), t0).empty());

  // Same instant: both directions of the pair bind (x=old/y=new and the
  // self-pairing rules keep it to exactly the cross pairings).
  const auto same = eng.observe(Entity(obs("SR", 1, t0, {2, 2}, 2.0)), t0);
  EXPECT_EQ(same.size(), 2u);
  EXPECT_EQ(eng.stats().evicted, 0u);

  // One tick later, everything buffered at t0 is past the horizon.
  const TimePoint t1 = t0 + Duration(1);
  const auto later = eng.observe(Entity(obs("SR", 2, t1, {3, 3}, 3.0)), t1);
  EXPECT_TRUE(later.empty());
  EXPECT_EQ(eng.stats().evicted, 4u);  // two entities x two slots
}

TEST(EnginePruneTest, ClearResetsWatermarksWithoutCountingEvictions) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  eng.add_definition(pair_def(seconds(5)));

  const TimePoint t0(3'000'000);
  ASSERT_TRUE(eng.observe(Entity(obs("SR", 0, t0, {0, 0}, 1.0)), t0).empty());
  eng.clear();

  // Far past the old watermark: nothing to evict (clear dropped it and
  // reset the watermark; the drop itself is not an eviction), and the
  // cleared entity must not join a binding.
  const TimePoint later = t0 + seconds(60);
  const auto out = eng.observe(Entity(obs("SR", 1, later, {0, 0}, 2.0)), later);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(eng.stats().evicted, 0u);

  // The watermark re-arms for post-clear entities: the fresh one above
  // expires on schedule.
  const TimePoint expire = later + seconds(5) + Duration(1);
  const auto after = eng.observe(Entity(obs("SR", 2, expire, {0, 0}, 3.0)), expire);
  EXPECT_TRUE(after.empty());
  EXPECT_EQ(eng.stats().evicted, 2u);
}

TEST(EnginePruneTest, ExplicitPruneRecomputesWatermarkExactly) {
  DetectionEngine eng(ObserverId("OB"), Layer::kSensor, {0, 0});
  eng.add_definition(pair_def(seconds(10)));

  const TimePoint t0(4'000'000);
  const TimePoint t1 = t0 + seconds(4);
  ASSERT_TRUE(eng.observe(Entity(obs("SR", 0, t0, {0, 0}, 1.0)), t1).empty());
  (void)eng.observe(Entity(obs("SR", 1, t1, {0, 0}, 2.0)), t1);

  // Idle-time prune at t0's horizon + 1: only the older entity expires.
  eng.prune(t0 + seconds(10) + Duration(1));
  EXPECT_EQ(eng.stats().evicted, 2u);  // older entity, both slots

  // The younger entity still binds until *its* horizon passes.
  const TimePoint at = t1 + seconds(10);
  const auto hit = eng.observe(Entity(obs("SR", 2, at, {0, 0}, 3.0)), at);
  EXPECT_EQ(hit.size(), 1u);
}

}  // namespace
}  // namespace stem::core
