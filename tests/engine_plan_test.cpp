#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"

/// Shared-evaluation-plan suite: near-duplicate definitions must share
/// buffered slot streams (and their spatial backing) without any
/// observable difference from per-definition buffers — late subscribers
/// never see pre-registration entities, eviction counters match the
/// unshared accounting, migration moves one subscription without
/// disturbing co-subscribers — plus the registration-path guarantees the
/// sharing work leaned on: near-linear add_definition cost and
/// exactly-once RoutingIndex dispatch under duplicate threshold
/// constants.

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq, TimePoint t,
                        Point p, double value) {
  PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

/// A near-duplicate two-slot join: identical filters and window across
/// the family (one shared plan node per slot), varying only the distance
/// radius and the output event type.
EventDefinition near_join(const std::string& type, double radius,
                          time_model::Duration window = seconds(60)) {
  return EventDefinition{EventTypeId(type),
                         {{"a", SlotFilter::observation(SensorId("SRa"))},
                          {"b", SlotFilter::observation(SensorId("SRb"))}},
                         c_distance(0, 1, RelationalOp::kLt, radius),
                         window,
                         {},
                         ConsumptionMode::kUnrestricted};
}

// ---------------------------------------------------------------------------
// Shared streams: observable semantics.
// ---------------------------------------------------------------------------

/// A subscriber registered after entities already buffered must never bind
/// them: its emissions are byte-identical to the same definition running in
/// a fresh engine fed only the post-registration suffix.
TEST(SharedPlanTest, LateSubscriberSeesOnlyNewEntities) {
  DetectionEngine shared(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  DetectionEngine fresh(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  shared.add_definition(near_join("EARLY", 50.0));

  TimePoint now = TimePoint::epoch();
  std::vector<Entity> prefix;
  std::vector<Entity> suffix;
  for (int i = 0; i < 10; ++i) {
    now += seconds(1);
    prefix.emplace_back(obs(1, i % 2 == 0 ? "SRa" : "SRb", static_cast<std::uint64_t>(i), now,
                            {static_cast<double>(i), 0.0}, 50.0));
  }
  std::vector<Emission> sink;
  for (const Entity& e : prefix) shared.observe(e, now, sink);
  ASSERT_FALSE(sink.empty());  // the early definition does bind the prefix

  // Register the near-duplicate late: the canonical streams are non-empty,
  // so it must get private (empty) buffers despite the matching plan key.
  const auto late = shared.add_definition(near_join("LATE", 50.0));
  fresh.add_definition(near_join("LATE", 50.0));

  for (int i = 10; i < 24; ++i) {
    now += seconds(1);
    suffix.emplace_back(obs(1, i % 2 == 0 ? "SRa" : "SRb", static_cast<std::uint64_t>(i), now,
                            {static_cast<double>(i), 0.0}, 50.0));
  }
  std::vector<std::string> got;
  std::vector<std::string> want;
  for (const Entity& e : suffix) {
    sink.clear();
    shared.observe(e, now, sink);
    for (const Emission& em : sink) {
      if (em.def == late) got.push_back(describe(em.instance));
    }
    sink.clear();
    fresh.observe(e, now, sink);
    for (const Emission& em : sink) want.push_back(describe(em.instance));
  }
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], want[k]) << "instance " << k;
}

/// Buffer-cap eviction on a shared stream counts once per subscriber, so
/// EngineStats::evicted matches what per-definition buffers would report.
TEST(SharedPlanTest, SharedStreamEvictionCountsPerSubscriber) {
  EngineOptions opts;
  opts.max_buffer = 8;
  DetectionEngine engine(ObserverId("OB"), Layer::kCyberPhysical, {0, 0}, opts);
  constexpr std::size_t kDefs = 5;
  for (std::size_t d = 0; d < kDefs; ++d) {
    engine.add_definition(near_join("EV" + std::to_string(d), 0.001));
  }

  TimePoint now = TimePoint::epoch();
  constexpr std::size_t kArrivals = 20;
  for (std::size_t i = 0; i < kArrivals; ++i) {
    now += seconds(1);
    engine.observe(Entity(obs(1, "SRa", i, now, {static_cast<double>(i), 0.0}, 1.0)), now);
  }
  // One shared slot-a stream overflowing by (arrivals - cap), charged to
  // each of the kDefs subscribers — exactly the unshared total.
  EXPECT_EQ(engine.stats().evicted, (kArrivals - opts.max_buffer) * kDefs);

  // The per-definition buffered gauge reads through the shared stream:
  // every subscriber reports the full (capped) buffer as its own.
  std::vector<std::pair<std::uint32_t, DefinitionLoad>> loads;
  engine.collect_definition_loads(loads);
  ASSERT_EQ(loads.size(), kDefs);
  for (const auto& [idx, load] : loads) {
    EXPECT_EQ(load.buffered, opts.max_buffer) << "definition " << idx;
  }
}

/// Extracting one subscriber of a shared plan node and implanting it into
/// another engine must leave the co-subscribers' streams untouched: every
/// definition's per-type emission stream stays byte-identical to a
/// never-migrated reference engine.
TEST(SharedPlanTest, MigratingOneSubscriberLeavesCoSubscribersIntact) {
  constexpr std::size_t kDefs = 3;
  DetectionEngine source(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  DetectionEngine reference(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  for (std::size_t d = 0; d < kDefs; ++d) {
    source.add_definition(near_join("MIG" + std::to_string(d), 4.0 + 2.0 * d, seconds(120)));
    reference.add_definition(near_join("MIG" + std::to_string(d), 4.0 + 2.0 * d, seconds(120)));
  }

  std::map<std::uint32_t, std::vector<std::string>> got;
  std::map<std::uint32_t, std::vector<std::string>> want;
  std::vector<Emission> sink;
  const auto feed = [&sink](DetectionEngine& eng, const Entity& e, TimePoint t,
                            std::map<std::uint32_t, std::vector<std::string>>& into,
                            std::uint32_t retag = 0xffffffffu) {
    sink.clear();
    eng.observe(e, t, sink);
    for (const Emission& em : sink) {
      into[retag != 0xffffffffu ? retag : em.def].push_back(describe(em.instance));
    }
  };

  TimePoint now = TimePoint::epoch();
  std::vector<Entity> entities;
  std::vector<TimePoint> nows;
  for (int i = 0; i < 60; ++i) {
    now += seconds(1);
    entities.emplace_back(obs(1, i % 2 == 0 ? "SRa" : "SRb", static_cast<std::uint64_t>(i), now,
                              {static_cast<double>(i % 7), static_cast<double>(i % 5)}, 50.0));
    nows.push_back(now);
  }

  DetectionEngine dest(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  std::size_t implanted = 0;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    if (i == 30) {
      // Mid-stream, with all shared buffers non-empty: definition 1 moves
      // out; 0 and 2 keep subscribing to the shared nodes.
      implanted = dest.implant_definition_state(source.extract_definition_state(1));
    }
    feed(source, entities[i], nows[i], got);
    if (i >= 30) feed(dest, entities[i], nows[i], got, 1);
    feed(reference, entities[i], nows[i], want);
  }

  ASSERT_EQ(implanted, 0u);
  for (std::uint32_t d = 0; d < kDefs; ++d) {
    ASSERT_FALSE(want[d].empty()) << "definition " << d << " never fired";
    ASSERT_EQ(got[d].size(), want[d].size()) << "definition " << d;
    for (std::size_t k = 0; k < got[d].size(); ++k) {
      EXPECT_EQ(got[d][k], want[d][k]) << "definition " << d << " instance " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Registration path: near-linear cost.
// ---------------------------------------------------------------------------

/// One near-duplicate threshold definition: single slot on a shared
/// sensor, `value > c` with constants cycling over a small set (so the
/// routing index sees massive duplicate-constant families).
EventDefinition threshold_def(std::size_t i) {
  return EventDefinition{EventTypeId("THR" + std::to_string(i)),
                         {{"x", SlotFilter::observation(SensorId("SRa"))}},
                         c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt,
                                50.0 + static_cast<double>(i % 64)),
                         seconds(60),
                         {},
                         ConsumptionMode::kUnrestricted};
}

double registration_seconds(std::size_t count) {
  DetectionEngine engine(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) engine.add_definition(threshold_def(i));
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_EQ(engine.definition_count(), count);
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Regression guard for the superlinear add_definition cost: 16x the
/// definitions must not cost more than ~4x-per-definition extra. The old
/// sorted-insert threshold registration was O(n) per add (O(n^2) total,
/// ratio ~256 here); the pending-list scheme is O(1) amortized (ratio
/// ~16). The bound sits far from both to stay timing-noise proof.
TEST(RegistrationScalingTest, NearDuplicateRegistrationIsNearLinear) {
  registration_seconds(512);  // warm up allocators and code paths
  const double small = registration_seconds(2000);
  const double large = registration_seconds(32000);
  EXPECT_LT(large, small * 64.0 + 0.25)
      << "16x definitions cost " << large / small << "x the time";
}

// ---------------------------------------------------------------------------
// RoutingIndex: exactly-once dispatch.
// ---------------------------------------------------------------------------

std::vector<SlotRoute> collect_all(RoutingIndex& idx, const Entity& e) {
  std::vector<SlotRoute> out;
  idx.collect(e, out, [](const SlotRoute&) { return true; });
  return out;
}

void expect_exactly_once(const std::vector<SlotRoute>& routes, const std::string& ctx) {
  for (std::size_t i = 1; i < routes.size(); ++i) {
    const auto& p = routes[i - 1];
    const auto& r = routes[i];
    EXPECT_TRUE(p.def_idx < r.def_idx || (p.def_idx == r.def_idx && p.slot_idx < r.slot_idx))
        << ctx << ": route (" << r.def_idx << "," << r.slot_idx << ") at position " << i
        << " repeats or disorders the collected set";
  }
}

/// Duplicate threshold constants and overlapping half-open intervals must
/// dispatch each registered (definition, slot) exactly once per arrival,
/// and exactly the definitions whose threshold the value satisfies.
TEST(RoutingExactlyOnceTest, DuplicateConstantsDispatchOnce) {
  RoutingIndex idx;
  std::vector<double> constants;
  std::vector<RelationalOp> ops;
  constexpr std::size_t kRules = 200;
  for (std::size_t i = 0; i < kRules; ++i) {
    // Five distinct constants, both sides, inclusive and strict: every
    // node of the segment index carries a long duplicate-route range.
    const double c = 40.0 + 10.0 * static_cast<double>(i % 5);
    const RelationalOp op = std::array{RelationalOp::kGt, RelationalOp::kGe, RelationalOp::kLt,
                                       RelationalOp::kLe}[i % 4];
    EventDefinition def{EventTypeId("R" + std::to_string(i)),
                        {{"x", SlotFilter::observation(SensorId("SRa"))}},
                        c_attr(ValueAggregate::kAverage, "value", {0}, op, c),
                        seconds(60),
                        {},
                        ConsumptionMode::kUnrestricted};
    idx.add(def, static_cast<std::uint32_t>(i));
    constants.push_back(c);
    ops.push_back(op);
  }

  const auto fires = [&](std::size_t i, double v) {
    switch (ops[i]) {
      case RelationalOp::kGt: return v > constants[i];
      case RelationalOp::kGe: return v >= constants[i];
      case RelationalOp::kLt: return v < constants[i];
      case RelationalOp::kLe: return v <= constants[i];
      default: return false;
    }
  };
  const TimePoint now = TimePoint::epoch();
  // Probe off-node, on-node (ties exercise inclusive/strict splits), and
  // beyond both ends.
  for (const double v : {35.0, 40.0, 44.5, 50.0, 60.0, 65.5, 70.0, 80.0, 99.0}) {
    const Entity e(obs(1, "SRa", 0, now, {0, 0}, v));
    const auto routes = collect_all(idx, e);
    expect_exactly_once(routes, "v=" + std::to_string(v));
    std::size_t expected = 0;
    for (std::size_t i = 0; i < kRules; ++i) expected += fires(i, v) ? 1 : 0;
    EXPECT_EQ(routes.size(), expected) << "v=" << v;
    for (const SlotRoute r : routes) {
      EXPECT_TRUE(fires(r.def_idx, v)) << "v=" << v << " def " << r.def_idx;
    }
  }
}

/// Interleaving adds, removes, and dispatches keeps exactly-once intact
/// while rules live in both the compacted segment nodes and the pending
/// tail (and while dead node entries await purge).
TEST(RoutingExactlyOnceTest, InterleavedAddRemoveStaysExact) {
  RoutingIndex idx;
  const auto make = [](std::size_t i) {
    return EventDefinition{EventTypeId("R" + std::to_string(i)),
                           {{"x", SlotFilter::observation(SensorId("SRa"))}},
                           c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt,
                                  static_cast<double>(i % 8)),
                           seconds(60),
                           {},
                           ConsumptionMode::kUnrestricted};
  };
  const TimePoint now = TimePoint::epoch();
  const Entity high(obs(1, "SRa", 0, now, {0, 0}, 100.0));  // fires every rule

  std::vector<bool> live(300, false);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    idx.add(make(i), static_cast<std::uint32_t>(i));
    live[i] = true;
    ++expected;
    if (i % 3 == 2) {
      // Remove an older rule: alternately one already compacted by the
      // dispatch below and one still pending.
      const std::size_t victim = (i / 3) * 2 % (i + 1);
      if (live[victim]) {
        idx.remove(make(victim), static_cast<std::uint32_t>(victim));
        live[victim] = false;
        --expected;
      }
    }
    if (i % 50 == 49) {
      // Dispatch mid-build: compacts pending into nodes, so later adds
      // and removes hit the node/pending split.
      const auto routes = collect_all(idx, high);
      expect_exactly_once(routes, "mid-build i=" + std::to_string(i));
      ASSERT_EQ(routes.size(), expected) << "mid-build i=" << i;
    }
  }
  const auto routes = collect_all(idx, high);
  expect_exactly_once(routes, "final");
  EXPECT_EQ(routes.size(), expected);
  for (const SlotRoute r : routes) EXPECT_TRUE(live[r.def_idx]) << "def " << r.def_idx;
}

}  // namespace
}  // namespace stem::core
