#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

/// Differential *migration* suite: the sharded runtime's merged stream,
/// with definition groups forcibly migrated between shards mid-stream,
/// must stay byte-identical to a single sequential DetectionEngine fed
/// the same arrivals — across shard counts {2, 4, 8} x ingest batch sizes
/// {1, 64} x skew profiles {uniform, 90/10} x consumption modes, with >= 3
/// migrations per run landing at different stream positions. On top of
/// the exact-equality runs, a soak test drives the *adaptive* path: a
/// skewed workload with automatic epoch rebalancing must narrow the
/// per-shard arrival-load spread versus rebalancing disabled, with no
/// instance lost, duplicated, or reordered and inbox depth bounded by the
/// configured capacity. SpilloverPolicy's decision rules get direct units
/// at the bottom.

namespace stem::runtime {
namespace {

using core::ConsumptionMode;
using core::DetectionEngine;
using core::EventDefinition;
using core::EventInstance;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

core::PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq,
                              TimePoint t, Point p, double value) {
  core::PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

/// The definition mix of tests/runtime_shard_test.cpp — keyed thresholds,
/// spatial/temporal joins, a self-binding pair, two definitions *sharing
/// an event type* (one migration group), a wildcard single-slot
/// definition and a wildcard join slot — so migrations are exercised for
/// every placement/routing rule, including moving the full-stream
/// (wildcard-hosting) group and moving a retain-mode definition whose
/// buffers are large enough to carry spatial-index state.
std::vector<EventDefinition> migration_definitions(ConsumptionMode mode, const std::string& tag) {
  std::vector<EventDefinition> defs;

  EventDefinition hot{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      mode};
  hot.synthesis.attributes.push_back(
      core::AttributeRule{"value", core::ValueAggregate::kMax, "value", {0}});
  defs.push_back(hot);

  // Same event type as HOT: the pair is one co-located migration group.
  defs.push_back(EventDefinition{EventTypeId("HOT_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 40.0),
                                 seconds(60),
                                 {},
                                 mode});

  defs.push_back(EventDefinition{EventTypeId("NEAR_" + tag),
                                 {{"a", SlotFilter::observation(SensorId("SRa"))},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                              core::c_distance(0, 1, core::RelationalOp::kLt, 8.0)}),
                                 seconds(4),
                                 {},
                                 mode});

  // Self-binding pair: both slots accept the same sensor (the imported-
  // stamp identity rule is what keeps its dedup correct post-migration).
  defs.push_back(EventDefinition{EventTypeId("PAIR_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRc"))},
                                  {"y", SlotFilter::observation(SensorId("SRc"))}},
                                 core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                              core::c_distance(0, 1, core::RelationalOp::kLt, 12.0)}),
                                 seconds(5),
                                 {},
                                 mode});

  // Wildcard single-slot definition: its host shard receives every
  // arrival — migrating it re-routes the full stream.
  defs.push_back(EventDefinition{EventTypeId("WILD_" + tag),
                                 {{"w", SlotFilter::any()}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 85.0),
                                 seconds(60),
                                 {},
                                 mode});

  defs.push_back(EventDefinition{EventTypeId("WNEAR_" + tag),
                                 {{"w", SlotFilter::any()},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                              core::c_distance(0, 1, core::RelationalOp::kLt, 6.0)}),
                                 seconds(3),
                                 {},
                                 mode});

  defs.push_back(EventDefinition{
      EventTypeId("TRIO_" + tag),
      {{"a", SlotFilter::observation(SensorId("SRa"))},
       {"b", SlotFilter::observation(SensorId("SRb"))},
       {"c", SlotFilter::observation(SensorId("SRc"))}},
      core::c_and(
          {core::c_distance(0, 1, core::RelationalOp::kLt, 9.0),
           core::c_or({core::c_distance(1, 2, core::RelationalOp::kLt, 6.0),
                       core::c_attr(core::ValueAggregate::kMin, "value", {0, 1, 2},
                                    core::RelationalOp::kGt, 75.0)})}),
      seconds(3),
      {},
      mode});

  return defs;
}

struct Stream {
  std::vector<core::Entity> entities;
  std::vector<TimePoint> nows;
};

/// skew_hot = 0: uniform over 4 sensors. Otherwise the probability that
/// an arrival comes from the hot sensor SRa (e.g. 0.9 for 90/10).
Stream make_stream(std::uint64_t seed, int n, double skew_hot) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  const char* sensors[] = {"SRa", "SRb", "SRc", "SRd"};  // SRd only matches wildcards
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(100 + rng.uniform_int(0, 900));
    const char* sensor;
    if (skew_hot > 0.0 && rng.chance(skew_hot)) {
      sensor = sensors[0];
    } else {
      sensor = sensors[rng.uniform_int(0, 3)];
    }
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 1500));
    s.entities.push_back(core::Entity(obs(static_cast<int>(rng.uniform_int(1, 4)), sensor,
                                          static_cast<std::uint64_t>(i), t,
                                          {rng.uniform(0, 24), rng.uniform(0, 24)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

/// Feeds `stream` through a sharded runtime in `batch_size` batches with
/// `migrations` forced at deterministic seed-derived stream positions,
/// and asserts exact stream equality against the sequential engine plus
/// counter conservation. Every migration must actually be issued.
void run_migration_differential(std::uint64_t seed, std::size_t shards, std::size_t batch_size,
                                ConsumptionMode mode, double skew_hot, const std::string& tag,
                                std::size_t migrations = 4, std::size_t queue_capacity = 4096,
                                std::size_t near_dups = 0) {
  RuntimeOptions options;
  options.shards = shards;
  options.queue_capacity = queue_capacity;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  auto defs = migration_definitions(mode, tag);
  const std::size_t base_defs = defs.size();
  // Near-duplicate family: identical filters and windows (each shard
  // engine collapses co-located members into shared plan nodes), varying
  // only the radius and output type. Forced migrations below target this
  // range, so a subscription regularly moves out of a shared stream while
  // co-subscribers keep theirs.
  for (std::size_t i = 0; i < near_dups; ++i) {
    defs.push_back(EventDefinition{
        EventTypeId("DUP" + std::to_string(i) + "_" + tag),
        {{"a", SlotFilter::observation(SensorId("SRa"))},
         {"b", SlotFilter::observation(SensorId("SRb"))}},
        core::c_distance(0, 1, core::RelationalOp::kLt, 3.0 + static_cast<double>(i % 5)),
        seconds(30),
        {},
        mode});
  }
  for (const EventDefinition& def : defs) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  const Stream stream = make_stream(seed, 320, skew_hot);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst : sequential.observe(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }

  // Deterministic seed-derived migration plan: >= 3 moves at distinct
  // mid-stream positions, cycling over definitions (so every group kind —
  // co-located pair, wildcard host, joins — migrates across runs) and
  // over destination shards.
  sim::Rng plan(seed ^ 0x9e3779b97f4a7c15ULL);
  // Positions are batch boundaries so every planned migration actually
  // lands mid-stream (the ingest loop only stops at multiples of the
  // batch size).
  const auto last_batch =
      static_cast<std::int64_t>((stream.entities.size() - 1) / batch_size);
  std::vector<std::size_t> at(migrations);
  for (std::size_t m = 0; m < migrations; ++m) {
    at[m] = static_cast<std::size_t>(plan.uniform_int(1, last_batch)) * batch_size;
  }
  std::sort(at.begin(), at.end());
  std::size_t next_mig = 0;
  std::uint64_t issued = 0;

  std::vector<std::string> got;
  const auto collect = [&](std::vector<EventInstance> instances) {
    for (const EventInstance& inst : instances) got.push_back(describe(inst));
  };
  for (std::size_t i = 0; i < stream.entities.size(); i += batch_size) {
    while (next_mig < at.size() && at[next_mig] <= i) {
      // With a near-duplicate family present, move its members: the point
      // is migrating subscriptions out of shared plan nodes mid-stream.
      const auto def =
          near_dups > 0
              ? base_defs + static_cast<std::size_t>(plan.uniform_int(
                                0, static_cast<std::int64_t>(near_dups) - 1))
              : static_cast<std::size_t>(plan.uniform_int(
                    0, static_cast<std::int64_t>(sharded.definition_count()) - 1));
      const auto to = static_cast<std::size_t>(
          plan.uniform_int(0, static_cast<std::int64_t>(shards) - 1));
      // Force a real move: if the group already lives on `to`, push it to
      // the next shard instead.
      if (!sharded.migrate_definition(def, to)) {
        ASSERT_TRUE(sharded.migrate_definition(def, (to + 1) % shards));
      }
      ++issued;
      ++next_mig;
    }
    const std::size_t n = std::min(batch_size, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
    collect(sharded.poll());
  }
  collect(sharded.flush());

  const std::string ctx = tag + " seed=" + std::to_string(seed) +
                          " shards=" + std::to_string(shards) +
                          " batch=" + std::to_string(batch_size) +
                          " skew=" + std::to_string(skew_hot);
  ASSERT_GE(issued, 3u) << ctx;
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k], want[k]) << ctx << " instance " << k;
  }

  // Conservation at quiescence: every instance merged exactly once, every
  // delivery observed by exactly one shard engine, migrations all issued.
  const RuntimeStats stats = sharded.stats();
  EXPECT_EQ(stats.instances, want.size()) << ctx;
  EXPECT_EQ(stats.engine.instances_out, stats.instances) << ctx;
  EXPECT_EQ(stats.engine.entities_in, stats.deliveries) << ctx;
  EXPECT_EQ(stats.migrations, issued) << ctx;
  EXPECT_EQ(stats.arrivals + stats.dropped, stream.entities.size()) << ctx;
}

class MigrationDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationDifferentialTest, UniformStreamsMatchUnderForcedMigrations) {
  for (const std::size_t shards : {2u, 4u, 8u}) {
    for (const std::size_t batch : {1u, 64u}) {
      run_migration_differential(GetParam(), shards, batch, ConsumptionMode::kUnrestricted,
                                 0.0, "MU");
    }
  }
}

TEST_P(MigrationDifferentialTest, SharedPlanMembersMigrateWithoutDisturbingCoSubscribers) {
  // A 12-strong near-duplicate family shares slot streams inside each
  // shard engine; every forced migration extracts one member (private
  // carried buffers, co-subscribers untouched) and implants it elsewhere
  // (possibly joining another shard's family). The merged stream must
  // stay byte-identical throughout.
  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t batch : {1u, 64u}) {
      run_migration_differential(GetParam() ^ 0xd0bULL, shards, batch,
                                 ConsumptionMode::kUnrestricted, 0.0, "NP", 6, 4096, 12);
    }
  }
}

TEST_P(MigrationDifferentialTest, SkewedStreamsMatchUnderForcedMigrations) {
  for (const std::size_t shards : {2u, 4u, 8u}) {
    for (const std::size_t batch : {1u, 64u}) {
      run_migration_differential(GetParam() ^ 0x5eedULL, shards, batch, ConsumptionMode::kConsume,
                                 0.9, "MS");
    }
  }
}

TEST_P(MigrationDifferentialTest, AutomaticRebalancingKeepsStreamEqual) {
  // The adaptive path end to end: tight epochs + a skewed stream make the
  // default policy migrate on its own; the stream must stay exact.
  RuntimeOptions options;
  options.shards = 4;
  options.rebalance_epoch = 48;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  for (const EventDefinition& def :
       migration_definitions(ConsumptionMode::kUnrestricted, "AR")) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }
  const Stream stream = make_stream(GetParam() ^ 0xab1eULL, 640, 0.9);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst : sequential.observe(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }
  std::vector<std::string> got;
  for (std::size_t i = 0; i < stream.entities.size(); i += 16) {
    const std::size_t n = std::min<std::size_t>(16, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
    for (const EventInstance& inst : sharded.poll()) got.push_back(describe(inst));
  }
  for (const EventInstance& inst : sharded.flush()) got.push_back(describe(inst));

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) ASSERT_EQ(got[k], want[k]) << "instance " << k;
  EXPECT_GT(sharded.stats().rebalance_passes, 0u);
}

TEST_P(MigrationDifferentialTest, TinyCapacityStreamsMatchUnderForcedMigrations) {
  // capacity {1,2}: the migration control pair must interleave exactly at
  // its barrier while the ring wraps on every push and producers sit in
  // permanent backpressure (capacity-exempt controls included).
  for (const std::size_t capacity : {1u, 2u}) {
    run_migration_differential(GetParam() ^ 0x2f9ULL, 4, 1, ConsumptionMode::kUnrestricted,
                               0.0, "MT" + std::to_string(capacity), 4, capacity);
    run_migration_differential(GetParam() ^ 0x2faULL, 2, 64, ConsumptionMode::kConsume,
                               0.9, "MT" + std::to_string(capacity) + "b", 4, capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationDifferentialTest, ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ---------------------------------------------------------------------------
// Soak: continuous adaptive rebalancing under a 90/10 skewed workload.
// ---------------------------------------------------------------------------

/// 16 single-slot threshold groups over 16 sensors. Registration order
/// round-robins them over the shards, so the 4 hot sensors below — the
/// sensors of definitions {0, 4, 8, 12} — all land on shard 0 and the
/// skewed stream pins it until the rebalancer spreads them.
std::vector<EventDefinition> soak_definitions() {
  std::vector<EventDefinition> defs;
  for (int i = 0; i < 16; ++i) {
    defs.push_back(EventDefinition{
        EventTypeId("SOAK" + std::to_string(i)),
        {{"x", SlotFilter::observation(SensorId("SK" + std::to_string(i)))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
        seconds(60),
        {},
        ConsumptionMode::kConsume});
  }
  return defs;
}

Stream make_soak_stream(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  const int hot[] = {0, 4, 8, 12};  // initially co-located on shard 0
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(1 + rng.uniform_int(0, 9));
    int sensor;
    if (rng.chance(0.9)) {
      sensor = hot[rng.uniform_int(0, 3)];
    } else {
      sensor = static_cast<int>(rng.uniform_int(0, 15));
    }
    s.entities.push_back(core::Entity(obs(1, "SK" + std::to_string(sensor),
                                          static_cast<std::uint64_t>(i), now,
                                          {rng.uniform(0, 24), rng.uniform(0, 24)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

struct SoakResult {
  std::vector<std::string> stream;
  double load_ratio = 0.0;  ///< max/mean per-shard routed arrivals
  RuntimeStats stats;
};

SoakResult run_soak(const Stream& stream, std::size_t rebalance_epoch,
                    std::size_t queue_capacity) {
  RuntimeOptions options;
  options.shards = 4;
  options.queue_capacity = queue_capacity;
  options.rebalance_epoch = rebalance_epoch;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def : soak_definitions()) rt.add_definition(def);

  SoakResult r;
  for (std::size_t i = 0; i < stream.entities.size(); i += 64) {
    const std::size_t n = std::min<std::size_t>(64, stream.entities.size() - i);
    rt.ingest_batch(std::span(stream.entities).subspan(i, n),
                    std::span(stream.nows).subspan(i, n));
    for (const EventInstance& inst : rt.poll()) r.stream.push_back(describe(inst));
  }
  for (const EventInstance& inst : rt.flush()) r.stream.push_back(describe(inst));

  const std::vector<std::uint64_t> loads = rt.shard_arrival_loads();
  const auto total = static_cast<double>(
      std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}));
  const auto peak = static_cast<double>(*std::max_element(loads.begin(), loads.end()));
  r.load_ratio = peak / (total / static_cast<double>(loads.size()));
  r.stats = rt.stats();
  return r;
}

TEST(RebalanceSoakTest, SkewedLoadSpreadNarrowsWithNoLossOrDuplication) {
  const Stream stream = make_soak_stream(7, 24'000);

  // Sequential reference for exactness.
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyber, {0, 0});
  for (const EventDefinition& def : soak_definitions()) sequential.add_definition(def);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst : sequential.observe(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }

  constexpr std::size_t kQueue = 256;
  const SoakResult off = run_soak(stream, /*rebalance_epoch=*/0, kQueue);
  const SoakResult on = run_soak(stream, /*rebalance_epoch=*/1024, kQueue);

  // Exactness under continuous rebalancing: nothing lost, duplicated, or
  // reordered — byte-identical to the sequential engine (and to the
  // static-placement run).
  ASSERT_EQ(on.stream.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k) {
    ASSERT_EQ(on.stream[k], want[k]) << "instance " << k;
  }
  ASSERT_EQ(off.stream, want);

  // The default policy must have migrated the hot groups off shard 0 and
  // measurably narrowed the arrival-load spread. Static placement pins
  // ~90% of the stream on one of 4 shards (ratio ~3.6); spreading the
  // four hot groups brings the ratio towards 1.
  std::cout << "[soak] max/mean arrival-load ratio: off=" << off.load_ratio
            << " on=" << on.load_ratio << " (migrations=" << on.stats.migrations
            << ", passes=" << on.stats.rebalance_passes << ")\n";
  EXPECT_GT(on.stats.migrations, 0u);
  EXPECT_GE(off.load_ratio, 3.0);
  EXPECT_LT(on.load_ratio, 0.7 * off.load_ratio);

  // Backpressure bounds inbox depth in both runs.
  EXPECT_LE(off.stats.max_inbox, kQueue);
  EXPECT_LE(on.stats.max_inbox, kQueue);
}

// ---------------------------------------------------------------------------
// Migration bookkeeping units.
// ---------------------------------------------------------------------------

TEST(MigrationApiTest, GroupMovesTogetherAndBookkeepingFollows) {
  RuntimeOptions options;
  options.shards = 4;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def :
       migration_definitions(ConsumptionMode::kUnrestricted, "BK")) {
    rt.add_definition(def);
  }
  // Definitions 0 and 1 share an event type: one group.
  ASSERT_EQ(rt.group_of(0), rt.group_of(1));
  ASSERT_EQ(rt.shard_of(0), rt.shard_of(1));

  const std::size_t target = (rt.shard_of(0) + 1) % rt.shard_count();
  EXPECT_TRUE(rt.migrate_definition(0, target));
  EXPECT_EQ(rt.shard_of(0), target);
  EXPECT_EQ(rt.shard_of(1), target);  // co-located group moved together
  EXPECT_FALSE(rt.migrate_definition(1, target));  // already there
  EXPECT_EQ(rt.stats().migrations, 1u);

  EXPECT_THROW((void)rt.migrate_definition(99, 0), std::out_of_range);
  EXPECT_THROW((void)rt.migrate_definition(0, 99), std::out_of_range);

  // Registration is closed once placement went dynamic.
  EXPECT_THROW(rt.add_definition(migration_definitions(ConsumptionMode::kConsume, "BK2")[0]),
               std::logic_error);
  EXPECT_TRUE(rt.flush().empty());
}

TEST(MigrationApiTest, MigratedDefinitionKeepsDetectingOnNewShard) {
  RuntimeOptions options;
  options.shards = 2;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  rt.add_definition(EventDefinition{
      EventTypeId("D"),
      {{"x", SlotFilter::observation(SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
      seconds(60),
      {},
      ConsumptionMode::kConsume});
  rt.ingest(core::Entity(obs(1, "SR", 0, TimePoint(1000), {0, 0}, 80.0)), TimePoint(1000));
  EXPECT_TRUE(rt.migrate_definition(0, 1 - rt.shard_of(0)));
  rt.ingest(core::Entity(obs(1, "SR", 1, TimePoint(2000), {0, 0}, 90.0)), TimePoint(2000));
  const auto out = rt.flush();
  ASSERT_EQ(out.size(), 2u);
  // Sequence numbers are continuous across the migration.
  EXPECT_EQ(out[0].key.seq + 1, out[1].key.seq);
}

// ---------------------------------------------------------------------------
// SpilloverPolicy decision units.
// ---------------------------------------------------------------------------

TEST(SpilloverPolicyTest, MigratesHighestCostGroupOffHotShard) {
  SpilloverPolicy policy;
  const std::vector<std::uint64_t> shard_load = {900, 50, 30, 20};
  const std::vector<GroupLoad> groups = {
      {0, 0, 500, true}, {1, 0, 400, true}, {2, 1, 50, true}, {3, 2, 30, true}, {4, 3, 20, true}};
  std::vector<MigrationOrder> out;
  policy.decide(RebalanceView{shard_load, groups}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].group, 0u);  // the 500-cost group
  EXPECT_EQ(out[0].to, 3u);     // the least-loaded shard
}

TEST(SpilloverPolicyTest, LeavesIndivisibleHotGroupAlone) {
  // One group is the whole hot load: moving it would just move the
  // hotspot, so the strict-improvement rule must reject the migration.
  SpilloverPolicy policy;
  const std::vector<std::uint64_t> shard_load = {1000, 10, 10, 10};
  const std::vector<GroupLoad> groups = {
      {0, 0, 1000, true}, {1, 1, 10, true}, {2, 2, 10, true}, {3, 3, 10, true}};
  std::vector<MigrationOrder> out;
  policy.decide(RebalanceView{shard_load, groups}, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpilloverPolicyTest, SkipsUnmovableGroupsAndBalancedShards) {
  SpilloverPolicy policy;
  {
    // Hot shard, but its big group is mid-migration: pick the next one.
    const std::vector<std::uint64_t> shard_load = {900, 50, 30, 20};
    const std::vector<GroupLoad> groups = {
        {0, 0, 500, false}, {1, 0, 400, true}, {2, 1, 50, true}, {3, 2, 30, true},
        {4, 3, 20, true}};
    std::vector<MigrationOrder> out;
    policy.decide(RebalanceView{shard_load, groups}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].group, 1u);
  }
  {
    // Balanced cluster: nothing above 1.5x mean, no orders.
    const std::vector<std::uint64_t> shard_load = {100, 110, 90, 100};
    const std::vector<GroupLoad> groups = {
        {0, 0, 100, true}, {1, 1, 110, true}, {2, 2, 90, true}, {3, 3, 100, true}};
    std::vector<MigrationOrder> out;
    policy.decide(RebalanceView{shard_load, groups}, out);
    EXPECT_TRUE(out.empty());
  }
}

TEST(SpilloverPolicyTest, HonorsMigrationCap) {
  SpilloverPolicy::Options opts;
  opts.max_migrations = 1;
  SpilloverPolicy policy(opts);
  const std::vector<std::uint64_t> shard_load = {900, 800, 10, 10};
  const std::vector<GroupLoad> groups = {
      {0, 0, 450, true}, {1, 0, 450, true}, {2, 1, 400, true}, {3, 1, 400, true},
      {4, 2, 10, true},  {5, 3, 10, true}};
  std::vector<MigrationOrder> out;
  policy.decide(RebalanceView{shard_load, groups}, out);
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace stem::runtime
