#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "sim/random.hpp"

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using time_model::Duration;
using time_model::seconds;
using time_model::TimePoint;

/// Randomized workloads checked against a brute-force oracle. These pin
/// down the engine's join semantics: in kUnrestricted mode, the set of
/// emitted bindings must equal the set of entity combinations that (a)
/// satisfy the condition, (b) are window-compatible, and (c) were
/// evaluated in arrival order (the newest entity completes the binding).

PhysicalObservation obs(int mote, const char* sensor, std::uint64_t seq, TimePoint t, Point p,
                        double value) {
  PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

struct RandomStream {
  std::vector<Entity> xs;  // arrive interleaved: xs[i] then ys[i]
  std::vector<Entity> ys;
};

RandomStream make_stream(sim::Rng& rng, int n, Duration spacing) {
  RandomStream s;
  TimePoint t = TimePoint::epoch();
  for (int i = 0; i < n; ++i) {
    t += spacing;
    s.xs.push_back(Entity(obs(1, "SRx", static_cast<std::uint64_t>(i), t,
                              {rng.uniform(0, 20), rng.uniform(0, 20)}, rng.uniform(0, 100))));
    t += spacing;
    s.ys.push_back(Entity(obs(2, "SRy", static_cast<std::uint64_t>(i), t,
                              {rng.uniform(0, 20), rng.uniform(0, 20)}, rng.uniform(0, 100))));
  }
  return s;
}

class JoinOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JoinOracleTest, UnrestrictedJoinMatchesBruteForce) {
  sim::Rng rng(GetParam());
  const Duration window = seconds(5);
  const Duration spacing = seconds(1);
  const double max_dist = 10.0;
  const RandomStream stream = make_stream(rng, 12, spacing);

  EventDefinition def{EventTypeId("J"),
                      {{"x", SlotFilter::observation(SensorId("SRx"))},
                       {"y", SlotFilter::observation(SensorId("SRy"))}},
                      c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                             c_distance(0, 1, RelationalOp::kLt, max_dist)}),
                      window,
                      {},
                      ConsumptionMode::kUnrestricted};
  DetectionEngine engine(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  engine.add_definition(def);

  // Feed interleaved x0 y0 x1 y1 ... and collect matched provenance pairs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> engine_pairs;  // (x seq, y seq)
  for (std::size_t i = 0; i < stream.xs.size(); ++i) {
    for (const Entity* e : {&stream.xs[i], &stream.ys[i]}) {
      const TimePoint now = e->occurrence_time().end();
      for (const EventInstance& inst : engine.observe(*e, now)) {
        ASSERT_EQ(inst.provenance.size(), 2u);
        engine_pairs.emplace_back(inst.provenance[0].seq, inst.provenance[1].seq);
      }
    }
  }

  // Oracle: all (x, y) pairs satisfying the condition whose partner was
  // still inside the window when the later entity arrived. Buffer caps
  // never bind here (12 < 64).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> oracle_pairs;
  for (std::size_t i = 0; i < stream.xs.size(); ++i) {
    for (std::size_t j = 0; j < stream.ys.size(); ++j) {
      const Entity& x = stream.xs[i];
      const Entity& y = stream.ys[j];
      const TimePoint tx = x.occurrence_time().end();
      const TimePoint ty = y.occurrence_time().end();
      if (!(tx < ty)) continue;  // "x before y" (x always precedes same-index y)
      if (geom::distance(x.location().as_point(), y.location().as_point()) >= max_dist) continue;
      // Window compatibility at join time (the later of the two arrivals):
      const TimePoint later = tx > ty ? tx : ty;
      if (tx < later - def.window || ty < later - def.window) continue;
      oracle_pairs.emplace_back(x.observation().seq, y.observation().seq);
    }
  }

  std::sort(engine_pairs.begin(), engine_pairs.end());
  std::sort(oracle_pairs.begin(), oracle_pairs.end());
  EXPECT_EQ(engine_pairs, oracle_pairs) << "seed " << GetParam();
}

TEST_P(JoinOracleTest, ConsumeModeEmitsDisjointParticipants) {
  // Property: in kConsume mode every entity participates in at most one
  // emitted instance.
  sim::Rng rng(GetParam() ^ 0xabcdULL);
  const RandomStream stream = make_stream(rng, 16, seconds(1));

  EventDefinition def{EventTypeId("C"),
                      {{"x", SlotFilter::observation(SensorId("SRx"))},
                       {"y", SlotFilter::observation(SensorId("SRy"))}},
                      c_distance(0, 1, RelationalOp::kLt, 12.0),
                      seconds(6),
                      {},
                      ConsumptionMode::kConsume};
  DetectionEngine engine(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  engine.add_definition(def);

  std::vector<EventInstanceKey> used;
  for (std::size_t i = 0; i < stream.xs.size(); ++i) {
    for (const Entity* e : {&stream.xs[i], &stream.ys[i]}) {
      for (const EventInstance& inst : engine.observe(*e, e->occurrence_time().end())) {
        for (const auto& p : inst.provenance) used.push_back(p);
      }
    }
  }
  auto sorted = used;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return std::tie(a.observer, a.event, a.seq) < std::tie(b.observer, b.event, b.seq);
  });
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "an entity was consumed twice (seed " << GetParam() << ")";
}

TEST_P(JoinOracleTest, SingleSlotThresholdMatchesDirectEvaluation) {
  sim::Rng rng(GetParam() ^ 0x7777ULL);
  EventDefinition def{EventTypeId("T"),
                      {{"x", SlotFilter::observation(SensorId("SRx"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 50.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume};
  DetectionEngine engine(ObserverId("MT1"), Layer::kSensor, {0, 0});
  engine.add_definition(def);

  TimePoint t = TimePoint::epoch();
  int expected = 0, detected = 0;
  for (int i = 0; i < 100; ++i) {
    t += seconds(1);
    const double v = rng.uniform(0, 100);
    if (v > 50.0) ++expected;
    const Entity e(obs(1, "SRx", static_cast<std::uint64_t>(i), t, {0, 0}, v));
    detected += static_cast<int>(engine.observe(e, t).size());
  }
  EXPECT_EQ(detected, expected);
}

TEST_P(JoinOracleTest, ObserveBatchOfStampSortedShuffleMatchesPerArrivalObserve) {
  // Deflake guard for the batched API: every random stream is seeded
  // explicitly from the test parameter (no ambient randomness), the
  // arrivals are shuffled with a second explicitly-seeded stream, then
  // stamp-sorted back into occurrence order. observe_batch over the
  // reordered-then-sorted batch must match the per-arrival observe loop
  // exactly — batching changes amortization, never semantics.
  sim::Rng stream_rng(GetParam() ^ 0xba7cULL);
  const RandomStream stream = make_stream(stream_rng, 20, seconds(1));

  std::vector<Entity> arrivals;
  for (std::size_t i = 0; i < stream.xs.size(); ++i) {
    arrivals.push_back(stream.xs[i]);
    arrivals.push_back(stream.ys[i]);
  }
  // Shuffle (Fisher–Yates with the explicit seed), then restore stamp
  // order: the batch contract requires arrivals in time order, and a
  // shuffled source must canonicalize to the same stream.
  sim::Rng shuffle_rng(GetParam() ^ 0x0fffULL);
  for (std::size_t i = arrivals.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(arrivals[i - 1], arrivals[j]);
  }
  std::sort(arrivals.begin(), arrivals.end(), [](const Entity& a, const Entity& b) {
    return a.occurrence_time().end() < b.occurrence_time().end();
  });
  std::vector<TimePoint> nows;
  for (const Entity& e : arrivals) nows.push_back(e.occurrence_time().end());

  EventDefinition def{EventTypeId("J"),
                      {{"x", SlotFilter::observation(SensorId("SRx"))},
                       {"y", SlotFilter::observation(SensorId("SRy"))}},
                      c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                             c_distance(0, 1, RelationalOp::kLt, 10.0)}),
                      seconds(5),
                      {},
                      ConsumptionMode::kUnrestricted};
  DetectionEngine batched(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  DetectionEngine looped(ObserverId("SINK"), Layer::kCyberPhysical, {0, 0});
  batched.add_definition(def);
  looped.add_definition(def);

  const auto batch_out = batched.observe_batch(arrivals, nows);
  std::vector<EventInstance> loop_out;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    for (EventInstance& inst : looped.observe(arrivals[i], nows[i])) {
      loop_out.push_back(std::move(inst));
    }
  }

  ASSERT_EQ(batch_out.size(), loop_out.size()) << "seed " << GetParam();
  for (std::size_t k = 0; k < batch_out.size(); ++k) {
    EXPECT_EQ(batch_out[k].key, loop_out[k].key) << "seed " << GetParam();
    ASSERT_EQ(batch_out[k].provenance.size(), loop_out[k].provenance.size());
    for (std::size_t p = 0; p < batch_out[k].provenance.size(); ++p) {
      EXPECT_EQ(batch_out[k].provenance[p], loop_out[k].provenance[p]) << "seed " << GetParam();
    }
  }
  EXPECT_EQ(batched.stats(), looped.stats()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinOracleTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace stem::core
