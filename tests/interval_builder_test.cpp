#include <gtest/gtest.h>

#include "core/interval_builder.hpp"

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using time_model::Duration;
using time_model::seconds;
using time_model::TimeInterval;
using time_model::TimePoint;

EventInstance punctual(const char* type, TimePoint t, Point p, double rho = 1.0,
                       std::uint64_t seq = 0) {
  EventInstance inst;
  inst.key = EventInstanceKey{ObserverId("SINK"), EventTypeId(type), seq};
  inst.layer = Layer::kCyberPhysical;
  inst.gen_time = t;
  inst.est_time = time_model::OccurrenceTime(t);
  inst.est_location = Location(p);
  inst.confidence = rho;
  return inst;
}

IntervalBuilder make_builder(Duration gap = seconds(5), Duration min_length = Duration::zero()) {
  IntervalBuilder::Config cfg;
  cfg.input = EventTypeId("NEARBY");
  cfg.output = EventTypeId("NEARBY_INTERVAL");
  cfg.gap = gap;
  cfg.min_length = min_length;
  return IntervalBuilder(cfg, ObserverId("SINK"), {50, 50});
}

TEST(IntervalBuilderTest, CoalescesConfirmationsIntoOneInterval) {
  auto builder = make_builder();
  const TimePoint t0 = TimePoint::epoch();
  // Confirmations every 2 s for 10 s (well within the 5 s gap).
  for (int i = 0; i <= 5; ++i) {
    const auto closed = builder.on_instance(
        punctual("NEARBY", t0 + seconds(2 * i), {10, 10}, 1.0, static_cast<std::uint64_t>(i)),
        t0 + seconds(2 * i));
    EXPECT_FALSE(closed.has_value());
  }
  EXPECT_TRUE(builder.open());

  // Silence for > gap: the tick closes it.
  const auto closed = builder.on_tick(t0 + seconds(16));
  ASSERT_TRUE(closed.has_value());
  EXPECT_FALSE(builder.open());
  EXPECT_EQ(closed->key.event, EventTypeId("NEARBY_INTERVAL"));
  EXPECT_TRUE(closed->est_time.is_interval());
  EXPECT_EQ(closed->est_time, time_model::OccurrenceTime(TimeInterval(t0, t0 + seconds(10))));
  EXPECT_EQ(*closed->attributes.number("confirmations"), 6.0);
  EXPECT_EQ(closed->provenance.size(), 6u);
}

TEST(IntervalBuilderTest, GapSplitsIntoTwoIntervals) {
  auto builder = make_builder(seconds(3));
  const TimePoint t0 = TimePoint::epoch();
  builder.on_instance(punctual("NEARBY", t0, {0, 0}), t0);
  builder.on_instance(punctual("NEARBY", t0 + seconds(1), {0, 0}, 1.0, 1), t0 + seconds(1));
  // A confirmation 10 s later closes the first interval and opens another.
  const auto first = builder.on_instance(punctual("NEARBY", t0 + seconds(11), {0, 0}, 1.0, 2),
                                         t0 + seconds(11));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->est_time,
            time_model::OccurrenceTime(TimeInterval(t0, t0 + seconds(1))));
  EXPECT_TRUE(builder.open());

  const auto second = builder.flush(t0 + seconds(12));
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->est_time.is_punctual());  // single confirmation
  EXPECT_EQ(second->key.seq, 1u);               // sequence advanced
}

TEST(IntervalBuilderTest, MinLengthDiscardsGlitches) {
  auto builder = make_builder(seconds(3), seconds(5));
  const TimePoint t0 = TimePoint::epoch();
  builder.on_instance(punctual("NEARBY", t0, {0, 0}), t0);
  builder.on_instance(punctual("NEARBY", t0 + seconds(2), {0, 0}, 1.0, 1), t0 + seconds(2));
  // Only 2 s long: below min_length, discarded on close.
  EXPECT_FALSE(builder.flush(t0 + seconds(10)).has_value());
  EXPECT_FALSE(builder.open());
}

TEST(IntervalBuilderTest, IgnoresOtherEventTypes) {
  auto builder = make_builder();
  EXPECT_FALSE(builder
                   .on_instance(punctual("OTHER", TimePoint::epoch(), {0, 0}),
                                TimePoint::epoch())
                   .has_value());
  EXPECT_FALSE(builder.open());
}

TEST(IntervalBuilderTest, LocationIsHullOfConfirmations) {
  auto builder = make_builder();
  const TimePoint t0 = TimePoint::epoch();
  builder.on_instance(punctual("NEARBY", t0, {0, 0}), t0);
  builder.on_instance(punctual("NEARBY", t0 + seconds(1), {10, 0}, 1.0, 1), t0 + seconds(1));
  builder.on_instance(punctual("NEARBY", t0 + seconds(2), {0, 10}, 1.0, 2), t0 + seconds(2));
  const auto closed = builder.flush(t0 + seconds(3));
  ASSERT_TRUE(closed.has_value());
  ASSERT_TRUE(closed->est_location.is_field());
  EXPECT_DOUBLE_EQ(closed->est_location.as_field().area(), 50.0);
}

TEST(IntervalBuilderTest, ConfidenceIsMeanOfConfirmations) {
  auto builder = make_builder();
  const TimePoint t0 = TimePoint::epoch();
  builder.on_instance(punctual("NEARBY", t0, {0, 0}, 0.9), t0);
  builder.on_instance(punctual("NEARBY", t0 + seconds(1), {0, 0}, 0.5, 1), t0 + seconds(1));
  const auto closed = builder.flush(t0 + seconds(2));
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(closed->confidence, 0.7, 1e-12);
}

TEST(IntervalBuilderTest, PaperThirtyMinuteExample) {
  // "user A is nearby window B for the last 30 minutes": coalesce minute-
  // by-minute confirmations, then check the emitted interval's length.
  auto builder = make_builder(time_model::minutes(2), time_model::minutes(30));
  const TimePoint t0 = TimePoint::epoch();
  for (int minute = 0; minute <= 35; ++minute) {
    builder.on_instance(punctual("NEARBY", t0 + time_model::minutes(minute), {10, 10}, 1.0,
                                 static_cast<std::uint64_t>(minute)),
                        t0 + time_model::minutes(minute));
  }
  const auto closed = builder.flush(t0 + time_model::minutes(36));
  ASSERT_TRUE(closed.has_value());
  EXPECT_GE(closed->est_time.length(), time_model::minutes(30));

  // A 20-minute presence does NOT qualify.
  auto short_builder = make_builder(time_model::minutes(2), time_model::minutes(30));
  for (int minute = 0; minute <= 20; ++minute) {
    short_builder.on_instance(punctual("NEARBY", t0 + time_model::minutes(minute), {10, 10},
                                       1.0, static_cast<std::uint64_t>(minute)),
                              t0 + time_model::minutes(minute));
  }
  EXPECT_FALSE(short_builder.flush(t0 + time_model::minutes(21)).has_value());
}

TEST(IntervalBuilderTest, TickBeforeGapKeepsIntervalOpen) {
  auto builder = make_builder(seconds(5));
  builder.on_instance(punctual("NEARBY", TimePoint::epoch(), {0, 0}), TimePoint::epoch());
  EXPECT_FALSE(builder.on_tick(TimePoint::epoch() + seconds(4)).has_value());
  EXPECT_TRUE(builder.open());
}

}  // namespace
}  // namespace stem::core
