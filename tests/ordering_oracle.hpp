#pragma once

/// Permutation-differential oracle for the relaxed ordering tiers
/// (RuntimeOptions::ordering). A sequential DetectionEngine fed the same
/// arrivals is the reference; the sharded runtime's tagged stream is the
/// subject. Three checks compose per tier:
///
///  - check_equal       — byte-exact (stamp, def, description) sequence
///                        equality: the global_total_order contract.
///  - check_per_def     — for every definition, the subject's emission
///                        subsequence (in release order) equals the
///                        reference's, stamps included: the
///                        per_definition_order contract. Implies multiset
///                        equality when paired with an overall size check
///                        (done inside).
///  - check_multiset    — (stamp, def, description) multiset equality:
///                        the unordered_watermarked floor.
///
/// Watermark soundness is checked incrementally while consuming (see
/// WatermarkAudit): low_watermark() must be monotone, must never release
/// an emission at or below a previously returned watermark, and at
/// quiescence must equal the last assigned stamp.
///
/// `canonicalize_seq` supports split groups in the relaxed tiers: there
/// the two partitioned engine counters interleave per event type, so the
/// engine-assigned EventInstanceKey::seq legitimately diverges from the
/// sequential numbering; the oracle zeroes it before comparing and
/// separately asserts per-definition seq monotonicity.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "runtime/sharded_runtime.hpp"

namespace stem::runtime::oracle {

/// One emission, reduced to comparable form. For the reference stream,
/// `stamp` is the 1-based arrival index (valid whenever every arrival
/// routes to at least one shard — keep a wildcard definition registered).
struct Ref {
  std::uint64_t stamp = 0;
  std::uint32_t def = 0;
  std::string text;
  std::uint64_t seq = 0;  ///< engine-assigned EventInstanceKey::seq

  friend bool operator==(const Ref&, const Ref&) = default;
  friend auto operator<=>(const Ref&, const Ref&) = default;
};

inline std::string describe(const core::EventInstance& i, bool canonicalize_seq) {
  std::ostringstream os;
  core::EventInstanceKey key = i.key;
  if (canonicalize_seq) key.seq = 0;
  os << key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

inline Ref make_ref(std::uint64_t stamp, std::uint32_t def, const core::EventInstance& inst,
                    bool canonicalize_seq) {
  return Ref{stamp, def, describe(inst, canonicalize_seq), inst.key.seq};
}

/// Sequential reference: feeds the arrivals one at a time and records the
/// tagged emissions with their 1-based arrival stamps.
inline std::vector<Ref> sequential_reference(core::DetectionEngine& engine,
                                             std::span<const core::Entity> entities,
                                             std::span<const time_model::TimePoint> nows,
                                             bool cascade, bool canonicalize_seq) {
  std::vector<Ref> out;
  std::vector<core::Emission> emissions;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    emissions.clear();
    if (cascade) {
      engine.observe_cascading(entities[i], nows[i], emissions);
    } else {
      engine.observe(entities[i], nows[i], emissions);
    }
    for (const core::Emission& em : emissions) {
      out.push_back(make_ref(i + 1, em.def, em.instance, canonicalize_seq));
    }
  }
  return out;
}

inline std::vector<Ref> to_refs(const std::vector<TaggedInstance>& tagged,
                                bool canonicalize_seq) {
  std::vector<Ref> out;
  out.reserve(tagged.size());
  for (const TaggedInstance& t : tagged) {
    out.push_back(make_ref(t.stamp, t.def, t.instance, canonicalize_seq));
  }
  return out;
}

inline void check_equal(const std::vector<Ref>& got, const std::vector<Ref>& want,
                        const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k].stamp, want[k].stamp) << ctx << " instance " << k;
    ASSERT_EQ(got[k].def, want[k].def) << ctx << " instance " << k;
    ASSERT_EQ(got[k].text, want[k].text) << ctx << " instance " << k;
  }
}

inline void check_multiset(std::vector<Ref> got, std::vector<Ref> want,
                           const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k].stamp, want[k].stamp) << ctx << " sorted instance " << k;
    ASSERT_EQ(got[k].def, want[k].def) << ctx << " sorted instance " << k;
    ASSERT_EQ(got[k].text, want[k].text) << ctx << " sorted instance " << k;
  }
}

/// Per-definition order: project both streams onto each definition and
/// require byte equality of the projections — each definition's emissions
/// released in reference (stamp) order, whatever the interleaving.
inline void check_per_def(const std::vector<Ref>& got, const std::vector<Ref>& want,
                          const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  std::map<std::uint32_t, std::vector<const Ref*>> got_by, want_by;
  for (const Ref& r : got) got_by[r.def].push_back(&r);
  for (const Ref& r : want) want_by[r.def].push_back(&r);
  ASSERT_EQ(got_by.size(), want_by.size()) << ctx;
  for (const auto& [def, seq] : want_by) {
    const auto it = got_by.find(def);
    ASSERT_NE(it, got_by.end()) << ctx << " def " << def << " missing entirely";
    ASSERT_EQ(it->second.size(), seq.size()) << ctx << " def " << def;
    for (std::size_t k = 0; k < seq.size(); ++k) {
      ASSERT_EQ(it->second[k]->stamp, seq[k]->stamp)
          << ctx << " def " << def << " emission " << k;
      ASSERT_EQ(it->second[k]->text, seq[k]->text)
          << ctx << " def " << def << " emission " << k;
    }
  }
}

/// Per-definition engine-seq monotonicity — the canonicalized relaxed
/// split runs still promise strictly increasing counters per definition.
inline void check_per_def_seq_monotone(const std::vector<Ref>& got, const std::string& ctx) {
  std::map<std::uint32_t, std::pair<bool, std::uint64_t>> last;  // def -> (seen, seq)
  for (const Ref& r : got) {
    auto& [seen, prev] = last[r.def];
    if (seen) {
      ASSERT_GT(r.seq, prev) << ctx << " def " << r.def << " seq not increasing";
    }
    seen = true;
    prev = r.seq;
  }
}

/// Incremental watermark soundness audit. Usage per consumption step, in
/// this order:
///   auto got = rt.poll_tagged();               // or flush_tagged()
///   audit.observe(got);                        // vs the *previous* poll's W
///   audit.after_poll(rt.low_watermark());
/// and at quiescence: audit.at_quiescence(rt.low_watermark(), last_stamp).
///
/// Valid in cascade mode too, sub-stamped emissions included: the runtime
/// clamps low_watermark() strictly below the oldest in-flight (unclosed)
/// closure, so even the relaxed tiers' early releases — fragments of a
/// stamp's closure streamed across several polls while that closure is
/// still open, possibly interleaved from several pipelined closures — must
/// carry stamps above every previously promised watermark. observe()
/// audits exactly that: a watermark that passed a stamp while part of its
/// closure was still unreleased shows up as a later release at or below
/// the promise. (The coordinator does advance the watermark *between*
/// polls, so the audit checks each release against the last watermark the
/// consumer actually saw — the consumer-facing contract.)
class WatermarkAudit {
 public:
  explicit WatermarkAudit(std::string ctx) : ctx_(std::move(ctx)) {}

  /// Every emission released after low_watermark() returned W must carry
  /// a stamp strictly above W — W promised those stamps were already out.
  void observe(const std::vector<TaggedInstance>& released) {
    for (const TaggedInstance& t : released) {
      EXPECT_GT(t.stamp, last_) << ctx_ << " released stamp " << t.stamp
                                << " at or below promised watermark " << last_;
      released_max_ = std::max(released_max_, t.stamp);
    }
  }

  void after_poll(std::uint64_t watermark) {
    EXPECT_GE(watermark, last_) << ctx_ << " watermark regressed";
    last_ = std::max(last_, watermark);
  }

  void at_quiescence(std::uint64_t watermark, std::uint64_t last_stamp) {
    EXPECT_GE(watermark, last_) << ctx_;
    EXPECT_EQ(watermark, last_stamp) << ctx_ << " final watermark short of the stream";
    // Every sub-stamped release is covered by the final promise: nothing
    // left the runtime with a stamp the watermark never reached.
    EXPECT_GE(watermark, released_max_)
        << ctx_ << " released stamps outrun the final watermark";
  }

 private:
  std::string ctx_;
  std::uint64_t last_ = 0;
  std::uint64_t released_max_ = 0;  ///< largest stamp seen in any release
};

}  // namespace stem::runtime::oracle
