#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include <atomic>
#include <memory>

#include "core/engine.hpp"
#include "core/serialize.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "runtime/sharded_runtime.hpp"

/// Reliable-session suite: ReliableEndpoint must deliver every payload to
/// the upper handler exactly once and in order over links that drop,
/// duplicate, and reorder both data and ack frames — the seeded FaultPlan
/// makes each adversarial schedule reproducible. The differential leg
/// closes the loop on the paper's pipeline: a detection engine fed through
/// a 20%-lossy reliable link emits byte-identical instances to one fed the
/// same observations directly.

namespace stem::net {
namespace {

using core::Entity;
using core::ObserverId;
using core::SensorId;
using time_model::milliseconds;
using time_model::seconds;
using time_model::TimePoint;

core::PhysicalObservation obs(std::uint64_t seq, double value, TimePoint t) {
  core::PhysicalObservation o;
  o.mote = ObserverId("MT1");
  o.sensor = SensorId("SR");
  o.seq = seq;
  o.time = t;
  o.location = geom::Location(geom::Point{1, 2});
  o.attributes.set("value", value);
  return o;
}

/// Two reliable endpoints A -> B over one bidirectional link, with a
/// FaultPlan ready to abuse either direction. B records the payloads its
/// upper handler sees, in order.
struct ReliableFixture : ::testing::Test {
  ReliableFixture()
      : network(simulator, sim::Rng(7)),
        plan(0xfa17ULL),
        a(network, NodeId("a"), [](const Message&) {}),
        b(network, NodeId("b"),
          [this](const Message& msg) { delivered.push_back(msg); }) {
    network.connect(NodeId("a"), NodeId("b"),
                    LinkSpec{milliseconds(2), milliseconds(1), 0.0, 0.0});
    network.set_fault_plan(&plan);
  }

  /// Schedules `n` entity sends from A at 10ms spacing, starting at 10ms.
  void feed(int n) {
    for (int i = 0; i < n; ++i) {
      const TimePoint at = TimePoint::epoch() + milliseconds(10 * (i + 1));
      simulator.schedule_at(at, [this, i, at] {
        a.send(NodeId("b"), Entity(obs(static_cast<std::uint64_t>(i), 50.0 + i, at)));
      });
    }
  }

  /// Sequence numbers of the observations B's upper handler received.
  std::vector<std::uint64_t> delivered_seqs() const {
    std::vector<std::uint64_t> seqs;
    for (const Message& m : delivered) {
      seqs.push_back(std::get<Entity>(m.payload).observation().seq);
    }
    return seqs;
  }

  static std::vector<std::uint64_t> iota(int n) {
    std::vector<std::uint64_t> v;
    for (int i = 0; i < n; ++i) v.push_back(static_cast<std::uint64_t>(i));
    return v;
  }

  sim::Simulator simulator;
  Network network;
  FaultPlan plan;
  ReliableEndpoint a;
  ReliableEndpoint b;
  std::vector<Message> delivered;
};

TEST_F(ReliableFixture, LosslessLinkDeliversInOrderWithoutRetransmission) {
  feed(50);
  simulator.run();
  EXPECT_EQ(delivered_seqs(), iota(50));
  EXPECT_EQ(a.stats().data_sent, 50u);
  EXPECT_EQ(a.stats().retransmits, 0u);
  EXPECT_EQ(b.stats().delivered, 50u);
  EXPECT_EQ(b.stats().duplicates_suppressed, 0u);
  EXPECT_EQ(a.in_flight(), 0u);
}

TEST_F(ReliableFixture, HeavyDataLossIsRepairedByRetransmission) {
  LinkFault fault;
  fault.drop_prob = 0.20;
  plan.on_link(NodeId("a"), NodeId("b"), fault);
  feed(200);
  simulator.run();
  EXPECT_EQ(delivered_seqs(), iota(200));
  EXPECT_GT(a.stats().retransmits, 0u);
  EXPECT_EQ(b.stats().delivered, 200u);
  EXPECT_EQ(a.in_flight(), 0u);
  // Per-link accounting names the cause: the a->b link dropped frames and
  // carried the repairs.
  const LinkCounters& ab = network.stats().link(NodeId("a"), NodeId("b"));
  EXPECT_GT(ab.dropped, 0u);
  EXPECT_GT(ab.retransmitted, 0u);
  EXPECT_EQ(ab.sent, ab.delivered + ab.dropped);
}

TEST_F(ReliableFixture, LostAcksCostRetransmissionsNeverDuplicates) {
  // Drop every second ack: data arrives fine, the sender times out and
  // re-sends, and the receiver must suppress every duplicate and re-ack.
  LinkFault fault;
  fault.drop_every_n = 2;
  plan.on_link(NodeId("b"), NodeId("a"), fault);
  feed(100);
  simulator.run();
  EXPECT_EQ(delivered_seqs(), iota(100));
  EXPECT_EQ(b.stats().delivered, 100u);
  EXPECT_GT(a.stats().retransmits, 0u);
  EXPECT_GT(b.stats().duplicates_suppressed, 0u);
  EXPECT_EQ(a.in_flight(), 0u);
  const LinkCounters& ab = network.stats().link(NodeId("a"), NodeId("b"));
  EXPECT_GT(ab.duplicates_suppressed, 0u);
}

TEST_F(ReliableFixture, NetworkDuplicatedFramesAreSuppressed) {
  LinkFault fault;
  fault.duplicate_prob = 1.0;  // every delivered frame arrives twice
  plan.on_link(NodeId("a"), NodeId("b"), fault);
  feed(40);
  simulator.run();
  EXPECT_EQ(delivered_seqs(), iota(40));
  EXPECT_EQ(b.stats().delivered, 40u);
  EXPECT_GE(b.stats().duplicates_suppressed, 40u);
}

TEST_F(ReliableFixture, ReorderedFramesAreDeliveredInOrder) {
  // Jitter far above the 10ms send spacing scrambles arrival order; the
  // receiver's out-of-order buffer must restore sequence order exactly.
  LinkFault fault;
  fault.reorder_jitter = milliseconds(80);
  plan.on_link(NodeId("a"), NodeId("b"), fault);
  feed(100);
  simulator.run();
  EXPECT_EQ(delivered_seqs(), iota(100));
  EXPECT_EQ(b.stats().delivered, 100u);
}

TEST_F(ReliableFixture, EverythingAtOnce) {
  // Loss + duplication + reordering on data, counted loss on acks.
  LinkFault data;
  data.drop_prob = 0.15;
  data.duplicate_prob = 0.2;
  data.reorder_jitter = milliseconds(50);
  plan.on_link(NodeId("a"), NodeId("b"), data);
  LinkFault acks;
  acks.drop_every_n = 3;
  plan.on_link(NodeId("b"), NodeId("a"), acks);
  feed(150);
  simulator.run();
  EXPECT_EQ(delivered_seqs(), iota(150));
  EXPECT_EQ(b.stats().delivered, 150u);
  EXPECT_EQ(a.in_flight(), 0u);
}

TEST_F(ReliableFixture, PartitionWindowHealsAndDeliveryResumes) {
  // Hard partition of both directions for [200ms, 700ms): frames sent in
  // the window vanish; after healing, retransmission repairs the gap with
  // no duplicate or reordered delivery.
  LinkFault fault;
  fault.partitions.push_back({TimePoint::epoch() + milliseconds(200),
                              TimePoint::epoch() + milliseconds(700)});
  plan.on_link_both(NodeId("a"), NodeId("b"), fault);
  feed(100);
  simulator.run();
  EXPECT_EQ(delivered_seqs(), iota(100));
  EXPECT_GT(a.stats().retransmits, 0u);
  EXPECT_EQ(a.in_flight(), 0u);
}

TEST_F(ReliableFixture, PermanentPartitionDegradesObservably) {
  // Partition that never heals, finite retries: the sender must give up
  // (bounded work), count the abandoned frames, and clear its in-flight
  // window — degradation is visible in counters, never silent.
  ReliableEndpoint::Options opts;
  opts.max_retries = 4;
  ReliableEndpoint c(network, NodeId("c"), [](const Message&) {}, opts);
  network.connect(NodeId("c"), NodeId("b"),
                  LinkSpec{milliseconds(2), milliseconds(1), 0.0, 0.0});
  LinkFault wall;
  wall.partitions.push_back({TimePoint::epoch(), TimePoint::max()});
  plan.on_link_both(NodeId("c"), NodeId("b"), wall);
  for (int i = 0; i < 5; ++i) {
    const TimePoint at = TimePoint::epoch() + milliseconds(10 * (i + 1));
    simulator.schedule_at(at, [&c, i, at] {
      c.send(NodeId("b"), Entity(obs(static_cast<std::uint64_t>(i), 50.0, at)));
    });
  }
  simulator.run();
  EXPECT_EQ(c.stats().gave_up, 5u);
  EXPECT_EQ(c.in_flight(), 0u);
  EXPECT_GT(c.stats().retransmits, 0u);
}

TEST_F(ReliableFixture, PlainFramesInteroperate) {
  // A legacy node sends kPlain to a reliable endpoint: passthrough to the
  // upper handler, no session state, no ack traffic.
  network.register_node(NodeId("legacy"), [](const Message&) {});
  network.connect(NodeId("legacy"), NodeId("b"),
                  LinkSpec{milliseconds(2), milliseconds(1), 0.0, 0.0});
  Message msg;
  msg.src = NodeId("legacy");
  msg.dst = NodeId("b");
  msg.payload = Entity(obs(99, 1.0, TimePoint::epoch()));
  network.send(std::move(msg));
  simulator.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].kind, FrameKind::kPlain);
  EXPECT_EQ(delivered_seqs(), std::vector<std::uint64_t>{99});
  EXPECT_EQ(b.stats().acks_sent, 0u);
  EXPECT_EQ(b.stats().delivered, 0u);  // reliable-session counter untouched
}

/// Differential leg: the detection pipeline behind a 20%-lossy reliable
/// link is byte-identical to the same engine fed directly. The receiving
/// endpoint feeds its engine at *delivery* time; the reference engine
/// consumes the identical (entity, time) pairs, so any loss, duplication,
/// or reordering the session failed to mask would change the instance
/// stream.
TEST(ReliableDifferential, LossyLinkPreservesDetectionStream) {
  sim::Simulator simulator;
  Network network(simulator, sim::Rng(11));
  FaultPlan plan(0xd1ffULL);
  LinkFault fault;
  fault.drop_prob = 0.20;
  fault.duplicate_prob = 0.1;
  plan.on_link_both(NodeId("src"), NodeId("dst"), fault);
  network.set_fault_plan(&plan);

  const core::EventDefinition def{
      core::EventTypeId("HOT"),
      {{"x", core::SlotFilter::observation(SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 55.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};
  core::DetectionEngine behind_link(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  core::DetectionEngine reference(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  behind_link.add_definition(def);
  reference.add_definition(def);

  std::vector<std::string> got;
  std::vector<std::pair<Entity, TimePoint>> fed;
  ReliableEndpoint dst(network, NodeId("dst"), [&](const Message& msg) {
    const Entity& e = std::get<Entity>(msg.payload);
    fed.emplace_back(e, simulator.now());
    for (const core::EventInstance& inst : behind_link.observe(e, simulator.now())) {
      std::ostringstream os;
      os << inst.key << "@" << inst.gen_time << " V=" << inst.attributes;
      got.push_back(os.str());
    }
  });
  ReliableEndpoint src(network, NodeId("src"), [](const Message&) {});
  network.connect(NodeId("src"), NodeId("dst"),
                  LinkSpec{milliseconds(2), milliseconds(1), 0.0, 0.0});

  sim::Rng values(42);
  for (int i = 0; i < 300; ++i) {
    const TimePoint at = TimePoint::epoch() + milliseconds(5 * (i + 1));
    const double v = values.uniform(0, 100);
    simulator.schedule_at(at, [&src, i, v, at] {
      src.send(NodeId("dst"), Entity(obs(static_cast<std::uint64_t>(i), v, at)));
    });
  }
  simulator.run();

  ASSERT_EQ(fed.size(), 300u);  // exactly once each
  EXPECT_GT(src.stats().retransmits, 0u);
  std::vector<std::string> want;
  for (const auto& [entity, at] : fed) {
    for (const core::EventInstance& inst : reference.observe(entity, at)) {
      std::ostringstream os;
      os << inst.key << "@" << inst.gen_time << " V=" << inst.attributes;
      want.push_back(os.str());
    }
  }
  EXPECT_GT(want.size(), 0u);
  ASSERT_EQ(got, want);
}

/// The ISSUE 7 acceptance scenario in one piece: a seeded fault plan with
/// ≥5% link loss in front of a sharded runtime whose workers crash
/// mid-stream. The reliable session repairs the wire, checkpoint+replay
/// repairs the shards, and the merged emission stream is byte-identical
/// to a sequential engine fed the delivered stream — with every fault
/// counter nonzero to prove the faults actually fired.
TEST(ReliableDifferential, LossyLinkIntoCrashingShardedRuntimeEndToEnd) {
  sim::Simulator simulator;
  Network network(simulator, sim::Rng(13));
  FaultPlan plan(0xe2eULL);
  LinkFault fault;
  fault.drop_prob = 0.10;
  plan.on_link_both(NodeId("src"), NodeId("dst"), fault);
  network.set_fault_plan(&plan);

  auto polls = std::make_shared<std::atomic<std::uint64_t>>(0);
  runtime::RuntimeOptions options;
  options.shards = 4;
  options.checkpoint_epoch = 16;
  options.crash_hook = [polls](std::size_t) {
    const std::uint64_t n = polls->fetch_add(1, std::memory_order_relaxed) + 1;
    return n == 11 || n == 37;
  };
  runtime::ShardedEngineRuntime sharded(core::ObserverId("OB"), core::Layer::kCyberPhysical,
                                        {0, 0}, options);
  core::DetectionEngine sequential(core::ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  for (const char* sensor : {"SR", "SR2"}) {
    const core::EventDefinition def{
        core::EventTypeId(std::string("HOT_") + sensor),
        {{"x", core::SlotFilter::observation(SensorId(sensor))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 55.0),
        seconds(60),
        {},
        core::ConsumptionMode::kConsume};
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  std::vector<std::pair<Entity, TimePoint>> fed;
  ReliableEndpoint dst(network, NodeId("dst"), [&](const Message& msg) {
    const Entity& e = std::get<Entity>(msg.payload);
    fed.emplace_back(e, simulator.now());
    sharded.ingest(e, simulator.now());
  });
  ReliableEndpoint src(network, NodeId("src"), [](const Message&) {});
  network.connect(NodeId("src"), NodeId("dst"),
                  LinkSpec{milliseconds(2), milliseconds(1), 0.0, 0.0});

  sim::Rng values(9);
  for (int i = 0; i < 400; ++i) {
    const TimePoint at = TimePoint::epoch() + milliseconds(5 * (i + 1));
    const double v = values.uniform(0, 100);
    simulator.schedule_at(at, [&src, i, v, at] {
      core::PhysicalObservation o = obs(static_cast<std::uint64_t>(i), v, at);
      if (i % 2 == 1) o.sensor = SensorId("SR2");
      src.send(NodeId("dst"), Entity(std::move(o)));
    });
  }
  simulator.run();

  ASSERT_EQ(fed.size(), 400u);
  const auto describe = [](const core::EventInstance& inst) {
    std::ostringstream os;
    os << inst.key << "@" << inst.gen_time << " V=" << inst.attributes;
    return os.str();
  };
  std::vector<std::string> got;
  for (const core::EventInstance& inst : sharded.flush()) got.push_back(describe(inst));
  std::vector<std::string> want;
  for (const auto& [entity, at] : fed) {
    for (const core::EventInstance& inst : sequential.observe(entity, at)) {
      want.push_back(describe(inst));
    }
  }
  EXPECT_GT(want.size(), 0u);
  ASSERT_EQ(got, want);

  // Every layer's fault machinery demonstrably fired.
  EXPECT_GT(src.stats().retransmits, 0u);
  const runtime::RuntimeStats stats = sharded.stats();
  EXPECT_GT(stats.checkpoints, 0u);
  EXPECT_GE(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, stats.crashes);
  EXPECT_EQ(stats.instances, want.size());
}

}  // namespace
}  // namespace stem::net
