#include <gtest/gtest.h>

#include <memory>

#include "analysis/accuracy.hpp"
#include "sensing/phenomena.hpp"
#include "sensing/sensor.hpp"
#include "wsn/mote.hpp"

namespace stem {
namespace {

using core::EventInstance;
using core::EventInstanceKey;
using core::EventTypeId;
using core::ObserverId;
using geom::Location;
using geom::Point;
using time_model::milliseconds;
using time_model::seconds;
using time_model::TimePoint;

sensing::PhysicalEvent truth_at(TimePoint t, Point p) {
  sensing::PhysicalEvent e;
  e.id = EventTypeId("P");
  e.time = time_model::OccurrenceTime(t);
  e.location = Location(p);
  return e;
}

EventInstance detection_at(TimePoint t, Point p, std::uint64_t seq) {
  EventInstance inst;
  inst.key = EventInstanceKey{ObserverId("S"), EventTypeId("D"), seq};
  inst.layer = core::Layer::kCyberPhysical;
  inst.gen_time = t;
  inst.est_time = time_model::OccurrenceTime(t);
  inst.est_location = Location(p);
  return inst;
}

TEST(AccuracyTest, PerfectDetection) {
  const auto t1 = truth_at(TimePoint(1'000'000), {10, 10});
  const auto t2 = truth_at(TimePoint(5'000'000), {20, 20});
  const auto d1 = detection_at(TimePoint(1'200'000), {11, 10}, 0);
  const auto d2 = detection_at(TimePoint(5'100'000), {20, 21}, 1);

  const auto report = analysis::score_detections({&t1, &t2}, {&d1, &d2});
  EXPECT_EQ(report.matched, 2u);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.f1(), 1.0);
  EXPECT_NEAR(report.mean_time_error_ms, 150.0, 1e-9);  // (200 + 100) / 2
  EXPECT_NEAR(report.mean_space_error_m, 1.0, 1e-9);
}

TEST(AccuracyTest, MissesAndFalsePositives) {
  const auto t1 = truth_at(TimePoint(1'000'000), {10, 10});
  const auto t2 = truth_at(TimePoint(60'000'000), {20, 20});  // never detected
  const auto d1 = detection_at(TimePoint(1'100'000), {10, 10}, 0);
  const auto fp = detection_at(TimePoint(30'000'000), {90, 90}, 1);  // matches nothing

  const auto report = analysis::score_detections({&t1, &t2}, {&d1, &fp});
  EXPECT_EQ(report.matched, 1u);
  EXPECT_DOUBLE_EQ(report.precision(), 0.5);
  EXPECT_DOUBLE_EQ(report.recall(), 0.5);
  EXPECT_NEAR(report.f1(), 0.5, 1e-12);
}

TEST(AccuracyTest, OneToOneMatching) {
  // Two detections of the same truth: only one may match.
  const auto t1 = truth_at(TimePoint(1'000'000), {10, 10});
  const auto d1 = detection_at(TimePoint(1'100'000), {10, 10}, 0);
  const auto d2 = detection_at(TimePoint(1'200'000), {10, 10}, 1);
  const auto report = analysis::score_detections({&t1}, {&d1, &d2});
  EXPECT_EQ(report.matched, 1u);
  EXPECT_DOUBLE_EQ(report.precision(), 0.5);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
}

TEST(AccuracyTest, TolerancesGateMatching) {
  const auto t1 = truth_at(TimePoint(0), {0, 0});
  const auto late = detection_at(TimePoint(0) + seconds(30), {0, 0}, 0);
  analysis::MatchConfig strict;
  strict.time_tolerance = seconds(10);
  EXPECT_EQ(analysis::score_detections({&t1}, {&late}, strict).matched, 0u);

  const auto displaced = detection_at(TimePoint(1000), {100, 0}, 1);
  analysis::MatchConfig tight_space;
  tight_space.space_tolerance = 10.0;
  EXPECT_EQ(analysis::score_detections({&t1}, {&displaced}, tight_space).matched, 0u);
  analysis::MatchConfig no_space;
  no_space.space_tolerance = 0.0;  // disabled
  EXPECT_EQ(analysis::score_detections({&t1}, {&displaced}, no_space).matched, 1u);
}

TEST(AccuracyTest, EmptyInputsAreSafe) {
  const auto report = analysis::score_detections({}, {});
  EXPECT_DOUBLE_EQ(report.precision(), 0.0);
  EXPECT_DOUBLE_EQ(report.recall(), 0.0);
  EXPECT_DOUBLE_EQ(report.f1(), 0.0);
}

// --- Clock skew --------------------------------------------------------------

TEST(ClockSkewTest, LocalTimeAppliesOffsetAndDrift) {
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(1));
  wsn::SensorMote::Config cfg;
  cfg.id = net::NodeId("MT1");
  cfg.position = {0, 0};
  cfg.clock_offset = seconds(2);
  cfg.clock_drift_ppm = 100.0;  // 100 us per second
  wsn::SensorMote mote(network, cfg, sim::Rng(2));

  const TimePoint t = TimePoint::epoch() + seconds(1000);
  // offset 2 s + drift 1000 s * 100 ppm = 0.1 s.
  EXPECT_EQ(mote.local_time(t), t + seconds(2) + milliseconds(100));
  EXPECT_EQ(mote.local_time(TimePoint::epoch()), TimePoint::epoch() + seconds(2));
}

TEST(ClockSkewTest, SkewCorruptsCrossMoteOrdering) {
  // Mote A samples a rising edge *before* mote B, but A's clock runs 3 s
  // ahead — so at the sink, A's timestamps appear AFTER B's, and the
  // "a before b" condition inverts. This is the partial-ordering hazard
  // the paper's Sec. 2 middleware discussion warns about.
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(3));

  const auto make_obs_entity = [](const char* mote, TimePoint stamped) {
    core::PhysicalObservation o;
    o.mote = ObserverId(mote);
    o.sensor = core::SensorId("SR");
    o.time = stamped;
    o.location = Location(Point{0, 0});
    o.attributes.set("value", 1.0);
    return core::Entity(std::move(o));
  };

  core::EventDefinition seq_def{
      EventTypeId("SEQ"),
      {{"a", core::SlotFilter::observation(core::SensorId("SR")).from(ObserverId("A"))},
       {"b", core::SlotFilter::observation(core::SensorId("SR")).from(ObserverId("B"))}},
      core::c_time(0, time_model::TemporalOp::kBefore, 1),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};

  // True order: A at t=1s, B at t=2s. Perfect clocks detect the sequence.
  core::DetectionEngine honest(ObserverId("SINK"), core::Layer::kCyberPhysical, {0, 0});
  honest.add_definition(seq_def);
  honest.observe(make_obs_entity("A", TimePoint::epoch() + seconds(1)),
                 TimePoint::epoch() + seconds(1));
  EXPECT_EQ(honest
                .observe(make_obs_entity("B", TimePoint::epoch() + seconds(2)),
                         TimePoint::epoch() + seconds(2))
                .size(),
            1u);

  // A's clock +3 s: stamped times invert the order; detection is lost.
  core::DetectionEngine skewed(ObserverId("SINK"), core::Layer::kCyberPhysical, {0, 0});
  skewed.add_definition(seq_def);
  skewed.observe(make_obs_entity("A", TimePoint::epoch() + seconds(4)),  // 1s + 3s skew
                 TimePoint::epoch() + seconds(1));
  EXPECT_TRUE(skewed
                  .observe(make_obs_entity("B", TimePoint::epoch() + seconds(2)),
                           TimePoint::epoch() + seconds(2))
                  .empty());
}

}  // namespace
}  // namespace stem
