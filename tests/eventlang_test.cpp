#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "eventlang/lexer.hpp"
#include "eventlang/parser.hpp"

namespace stem::eventlang {
namespace {

using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, TokenizesAllKinds) {
  const auto tokens = tokenize("event E1 { when avg(v of x) >= 2.5; } # comment\n<= != ==");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "event");
  EXPECT_EQ(tokens[2].kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersIncludingNegativeAndDecimal) {
  const auto tokens = tokenize("3 -4.5 0.25");
  EXPECT_DOUBLE_EQ(tokens[0].number, 3.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, -4.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.25);
}

TEST(LexerTest, TracksLineNumbers) {
  const auto tokens = tokenize("a\nb\n  c");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_THROW(tokenize("event @"), ParseError);
  EXPECT_THROW(tokenize("a ! b"), ParseError);
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto tokens = tokenize("# full line\nx # trailing\ny");
  ASSERT_EQ(tokens.size(), 3u);  // x, y, end
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].text, "y");
}

// --- Parser: structure ---------------------------------------------------------

constexpr const char* kS1Source = R"(
# The paper's S1 example: x before y and within 5 meters.
event S1 {
  window: 60 s;
  slot x = obs(SRx) from MT1;
  slot y = obs(SRy) from MT2;
  when time(x) before time(y) and distance(x, y) < 5.0;
}
)";

TEST(ParserTest, ParsesPaperS1Example) {
  const auto def = parse_event(kS1Source);
  EXPECT_EQ(def.id, EventTypeId("S1"));
  ASSERT_EQ(def.slots.size(), 2u);
  EXPECT_EQ(def.slots[0].name, "x");
  EXPECT_EQ(def.slots[0].filter.sensor, SensorId("SRx"));
  EXPECT_EQ(def.slots[0].filter.producer, ObserverId("MT1"));
  EXPECT_EQ(def.window, seconds(60));
  EXPECT_EQ(def.condition.leaf_count(), 2u);
}

TEST(ParserTest, CompiledS1DetectsLikeHandBuilt) {
  auto def = parse_event(kS1Source);
  core::DetectionEngine eng(ObserverId("SINK"), core::Layer::kCyberPhysical, {0, 0});
  eng.add_definition(std::move(def));

  core::PhysicalObservation ox;
  ox.mote = ObserverId("MT1");
  ox.sensor = SensorId("SRx");
  ox.time = TimePoint(100);
  ox.location = Location(Point{0, 0});
  core::PhysicalObservation oy;
  oy.mote = ObserverId("MT2");
  oy.sensor = SensorId("SRy");
  oy.time = TimePoint(200);
  oy.location = Location(Point{3, 0});  // distance 3 < 5

  EXPECT_TRUE(eng.observe(core::Entity(ox), TimePoint(100)).empty());
  const auto fired = eng.observe(core::Entity(oy), TimePoint(200));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired.front().key.event, EventTypeId("S1"));
}

TEST(ParserTest, ParsesAllClauseKinds) {
  const auto def = parse_event(R"(
event FULL {
  window: 500 ms;
  slot a = obs(SRtemp);
  slot b = event(HOT) from MT7;
  slot c = any;
  when (avg(value of a, b) > 20 or not rho(min: a) < 0.5)
   and time(span: a, b) + 10 ms within time(c)
   and loc(centroid: a, b) inside rect(0, 0, 100, 100)
   and loc(a) joint circle(50, 50, 10)
   and distance(a, point(1, 2)) <= 3;
  emit {
    time: latest;
    location: centroid;
    confidence: mean * 0.8;
    attr heat = max(value of a, b);
  }
  reuse;
}
)");
  EXPECT_EQ(def.id, EventTypeId("FULL"));
  EXPECT_EQ(def.slots.size(), 3u);
  EXPECT_EQ(def.window, time_model::milliseconds(500));
  EXPECT_EQ(def.consumption, core::ConsumptionMode::kUnrestricted);
  EXPECT_EQ(def.synthesis.time, time_model::TimeAggregate::kLatest);
  EXPECT_EQ(def.synthesis.location, geom::SpatialAggregate::kCentroid);
  EXPECT_EQ(def.synthesis.confidence, core::ConfidencePolicy::kMean);
  EXPECT_DOUBLE_EQ(def.synthesis.observer_confidence, 0.8);
  ASSERT_EQ(def.synthesis.attributes.size(), 1u);
  EXPECT_EQ(def.synthesis.attributes[0].output_name, "heat");
  EXPECT_GE(def.condition.leaf_count(), 5u);
}

TEST(ParserTest, ParsesTimeConstants) {
  const auto def = parse_event(R"(
event T {
  slot x = any;
  when time(x) after at(5 s) and time(x) within interval(1 s, 10 s);
}
)");
  EXPECT_EQ(def.condition.leaf_count(), 2u);
}

TEST(ParserTest, MultipleEventsInOneSpec) {
  const auto defs = parse_spec(R"(
event A { slot x = any; when rho(x) >= 0.0; }
event B { slot y = any; when rho(y) >= 0.5; }
)");
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].id, EventTypeId("A"));
  EXPECT_EQ(defs[1].id, EventTypeId("B"));
}

// --- Parser: diagnostics --------------------------------------------------------

struct BadCase {
  const char* source;
  const char* reason;
};

class ParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrorTest, Rejects) {
  EXPECT_THROW((void)parse_spec(GetParam().source), ParseError) << GetParam().reason;
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, ParserErrorTest,
    ::testing::Values(
        BadCase{"event { }", "missing event name"},
        BadCase{"event E when x;", "missing braces"},
        BadCase{"event E { slot x = any; }", "missing when clause"},
        BadCase{"event E { when rho(x) >= 0.0; }", "no slots declared"},
        BadCase{"event E { slot x = any; slot x = any; when rho(x) >= 0.0; }",
                "duplicate slot"},
        BadCase{"event E { slot x = any; when rho(y) >= 0.0; }", "unknown slot"},
        BadCase{"event E { slot x = any; when time(x) sideways time(x); }",
                "unknown temporal operator"},
        BadCase{"event E { slot x = any; when loc(x) near loc(x); }",
                "unknown spatial operator"},
        BadCase{"event E { slot x = any; when median(v of x) > 1; }",
                "unknown aggregate"},
        BadCase{"event E { slot x = any; window: 5 lightyears; when rho(x) >= 0.0; }",
                "unknown duration unit"},
        BadCase{"event E { slot x = bogus(Q); when rho(x) >= 0.0; }",
                "unknown slot source"},
        BadCase{"event E { slot x = any; when rho(x) >= 0.0; } trailing",
                "trailing garbage"}));

TEST(ParserErrorReportingTest, IncludesPosition) {
  try {
    (void)parse_spec("event E {\n  slot x = any;\n  when rho(zz) >= 0.0;\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("zz"), std::string::npos);
  }
}

TEST(ParseEventTest, RequiresExactlyOne) {
  EXPECT_THROW((void)parse_event(""), ParseError);
  EXPECT_THROW((void)parse_event(R"(
event A { slot x = any; when rho(x) >= 0.0; }
event B { slot y = any; when rho(y) >= 0.0; }
)"),
               ParseError);
}

TEST(ParserSemanticsTest, RegisteredDefinitionValidates) {
  // A definition straight from the parser must pass engine validation.
  core::DetectionEngine eng(ObserverId("X"), core::Layer::kSensor, {0, 0});
  EXPECT_NO_THROW(eng.add_definition(parse_event(
      "event OK { slot x = any; slot y = any; when time(x) before time(y); }")));
}

TEST(ParserDurationTest, AllUnits) {
  const auto def = parse_event("event D { window: 2 m; slot x = any; when rho(x) >= 0.0; }");
  EXPECT_EQ(def.window, time_model::minutes(2));
  const auto def2 = parse_event("event D { window: 250 us; slot x = any; when rho(x) >= 0.0; }");
  EXPECT_EQ(def2.window, time_model::microseconds(250));
}

}  // namespace
}  // namespace stem::eventlang
