#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "runtime/mpsc_ring.hpp"

/// Units and torture for the lock-free MPSC ingest ring. The
/// single-threaded units pin down the sequence protocol's edge geometry
/// (capacity rounding, capacity-1 rings, index wrap at the uint32
/// boundary, peek/pop-front slot release, close semantics); the
/// multi-threaded legs prove no loss, no duplication, and per-producer
/// FIFO under 8 concurrent producers, plus the blocking push/pop
/// park/wake paths. Runs under the TSan CI leg with reduced volumes.

namespace stem::runtime {
namespace {

#if defined(__SANITIZE_THREAD__)
#define STEM_RING_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STEM_RING_TSAN 1
#endif
#endif

#if defined(STEM_RING_TSAN)
constexpr std::uint64_t kItemsPerProducer = 15'000;
#else
constexpr std::uint64_t kItemsPerProducer = 100'000;
#endif
constexpr std::uint64_t kProducers = 8;

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(4096).capacity(), 4096u);
  EXPECT_EQ(MpscRing<int>(4097).capacity(), 8192u);
  EXPECT_EQ(MpscRing<int>(0).capacity(), 1u);  // clamped, never zero
}

TEST(MpscRingTest, SingleThreadedFifo) {
  MpscRing<int> ring(8);
  for (int lap = 0; lap < 5; ++lap) {  // > capacity total: exercises wrap
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(lap * 8 + i));
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_FALSE(ring.try_push(999));  // full
    int out = -1;
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, lap * 8 + i);
    }
    EXPECT_FALSE(ring.try_pop(out));  // empty
    EXPECT_EQ(ring.size(), 0u);
  }
}

TEST(MpscRingTest, CapacityOneRingAlternates) {
  MpscRing<int> ring(1);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
    ASSERT_FALSE(ring.try_push(int{i}));  // one slot only
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
    ASSERT_FALSE(ring.try_pop(out));
  }
}

TEST(MpscRingTest, FrontPeeksWithoutConsuming) {
  MpscRing<int> ring(4);
  EXPECT_EQ(ring.front(), nullptr);
  ASSERT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_push(8));
  int* head = ring.front();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head, 7);
  *head = 70;  // consumer may mutate the head in place (cursor pattern)
  ASSERT_EQ(*ring.front(), 70);
  ring.pop_front();
  ASSERT_EQ(*ring.front(), 8);
  ring.pop_front();
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(MpscRingTest, PopFrontReleasesSlotForNextLap) {
  MpscRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ASSERT_FALSE(ring.try_push(3));
  ring.pop_front();
  ASSERT_TRUE(ring.try_push(3));  // freed slot immediately claimable
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
}

TEST(MpscRingTest, SurvivesUint32IndexWrap) {
  // Start a few slots before the uint32 boundary: every comparison in the
  // protocol must go through signed wraparound differences, so FIFO and
  // fullness behave identically across the wrap.
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    MpscRing<std::uint64_t> ring(capacity, std::numeric_limits<std::uint32_t>::max() - 5);
    std::uint64_t popped = 0;
    std::uint64_t pushed = 0;
    std::uint64_t out = 0;
    // Interleave so the cursors cross the boundary mid-traffic.
    while (popped < 1000) {
      while (pushed < 1000 && ring.try_push(std::uint64_t{pushed})) ++pushed;
      ASSERT_TRUE(ring.try_pop(out)) << "capacity=" << capacity;
      ASSERT_EQ(out, popped) << "capacity=" << capacity;
      ++popped;
    }
    EXPECT_EQ(ring.size(), 0u);
  }
}

TEST(MpscRingTest, CloseFailsPushesAndDrainsPops) {
  MpscRing<int> ring(4);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.push(2));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.push(3));  // discarded, no block
  int out = -1;
  EXPECT_TRUE(ring.pop(out));  // drains the remainder...
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.pop(out));  // ...then reports exhaustion, no block
  ring.close();                 // idempotent
}

TEST(MpscRingTest, MovesPayloadOwnership) {
  // pop_front must destroy the payload when releasing the slot, so
  // resources (refcounted batches in the runtime) free promptly.
  const auto tracked = std::make_shared<int>(42);
  MpscRing<std::shared_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::shared_ptr<int>(tracked)));
  EXPECT_EQ(tracked.use_count(), 2);
  ring.pop_front();
  EXPECT_EQ(tracked.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Concurrency torture.
// ---------------------------------------------------------------------------

/// 8 producers x 100k items each through a ring far smaller than the
/// total volume: every item must arrive exactly once, and each producer's
/// items must arrive in that producer's program order. Items encode
/// (producer, sequence) so both properties are checked directly.
void run_producer_torture(std::size_t ring_capacity, std::uint32_t start_pos) {
  MpscRing<std::uint64_t> ring(ring_capacity, start_pos);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kItemsPerProducer; ++i) {
        ASSERT_TRUE(ring.push((p << 32) | i));  // blocking: ring never closes
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t total = 0;
  std::uint64_t item = 0;
  while (total < kProducers * kItemsPerProducer) {
    ASSERT_TRUE(ring.pop(item));
    const std::uint64_t p = item >> 32;
    const std::uint64_t seq = item & 0xffffffffULL;
    ASSERT_LT(p, kProducers);
    // Exactly-once + per-producer FIFO in one assertion: a lost item
    // shows as a skip, a duplicate or reorder as a non-increment.
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " at total " << total;
    ++next_seq[p];
    ++total;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.size(), 0u);
  for (std::uint64_t p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kItemsPerProducer);
}

TEST(MpscRingTortureTest, EightProducersNoLossNoDupPerProducerOrder) {
  run_producer_torture(/*ring_capacity=*/1024, /*start_pos=*/0);
}

TEST(MpscRingTortureTest, TinyRingMaximalContention) {
  // A 2-slot ring forces every producer through the full/park path and
  // the consumer through constant wrap.
  run_producer_torture(/*ring_capacity=*/2, /*start_pos=*/0);
}

TEST(MpscRingTortureTest, ConcurrentTrafficAcrossUint32Wrap) {
  // The claim/release cursors cross the uint32 boundary while 8 producers
  // race: wraparound arithmetic must stay exact under contention.
  run_producer_torture(/*ring_capacity=*/64,
                       std::numeric_limits<std::uint32_t>::max() - 1000);
}

TEST(MpscRingBlockingTest, PushParksWhenFullAndWakesOnPop) {
  MpscRing<int> ring(1);
  ASSERT_TRUE(ring.try_push(0));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(ring.push(1));  // parks: ring is full
    pushed.store(true, std::memory_order_seq_cst);
  });
  // The producer cannot complete until the consumer frees the slot. A
  // short sleep is not proof of parking, but a wrongly-succeeding push
  // would trip the FIFO assertions below deterministically.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  int out = -1;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(ring.pop(out));  // parks until the producer's item lands
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_seq_cst));
}

TEST(MpscRingBlockingTest, TryPushWakesParkedConsumer) {
  // Regression: try_push used to skip the items_ notification, so a
  // consumer parked inside pop() was never woken by a try_push producer —
  // this test then hung in consumer.join().
  MpscRing<int> ring(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    int out = -1;
    ASSERT_TRUE(ring.pop(out));  // spins out, then parks on the empty ring
    got.store(out, std::memory_order_seq_cst);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(ring.try_push(9));
  consumer.join();
  EXPECT_EQ(got.load(std::memory_order_seq_cst), 9);
}

TEST(MpscRingBlockingTest, PopParksWhenEmptyAndWakesOnPush) {
  MpscRing<int> ring(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    int out = -1;
    ASSERT_TRUE(ring.pop(out));  // spins, then parks on the empty ring
    got.store(out, std::memory_order_seq_cst);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(ring.push(7));
  consumer.join();
  EXPECT_EQ(got.load(std::memory_order_seq_cst), 7);
}

TEST(MpscRingTortureTest, CloseLosesNoAdmittedItems) {
  // Races close() against producers mid-claim, many rounds. The exactness
  // contract under test: every push() that returned true is popped before
  // the drain reports exhaustion, and a claim that races the close and
  // loses reports false (its tombstone stays invisible). The regression
  // this pins down: a producer that had won the tail CAS but not yet
  // published its cell was invisible to the drain, which then returned
  // "exhausted" while that push went on to return true — a lost item.
#if defined(STEM_RING_TSAN)
  constexpr int kRounds = 60;
#else
  constexpr int kRounds = 250;
#endif
  for (int round = 0; round < kRounds; ++round) {
    MpscRing<std::uint64_t> ring(8);
    std::atomic<std::uint64_t> admitted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&] {
        std::uint64_t v = 1;
        while (ring.push(v)) {  // false once closed
          admitted.fetch_add(1, std::memory_order_relaxed);
          ++v;
        }
      });
    }
    std::atomic<std::uint64_t> popped{0};
    std::thread consumer([&] {
      std::uint64_t out = 0;
      while (ring.pop(out)) popped.fetch_add(1, std::memory_order_relaxed);
    });
    // Let traffic build, then slam the door mid-flight (vary the timing a
    // little so the close lands in different phases of the claim protocol).
    std::this_thread::sleep_for(std::chrono::microseconds(20 + 13 * (round % 11)));
    ring.close();
    for (auto& t : producers) t.join();
    consumer.join();
    EXPECT_EQ(popped.load(std::memory_order_seq_cst),
              admitted.load(std::memory_order_seq_cst))
        << "round " << round;
    EXPECT_EQ(ring.size(), 0u) << "round " << round;
  }
}

TEST(MpscRingBlockingTest, CloseWakesParkedProducerAndConsumer) {
  {
    MpscRing<int> ring(1);
    ASSERT_TRUE(ring.try_push(0));
    std::thread producer([&] {
      EXPECT_FALSE(ring.push(1));  // parked full, released by close
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ring.close();
    producer.join();
  }
  {
    MpscRing<int> ring(1);
    std::thread consumer([&] {
      int out = -1;
      EXPECT_FALSE(ring.pop(out));  // parked empty, released by close
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ring.close();
    consumer.join();
  }
}

TEST(MpscRingBlockingTest, BoundedOccupancyUnderBlockingProducers) {
  // With blocking push the ring's occupancy can never exceed its slot
  // count — checked continuously while 4 producers hammer a tiny ring.
  constexpr std::uint64_t kPerProducer = 5'000;
  MpscRing<std::uint64_t> ring(4);
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < 4; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ring.push((p << 32) | i));
      }
    });
  }
  std::uint64_t item = 0;
  for (std::uint64_t n = 0; n < 4 * kPerProducer; ++n) {
    ASSERT_LE(ring.size(), ring.capacity());
    ASSERT_TRUE(ring.pop(item));
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace stem::runtime
