#include <gtest/gtest.h>

#include <memory>

#include "wsn/actor.hpp"
#include "wsn/mote.hpp"
#include "wsn/sink.hpp"
#include "wsn/topology.hpp"

namespace stem::wsn {
namespace {

using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using geom::Point;
using time_model::milliseconds;
using time_model::seconds;
using time_model::TimePoint;

TEST(TopologyTest, GridPlacementCoversArea) {
  TopologyConfig cfg;
  cfg.motes = 16;
  cfg.placement = TopologyConfig::Placement::kGrid;
  cfg.radio_range = 40.0;
  const Topology topo = build_topology(cfg);
  ASSERT_EQ(topo.mote_positions.size(), 16u);
  ASSERT_EQ(topo.sink_positions.size(), 1u);
  for (const Point& p : topo.mote_positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.width);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.height);
  }
  EXPECT_EQ(topo.connected_count(), 16u);  // 40 m range on 100 m area: all reach
}

TEST(TopologyTest, RoutingTreeDepthsAreConsistent) {
  TopologyConfig cfg;
  cfg.motes = 64;
  cfg.radio_range = 25.0;
  cfg.seed = 11;
  const Topology topo = build_topology(cfg);
  for (std::size_t i = 0; i < cfg.motes; ++i) {
    if (!topo.connected(i)) continue;
    if (topo.parent_sink[i].has_value()) {
      EXPECT_EQ(topo.depth[i], 1);
    } else {
      ASSERT_TRUE(topo.parent_mote[i].has_value());
      EXPECT_EQ(topo.depth[i], topo.depth[*topo.parent_mote[i]] + 1);
      // Parent must be within radio range.
      EXPECT_LE(geom::distance(topo.mote_positions[i],
                               topo.mote_positions[*topo.parent_mote[i]]),
                cfg.radio_range + 1e-9);
    }
  }
  EXPECT_GT(topo.max_depth(), 1);  // 25 m range forces multi-hop
}

TEST(TopologyTest, ShortRangeDisconnectsSomeMotes) {
  TopologyConfig cfg;
  cfg.motes = 20;
  cfg.radio_range = 5.0;  // far too short for 100x100
  cfg.seed = 3;
  const Topology topo = build_topology(cfg);
  EXPECT_LT(topo.connected_count(), 20u);
}

TEST(TopologyTest, DeterministicForSameSeed) {
  TopologyConfig cfg;
  cfg.seed = 42;
  const Topology a = build_topology(cfg);
  const Topology b = build_topology(cfg);
  ASSERT_EQ(a.mote_positions.size(), b.mote_positions.size());
  for (std::size_t i = 0; i < a.mote_positions.size(); ++i) {
    EXPECT_EQ(a.mote_positions[i], b.mote_positions[i]);
    EXPECT_EQ(a.depth[i], b.depth[i]);
  }
}

// --- Mote -> Sink pipeline -------------------------------------------------

struct PipelineFixture : ::testing::Test {
  PipelineFixture() : network(simulator, sim::Rng(21)) {}

  /// Quiet link: deterministic latency for exact assertions.
  static net::LinkSpec quiet_link() {
    net::LinkSpec link;
    link.base_latency = milliseconds(2);
    link.jitter = time_model::Duration::zero();
    link.loss_prob = 0.0;
    link.bytes_per_ms = 0.0;
    return link;
  }

  core::EventDefinition hot_def() {
    core::EventDefinition def{
        EventTypeId("HOT"),
        {{"x", core::SlotFilter::observation(SensorId("SRtemp"))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt,
                     50.0),
        seconds(60),
        {},
        core::ConsumptionMode::kConsume};
    def.synthesis.attributes.push_back(
        core::AttributeRule{"value", core::ValueAggregate::kAverage, "value", {0}});
    return def;
  }

  sim::Simulator simulator;
  net::Network network;
};

TEST_F(PipelineFixture, MoteDetectsAndShipsSensorEvents) {
  SensorMote::Config mcfg;
  mcfg.id = ObserverId("MT1");
  mcfg.position = {10, 10};
  mcfg.sampling_period = seconds(1);
  SensorMote mote(network, mcfg, sim::Rng(1));
  mote.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      SensorId("SRtemp"), std::make_shared<sensing::UniformField>(80.0), 0.0));
  mote.add_definition(hot_def());

  SinkNode::Config scfg;
  scfg.id = ObserverId("SINK");
  scfg.position = {50, 50};
  SinkNode sink(network, nullptr, scfg);
  // CP definition: any HOT sensor event becomes a CP_HOT instance.
  core::EventDefinition cp{EventTypeId("CP_HOT"),
                           {{"h", core::SlotFilter::instance_of(EventTypeId("HOT"))}},
                           core::c_confidence(core::ValueAggregate::kMin, {0},
                                              core::RelationalOp::kGe, 0.0),
                           seconds(60),
                           {},
                           core::ConsumptionMode::kConsume};
  sink.add_definition(cp);

  network.connect(ObserverId("MT1"), ObserverId("SINK"), quiet_link());
  mote.set_parent(ObserverId("SINK"));
  mote.start(TimePoint::epoch() + seconds(5));
  simulator.run();

  EXPECT_EQ(mote.stats().samples, 5u);
  EXPECT_EQ(mote.stats().events_emitted, 5u);
  EXPECT_EQ(sink.stats().entities_received, 5u);
  ASSERT_EQ(sink.emitted().size(), 5u);
  const core::EventInstance& cp0 = sink.emitted().front();
  EXPECT_EQ(cp0.key.event, EventTypeId("CP_HOT"));
  EXPECT_EQ(cp0.layer, core::Layer::kCyberPhysical);
  // Estimated occurrence is the mote's sampling time (1s), generation is
  // later: + mote proc (5ms) + link (2ms) + sink proc (10ms).
  EXPECT_EQ(cp0.est_time, time_model::OccurrenceTime(TimePoint::epoch() + seconds(1)));
  EXPECT_EQ(cp0.gen_time, TimePoint::epoch() + seconds(1) + milliseconds(17));
}

TEST_F(PipelineFixture, MultiHopRelayReachesSink) {
  // Chain: MT_far -> MT_mid -> SINK.
  SensorMote::Config far_cfg;
  far_cfg.id = ObserverId("MT_far");
  far_cfg.position = {0, 0};
  SensorMote far(network, far_cfg, sim::Rng(2));
  far.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      SensorId("SRtemp"), std::make_shared<sensing::UniformField>(80.0), 0.0));
  far.add_definition(hot_def());

  SensorMote::Config mid_cfg;
  mid_cfg.id = ObserverId("MT_mid");
  mid_cfg.position = {20, 0};
  SensorMote mid(network, mid_cfg, sim::Rng(3));  // no sensors: pure repeater

  SinkNode::Config scfg;
  scfg.id = ObserverId("SINK");
  scfg.position = {40, 0};
  SinkNode sink(network, nullptr, scfg);
  core::EventDefinition cp{EventTypeId("CP_HOT"),
                           {{"h", core::SlotFilter::instance_of(EventTypeId("HOT"))}},
                           core::c_confidence(core::ValueAggregate::kMin, {0},
                                              core::RelationalOp::kGe, 0.0),
                           seconds(60),
                           {},
                           core::ConsumptionMode::kConsume};
  sink.add_definition(cp);

  network.connect(ObserverId("MT_far"), ObserverId("MT_mid"), quiet_link());
  network.connect(ObserverId("MT_mid"), ObserverId("SINK"), quiet_link());
  far.set_parent(ObserverId("MT_mid"));
  mid.set_parent(ObserverId("SINK"));
  far.start(TimePoint::epoch() + seconds(2));
  simulator.run();

  EXPECT_EQ(mid.stats().relayed, 2u);
  EXPECT_EQ(sink.emitted().size(), 2u);
}

TEST_F(PipelineFixture, ForwardRawShipsObservations) {
  SensorMote::Config mcfg;
  mcfg.id = ObserverId("MT1");
  mcfg.position = {10, 10};
  mcfg.forward_raw = true;
  SensorMote mote(network, mcfg, sim::Rng(1));
  mote.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      SensorId("SRtemp"), std::make_shared<sensing::UniformField>(80.0), 0.0));
  mote.add_definition(hot_def());  // must be bypassed in raw mode

  std::vector<net::Message> received;
  network.register_node(ObserverId("C"), [&](const net::Message& m) { received.push_back(m); });
  network.connect(ObserverId("MT1"), ObserverId("C"), quiet_link());
  mote.set_parent(ObserverId("C"));
  mote.start(TimePoint::epoch() + seconds(3));
  simulator.run();

  EXPECT_EQ(mote.stats().events_emitted, 0u);
  ASSERT_EQ(received.size(), 3u);
  const auto* entity = std::get_if<core::Entity>(&received[0].payload);
  ASSERT_NE(entity, nullptr);
  EXPECT_TRUE(entity->is_observation());
}

TEST_F(PipelineFixture, SinkLocalizesUserFromRangeEvents) {
  // Three motes range the (stationary) user at (30, 40); the sink fuses
  // them into a location estimate — the paper's Sec. 1 example.
  const auto user = std::make_shared<sensing::MovingObject>(
      "userA", std::vector<Point>{{30, 40}}, TimePoint::epoch(), 1.0);

  core::EventDefinition range_def{
      EventTypeId("RANGE_userA"),
      {{"r", core::SlotFilter::observation(SensorId("SRrange"))}},
      core::c_attr(core::ValueAggregate::kMin, "range", {0}, core::RelationalOp::kGe, 0.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};
  range_def.synthesis.attributes.push_back(
      core::AttributeRule{"range", core::ValueAggregate::kAverage, "range", {0}});

  std::vector<std::unique_ptr<SensorMote>> motes;
  const Point anchors[] = {{0, 0}, {100, 0}, {0, 100}};
  SinkNode::Config scfg;
  scfg.id = ObserverId("SINK");
  scfg.position = {50, 50};
  SinkNode sink(network, nullptr, scfg);

  Localizer::Config lcfg;
  lcfg.range_event = EventTypeId("RANGE_userA");
  lcfg.output_event = EventTypeId("LOC_userA");
  lcfg.window = seconds(5);
  sink.enable_localization(lcfg);

  for (int i = 0; i < 3; ++i) {
    SensorMote::Config mcfg;
    mcfg.id = ObserverId("MT" + std::to_string(i));
    mcfg.position = anchors[i];
    auto mote = std::make_unique<SensorMote>(network, mcfg, sim::Rng(100 + i));
    mote->add_sensor(std::make_shared<sensing::RangeSensor>(SensorId("SRrange"), user, 200.0,
                                                            0.0 /* noiseless */));
    mote->add_definition(range_def);
    network.connect(mcfg.id, ObserverId("SINK"), quiet_link());
    mote->set_parent(ObserverId("SINK"));
    mote->start(TimePoint::epoch() + seconds(2));
    motes.push_back(std::move(mote));
  }
  simulator.run();

  bool located = false;
  for (const auto& inst : sink.emitted()) {
    if (inst.key.event == EventTypeId("LOC_userA")) {
      located = true;
      ASSERT_TRUE(inst.est_location.is_point());
      EXPECT_NEAR(inst.est_location.as_point().x, 30.0, 1e-6);
      EXPECT_NEAR(inst.est_location.as_point().y, 40.0, 1e-6);
      EXPECT_GT(inst.confidence, 0.9);
      EXPECT_EQ(inst.provenance.size(), 3u);
    }
  }
  EXPECT_TRUE(located);
}

TEST_F(PipelineFixture, ActorExecutesDispatchedCommand) {
  net::Broker broker(network, ObserverId("BROKER"));

  ActorMote::Config acfg;
  acfg.id = ObserverId("AR1");
  acfg.position = {5, 5};
  acfg.actuation_delay = milliseconds(50);
  std::vector<std::string> actuated;
  ActorMote actor(network, &broker, acfg,
                  [&](const net::Command& c, TimePoint) { actuated.push_back(c.verb); });

  DispatchNode::Config dcfg;
  dcfg.id = ObserverId("DISPATCH");
  dcfg.position = {10, 10};
  DispatchNode dispatch(network, broker, dcfg);

  network.register_node(ObserverId("CCU"), [](const net::Message&) {});
  network.connect(ObserverId("CCU"), ObserverId("BROKER"), quiet_link());
  network.connect(ObserverId("DISPATCH"), ObserverId("BROKER"), quiet_link());
  network.connect(ObserverId("DISPATCH"), ObserverId("AR1"), quiet_link());
  network.connect(ObserverId("AR1"), ObserverId("BROKER"), quiet_link());
  dispatch.serve(ObserverId("AR1"));

  net::Command cmd;
  cmd.target = ObserverId("AR1");
  cmd.verb = "close_window";
  broker.publish(ObserverId("CCU"), cmd);
  simulator.run();

  ASSERT_EQ(actuated.size(), 1u);
  EXPECT_EQ(actuated[0], "close_window");
  EXPECT_EQ(dispatch.dispatched(), 1u);
  ASSERT_EQ(actor.executed().size(), 1u);
  EXPECT_EQ(actor.executed()[0].executed - actor.executed()[0].received, milliseconds(50));
}

}  // namespace
}  // namespace stem::wsn
