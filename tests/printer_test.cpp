#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "eventlang/parser.hpp"
#include "eventlang/printer.hpp"

namespace stem::eventlang {
namespace {

/// Round-trip property: print -> parse -> print must be a fixed point.
void expect_round_trip(const char* source) {
  const core::EventDefinition first = parse_event(source);
  const std::string printed = print_event(first);
  const core::EventDefinition second = parse_event(printed);
  EXPECT_EQ(printed, print_event(second)) << "not a fixed point:\n" << printed;
  // Structure preserved.
  EXPECT_EQ(first.id, second.id);
  EXPECT_EQ(first.slots.size(), second.slots.size());
  EXPECT_EQ(first.window, second.window);
  EXPECT_EQ(first.condition.leaf_count(), second.condition.leaf_count());
  EXPECT_EQ(first.consumption, second.consumption);
}

TEST(PrinterTest, PaperS1RoundTrips) {
  expect_round_trip(R"(
    event S1 {
      window: 60 s;
      slot x = obs(SRx) from MT1;
      slot y = obs(SRy) from MT2;
      when time(x) before time(y) and distance(x, y) < 5.0;
    }
  )");
}

TEST(PrinterTest, AllPredicateKindsRoundTrip) {
  expect_round_trip(R"(
    event FULL {
      window: 500 ms;
      slot a = obs(SRtemp);
      slot b = event(HOT) from MT7;
      slot c = any;
      when (avg(value of a, b) > 20 or not rho(min: a) < 0.5)
       and time(span: a, b) + 10 ms within time(c)
       and loc(centroid: a, b) inside rect(0, 0, 100, 100)
       and distance(a, point(1, 2)) <= 3;
      emit {
        time: latest;
        location: centroid;
        confidence: mean * 0.8;
        attr heat = max(value of a, b);
      }
      reuse;
    }
  )");
}

TEST(PrinterTest, TimeConstantsRoundTrip) {
  expect_round_trip(R"(
    event T {
      slot x = any;
      when time(x) after at(5 s) and time(x) within interval(1 s, 10 s);
    }
  )");
}

TEST(PrinterTest, NestedLogicRoundTrips) {
  expect_round_trip(R"(
    event N {
      slot x = any;
      slot y = any;
      when not (rho(x) >= 0.5 or (rho(y) < 0.2 and time(x) before time(y)));
    }
  )");
}

TEST(PrinterTest, DurationUnitsCanonicalize) {
  // 120 s prints as "2 m"; 1500 ms stays "1500 ms".
  const auto def = parse_event("event D { window: 120 s; slot x = any; when rho(x) >= 0.0; }");
  EXPECT_NE(print_event(def).find("window: 2 m;"), std::string::npos);
  const auto def2 =
      parse_event("event D { window: 1500 ms; slot x = any; when rho(x) >= 0.0; }");
  EXPECT_NE(print_event(def2).find("window: 1500 ms;"), std::string::npos);
}

TEST(PrinterTest, PrintedDefinitionIsRegistrable) {
  const auto def = parse_event(R"(
    event OK { slot x = any; slot y = any; when time(x) before time(y); }
  )");
  core::DetectionEngine engine(core::ObserverId("X"), core::Layer::kSensor, {0, 0});
  EXPECT_NO_THROW(engine.add_definition(parse_event(print_event(def))));
}

TEST(PrinterTest, ConditionOnlyPrinter) {
  const auto def = parse_event(R"(
    event C { slot x = any; when rho(x) >= 0.5 and time(x) before at(1 s); }
  )");
  const std::string cond = print_condition(def.condition, def);
  EXPECT_NE(cond.find("rho(x) >= 0.5"), std::string::npos);
  EXPECT_NE(cond.find("before"), std::string::npos);
  EXPECT_EQ(cond.find("event C"), std::string::npos);  // just the clause
}

}  // namespace
}  // namespace stem::eventlang
