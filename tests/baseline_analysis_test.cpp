#include <gtest/gtest.h>

#include "analysis/edl.hpp"
#include "baseline/flat.hpp"
#include "baseline/point_only.hpp"

namespace stem {
namespace {

using core::EventInstance;
using core::EventInstanceKey;
using core::EventTypeId;
using core::Layer;
using core::ObserverId;
using core::SensorId;
using geom::Location;
using geom::Point;
using geom::Polygon;
using time_model::milliseconds;
using time_model::OccurrenceTime;
using time_model::seconds;
using time_model::TimeInterval;
using time_model::TimePoint;

EventInstance interval_instance(const char* event, TimePoint b, TimePoint e, Location loc) {
  EventInstance inst;
  inst.key = EventInstanceKey{ObserverId("MT1"), EventTypeId(event), 0};
  inst.layer = Layer::kSensor;
  inst.gen_time = e;
  inst.est_time = OccurrenceTime(TimeInterval(b, e));
  inst.est_location = std::move(loc);
  return inst;
}

TEST(DegradeToPointTest, CollapsesTimeAndSpace) {
  const core::Entity full(interval_instance(
      "E", TimePoint(100), TimePoint(200), Location(Polygon::rectangle({0, 0}, {10, 10}))));
  const core::Entity degraded = baseline::degrade_to_point(full);
  EXPECT_TRUE(degraded.instance().est_time.is_punctual());
  EXPECT_EQ(degraded.instance().est_time.as_point(), TimePoint(200));  // interval end
  EXPECT_TRUE(degraded.instance().est_location.is_point());
  EXPECT_TRUE(geom::almost_equal(degraded.instance().est_location.as_point(), {5, 5}));
}

TEST(DegradeToPointTest, ObservationLocationCollapses) {
  core::PhysicalObservation obs;
  obs.mote = ObserverId("MT1");
  obs.sensor = SensorId("SR");
  obs.time = TimePoint(50);
  obs.location = Location(Polygon::rectangle({0, 0}, {4, 4}));
  const core::Entity degraded = baseline::degrade_to_point(core::Entity(obs));
  EXPECT_TRUE(degraded.observation().location.is_point());
}

TEST(PointOnlyEngineTest, MissesIntervalOverlapScenario) {
  // Scenario: two interval events that OVERLAP. The full model detects the
  // overlap; the point-only model sees two points (the interval ends) and
  // cannot.
  core::EventDefinition def{
      EventTypeId("OVERLAP"),
      {{"a", core::SlotFilter::instance_of(EventTypeId("A"))},
       {"b", core::SlotFilter::instance_of(EventTypeId("B"))}},
      core::c_time(0, time_model::TemporalOp::kOverlaps, 1),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};

  const auto a = core::Entity(interval_instance("A", TimePoint(0), TimePoint(100),
                                                Location(Point{0, 0})));
  auto b_inst = interval_instance("B", TimePoint(50), TimePoint(150), Location(Point{0, 0}));
  b_inst.key.event = EventTypeId("B");
  const auto b = core::Entity(b_inst);

  core::DetectionEngine full(ObserverId("FULL"), Layer::kCyber, {0, 0});
  full.add_definition(def);
  full.observe(a, TimePoint(100));
  EXPECT_EQ(full.observe(b, TimePoint(150)).size(), 1u);  // full model detects

  baseline::PointOnlyEngine degraded(ObserverId("ECA"), Layer::kCyber, {0, 0});
  degraded.add_definition(def);
  degraded.observe(a, TimePoint(100));
  EXPECT_TRUE(degraded.observe(b, TimePoint(150)).empty());  // baseline misses
}

TEST(PointOnlyEngineTest, MissesFieldContainmentScenario) {
  // Scenario: point event inside a field event. The point-only model
  // collapses the field to its centroid, so Inside can no longer hold
  // (a point is only inside a point if coincident).
  core::EventDefinition def{
      EventTypeId("IN_ZONE"),
      {{"p", core::SlotFilter::instance_of(EventTypeId("P"))},
       {"f", core::SlotFilter::instance_of(EventTypeId("F"))}},
      core::c_space(0, geom::SpatialOp::kInside, 1),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};

  auto p_inst = interval_instance("P", TimePoint(10), TimePoint(10), Location(Point{2, 2}));
  auto f_inst = interval_instance("F", TimePoint(20), TimePoint(20),
                                  Location(Polygon::rectangle({0, 0}, {10, 10})));
  f_inst.key.event = EventTypeId("F");

  core::DetectionEngine full(ObserverId("FULL"), Layer::kCyber, {0, 0});
  full.add_definition(def);
  full.observe(core::Entity(p_inst), TimePoint(10));
  EXPECT_EQ(full.observe(core::Entity(f_inst), TimePoint(20)).size(), 1u);

  baseline::PointOnlyEngine degraded(ObserverId("ECA"), Layer::kCyber, {0, 0});
  degraded.add_definition(def);
  degraded.observe(core::Entity(p_inst), TimePoint(10));
  EXPECT_TRUE(degraded.observe(core::Entity(f_inst), TimePoint(20)).empty());
}

TEST(PointOnlyEngineTest, AgreesOnPurePointScenarios) {
  // Sanity: where only point semantics are involved, the baseline matches.
  core::EventDefinition def{
      EventTypeId("SEQ"),
      {{"a", core::SlotFilter::instance_of(EventTypeId("A"))},
       {"b", core::SlotFilter::instance_of(EventTypeId("B"))}},
      core::c_time(0, time_model::TemporalOp::kBefore, 1),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};

  auto a_inst = interval_instance("A", TimePoint(10), TimePoint(10), Location(Point{0, 0}));
  auto b_inst = interval_instance("B", TimePoint(30), TimePoint(30), Location(Point{0, 0}));
  b_inst.key.event = EventTypeId("B");

  baseline::PointOnlyEngine degraded(ObserverId("ECA"), Layer::kCyber, {0, 0});
  degraded.add_definition(def);
  degraded.observe(core::Entity(a_inst), TimePoint(10));
  EXPECT_EQ(degraded.observe(core::Entity(b_inst), TimePoint(30)).size(), 1u);
}

TEST(FlatCollectorTest, CascadesMultiLevelDefinitions) {
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(2));
  baseline::FlatCollector flat(network, {ObserverId("CENTER"), {0, 0}, milliseconds(1), {}});
  network.register_node(ObserverId("MT1"), [](const net::Message&) {});
  network.connect(ObserverId("MT1"), ObserverId("CENTER"), net::LinkSpec{});

  // Level 1: observation value > 50 -> HOT. Level 2: HOT -> ALARM.
  core::EventDefinition hot{
      EventTypeId("HOT"),
      {{"x", core::SlotFilter::observation(SensorId("SRtemp"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};
  core::EventDefinition alarm{
      EventTypeId("ALARM"),
      {{"h", core::SlotFilter::instance_of(EventTypeId("HOT"))}},
      core::c_confidence(core::ValueAggregate::kMin, {0}, core::RelationalOp::kGe, 0.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};
  flat.add_definition(hot);
  flat.add_definition(alarm);

  core::PhysicalObservation obs;
  obs.mote = ObserverId("MT1");
  obs.sensor = SensorId("SRtemp");
  obs.time = TimePoint(0);
  obs.location = Location(Point{5, 5});
  obs.attributes.set("value", 90.0);

  net::Message msg;
  msg.src = ObserverId("MT1");
  msg.dst = ObserverId("CENTER");
  msg.payload = core::Entity(obs);
  network.send(std::move(msg));
  simulator.run();

  EXPECT_EQ(flat.received(), 1u);
  ASSERT_EQ(flat.detected().size(), 2u);
  EXPECT_EQ(flat.detected()[0].key.event, EventTypeId("HOT"));
  EXPECT_EQ(flat.detected()[1].key.event, EventTypeId("ALARM"));
}

// --- EDL -----------------------------------------------------------------------

TEST(EdlModelTest, DecompositionAddsUp) {
  analysis::EdlModel m;
  m.sampling_period = seconds(2);
  m.mote_proc = milliseconds(5);
  m.hop_latency = milliseconds(3);
  m.hops = 4;
  m.sink_proc = milliseconds(10);
  m.net_latency = milliseconds(3);
  m.ccu_proc = milliseconds(20);

  // E = 1000 + 5 + 12 + 10 + 6 + 20 = 1053 ms.
  EXPECT_EQ(m.expected(), milliseconds(1053));
  EXPECT_EQ(m.worst_case(), milliseconds(1053) + seconds(1));
  // Per-layer cuts.
  EXPECT_EQ(m.expected_at(core::Layer::kSensor), milliseconds(1005));
  EXPECT_EQ(m.expected_at(core::Layer::kCyberPhysical), milliseconds(1027));
  EXPECT_EQ(m.expected_at(core::Layer::kCyber), milliseconds(1053));
}

TEST(EdlModelTest, MonotoneInHops) {
  analysis::EdlModel m;
  for (int h = 1; h < 8; ++h) {
    analysis::EdlModel more = m;
    m.hops = h;
    more.hops = h + 1;
    EXPECT_LT(m.expected(), more.expected());
  }
}

TEST(EdlTrackerTest, RecordsPerEventType) {
  analysis::EdlTracker tracker;
  for (int i = 1; i <= 100; ++i) {
    tracker.record(EventTypeId("A"), TimePoint(0), TimePoint(0) + milliseconds(i));
  }
  tracker.record(EventTypeId("B"), TimePoint(0), TimePoint(0) + milliseconds(500));

  EXPECT_EQ(tracker.count(EventTypeId("A")), 100u);
  EXPECT_EQ(tracker.count(EventTypeId("B")), 1u);
  EXPECT_EQ(tracker.count(EventTypeId("C")), 0u);
  EXPECT_DOUBLE_EQ(tracker.percentile_ms(EventTypeId("A"), 50), 50.0);
  EXPECT_DOUBLE_EQ(tracker.percentile_ms(EventTypeId("A"), 99), 99.0);
  EXPECT_DOUBLE_EQ(tracker.mean_ms(EventTypeId("A")), 50.5);
  EXPECT_DOUBLE_EQ(tracker.mean_ms(EventTypeId("B")), 500.0);
}

TEST(EdlTrackerTest, InstanceOverloadUsesGenTime) {
  analysis::EdlTracker tracker;
  EventInstance inst = interval_instance("X", TimePoint(0), TimePoint(0), Location(Point{0, 0}));
  inst.gen_time = TimePoint(0) + milliseconds(42);
  tracker.record(inst, TimePoint(0));
  EXPECT_DOUBLE_EQ(tracker.mean_ms(EventTypeId("X")), 42.0);
}

}  // namespace
}  // namespace stem
