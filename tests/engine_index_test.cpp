#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "sim/random.hpp"

/// Differential test: the indexed DetectionEngine (routing index, spatial
/// slot indexes, iterative enumerator, amortized pruning) must emit the
/// exact same instance stream as a naive reference that replicates the
/// pre-index engine semantics — a linear scan over every definition, a
/// recursive binding enumerator over full buffer snapshots, and a full
/// prune sweep on every observe. Streams are randomized over consumption
/// modes, multi-slot self-binding, spatial/temporal/attribute conditions,
/// window eviction, and buffer-cap eviction.

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

/// Reference implementation of the seed engine's exact semantics.
class NaiveEngine {
 public:
  NaiveEngine(ObserverId id, Layer layer, geom::Point location, EngineOptions options = {})
      : id_(std::move(id)), layer_(layer), location_(location), options_(options) {}

  void add_definition(EventDefinition def) {
    DefState ds{std::move(def), {}};
    ds.buffers.resize(ds.def.slots.size());
    defs_.push_back(std::move(ds));
  }

  void prune(TimePoint now) {
    for (DefState& ds : defs_) {
      const TimePoint horizon = now - ds.def.window;
      for (auto& buf : ds.buffers) {
        while (!buf.empty() && buf.front().entity->occurrence_time().end() < horizon) {
          buf.pop_front();
        }
      }
    }
  }

  std::vector<EventInstance> observe(const Entity& entity, TimePoint now) {
    prune(now);
    std::vector<EventInstance> out;
    const auto shared = std::make_shared<const Entity>(entity);
    const std::uint64_t stamp = next_stamp_++;
    for (DefState& ds : defs_) {
      std::vector<std::size_t> matched;
      for (std::size_t j = 0; j < ds.def.slots.size(); ++j) {
        if (ds.def.slots[j].filter.matches(entity)) {
          auto& buf = ds.buffers[j];
          buf.push_back(Buffered{shared, stamp});
          if (buf.size() > options_.max_buffer) buf.pop_front();
          matched.push_back(j);
        }
      }
      for (const std::size_t j : matched) {
        try_bindings(ds, j, Buffered{shared, stamp}, now, out);
      }
    }
    return out;
  }

 private:
  struct Buffered {
    std::shared_ptr<const Entity> entity;
    std::uint64_t stamp;
  };
  struct DefState {
    EventDefinition def;
    std::vector<std::deque<Buffered>> buffers;
  };

  void try_bindings(DefState& ds, std::size_t fixed_slot, const Buffered& fresh, TimePoint now,
                    std::vector<EventInstance>& out) {
    const std::size_t n = ds.def.slots.size();
    std::vector<const Buffered*> chosen(n, nullptr);
    chosen[fixed_slot] = &fresh;
    std::vector<const Entity*> binding(n, nullptr);
    bool consumed = false;

    const auto emit = [&] {
      const EvalContext ctx(binding.data(), n);
      if (!eval_condition(ds.def.condition, ctx, options_.eval_mode)) return;
      out.push_back(synthesize(ds, binding, now));
      if (ds.def.consumption == ConsumptionMode::kConsume) {
        for (std::size_t j = 0; j < n; ++j) {
          const std::uint64_t dead = chosen[j]->stamp;
          for (auto& buf : ds.buffers) {
            std::erase_if(buf, [dead](const Buffered& b) { return b.stamp == dead; });
          }
        }
        consumed = true;
      }
    };

    const std::function<void(std::size_t)> recurse = [&](std::size_t slot) {
      if (consumed) return;
      if (slot == n) {
        for (std::size_t j = 0; j < n; ++j) binding[j] = chosen[j]->entity.get();
        emit();
        return;
      }
      if (slot == fixed_slot) {
        recurse(slot + 1);
        return;
      }
      std::vector<Buffered> candidates(ds.buffers[slot].begin(), ds.buffers[slot].end());
      for (const Buffered& cand : candidates) {
        if (consumed) return;
        if (cand.stamp == fresh.stamp && slot < fixed_slot) continue;
        chosen[slot] = &cand;
        recurse(slot + 1);
      }
      chosen[slot] = nullptr;
    };
    recurse(0);
  }

  EventInstance synthesize(const DefState& ds, const std::vector<const Entity*>& binding,
                           TimePoint now) {
    const EventDefinition& def = ds.def;
    const std::size_t n = binding.size();
    EventInstance inst;
    inst.key = EventInstanceKey{id_, def.id, seq_[def.id.value()]++};
    inst.layer = layer_;
    inst.gen_time = now;
    inst.gen_location = location_;
    std::vector<time_model::OccurrenceTime> times;
    times.reserve(n);
    for (const Entity* e : binding) times.push_back(e->occurrence_time());
    inst.est_time = time_model::aggregate_times(def.synthesis.time, times.data(), times.size());
    if (n == 1) {
      inst.est_location = binding[0]->location();
    } else {
      std::vector<geom::Location> locs;
      locs.reserve(n);
      for (const Entity* e : binding) locs.push_back(e->location());
      inst.est_location =
          geom::aggregate_locations(def.synthesis.location, locs.data(), locs.size());
    }
    for (const AttributeRule& rule : def.synthesis.attributes) {
      std::vector<double> values;
      bool complete = true;
      for (const SlotIndex s : rule.slots) {
        const auto v = binding[s]->attributes().number(rule.input_attribute);
        if (!v.has_value()) {
          complete = false;
          break;
        }
        values.push_back(*v);
      }
      if (complete) {
        inst.attributes.set(rule.output_name,
                            aggregate_values(rule.aggregate, values.data(), values.size()));
      }
    }
    double rho = 0.0;
    switch (def.synthesis.confidence) {
      case ConfidencePolicy::kMin:
        rho = 1.0;
        for (const Entity* e : binding) rho = std::min(rho, e->confidence());
        break;
      case ConfidencePolicy::kProduct:
        rho = 1.0;
        for (const Entity* e : binding) rho *= e->confidence();
        break;
      case ConfidencePolicy::kMean:
        for (const Entity* e : binding) rho += e->confidence();
        rho /= static_cast<double>(n);
        break;
    }
    inst.confidence = rho * def.synthesis.observer_confidence;
    inst.provenance.reserve(n);
    for (const Entity* e : binding) inst.provenance.push_back(e->provenance_key());
    return inst;
  }

  ObserverId id_;
  Layer layer_;
  geom::Point location_;
  EngineOptions options_;
  std::vector<DefState> defs_;
  std::unordered_map<std::string, std::uint64_t> seq_;
  std::uint64_t next_stamp_ = 1;
};

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq, TimePoint t,
                        Point p, double value) {
  PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

/// A mixed definition set: thresholds, spatial joins (distance and
/// constant-region), temporal ordering, self-binding pairs, a 3-way join,
/// across both consumption modes. Unique ids keep sequence numbering
/// comparable between the per-type (naive) and per-def (indexed) counters.
std::vector<EventDefinition> mixed_definitions(ConsumptionMode mode, const std::string& tag,
                                               bool long_windows = false) {
  std::vector<EventDefinition> defs;

  EventDefinition hot{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      mode};
  hot.synthesis.attributes.push_back(AttributeRule{"value", ValueAggregate::kMax, "value", {0}});
  defs.push_back(hot);

  // Spatial + temporal join: a before b, within 8 meters.
  defs.push_back(EventDefinition{EventTypeId("NEAR_" + tag),
                                 {{"a", SlotFilter::observation(SensorId("SRa"))},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                                        c_distance(0, 1, RelationalOp::kLt, 8.0)}),
                                 seconds(4),
                                 {},
                                 mode});

  // Constant-region guard: b inside a fixed field.
  defs.push_back(EventDefinition{
      EventTypeId("ZONE_" + tag),
      {{"a", SlotFilter::observation(SensorId("SRb"))},
       {"b", SlotFilter::observation(SensorId("SRc"))}},
      c_and({c_space_const(1, geom::SpatialOp::kInside,
                           Location(geom::Polygon({{2, 2}, {14, 2}, {14, 14}, {2, 14}}))),
             c_distance(0, 1, RelationalOp::kLe, 10.0)}),
      seconds(6),
      {},
      mode});

  // Self-binding pair: both slots accept the same sensor.
  defs.push_back(EventDefinition{EventTypeId("PAIR_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRc"))},
                                  {"y", SlotFilter::observation(SensorId("SRc"))}},
                                 c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                                        c_distance(0, 1, RelationalOp::kLt, 12.0)}),
                                 seconds(5),
                                 {},
                                 mode});

  // 3-way join with an OR branch (guards must not over-prune under OR).
  defs.push_back(EventDefinition{
      EventTypeId("TRIO_" + tag),
      {{"a", SlotFilter::observation(SensorId("SRa"))},
       {"b", SlotFilter::observation(SensorId("SRb"))},
       {"c", SlotFilter::observation(SensorId("SRc"))}},
      c_and({c_distance(0, 1, RelationalOp::kLt, 9.0),
             c_or({c_distance(1, 2, RelationalOp::kLt, 6.0),
                   c_attr(ValueAggregate::kMin, "value", {0, 1, 2}, RelationalOp::kGt, 75.0)})}),
      seconds(3),
      {},
      mode});

  // 3-way join whose last slot is guarded only by a constant region (the
  // enumerator may cache its prepared candidates across backtracking).
  defs.push_back(EventDefinition{
      EventTypeId("ROOF_" + tag),
      {{"a", SlotFilter::observation(SensorId("SRa"))},
       {"b", SlotFilter::observation(SensorId("SRb"))},
       {"c", SlotFilter::observation(SensorId("SRc"))}},
      c_and({c_distance(0, 1, RelationalOp::kLt, 10.0),
             c_space_const(2, geom::SpatialOp::kInside,
                           Location(geom::Polygon({{0, 0}, {16, 0}, {16, 16}, {0, 16}})))}),
      seconds(5),
      {},
      mode});

  if (long_windows) {
    // Windows long enough that buffers hit the cap and retain-mode slots
    // cross the spatial-index activation threshold.
    for (EventDefinition& def : defs) def.window = seconds(120);
  }
  return defs;
}

class IndexedVsNaiveTest : public ::testing::TestWithParam<std::uint64_t> {};

void run_differential(std::uint64_t seed, ConsumptionMode mode, EngineOptions opts,
                      const std::string& tag, bool long_windows = false) {
  DetectionEngine indexed(ObserverId("OB"), Layer::kCyberPhysical, {0, 0}, opts);
  NaiveEngine naive(ObserverId("OB"), Layer::kCyberPhysical, {0, 0}, opts);
  for (const EventDefinition& def : mixed_definitions(mode, tag, long_windows)) {
    indexed.add_definition(def);
    naive.add_definition(def);
  }

  sim::Rng rng(seed);
  TimePoint now = TimePoint::epoch();
  const char* sensors[] = {"SRa", "SRb", "SRc", "SRd"};  // SRd matches nothing
  for (int i = 0; i < 300; ++i) {
    now += time_model::milliseconds(100 + rng.uniform_int(0, 900));
    const auto* sensor = sensors[rng.uniform_int(0, 3)];
    // Occurrence times jitter behind `now`, so some arrivals are already
    // near the window horizon and eviction interleaves with matching.
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 1500));
    const Entity e(obs(static_cast<int>(rng.uniform_int(1, 4)), sensor,
                       static_cast<std::uint64_t>(i), t,
                       {rng.uniform(0, 24), rng.uniform(0, 24)}, rng.uniform(0, 100)));
    const auto got = indexed.observe(e, now);
    const auto want = naive.observe(e, now);
    ASSERT_EQ(got.size(), want.size())
        << "arrival " << i << " (seed " << seed << ", " << tag << ")";
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(describe(got[k]), describe(want[k]))
          << "arrival " << i << " instance " << k << " (seed " << seed << ", " << tag << ")";
    }
  }
}

TEST_P(IndexedVsNaiveTest, UnrestrictedStreamsMatch) {
  run_differential(GetParam(), ConsumptionMode::kUnrestricted, {}, "U");
}

TEST_P(IndexedVsNaiveTest, ConsumeStreamsMatch) {
  run_differential(GetParam() ^ 0x5eedULL, ConsumptionMode::kConsume, {}, "C");
}

TEST_P(IndexedVsNaiveTest, TightBufferCapStreamsMatch) {
  EngineOptions opts;
  opts.max_buffer = 6;  // cap eviction interleaves with index maintenance
  run_differential(GetParam() ^ 0xcafeULL, ConsumptionMode::kUnrestricted, opts, "B");
}

TEST_P(IndexedVsNaiveTest, EagerEvalStreamsMatch) {
  EngineOptions opts;
  opts.eval_mode = EvalMode::kEager;
  run_differential(GetParam() ^ 0xea6eULL, ConsumptionMode::kConsume, opts, "E");
}

TEST_P(IndexedVsNaiveTest, ActiveSpatialIndexStreamsMatch) {
  // Long windows fill the (capped) buffers past the spatial-index
  // activation threshold, so retain-mode slots run real GridIndex/RTree
  // queries rather than guarded scans.
  run_differential(GetParam() ^ 0x1d3aULL, ConsumptionMode::kUnrestricted, {}, "L", true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedVsNaiveTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

/// Shared-plan differential at scale: 4100 near-duplicate definitions —
/// a 3500-strong single-slot threshold family full of duplicate
/// constants (the routing index collapses them into segment nodes) and a
/// 600-strong two-slot join family with identical filters and windows
/// (the engine collapses their buffers into shared stream nodes, long
/// windows pushing the shared buffers past the spatial-index activation
/// threshold). The emission stream must stay byte-identical to the naive
/// per-definition reference.
TEST(NearDuplicateFamilyTest, FourThousandNearDuplicatesMatchNaive) {
  DetectionEngine indexed(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});
  NaiveEngine naive(ObserverId("OB"), Layer::kCyberPhysical, {0, 0});

  for (int i = 0; i < 3500; ++i) {
    EventDefinition def{EventTypeId("NT" + std::to_string(i)),
                        {{"x", SlotFilter::observation(SensorId("SRa"))}},
                        c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt,
                               50.0 + 5.0 * static_cast<double>(i % 10)),
                        seconds(60),
                        {},
                        ConsumptionMode::kUnrestricted};
    indexed.add_definition(def);
    naive.add_definition(def);
  }
  for (int i = 0; i < 600; ++i) {
    EventDefinition def{EventTypeId("NJ" + std::to_string(i)),
                        {{"a", SlotFilter::observation(SensorId("SRa"))},
                         {"b", SlotFilter::observation(SensorId("SRb"))}},
                        c_distance(0, 1, RelationalOp::kLt,
                                   0.5 + 0.5 * static_cast<double>(i % 4)),
                        seconds(120),
                        {},
                        ConsumptionMode::kUnrestricted};
    indexed.add_definition(def);
    naive.add_definition(def);
  }

  sim::Rng rng(7);
  TimePoint now = TimePoint::epoch();
  const char* sensors[] = {"SRa", "SRb", "SRc"};  // SRc matches nothing
  for (int i = 0; i < 96; ++i) {
    now += time_model::milliseconds(100 + rng.uniform_int(0, 900));
    const auto* sensor = sensors[rng.uniform_int(0, 2)];
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 1500));
    const Entity e(obs(static_cast<int>(rng.uniform_int(1, 4)), sensor,
                       static_cast<std::uint64_t>(i), t,
                       {rng.uniform(0, 24), rng.uniform(0, 24)}, rng.uniform(0, 100)));
    const auto got = indexed.observe(e, now);
    const auto want = naive.observe(e, now);
    ASSERT_EQ(got.size(), want.size()) << "arrival " << i;
    for (std::size_t k = 0; k < got.size(); ++k) {
      ASSERT_EQ(describe(got[k]), describe(want[k])) << "arrival " << i << " instance " << k;
    }
  }
}

}  // namespace
}  // namespace stem::core
