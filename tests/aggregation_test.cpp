#include <gtest/gtest.h>

#include <memory>

#include "sensing/phenomena.hpp"
#include "sensing/sensor.hpp"
#include "wsn/mote.hpp"
#include "wsn/sink.hpp"

namespace stem::wsn {
namespace {

using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using time_model::milliseconds;
using time_model::seconds;
using time_model::TimePoint;

core::EventDefinition always_def() {
  core::EventDefinition def{
      EventTypeId("E"),
      {{"x", core::SlotFilter::observation(SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 0.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume};
  def.synthesis.attributes.push_back(
      core::AttributeRule{"value", core::ValueAggregate::kAverage, "value", {0}});
  return def;
}

struct AggFixture : ::testing::Test {
  AggFixture() : network(simulator, sim::Rng(8)) {}

  SensorMote& make_mote(const char* id, time_model::Duration aggregate_window) {
    SensorMote::Config cfg;
    cfg.id = ObserverId(id);
    cfg.position = {0, 0};
    cfg.sampling_period = milliseconds(250);
    cfg.aggregate_window = aggregate_window;
    motes.push_back(std::make_unique<SensorMote>(network, cfg, sim::Rng(1)));
    auto& mote = *motes.back();
    mote.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
        SensorId("SR"), std::make_shared<sensing::UniformField>(50.0), 0.0));
    mote.add_definition(always_def());
    return mote;
  }

  SinkNode& make_sink() {
    SinkNode::Config cfg;
    cfg.id = ObserverId("SINK");
    cfg.position = {10, 0};
    sink = std::make_unique<SinkNode>(network, nullptr, cfg);
    sink->add_definition(core::EventDefinition{
        EventTypeId("CP"),
        {{"e", core::SlotFilter::instance_of(EventTypeId("E"))}},
        core::c_confidence(core::ValueAggregate::kMin, {0}, core::RelationalOp::kGe, 0.0),
        seconds(60),
        {},
        core::ConsumptionMode::kConsume});
    return *sink;
  }

  static net::LinkSpec quiet() {
    net::LinkSpec l;
    l.jitter = time_model::Duration::zero();
    l.bytes_per_ms = 0.0;
    return l;
  }

  sim::Simulator simulator;
  net::Network network;
  std::vector<std::unique_ptr<SensorMote>> motes;
  std::unique_ptr<SinkNode> sink;
};

TEST_F(AggFixture, BatchingReducesMessagesNotDetections) {
  auto& mote = make_mote("MT1", seconds(1));  // 4 samples per batch window
  auto& s = make_sink();
  network.connect(ObserverId("MT1"), ObserverId("SINK"), quiet());
  mote.set_parent(ObserverId("SINK"));
  mote.start(TimePoint::epoch() + seconds(4));
  simulator.run();

  // 16 sensor events in 4 s but only ~4 batch messages.
  EXPECT_EQ(mote.stats().events_emitted, 16u);
  EXPECT_LE(mote.stats().sent_up, 5u);
  EXPECT_EQ(s.stats().entities_received, 16u);   // nothing lost
  EXPECT_EQ(s.stats().instances_emitted, 16u);   // same detections
}

TEST_F(AggFixture, UnbatchedBaselineSendsPerEvent) {
  auto& mote = make_mote("MT1", time_model::Duration::zero());
  auto& s = make_sink();
  network.connect(ObserverId("MT1"), ObserverId("SINK"), quiet());
  mote.set_parent(ObserverId("SINK"));
  mote.start(TimePoint::epoch() + seconds(4));
  simulator.run();
  EXPECT_EQ(mote.stats().sent_up, 16u);
  EXPECT_EQ(s.stats().instances_emitted, 16u);
}

TEST_F(AggFixture, BatchBytesBeatPerMessageBytes) {
  // Same workload, measure network bytes with and without batching.
  auto& batched = make_mote("MT_b", seconds(1));
  auto& s = make_sink();
  network.connect(ObserverId("MT_b"), ObserverId("SINK"), quiet());
  batched.set_parent(ObserverId("SINK"));
  batched.start(TimePoint::epoch() + seconds(4));
  simulator.run();
  const std::uint64_t batched_bytes = network.stats().bytes_sent;
  EXPECT_EQ(s.stats().entities_received, 16u);

  // Fresh network for the unbatched run.
  sim::Simulator sim2;
  net::Network net2(sim2, sim::Rng(8));
  SensorMote::Config cfg;
  cfg.id = ObserverId("MT_u");
  cfg.position = {0, 0};
  cfg.sampling_period = milliseconds(250);
  SensorMote unbatched(net2, cfg, sim::Rng(1));
  unbatched.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      SensorId("SR"), std::make_shared<sensing::UniformField>(50.0), 0.0));
  unbatched.add_definition(always_def());
  net2.register_node(ObserverId("SINK"), [](const net::Message&) {});
  net2.connect(ObserverId("MT_u"), ObserverId("SINK"), quiet());
  unbatched.set_parent(ObserverId("SINK"));
  unbatched.start(TimePoint::epoch() + seconds(4));
  sim2.run();

  EXPECT_LT(batched_bytes, net2.stats().bytes_sent);  // shared headers pay off
}

TEST_F(AggFixture, RelayMergesChildBatches) {
  auto& leaf = make_mote("LEAF", seconds(1));
  auto& relay = make_mote("RELAY", seconds(1));
  auto& s = make_sink();
  network.connect(ObserverId("LEAF"), ObserverId("RELAY"), quiet());
  network.connect(ObserverId("RELAY"), ObserverId("SINK"), quiet());
  leaf.set_parent(ObserverId("RELAY"));
  relay.set_parent(ObserverId("SINK"));
  leaf.start(TimePoint::epoch() + seconds(3));
  relay.start(TimePoint::epoch() + seconds(3));
  simulator.run();

  // All events from both motes arrive despite double batching.
  EXPECT_EQ(s.stats().entities_received,
            leaf.stats().events_emitted + relay.stats().events_emitted);
  EXPECT_GT(relay.stats().relayed, 0u);
}

TEST_F(AggFixture, BatchingAddsBoundedLatency) {
  auto& mote = make_mote("MT1", seconds(1));
  auto& s = make_sink();
  network.connect(ObserverId("MT1"), ObserverId("SINK"), quiet());
  mote.set_parent(ObserverId("SINK"));

  time_model::TimePoint first_arrival = TimePoint::max();
  s.on_instance([&](const core::EventInstance& inst) {
    if (inst.gen_time < first_arrival) first_arrival = inst.gen_time;
  });
  mote.start(TimePoint::epoch() + seconds(4));
  simulator.run();

  // First sample at 250 ms; batch flushes one aggregate_window later, so
  // the first CP instance appears within ~1.3 s (batching delay bounded by
  // the window), not immediately.
  EXPECT_GT(first_arrival, TimePoint::epoch() + seconds(1));
  EXPECT_LT(first_arrival, TimePoint::epoch() + milliseconds(1500));
}

TEST(EntityBatchSizeTest, SharedHeaderSmallerThanSumOfMessages) {
  core::PhysicalObservation obs;
  obs.mote = ObserverId("MT1");
  obs.sensor = SensorId("SR");
  obs.location = geom::Location(geom::Point{0, 0});
  obs.attributes.set("value", 1.0);

  net::EntityBatch batch;
  for (int i = 0; i < 8; ++i) batch.entities.push_back(core::Entity(obs));
  const std::size_t batch_size = net::estimate_size(net::Payload(batch));
  const std::size_t single = net::estimate_size(net::Payload(core::Entity(obs)));
  EXPECT_LT(batch_size, 8 * single);
  EXPECT_GT(batch_size, single);  // still carries all eight bodies
}

}  // namespace
}  // namespace stem::wsn
