#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "time/allen.hpp"
#include "time/interval.hpp"
#include "time/occurrence.hpp"
#include "time/temporal_op.hpp"
#include "time/time_point.hpp"

namespace stem::time_model {
namespace {

TEST(TimePointTest, ArithmeticAndComparison) {
  const TimePoint t0 = TimePoint::epoch();
  const TimePoint t1 = t0 + seconds(3);
  EXPECT_EQ(t1.ticks(), 3'000'000);
  EXPECT_EQ((t1 - t0).ticks(), 3'000'000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1 - seconds(3), t0);
}

TEST(TimePointTest, DurationFactoriesComposeConsistently) {
  EXPECT_EQ(minutes(1), seconds(60));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_EQ(milliseconds(1), microseconds(1000));
}

TEST(TimePointTest, DurationArithmetic) {
  Duration d = seconds(2);
  d += seconds(1);
  EXPECT_EQ(d, seconds(3));
  d -= seconds(4);
  EXPECT_EQ(d, seconds(-1));
  EXPECT_EQ(-d, seconds(1));
  EXPECT_EQ(d * 3, seconds(-3));
  EXPECT_EQ(seconds(10) / 2, seconds(5));
}

TEST(TimePointTest, Sentinels) {
  EXPECT_LT(TimePoint::min(), TimePoint::epoch());
  EXPECT_LT(TimePoint::epoch(), TimePoint::max());
}

TEST(TimeIntervalTest, InvariantEnforced) {
  EXPECT_NO_THROW(TimeInterval(TimePoint(5), TimePoint(5)));
  EXPECT_THROW(TimeInterval(TimePoint(5), TimePoint(4)), std::invalid_argument);
}

TEST(TimeIntervalTest, ContainmentAndIntersection) {
  const TimeInterval a(TimePoint(0), TimePoint(10));
  const TimeInterval b(TimePoint(3), TimePoint(7));
  const TimeInterval c(TimePoint(10), TimePoint(20));
  const TimeInterval d(TimePoint(11), TimePoint(12));

  EXPECT_TRUE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
  EXPECT_TRUE(a.contains(TimePoint(0)));
  EXPECT_TRUE(a.contains(TimePoint(10)));
  EXPECT_FALSE(a.contains(TimePoint(11)));

  EXPECT_TRUE(a.intersects(c));  // closed intervals share t=10
  EXPECT_FALSE(a.intersects(d));

  const auto inter = a.intersection(c);
  ASSERT_TRUE(inter.has_value());
  EXPECT_TRUE(inter->degenerate());
  EXPECT_EQ(inter->begin(), TimePoint(10));
  EXPECT_FALSE(a.intersection(d).has_value());
}

TEST(TimeIntervalTest, HullShiftMidpoint) {
  const TimeInterval a(TimePoint(0), TimePoint(4));
  const TimeInterval b(TimePoint(10), TimePoint(12));
  const TimeInterval h = a.hull(b);
  EXPECT_EQ(h.begin(), TimePoint(0));
  EXPECT_EQ(h.end(), TimePoint(12));
  EXPECT_EQ(a.shifted(Duration(5)), TimeInterval(TimePoint(5), TimePoint(9)));
  EXPECT_EQ(a.midpoint(), TimePoint(2));
  EXPECT_EQ(TimeInterval(TimePoint(0), TimePoint(5)).midpoint(), TimePoint(2));
}

TEST(OccurrenceTimeTest, DegenerateIntervalNormalizesToPunctual) {
  const OccurrenceTime p{TimeInterval(TimePoint(7), TimePoint(7))};
  EXPECT_TRUE(p.is_punctual());
  EXPECT_EQ(p.as_point(), TimePoint(7));
  EXPECT_EQ(p, OccurrenceTime(TimePoint(7)));
}

TEST(OccurrenceTimeTest, IntervalAccessors) {
  const OccurrenceTime iv{TimeInterval(TimePoint(2), TimePoint(9))};
  EXPECT_TRUE(iv.is_interval());
  EXPECT_EQ(iv.begin(), TimePoint(2));
  EXPECT_EQ(iv.end(), TimePoint(9));
  EXPECT_EQ(iv.length(), Duration(7));
  EXPECT_TRUE(iv.covers(TimePoint(2)));
  EXPECT_TRUE(iv.covers(TimePoint(9)));
  EXPECT_FALSE(iv.covers(TimePoint(10)));
  EXPECT_THROW((void)iv.as_point(), std::bad_variant_access);
}

// --- Allen relations: all 13 cases, plus inverse involution. -------------

struct AllenCase {
  TimeInterval a;
  TimeInterval b;
  AllenRelation expected;
};

class AllenRelationTest : public ::testing::TestWithParam<AllenCase> {};

TEST_P(AllenRelationTest, ClassifiesAndInverts) {
  const auto& c = GetParam();
  EXPECT_EQ(allen_relation(c.a, c.b), c.expected) << to_string(c.expected);
  EXPECT_EQ(allen_relation(c.b, c.a), inverse(c.expected));
  EXPECT_EQ(inverse(inverse(c.expected)), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, AllenRelationTest,
    ::testing::Values(
        AllenCase{{TimePoint(0), TimePoint(2)}, {TimePoint(5), TimePoint(9)}, AllenRelation::kBefore},
        AllenCase{{TimePoint(0), TimePoint(5)}, {TimePoint(5), TimePoint(9)}, AllenRelation::kMeets},
        AllenCase{{TimePoint(0), TimePoint(6)}, {TimePoint(4), TimePoint(9)}, AllenRelation::kOverlaps},
        AllenCase{{TimePoint(4), TimePoint(6)}, {TimePoint(4), TimePoint(9)}, AllenRelation::kStarts},
        AllenCase{{TimePoint(5), TimePoint(6)}, {TimePoint(4), TimePoint(9)}, AllenRelation::kDuring},
        AllenCase{{TimePoint(5), TimePoint(9)}, {TimePoint(4), TimePoint(9)}, AllenRelation::kFinishes},
        AllenCase{{TimePoint(4), TimePoint(9)}, {TimePoint(4), TimePoint(9)}, AllenRelation::kEquals},
        AllenCase{{TimePoint(4), TimePoint(9)}, {TimePoint(5), TimePoint(9)}, AllenRelation::kFinishedBy},
        AllenCase{{TimePoint(4), TimePoint(9)}, {TimePoint(5), TimePoint(6)}, AllenRelation::kContains},
        AllenCase{{TimePoint(4), TimePoint(9)}, {TimePoint(4), TimePoint(6)}, AllenRelation::kStartedBy},
        AllenCase{{TimePoint(4), TimePoint(9)}, {TimePoint(0), TimePoint(6)}, AllenRelation::kOverlappedBy},
        AllenCase{{TimePoint(5), TimePoint(9)}, {TimePoint(0), TimePoint(5)}, AllenRelation::kMetBy},
        AllenCase{{TimePoint(5), TimePoint(9)}, {TimePoint(0), TimePoint(2)}, AllenRelation::kAfter}));

TEST(AllenRelationExhaustiveTest, ExactlyOneRelationPerPair) {
  // Property: for every pair of small intervals, classification is total
  // and consistent with its inverse.
  for (Tick ab = 0; ab <= 4; ++ab) {
    for (Tick ae = ab; ae <= 4; ++ae) {
      for (Tick bb = 0; bb <= 4; ++bb) {
        for (Tick be = bb; be <= 4; ++be) {
          const TimeInterval a{TimePoint(ab), TimePoint(ae)};
          const TimeInterval b{TimePoint(bb), TimePoint(be)};
          const AllenRelation fwd = allen_relation(a, b);
          const AllenRelation rev = allen_relation(b, a);
          EXPECT_EQ(rev, inverse(fwd)) << a << " vs " << b;
        }
      }
    }
  }
}

TEST(PointRelationTest, AllThree) {
  EXPECT_EQ(point_relation(TimePoint(1), TimePoint(2)), PointRelation::kBefore);
  EXPECT_EQ(point_relation(TimePoint(2), TimePoint(2)), PointRelation::kSame);
  EXPECT_EQ(point_relation(TimePoint(3), TimePoint(2)), PointRelation::kAfter);
}

TEST(PointIntervalRelationTest, AllFive) {
  const TimeInterval iv(TimePoint(2), TimePoint(6));
  EXPECT_EQ(point_interval_relation(TimePoint(0), iv), PointIntervalRelation::kBefore);
  EXPECT_EQ(point_interval_relation(TimePoint(2), iv), PointIntervalRelation::kStarts);
  EXPECT_EQ(point_interval_relation(TimePoint(4), iv), PointIntervalRelation::kDuring);
  EXPECT_EQ(point_interval_relation(TimePoint(6), iv), PointIntervalRelation::kFinishes);
  EXPECT_EQ(point_interval_relation(TimePoint(9), iv), PointIntervalRelation::kAfter);
}

// --- Temporal operators across all punctual/interval combinations. -------

TEST(TemporalOpTest, PointPoint) {
  const OccurrenceTime a(TimePoint(3));
  const OccurrenceTime b(TimePoint(8));
  EXPECT_TRUE(eval_temporal(a, TemporalOp::kBefore, b));
  EXPECT_FALSE(eval_temporal(b, TemporalOp::kBefore, a));
  EXPECT_TRUE(eval_temporal(b, TemporalOp::kAfter, a));
  EXPECT_TRUE(eval_temporal(a, TemporalOp::kEquals, a));
  EXPECT_FALSE(eval_temporal(a, TemporalOp::kEquals, b));
  EXPECT_TRUE(eval_temporal(a, TemporalOp::kIntersects, a));
  EXPECT_FALSE(eval_temporal(a, TemporalOp::kIntersects, b));
}

TEST(TemporalOpTest, PointIntervalDuring) {
  const OccurrenceTime p(TimePoint(5));
  const OccurrenceTime iv{TimeInterval(TimePoint(2), TimePoint(9))};
  EXPECT_TRUE(eval_temporal(p, TemporalOp::kDuring, iv));
  EXPECT_TRUE(eval_temporal(p, TemporalOp::kWithin, iv));
  EXPECT_TRUE(eval_temporal(iv, TemporalOp::kContains, p));
  EXPECT_FALSE(eval_temporal(iv, TemporalOp::kDuring, p));
  // Paper's "Begin"/"End" for points on interval endpoints:
  EXPECT_TRUE(eval_temporal(OccurrenceTime(TimePoint(2)), TemporalOp::kStarts, iv));
  EXPECT_TRUE(eval_temporal(OccurrenceTime(TimePoint(9)), TemporalOp::kFinishes, iv));
}

TEST(TemporalOpTest, IntervalIntervalOverlap) {
  const OccurrenceTime a{TimeInterval(TimePoint(0), TimePoint(6))};
  const OccurrenceTime b{TimeInterval(TimePoint(4), TimePoint(9))};
  EXPECT_TRUE(eval_temporal(a, TemporalOp::kOverlaps, b));
  EXPECT_TRUE(eval_temporal(b, TemporalOp::kOverlappedBy, a));
  EXPECT_FALSE(eval_temporal(a, TemporalOp::kBefore, b));
  EXPECT_TRUE(eval_temporal(a, TemporalOp::kIntersects, b));
}

TEST(TemporalOpTest, MeetsIsSharedEndpoint) {
  const OccurrenceTime a{TimeInterval(TimePoint(0), TimePoint(5))};
  const OccurrenceTime b{TimeInterval(TimePoint(5), TimePoint(9))};
  EXPECT_TRUE(eval_temporal(a, TemporalOp::kMeets, b));
  EXPECT_TRUE(eval_temporal(b, TemporalOp::kMetBy, a));
}

TEST(TemporalOpTest, OffsetFormSupportsPaperExample) {
  // "t_x + 5 Before t_y" (paper Sec. 4.1): x at 0, y at 10 => 0+5 < 10.
  const OccurrenceTime x(TimePoint(0));
  const OccurrenceTime y(TimePoint(10));
  EXPECT_TRUE(eval_temporal(x, Duration(5), TemporalOp::kBefore, y));
  EXPECT_FALSE(eval_temporal(x, Duration(15), TemporalOp::kBefore, y));
}

TEST(TemporalOpTest, BeforeAfterAreMutuallyExclusive) {
  // Property sweep over small intervals.
  for (Tick ab = 0; ab <= 3; ++ab) {
    for (Tick ae = ab; ae <= 3; ++ae) {
      for (Tick bb = 0; bb <= 3; ++bb) {
        for (Tick be = bb; be <= 3; ++be) {
          const OccurrenceTime a{TimeInterval(TimePoint(ab), TimePoint(ae))};
          const OccurrenceTime b{TimeInterval(TimePoint(bb), TimePoint(be))};
          const bool before = eval_temporal(a, TemporalOp::kBefore, b);
          const bool after = eval_temporal(a, TemporalOp::kAfter, b);
          const bool intersects = eval_temporal(a, TemporalOp::kIntersects, b);
          EXPECT_FALSE(before && after);
          // Exactly one of {before, after, intersects} holds.
          EXPECT_EQ(1, static_cast<int>(before) + static_cast<int>(after) +
                           static_cast<int>(intersects));
        }
      }
    }
  }
}

TEST(TemporalOpTest, StringRoundTrip) {
  for (const TemporalOp op :
       {TemporalOp::kBefore, TemporalOp::kAfter, TemporalOp::kMeets, TemporalOp::kMetBy,
        TemporalOp::kOverlaps, TemporalOp::kOverlappedBy, TemporalOp::kDuring,
        TemporalOp::kContains, TemporalOp::kStarts, TemporalOp::kFinishes, TemporalOp::kEquals,
        TemporalOp::kIntersects, TemporalOp::kWithin}) {
    const auto parsed = temporal_op_from_string(to_string(op));
    ASSERT_TRUE(parsed.has_value()) << to_string(op);
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(temporal_op_from_string("sideways").has_value());
  // Paper aliases.
  EXPECT_EQ(temporal_op_from_string("begin"), TemporalOp::kStarts);
  EXPECT_EQ(temporal_op_from_string("end"), TemporalOp::kFinishes);
}

TEST(TimeAggregateTest, EarliestLatestSpanMean) {
  const std::array<OccurrenceTime, 3> ts = {
      OccurrenceTime(TimePoint(10)),
      OccurrenceTime(TimeInterval(TimePoint(0), TimePoint(4))),
      OccurrenceTime(TimeInterval(TimePoint(6), TimePoint(20))),
  };
  EXPECT_EQ(aggregate_times(TimeAggregate::kEarliest, ts.data(), ts.size()),
            OccurrenceTime(TimePoint(0)));
  EXPECT_EQ(aggregate_times(TimeAggregate::kLatest, ts.data(), ts.size()),
            OccurrenceTime(TimePoint(20)));
  EXPECT_EQ(aggregate_times(TimeAggregate::kSpan, ts.data(), ts.size()),
            OccurrenceTime(TimeInterval(TimePoint(0), TimePoint(20))));
  // midpoints: 10, 2, 13 -> mean 8 (integer division 25/3).
  EXPECT_EQ(aggregate_times(TimeAggregate::kMean, ts.data(), ts.size()),
            OccurrenceTime(TimePoint(8)));
}

TEST(TimeAggregateTest, EmptyInputThrows) {
  EXPECT_THROW((void)aggregate_times(TimeAggregate::kEarliest, nullptr, 0),
               std::invalid_argument);
}

TEST(TimeAggregateTest, StringRoundTrip) {
  for (const TimeAggregate a : {TimeAggregate::kEarliest, TimeAggregate::kLatest,
                                TimeAggregate::kSpan, TimeAggregate::kMean}) {
    EXPECT_EQ(time_aggregate_from_string(to_string(a)), a);
  }
  EXPECT_FALSE(time_aggregate_from_string("median").has_value());
}

}  // namespace
}  // namespace stem::time_model
