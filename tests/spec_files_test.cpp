#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/engine.hpp"
#include "eventlang/parser.hpp"
#include "eventlang/printer.hpp"

namespace stem::eventlang {
namespace {

/// The .stem files shipped under examples/specs/ must stay parseable,
/// registrable, and round-trippable — they are the public face of the
/// language.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path << " (run tests from the repo root or build dir)";
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string spec_path(const std::string& name) {
  // CTest runs from build/tests or build; probe a few relative roots.
  for (const char* prefix : {"../../examples/specs/", "../examples/specs/",
                             "examples/specs/", "/root/repo/examples/specs/"}) {
    std::ifstream probe(prefix + name);
    if (probe) return prefix + name;
  }
  return "examples/specs/" + name;
}

class SpecFileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SpecFileTest, ParsesAndRegisters) {
  const std::string source = read_file(spec_path(GetParam()));
  ASSERT_FALSE(source.empty());
  const auto defs = parse_spec(source);
  EXPECT_FALSE(defs.empty());

  core::DetectionEngine engine(core::ObserverId("X"), core::Layer::kCyber, {0, 0});
  for (const auto& def : defs) {
    EXPECT_NO_THROW(engine.add_definition(def)) << def.id.value();
  }
}

TEST_P(SpecFileTest, RoundTripsThroughPrinter) {
  const std::string source = read_file(spec_path(GetParam()));
  ASSERT_FALSE(source.empty());
  for (const auto& def : parse_spec(source)) {
    const std::string printed = print_event(def);
    const auto reparsed = parse_event(printed);
    EXPECT_EQ(printed, print_event(reparsed)) << def.id.value();
  }
}

INSTANTIATE_TEST_SUITE_P(ShippedSpecs, SpecFileTest,
                         ::testing::Values("smart_building.stem", "forest_fire.stem",
                                           "showcase.stem", "hotspot_cascade.stem"));

}  // namespace
}  // namespace stem::eventlang
