#include <gtest/gtest.h>

#include "scenario/forest_fire.hpp"
#include "scenario/smart_building.hpp"

namespace stem::scenario {
namespace {

/// Dense, well-connected deployment used by both scenarios.
DeploymentConfig dense_deployment(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.topology.motes = 25;
  cfg.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.topology.radio_range = 40.0;
  cfg.topology.seed = seed;
  cfg.seed = seed;
  cfg.sampling_period = time_model::milliseconds(500);
  return cfg;
}

TEST(DeploymentTest, WiresAllComponents) {
  Deployment d(dense_deployment(1));
  EXPECT_EQ(d.motes().size(), 25u);
  EXPECT_EQ(d.sinks().size(), 1u);
  EXPECT_EQ(d.topology().connected_count(), 25u);
  EXPECT_TRUE(d.network().has_node(Deployment::ccu_id()));
  EXPECT_TRUE(d.network().has_node(Deployment::db_id()));
  EXPECT_TRUE(d.network().has_node(Deployment::dispatch_id()));
  EXPECT_TRUE(d.network().linked(Deployment::ccu_id(), Deployment::broker_id()));
  // Every connected mote has a parent.
  d.for_each_mote([](wsn::SensorMote& m) { EXPECT_TRUE(m.parent().has_value()); });
}

TEST(DeploymentTest, ActorRegistrationWiresDispatch) {
  Deployment d(dense_deployment(2));
  auto& actor = d.add_actor(net::NodeId("AR_test"), {10, 10});
  EXPECT_TRUE(d.network().linked(Deployment::dispatch_id(), net::NodeId("AR_test")));
  EXPECT_EQ(actor.executed().size(), 0u);
}

TEST(SmartBuildingScenarioTest, DetectsUserAtWindowEndToEnd) {
  SmartBuildingConfig cfg;
  cfg.deployment = dense_deployment(7);
  SmartBuilding scenario(cfg);
  const SmartBuildingResult result = scenario.run();

  // The user's path passes through the window zone.
  ASSERT_TRUE(result.true_entry.has_value());
  // The hierarchy localized the user repeatedly...
  EXPECT_GT(result.location_estimates, 10u);
  EXPECT_LT(result.mean_location_error_m, 5.0);
  // ...detected the zone entry at the sink...
  ASSERT_TRUE(result.first_detection.has_value());
  EXPECT_GT(result.nearby_detections, 0u);
  // ...raised the cyber event and closed the window.
  EXPECT_GT(result.cyber_events, 0u);
  ASSERT_TRUE(result.window_closed.has_value());
  EXPECT_GT(result.commands, 0u);

  // Detection must follow the physical event, not precede it, and EDL
  // should be bounded by a few sampling periods + network delays.
  const auto edl = result.edl_ms();
  ASSERT_TRUE(edl.has_value());
  EXPECT_GT(*edl, 0.0);
  EXPECT_LT(*edl, 10'000.0);

  // Causality: the window closed after the first detection.
  EXPECT_GT(*result.window_closed, *result.first_detection);
  EXPECT_GT(result.network.delivered, 0u);
}

TEST(SmartBuildingScenarioTest, DatabaseArchivesDetections) {
  SmartBuildingConfig cfg;
  cfg.deployment = dense_deployment(8);
  SmartBuilding scenario(cfg);
  scenario.run();
  db::Query q;
  q.event = core::EventTypeId("NEARBY_WINDOW");
  EXPECT_GT(scenario.deployment().database().store().count(q), 0u);
}

TEST(SmartBuildingScenarioTest, DeterministicAcrossRuns) {
  SmartBuildingConfig cfg;
  cfg.deployment = dense_deployment(9);
  const auto r1 = SmartBuilding(cfg).run();
  const auto r2 = SmartBuilding(cfg).run();
  EXPECT_EQ(r1.location_estimates, r2.location_estimates);
  EXPECT_EQ(r1.nearby_detections, r2.nearby_detections);
  EXPECT_EQ(r1.first_detection, r2.first_detection);
  EXPECT_EQ(r1.network.sent, r2.network.sent);
}

TEST(ForestFireScenarioTest, DetectsAndSuppressesFire) {
  ForestFireConfig cfg;
  cfg.deployment = dense_deployment(11);
  ForestFire scenario(cfg);
  const ForestFireResult result = scenario.run();

  EXPECT_GT(result.hot_events, 0u);
  ASSERT_TRUE(result.first_cp_fire.has_value());
  EXPECT_GT(*result.first_cp_fire, result.ignition_time);
  EXPECT_GT(result.alarms, 0u);
  ASSERT_TRUE(result.suppression.has_value());
  EXPECT_GT(*result.suppression, *result.first_alarm);

  const auto latency = result.detection_latency_ms();
  ASSERT_TRUE(latency.has_value());
  EXPECT_GT(*latency, 0.0);

  // The estimated footprint is a real field event with sane area.
  ASSERT_TRUE(result.footprint_ratio.has_value());
  EXPECT_GT(*result.footprint_ratio, 0.05);
  EXPECT_LT(*result.footprint_ratio, 50.0);
  // ...and it genuinely overlaps the true burning disk.
  ASSERT_TRUE(result.footprint_iou.has_value());
  EXPECT_GT(*result.footprint_iou, 0.0);
  EXPECT_LE(*result.footprint_iou, 1.0);
}

TEST(ForestFireScenarioTest, NoFireNoAlarm) {
  ForestFireConfig cfg;
  cfg.deployment = dense_deployment(12);
  cfg.ignition_after = time_model::minutes(30);  // beyond the horizon
  ForestFire scenario(cfg);
  const ForestFireResult result = scenario.run();
  EXPECT_EQ(result.hot_events, 0u);
  EXPECT_EQ(result.cp_fire_events, 0u);
  EXPECT_EQ(result.alarms, 0u);
  EXPECT_FALSE(result.suppression.has_value());
}

}  // namespace
}  // namespace stem::scenario
