#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"

/// FaultPlan suite: every injected failure — counted drops, probabilistic
/// drops, duplication, reordering, partitions, node crashes — must be a
/// pure function of the seed and the send sequence, so a failing run
/// replays decision-for-decision. The network-level legs check the plan's
/// verdicts actually shape delivery and show up in per-link counters.

namespace stem::net {
namespace {

using time_model::milliseconds;
using time_model::TimePoint;

core::PhysicalObservation obs(std::uint64_t seq) {
  core::PhysicalObservation o;
  o.mote = core::ObserverId("MT1");
  o.sensor = core::SensorId("SR");
  o.seq = seq;
  o.time = TimePoint::epoch();
  o.location = geom::Location(geom::Point{0, 0});
  o.attributes.set("value", 1.0);
  return o;
}

std::string fingerprint(FaultPlan& plan, int sends) {
  std::string fp;
  TimePoint now = TimePoint::epoch();
  for (int i = 0; i < sends; ++i) {
    now += milliseconds(7);
    const FaultPlan::Decision d = plan.decide(NodeId("a"), NodeId("b"), now);
    fp += d.drop ? 'D' : '.';
    fp += d.duplicate ? '2' : '.';
    fp += std::to_string(d.extra_delay.ticks());
    fp += '|';
  }
  return fp;
}

TEST(FaultPlan, SameSeedSameConfigSameDecisions) {
  LinkFault fault;
  fault.drop_prob = 0.3;
  fault.duplicate_prob = 0.2;
  fault.reorder_jitter = milliseconds(40);
  FaultPlan p1(0x5eedULL);
  FaultPlan p2(0x5eedULL);
  p1.on_link(NodeId("a"), NodeId("b"), fault);
  p2.on_link(NodeId("a"), NodeId("b"), fault);
  const std::string fp = fingerprint(p1, 500);
  EXPECT_EQ(fp, fingerprint(p2, 500));
  // ...and the stream is not degenerate: some drops, some passes.
  EXPECT_NE(fp.find('D'), std::string::npos);
  EXPECT_NE(fp.find("|."), std::string::npos);  // at least one pass (not all dropped)
  FaultPlan p3(0x5eedULL + 1);
  p3.on_link(NodeId("a"), NodeId("b"), fault);
  EXPECT_NE(fp, fingerprint(p3, 500));
}

TEST(FaultPlan, CountedDropHitsExactlyEveryNth) {
  LinkFault fault;
  fault.drop_every_n = 3;
  FaultPlan plan(1);
  plan.on_link(NodeId("a"), NodeId("b"), fault);
  for (int i = 1; i <= 30; ++i) {
    const FaultPlan::Decision d = plan.decide(NodeId("a"), NodeId("b"), TimePoint::epoch());
    EXPECT_EQ(d.drop, i % 3 == 0) << "send " << i;
  }
  // Unconfigured links are untouched.
  const FaultPlan::Decision other = plan.decide(NodeId("x"), NodeId("y"), TimePoint::epoch());
  EXPECT_FALSE(other.drop);
}

TEST(FaultPlan, PartitionWindowsDropExactlyInside) {
  LinkFault fault;
  fault.partitions.push_back({TimePoint::epoch() + milliseconds(100),
                              TimePoint::epoch() + milliseconds(200)});
  fault.partitions.push_back({TimePoint::epoch() + milliseconds(400),
                              TimePoint::epoch() + milliseconds(500)});
  FaultPlan plan(1);
  plan.on_link(NodeId("a"), NodeId("b"), fault);
  const auto drops_at = [&](std::int64_t ms) {
    return plan.decide(NodeId("a"), NodeId("b"), TimePoint::epoch() + milliseconds(ms)).drop;
  };
  EXPECT_FALSE(drops_at(99));
  EXPECT_TRUE(drops_at(100));  // inclusive start
  EXPECT_TRUE(drops_at(150));
  EXPECT_FALSE(drops_at(200));  // exclusive end
  EXPECT_FALSE(drops_at(300));
  EXPECT_TRUE(drops_at(450));
  EXPECT_FALSE(drops_at(500));
}

TEST(FaultPlan, NodeCrashAndHealWindows) {
  FaultPlan plan(1);
  plan.on_node(NodeId("m"), NodeFault{TimePoint::epoch() + milliseconds(100),
                                      TimePoint::epoch() + milliseconds(300)});
  plan.on_node(NodeId("forever"), NodeFault{TimePoint::epoch() + milliseconds(50),
                                            TimePoint::max()});
  EXPECT_FALSE(plan.node_down(NodeId("m"), TimePoint::epoch() + milliseconds(99)));
  EXPECT_TRUE(plan.node_down(NodeId("m"), TimePoint::epoch() + milliseconds(100)));
  EXPECT_TRUE(plan.node_down(NodeId("m"), TimePoint::epoch() + milliseconds(299)));
  EXPECT_FALSE(plan.node_down(NodeId("m"), TimePoint::epoch() + milliseconds(300)));
  EXPECT_TRUE(plan.node_down(NodeId("forever"), TimePoint::epoch() + milliseconds(60)));
  EXPECT_FALSE(plan.node_down(NodeId("unknown"), TimePoint::epoch()));
}

/// Network-level: the plan's verdicts shape actual delivery and land in
/// the per-link counters.
struct FaultNetFixture : ::testing::Test {
  FaultNetFixture() : network(simulator, sim::Rng(7)), plan(0xabcULL) {
    network.register_node(NodeId("a"), [](const Message&) {});
    network.register_node(NodeId("b"), [this](const Message&) { ++received; });
    network.connect(NodeId("a"), NodeId("b"),
                    LinkSpec{milliseconds(2), milliseconds(0), 0.0, 0.0});
    network.set_fault_plan(&plan);
  }

  void send_n(int n, std::int64_t spacing_ms = 10) {
    for (int i = 0; i < n; ++i) {
      simulator.schedule_at(TimePoint::epoch() + milliseconds(spacing_ms * (i + 1)), [this, i] {
        Message msg;
        msg.src = NodeId("a");
        msg.dst = NodeId("b");
        msg.payload = core::Entity(obs(static_cast<std::uint64_t>(i)));
        network.send(std::move(msg));
      });
    }
    simulator.run();
  }

  sim::Simulator simulator;
  Network network;
  FaultPlan plan;
  int received = 0;
  std::vector<std::uint64_t> order;
};

TEST_F(FaultNetFixture, CountedDropShapesDelivery) {
  LinkFault fault;
  fault.drop_every_n = 4;
  plan.on_link(NodeId("a"), NodeId("b"), fault);
  send_n(100);
  EXPECT_EQ(received, 75);
  const LinkCounters& ab = network.stats().link(NodeId("a"), NodeId("b"));
  EXPECT_EQ(ab.sent, 100u);
  EXPECT_EQ(ab.delivered, 75u);
  EXPECT_EQ(ab.dropped, 25u);
}

TEST_F(FaultNetFixture, DuplicationDeliversTwice) {
  LinkFault fault;
  fault.duplicate_prob = 1.0;
  plan.on_link(NodeId("a"), NodeId("b"), fault);
  send_n(20);
  EXPECT_EQ(received, 40);
  const LinkCounters& ab = network.stats().link(NodeId("a"), NodeId("b"));
  EXPECT_EQ(ab.sent, 20u);
  EXPECT_EQ(ab.delivered, 40u);
}

TEST_F(FaultNetFixture, CrashedNodeNeitherSendsNorReceives) {
  // b crashes at 150ms and heals at 450ms: messages sent in the window
  // vanish (delivery-time check included), the rest arrive.
  plan.on_node(NodeId("b"), NodeFault{TimePoint::epoch() + milliseconds(150),
                                      TimePoint::epoch() + milliseconds(450)});
  send_n(50);  // sends at 10ms..500ms
  // Sends at 150..440ms inclusive are inside the window (29 of 50); the
  // 150ms boundary and delivery-time edge cases leave a small tolerance.
  EXPECT_LT(received, 25);
  EXPECT_GT(received, 15);
  const LinkCounters& ab = network.stats().link(NodeId("a"), NodeId("b"));
  EXPECT_EQ(ab.delivered + ab.dropped, ab.sent);
  EXPECT_GT(ab.dropped, 0u);
}

TEST_F(FaultNetFixture, ReorderJitterScramblesArrivalOrder) {
  network.register_node(NodeId("c"), [this](const Message& msg) {
    order.push_back(std::get<core::Entity>(msg.payload).observation().seq);
  });
  network.connect(NodeId("a"), NodeId("c"),
                  LinkSpec{milliseconds(2), milliseconds(0), 0.0, 0.0});
  LinkFault fault;
  fault.reorder_jitter = milliseconds(200);
  plan.on_link(NodeId("a"), NodeId("c"), fault);
  for (int i = 0; i < 50; ++i) {
    simulator.schedule_at(TimePoint::epoch() + milliseconds(5 * (i + 1)), [this, i] {
      Message msg;
      msg.src = NodeId("a");
      msg.dst = NodeId("c");
      msg.payload = core::Entity(obs(static_cast<std::uint64_t>(i)));
      network.send(std::move(msg));
    });
  }
  simulator.run();
  ASSERT_EQ(order.size(), 50u);
  bool sorted = true;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) sorted = false;
  }
  EXPECT_FALSE(sorted) << "200ms jitter over 5ms spacing must reorder something";
}

}  // namespace
}  // namespace stem::net
