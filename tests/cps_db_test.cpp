#include <gtest/gtest.h>

#include <memory>

#include "cps/ccu.hpp"
#include "db/event_store.hpp"

namespace stem {
namespace {

using core::EventInstance;
using core::EventInstanceKey;
using core::EventTypeId;
using core::Layer;
using core::ObserverId;
using geom::Location;
using geom::Point;
using time_model::milliseconds;
using time_model::seconds;
using time_model::TimeInterval;
using time_model::TimePoint;

EventInstance cp_instance(const char* event, std::uint64_t seq, TimePoint t, Point where,
                          double rho = 1.0) {
  EventInstance inst;
  inst.key = EventInstanceKey{ObserverId("SINK1"), EventTypeId(event), seq};
  inst.layer = Layer::kCyberPhysical;
  inst.gen_time = t;
  inst.gen_location = {50, 50};
  inst.est_time = time_model::OccurrenceTime(t);
  inst.est_location = Location(where);
  inst.confidence = rho;
  return inst;
}

struct CcuFixture : ::testing::Test {
  CcuFixture()
      : network(simulator, sim::Rng(5)), broker(network, ObserverId("BROKER")) {
    network.register_node(ObserverId("SINK1"), [](const net::Message&) {});
    network.connect(ObserverId("SINK1"), ObserverId("BROKER"), net::LinkSpec{});
  }

  cps::ControlUnit& make_ccu(const char* name) {
    cps::ControlUnit::Config cfg;
    cfg.id = ObserverId(name);
    cfg.position = {200, 200};
    ccus.push_back(std::make_unique<cps::ControlUnit>(network, broker, cfg));
    network.connect(ObserverId(name), ObserverId("BROKER"), net::LinkSpec{});
    return *ccus.back();
  }

  /// Cyber definition: a CP_HOT instance with rho >= 0.5 becomes ALARM.
  static core::EventDefinition alarm_def() {
    return core::EventDefinition{
        EventTypeId("ALARM"),
        {{"h", core::SlotFilter::instance_of(EventTypeId("CP_HOT"))}},
        core::c_confidence(core::ValueAggregate::kMin, {0}, core::RelationalOp::kGe, 0.5),
        seconds(60),
        {},
        core::ConsumptionMode::kConsume};
  }

  sim::Simulator simulator;
  net::Network network;
  net::Broker broker;
  std::vector<std::unique_ptr<cps::ControlUnit>> ccus;
};

TEST_F(CcuFixture, SubscribedEventsProduceCyberEvents) {
  auto& ccu = make_ccu("CCU1");
  ccu.subscribe(EventTypeId("CP_HOT"));
  ccu.add_definition(alarm_def());

  broker.publish(ObserverId("SINK1"),
                 core::Entity(cp_instance("CP_HOT", 0, TimePoint(1000), {10, 10}, 0.9)));
  simulator.run();

  EXPECT_EQ(ccu.stats().entities_received, 1u);
  ASSERT_EQ(ccu.emitted().size(), 1u);
  EXPECT_EQ(ccu.emitted().front().key.event, EventTypeId("ALARM"));
  EXPECT_EQ(ccu.emitted().front().layer, Layer::kCyber);
}

TEST_F(CcuFixture, LowConfidenceIsFiltered) {
  auto& ccu = make_ccu("CCU1");
  ccu.subscribe(EventTypeId("CP_HOT"));
  ccu.add_definition(alarm_def());
  broker.publish(ObserverId("SINK1"),
                 core::Entity(cp_instance("CP_HOT", 0, TimePoint(1000), {10, 10}, 0.2)));
  simulator.run();
  EXPECT_EQ(ccu.stats().entities_received, 1u);
  EXPECT_TRUE(ccu.emitted().empty());
}

TEST_F(CcuFixture, ActionRuleIssuesCommand) {
  auto& ccu = make_ccu("CCU1");
  ccu.subscribe(EventTypeId("CP_HOT"));
  ccu.add_definition(alarm_def());
  ccu.add_rule(cps::ActionRule{
      EventTypeId("ALARM"), [](const EventInstance& inst) -> std::optional<net::Command> {
        net::Command cmd;
        cmd.target = ObserverId("AR1");
        cmd.verb = "suppress";
        cmd.cause = inst.key;
        return cmd;
      }});

  std::vector<net::Command> dispatched;
  network.register_node(ObserverId("DISPATCH"), [&](const net::Message& m) {
    if (const auto* c = std::get_if<net::Command>(&m.payload)) dispatched.push_back(*c);
  });
  network.connect(ObserverId("DISPATCH"), ObserverId("BROKER"), net::LinkSpec{});
  broker.subscribe(net::Broker::command_topic(ObserverId("AR1")), ObserverId("DISPATCH"));

  broker.publish(ObserverId("SINK1"),
                 core::Entity(cp_instance("CP_HOT", 0, TimePoint(1000), {10, 10}, 0.9)));
  simulator.run();

  EXPECT_EQ(ccu.stats().commands_issued, 1u);
  ASSERT_EQ(dispatched.size(), 1u);
  EXPECT_EQ(dispatched[0].verb, "suppress");
  EXPECT_EQ(dispatched[0].cause.event, EventTypeId("ALARM"));
}

TEST_F(CcuFixture, RuleCanDeclineToAct) {
  auto& ccu = make_ccu("CCU1");
  ccu.subscribe(EventTypeId("CP_HOT"));
  ccu.add_definition(alarm_def());
  ccu.add_rule(cps::ActionRule{EventTypeId("ALARM"),
                               [](const EventInstance&) { return std::nullopt; }});
  broker.publish(ObserverId("SINK1"),
                 core::Entity(cp_instance("CP_HOT", 0, TimePoint(1000), {10, 10}, 0.9)));
  simulator.run();
  EXPECT_EQ(ccu.stats().commands_issued, 0u);
  EXPECT_EQ(ccu.emitted().size(), 1u);
}

TEST_F(CcuFixture, CcuToCcuCyberEvents) {
  // CCU1 turns CP_HOT into ALARM; CCU2 subscribes to ALARM and escalates.
  auto& ccu1 = make_ccu("CCU1");
  ccu1.subscribe(EventTypeId("CP_HOT"));
  ccu1.add_definition(alarm_def());

  auto& ccu2 = make_ccu("CCU2");
  ccu2.subscribe(EventTypeId("ALARM"));
  ccu2.add_definition(core::EventDefinition{
      EventTypeId("ESCALATION"),
      {{"a", core::SlotFilter::instance_of(EventTypeId("ALARM"))}},
      core::c_confidence(core::ValueAggregate::kMin, {0}, core::RelationalOp::kGe, 0.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume});

  broker.publish(ObserverId("SINK1"),
                 core::Entity(cp_instance("CP_HOT", 0, TimePoint(1000), {10, 10}, 0.9)));
  simulator.run();

  ASSERT_EQ(ccu2.emitted().size(), 1u);
  const EventInstance& esc = ccu2.emitted().front();
  EXPECT_EQ(esc.key.event, EventTypeId("ESCALATION"));
  // Provenance chains back to CCU1's alarm.
  ASSERT_EQ(esc.provenance.size(), 1u);
  EXPECT_EQ(esc.provenance.front().observer, ObserverId("CCU1"));
}

// --- EventStore ------------------------------------------------------------

struct StoreFixture : ::testing::Test {
  StoreFixture() {
    store.insert(cp_instance("CP_HOT", 0, TimePoint(100), {10, 10}, 0.9));
    store.insert(cp_instance("CP_HOT", 1, TimePoint(200), {90, 90}, 0.4));
    store.insert(cp_instance("CP_COLD", 0, TimePoint(300), {10, 90}, 0.8));
  }
  db::EventStore store;
};

TEST_F(StoreFixture, QueryByType) {
  db::Query q;
  q.event = EventTypeId("CP_HOT");
  EXPECT_EQ(store.count(q), 2u);
  q.event = EventTypeId("CP_COLD");
  EXPECT_EQ(store.count(q), 1u);
  q.event = EventTypeId("NOPE");
  EXPECT_EQ(store.count(q), 0u);
}

TEST_F(StoreFixture, QueryByTimeRange) {
  db::Query q;
  q.time_range = TimeInterval(TimePoint(150), TimePoint(250));
  ASSERT_EQ(store.count(q), 1u);
  EXPECT_EQ(store.query(q)[0]->key.seq, 1u);
}

TEST_F(StoreFixture, QueryByRegionAndConfidence) {
  db::Query q;
  q.region = geom::BoundingBox({0, 0}, {50, 50});
  EXPECT_EQ(store.count(q), 1u);

  db::Query qc;
  qc.min_confidence = 0.5;
  EXPECT_EQ(store.count(qc), 2u);

  db::Query all;
  EXPECT_EQ(store.count(all), 3u);
}

TEST_F(StoreFixture, PruneRetention) {
  EXPECT_EQ(store.prune_before(TimePoint(250)), 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(EventStoreLineageTest, FollowsProvenanceChain) {
  db::EventStore store;
  EventInstance leaf = cp_instance("S_HOT", 0, TimePoint(10), {0, 0});
  leaf.key.observer = ObserverId("MT1");
  leaf.layer = Layer::kSensor;
  EventInstance mid = cp_instance("CP_HOT", 0, TimePoint(20), {0, 0});
  mid.provenance.push_back(leaf.key);
  EventInstance top = cp_instance("ALARM", 0, TimePoint(30), {0, 0});
  top.key.observer = ObserverId("CCU1");
  top.layer = Layer::kCyber;
  top.provenance.push_back(mid.key);

  store.insert(leaf);
  store.insert(mid);
  store.insert(top);

  const auto chain = store.lineage(top.key);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->key.event, EventTypeId("ALARM"));
  // Full hierarchy reachable: cyber -> cyber-physical -> sensor.
  EXPECT_EQ(chain[1]->key.event, EventTypeId("CP_HOT"));
  EXPECT_EQ(chain[2]->key.event, EventTypeId("S_HOT"));
}

TEST(EventStoreLineageTest, CascadeClosureLineageAndPrunedMidChain) {
  // A real >=3-level cascade (obs -> HOT -> CP -> ALM) produced by the
  // engine's cascading path, archived level by level: lineage from the
  // regional alarm must walk the full provenance chain down to the HOT
  // instances whose own provenance names the originating observations;
  // prune_before dropping a mid-chain ancestor makes lineage skip it (and
  // everything only reachable through it) without crashing.
  auto with_value = [](core::EventDefinition def, std::vector<core::SlotIndex> slots) {
    def.synthesis.attributes.push_back(
        core::AttributeRule{"value", core::ValueAggregate::kMax, "value", std::move(slots)});
    return def;
  };
  core::DetectionEngine engine(ObserverId("FLAT"), Layer::kCyber, {0, 0});
  engine.add_definition(with_value(
      core::EventDefinition{
          EventTypeId("HOT"),
          {{"x", core::SlotFilter::observation(core::SensorId("SRa"))}},
          core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt,
                       60.0),
          seconds(60),
          {},
          core::ConsumptionMode::kUnrestricted},
      {0}));
  engine.add_definition(with_value(
      core::EventDefinition{
          EventTypeId("CP"),
          {{"a", core::SlotFilter::instance_of(EventTypeId("HOT"))},
           {"b", core::SlotFilter::instance_of(EventTypeId("HOT"))}},
          core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                       core::c_distance(0, 1, core::RelationalOp::kLt, 10.0)}),
          seconds(60),
          {},
          core::ConsumptionMode::kUnrestricted},
      {0, 1}));
  engine.add_definition(with_value(
      core::EventDefinition{
          EventTypeId("ALM"),
          {{"f", core::SlotFilter::instance_of(EventTypeId("CP"))}},
          core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt,
                       50.0),
          seconds(60),
          {},
          core::ConsumptionMode::kUnrestricted},
      {0}));

  const auto observe_at = [&](std::uint64_t seq, TimePoint t, Point where, double value) {
    core::PhysicalObservation o;
    o.mote = ObserverId("MT" + std::to_string(seq));
    o.sensor = core::SensorId("SRa");
    o.seq = seq;
    o.time = t;
    o.location = Location(where);
    o.attributes.set("value", value);
    return engine.observe_cascading(core::Entity(std::move(o)), t);
  };

  db::EventStore store;
  const TimePoint t1 = TimePoint(0) + seconds(1);
  const TimePoint t2 = TimePoint(0) + seconds(2);
  for (auto& inst : observe_at(0, t1, {0, 0}, 80.0)) store.insert(std::move(inst));
  std::vector<EventInstance> second = observe_at(1, t2, {1, 1}, 90.0);
  ASSERT_EQ(second.size(), 3u);  // HOT#1 -> CP -> ALM in one closure
  const EventInstanceKey alarm = second.back().key;
  ASSERT_EQ(second.back().key.event, EventTypeId("ALM"));
  for (auto& inst : second) store.insert(std::move(inst));
  ASSERT_EQ(store.size(), 4u);

  // Full chain: ALM -> CP -> {HOT#0, HOT#1}; the HOT level's provenance
  // names the originating observations (not stored, so the walk stops
  // there with the keys intact).
  const auto chain = store.lineage(alarm);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0]->key.event, EventTypeId("ALM"));
  EXPECT_EQ(chain[1]->key.event, EventTypeId("CP"));
  EXPECT_EQ(chain[2]->key.event, EventTypeId("HOT"));
  EXPECT_EQ(chain[3]->key.event, EventTypeId("HOT"));
  for (const auto* hot : {chain[2], chain[3]}) {
    ASSERT_EQ(hot->provenance.size(), 1u);
    EXPECT_EQ(hot->provenance[0].event.value().substr(0, 4), "obs:");
  }

  // Retention drops the older HOT (generated at t1): lineage skips the
  // missing mid-chain ancestor and returns the rest.
  ASSERT_EQ(store.prune_before(t1 + seconds(1)), 1u);
  const auto pruned = store.lineage(alarm);
  ASSERT_EQ(pruned.size(), 3u);
  EXPECT_EQ(pruned[0]->key.event, EventTypeId("ALM"));
  EXPECT_EQ(pruned[1]->key.event, EventTypeId("CP"));
  EXPECT_EQ(pruned[2]->key.event, EventTypeId("HOT"));

  // Degenerate retention (the whole closure gone): lineage of the
  // now-missing root is empty, not a crash.
  ASSERT_EQ(store.prune_before(t2 + seconds(1)), 3u);
  EXPECT_TRUE(store.lineage(alarm).empty());
}

TEST_F(CcuFixture, DatabaseServerArchivesPublishedInstances) {
  db::DatabaseServer dbs(network, broker, {ObserverId("DB1")});
  network.connect(ObserverId("DB1"), ObserverId("BROKER"), net::LinkSpec{});
  dbs.archive_topic("CP_HOT");

  broker.publish(ObserverId("SINK1"),
                 core::Entity(cp_instance("CP_HOT", 0, TimePoint(100), {1, 1})));
  broker.publish(ObserverId("SINK1"),
                 core::Entity(cp_instance("CP_COLD", 0, TimePoint(100), {1, 1})));
  simulator.run();

  EXPECT_EQ(dbs.store().size(), 1u);  // only the archived topic
  db::Query q;
  q.event = EventTypeId("CP_HOT");
  EXPECT_EQ(dbs.store().count(q), 1u);
}

}  // namespace
}  // namespace stem
