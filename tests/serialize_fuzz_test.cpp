#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/serialize.hpp"
#include "sim/random.hpp"

/// Structured fuzz of the wire codec: every decoder must return nullopt or
/// a value on *any* input — truncated frames, single-bit corruption,
/// seeded random mutation, raw garbage — and never crash, throw, or read
/// out of bounds. The ASan/UBSan CI legs turn any violation into a hard
/// failure. Checkpoint frames ride the same entity encoding (see
/// runtime/checkpoint.hpp), so this hardens crash recovery's on-disk
/// surface too.

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using geom::Polygon;
using time_model::OccurrenceTime;
using time_model::TimeInterval;
using time_model::TimePoint;

EventInstance sample_instance() {
  EventInstance inst;
  inst.key = EventInstanceKey{ObserverId("SINK1"), EventTypeId("CP_FIRE"), 42};
  inst.layer = Layer::kCyberPhysical;
  inst.gen_time = TimePoint(12'000'000);
  inst.gen_location = {50.5, -3.25};
  inst.est_time = OccurrenceTime(TimeInterval(TimePoint(11'000'000), TimePoint(11'500'000)));
  inst.est_location = Location(Polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  inst.attributes.set("value", 93.5);
  inst.attributes.set("zone", std::string("north"));
  inst.attributes.set("armed", true);
  inst.attributes.set("n", std::int64_t{4});
  inst.confidence = 0.8125;
  inst.provenance.push_back(EventInstanceKey{ObserverId("MT1"), EventTypeId("HOT"), 9});
  inst.provenance.push_back(EventInstanceKey{ObserverId("MT2"), EventTypeId("HOT"), 11});
  return inst;
}

PhysicalObservation sample_observation() {
  PhysicalObservation o;
  o.mote = ObserverId("MT7");
  o.sensor = SensorId("SR_temp");
  o.seq = 1234567;
  o.time = TimePoint(9'000'000);
  o.location = Location(Point{12.25, -7.75});
  o.attributes.set("value", -40.5);
  o.attributes.set("unit", std::string("C"));
  return o;
}

/// All the frames the fuzzers mutate: instance, observation, and both
/// tagged entity framings.
std::vector<std::string> seed_frames() {
  return {
      encode(sample_instance()),
      encode(sample_observation()),
      encode(Entity(sample_instance())),
      encode(Entity(sample_observation())),
  };
}

/// Feed one mutated frame through every decoder. Any return value is
/// acceptable; the test is that control comes back at all (no crash, no
/// sanitizer report, no exception).
void poke(const std::string& frame) {
  (void)decode_instance(frame);
  (void)decode_observation(frame);
  (void)decode_entity(frame);
}

TEST(SerializeFuzz, EveryTruncationIsHandled) {
  for (const std::string& frame : seed_frames()) {
    for (std::size_t len = 0; len <= frame.size(); ++len) {
      poke(frame.substr(0, len));
    }
    // Truncated frames must never round-trip as valid full frames.
    for (std::size_t len = 1; len < frame.size(); ++len) {
      const auto e = decode_entity(frame.substr(0, len));
      if (e.has_value()) {
        EXPECT_NE(encode(*e), frame) << "prefix " << len << " aliased the full frame";
      }
    }
  }
}

TEST(SerializeFuzz, EverySingleBitFlipIsHandled) {
  for (const std::string& frame : seed_frames()) {
    for (std::size_t i = 0; i < frame.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = frame;
        mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
        poke(mutated);
      }
    }
  }
}

TEST(SerializeFuzz, SeededRandomMutationsAreHandled) {
  sim::Rng rng(0xf422ULL);
  for (const std::string& frame : seed_frames()) {
    for (int round = 0; round < 400; ++round) {
      std::string mutated = frame;
      // 1-8 byte edits: overwrite, delete, or insert.
      const int edits = 1 + static_cast<int>(rng.uniform_int(0, 7));
      for (int e = 0; e < edits && !mutated.empty(); ++e) {
        const std::size_t at =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(mutated.size()) - 1));
        switch (rng.uniform_int(0, 2)) {
          case 0:
            mutated[at] = static_cast<char>(rng.uniform_int(0, 255));
            break;
          case 1:
            mutated.erase(at, 1);
            break;
          default:
            mutated.insert(at, 1, static_cast<char>(rng.uniform_int(0, 255)));
            break;
        }
      }
      poke(mutated);
    }
  }
}

TEST(SerializeFuzz, GarbageAndPathologicalInputsAreHandled) {
  const std::string cases[] = {
      "",
      "{",
      "}",
      "null",
      "{}",
      "[]",
      std::string(1 << 16, '{'),
      std::string(1 << 16, '9'),
      "{\"instance\":",
      "{\"instance\": {}}",
      "{\"observation\": {}}",
      "{\"instance\": {\"seq\": -1}}",
      "{\"observation\": {\"seq\": 99999999999999999999999999}}",
      "{\"instance\": \"not-an-object\"}",
      std::string("{\"instance\"\x00: {}}", 17),
      "{\"observation\": {\"location\": {\"polygon\": [[0]]}}}",
  };
  for (const std::string& c : cases) poke(c);
}

TEST(SerializeFuzz, IntactFramesStillRoundTripAfterFuzzing) {
  // Sanity anchor: the fuzzers above prove absence of crashes; this leg
  // proves the decoders still accept the genuine article.
  EXPECT_TRUE(decode_instance(encode(sample_instance())).has_value());
  EXPECT_TRUE(decode_observation(encode(sample_observation())).has_value());
  EXPECT_TRUE(decode_entity(encode(Entity(sample_instance()))).has_value());
  EXPECT_TRUE(decode_entity(encode(Entity(sample_observation()))).has_value());
}

}  // namespace
}  // namespace stem::core
