#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eventlang/lexer.hpp"
#include "eventlang/parser.hpp"
#include "eventlang/printer.hpp"
#include "sim/random.hpp"

/// Eventlang front-end fuzz/property suite.
///
/// 1. *Generative round-trip*: a generator emits random valid definition
///    ASTs spanning the whole grammar (all condition leaf kinds, nested
///    and/or/not, every aggregate/op name, slot filters with producers,
///    emit-spec variants) and asserts parse(print(ast)) == ast over >=
///    1000 seeds. The generator only emits printable-canonical values
///    (quarter-precision constants, tick-exact durations, rect/point
///    location constants), since the printer's canonical form is the
///    language's interchange format.
/// 2. *Mutation robustness*: canonical spec texts are truncated and
///    byte-mutated; the parser must either parse or throw ParseError —
///    never crash, never leak another exception type.

namespace stem::eventlang {
namespace {

using core::ConditionExpr;
using core::EventDefinition;
using core::SlotIndex;

class Gen {
 public:
  explicit Gen(std::uint64_t seed) : rng_(seed) {}

  EventDefinition definition(int tag) {
    const auto n_slots = static_cast<std::size_t>(rng_.uniform_int(1, 4));
    EventDefinition def{core::EventTypeId("FZ" + std::to_string(tag)),
                        slots(n_slots),
                        condition(n_slots, /*depth=*/0),
                        time_model::Duration(rng_.uniform_int(1, 10'000'000)),
                        {},
                        rng_.chance(0.5) ? core::ConsumptionMode::kConsume
                                         : core::ConsumptionMode::kUnrestricted};
    def.synthesis = synthesis(n_slots);
    return def;
  }

  ConditionExpr condition(std::size_t n_slots, int depth) {
    // Leaves get likelier with depth; composites stay shallow (<= 3).
    const std::int64_t kind = rng_.uniform_int(0, depth >= 3 ? 4 : 7);
    switch (kind) {
      case 5: {  // AND of non-AND children
        std::vector<ConditionExpr> children;
        const auto n = rng_.uniform_int(2, 3);
        for (int i = 0; i < n; ++i) children.push_back(non_node(n_slots, depth + 1, /*and_child=*/true));
        return core::c_and(std::move(children));
      }
      case 6: {  // OR of non-OR children
        std::vector<ConditionExpr> children;
        const auto n = rng_.uniform_int(2, 3);
        for (int i = 0; i < n; ++i) children.push_back(non_node(n_slots, depth + 1, /*and_child=*/false));
        return core::c_or(std::move(children));
      }
      case 7:
        return core::c_not(condition(n_slots, depth + 1));
      default:
        return leaf(n_slots);
    }
  }

  std::string text(int events) {
    std::string out;
    for (int i = 0; i < events; ++i) out += print_event(definition(i));
    return out;
  }

  sim::Rng& rng() { return rng_; }

 private:
  /// A child of an AND (OR) node that is not itself an AND (OR): the
  /// printer renders nested same-op nodes without a distinguishing form,
  /// so they would not round-trip structurally.
  ConditionExpr non_node(std::size_t n_slots, int depth, bool and_child) {
    for (;;) {
      ConditionExpr c = condition(n_slots, depth);
      const bool is_and = std::holds_alternative<core::AndNode>(c.rep());
      const bool is_or = std::holds_alternative<core::OrNode>(c.rep());
      if (and_child ? !is_and : !is_or) return c;
    }
  }

  ConditionExpr leaf(std::size_t n_slots) {
    switch (rng_.uniform_int(0, 4)) {
      case 0: {  // attribute condition
        return core::c_attr(value_aggregate(), attr_name(), slot_subset(n_slots),
                            relational_op(), quarter());
      }
      case 1: {  // temporal condition
        core::TemporalCondition c;
        c.lhs = time_expr(n_slots);
        c.op = temporal_op();
        if (rng_.chance(0.5)) {
          c.rhs = time_expr(n_slots);
        } else if (rng_.chance(0.5)) {
          c.rhs = time_model::OccurrenceTime(
              time_model::TimePoint(rng_.uniform_int(0, 1'000'000)));
        } else {
          const auto b = rng_.uniform_int(0, 500'000);
          c.rhs = time_model::OccurrenceTime(time_model::TimeInterval(
              time_model::TimePoint(b), time_model::TimePoint(b + rng_.uniform_int(1, 500'000))));
        }
        return ConditionExpr(std::move(c));
      }
      case 2: {  // spatial predicate
        core::SpatialCondition c;
        c.lhs = loc_expr(n_slots);
        c.op = spatial_op();
        if (rng_.chance(0.5)) {
          c.rhs = loc_expr(n_slots);
        } else {
          c.rhs = loc_const();
        }
        return ConditionExpr(std::move(c));
      }
      case 3: {  // distance: single slot each side, canonical hull aggregate
        const auto a = slot_of(n_slots);
        if (rng_.chance(0.5)) {
          return core::c_distance(a, slot_of(n_slots), relational_op(), quarter_pos());
        }
        return core::c_distance_const(a, loc_const(), relational_op(), quarter_pos());
      }
      default: {  // confidence condition
        return core::c_confidence(value_aggregate(), slot_subset(n_slots), relational_op(),
                                  quarter());
      }
    }
  }

  std::vector<core::SlotSpec> slots(std::size_t n) {
    std::vector<core::SlotSpec> out;
    for (std::size_t i = 0; i < n; ++i) {
      core::SlotFilter filter;
      switch (rng_.uniform_int(0, 2)) {
        case 0:
          filter = core::SlotFilter::observation(core::SensorId("SR" + std::to_string(rng_.uniform_int(0, 9))));
          break;
        case 1:
          filter = core::SlotFilter::instance_of(core::EventTypeId("EV" + std::to_string(rng_.uniform_int(0, 9))));
          break;
        default:
          filter = core::SlotFilter::any();
          break;
      }
      if (rng_.chance(0.3)) {
        filter = filter.from(core::ObserverId("MT" + std::to_string(rng_.uniform_int(0, 9))));
      }
      out.push_back(core::SlotSpec{"s" + std::to_string(i), filter});
    }
    return out;
  }

  core::SynthesisSpec synthesis(std::size_t n_slots) {
    core::SynthesisSpec syn;
    syn.time = static_cast<time_model::TimeAggregate>(rng_.uniform_int(0, 3));
    syn.location = static_cast<geom::SpatialAggregate>(rng_.uniform_int(0, 2));
    syn.confidence = static_cast<core::ConfidencePolicy>(rng_.uniform_int(0, 2));
    // k/16 in (0, 1]: dyadic, so the printed decimal re-parses exactly.
    syn.observer_confidence = static_cast<double>(rng_.uniform_int(1, 16)) / 16.0;
    const auto rules = rng_.uniform_int(0, 2);
    for (int i = 0; i < rules; ++i) {
      syn.attributes.push_back(core::AttributeRule{"o" + std::to_string(i), value_aggregate(),
                                                   attr_name(), slot_subset(n_slots)});
    }
    return syn;
  }

  core::TimeExpr time_expr(std::size_t n_slots) {
    core::TimeExpr e;
    e.aggregate = static_cast<time_model::TimeAggregate>(rng_.uniform_int(0, 3));
    e.slots = slot_subset(n_slots);
    e.offset = rng_.chance(0.4) ? time_model::Duration(rng_.uniform_int(1, 1'000'000))
                                : time_model::Duration::zero();
    return e;
  }

  core::LocationExpr loc_expr(std::size_t n_slots) {
    return core::LocationExpr{static_cast<geom::SpatialAggregate>(rng_.uniform_int(0, 2)),
                              slot_subset(n_slots)};
  }

  geom::Location loc_const() {
    if (rng_.chance(0.5)) return geom::Location(geom::Point{quarter(), quarter()});
    // Strictly ordered rect corners: canonical under the printer's
    // field-as-bounding-rect form.
    const double x = quarter();
    const double y = quarter();
    return geom::Location(
        geom::Polygon::rectangle({x, y}, {x + quarter_pos(), y + quarter_pos()}));
  }

  std::vector<SlotIndex> slot_subset(std::size_t n_slots) {
    std::vector<SlotIndex> out;
    for (SlotIndex i = 0; i < n_slots; ++i) {
      if (rng_.chance(0.5)) out.push_back(i);
    }
    if (out.empty()) out.push_back(slot_of(n_slots));
    return out;
  }

  SlotIndex slot_of(std::size_t n_slots) {
    return static_cast<SlotIndex>(rng_.uniform_int(0, static_cast<std::int64_t>(n_slots) - 1));
  }

  std::string attr_name() { return "v" + std::to_string(rng_.uniform_int(0, 4)); }
  core::ValueAggregate value_aggregate() {
    return static_cast<core::ValueAggregate>(rng_.uniform_int(0, 4));
  }
  core::RelationalOp relational_op() {
    return static_cast<core::RelationalOp>(rng_.uniform_int(0, 5));
  }
  time_model::TemporalOp temporal_op() {
    return static_cast<time_model::TemporalOp>(rng_.uniform_int(0, 12));
  }
  geom::SpatialOp spatial_op() { return static_cast<geom::SpatialOp>(rng_.uniform_int(0, 5)); }

  /// Quarter-precision decimals in [-999.75, 999.75]: dyadic and at most
  /// six significant digits, so ostream printing re-parses exactly.
  double quarter() { return static_cast<double>(rng_.uniform_int(-3999, 3999)) / 4.0; }
  double quarter_pos() { return static_cast<double>(rng_.uniform_int(1, 3999)) / 4.0; }

  sim::Rng rng_;
};

TEST(EventlangFuzzTest, GeneratedAstsRoundTripExactly) {
  // >= 1000 distinct generated definitions: parse(print(ast)) == ast, and
  // a second round trip is a fixed point (print is canonical).
  for (std::uint64_t seed = 1; seed <= 1200; ++seed) {
    Gen gen(seed);
    const EventDefinition def = gen.definition(static_cast<int>(seed));
    const std::string text = print_event(def);
    EventDefinition reparsed = parse_event(text);
    ASSERT_EQ(reparsed, def) << "seed " << seed << "\n" << text;
    ASSERT_EQ(print_event(reparsed), text) << "seed " << seed;
  }
}

TEST(EventlangFuzzTest, MultiEventSpecsRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Gen gen(seed * 977);
    std::vector<EventDefinition> defs;
    for (int i = 0; i < 4; ++i) defs.push_back(gen.definition(i));
    std::string text;
    for (const EventDefinition& d : defs) text += print_event(d);
    const auto reparsed = parse_spec(text);
    ASSERT_EQ(reparsed.size(), defs.size()) << "seed " << seed;
    for (std::size_t i = 0; i < defs.size(); ++i) {
      ASSERT_EQ(reparsed[i], defs[i]) << "seed " << seed << " event " << i;
    }
  }
}

/// Feeds `text` to the parser, asserting error-not-crash: success or
/// ParseError are the only acceptable outcomes.
void expect_parse_or_error(const std::string& text, const std::string& ctx) {
  try {
    (void)parse_spec(text);
  } catch (const ParseError&) {
    // fine: rejected with a diagnostic
  } catch (const std::exception& e) {
    FAIL() << ctx << ": leaked non-ParseError exception: " << e.what() << "\ninput:\n" << text;
  }
}

TEST(EventlangFuzzTest, TruncatedSpecsErrorNotCrash) {
  Gen gen(42);
  const std::string text = gen.text(3);
  // Every prefix, plus sub-token cuts around each character class change.
  for (std::size_t cut = 0; cut < text.size(); cut += 1 + (cut % 7)) {
    expect_parse_or_error(text.substr(0, cut), "truncate@" + std::to_string(cut));
  }
}

TEST(EventlangFuzzTest, MutatedSpecsErrorNotCrash) {
  static constexpr char kBytes[] =
      "{}();=,.<>!+-*/#\"\\ \t\n\0abz019_$%&^~|?:@`'"
      "\x01\x7f\xff";
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    Gen gen(seed * 31 + 7);
    std::string text = gen.text(1);
    sim::Rng& rng = gen.rng();
    const auto mutations = rng.uniform_int(1, 6);
    for (int m = 0; m < mutations; ++m) {
      if (text.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0:  // overwrite with an arbitrary byte
          text[pos] = kBytes[rng.uniform_int(0, static_cast<std::int64_t>(sizeof(kBytes)) - 2)];
          break;
        case 1:  // delete
          text.erase(pos, 1 + static_cast<std::size_t>(rng.uniform_int(0, 3)));
          break;
        case 2:  // duplicate a chunk
          text.insert(pos, text.substr(pos, static_cast<std::size_t>(rng.uniform_int(1, 12))));
          break;
        default:  // insert an arbitrary byte
          text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                      kBytes[rng.uniform_int(0, static_cast<std::int64_t>(sizeof(kBytes)) - 2)]);
          break;
      }
    }
    expect_parse_or_error(text, "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace stem::eventlang
