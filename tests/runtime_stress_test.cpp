#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

/// Stress/soak suite for the lock-free ingest path: bursty producers
/// against a randomly-stalled consumer shard (via RuntimeOptions::
/// stall_hook) over >= 100k arrivals, asserting byte-exactness against
/// the sequential engine, the queue_capacity bound on max_inbox, and
/// clean shutdown() while producers sit parked in backpressure. Runs
/// under the TSan CI leg with reduced volume.

namespace stem::runtime {
namespace {

using core::ConsumptionMode;
using core::DetectionEngine;
using core::EventDefinition;
using core::EventInstance;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

#if defined(__SANITIZE_THREAD__)
#define STEM_STRESS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STEM_STRESS_TSAN 1
#endif
#endif

#if defined(STEM_STRESS_TSAN)
constexpr int kSoakArrivals = 20'000;
#else
constexpr int kSoakArrivals = 100'000;
#endif

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

core::PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq,
                              TimePoint t, Point p, double value) {
  core::PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

/// Cheap per-arrival work so the suite's volume goes into the ingest path,
/// not the engines: one keyed threshold per sensor plus a wildcard
/// definition whose host shard receives the *full* stream — exactly the
/// shard the stall hook throttles, so backpressure engages for real.
std::vector<EventDefinition> stress_definitions(const std::string& tag) {
  std::vector<EventDefinition> defs;
  defs.push_back(EventDefinition{EventTypeId("WALL_" + tag),
                                 {{"w", SlotFilter::any()}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 90.0),
                                 seconds(60),
                                 {},
                                 ConsumptionMode::kConsume});
  for (int i = 0; i < 4; ++i) {
    defs.push_back(EventDefinition{
        EventTypeId("ST" + std::to_string(i) + "_" + tag),
        {{"x", SlotFilter::observation(SensorId("SS" + std::to_string(i)))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
        seconds(60),
        {},
        ConsumptionMode::kConsume});
  }
  return defs;
}

struct Stream {
  std::vector<core::Entity> entities;
  std::vector<TimePoint> nows;
};

Stream make_stream(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(1 + rng.uniform_int(0, 9));
    const int sensor = static_cast<int>(rng.uniform_int(0, 3));
    s.entities.push_back(core::Entity(obs(1, "SS" + std::to_string(sensor),
                                          static_cast<std::uint64_t>(i), now,
                                          {rng.uniform(0, 24), rng.uniform(0, 24)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

/// Deterministic stateless stall decision usable from any worker thread.
bool stall_tick(std::uint64_t tick) {
  std::uint64_t h = tick * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return h % 101 == 0;
}

TEST(RuntimeStressTest, BurstyProducerVsStalledConsumerStaysExact) {
  const Stream stream = make_stream(42, kSoakArrivals);
  const auto defs = stress_definitions("SX");

  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyber, {0, 0});
  for (const EventDefinition& def : defs) sequential.add_definition(def);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst : sequential.observe(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }

  constexpr std::size_t kQueue = 64;
  constexpr std::size_t kMaxBurst = 512;
  RuntimeOptions options;
  options.shards = 4;
  options.queue_capacity = kQueue;
  // Randomly stall whichever worker hosts the wildcard definition (it
  // sees every arrival): ~1% of its work items sleep, so the ring wraps,
  // producers park, and the consumer wakes them — repeatedly.
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::size_t> stalled_shard{0};
  options.stall_hook = [&](std::size_t shard) {
    if (shard != stalled_shard.load(std::memory_order_relaxed)) return;
    if (stall_tick(ticks.fetch_add(1, std::memory_order_relaxed))) {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  };
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def : defs) rt.add_definition(def);
  stalled_shard.store(rt.shard_of(0), std::memory_order_relaxed);  // wildcard host

  // Bursty ingest: mostly small batches, occasionally a burst well above
  // queue_capacity (the oversized-batch admission path).
  sim::Rng bursts(7);
  std::vector<std::string> got;
  const auto collect = [&](std::vector<EventInstance> instances) {
    for (const EventInstance& inst : instances) got.push_back(describe(inst));
  };
  std::size_t i = 0;
  while (i < stream.entities.size()) {
    const std::size_t burst = bursts.chance(0.05)
                                  ? kMaxBurst
                                  : static_cast<std::size_t>(bursts.uniform_int(1, 48));
    const std::size_t n = std::min(burst, stream.entities.size() - i);
    rt.ingest_batch(std::span(stream.entities).subspan(i, n),
                    std::span(stream.nows).subspan(i, n));
    if (bursts.chance(0.25)) collect(rt.poll());
    i += n;
  }
  collect(rt.flush());

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) ASSERT_EQ(got[k], want[k]) << "instance " << k;

  // Backpressure bounds inbox depth: at most queue_capacity arrivals are
  // admitted, except a single oversized burst into an empty inbox.
  const RuntimeStats stats = rt.stats();
  EXPECT_EQ(stats.arrivals, stream.entities.size());
  EXPECT_LE(stats.max_inbox, std::max(kQueue, kMaxBurst));
  EXPECT_GT(stats.max_inbox, 0u);
}

TEST(RuntimeStressTest, ConcurrentBurstyProducersConserveEverything) {
  // Byte-exactness is single-producer territory (concurrent producers
  // interleave stamps nondeterministically); with 4 racing producers the
  // oracle is conservation: per-type instance counts, arrival totals, and
  // the inbox bound must hold on every interleaving.
  constexpr std::uint64_t kProducers = 4;
  const int per_producer = kSoakArrivals / 8;
  std::vector<Stream> streams;
  std::vector<std::uint64_t> want_count(kProducers, 0);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    // One sensor per producer: each definition's instance count depends
    // only on its own producer's (in-order) sub-stream.
    sim::Rng rng(1000 + p);
    Stream s;
    TimePoint now = TimePoint::epoch();
    for (int i = 0; i < per_producer; ++i) {
      now += time_model::milliseconds(1 + rng.uniform_int(0, 9));
      const double value = rng.uniform(0, 100);
      if (value > 50.0) ++want_count[p];
      s.entities.push_back(core::Entity(obs(static_cast<int>(p), "SS" + std::to_string(p),
                                            static_cast<std::uint64_t>(i), now,
                                            {rng.uniform(0, 24), rng.uniform(0, 24)}, value)));
      s.nows.push_back(now);
    }
    streams.push_back(std::move(s));
  }

  constexpr std::size_t kQueue = 32;
  RuntimeOptions options;
  options.shards = 4;
  options.queue_capacity = kQueue;
  std::atomic<std::uint64_t> ticks{0};
  options.stall_hook = [&](std::size_t) {
    if (stall_tick(ticks.fetch_add(1, std::memory_order_relaxed))) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  };
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  // No wildcard here: each arrival goes to exactly one shard, so the
  // per-type counts are independent of producer interleaving.
  for (int i = 0; i < 4; ++i) {
    rt.add_definition(EventDefinition{
        EventTypeId("ST" + std::to_string(i)),
        {{"x", SlotFilter::observation(SensorId("SS" + std::to_string(i)))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
        seconds(60),
        {},
        ConsumptionMode::kConsume});
  }

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&rt, &streams, p] {
      const Stream& s = streams[p];
      sim::Rng bursts(77 + p);
      std::size_t i = 0;
      while (i < s.entities.size()) {
        const std::size_t n = std::min(
            static_cast<std::size_t>(bursts.uniform_int(1, 96)), s.entities.size() - i);
        rt.ingest_batch(std::span(s.entities).subspan(i, n),
                        std::span(s.nows).subspan(i, n));
        i += n;
      }
    });
  }
  for (auto& t : producers) t.join();

  std::map<std::string, std::uint64_t> got_count;
  for (const EventInstance& inst : rt.flush()) ++got_count[inst.key.event.value()];
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(got_count["ST" + std::to_string(p)], want_count[p]) << "producer " << p;
  }

  // The `value > 50` single-slot definitions ride the routing table's
  // threshold sub-index, so sub-threshold entities match no route and are
  // counted as dropped at ingest — conservation splits the total across
  // arrivals (== the instance-producing half, exactly) and dropped.
  const RuntimeStats stats = rt.stats();
  std::uint64_t want_total = 0;
  for (const std::uint64_t c : want_count) want_total += c;
  EXPECT_EQ(stats.arrivals, want_total);
  EXPECT_EQ(stats.arrivals + stats.dropped,
            kProducers * static_cast<std::uint64_t>(per_producer));
  EXPECT_EQ(stats.engine.entities_in, stats.deliveries);
  EXPECT_LE(stats.max_inbox, std::max<std::uint64_t>(kQueue, 96));
}

TEST(RuntimeStressTest, CleanShutdownMidBackpressure) {
  // A slow consumer (every work item stalls) and a capacity-2 inbox park
  // the producer almost immediately; shutdown() must release it, drain
  // the workers, and leave flush()/poll() returning promptly — across
  // both runtime modes and repeated rounds to catch interleavings.
  for (const bool cascade : {false, true}) {
    for (int round = 0; round < 6; ++round) {
      RuntimeOptions options;
      options.shards = 2;
      options.queue_capacity = 2;
      options.cascade = cascade;
      options.stall_hook = [](std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      };
      ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
      for (const EventDefinition& def : stress_definitions("SD")) rt.add_definition(def);

      const Stream stream = make_stream(900 + round, 4'000);
      std::atomic<bool> producer_done{false};
      std::thread producer([&] {
        // Far more arrivals than the stalled consumer can drain before
        // the main thread calls shutdown: this parks in backpressure.
        for (std::size_t i = 0; i < stream.entities.size(); ++i) {
          rt.ingest(stream.entities[i], stream.nows[i]);
        }
        producer_done.store(true, std::memory_order_seq_cst);
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(2 + round));
      rt.shutdown();
      producer.join();  // released by shutdown, remaining ingests no-op
      EXPECT_TRUE(producer_done.load(std::memory_order_seq_cst));

      // Post-shutdown API: flush must not hang on abandoned work, ingest
      // must be a no-op, and stats must stay readable.
      const auto leftover = rt.flush();
      const RuntimeStats stats = rt.stats();
      EXPECT_LE(stats.instances, stats.arrivals * 5);  // sane, no hang
      rt.ingest(stream.entities[0], stream.nows[0]);
      EXPECT_TRUE(rt.poll().empty());
      (void)leftover;
      rt.shutdown();  // idempotent
    }
  }
}

TEST(RuntimeStressTest, ShutdownRacesMigrationIssuance) {
  // Regression: shutdown() used to close the shard rings without holding
  // the ingest lock, so it could interleave inside a migration issuance
  // and drop one half of the extract/implant control pair on a closed
  // ring while admitting the other — the receive-side worker then waited
  // forever on a ready flag nobody would set, and shutdown()'s join hung.
  // Race ingestion, explicit migrations, auto-rebalancing, and shutdown
  // hard across both runtime modes; a regression shows up as a hang (the
  // ctest timeout), not an assertion.
  for (const bool cascade : {false, true}) {
    for (int round = 0; round < 8; ++round) {
      RuntimeOptions options;
      options.shards = 4;
      options.queue_capacity = 8;
      options.cascade = cascade;
      options.rebalance_epoch = 64;  // migrations also issue inside ingest_batch
      ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
      for (const EventDefinition& def : stress_definitions("SM")) rt.add_definition(def);

      const Stream stream = make_stream(3000 + round, 3'000);
      std::thread producer([&] {
        std::size_t i = 0;
        while (i < stream.entities.size()) {
          const std::size_t n = std::min<std::size_t>(32, stream.entities.size() - i);
          rt.ingest_batch(std::span(stream.entities).subspan(i, n),
                          std::span(stream.nows).subspan(i, n));
          i += n;
        }
      });
      std::atomic<bool> stop_migrator{false};
      std::thread migrator([&] {
        // Ping-pong the wildcard group (def 0 sees the full stream, so
        // its handshakes always land mid-traffic) until shutdown; the
        // calls degrade to no-ops once the runtime stops.
        std::size_t to = 0;
        while (!stop_migrator.load(std::memory_order_relaxed)) {
          rt.migrate_definition(0, to);
          to = (to + 1) % options.shards;
        }
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + round % 4));
      rt.shutdown();
      stop_migrator.store(true, std::memory_order_relaxed);
      producer.join();
      migrator.join();
      (void)rt.poll();  // post-shutdown API stays usable
      (void)rt.stats();
    }
  }
}

}  // namespace
}  // namespace stem::runtime
