#include <gtest/gtest.h>

#include "core/serialize.hpp"
#include "sim/random.hpp"

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using geom::Polygon;
using time_model::OccurrenceTime;
using time_model::TimeInterval;
using time_model::TimePoint;

EventInstance sample_instance() {
  EventInstance inst;
  inst.key = EventInstanceKey{ObserverId("SINK1"), EventTypeId("CP_FIRE"), 42};
  inst.layer = Layer::kCyberPhysical;
  inst.gen_time = TimePoint(12'000'000);
  inst.gen_location = {50.5, -3.25};
  inst.est_time = OccurrenceTime(TimeInterval(TimePoint(11'000'000), TimePoint(11'500'000)));
  inst.est_location = Location(Polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  inst.attributes.set("value", 93.5);
  inst.attributes.set("zone", std::string("north"));
  inst.attributes.set("armed", true);
  inst.attributes.set("n", std::int64_t{4});
  inst.confidence = 0.8125;
  inst.provenance.push_back(EventInstanceKey{ObserverId("MT1"), EventTypeId("HOT"), 9});
  inst.provenance.push_back(EventInstanceKey{ObserverId("MT2"), EventTypeId("HOT"), 11});
  return inst;
}

TEST(SerializeTest, InstanceRoundTrip) {
  const EventInstance original = sample_instance();
  const std::string json = encode(original);
  const auto decoded = decode_instance(json);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, original.key);
  EXPECT_EQ(decoded->layer, original.layer);
  EXPECT_EQ(decoded->gen_time, original.gen_time);
  EXPECT_EQ(decoded->gen_location, original.gen_location);
  EXPECT_EQ(decoded->est_time, original.est_time);
  EXPECT_EQ(decoded->est_location, original.est_location);
  EXPECT_EQ(decoded->attributes, original.attributes);
  EXPECT_DOUBLE_EQ(decoded->confidence, original.confidence);
  ASSERT_EQ(decoded->provenance.size(), 2u);
  EXPECT_EQ(decoded->provenance[0], original.provenance[0]);
  EXPECT_EQ(decoded->provenance[1], original.provenance[1]);
}

TEST(SerializeTest, PunctualPointInstanceRoundTrip) {
  EventInstance inst = sample_instance();
  inst.est_time = OccurrenceTime(TimePoint(7));
  inst.est_location = Location(Point{1.5, 2.5});
  inst.provenance.clear();
  const auto decoded = decode_instance(encode(inst));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->est_time.is_punctual());
  EXPECT_TRUE(decoded->est_location.is_point());
  EXPECT_EQ(decoded->est_time, inst.est_time);
  EXPECT_TRUE(decoded->provenance.empty());
}

TEST(SerializeTest, ObservationRoundTrip) {
  PhysicalObservation obs;
  obs.mote = ObserverId("MT3");
  obs.sensor = SensorId("SRtemp");
  obs.seq = 99;
  obs.time = TimePoint(1'234'567);
  obs.location = Location(Point{-4.5, 8.0});
  obs.attributes.set("value", 21.75);
  const auto decoded = decode_observation(encode(obs));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->mote, obs.mote);
  EXPECT_EQ(decoded->sensor, obs.sensor);
  EXPECT_EQ(decoded->seq, obs.seq);
  EXPECT_EQ(decoded->time, obs.time);
  EXPECT_EQ(decoded->location, obs.location);
  EXPECT_EQ(decoded->attributes, obs.attributes);
}

TEST(SerializeTest, StringEscaping) {
  EventInstance inst = sample_instance();
  inst.attributes.set("note", std::string("line1\nline2\t\"quoted\" \\slash"));
  const auto decoded = decode_instance(encode(inst));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->attributes, inst.attributes);
}

TEST(SerializeTest, WhitespaceTolerant) {
  const std::string json = encode(sample_instance());
  std::string spaced;
  for (const char c : json) {
    spaced += c;
    if (c == ',' || c == ':' || c == '{') spaced += "\n  ";
  }
  const auto decoded = decode_instance(spaced);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, sample_instance().key);
}

TEST(SerializeTest, RejectsMalformedInput) {
  EXPECT_FALSE(decode_instance("").has_value());
  EXPECT_FALSE(decode_instance("{").has_value());
  EXPECT_FALSE(decode_instance("not json at all").has_value());
  EXPECT_FALSE(decode_instance(R"({"unknown_field": 3})").has_value());
  EXPECT_FALSE(decode_instance(R"({"observer": "A", "layer": "bogus-layer"})").has_value());
  // Trailing garbage is an error.
  const std::string good = encode(sample_instance());
  EXPECT_FALSE(decode_instance(good + "garbage").has_value());
  EXPECT_FALSE(decode_observation("{\"mote\": }").has_value());
}

TEST(SerializeTest, AttributeTypesPreserved) {
  EventInstance inst = sample_instance();
  const auto decoded = decode_instance(encode(inst));
  ASSERT_TRUE(decoded.has_value());
  // Integers decode as int64, not double; bools stay bool.
  EXPECT_TRUE(std::holds_alternative<std::int64_t>(*decoded->attributes.find("n")));
  EXPECT_TRUE(std::holds_alternative<bool>(*decoded->attributes.find("armed")));
  EXPECT_TRUE(std::holds_alternative<double>(*decoded->attributes.find("value")));
  EXPECT_TRUE(std::holds_alternative<std::string>(*decoded->attributes.find("zone")));
}

TEST(SerializeTest, RandomizedRoundTripSweep) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    EventInstance inst;
    inst.key = EventInstanceKey{ObserverId("OB" + std::to_string(rng.uniform_int(0, 9))),
                                EventTypeId("E" + std::to_string(rng.uniform_int(0, 9))),
                                static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20))};
    inst.layer = static_cast<Layer>(rng.uniform_int(0, 4));
    inst.gen_time = TimePoint(rng.uniform_int(-1'000'000, 1'000'000));
    inst.gen_location = {rng.uniform(-100, 100), rng.uniform(-100, 100)};
    if (rng.chance(0.5)) {
      inst.est_time = OccurrenceTime(TimePoint(rng.uniform_int(0, 1'000'000)));
    } else {
      const auto b = rng.uniform_int(0, 500'000);
      inst.est_time = OccurrenceTime(
          TimeInterval(TimePoint(b), TimePoint(b + rng.uniform_int(1, 500'000))));
    }
    if (rng.chance(0.5)) {
      inst.est_location = Location(Point{rng.uniform(-10, 10), rng.uniform(-10, 10)});
    } else {
      inst.est_location = Location(
          Polygon::disk({rng.uniform(-10, 10), rng.uniform(-10, 10)}, rng.uniform(1, 5), 8));
    }
    inst.confidence = rng.uniform();
    for (int a = 0; a < static_cast<int>(rng.uniform_int(0, 4)); ++a) {
      inst.attributes.set("a" + std::to_string(a), rng.uniform(-1e6, 1e6));
    }
    const auto decoded = decode_instance(encode(inst));
    ASSERT_TRUE(decoded.has_value()) << encode(inst);
    EXPECT_EQ(decoded->key, inst.key);
    EXPECT_EQ(decoded->est_time, inst.est_time);
    EXPECT_EQ(decoded->est_location, inst.est_location);
    EXPECT_EQ(decoded->attributes, inst.attributes);
  }
}

}  // namespace
}  // namespace stem::core
