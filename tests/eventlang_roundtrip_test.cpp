#include <gtest/gtest.h>

#include "eventlang/parser.hpp"
#include "eventlang/printer.hpp"

namespace stem::eventlang {
namespace {

/// parse -> print -> re-parse must reproduce the AST exactly: the printer's
/// canonical form is the language's interchange format, so any drift between
/// the two (lost clause, re-ordered slot, renamed operator) is a bug.

core::EventDefinition roundtrip(const core::EventDefinition& def) {
  return parse_event(print_event(def));
}

TEST(EventlangRoundTripTest, ThresholdDefinition) {
  const auto def = parse_event(R"(
event HOT {
  window: 2 s;
  slot x = obs(SRheat);
  when avg(value of x) > 80;
  emit { attr value = avg(value of x); }
}
)");
  EXPECT_EQ(roundtrip(def), def);
}

TEST(EventlangRoundTripTest, CompositeDefinition) {
  const auto def = parse_event(R"(
event CP_FIRE {
  window: 4 s;
  slot a = event(HOT);
  slot b = event(HOT) from MT3;
  slot c = any;
  when (min(value of a, b) > 80 or not rho(min: c) < 0.5)
   and time(a) before time(b)
   and time(span: a, b) + 250 ms within time(c)
   and distance(a, b) < 40;
  emit {
    time: span;
    location: hull;
    confidence: mean * 0.9;
    attr value = avg(value of a, b, c);
  }
  reuse;
}
)");
  EXPECT_EQ(roundtrip(def), def);
}

TEST(EventlangRoundTripTest, SpatialPredicateDefinition) {
  const auto def = parse_event(R"(
event NEARBY_WINDOW {
  window: 5 s;
  slot l = event(LOC_userA);
  when loc(l) inside rect(4, 0, 6, 2)
   and loc(centroid: l) joint rect(3, 0, 7, 2)
   and distance(l, point(5, 1)) <= 3;
  emit { time: latest; location: centroid; confidence: mean; }
}
)");
  EXPECT_EQ(roundtrip(def), def);
}

TEST(EventlangRoundTripTest, CircleNormalizesToBoundingRectOnce) {
  // circle(...) is sugar: the printer emits the disk's bounding rect, which
  // is stable (equal AST) from the first reprint onward.
  const auto def = parse_event(R"(
event RING {
  window: 5 s;
  slot l = obs(SRloc);
  when loc(l) joint circle(5, 1, 2);
}
)");
  const auto normalized = roundtrip(def);
  EXPECT_NE(normalized, def);
  EXPECT_EQ(roundtrip(normalized), normalized);
}

TEST(EventlangRoundTripTest, TemporalConstantsDefinition) {
  const auto def = parse_event(R"(
event CALIBRATION_WINDOW {
  window: 1 m;
  slot s = obs(SRclock);
  when time(s) during interval(1 s, 120 s)
    or time(earliest: s) after at(500 ms);
}
)");
  EXPECT_EQ(roundtrip(def), def);
}

TEST(EventlangRoundTripTest, RoundTripIsIdempotent) {
  const auto def = parse_event(R"(
event QUORUM {
  window: 30 s;
  slot x = obs(SRvote);
  slot y = obs(SRvote);
  when count(value of x, y) >= 2 and distance(x, y) > 0.5;
  emit { time: mean; location: unionbox; confidence: product; }
  reuse;
}
)");
  const auto once = roundtrip(def);
  EXPECT_EQ(once, def);
  EXPECT_EQ(roundtrip(once), once);
  EXPECT_EQ(print_event(once), print_event(def));
}

TEST(EventlangRoundTripTest, InequalAstsCompareUnequal) {
  const auto a = parse_event("event E { slot x = obs(SR); when avg(v of x) > 1; }");
  const auto b = parse_event("event E { slot x = obs(SR); when avg(v of x) > 2; }");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, parse_event("event E { slot x = obs(SR); when avg(v of x) > 1; }"));
}

}  // namespace
}  // namespace stem::eventlang
