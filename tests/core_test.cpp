#include <gtest/gtest.h>

#include <sstream>

#include "core/attribute.hpp"
#include "core/condition.hpp"
#include "core/entity.hpp"
#include "core/event_def.hpp"
#include "core/ids.hpp"
#include "core/instance.hpp"

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using geom::Polygon;
using time_model::Duration;
using time_model::OccurrenceTime;
using time_model::TimeInterval;
using time_model::TimePoint;

// --- AttributeSet ----------------------------------------------------------

TEST(AttributeSetTest, SetFindReplace) {
  AttributeSet a;
  EXPECT_TRUE(a.empty());
  a.set("temp", 21.5);
  a.set("zone", std::string("lobby"));
  a.set("armed", true);
  a.set("count", std::int64_t{3});
  EXPECT_EQ(a.size(), 4u);
  EXPECT_TRUE(a.has("temp"));
  EXPECT_FALSE(a.has("humidity"));
  a.set("temp", 22.0);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(*a.number("temp"), 22.0);
}

TEST(AttributeSetTest, NumericCoercion) {
  AttributeSet a{{"i", std::int64_t{4}}, {"d", 2.5}, {"b", true}, {"s", std::string("x")}};
  EXPECT_DOUBLE_EQ(*a.number("i"), 4.0);
  EXPECT_DOUBLE_EQ(*a.number("d"), 2.5);
  EXPECT_DOUBLE_EQ(*a.number("b"), 1.0);
  EXPECT_FALSE(a.number("s").has_value());
  EXPECT_FALSE(a.number("missing").has_value());
}

TEST(AttributeSetTest, KeysStaySorted) {
  AttributeSet a{{"zeta", 1.0}, {"alpha", 2.0}, {"mid", 3.0}};
  std::string prev;
  for (const auto& [name, value] : a) {
    EXPECT_LT(prev, name);
    prev = name;
  }
}

TEST(RelationalOpTest, AllSix) {
  EXPECT_TRUE(eval_relational(1, RelationalOp::kLt, 2));
  EXPECT_TRUE(eval_relational(2, RelationalOp::kLe, 2));
  EXPECT_TRUE(eval_relational(3, RelationalOp::kGt, 2));
  EXPECT_TRUE(eval_relational(2, RelationalOp::kGe, 2));
  EXPECT_TRUE(eval_relational(2, RelationalOp::kEq, 2));
  EXPECT_TRUE(eval_relational(2, RelationalOp::kNe, 3));
  EXPECT_FALSE(eval_relational(2, RelationalOp::kLt, 2));
}

TEST(ValueAggregateTest, AllFive) {
  const double xs[] = {4.0, 1.0, 7.0};
  EXPECT_DOUBLE_EQ(aggregate_values(ValueAggregate::kAverage, xs, 3), 4.0);
  EXPECT_DOUBLE_EQ(aggregate_values(ValueAggregate::kMax, xs, 3), 7.0);
  EXPECT_DOUBLE_EQ(aggregate_values(ValueAggregate::kMin, xs, 3), 1.0);
  EXPECT_DOUBLE_EQ(aggregate_values(ValueAggregate::kSum, xs, 3), 12.0);
  EXPECT_DOUBLE_EQ(aggregate_values(ValueAggregate::kCount, xs, 3), 3.0);
  EXPECT_DOUBLE_EQ(aggregate_values(ValueAggregate::kCount, nullptr, 0), 0.0);
  EXPECT_THROW((void)aggregate_values(ValueAggregate::kSum, nullptr, 0), std::invalid_argument);
}

TEST(ValueAggregateTest, PaperAliasAdd) {
  // The paper names the aggregation "Add"; we parse it as kSum.
  EXPECT_EQ(value_aggregate_from_string("add"), ValueAggregate::kSum);
  EXPECT_EQ(value_aggregate_from_string("average"), ValueAggregate::kAverage);
}

// --- Ids -------------------------------------------------------------------

TEST(IdsTest, StrongTyping) {
  const EventTypeId e("S1");
  const ObserverId o("MT1");
  EXPECT_EQ(e.value(), "S1");
  EXPECT_EQ(o.value(), "MT1");
  EXPECT_EQ(e, EventTypeId("S1"));
  EXPECT_NE(e, EventTypeId("S2"));
  EXPECT_LT(EventTypeId("A"), EventTypeId("B"));
  // Must be hashable for engine maps.
  EXPECT_EQ(std::hash<EventTypeId>{}(e), std::hash<EventTypeId>{}(EventTypeId("S1")));
}

// --- Entity ----------------------------------------------------------------

PhysicalObservation make_obs(double value, TimePoint t, Point where) {
  PhysicalObservation o;
  o.mote = ObserverId("MT1");
  o.sensor = SensorId("SRtemp");
  o.seq = 1;
  o.time = t;
  o.location = Location(where);
  o.attributes.set("value", value);
  return o;
}

EventInstance make_inst(const char* event, OccurrenceTime teo, Location leo, double rho) {
  EventInstance i;
  i.key = EventInstanceKey{ObserverId("MT2"), EventTypeId(event), 0};
  i.layer = Layer::kSensor;
  i.gen_time = teo.end();
  i.gen_location = Point{0, 0};
  i.est_time = teo;
  i.est_location = std::move(leo);
  i.confidence = rho;
  return i;
}

TEST(EntityTest, ObservationView) {
  const Entity e(make_obs(20.0, TimePoint(100), {1, 2}));
  EXPECT_TRUE(e.is_observation());
  EXPECT_EQ(e.occurrence_time(), OccurrenceTime(TimePoint(100)));
  EXPECT_TRUE(e.location().is_point());
  EXPECT_DOUBLE_EQ(e.confidence(), 1.0);
  EXPECT_EQ(e.layer(), Layer::kPhysicalObservation);
  EXPECT_EQ(e.producer(), ObserverId("MT1"));
  EXPECT_EQ(e.provenance_key().event, EventTypeId("obs:SRtemp"));
}

TEST(EntityTest, InstanceView) {
  const Entity e(make_inst("S1", OccurrenceTime(TimeInterval(TimePoint(5), TimePoint(9))),
                           Location(Point{3, 4}), 0.8));
  EXPECT_TRUE(e.is_instance());
  EXPECT_TRUE(e.occurrence_time().is_interval());
  EXPECT_DOUBLE_EQ(e.confidence(), 0.8);
  EXPECT_EQ(e.producer(), ObserverId("MT2"));
  EXPECT_EQ(e.provenance_key().event, EventTypeId("S1"));
}

// --- Conditions -------------------------------------------------------------

class ConditionFixture : public ::testing::Test {
 protected:
  // Slot 0: observation value=20 at t=100, (0,0).
  // Slot 1: observation value=30 at t=200, (3,4).
  // Slot 2: interval instance [150,250], field event around (10,10), rho=0.5.
  ConditionFixture()
      : e0_(make_obs(20.0, TimePoint(100), {0, 0})),
        e1_(make_obs(30.0, TimePoint(200), {3, 4})),
        e2_(make_inst("F1", OccurrenceTime(TimeInterval(TimePoint(150), TimePoint(250))),
                      Location(Polygon::rectangle({8, 8}, {12, 12})), 0.5)) {
    slots_[0] = &e0_;
    slots_[1] = &e1_;
    slots_[2] = &e2_;
  }

  [[nodiscard]] EvalContext ctx() const { return EvalContext(slots_, 3); }

  Entity e0_, e1_, e2_;
  const Entity* slots_[3];
};

TEST_F(ConditionFixture, AttributeConditionAggregates) {
  // Average(V0, V1) > 24  =>  25 > 24.
  EXPECT_TRUE(eval_condition(
      c_attr(ValueAggregate::kAverage, "value", {0, 1}, RelationalOp::kGt, 24.0), ctx()));
  EXPECT_FALSE(eval_condition(
      c_attr(ValueAggregate::kAverage, "value", {0, 1}, RelationalOp::kGt, 26.0), ctx()));
  // Missing attribute => false.
  EXPECT_FALSE(eval_condition(
      c_attr(ValueAggregate::kMax, "humidity", {0, 1}, RelationalOp::kGt, 0.0), ctx()));
  // Slot 2 has no "value": aggregate over {0,2} is false.
  EXPECT_FALSE(eval_condition(
      c_attr(ValueAggregate::kSum, "value", {0, 2}, RelationalOp::kGt, 0.0), ctx()));
}

TEST_F(ConditionFixture, TemporalConditionEntityVsEntity) {
  // t0 (100) before t1 (200).
  EXPECT_TRUE(eval_condition(c_time(0, time_model::TemporalOp::kBefore, 1), ctx()));
  EXPECT_FALSE(eval_condition(c_time(1, time_model::TemporalOp::kBefore, 0), ctx()));
  // Paper's offset form: t0 + 50 before t1 => 150 < 200.
  EXPECT_TRUE(eval_condition(
      c_time(0, time_model::TemporalOp::kBefore, 1, Duration(50)), ctx()));
  EXPECT_FALSE(eval_condition(
      c_time(0, time_model::TemporalOp::kBefore, 1, Duration(150)), ctx()));
  // Point during interval: t1=200 during [150,250].
  EXPECT_TRUE(eval_condition(c_time(1, time_model::TemporalOp::kDuring, 2), ctx()));
}

TEST_F(ConditionFixture, TemporalConditionVsConstant) {
  EXPECT_TRUE(eval_condition(
      c_time_const(0, time_model::TemporalOp::kBefore, OccurrenceTime(TimePoint(150))), ctx()));
  EXPECT_TRUE(eval_condition(
      c_time_const(2, time_model::TemporalOp::kWithin,
                   OccurrenceTime(TimeInterval(TimePoint(100), TimePoint(300)))),
      ctx()));
}

TEST_F(ConditionFixture, TemporalAggregationOverManySlots) {
  // span(t0, t1) = [100,200]; must be within [50, 250].
  TemporalCondition c;
  c.lhs = TimeExpr{time_model::TimeAggregate::kSpan, {0, 1}, Duration::zero()};
  c.op = time_model::TemporalOp::kWithin;
  c.rhs = OccurrenceTime(TimeInterval(TimePoint(50), TimePoint(250)));
  EXPECT_TRUE(eval_condition(ConditionExpr(c), ctx()));
}

TEST_F(ConditionFixture, SpatialConditionEntityVsEntity) {
  // Point (3,4) inside field [8..12]^2? No. Centroid of field (10,10) inside itself? Yes.
  EXPECT_FALSE(eval_condition(c_space(1, geom::SpatialOp::kInside, 2), ctx()));
  EXPECT_TRUE(eval_condition(c_space(2, geom::SpatialOp::kJoint, 2), ctx()));
  EXPECT_TRUE(eval_condition(c_space(0, geom::SpatialOp::kOutside, 2), ctx()));
}

TEST_F(ConditionFixture, SpatialConditionVsConstant) {
  const Location zone(Polygon::rectangle({-1, -1}, {5, 5}));
  EXPECT_TRUE(eval_condition(c_space_const(0, geom::SpatialOp::kInside, zone), ctx()));
  EXPECT_TRUE(eval_condition(c_space_const(1, geom::SpatialOp::kInside, zone), ctx()));
  EXPECT_FALSE(eval_condition(c_space_const(2, geom::SpatialOp::kInside, zone), ctx()));
}

TEST_F(ConditionFixture, DistanceConditionMatchesPaperExampleS1) {
  // Paper S1: "x occurs before y AND distance(l_x, l_y) < 5".
  const auto s1 = c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                         c_distance(0, 1, RelationalOp::kLt, 5.0)});
  // distance((0,0),(3,4)) = 5, not < 5.
  EXPECT_FALSE(eval_condition(s1, ctx()));
  const auto s1_loose = c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                               c_distance(0, 1, RelationalOp::kLe, 5.0)});
  EXPECT_TRUE(eval_condition(s1_loose, ctx()));
}

TEST_F(ConditionFixture, DistanceToConstant) {
  EXPECT_TRUE(eval_condition(
      c_distance_const(1, Location(Point{3, 0}), RelationalOp::kEq, 4.0), ctx()));
}

TEST_F(ConditionFixture, ConfidenceCondition) {
  EXPECT_TRUE(eval_condition(
      c_confidence(ValueAggregate::kMin, {0, 1}, RelationalOp::kGe, 0.9), ctx()));
  EXPECT_FALSE(eval_condition(
      c_confidence(ValueAggregate::kMin, {0, 2}, RelationalOp::kGe, 0.9), ctx()));
  EXPECT_TRUE(eval_condition(
      c_confidence(ValueAggregate::kAverage, {0, 2}, RelationalOp::kGe, 0.7), ctx()));
}

TEST_F(ConditionFixture, LogicalComposition) {
  const auto t = c_attr(ValueAggregate::kMin, "value", {0}, RelationalOp::kGt, 0.0);   // true
  const auto f = c_attr(ValueAggregate::kMin, "value", {0}, RelationalOp::kLt, 0.0);   // false
  EXPECT_TRUE(eval_condition(c_and({t, t}), ctx()));
  EXPECT_FALSE(eval_condition(c_and({t, f}), ctx()));
  EXPECT_TRUE(eval_condition(c_or({f, t}), ctx()));
  EXPECT_FALSE(eval_condition(c_or({f, f}), ctx()));
  EXPECT_TRUE(eval_condition(c_not(f), ctx()));
  EXPECT_FALSE(eval_condition(c_not(t), ctx()));
  // Nested: (t AND NOT(f)) OR f.
  EXPECT_TRUE(eval_condition(c_or({c_and({t, c_not(f)}), f}), ctx()));
}

TEST_F(ConditionFixture, DeMorganHoldsOnRandomizedLeaves) {
  // NOT(a AND b) == NOT(a) OR NOT(b) for all 4 leaf truth combinations.
  const auto leaf = [&](bool v) {
    return c_attr(ValueAggregate::kMin, "value", {0},
                  v ? RelationalOp::kGt : RelationalOp::kLt, 0.0);
  };
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const bool lhs = eval_condition(c_not(c_and({leaf(a), leaf(b)})), ctx());
      const bool rhs = eval_condition(c_or({c_not(leaf(a)), c_not(leaf(b))}), ctx());
      EXPECT_EQ(lhs, rhs) << a << "," << b;
    }
  }
}

TEST_F(ConditionFixture, EagerAndShortCircuitAgree) {
  const auto t = c_attr(ValueAggregate::kMin, "value", {0}, RelationalOp::kGt, 0.0);
  const auto f = c_attr(ValueAggregate::kMin, "value", {0}, RelationalOp::kLt, 0.0);
  const std::vector<ConditionExpr> exprs = {
      c_and({t, f, t}), c_or({f, f, t}), c_not(c_or({t, f})),
      c_and({c_or({f, t}), c_not(f), c_distance(0, 1, RelationalOp::kLe, 5.0)})};
  for (const auto& e : exprs) {
    EXPECT_EQ(eval_condition(e, ctx(), EvalMode::kShortCircuit),
              eval_condition(e, ctx(), EvalMode::kEager));
  }
}

TEST_F(ConditionFixture, TreeIntrospection) {
  const auto t = c_attr(ValueAggregate::kMin, "value", {0}, RelationalOp::kGt, 0.0);
  const auto tree = c_and({t, c_or({t, c_not(t)}), c_distance(0, 2, RelationalOp::kLt, 1.0)});
  EXPECT_EQ(tree.leaf_count(), 4u);
  EXPECT_EQ(tree.depth(), 4u);  // and -> or -> not -> leaf
  ASSERT_TRUE(tree.max_slot().has_value());
  EXPECT_EQ(*tree.max_slot(), 2u);
  EXPECT_EQ(t.depth(), 1u);
  EXPECT_EQ(t.leaf_count(), 1u);
}

TEST_F(ConditionFixture, PrintedFormMentionsStructure) {
  const auto tree =
      c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
             c_distance(0, 1, RelationalOp::kLt, 5.0)});
  std::ostringstream os;
  os << tree;
  const std::string s = os.str();
  EXPECT_NE(s.find("(and"), std::string::npos);
  EXPECT_NE(s.find("before"), std::string::npos);
  EXPECT_NE(s.find("distance"), std::string::npos);
}

// --- SlotFilter --------------------------------------------------------------

TEST(SlotFilterTest, MatchesByKind) {
  const Entity obs(make_obs(1.0, TimePoint(0), {0, 0}));
  const Entity inst(make_inst("S1", OccurrenceTime(TimePoint(0)), Location(Point{0, 0}), 1.0));

  EXPECT_TRUE(SlotFilter::any().matches(obs));
  EXPECT_TRUE(SlotFilter::any().matches(inst));

  EXPECT_TRUE(SlotFilter::observation(SensorId("SRtemp")).matches(obs));
  EXPECT_FALSE(SlotFilter::observation(SensorId("SRlight")).matches(obs));
  EXPECT_FALSE(SlotFilter::observation(SensorId("SRtemp")).matches(inst));

  EXPECT_TRUE(SlotFilter::instance_of(EventTypeId("S1")).matches(inst));
  EXPECT_FALSE(SlotFilter::instance_of(EventTypeId("S2")).matches(inst));
  EXPECT_FALSE(SlotFilter::instance_of(EventTypeId("S1")).matches(obs));
}

TEST(SlotFilterTest, ProducerAndLayerConstraints) {
  const Entity obs(make_obs(1.0, TimePoint(0), {0, 0}));
  EXPECT_TRUE(SlotFilter::observation(SensorId("SRtemp")).from(ObserverId("MT1")).matches(obs));
  EXPECT_FALSE(SlotFilter::observation(SensorId("SRtemp")).from(ObserverId("MT9")).matches(obs));
  EXPECT_TRUE(SlotFilter::any().on_layer(Layer::kPhysicalObservation).matches(obs));
  EXPECT_FALSE(SlotFilter::any().on_layer(Layer::kCyber).matches(obs));
}

TEST(EventDefinitionTest, SlotIndexLookup) {
  EventDefinition def{EventTypeId("S1"),
                      {{"x", SlotFilter::any()}, {"y", SlotFilter::any()}},
                      c_time(0, time_model::TemporalOp::kBefore, 1),
                      time_model::seconds(10),
                      {},
                      ConsumptionMode::kConsume};
  EXPECT_EQ(def.slot_index("x"), 0u);
  EXPECT_EQ(def.slot_index("y"), 1u);
  EXPECT_THROW((void)def.slot_index("z"), std::out_of_range);
}

}  // namespace
}  // namespace stem::core
