#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace stem::sim {
namespace {

using time_model::Duration;
using time_model::TimePoint;

TEST(SimulatorTest, RunsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(TimePoint(30), [&] { order.push_back(3); });
  s.schedule_at(TimePoint(10), [&] { order.push_back(1); });
  s.schedule_at(TimePoint(20), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), TimePoint(30));
}

TEST(SimulatorTest, FifoAmongSimultaneousEvents) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(TimePoint(10), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  TimePoint seen_at = TimePoint::epoch();
  s.schedule_at(TimePoint(100), [&] {
    s.schedule_after(Duration(50), [&] { seen_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen_at, TimePoint(150));
}

TEST(SimulatorTest, RejectsPastSchedule) {
  Simulator s;
  s.schedule_at(TimePoint(100), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(TimePoint(50), [] {}), std::invalid_argument);
  // Negative delay clamps to "now" instead of throwing.
  bool ran = false;
  s.schedule_after(Duration(-5), [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const TaskId id = s.schedule_at(TimePoint(10), [&] { ran = true; });
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double-cancel reports failure
  EXPECT_EQ(s.pending(), 0u);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(TimePoint(i * 10), [&] { ++count; });
  }
  EXPECT_EQ(s.run_until(TimePoint(55)), 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), TimePoint(55));
  EXPECT_EQ(s.run_until(TimePoint(1000)), 5u);
  EXPECT_EQ(s.now(), TimePoint(1000));  // clock advances to deadline
}

TEST(SimulatorTest, CallbackCanScheduleAndCancel) {
  Simulator s;
  bool victim_ran = false;
  const TaskId victim = s.schedule_at(TimePoint(20), [&] { victim_ran = true; });
  s.schedule_at(TimePoint(10), [&] { s.cancel(victim); });
  s.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkIndependentOfParentConsumption) {
  // fork() must depend only on (state, label), so two identically-seeded
  // parents produce identical children.
  Rng a(7), b(7);
  Rng ca = a.fork("radio"), cb = b.fork("radio");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
  Rng other = a.fork("noise");
  // Different labels should diverge immediately (overwhelmingly likely).
  EXPECT_NE(a.fork("radio").next_u64(), other.next_u64());
}

TEST(RngTest, UniformBounds) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto k = rng.uniform_int(-3, 3);
    EXPECT_GE(k, -3);
    EXPECT_LE(k, 3);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanAndChance) {
  Rng rng(6);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.25, 0.01);
}

TEST(SummaryTest, WelfordMatchesClosedForm) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, MergeEqualsCombinedStream) {
  Rng rng(11);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(SummaryTest, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  Summary t;
  t.merge(s);
  EXPECT_EQ(t.count(), 0u);
}

TEST(PercentilesTest, ExactNearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(p.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(p.median(), 50.0);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  const Percentiles p;
  EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
}

TEST(PercentilesTest, AddAfterQueryResorts) {
  Percentiles p;
  p.add(10);
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
  p.add(0);
  p.add(1);
  EXPECT_DOUBLE_EQ(p.median(), 1.0);
}

}  // namespace
}  // namespace stem::sim
