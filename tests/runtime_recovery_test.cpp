#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/checkpoint.hpp"
#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

/// Crash-recovery differential suite: with epoch-barrier checkpoints on
/// and a seeded crash hook killing shard workers mid-stream, the
/// supervisor must reincarnate each dead shard from its last checkpoint
/// plus the bounded replay log, and the runtime's merged instance stream
/// must stay *byte-identical* to a sequential DetectionEngine fed the
/// same arrivals — no lost, duplicated, or reordered instances, exact
/// final counters. Mirrors tests/runtime_shard_test.cpp with the
/// sequential engine as the reference oracle.

namespace stem::runtime {
namespace {

using core::ConsumptionMode;
using core::DetectionEngine;
using core::EventDefinition;
using core::EventInstance;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

core::PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq,
                              TimePoint t, Point p, double value) {
  core::PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = geom::Location(p);
  o.attributes.set("value", value);
  return o;
}

/// Same stressing mix as the shard suite: keyed thresholds, joins, a
/// shared event type (co-location), wildcards (full-stream shards), so
/// recovery has to reconstruct partial-match buffers, per-type sequence
/// counters, and prune clocks — not just empty engines.
std::vector<EventDefinition> recovery_definitions(ConsumptionMode mode, const std::string& tag) {
  std::vector<EventDefinition> defs;
  EventDefinition hot{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      mode};
  hot.synthesis.attributes.push_back(
      core::AttributeRule{"value", core::ValueAggregate::kMax, "value", {0}});
  defs.push_back(hot);
  defs.push_back(EventDefinition{EventTypeId("HOT_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 40.0),
                                 seconds(60),
                                 {},
                                 mode});
  defs.push_back(EventDefinition{EventTypeId("NEAR_" + tag),
                                 {{"a", SlotFilter::observation(SensorId("SRa"))},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                              core::c_distance(0, 1, core::RelationalOp::kLt, 8.0)}),
                                 seconds(4),
                                 {},
                                 mode});
  defs.push_back(EventDefinition{EventTypeId("PAIR_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRc"))},
                                  {"y", SlotFilter::observation(SensorId("SRc"))}},
                                 core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                              core::c_distance(0, 1, core::RelationalOp::kLt, 12.0)}),
                                 seconds(5),
                                 {},
                                 mode});
  defs.push_back(EventDefinition{EventTypeId("WILD_" + tag),
                                 {{"w", SlotFilter::any()}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 85.0),
                                 seconds(60),
                                 {},
                                 mode});
  return defs;
}

struct Stream {
  std::vector<core::Entity> entities;
  std::vector<TimePoint> nows;
};

Stream make_stream(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  const char* sensors[] = {"SRa", "SRb", "SRc", "SRd"};
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(100 + rng.uniform_int(0, 900));
    const auto* sensor = sensors[rng.uniform_int(0, 3)];
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 1500));
    s.entities.push_back(core::Entity(obs(static_cast<int>(rng.uniform_int(1, 4)), sensor,
                                          static_cast<std::uint64_t>(i), t,
                                          {rng.uniform(0, 24), rng.uniform(0, 24)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

/// A crash schedule: the hook kills whichever worker makes the Nth
/// work-item poll, for a fixed set of Ns. The *choice* of victim shard is
/// scheduling-dependent — deliberately so: the exactness oracle must hold
/// for every interleaving, and varying the victim across runs widens the
/// coverage for free. Recovered workers resume polling, so later
/// thresholds kill post-recovery incarnations too.
struct CrashSchedule {
  std::vector<std::uint64_t> at;
  std::shared_ptr<std::atomic<std::uint64_t>> polls =
      std::make_shared<std::atomic<std::uint64_t>>(0);

  std::function<bool(std::size_t)> hook() const {
    auto counter = polls;
    auto thresholds = at;
    return [counter, thresholds](std::size_t) {
      const std::uint64_t n = counter->fetch_add(1, std::memory_order_relaxed) + 1;
      for (const std::uint64_t t : thresholds) {
        if (n == t) return true;
      }
      return false;
    };
  }
};

void run_crash_differential(std::uint64_t seed, std::size_t shards, std::size_t batch_size,
                            ConsumptionMode mode, const std::string& tag,
                            std::vector<std::uint64_t> crash_at,
                            std::size_t checkpoint_epoch = 24,
                            std::size_t queue_capacity = 4096, bool migrate = false) {
  CrashSchedule schedule{std::move(crash_at)};
  RuntimeOptions options;
  options.shards = shards;
  options.queue_capacity = queue_capacity;
  options.checkpoint_epoch = checkpoint_epoch;
  options.crash_hook = schedule.hook();
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  for (const EventDefinition& def : recovery_definitions(mode, tag)) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  const Stream stream = make_stream(seed, 320);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst : sequential.observe(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }

  std::vector<std::string> got;
  const auto collect = [&](std::vector<EventInstance> instances) {
    for (const EventInstance& inst : instances) got.push_back(describe(inst));
  };
  std::size_t batches = 0;
  for (std::size_t i = 0; i < stream.entities.size(); i += batch_size) {
    const std::size_t n = std::min(batch_size, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
    collect(sharded.poll());
    if (migrate && ++batches % 5 == 0) {
      // Bounce a definition between shards while crashes are in flight:
      // migration control items ride the same logged inbox protocol, so
      // recovery must replay half-completed hand-offs too.
      sharded.migrate_definition(2, batches / 5 % shards);
    }
  }
  collect(sharded.flush());

  const std::string ctx = tag + " seed=" + std::to_string(seed) +
                          " shards=" + std::to_string(shards) +
                          " batch=" + std::to_string(batch_size);
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k], want[k]) << ctx << " instance " << k;
  }

  // Reaping is asynchronous: a worker that dies on a checkpoint control
  // item at the very tail holds no queued arrivals, so flush() can reach
  // quiescence before the supervisor has counted the death. The stream is
  // already proven exact above; give the supervisor a bounded moment to
  // finish the bookkeeping.
  // recoveries lags crashes by the reincarnation itself, so wait for both.
  RuntimeStats stats = sharded.stats();
  for (int spin = 0; spin < 2000 && (stats.crashes < schedule.at.size() ||
                                     stats.recoveries < stats.crashes);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = sharded.stats();
  }
  EXPECT_EQ(stats.instances, want.size()) << ctx;
  EXPECT_EQ(stats.engine.instances_out, stats.instances) << ctx;
  EXPECT_EQ(stats.arrivals + stats.dropped, stream.entities.size()) << ctx;
  if (checkpoint_epoch <= stream.entities.size()) {
    EXPECT_GT(stats.checkpoints, 0u) << ctx;
  }
  EXPECT_EQ(stats.crashes, schedule.at.size())
      << ctx << " polls=" << schedule.polls->load();
  EXPECT_EQ(stats.recoveries, stats.crashes) << ctx;
}

class CrashRecoveryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashRecoveryTest, StreamsMatchAcrossShardCountsAndModes) {
  for (const std::size_t shards : {2u, 4u}) {
    run_crash_differential(GetParam(), shards, 1, ConsumptionMode::kConsume, "C", {13, 41});
    run_crash_differential(GetParam() ^ 0x5eedULL, shards, 16, ConsumptionMode::kUnrestricted,
                           "U", {13, 41});
  }
}

TEST_P(CrashRecoveryTest, BackToBackCrashesOnTinyEpoch) {
  // checkpoint_epoch=4 maximises barrier traffic; five crash points land
  // in distinct epochs and often re-kill a freshly recovered shard.
  run_crash_differential(GetParam() ^ 0xdeadULL, 4, 1, ConsumptionMode::kConsume, "B",
                         {7, 19, 37, 61, 89}, 4);
}

TEST_P(CrashRecoveryTest, CrashBeforeFirstCheckpoint) {
  // A crash before any checkpoint exists must rebuild from the initial
  // definitions and replay the whole log.
  run_crash_differential(GetParam() ^ 0xf00dULL, 2, 1, ConsumptionMode::kConsume, "F", {2},
                         100000);
}

TEST_P(CrashRecoveryTest, CrashUnderTightBackpressure) {
  // An 8-arrival inbox keeps producers parked on the ring the crash
  // abandons; recovery's replay must drain it without deadlock.
  run_crash_differential(GetParam() ^ 0xbacULL, 4, 16, ConsumptionMode::kUnrestricted, "Q",
                         {11, 29}, 16, 8);
}

TEST_P(CrashRecoveryTest, CrashesInterleavedWithMigrations) {
  run_crash_differential(GetParam() ^ 0x316ULL, 4, 8, ConsumptionMode::kConsume, "M", {17, 43},
                         24, 4096, /*migrate=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryTest, ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(CrashRecovery, NoCrashesStillCheckpointsExactly) {
  // checkpointing alone (no crash hook) must not perturb the stream.
  RuntimeOptions options;
  options.shards = 4;
  options.checkpoint_epoch = 16;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  for (const EventDefinition& def : recovery_definitions(ConsumptionMode::kConsume, "N")) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }
  const Stream stream = make_stream(77, 200);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst : sequential.observe(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }
  sharded.ingest_batch(std::span(stream.entities), std::span(stream.nows));
  std::vector<std::string> got;
  for (const EventInstance& inst : sharded.flush()) got.push_back(describe(inst));
  ASSERT_EQ(got, want);
  // flush() waits on the arrival watermark only; the trailing checkpoint
  // control item may still be in the inbox. Give the workers a bounded
  // moment to consume it.
  RuntimeStats stats = sharded.stats();
  for (int spin = 0; spin < 2000 && stats.checkpoints == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = sharded.stats();
  }
  EXPECT_GT(stats.checkpoints, 0u);
  EXPECT_EQ(stats.crashes, 0u);
  EXPECT_EQ(stats.recoveries, 0u);
  EXPECT_EQ(stats.replayed, 0u);
}

TEST(CrashRecovery, CrashHookWithoutCheckpointEpochThrows) {
  RuntimeOptions options;
  options.crash_hook = [](std::size_t) { return false; };
  EXPECT_THROW(ShardedEngineRuntime(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options),
               std::invalid_argument);
}

TEST(CrashRecovery, CheckpointWithCascadeThrows) {
  RuntimeOptions options;
  options.cascade = true;
  options.checkpoint_epoch = 8;
  EXPECT_THROW(ShardedEngineRuntime(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options),
               std::invalid_argument);
}

// --- Checkpoint frame codec ---

core::DefinitionState populated_state() {
  DetectionEngine engine(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  // A two-slot join that buffers partial matches (never completes within
  // the fed stream), so the snapshot carries non-empty slot buffers.
  engine.add_definition(EventDefinition{
      EventTypeId("J"),
      {{"a", SlotFilter::observation(SensorId("SRa"))},
       {"b", SlotFilter::observation(SensorId("SRb"))}},
      core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                   core::c_distance(0, 1, core::RelationalOp::kLt, 0.001)}),
      seconds(600),
      {},
      ConsumptionMode::kConsume});
  TimePoint now = TimePoint::epoch();
  for (int i = 0; i < 6; ++i) {
    now += seconds(1);
    engine.observe(core::Entity(obs(i, i % 2 == 0 ? "SRa" : "SRb",
                                    static_cast<std::uint64_t>(i), now,
                                    {static_cast<double>(i) * 10.0, 0.0}, 50.0 + i)),
                   now);
  }
  return engine.snapshot_definition_state(0);
}

TEST(CheckpointCodec, RoundTripIsAFixedPoint) {
  const core::DefinitionState state = populated_state();
  ASSERT_FALSE(state.buffers.empty());
  std::size_t buffered = 0;
  for (const auto& slot : state.buffers) buffered += slot.size();
  ASSERT_GT(buffered, 0u) << "snapshot must carry partial matches for the test to mean anything";

  const std::string frame = encode_definition_state(state);
  std::optional<core::DefinitionState> decoded = decode_definition_state(frame, state.def);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, state.seq);
  EXPECT_EQ(decoded->next_prune_at, state.next_prune_at);
  EXPECT_EQ(decoded->load_routed, state.load_routed);
  EXPECT_EQ(decoded->load_tried, state.load_tried);
  ASSERT_EQ(decoded->buffers.size(), state.buffers.size());
  // encode(decode(encode(x))) == encode(x): the codec is a fixed point.
  EXPECT_EQ(encode_definition_state(*decoded), frame);
}

TEST(CheckpointCodec, FreshStateWithMaxPruneClockRoundTrips) {
  DetectionEngine engine(ObserverId("OB"), core::Layer::kCyber, {0, 0});
  engine.add_definition(EventDefinition{
      EventTypeId("F"),
      {{"x", SlotFilter::observation(SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
      seconds(60),
      {},
      ConsumptionMode::kConsume});
  const core::DefinitionState state = engine.snapshot_definition_state(0);
  EXPECT_EQ(state.next_prune_at, TimePoint::max());
  const std::string frame = encode_definition_state(state);
  std::optional<core::DefinitionState> decoded = decode_definition_state(frame, state.def);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->next_prune_at, TimePoint::max());
  EXPECT_EQ(encode_definition_state(*decoded), frame);
}

TEST(CheckpointCodec, EveryTruncationIsRejectedCleanly) {
  const core::DefinitionState state = populated_state();
  const std::string frame = encode_definition_state(state);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(decode_definition_state(std::string_view(frame).substr(0, len), state.def)
                     .has_value())
        << "prefix of length " << len << " decoded";
  }
}

TEST(CheckpointCodec, MalformedFramesAreRejectedCleanly) {
  const core::DefinitionState state = populated_state();
  const std::string frame = encode_definition_state(state);
  const std::string mutants[] = {
      "garbage",
      "state x 0 0 0 0\n",
      "state 1 0 0 0 -3\n",
      "state 1 0 0 0 999999999\n",
      frame + "trailing",
      std::string("STATE") + frame.substr(5),
  };
  for (const std::string& m : mutants) {
    EXPECT_FALSE(decode_definition_state(m, state.def).has_value()) << m.substr(0, 40);
  }
  // Flip one byte at a time across the whole frame: decode must return
  // nullopt or a value — never crash or read out of bounds (ASan/UBSan
  // legs in CI back this up).
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string flipped = frame;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x20);
    (void)decode_definition_state(flipped, state.def);
  }
}

}  // namespace
}  // namespace stem::runtime
