#include <gtest/gtest.h>

#include "geom/location.hpp"
#include "sim/random.hpp"
#include "time/temporal_op.hpp"

namespace stem {
namespace {

using geom::Location;
using geom::Point;
using geom::Polygon;
using geom::SpatialOp;
using time_model::OccurrenceTime;
using time_model::TemporalOp;
using time_model::TimeInterval;
using time_model::TimePoint;

/// Algebraic properties of the temporal and spatial operators, swept over
/// randomized occurrence times and locations. These laws are what make the
/// paper's "formal temporal and spatial analysis" (Sec. 1) sound: if any
/// failed, composite condition rewriting would be unsafe.

class RelationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

OccurrenceTime random_time(sim::Rng& rng) {
  const auto a = rng.uniform_int(0, 1000);
  if (rng.chance(0.4)) return OccurrenceTime(TimePoint(a));
  return OccurrenceTime(TimeInterval(TimePoint(a), TimePoint(a + rng.uniform_int(0, 200))));
}

Location random_location(sim::Rng& rng) {
  const Point c{rng.uniform(0, 100), rng.uniform(0, 100)};
  if (rng.chance(0.4)) return Location(c);
  if (rng.chance(0.5)) return Location(Polygon::disk(c, rng.uniform(2, 20), 12));
  return Location(Polygon::rectangle(c, {c.x + rng.uniform(2, 25), c.y + rng.uniform(2, 25)}));
}

TEST_P(RelationPropertyTest, TemporalDuality) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const OccurrenceTime a = random_time(rng);
    const OccurrenceTime b = random_time(rng);
    // before/after and during/contains are converses.
    EXPECT_EQ(eval_temporal(a, TemporalOp::kBefore, b), eval_temporal(b, TemporalOp::kAfter, a));
    EXPECT_EQ(eval_temporal(a, TemporalOp::kDuring, b),
              eval_temporal(b, TemporalOp::kContains, a));
    EXPECT_EQ(eval_temporal(a, TemporalOp::kMeets, b), eval_temporal(b, TemporalOp::kMetBy, a));
    EXPECT_EQ(eval_temporal(a, TemporalOp::kOverlaps, b),
              eval_temporal(b, TemporalOp::kOverlappedBy, a));
    // equals and intersects are symmetric.
    EXPECT_EQ(eval_temporal(a, TemporalOp::kEquals, b), eval_temporal(b, TemporalOp::kEquals, a));
    EXPECT_EQ(eval_temporal(a, TemporalOp::kIntersects, b),
              eval_temporal(b, TemporalOp::kIntersects, a));
    // during implies within implies intersects.
    if (eval_temporal(a, TemporalOp::kDuring, b)) {
      EXPECT_TRUE(eval_temporal(a, TemporalOp::kWithin, b));
    }
    if (eval_temporal(a, TemporalOp::kWithin, b)) {
      EXPECT_TRUE(eval_temporal(a, TemporalOp::kIntersects, b));
    }
    // before excludes intersects.
    if (eval_temporal(a, TemporalOp::kBefore, b)) {
      EXPECT_FALSE(eval_temporal(a, TemporalOp::kIntersects, b));
    }
  }
}

TEST_P(RelationPropertyTest, TemporalTransitivity) {
  sim::Rng rng(GetParam() ^ 0x1111ULL);
  for (int i = 0; i < 300; ++i) {
    const OccurrenceTime a = random_time(rng);
    const OccurrenceTime b = random_time(rng);
    const OccurrenceTime c = random_time(rng);
    if (eval_temporal(a, TemporalOp::kBefore, b) && eval_temporal(b, TemporalOp::kBefore, c)) {
      EXPECT_TRUE(eval_temporal(a, TemporalOp::kBefore, c));
    }
    if (eval_temporal(a, TemporalOp::kWithin, b) && eval_temporal(b, TemporalOp::kWithin, c)) {
      EXPECT_TRUE(eval_temporal(a, TemporalOp::kWithin, c));
    }
  }
}

TEST_P(RelationPropertyTest, SpatialDuality) {
  sim::Rng rng(GetParam() ^ 0x2222ULL);
  for (int i = 0; i < 300; ++i) {
    const Location a = random_location(rng);
    const Location b = random_location(rng);
    // joint symmetric; outside is its negation.
    EXPECT_EQ(eval_spatial(a, SpatialOp::kJoint, b), eval_spatial(b, SpatialOp::kJoint, a));
    EXPECT_NE(eval_spatial(a, SpatialOp::kJoint, b), eval_spatial(a, SpatialOp::kOutside, b));
    EXPECT_EQ(eval_spatial(a, SpatialOp::kOutside, b),
              eval_spatial(a, SpatialOp::kDisjoint, b));
    // inside/contains are converses.
    EXPECT_EQ(eval_spatial(a, SpatialOp::kInside, b), eval_spatial(b, SpatialOp::kContains, a));
    // inside implies joint.
    if (eval_spatial(a, SpatialOp::kInside, b)) {
      EXPECT_TRUE(eval_spatial(a, SpatialOp::kJoint, b));
    }
    // equal implies mutual inside.
    if (eval_spatial(a, SpatialOp::kEqual, b)) {
      EXPECT_TRUE(eval_spatial(a, SpatialOp::kInside, b));
      EXPECT_TRUE(eval_spatial(b, SpatialOp::kInside, a));
    }
    // distance consistency: joint iff distance 0 (within tolerance).
    const double d = location_distance(a, b);
    if (eval_spatial(a, SpatialOp::kJoint, b)) {
      EXPECT_LE(d, 1e-9);
    } else {
      EXPECT_GT(d, 0.0);
    }
  }
}

TEST_P(RelationPropertyTest, SpatialReflexivity) {
  sim::Rng rng(GetParam() ^ 0x3333ULL);
  for (int i = 0; i < 200; ++i) {
    const Location a = random_location(rng);
    EXPECT_TRUE(eval_spatial(a, SpatialOp::kEqual, a));
    EXPECT_TRUE(eval_spatial(a, SpatialOp::kInside, a));
    EXPECT_TRUE(eval_spatial(a, SpatialOp::kJoint, a));
    EXPECT_FALSE(eval_spatial(a, SpatialOp::kOutside, a));
    EXPECT_DOUBLE_EQ(location_distance(a, a), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationPropertyTest, ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace stem
