#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ordering_oracle.hpp"
#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

/// Permutation-differential *ordering tier* suite (see ordering_oracle.hpp
/// for the oracle). Every tier is run against the same sequential
/// reference across shard counts {2, 4, 8} x ingest batch sizes {1, 64} x
/// skew profiles {uniform, 90/10} x seeds:
///
///  - global_total_order must stay byte-identical (it is the default the
///    whole pre-existing differential tier already pins; here the tagged
///    stream re-checks it with stamps attached);
///  - per_definition_order must keep every definition's emissions in
///    reference order — including across forced mid-stream migrations,
///    which exercise the release-hold fencing;
///  - unordered_watermarked must deliver exactly the reference multiset
///    and maintain a sound, monotone low watermark (checked incrementally
///    at every poll, in every tier).
///
/// A cascade leg runs depth {1, 2} x every tier: cascade releases whole
/// closures in stamp order regardless of tier, and the closure counters
/// must equal the sequential engine's.

namespace stem::runtime {
namespace {

using core::ConsumptionMode;
using core::DetectionEngine;
using core::EventDefinition;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using geom::Location;
using geom::Point;
using oracle::Ref;
using oracle::WatermarkAudit;
using time_model::seconds;
using time_model::TimePoint;

core::PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq,
                              TimePoint t, Point p, double value) {
  core::PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

/// Join condition shared by the two-slot definitions below: slot 0
/// strictly before slot 1, within `dist` meters.
core::ConditionExpr before_within(double dist) {
  return core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                      core::c_distance(0, 1, core::RelationalOp::kLt, dist)});
}

/// The migration suite's definition mix: keyed thresholds, joins, a
/// co-located same-type pair (one group spanning SRa and SRb — the
/// splittable kind), a wildcard definition (=> no arrival is ever
/// dropped, so stamps are dense and equal the 1-based arrival index) and
/// a wildcard join.
std::vector<EventDefinition> ordering_definitions(ConsumptionMode mode, const std::string& tag) {
  std::vector<EventDefinition> defs;

  EventDefinition hot{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      mode};
  hot.synthesis.attributes.push_back(
      core::AttributeRule{"value", core::ValueAggregate::kMax, "value", {0}});
  defs.push_back(hot);

  // Same event type as HOT: one co-located, key-range-splittable group.
  defs.push_back(EventDefinition{EventTypeId("HOT_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRb"))}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 40.0),
                                 seconds(60),
                                 {},
                                 mode});

  defs.push_back(EventDefinition{EventTypeId("NEAR_" + tag),
                                 {{"a", SlotFilter::observation(SensorId("SRa"))},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 before_within(8.0),
                                 seconds(4),
                                 {},
                                 mode});

  defs.push_back(EventDefinition{EventTypeId("PAIR_" + tag),
                                 {{"x", SlotFilter::observation(SensorId("SRc"))},
                                  {"y", SlotFilter::observation(SensorId("SRc"))}},
                                 before_within(12.0),
                                 seconds(5),
                                 {},
                                 mode});

  defs.push_back(EventDefinition{EventTypeId("WILD_" + tag),
                                 {{"w", SlotFilter::any()}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 85.0),
                                 seconds(60),
                                 {},
                                 mode});

  defs.push_back(EventDefinition{EventTypeId("WNEAR_" + tag),
                                 {{"w", SlotFilter::any()},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 before_within(6.0),
                                 seconds(3),
                                 {},
                                 mode});

  return defs;
}

struct Stream {
  std::vector<core::Entity> entities;
  std::vector<TimePoint> nows;
};

/// skew_hot = 0: uniform over 4 sensors. Otherwise the probability that an
/// arrival comes from the hot sensor SRa (e.g. 0.9 for 90/10).
Stream make_stream(std::uint64_t seed, int n, double skew_hot) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  const char* sensors[] = {"SRa", "SRb", "SRc", "SRd"};
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(100 + rng.uniform_int(0, 900));
    const char* sensor;
    if (skew_hot > 0.0 && rng.chance(skew_hot)) {
      sensor = sensors[0];
    } else {
      sensor = sensors[rng.uniform_int(0, 3)];
    }
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 1500));
    s.entities.push_back(core::Entity(obs(static_cast<int>(rng.uniform_int(1, 4)), sensor,
                                          static_cast<std::uint64_t>(i), t,
                                          {rng.uniform(0, 24), rng.uniform(0, 24)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

std::string tier_name(OrderingTier tier) {
  switch (tier) {
    case OrderingTier::kGlobalTotalOrder:
      return "global";
    case OrderingTier::kPerDefinitionOrder:
      return "perdef";
    case OrderingTier::kUnorderedWatermarked:
      return "unordered";
  }
  return "?";
}

constexpr OrderingTier kAllTiers[] = {OrderingTier::kGlobalTotalOrder,
                                      OrderingTier::kPerDefinitionOrder,
                                      OrderingTier::kUnorderedWatermarked};

/// Feeds one stream through a sharded runtime under `tier`, auditing the
/// watermark at every poll, and applies the tier's oracle check against
/// the sequential reference. `migrations` > 0 forces that many
/// whole-group moves at seed-derived batch boundaries (in the
/// per-definition tier these exercise the release-hold fencing).
void run_ordering_differential(std::uint64_t seed, std::size_t shards, std::size_t batch_size,
                               ConsumptionMode mode, double skew_hot, OrderingTier tier,
                               const std::string& tag, std::size_t migrations = 0) {
  RuntimeOptions options;
  options.shards = shards;
  options.ordering = tier;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  for (const EventDefinition& def : ordering_definitions(mode, tag)) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  const Stream stream = make_stream(seed, 320, skew_hot);
  const std::vector<Ref> want = oracle::sequential_reference(
      sequential, stream.entities, stream.nows, /*cascade=*/false, /*canonicalize_seq=*/false);

  sim::Rng plan(seed ^ 0x9e3779b97f4a7c15ULL);
  const auto last_batch = static_cast<std::int64_t>((stream.entities.size() - 1) / batch_size);
  std::vector<std::size_t> at(migrations);
  for (std::size_t m = 0; m < migrations; ++m) {
    at[m] = static_cast<std::size_t>(plan.uniform_int(1, last_batch)) * batch_size;
  }
  std::sort(at.begin(), at.end());
  std::size_t next_mig = 0;
  std::uint64_t issued = 0;

  const std::string ctx = tag + "/" + tier_name(tier) + " seed=" + std::to_string(seed) +
                          " shards=" + std::to_string(shards) +
                          " batch=" + std::to_string(batch_size) +
                          " skew=" + std::to_string(skew_hot);
  WatermarkAudit audit(ctx);
  std::vector<TaggedInstance> got_tagged;
  const auto collect = [&](std::vector<TaggedInstance> released) {
    audit.observe(released);
    audit.after_poll(sharded.low_watermark());
    got_tagged.insert(got_tagged.end(), std::make_move_iterator(released.begin()),
                      std::make_move_iterator(released.end()));
  };
  for (std::size_t i = 0; i < stream.entities.size(); i += batch_size) {
    while (next_mig < at.size() && at[next_mig] <= i) {
      const auto def = static_cast<std::size_t>(
          plan.uniform_int(0, static_cast<std::int64_t>(sharded.definition_count()) - 1));
      const auto to = static_cast<std::size_t>(
          plan.uniform_int(0, static_cast<std::int64_t>(shards) - 1));
      if (!sharded.migrate_definition(def, to)) {
        ASSERT_TRUE(sharded.migrate_definition(def, (to + 1) % shards)) << ctx;
      }
      ++issued;
      ++next_mig;
    }
    const std::size_t n = std::min(batch_size, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
    collect(sharded.poll_tagged());
  }
  collect(sharded.flush_tagged());

  const RuntimeStats stats = sharded.stats();
  // The wildcard definition routes every arrival, so stamps are dense and
  // the final watermark covers the whole stream.
  ASSERT_EQ(stats.arrivals, stream.entities.size()) << ctx;
  audit.at_quiescence(sharded.low_watermark(), stats.arrivals);

  const std::vector<Ref> got = oracle::to_refs(got_tagged, /*canonicalize_seq=*/false);
  switch (tier) {
    case OrderingTier::kGlobalTotalOrder:
      oracle::check_equal(got, want, ctx);
      break;
    case OrderingTier::kPerDefinitionOrder:
      oracle::check_per_def(got, want, ctx);
      break;
    case OrderingTier::kUnorderedWatermarked:
      oracle::check_multiset(got, want, ctx);
      break;
  }
  // Engine-seq monotonicity per definition is part of the global and
  // per-definition contracts; the unordered tier only promises the
  // multiset plus the watermark (a migration can release a definition's
  // post-barrier chunk before the source drains).
  if (tier != OrderingTier::kUnorderedWatermarked) {
    oracle::check_per_def_seq_monotone(got, ctx);
  }

  EXPECT_EQ(stats.instances, want.size()) << ctx;
  EXPECT_EQ(stats.engine.instances_out, stats.instances) << ctx;
  EXPECT_EQ(stats.migrations, issued) << ctx;
}

class OrderingTierTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingTierTest, EveryTierMatchesItsContractOnStaticPlacement) {
  for (const OrderingTier tier : kAllTiers) {
    for (const std::size_t shards : {2u, 4u, 8u}) {
      for (const std::size_t batch : {1u, 64u}) {
        run_ordering_differential(GetParam(), shards, batch, ConsumptionMode::kUnrestricted,
                                  0.0, tier, "OU");
        run_ordering_differential(GetParam() ^ 0x5eedULL, shards, batch,
                                  ConsumptionMode::kConsume, 0.9, tier, "OS");
      }
    }
  }
}

TEST_P(OrderingTierTest, RelaxedTiersSurviveForcedMigrations) {
  // Mid-stream whole-group migrations: in the per-definition tier each
  // one plants a release hold that fences the destination's post-barrier
  // chunks behind the source's drain — the per-definition projections
  // must stay in reference order through every hand-off. The unordered
  // tier must still deliver the exact multiset with a sound watermark.
  for (const OrderingTier tier :
       {OrderingTier::kPerDefinitionOrder, OrderingTier::kUnorderedWatermarked}) {
    for (const std::size_t shards : {2u, 4u, 8u}) {
      for (const std::size_t batch : {1u, 64u}) {
        run_ordering_differential(GetParam() ^ 0x316ULL, shards, batch,
                                  ConsumptionMode::kUnrestricted, 0.0, tier, "OM", 4);
        run_ordering_differential(GetParam() ^ 0x317ULL, shards, batch,
                                  ConsumptionMode::kConsume, 0.9, tier, "OMS", 4);
      }
    }
  }
}

TEST_P(OrderingTierTest, GlobalTierStaysByteExactUnderMigrations) {
  // The default tier's exactness re-checked through the tagged API, with
  // migrations in flight (subsumes the untagged differential's contract:
  // same stream, stamps attached).
  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t batch : {1u, 64u}) {
      run_ordering_differential(GetParam() ^ 0x60ULL, shards, batch,
                                ConsumptionMode::kUnrestricted, 0.0,
                                OrderingTier::kGlobalTotalOrder, "OG", 4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingTierTest, ::testing::Values(11u, 12u, 13u));

// ---------------------------------------------------------------------------
// Cascade leg: every tier x depth {1, 2}.
// ---------------------------------------------------------------------------

EventDefinition with_value_attr(EventDefinition def, std::vector<core::SlotIndex> slots) {
  def.synthesis.attributes.push_back(
      core::AttributeRule{"value", core::ValueAggregate::kMax, "value", std::move(slots)});
  return def;
}

/// L1 threshold pair (one group), an L2 join over its instances, and a
/// wildcard that keeps stamps dense.
std::vector<EventDefinition> cascade_tier_definitions(const std::string& tag) {
  std::vector<EventDefinition> defs;
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kUnrestricted},
      {0}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRb"))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 40.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kUnrestricted},
      {0}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("CP_" + tag),
                      {{"a", SlotFilter::instance_of(EventTypeId("HOT_" + tag))},
                       {"b", SlotFilter::instance_of(EventTypeId("HOT_" + tag))}},
                      core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                   core::c_distance(0, 1, core::RelationalOp::kLt, 10.0)}),
                      seconds(5),
                      {},
                      ConsumptionMode::kUnrestricted},
      {0, 1}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("WILD_" + tag),
                      {{"w", SlotFilter::any()}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 90.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kUnrestricted},
      {0}));
  return defs;
}

void run_cascade_tier_differential(std::uint64_t seed, std::size_t shards, std::size_t depth,
                                   OrderingTier tier, const std::string& tag) {
  core::EngineOptions engine_options;
  engine_options.max_cascade_depth = depth;
  RuntimeOptions options;
  options.shards = shards;
  options.cascade = true;
  options.engine = engine_options;
  options.ordering = tier;  // cascade releases closures in stamp order in every tier
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0},
                             engine_options);
  for (const EventDefinition& def : cascade_tier_definitions(tag)) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  const Stream stream = make_stream(seed, 160, 0.0);
  const std::vector<Ref> want = oracle::sequential_reference(
      sequential, stream.entities, stream.nows, /*cascade=*/true, /*canonicalize_seq=*/false);

  const std::string ctx = tag + "/" + tier_name(tier) + " seed=" + std::to_string(seed) +
                          " shards=" + std::to_string(shards) +
                          " depth=" + std::to_string(depth);
  WatermarkAudit audit(ctx);
  std::vector<TaggedInstance> got_tagged;
  for (std::size_t i = 0; i < stream.entities.size(); i += 16) {
    const std::size_t n = std::min<std::size_t>(16, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
    // Cascade: the coordinator merges between polls, so only the
    // watermark's monotonicity is audited incrementally.
    audit.after_poll(sharded.low_watermark());
    std::vector<TaggedInstance> released = sharded.poll_tagged();
    got_tagged.insert(got_tagged.end(), std::make_move_iterator(released.begin()),
                      std::make_move_iterator(released.end()));
  }
  std::vector<TaggedInstance> released = sharded.flush_tagged();
  got_tagged.insert(got_tagged.end(), std::make_move_iterator(released.begin()),
                    std::make_move_iterator(released.end()));

  // Whatever the configured tier, cascade mode releases whole closures in
  // stamp order — byte-exact equality against the sequential cascade.
  oracle::check_equal(oracle::to_refs(got_tagged, /*canonicalize_seq=*/false), want, ctx);

  const RuntimeStats stats = sharded.stats();
  audit.at_quiescence(sharded.low_watermark(), stats.arrivals);
  EXPECT_EQ(stats.instances, want.size()) << ctx;
  EXPECT_EQ(stats.cascade_reingested, sequential.stats().cascade_reingested) << ctx;
  EXPECT_EQ(stats.cascade_truncated, sequential.stats().cascade_truncated) << ctx;
}

class OrderingCascadeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingCascadeTest, EveryTierKeepsCascadeClosuresExact) {
  for (const OrderingTier tier : kAllTiers) {
    for (const std::size_t shards : {2u, 4u}) {
      for (const std::size_t depth : {1u, 2u}) {
        run_cascade_tier_differential(GetParam(), shards, depth, tier, "OC");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingCascadeTest, ::testing::Values(21u, 22u, 23u));

// ---------------------------------------------------------------------------
// API units.
// ---------------------------------------------------------------------------

TEST(OrderingApiTest, SplitGroupIsAcceptedInCascadeMode) {
  // Split under cascade is legal since the coordinator renumbers per-group
  // sequences at dispatch time; an unsplittable (single-key) group is
  // still refused with `false`, not a throw.
  RuntimeOptions options;
  options.shards = 2;
  options.cascade = true;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def : cascade_tier_definitions("CX")) rt.add_definition(def);
  EXPECT_NO_THROW((void)rt.split_group(0, 1));
}

TEST(OrderingApiTest, WatermarkStartsAtZeroAndBoundsChecksThrow) {
  RuntimeOptions options;
  options.shards = 2;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def :
       ordering_definitions(ConsumptionMode::kUnrestricted, "WB")) {
    rt.add_definition(def);
  }
  EXPECT_EQ(rt.low_watermark(), 0u);
  EXPECT_THROW((void)rt.split_group(99, 0), std::out_of_range);
  EXPECT_THROW((void)rt.split_group(0, 99), std::out_of_range);
  EXPECT_THROW((void)rt.merge_group(99), std::out_of_range);
  EXPECT_FALSE(rt.merge_group(0));  // not split: no-op
  EXPECT_FALSE(rt.group_split(0));
}

}  // namespace
}  // namespace stem::runtime
