#include <gtest/gtest.h>

#include <memory>

#include "sensing/phenomena.hpp"
#include "sensing/sensor.hpp"
#include "wsn/energy.hpp"
#include "wsn/mote.hpp"

namespace stem::wsn {
namespace {

using time_model::seconds;
using time_model::TimePoint;

TEST(EnergyAccountTest, ChargesPerActivity) {
  EnergyModel model;
  model.tx_nj_per_byte = 800;
  model.rx_nj_per_byte = 400;
  model.sample_nj = 2000;
  model.eval_nj = 50;
  EnergyAccount account(model);

  account.charge_tx(100);
  account.charge_rx(50);
  account.charge_sample();
  account.charge_eval(3);

  EXPECT_DOUBLE_EQ(account.tx_nj(), 80'000.0);
  EXPECT_DOUBLE_EQ(account.rx_nj(), 20'000.0);
  EXPECT_DOUBLE_EQ(account.sample_nj(), 2'000.0);
  EXPECT_DOUBLE_EQ(account.eval_nj(), 150.0);
  EXPECT_DOUBLE_EQ(account.total_nj(), 102'150.0);
  EXPECT_NEAR(account.radio_fraction(), 100'000.0 / 102'150.0, 1e-12);

  account.reset();
  EXPECT_DOUBLE_EQ(account.total_nj(), 0.0);
  EXPECT_DOUBLE_EQ(account.radio_fraction(), 0.0);
}

TEST(EnergyAccountTest, MoteChargesAllPaths) {
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(4));

  SensorMote::Config cfg;
  cfg.id = net::NodeId("MT1");
  cfg.position = {0, 0};
  cfg.sampling_period = seconds(1);
  SensorMote mote(network, cfg, sim::Rng(1));
  mote.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      core::SensorId("SR"), std::make_shared<sensing::UniformField>(90.0), 0.0));
  mote.add_definition(core::EventDefinition{
      core::EventTypeId("E"),
      {{"x", core::SlotFilter::observation(core::SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 0.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume});

  network.register_node(net::NodeId("SINK"), [](const net::Message&) {});
  network.connect(net::NodeId("MT1"), net::NodeId("SINK"), net::LinkSpec{});
  mote.set_parent(net::NodeId("SINK"));
  mote.start(TimePoint::epoch() + seconds(5));
  simulator.run();

  const EnergyAccount& e = mote.energy();
  EXPECT_GT(e.sample_nj(), 0.0);  // 5 samples
  EXPECT_GT(e.eval_nj(), 0.0);    // 5 evaluations
  EXPECT_GT(e.tx_nj(), 0.0);      // 5 transmissions
  EXPECT_DOUBLE_EQ(e.rx_nj(), 0.0);  // leaf mote: receives nothing
  // Radio dominates (the architectural argument).
  EXPECT_GT(e.radio_fraction(), 0.5);
}

TEST(EnergyAccountTest, RelayPaysRxAndTx) {
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(4));

  SensorMote::Config src_cfg;
  src_cfg.id = net::NodeId("SRC");
  src_cfg.position = {0, 0};
  SensorMote src(network, src_cfg, sim::Rng(1));
  src.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      core::SensorId("SR"), std::make_shared<sensing::UniformField>(90.0), 0.0));
  src.add_definition(core::EventDefinition{
      core::EventTypeId("E"),
      {{"x", core::SlotFilter::observation(core::SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 0.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume});

  SensorMote::Config relay_cfg;
  relay_cfg.id = net::NodeId("RELAY");
  relay_cfg.position = {10, 0};
  SensorMote relay(network, relay_cfg, sim::Rng(2));

  network.register_node(net::NodeId("SINK"), [](const net::Message&) {});
  network.connect(net::NodeId("SRC"), net::NodeId("RELAY"), net::LinkSpec{});
  network.connect(net::NodeId("RELAY"), net::NodeId("SINK"), net::LinkSpec{});
  src.set_parent(net::NodeId("RELAY"));
  relay.set_parent(net::NodeId("SINK"));
  src.start(TimePoint::epoch() + seconds(4));
  simulator.run();

  EXPECT_GT(relay.energy().rx_nj(), 0.0);
  EXPECT_GT(relay.energy().tx_nj(), 0.0);
  EXPECT_DOUBLE_EQ(relay.energy().sample_nj(), 0.0);  // no sensors
  // Relay tx bytes == rx bytes (same payload forwarded): with the default
  // 2:1 tx/rx cost, tx energy is exactly double.
  EXPECT_NEAR(relay.energy().tx_nj(), 2.0 * relay.energy().rx_nj(), 1e-9);
}

}  // namespace
}  // namespace stem::wsn
