#include <gtest/gtest.h>

#include <set>

#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "scenario/forest_fire.hpp"
#include "scenario/smart_building.hpp"
#include "wsn/mote.hpp"

namespace stem::scenario {
namespace {

/// Failure-injection and degraded-operation tests: the paper's
/// architecture must keep detecting under lossy radios and dead repeaters
/// (graceful degradation, not silent wrong answers).

DeploymentConfig dense(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.topology.motes = 25;
  cfg.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.topology.radio_range = 40.0;
  cfg.topology.seed = seed;
  cfg.seed = seed;
  cfg.sampling_period = time_model::milliseconds(500);
  return cfg;
}

TEST(FailureInjectionTest, LossyRadioStillDetects) {
  SmartBuildingConfig cfg;
  cfg.deployment = dense(41);
  cfg.deployment.wsn_link.loss_prob = 0.2;  // 20% of WSN messages lost
  SmartBuilding scenario(cfg);
  const auto result = scenario.run();

  EXPECT_GT(result.network.dropped, 0u);  // loss actually happened
  // Redundant sensing rides out the loss: the chain still completes.
  EXPECT_TRUE(result.first_detection.has_value());
  EXPECT_TRUE(result.window_closed.has_value());
}

TEST(FailureInjectionTest, HeavyLossDegradesButNeverFabricates) {
  SmartBuildingConfig cfg;
  cfg.deployment = dense(42);
  cfg.deployment.wsn_link.loss_prob = 0.85;
  SmartBuilding scenario(cfg);
  const auto result = scenario.run();

  // Fewer location estimates than the clean run...
  SmartBuildingConfig clean_cfg;
  clean_cfg.deployment = dense(42);
  const auto clean = SmartBuilding(clean_cfg).run();
  EXPECT_LT(result.location_estimates, clean.location_estimates);
  // ...and any detection that did happen still postdates the truth.
  if (result.first_detection.has_value()) {
    ASSERT_TRUE(result.true_entry.has_value());
    EXPECT_GT(*result.first_detection, *result.true_entry);
  }
}

TEST(FailureInjectionTest, DeadMotesReduceCoverage) {
  ForestFireConfig cfg;
  cfg.deployment = dense(43);
  ForestFire healthy(cfg);
  const auto healthy_result = healthy.run();
  ASSERT_TRUE(healthy_result.first_cp_fire.has_value());

  ForestFireConfig cfg2;
  cfg2.deployment = dense(43);
  ForestFire degraded(cfg2);
  // Kill half the motes just before ignition.
  std::size_t killed = 0;
  degraded.deployment().for_each_mote([&](wsn::SensorMote& m) {
    if (killed++ % 2 == 0) m.fail_at(time_model::TimePoint::epoch() + time_model::seconds(9));
  });
  const auto degraded_result = degraded.run();

  std::size_t failed = 0;
  degraded.deployment().for_each_mote(
      [&](wsn::SensorMote& m) { failed += m.failed() ? 1 : 0; });
  EXPECT_GT(failed, 0u);
  // Fewer HOT events than the healthy run.
  EXPECT_LT(degraded_result.hot_events, healthy_result.hot_events);
  // Detection may be later (or missing); if present it must follow truth.
  if (degraded_result.first_cp_fire.has_value()) {
    EXPECT_GE(*degraded_result.first_cp_fire, *healthy_result.first_cp_fire);
  }
}

TEST(FailureInjectionTest, FailedMoteStopsRelaying) {
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(9));

  wsn::SensorMote::Config a_cfg;
  a_cfg.id = net::NodeId("A");
  a_cfg.position = {0, 0};
  wsn::SensorMote a(network, a_cfg, sim::Rng(1));
  a.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      core::SensorId("SR"), std::make_shared<sensing::UniformField>(99.0), 0.0));
  a.add_definition(core::EventDefinition{
      core::EventTypeId("E"),
      {{"x", core::SlotFilter::observation(core::SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 0.0),
      time_model::seconds(60),
      {},
      core::ConsumptionMode::kConsume});

  wsn::SensorMote::Config relay_cfg;
  relay_cfg.id = net::NodeId("R");
  relay_cfg.position = {10, 0};
  wsn::SensorMote relay(network, relay_cfg, sim::Rng(2));

  std::size_t received = 0;
  network.register_node(net::NodeId("SINK"), [&](const net::Message&) { ++received; });
  net::LinkSpec link;
  link.jitter = time_model::Duration::zero();
  network.connect(net::NodeId("A"), net::NodeId("R"), link);
  network.connect(net::NodeId("R"), net::NodeId("SINK"), link);
  a.set_parent(net::NodeId("R"));
  relay.set_parent(net::NodeId("SINK"));

  // The relay dies halfway through a 10-sample run.
  relay.fail_at(time_model::TimePoint::epoch() + time_model::milliseconds(5'500));
  a.start(time_model::TimePoint::epoch() + time_model::seconds(10));
  simulator.run();

  EXPECT_EQ(a.stats().events_emitted, 10u);  // the source kept detecting
  EXPECT_EQ(received, 5u);                   // only pre-failure events arrived
}

core::EventDefinition always_fires() {
  return core::EventDefinition{
      core::EventTypeId("E"),
      {{"x", core::SlotFilter::observation(core::SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 0.0),
      time_model::seconds(60),
      {},
      core::ConsumptionMode::kConsume};
}

TEST(FailureInjectionTest, DeadRepeaterWithReliableUplinkDegradesButNeverFabricates) {
  // A --reliable--> R --reliable--> SINK, and the FaultPlan kills R (the
  // node, not the mote object: every send and delivery through it drops,
  // exactly an OS-level crash) halfway through. The session layer must
  // surface the outage as retransmissions and then bounded give-up —
  // never as fabricated or duplicated deliveries at the sink.
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(9));
  net::FaultPlan plan(0xdeadULL);
  network.set_fault_plan(&plan);

  wsn::SensorMote::Config a_cfg;
  a_cfg.id = net::NodeId("A");
  a_cfg.position = {0, 0};
  a_cfg.reliable_uplink = true;
  a_cfg.reliable_options.max_retries = 6;  // bounded work under the outage
  wsn::SensorMote a(network, a_cfg, sim::Rng(1));
  a.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      core::SensorId("SR"), std::make_shared<sensing::UniformField>(99.0), 0.0));
  a.add_definition(always_fires());

  wsn::SensorMote::Config relay_cfg;
  relay_cfg.id = net::NodeId("R");
  relay_cfg.position = {10, 0};
  relay_cfg.reliable_uplink = true;  // acks A, forwards reliably to SINK
  wsn::SensorMote relay(network, relay_cfg, sim::Rng(2));

  std::size_t received = 0;
  net::ReliableEndpoint sink(network, net::NodeId("SINK"),
                             [&](const net::Message&) { ++received; });
  net::LinkSpec link;
  link.jitter = time_model::Duration::zero();
  network.connect(net::NodeId("A"), net::NodeId("R"), link);
  network.connect(net::NodeId("R"), net::NodeId("SINK"), link);
  a.set_parent(net::NodeId("R"));
  relay.set_parent(net::NodeId("SINK"));

  plan.on_node(net::NodeId("R"),
               net::NodeFault{time_model::TimePoint::epoch() + time_model::milliseconds(5'500),
                              time_model::TimePoint::max()});
  a.start(time_model::TimePoint::epoch() + time_model::seconds(10));
  simulator.run();

  EXPECT_EQ(a.stats().events_emitted, 10u);  // the source kept detecting
  EXPECT_EQ(received, 5u);                   // only pre-crash events got through
  // The degradation is observable, not silent: the A->R link carried
  // retransmissions and dropped the in-outage traffic.
  const net::LinkCounters& ar = network.stats().link(net::NodeId("A"), net::NodeId("R"));
  EXPECT_GT(ar.retransmitted, 0u);
  EXPECT_GT(ar.dropped, 0u);
  EXPECT_GT(network.stats().retransmitted, 0u);
}

TEST(FailureInjectionTest, TimedPartitionHealsAndReliableUplinkRecovers) {
  // Hard partition of the mote's uplink for [3s, 6s): events emitted in
  // the window are repaired by retransmission after the heal — the sink
  // ends with all ten events, exactly once each, in order.
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(9));
  net::FaultPlan plan(0x9ea1ULL);
  network.set_fault_plan(&plan);

  wsn::SensorMote::Config a_cfg;
  a_cfg.id = net::NodeId("A");
  a_cfg.position = {0, 0};
  a_cfg.reliable_uplink = true;  // retry forever: the partition heals
  wsn::SensorMote a(network, a_cfg, sim::Rng(1));
  a.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      core::SensorId("SR"), std::make_shared<sensing::UniformField>(99.0), 0.0));
  a.add_definition(always_fires());

  std::vector<std::uint64_t> seqs;
  net::ReliableEndpoint sink(network, net::NodeId("SINK"), [&](const net::Message& msg) {
    seqs.push_back(std::get<core::Entity>(msg.payload).instance().key.seq);
  });
  net::LinkSpec link;
  link.jitter = time_model::Duration::zero();
  network.connect(net::NodeId("A"), net::NodeId("SINK"), link);
  a.set_parent(net::NodeId("SINK"));

  net::LinkFault window;
  window.partitions.push_back({time_model::TimePoint::epoch() + time_model::seconds(3),
                               time_model::TimePoint::epoch() + time_model::seconds(6)});
  plan.on_link_both(net::NodeId("A"), net::NodeId("SINK"), window);

  a.start(time_model::TimePoint::epoch() + time_model::seconds(10));
  simulator.run();

  EXPECT_EQ(a.stats().events_emitted, 10u);
  ASSERT_EQ(seqs.size(), 10u);  // every event arrived after the heal...
  EXPECT_EQ(std::set<std::uint64_t>(seqs.begin(), seqs.end()).size(), 10u);  // ...once...
  EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));                     // ...in order
  const net::LinkCounters& as = network.stats().link(net::NodeId("A"), net::NodeId("SINK"));
  EXPECT_GT(as.dropped, 0u);        // the partition really bit
  EXPECT_GT(as.retransmitted, 0u);  // and retransmission repaired it
}

}  // namespace
}  // namespace stem::scenario
