#include <gtest/gtest.h>

#include "scenario/forest_fire.hpp"
#include "scenario/smart_building.hpp"

namespace stem::scenario {
namespace {

/// Failure-injection and degraded-operation tests: the paper's
/// architecture must keep detecting under lossy radios and dead repeaters
/// (graceful degradation, not silent wrong answers).

DeploymentConfig dense(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.topology.motes = 25;
  cfg.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.topology.radio_range = 40.0;
  cfg.topology.seed = seed;
  cfg.seed = seed;
  cfg.sampling_period = time_model::milliseconds(500);
  return cfg;
}

TEST(FailureInjectionTest, LossyRadioStillDetects) {
  SmartBuildingConfig cfg;
  cfg.deployment = dense(41);
  cfg.deployment.wsn_link.loss_prob = 0.2;  // 20% of WSN messages lost
  SmartBuilding scenario(cfg);
  const auto result = scenario.run();

  EXPECT_GT(result.network.dropped, 0u);  // loss actually happened
  // Redundant sensing rides out the loss: the chain still completes.
  EXPECT_TRUE(result.first_detection.has_value());
  EXPECT_TRUE(result.window_closed.has_value());
}

TEST(FailureInjectionTest, HeavyLossDegradesButNeverFabricates) {
  SmartBuildingConfig cfg;
  cfg.deployment = dense(42);
  cfg.deployment.wsn_link.loss_prob = 0.85;
  SmartBuilding scenario(cfg);
  const auto result = scenario.run();

  // Fewer location estimates than the clean run...
  SmartBuildingConfig clean_cfg;
  clean_cfg.deployment = dense(42);
  const auto clean = SmartBuilding(clean_cfg).run();
  EXPECT_LT(result.location_estimates, clean.location_estimates);
  // ...and any detection that did happen still postdates the truth.
  if (result.first_detection.has_value()) {
    ASSERT_TRUE(result.true_entry.has_value());
    EXPECT_GT(*result.first_detection, *result.true_entry);
  }
}

TEST(FailureInjectionTest, DeadMotesReduceCoverage) {
  ForestFireConfig cfg;
  cfg.deployment = dense(43);
  ForestFire healthy(cfg);
  const auto healthy_result = healthy.run();
  ASSERT_TRUE(healthy_result.first_cp_fire.has_value());

  ForestFireConfig cfg2;
  cfg2.deployment = dense(43);
  ForestFire degraded(cfg2);
  // Kill half the motes just before ignition.
  std::size_t killed = 0;
  degraded.deployment().for_each_mote([&](wsn::SensorMote& m) {
    if (killed++ % 2 == 0) m.fail_at(time_model::TimePoint::epoch() + time_model::seconds(9));
  });
  const auto degraded_result = degraded.run();

  std::size_t failed = 0;
  degraded.deployment().for_each_mote(
      [&](wsn::SensorMote& m) { failed += m.failed() ? 1 : 0; });
  EXPECT_GT(failed, 0u);
  // Fewer HOT events than the healthy run.
  EXPECT_LT(degraded_result.hot_events, healthy_result.hot_events);
  // Detection may be later (or missing); if present it must follow truth.
  if (degraded_result.first_cp_fire.has_value()) {
    EXPECT_GE(*degraded_result.first_cp_fire, *healthy_result.first_cp_fire);
  }
}

TEST(FailureInjectionTest, FailedMoteStopsRelaying) {
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(9));

  wsn::SensorMote::Config a_cfg;
  a_cfg.id = net::NodeId("A");
  a_cfg.position = {0, 0};
  wsn::SensorMote a(network, a_cfg, sim::Rng(1));
  a.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
      core::SensorId("SR"), std::make_shared<sensing::UniformField>(99.0), 0.0));
  a.add_definition(core::EventDefinition{
      core::EventTypeId("E"),
      {{"x", core::SlotFilter::observation(core::SensorId("SR"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 0.0),
      time_model::seconds(60),
      {},
      core::ConsumptionMode::kConsume});

  wsn::SensorMote::Config relay_cfg;
  relay_cfg.id = net::NodeId("R");
  relay_cfg.position = {10, 0};
  wsn::SensorMote relay(network, relay_cfg, sim::Rng(2));

  std::size_t received = 0;
  network.register_node(net::NodeId("SINK"), [&](const net::Message&) { ++received; });
  net::LinkSpec link;
  link.jitter = time_model::Duration::zero();
  network.connect(net::NodeId("A"), net::NodeId("R"), link);
  network.connect(net::NodeId("R"), net::NodeId("SINK"), link);
  a.set_parent(net::NodeId("R"));
  relay.set_parent(net::NodeId("SINK"));

  // The relay dies halfway through a 10-sample run.
  relay.fail_at(time_model::TimePoint::epoch() + time_model::milliseconds(5'500));
  a.start(time_model::TimePoint::epoch() + time_model::seconds(10));
  simulator.run();

  EXPECT_EQ(a.stats().events_emitted, 10u);  // the source kept detecting
  EXPECT_EQ(received, 5u);                   // only pre-failure events arrived
}

}  // namespace
}  // namespace stem::scenario
