#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "ordering_oracle.hpp"
#include "runtime/rebalance.hpp"
#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

/// Key-granular hot-group splitting, proven differentially:
///
///  - a forced mid-stream split_group / sub-group migration / merge_group
///    sequence must stay *byte-exact* in the global tier (the merge-side
///    renumbering makes the partitioned sequence counters invisible) and
///    keep the relaxed tiers' contracts (canonicalized per-definition
///    subsequences / multiset, per-definition seq monotonicity);
///  - the skewed soak that PR 4's policy had to leave alone (one
///    indivisible group carrying ~90% of the stream) now splits: the
///    spillover_skipped_indivisible counter stays zero, splits fire, and
///    the max/mean arrival-load spread narrows — with the merged output
///    still byte-identical to the sequential engine;
///  - an unsplittable control (hot group spanning a single sensor key)
///    shows the skip counter doing its job.

namespace stem::runtime {
namespace {

using core::ConsumptionMode;
using core::DetectionEngine;
using core::EventDefinition;
using core::EventInstance;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using geom::Location;
using geom::Point;
using oracle::Ref;
using oracle::WatermarkAudit;
using time_model::seconds;
using time_model::TimePoint;

core::PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq,
                              TimePoint t, Point p, double value) {
  core::PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

/// Defs 0-2 share one event type across three sensor keys (SRa/SRb/SRc):
/// one co-located group, splittable by key range. NEAR joins across the
/// split boundary's sensors; WILD keeps stamps dense.
std::vector<EventDefinition> split_definitions(ConsumptionMode mode, const std::string& tag) {
  std::vector<EventDefinition> defs;
  const double thresholds[] = {60.0, 40.0, 50.0};
  const char* sensors[] = {"SRa", "SRb", "SRc"};
  for (int i = 0; i < 3; ++i) {
    EventDefinition hot{EventTypeId("HOT_" + tag),
                        {{"x", SlotFilter::observation(SensorId(sensors[i]))}},
                        core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                     core::RelationalOp::kGt, thresholds[i]),
                        seconds(60),
                        {},
                        mode};
    hot.synthesis.attributes.push_back(
        core::AttributeRule{"value", core::ValueAggregate::kMax, "value", {0}});
    defs.push_back(hot);
  }

  auto near_join = core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                core::c_distance(0, 1, core::RelationalOp::kLt, 8.0)});
  defs.push_back(EventDefinition{EventTypeId("NEAR_" + tag),
                                 {{"a", SlotFilter::observation(SensorId("SRa"))},
                                  {"b", SlotFilter::observation(SensorId("SRb"))}},
                                 std::move(near_join),
                                 seconds(4),
                                 {},
                                 mode});

  defs.push_back(EventDefinition{EventTypeId("WILD_" + tag),
                                 {{"w", SlotFilter::any()}},
                                 core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                              core::RelationalOp::kGt, 85.0),
                                 seconds(60),
                                 {},
                                 mode});

  return defs;
}

struct Stream {
  std::vector<core::Entity> entities;
  std::vector<TimePoint> nows;
};

/// 90/10 towards the split group's sensors (the hot-group scenario).
Stream make_stream(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  const char* hot[] = {"SRa", "SRb", "SRc"};
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(100 + rng.uniform_int(0, 900));
    const char* sensor = rng.chance(0.9) ? hot[rng.uniform_int(0, 2)] : "SRd";
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 1500));
    s.entities.push_back(core::Entity(obs(static_cast<int>(rng.uniform_int(1, 4)), sensor,
                                          static_cast<std::uint64_t>(i), t,
                                          {rng.uniform(0, 24), rng.uniform(0, 24)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

std::string tier_name(OrderingTier tier) {
  switch (tier) {
    case OrderingTier::kGlobalTotalOrder:
      return "global";
    case OrderingTier::kPerDefinitionOrder:
      return "perdef";
    case OrderingTier::kUnorderedWatermarked:
      return "unordered";
  }
  return "?";
}

/// Forces split -> sub-group migration -> merge at quarter points of the
/// stream and applies the tier's oracle contract end to end.
void run_split_differential(std::uint64_t seed, std::size_t shards, std::size_t batch_size,
                            ConsumptionMode mode, OrderingTier tier, const std::string& tag,
                            bool cascade = false, std::uint32_t pipeline = 1) {
  RuntimeOptions options;
  options.shards = shards;
  options.ordering = tier;
  options.cascade = cascade;
  options.cascade_pipeline = pipeline;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0});
  for (const EventDefinition& def : split_definitions(mode, tag)) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  // Relaxed tiers surface the partitioned per-side sequence counters, so
  // the oracle compares with EventInstanceKey::seq canonicalized; the
  // global tier's merge renumbers and must stay byte-exact. Cascade mode
  // is stricter still: the coordinator renumbers per-group sequences at
  // dispatch time in *every* tier, so even the relaxed cascade legs must
  // reproduce the sequential numbering exactly.
  const bool canonical = !cascade && tier != OrderingTier::kGlobalTotalOrder;

  const Stream stream = make_stream(seed, 320);
  const std::vector<Ref> want = oracle::sequential_reference(
      sequential, stream.entities, stream.nows, cascade, canonical);

  const std::string ctx = tag + "/" + tier_name(tier) + " seed=" + std::to_string(seed) +
                          " shards=" + std::to_string(shards) +
                          " batch=" + std::to_string(batch_size) +
                          (cascade ? " cascade pipeline=" + std::to_string(pipeline) : "");
  WatermarkAudit audit(ctx);
  std::vector<TaggedInstance> got_tagged;
  const auto collect = [&](std::vector<TaggedInstance> released) {
    audit.observe(released);
    audit.after_poll(sharded.low_watermark());
    got_tagged.insert(got_tagged.end(), std::make_move_iterator(released.begin()),
                      std::make_move_iterator(released.end()));
  };

  const std::size_t n = stream.entities.size();
  bool did_split = false, did_move = false, did_merge = false;
  for (std::size_t i = 0; i < n; i += batch_size) {
    if (!did_split && i >= n / 4) {
      const std::size_t to = (sharded.shard_of(0) + 1) % shards;
      ASSERT_TRUE(sharded.split_group(0, to)) << ctx;
      EXPECT_TRUE(sharded.group_split(0)) << ctx;
      EXPECT_FALSE(sharded.split_group(0, to)) << ctx;  // already split
      did_split = true;
    }
    if (!did_move && i >= n / 2) {
      // Move def 1's *sub-group* (whichever side it landed on) — the two
      // sides rebalance independently while split.
      const std::size_t to = (sharded.shard_of(1) + 1) % shards;
      ASSERT_TRUE(sharded.migrate_definition(1, to)) << ctx;
      did_move = true;
    }
    if (!did_merge && i >= 3 * n / 4) {
      ASSERT_TRUE(sharded.merge_group(0)) << ctx;
      EXPECT_FALSE(sharded.group_split(0)) << ctx;
      EXPECT_FALSE(sharded.merge_group(0)) << ctx;  // already merged
      did_merge = true;
    }
    const std::size_t len = std::min(batch_size, n - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, len),
                         std::span(stream.nows).subspan(i, len));
    collect(sharded.poll_tagged());
  }
  collect(sharded.flush_tagged());

  const RuntimeStats stats = sharded.stats();
  ASSERT_EQ(stats.arrivals, n) << ctx;  // WILD routes everything: dense stamps
  audit.at_quiescence(sharded.low_watermark(), stats.arrivals);

  const std::vector<Ref> got = oracle::to_refs(got_tagged, canonical);
  switch (tier) {
    case OrderingTier::kGlobalTotalOrder:
      oracle::check_equal(got, want, ctx);
      break;
    case OrderingTier::kPerDefinitionOrder:
      oracle::check_per_def(got, want, ctx);
      break;
    case OrderingTier::kUnorderedWatermarked:
      oracle::check_multiset(got, want, ctx);
      break;
  }
  if (tier != OrderingTier::kUnorderedWatermarked) {
    oracle::check_per_def_seq_monotone(got, ctx);
  }

  EXPECT_EQ(stats.instances, want.size()) << ctx;
  EXPECT_EQ(stats.splits, 1u) << ctx;
  EXPECT_EQ(stats.group_merges, 1u) << ctx;
}

class SplitDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitDifferentialTest, GlobalTierStaysByteExactThroughSplitMoveMerge) {
  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t batch : {1u, 64u}) {
      run_split_differential(GetParam(), shards, batch, ConsumptionMode::kUnrestricted,
                             OrderingTier::kGlobalTotalOrder, "SGU");
      run_split_differential(GetParam() ^ 0x5eedULL, shards, batch, ConsumptionMode::kConsume,
                             OrderingTier::kGlobalTotalOrder, "SGC");
    }
  }
}

TEST_P(SplitDifferentialTest, RelaxedTiersKeepTheirContractsThroughSplitMoveMerge) {
  for (const OrderingTier tier :
       {OrderingTier::kPerDefinitionOrder, OrderingTier::kUnorderedWatermarked}) {
    for (const std::size_t shards : {2u, 4u}) {
      for (const std::size_t batch : {1u, 64u}) {
        run_split_differential(GetParam() ^ 0x316ULL, shards, batch,
                               ConsumptionMode::kUnrestricted, tier, "SRU");
        run_split_differential(GetParam() ^ 0x317ULL, shards, batch, ConsumptionMode::kConsume,
                               tier, "SRC");
      }
    }
  }
}

TEST_P(SplitDifferentialTest, CascadeModeSplitMoveMergeStaysExactAcrossTiers) {
  // split_group under cascade (new in the pipelined coordinator): the
  // split/merge barrier acts at sub-stamp granularity via the shared
  // subset-migration control pair, and the coordinator's dispatch-time
  // renumbering keeps every tier's stream exactly sequential — seq
  // included — even while the hot group is cut in two.
  for (const OrderingTier tier :
       {OrderingTier::kGlobalTotalOrder, OrderingTier::kPerDefinitionOrder,
        OrderingTier::kUnorderedWatermarked}) {
    for (const std::uint32_t pipeline : {1u, 4u}) {
      run_split_differential(GetParam() ^ 0xca5ULL, 4, 16, ConsumptionMode::kUnrestricted,
                             tier, "SCA", /*cascade=*/true, pipeline);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitDifferentialTest, ::testing::Values(41u, 42u, 43u));

// ---------------------------------------------------------------------------
// Split soak: the indivisible-hot-group scenario, now resolvable.
// ---------------------------------------------------------------------------

/// One monolithic group (4 defs, one event type, 4 hot sensors HK0-3) the
/// policy can only fix by splitting, plus 4 single-sensor cold groups.
std::vector<EventDefinition> soak_definitions(bool splittable) {
  std::vector<EventDefinition> defs;
  for (int i = 0; i < 4; ++i) {
    // Unsplittable variant: all four defs watch the *same* sensor key, so
    // the group spans one distinct key and key-range splitting cannot cut.
    const std::string sensor = splittable ? "HK" + std::to_string(i) : "HK0";
    defs.push_back(EventDefinition{
        EventTypeId("HOTM"),
        {{"x", SlotFilter::observation(SensorId(sensor))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt,
                     50.0 + 10.0 * i),
        seconds(60),
        {},
        ConsumptionMode::kUnrestricted});
  }
  for (int i = 0; i < 4; ++i) {
    defs.push_back(EventDefinition{
        EventTypeId("COLD" + std::to_string(i)),
        {{"x", SlotFilter::observation(SensorId("CK" + std::to_string(i)))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
        seconds(60),
        {},
        ConsumptionMode::kConsume});
  }
  return defs;
}

Stream make_soak_stream(std::uint64_t seed, int n, bool splittable) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(1 + rng.uniform_int(0, 9));
    std::string sensor;
    if (rng.chance(0.9)) {
      sensor = splittable ? "HK" + std::to_string(rng.uniform_int(0, 3)) : "HK0";
    } else {
      sensor = "CK" + std::to_string(rng.uniform_int(0, 3));
    }
    s.entities.push_back(core::Entity(obs(1, sensor, static_cast<std::uint64_t>(i), now,
                                          {rng.uniform(0, 24), rng.uniform(0, 24)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

struct SoakResult {
  std::vector<std::string> stream;
  double load_ratio = 0.0;  ///< max/mean per-shard routed arrivals
  RuntimeStats stats;
};

/// Externally paced rebalancing (flush + rebalance_now every 2048
/// arrivals) instead of rebalance_epoch: the flush barrier means every
/// policy pass judges fully published loads, so the pass-by-pass decision
/// sequence — and hence the split point in the stream — is deterministic
/// rather than racing the workers' load publication.
SoakResult run_soak(const Stream& stream, bool splittable, bool rebalance) {
  RuntimeOptions options;
  options.shards = 2;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def : soak_definitions(splittable)) rt.add_definition(def);

  SoakResult r;
  const auto drain = [&](std::vector<EventInstance> out) {
    for (const EventInstance& inst : out) {
      r.stream.push_back(oracle::describe(inst, /*canonicalize_seq=*/false));
    }
  };
  for (std::size_t i = 0; i < stream.entities.size(); i += 64) {
    const std::size_t n = std::min<std::size_t>(64, stream.entities.size() - i);
    rt.ingest_batch(std::span(stream.entities).subspan(i, n),
                    std::span(stream.nows).subspan(i, n));
    drain(rt.poll());
    if (rebalance && (i / 64 + 1) % 32 == 0) {
      drain(rt.flush());
      rt.rebalance_now();
    }
  }
  drain(rt.flush());
  if (rebalance) rt.rebalance_now();

  const std::vector<std::uint64_t> loads = rt.shard_arrival_loads();
  const auto total =
      static_cast<double>(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}));
  const auto peak = static_cast<double>(*std::max_element(loads.begin(), loads.end()));
  r.load_ratio = peak / (total / static_cast<double>(loads.size()));
  r.stats = rt.stats();
  return r;
}

std::vector<std::string> soak_reference(const Stream& stream, bool splittable) {
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyber, {0, 0});
  for (const EventDefinition& def : soak_definitions(splittable)) {
    sequential.add_definition(def);
  }
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst : sequential.observe(stream.entities[i], stream.nows[i])) {
      want.push_back(oracle::describe(inst, /*canonicalize_seq=*/false));
    }
  }
  return want;
}

TEST(SplitSoakTest, PolicySplitsTheIndivisibleHotGroupAndSpreadNarrows) {
  const Stream stream = make_soak_stream(17, 32'000, /*splittable=*/true);
  const std::vector<std::string> want = soak_reference(stream, /*splittable=*/true);

  const SoakResult off = run_soak(stream, true, /*rebalance=*/false);
  const SoakResult on = run_soak(stream, true, /*rebalance=*/true);

  // Exactness through policy-driven splitting: the default tier's merge
  // renumbers the partitioned counters back to the sequential stream.
  ASSERT_EQ(on.stream.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k) {
    ASSERT_EQ(on.stream[k], want[k]) << "instance " << k;
  }
  ASSERT_EQ(off.stream, want);

  // PR 4's policy had to leave this group alone (whole-move never
  // improves when the group is ~90% of the stream); key-range splitting
  // resolves it without ever recording a skip.
  std::cout << "[split-soak] max/mean arrival-load ratio: off=" << off.load_ratio
            << " on=" << on.load_ratio << " (splits=" << on.stats.splits
            << ", skipped=" << on.stats.spillover_skipped_indivisible
            << ", passes=" << on.stats.rebalance_passes << ")\n";
  EXPECT_GE(on.stats.splits, 1u);
  EXPECT_EQ(on.stats.spillover_skipped_indivisible, 0u);
  EXPECT_GE(off.load_ratio, 1.5);
  EXPECT_LT(on.load_ratio, 0.85 * off.load_ratio);
}

TEST(SplitSoakTest, SingleKeyHotGroupStaysPutAndCountsTheSkips) {
  // Control: the hot group's defs all share one sensor key — key-range
  // splitting cannot cut it, so the policy must leave it alone and the
  // skip counter must say so.
  const Stream stream = make_soak_stream(18, 8'000, /*splittable=*/false);
  const std::vector<std::string> want = soak_reference(stream, /*splittable=*/false);

  const SoakResult on = run_soak(stream, false, /*rebalance=*/true);
  std::cout << "[split-soak/control] ratio=" << on.load_ratio
            << " passes=" << on.stats.rebalance_passes
            << " migrations=" << on.stats.migrations << " splits=" << on.stats.splits
            << " skipped=" << on.stats.spillover_skipped_indivisible << "\n";
  ASSERT_EQ(on.stream, want);
  EXPECT_EQ(on.stats.splits, 0u);
  EXPECT_GT(on.stats.spillover_skipped_indivisible, 0u);
}

// ---------------------------------------------------------------------------
// SpilloverPolicy split-order units.
// ---------------------------------------------------------------------------

TEST(SpilloverSplitPolicyTest, SplitsTheIndivisibleHotGroupWhenSplittable) {
  SpilloverPolicy policy;
  const std::vector<std::uint64_t> shard_load = {1000, 10, 10, 10};
  const std::vector<GroupLoad> groups = {{0, 0, 1000, true, true},
                                         {1, 1, 10, true, false},
                                         {2, 2, 10, true, false},
                                         {3, 3, 10, true, false}};
  std::uint64_t skipped = 0;
  std::vector<MigrationOrder> out;
  policy.decide(RebalanceView{shard_load, groups, &skipped}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].group, 0u);
  EXPECT_TRUE(out[0].split);
  EXPECT_EQ(skipped, 0u);
}

TEST(SpilloverSplitPolicyTest, CountsTheSkipWhenNothingIsSplittable) {
  SpilloverPolicy policy;
  const std::vector<std::uint64_t> shard_load = {1000, 10, 10, 10};
  const std::vector<GroupLoad> groups = {{0, 0, 1000, true, false},
                                         {1, 1, 10, true, false},
                                         {2, 2, 10, true, false},
                                         {3, 3, 10, true, false}};
  std::uint64_t skipped = 0;
  std::vector<MigrationOrder> out;
  policy.decide(RebalanceView{shard_load, groups, &skipped}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(skipped, 1u);
}

TEST(SpilloverSplitPolicyTest, RejectsSplitThatWouldJustMoveTheHotspot) {
  // Half the group still overloads every destination: splitting would
  // shuffle the peak around, not lower it — skip instead.
  SpilloverPolicy::Options opts;
  opts.overload_factor = 1.0;
  SpilloverPolicy policy(opts);
  const std::vector<std::uint64_t> shard_load = {1000, 900, 900, 900};
  const std::vector<GroupLoad> groups = {{0, 0, 1000, true, true},
                                         {1, 1, 900, true, false},
                                         {2, 2, 900, true, false},
                                         {3, 3, 900, true, false}};
  std::uint64_t skipped = 0;
  std::vector<MigrationOrder> out;
  policy.decide(RebalanceView{shard_load, groups, &skipped}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(skipped, 1u);
}

TEST(SpilloverSplitPolicyTest, PrefersWholeMoveOverSplitWhenOneImproves) {
  // A smaller whole group whose move strictly improves wins over cutting
  // the big one: splits are the fallback, not the default.
  SpilloverPolicy policy;
  const std::vector<std::uint64_t> shard_load = {1000, 10, 10, 10};
  const std::vector<GroupLoad> groups = {{0, 0, 995, true, true},
                                         {1, 0, 5, true, false},
                                         {2, 1, 10, true, false},
                                         {3, 2, 10, true, false},
                                         {4, 3, 10, true, false}};
  std::uint64_t skipped = 0;
  std::vector<MigrationOrder> out;
  policy.decide(RebalanceView{shard_load, groups, &skipped}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].group, 1u);  // the small group whose whole move improves
  EXPECT_FALSE(out[0].split);
  EXPECT_EQ(skipped, 0u);
}

// ---------------------------------------------------------------------------
// Split lifecycle units.
// ---------------------------------------------------------------------------

TEST(SplitApiTest, SplitPartitionsTheGroupAndMergeRestoresIt) {
  RuntimeOptions options;
  options.shards = 2;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def :
       split_definitions(ConsumptionMode::kUnrestricted, "LC")) {
    rt.add_definition(def);
  }
  ASSERT_EQ(rt.group_of(0), rt.group_of(1));
  ASSERT_EQ(rt.group_of(1), rt.group_of(2));

  const std::size_t home = rt.shard_of(0);
  const std::size_t away = 1 - home;
  EXPECT_FALSE(rt.split_group(0, home));  // destination == current shard
  ASSERT_TRUE(rt.split_group(0, away));
  EXPECT_TRUE(rt.group_split(0));
  EXPECT_TRUE(rt.group_split(2));  // introspection is per group

  // Median-of-3-distinct-keys partition: exactly two defs sit at or above
  // the split point and moved to the high shard.
  std::size_t moved = 0;
  for (std::size_t d = 0; d < 3; ++d) moved += rt.shard_of(d) == away ? 1 : 0;
  EXPECT_EQ(moved, 2u);

  EXPECT_FALSE(rt.split_group(0, away));  // already split
  ASSERT_TRUE(rt.merge_group(0));
  EXPECT_FALSE(rt.group_split(0));
  for (std::size_t d = 0; d < 3; ++d) EXPECT_EQ(rt.shard_of(d), home);
  EXPECT_FALSE(rt.merge_group(0));  // already whole

  // The cycle is repeatable once reunified.
  ASSERT_TRUE(rt.split_group(0, away));
  EXPECT_TRUE(rt.group_split(0));
  EXPECT_EQ(rt.stats().splits, 2u);
  EXPECT_EQ(rt.stats().group_merges, 1u);
  EXPECT_TRUE(rt.flush().empty());
}

TEST(SplitApiTest, SingleKeyAndWildcardGroupsRefuseToSplit) {
  RuntimeOptions options;
  options.shards = 2;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def :
       split_definitions(ConsumptionMode::kUnrestricted, "SK")) {
    rt.add_definition(def);
  }
  // Def 3 (NEAR) spans one group with a single first-slot sensor key; def
  // 4 (WILD) has no sensor key at all — neither group is splittable.
  EXPECT_FALSE(rt.split_group(3, 1 - rt.shard_of(3)));
  EXPECT_FALSE(rt.split_group(4, 1 - rt.shard_of(4)));
  EXPECT_FALSE(rt.group_split(3));
  EXPECT_FALSE(rt.group_split(4));
}

TEST(SplitApiTest, SequenceNumbersStayContinuousAcrossSplitAndMerge) {
  // Global tier: two emissions from the same definition, one on each side
  // of a split/merge cycle, must keep consecutive sequence numbers.
  RuntimeOptions options;
  options.shards = 2;
  ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyber, {0, 0}, options);
  for (const EventDefinition& def : split_definitions(ConsumptionMode::kConsume, "SQ")) {
    rt.add_definition(def);
  }
  std::vector<EventInstance> out;
  const auto drain = [&] {
    for (EventInstance& inst : rt.flush()) out.push_back(std::move(inst));
  };
  rt.ingest(core::Entity(obs(1, "SRa", 0, TimePoint(1000), {0, 0}, 80.0)), TimePoint(1000));
  drain();
  ASSERT_TRUE(rt.split_group(0, 1 - rt.shard_of(0)));
  rt.ingest(core::Entity(obs(1, "SRa", 1, TimePoint(2000), {0, 0}, 90.0)), TimePoint(2000));
  drain();
  ASSERT_TRUE(rt.merge_group(0));
  rt.ingest(core::Entity(obs(1, "SRa", 2, TimePoint(3000), {0, 0}, 95.0)), TimePoint(3000));
  drain();

  // Each arrival beats HOT's SRa threshold and WILD's (except the first,
  // 80 < 85): project HOT_SQ's instances and check the renumbering.
  std::vector<std::uint64_t> seqs;
  for (const EventInstance& inst : out) {
    if (inst.key.event == EventTypeId("HOT_SQ")) seqs.push_back(inst.key.seq);
  }
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[1], seqs[0] + 1);
  EXPECT_EQ(seqs[2], seqs[1] + 1);
}

}  // namespace
}  // namespace stem::runtime
