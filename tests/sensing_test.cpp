#include <gtest/gtest.h>

#include <memory>

#include "sensing/localization.hpp"
#include "sensing/phenomena.hpp"
#include "sensing/physical_event.hpp"
#include "sensing/sensor.hpp"
#include "sim/stats.hpp"

namespace stem::sensing {
namespace {

using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

TEST(FieldTest, UniformAndHotspot) {
  const UniformField uniform(21.0);
  EXPECT_DOUBLE_EQ(uniform.value({0, 0}, TimePoint(0)), 21.0);
  EXPECT_DOUBLE_EQ(uniform.value({100, -50}, TimePoint(999)), 21.0);

  const HotspotField hot(20.0, 80.0, {50, 50}, 10.0);
  EXPECT_NEAR(hot.value({50, 50}, TimePoint(0)), 100.0, 1e-9);  // peak at center
  EXPECT_LT(hot.value({80, 50}, TimePoint(0)), 30.0);           // decays
  EXPECT_GT(hot.value({55, 50}, TimePoint(0)), hot.value({70, 50}, TimePoint(0)));
}

TEST(SpreadingFireTest, GrowsAtConfiguredSpeed) {
  const SpreadingFire fire({0, 0}, TimePoint::epoch() + seconds(10), 2.0 /* m/s */);
  EXPECT_DOUBLE_EQ(fire.radius_at(TimePoint::epoch()), 0.0);
  EXPECT_DOUBLE_EQ(fire.radius_at(TimePoint::epoch() + seconds(10)), 0.0);
  EXPECT_DOUBLE_EQ(fire.radius_at(TimePoint::epoch() + seconds(15)), 10.0);
  EXPECT_DOUBLE_EQ(fire.radius_at(TimePoint::epoch() + seconds(20)), 20.0);

  // Inside the front: burning; far outside: near ambient.
  const TimePoint t = TimePoint::epoch() + seconds(15);
  EXPECT_DOUBLE_EQ(fire.value({5, 0}, t), 400.0);
  EXPECT_LT(fire.value({100, 0}, t), 25.0);
  EXPECT_FALSE(fire.footprint(TimePoint::epoch()).has_value());
  const auto fp = fire.footprint(t);
  ASSERT_TRUE(fp.has_value());
  EXPECT_TRUE(fp->contains({9, 0}));
  EXPECT_FALSE(fp->contains({11, 0}));
  EXPECT_THROW(SpreadingFire({0, 0}, TimePoint(0), -1.0), std::invalid_argument);
}

TEST(MovingObjectTest, InterpolatesAlongWaypoints) {
  // 10 m/s along a 100 m straight line starting at t=0.
  const MovingObject user("userA", {{0, 0}, {100, 0}}, TimePoint::epoch(), 10.0);
  EXPECT_TRUE(geom::almost_equal(user.position(TimePoint::epoch()), {0, 0}));
  EXPECT_TRUE(geom::almost_equal(user.position(TimePoint::epoch() + seconds(5)), {50, 0}));
  // Clamps at the final waypoint.
  EXPECT_TRUE(geom::almost_equal(user.position(TimePoint::epoch() + seconds(100)), {100, 0}));
}

TEST(MovingObjectTest, MultiSegmentPath) {
  const MovingObject user("u", {{0, 0}, {10, 0}, {10, 10}}, TimePoint::epoch(), 1.0);
  EXPECT_TRUE(geom::almost_equal(user.position(TimePoint::epoch() + seconds(10)), {10, 0}));
  EXPECT_TRUE(geom::almost_equal(user.position(TimePoint::epoch() + seconds(15)), {10, 5}));
  EXPECT_THROW(MovingObject("x", {}, TimePoint(0), 1.0), std::invalid_argument);
  EXPECT_THROW(MovingObject("x", {{0, 0}}, TimePoint(0), 0.0), std::invalid_argument);
}

TEST(MovingObjectTest, FirstEntryFindsZoneCrossing) {
  const MovingObject user("u", {{0, 0}, {100, 0}}, TimePoint::epoch(), 10.0);
  const geom::Polygon zone = geom::Polygon::rectangle({40, -5}, {60, 5});
  const auto entry = user.first_entry(zone, TimePoint::epoch(),
                                      TimePoint::epoch() + seconds(20), seconds(1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(*entry, TimePoint::epoch() + seconds(4));  // x=40 at t=4s

  const geom::Polygon far = geom::Polygon::rectangle({0, 50}, {10, 60});
  EXPECT_FALSE(user.first_entry(far, TimePoint::epoch(), TimePoint::epoch() + seconds(20),
                                seconds(1))
                   .has_value());
}

TEST(SwitchScheduleTest, StateAndIntervals) {
  const TimePoint t0 = TimePoint::epoch();
  const SwitchSchedule sched({t0 + seconds(10), t0 + seconds(40), t0 + seconds(60)});
  EXPECT_FALSE(sched.state(t0));
  EXPECT_TRUE(sched.state(t0 + seconds(10)));
  EXPECT_TRUE(sched.state(t0 + seconds(39)));
  EXPECT_FALSE(sched.state(t0 + seconds(40)));
  EXPECT_TRUE(sched.state(t0 + seconds(61)));  // stays on past last toggle

  const auto ivs = sched.on_intervals(t0 + seconds(100));
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0], time_model::TimeInterval(t0 + seconds(10), t0 + seconds(40)));
  EXPECT_EQ(ivs[1], time_model::TimeInterval(t0 + seconds(60), t0 + seconds(100)));
}

TEST(SensorTest, ScalarFieldSensorAddsBoundedNoise) {
  const auto field = std::make_shared<UniformField>(25.0);
  const ScalarFieldSensor sensor(core::SensorId("SRtemp"), field, 0.5);
  sim::Rng rng(3);
  sim::Summary s;
  for (int i = 0; i < 5000; ++i) {
    const auto attrs = sensor.sample({0, 0}, TimePoint(0), rng);
    ASSERT_TRUE(attrs.has_value());
    s.add(*attrs->number("value"));
  }
  EXPECT_NEAR(s.mean(), 25.0, 0.05);
  EXPECT_NEAR(s.stddev(), 0.5, 0.05);
}

TEST(SensorTest, RangeSensorRespectsMaxRange) {
  const auto user = std::make_shared<MovingObject>(
      "u", std::vector<Point>{{0, 0}, {100, 0}}, TimePoint::epoch(), 10.0);
  const RangeSensor sensor(core::SensorId("SRrange"), user, 20.0, 0.0);
  sim::Rng rng(1);
  // At t=0 the user is at (0,0); a mote at (5,0) sees range 5.
  const auto near = sensor.sample({5, 0}, TimePoint::epoch(), rng);
  ASSERT_TRUE(near.has_value());
  EXPECT_DOUBLE_EQ(*near->number("range"), 5.0);
  // At t=10s the user is at (100,0): out of range for that mote.
  EXPECT_FALSE(sensor.sample({5, 0}, TimePoint::epoch() + seconds(10), rng).has_value());
}

TEST(SensorTest, PresenceSensorErrorRates) {
  const auto user = std::make_shared<MovingObject>(
      "u", std::vector<Point>{{0, 0}}, TimePoint::epoch(), 1.0);
  const PresenceSensor sensor(core::SensorId("SRpres"), user, 10.0, 0.1, 0.05);
  sim::Rng rng(5);
  int in_hits = 0, out_hits = 0;
  for (int i = 0; i < 10000; ++i) {
    in_hits += *sensor.sample({5, 0}, TimePoint(0), rng)->number("present") > 0.5 ? 1 : 0;
    out_hits += *sensor.sample({50, 0}, TimePoint(0), rng)->number("present") > 0.5 ? 1 : 0;
  }
  EXPECT_NEAR(in_hits / 10000.0, 0.9, 0.02);   // 10% false negatives
  EXPECT_NEAR(out_hits / 10000.0, 0.05, 0.02); // 5% false positives
}

TEST(SensorTest, SwitchSensorReadsSchedule) {
  const auto sched = std::make_shared<SwitchSchedule>(
      std::vector<TimePoint>{TimePoint::epoch() + seconds(5)});
  const SwitchSensor sensor(core::SensorId("SRlight"), sched);
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(*sensor.sample({0, 0}, TimePoint::epoch(), rng)->number("on"), 0.0);
  EXPECT_DOUBLE_EQ(*sensor.sample({0, 0}, TimePoint::epoch() + seconds(6), rng)->number("on"),
                   1.0);
}

TEST(TrilaterationTest, ExactRangesRecoverPosition) {
  const Point truth{30, 40};
  std::vector<RangeMeasurement> ms;
  for (const Point anchor : {Point{0, 0}, Point{100, 0}, Point{0, 100}, Point{100, 100}}) {
    ms.push_back({anchor, geom::distance(anchor, truth)});
  }
  const auto result = trilaterate(ms);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->position.x, truth.x, 1e-6);
  EXPECT_NEAR(result->position.y, truth.y, 1e-6);
  EXPECT_NEAR(result->rms_residual, 0.0, 1e-6);
}

TEST(TrilaterationTest, NoisyRangesStayClose) {
  const Point truth{55, 20};
  sim::Rng rng(9);
  std::vector<RangeMeasurement> ms;
  for (const Point anchor :
       {Point{0, 0}, Point{100, 0}, Point{0, 100}, Point{100, 100}, Point{50, 50}}) {
    ms.push_back({anchor, geom::distance(anchor, truth) + rng.normal(0.0, 0.5)});
  }
  const auto result = trilaterate(ms);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->position.x, truth.x, 2.0);
  EXPECT_NEAR(result->position.y, truth.y, 2.0);
  EXPECT_GT(result->rms_residual, 0.0);
}

TEST(TrilaterationTest, RejectsDegenerateGeometry) {
  EXPECT_FALSE(trilaterate({}).has_value());
  EXPECT_FALSE(trilaterate({{{0, 0}, 5}, {{1, 1}, 5}}).has_value());
  // Collinear anchors: ambiguous solution.
  EXPECT_FALSE(
      trilaterate({{{0, 0}, 5}, {{10, 0}, 5}, {{20, 0}, 5}}).has_value());
}

TEST(GroundTruthTest, RecordAndQuery) {
  GroundTruth truth;
  PhysicalEvent fire;
  fire.id = core::EventTypeId("P_FIRE");
  fire.time = time_model::OccurrenceTime(TimePoint(100));
  truth.record(fire);
  PhysicalEvent fire2 = fire;
  fire2.time = time_model::OccurrenceTime(TimePoint(500));
  truth.record(fire2);

  EXPECT_EQ(truth.count(core::EventTypeId("P_FIRE")), 2u);
  EXPECT_EQ(truth.count(core::EventTypeId("P_NONE")), 0u);
  EXPECT_EQ(truth.of_type(core::EventTypeId("P_FIRE")).size(), 2u);

  const auto* latest = truth.latest_before(core::EventTypeId("P_FIRE"), TimePoint(300));
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->time.begin(), TimePoint(100));
  EXPECT_EQ(truth.latest_before(core::EventTypeId("P_FIRE"), TimePoint(50)), nullptr);
}

}  // namespace
}  // namespace stem::sensing
