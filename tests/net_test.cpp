#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "net/broker.hpp"
#include "net/network.hpp"
#include "runtime/sharded_runtime.hpp"

namespace stem::net {
namespace {

using core::Entity;
using core::EventInstance;
using core::EventInstanceKey;
using core::EventTypeId;
using core::ObserverId;
using time_model::milliseconds;
using time_model::TimePoint;

EventInstance make_instance(const char* event, std::uint64_t seq = 0) {
  EventInstance inst;
  inst.key = EventInstanceKey{ObserverId("SINK1"), EventTypeId(event), seq};
  inst.layer = core::Layer::kCyberPhysical;
  inst.gen_time = TimePoint(0);
  inst.est_time = time_model::OccurrenceTime(TimePoint(0));
  inst.est_location = geom::Location(geom::Point{1, 1});
  inst.attributes.set("value", 3.0);
  return inst;
}

struct NetFixture : ::testing::Test {
  NetFixture() : network(simulator, sim::Rng(7)) {}

  void add_node(const char* name) {
    network.register_node(NodeId(name), [this, n = std::string(name)](const Message& msg) {
      received.emplace_back(n, msg);
    });
  }

  sim::Simulator simulator;
  Network network;
  std::vector<std::pair<std::string, Message>> received;
};

TEST_F(NetFixture, DeliversOverLink) {
  add_node("a");
  add_node("b");
  network.connect(NodeId("a"), NodeId("b"), LinkSpec{});

  Message msg;
  msg.src = NodeId("a");
  msg.dst = NodeId("b");
  msg.payload = Entity(make_instance("X"));
  EXPECT_TRUE(network.send(std::move(msg)));
  EXPECT_TRUE(received.empty());  // not yet delivered
  simulator.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, "b");
  EXPECT_GE(simulator.now(), TimePoint(0) + milliseconds(2));  // base latency elapsed
  EXPECT_EQ(network.stats().sent, 1u);
  EXPECT_EQ(network.stats().delivered, 1u);
  EXPECT_GT(network.stats().bytes_sent, 0u);
}

TEST_F(NetFixture, RejectsUnknownRoutes) {
  add_node("a");
  add_node("b");
  Message msg;
  msg.src = NodeId("a");
  msg.dst = NodeId("b");
  msg.payload = Entity(make_instance("X"));
  EXPECT_THROW(network.send(std::move(msg)), std::invalid_argument);
  EXPECT_THROW(network.connect(NodeId("a"), NodeId("ghost"), LinkSpec{}), std::invalid_argument);
  EXPECT_THROW(network.register_node(NodeId("a"), [](const Message&) {}),
               std::invalid_argument);
}

TEST_F(NetFixture, DirectedLinkIsOneWay) {
  add_node("a");
  add_node("b");
  network.connect_directed(NodeId("a"), NodeId("b"), LinkSpec{});
  EXPECT_TRUE(network.linked(NodeId("a"), NodeId("b")));
  EXPECT_FALSE(network.linked(NodeId("b"), NodeId("a")));
}

TEST_F(NetFixture, LossyLinkDropsStatistically) {
  add_node("a");
  add_node("b");
  LinkSpec lossy;
  lossy.loss_prob = 0.5;
  network.connect(NodeId("a"), NodeId("b"), lossy);

  for (int i = 0; i < 1000; ++i) {
    Message msg;
    msg.src = NodeId("a");
    msg.dst = NodeId("b");
    msg.payload = Entity(make_instance("X", static_cast<std::uint64_t>(i)));
    network.send(std::move(msg));
  }
  simulator.run();
  EXPECT_EQ(network.stats().sent, 1000u);
  EXPECT_NEAR(static_cast<double>(network.stats().dropped), 500.0, 60.0);
  EXPECT_EQ(network.stats().delivered + network.stats().dropped, 1000u);
}

TEST_F(NetFixture, LatencyScalesWithSize) {
  add_node("a");
  add_node("b");
  LinkSpec slow;
  slow.base_latency = milliseconds(1);
  slow.jitter = time_model::Duration::zero();
  slow.bytes_per_ms = 10.0;  // very slow serialization
  network.connect(NodeId("a"), NodeId("b"), slow);

  Message big;
  big.src = NodeId("a");
  big.dst = NodeId("b");
  big.payload = Entity(make_instance("X"));
  big.bytes = 1000;
  network.send(std::move(big));
  simulator.run();
  // 1ms base + 1000/10 = 100ms serialization.
  EXPECT_EQ(simulator.now(), TimePoint(0) + milliseconds(101));
}

TEST(EstimateSizeTest, OrdersPayloadsSensibly) {
  EventInstance small = make_instance("X");
  EventInstance with_field = make_instance("F");
  with_field.est_location = geom::Location(geom::Polygon::disk({0, 0}, 5.0, 32));

  const std::size_t s1 = estimate_size(Payload(Entity(small)));
  const std::size_t s2 = estimate_size(Payload(Entity(with_field)));
  EXPECT_GT(s2, s1);  // field events carry their polygon

  Command cmd;
  cmd.target = NodeId("AR1");
  cmd.verb = "close";
  EXPECT_GT(estimate_size(Payload(cmd)), 0u);
  EXPECT_GT(estimate_size(Payload(Subscribe{"topic", NodeId("n")})), 0u);
}

struct BrokerFixture : NetFixture {
  BrokerFixture() : broker(network, NodeId("broker")) {
    add_node("pub");
    add_node("sub1");
    add_node("sub2");
    network.connect(NodeId("pub"), NodeId("broker"), LinkSpec{});
    network.connect(NodeId("sub1"), NodeId("broker"), LinkSpec{});
    network.connect(NodeId("sub2"), NodeId("broker"), LinkSpec{});
  }
  Broker broker;
};

TEST_F(BrokerFixture, FansOutToSubscribers) {
  broker.subscribe("CP1", NodeId("sub1"));
  broker.subscribe("CP1", NodeId("sub2"));
  broker.subscribe("CP1", NodeId("sub2"));  // duplicate ignored
  EXPECT_EQ(broker.subscriber_count("CP1"), 2u);

  broker.publish(NodeId("pub"), Entity(make_instance("CP1")));
  simulator.run();
  EXPECT_EQ(broker.published(), 1u);
  EXPECT_EQ(broker.fanned_out(), 2u);
  ASSERT_EQ(received.size(), 2u);
}

TEST_F(BrokerFixture, TopicIsolation) {
  broker.subscribe("CP1", NodeId("sub1"));
  broker.subscribe("CP2", NodeId("sub2"));
  broker.publish(NodeId("pub"), Entity(make_instance("CP2")));
  simulator.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, "sub2");
}

TEST_F(BrokerFixture, DoesNotEchoToPublisher) {
  broker.subscribe("CP1", NodeId("pub"));
  broker.subscribe("CP1", NodeId("sub1"));
  broker.publish(NodeId("pub"), Entity(make_instance("CP1")));
  simulator.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, "sub1");
}

TEST_F(BrokerFixture, CommandsRouteByTargetTopic) {
  broker.subscribe(Broker::command_topic(NodeId("AR1")), NodeId("sub1"));
  Command cmd;
  cmd.target = NodeId("AR1");
  cmd.verb = "close_window";
  broker.publish(NodeId("pub"), cmd);
  simulator.run();
  ASSERT_EQ(received.size(), 1u);
  const auto* delivered = std::get_if<Command>(&received[0].second.payload);
  ASSERT_NE(delivered, nullptr);
  EXPECT_EQ(delivered->verb, "close_window");
}

TEST_F(BrokerFixture, RemoteSubscribeViaNetwork) {
  // A node can subscribe by sending a Subscribe payload to the broker.
  Message msg;
  msg.src = NodeId("sub1");
  msg.dst = NodeId("broker");
  msg.payload = Subscribe{"CP9", NodeId("sub1")};
  network.send(std::move(msg));
  simulator.run();
  EXPECT_EQ(broker.subscriber_count("CP9"), 1u);
}

TEST_F(BrokerFixture, ObservationTopicUsesSensorName) {
  core::PhysicalObservation obs;
  obs.mote = ObserverId("MT1");
  obs.sensor = core::SensorId("SRtemp");
  EXPECT_EQ(Broker::topic_of(Entity(obs)), "obs:SRtemp");
  EXPECT_EQ(Broker::topic_of(Entity(make_instance("CP1"))), "CP1");
  EXPECT_EQ(Broker::command_topic(NodeId("AR2")), "cmd:AR2");
}

TEST_F(BrokerFixture, AttachedRuntimeMatchesSequentialEngine) {
  // Entities published through the broker are ingested into the attached
  // sharded runtime at their delivery time; the merged stream must equal a
  // sequential engine observing the same entities at the same times. Zero
  // latency/jitter links make delivery times equal the scheduled publish
  // times, so the reference is exact.
  LinkSpec instant;
  instant.base_latency = milliseconds(0);
  instant.jitter = milliseconds(0);
  instant.bytes_per_ms = 0.0;  // no size-dependent term: exact delivery times
  add_node("pub2");
  network.connect(NodeId("pub2"), NodeId("broker"), instant);

  const auto make_def = [](const char* id, const char* sensor, double threshold) {
    return core::EventDefinition{
        EventTypeId(id),
        {{"x", core::SlotFilter::observation(core::SensorId(sensor))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt,
                     threshold),
        time_model::seconds(60),
        {},
        core::ConsumptionMode::kConsume};
  };

  runtime::RuntimeOptions options;
  options.shards = 4;
  runtime::ShardedEngineRuntime rt(ObserverId("CCU"), core::Layer::kCyber, {0, 0}, options);
  core::DetectionEngine sequential(ObserverId("CCU"), core::Layer::kCyber, {0, 0});
  for (const char* sensor : {"SRa", "SRb"}) {
    for (int i = 0; i < 3; ++i) {
      const std::string id = std::string("HOT_") + sensor + std::to_string(i);
      rt.add_definition(make_def(id.c_str(), sensor, 20.0 * (i + 1)));
      sequential.add_definition(make_def(id.c_str(), sensor, 20.0 * (i + 1)));
    }
  }
  // Default (no forwarding): this test reads the merged stream off the
  // runtime directly (forwarding to subscribers is covered below).
  broker.attach_runtime(rt);

  // Schedule publishes at known times: singles plus one EntityBatch (the
  // WSN relay framing that topic fan-out drops but the runtime ingests).
  std::vector<std::pair<TimePoint, Entity>> expected_feed;
  for (int i = 0; i < 40; ++i) {
    core::PhysicalObservation o;
    o.mote = ObserverId("MT1");
    o.sensor = core::SensorId(i % 2 == 0 ? "SRa" : "SRb");
    o.seq = static_cast<std::uint64_t>(i);
    const TimePoint at = TimePoint(0) + milliseconds(10 * (i + 1));
    o.time = at;
    o.location = geom::Location(geom::Point{1.0 * i, 0});
    o.attributes.set("value", 7.0 * (i % 13));
    expected_feed.emplace_back(at, Entity(std::move(o)));
  }
  for (std::size_t i = 0; i + 4 <= expected_feed.size(); i += 4) {
    const TimePoint at = expected_feed[i + 3].first;
    if (i % 8 == 0) {
      EntityBatch batch;
      for (std::size_t k = i; k < i + 4; ++k) batch.entities.push_back(expected_feed[k].second);
      simulator.schedule_at(at, [this, batch] { broker.publish(NodeId("pub2"), batch); });
      // The whole batch is ingested at the batch's delivery time.
      for (std::size_t k = i; k < i + 4; ++k) expected_feed[k].first = at;
    } else {
      for (std::size_t k = i; k < i + 4; ++k) {
        const Entity& e = expected_feed[k].second;
        simulator.schedule_at(expected_feed[k].first,
                              [this, e] { broker.publish(NodeId("pub2"), e); });
      }
    }
  }
  simulator.run();

  std::vector<EventInstance> want;
  for (const auto& [at, entity] : expected_feed) {
    for (EventInstance& inst : sequential.observe(entity, at)) want.push_back(std::move(inst));
  }
  const std::vector<EventInstance> got = rt.flush();
  ASSERT_EQ(got.size(), want.size());
  ASSERT_GT(got.size(), 0u);
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].key, want[k].key);
    EXPECT_EQ(got[k].gen_time, want[k].gen_time);
  }
}

TEST_F(BrokerFixture, ForwardsCascadedRuntimeInstancesToSubscribers) {
  // Cascading runtime behind the broker: raw observations published into
  // the broker become HOT (level 1) and ESC (level 2, derived from HOT)
  // instances, and *both* levels fan out to their topics' subscribers
  // with provenance intact — without being re-ingested (no duplicate
  // detections from the forwarding loop).
  core::EngineOptions engine_options;
  engine_options.max_cascade_depth = 4;
  runtime::RuntimeOptions options;
  options.shards = 2;
  options.cascade = true;
  options.engine = engine_options;
  runtime::ShardedEngineRuntime rt(ObserverId("CCU"), core::Layer::kCyber, {0, 0}, options);
  rt.add_definition(core::EventDefinition{
      EventTypeId("HOT"),
      {{"x", core::SlotFilter::observation(core::SensorId("SRa"))}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 50.0),
      time_model::seconds(60),
      {},
      core::ConsumptionMode::kConsume});
  rt.add_definition(core::EventDefinition{
      EventTypeId("ESC"),
      {{"h", core::SlotFilter::instance_of(EventTypeId("HOT"))}},
      core::c_confidence(core::ValueAggregate::kMin, {0}, core::RelationalOp::kGe, 0.0),
      time_model::seconds(60),
      {},
      core::ConsumptionMode::kConsume});
  broker.attach_runtime(rt, /*forward=*/true);
  broker.subscribe("HOT", NodeId("sub1"));
  broker.subscribe("ESC", NodeId("sub2"));

  core::PhysicalObservation o;
  o.mote = ObserverId("MT1");
  o.sensor = core::SensorId("SRa");
  o.seq = 0;
  o.time = TimePoint(1000);
  o.location = geom::Location(geom::Point{2, 3});
  o.attributes.set("value", 80.0);
  broker.publish(NodeId("pub"), Entity(std::move(o)));
  simulator.run();
  // The merge is asynchronous: drain the tail, then deliver the fan-out.
  EXPECT_EQ(broker.drain_runtime() + received.size(), 2u);
  simulator.run();

  ASSERT_EQ(received.size(), 2u);
  const auto find = [&](const std::string& node) -> const EventInstance& {
    for (const auto& [name, msg] : received) {
      if (name == node) return std::get<Entity>(msg.payload).instance();
    }
    ADD_FAILURE() << "no message delivered to " << node;
    static const EventInstance none{};
    return none;
  };
  const EventInstance& hot = find("sub1");
  EXPECT_EQ(hot.key.event, EventTypeId("HOT"));
  const EventInstance& esc = find("sub2");
  EXPECT_EQ(esc.key.event, EventTypeId("ESC"));
  // Provenance intact through the cascade and the forwarding hop.
  ASSERT_EQ(esc.provenance.size(), 1u);
  EXPECT_EQ(esc.provenance[0], hot.key);
  // Exactly one HOT and one ESC were ever produced: forwarded instances
  // were not re-ingested.
  EXPECT_EQ(rt.stats().instances, 2u);
  EXPECT_EQ(rt.stats().cascade_reingested, 1u);
}

TEST(LinkKeyHash, TrivialPermutationsDoNotCollide) {
  const detail::LinkKeyHash h;
  // A symmetric combiner (plain XOR of the two string hashes) collapses
  // every one of these pairs; the boost-style combine must not.
  EXPECT_NE(h({"a", "b"}), h({"b", "a"}));
  EXPECT_NE(h({"mote1", "sink"}), h({"sink", "mote1"}));
  EXPECT_NE(h({"ab", ""}), h({"", "ab"}));
  EXPECT_NE(h({"x", "x"}), h({"", ""}));  // XOR of equal hashes is always 0
  EXPECT_EQ(h({"a", "b"}), h({"a", "b"}));  // still deterministic
  // The raw combiner keeps argument order significant too.
  EXPECT_NE(detail::LinkKeyHash::combine(1, 2), detail::LinkKeyHash::combine(2, 1));
  EXPECT_NE(detail::LinkKeyHash::combine(0, 0), detail::LinkKeyHash::combine(1, 1));
}

TEST_F(NetFixture, PerLinkCountersTrackEachDirectionSeparately) {
  add_node("a");
  add_node("b");
  add_node("c");
  network.connect(NodeId("a"), NodeId("b"), LinkSpec{milliseconds(2), milliseconds(0), 0.0, 0.0});
  // a -> c loses everything: drops are attributed to that link alone.
  network.connect(NodeId("a"), NodeId("c"), LinkSpec{milliseconds(2), milliseconds(0), 1.0, 0.0});

  const auto send = [&](const char* from, const char* to) {
    Message msg;
    msg.src = NodeId(from);
    msg.dst = NodeId(to);
    msg.payload = Entity(make_instance("X"));
    network.send(std::move(msg));
  };
  send("a", "b");
  send("a", "b");
  send("b", "a");
  send("a", "c");
  send("a", "c");
  send("a", "c");
  simulator.run();

  const NetworkStats& stats = network.stats();
  EXPECT_EQ(stats.link(NodeId("a"), NodeId("b")).sent, 2u);
  EXPECT_EQ(stats.link(NodeId("a"), NodeId("b")).delivered, 2u);
  EXPECT_EQ(stats.link(NodeId("a"), NodeId("b")).dropped, 0u);
  EXPECT_EQ(stats.link(NodeId("b"), NodeId("a")).sent, 1u);
  EXPECT_EQ(stats.link(NodeId("b"), NodeId("a")).delivered, 1u);
  EXPECT_EQ(stats.link(NodeId("a"), NodeId("c")).sent, 3u);
  EXPECT_EQ(stats.link(NodeId("a"), NodeId("c")).delivered, 0u);
  EXPECT_EQ(stats.link(NodeId("a"), NodeId("c")).dropped, 3u);
  // Never-used direction reads as zeros without materializing an entry.
  EXPECT_EQ(stats.link(NodeId("c"), NodeId("a")).sent, 0u);
  // Totals remain the sum over links.
  EXPECT_EQ(stats.sent, 6u);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.dropped, 3u);
}

}  // namespace
}  // namespace stem::net
