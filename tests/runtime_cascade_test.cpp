#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ordering_oracle.hpp"
#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

/// Differential cascade suite: with RuntimeOptions::cascade enabled, the
/// sharded runtime's merged stream must be *exactly* equal — same
/// instances, same order, same sequence numbers — to a single sequential
/// DetectionEngine driven through observe_cascading() on the same
/// arrivals, across shard counts {1, 2, 4, 8} x ingest batch sizes
/// {1, 64} x cascade depth caps {1, 2, 4} x seeds, both consumption
/// modes, with wildcard definitions that re-match their own output (the
/// cycle guard) and with forced mid-stream migrations of instance-typed
/// definition groups. Mirrors tests/runtime_shard_test.cpp, with the
/// engine's cascading path — itself differentially verified against the
/// hand-rolled frontier loop in tests/engine_cascade_test.cpp — as the
/// reference.

namespace stem::runtime {
namespace {

using core::ConsumptionMode;
using core::DetectionEngine;
using core::EventDefinition;
using core::EventInstance;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

core::PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq,
                              TimePoint t, Point p, double value) {
  core::PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

EventDefinition with_value_attr(EventDefinition def, std::vector<core::SlotIndex> slots) {
  def.synthesis.attributes.push_back(
      core::AttributeRule{"value", core::ValueAggregate::kMax, "value", std::move(slots)});
  return def;
}

/// A multi-level mix that stresses every cascade rule: a co-located L1
/// group (two defs sharing type HOT), an L2 self-join over HOT instances
/// (CP — the *instance-typed* group the migration test moves), an L3
/// alarm over CP, a wildcard auditor that re-matches its own output above
/// 90 (terminates via the depth cap), and a wildcard+keyed join whose
/// feedback slot interleaves instances with raw arrivals.
std::vector<EventDefinition> cascade_definitions(ConsumptionMode mode, const std::string& tag) {
  std::vector<EventDefinition> defs;
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      mode},
      {0}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("HOT_" + tag),
                      {{"x", SlotFilter::observation(SensorId("SRb"))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 40.0),
                      seconds(60),
                      {},
                      mode},
      {0}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("CP_" + tag),
                      {{"a", SlotFilter::instance_of(EventTypeId("HOT_" + tag))},
                       {"b", SlotFilter::instance_of(EventTypeId("HOT_" + tag))}},
                      core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                   core::c_distance(0, 1, core::RelationalOp::kLt, 10.0)}),
                      seconds(5),
                      {},
                      mode},
      {0, 1}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("ALM_" + tag),
                      {{"f", SlotFilter::instance_of(EventTypeId("CP_" + tag))}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 50.0),
                      seconds(10),
                      {},
                      mode},
      {0}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("WILD_" + tag),
                      {{"w", SlotFilter::any()}},
                      core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                   core::RelationalOp::kGt, 90.0),
                      seconds(60),
                      {},
                      mode},
      {0}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("WJ_" + tag),
                      {{"w", SlotFilter::any()},
                       {"b", SlotFilter::observation(SensorId("SRb"))}},
                      core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                   core::c_distance(0, 1, core::RelationalOp::kLt, 6.0)}),
                      seconds(3),
                      {},
                      mode},
      {0, 1}));
  return defs;
}

struct Stream {
  std::vector<core::Entity> entities;
  std::vector<TimePoint> nows;
};

Stream make_stream(std::uint64_t seed, int n, bool skewed = false) {
  sim::Rng rng(seed);
  Stream s;
  TimePoint now = TimePoint::epoch();
  const char* sensors[] = {"SRa", "SRb", "SRc"};
  for (int i = 0; i < n; ++i) {
    now += time_model::milliseconds(100 + rng.uniform_int(0, 900));
    // Skewed: 90% of arrivals hit SRa (pins the HOT group's shard).
    const auto* sensor = skewed ? (rng.uniform() < 0.9 ? "SRa" : sensors[rng.uniform_int(1, 2)])
                                : sensors[rng.uniform_int(0, 2)];
    const TimePoint t = now - time_model::milliseconds(rng.uniform_int(0, 1500));
    s.entities.push_back(core::Entity(obs(static_cast<int>(rng.uniform_int(1, 4)), sensor,
                                          static_cast<std::uint64_t>(i), t,
                                          {rng.uniform(0, 16), rng.uniform(0, 16)},
                                          rng.uniform(0, 100))));
    s.nows.push_back(now);
  }
  return s;
}

/// One forced migration: after `at` arrivals, move the group of
/// definition `def` to the shard `hop` places clockwise from its host.
struct Migration {
  std::size_t at = 0;
  std::size_t def = 0;
  std::size_t hop = 1;
};

void run_differential(std::uint64_t seed, std::size_t shards, std::size_t batch_size,
                      std::size_t depth, ConsumptionMode mode, const std::string& tag,
                      int arrivals = 192, bool skewed = false,
                      const std::vector<Migration>& migrations = {},
                      std::size_t rebalance_epoch = 0, std::size_t queue_capacity = 4096,
                      std::uint32_t pipeline = 1) {
  core::EngineOptions engine_options;
  engine_options.max_cascade_depth = depth;

  RuntimeOptions options;
  options.shards = shards;
  options.cascade = true;
  options.engine = engine_options;
  options.rebalance_epoch = rebalance_epoch;
  options.queue_capacity = queue_capacity;
  options.cascade_pipeline = pipeline;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0},
                             engine_options);
  for (const EventDefinition& def : cascade_definitions(mode, tag)) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  const Stream stream = make_stream(seed, arrivals, skewed);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst :
         sequential.observe_cascading(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }

  std::vector<std::string> got;
  const auto collect = [&](std::vector<EventInstance> instances) {
    for (const EventInstance& inst : instances) got.push_back(describe(inst));
  };
  std::size_t next_migration = 0;
  std::size_t forced = 0;
  for (std::size_t i = 0; i < stream.entities.size(); i += batch_size) {
    while (next_migration < migrations.size() && migrations[next_migration].at <= i) {
      const Migration& mig = migrations[next_migration++];
      const std::size_t to = (sharded.shard_of(mig.def) + mig.hop) % sharded.shard_count();
      if (sharded.migrate_definition(mig.def, to)) ++forced;
    }
    const std::size_t n = std::min(batch_size, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
    collect(sharded.poll());
  }
  collect(sharded.flush());

  const std::string ctx = tag + " seed=" + std::to_string(seed) +
                          " shards=" + std::to_string(shards) +
                          " batch=" + std::to_string(batch_size) +
                          " depth=" + std::to_string(depth) +
                          " pipeline=" + std::to_string(pipeline);
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k], want[k]) << ctx << " instance " << k;
  }

  // Cascade accounting matches the sequential reference exactly: the
  // coordinator re-ingests (and cap-truncates) precisely the instances
  // the engine's own cascading path would.
  const RuntimeStats stats = sharded.stats();
  EXPECT_EQ(stats.instances, want.size()) << ctx;
  EXPECT_EQ(stats.cascade_reingested, sequential.stats().cascade_reingested) << ctx;
  EXPECT_EQ(stats.cascade_truncated, sequential.stats().cascade_truncated) << ctx;
  EXPECT_EQ(stats.migrations >= forced, true) << ctx;
  // The knob is honored in both directions: K=1 never overlaps closures;
  // K>1 with batched ingest does overlap them (activation only needs a
  // deep-enough pending window, not any worker progress).
  if (pipeline > 1 && batch_size >= 16) {
    EXPECT_GT(stats.closures_in_flight_max, 1u) << ctx;
  } else if (pipeline <= 1) {
    EXPECT_LE(stats.closures_in_flight_max, 1u) << ctx;
  }
  if (stats.cascade_reingested > 0) {
    EXPECT_GT(stats.cascade_feedback_batches, 0u) << ctx;
  }
}

class CascadeVsSequentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CascadeVsSequentialTest, UnrestrictedStreamsMatch) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t batch : {1u, 64u}) {
      for (const std::size_t depth : {1u, 2u, 4u}) {
        run_differential(GetParam(), shards, batch, depth, ConsumptionMode::kUnrestricted, "U");
      }
    }
  }
}

TEST_P(CascadeVsSequentialTest, ConsumeStreamsMatch) {
  for (const std::size_t shards : {2u, 8u}) {
    for (const std::size_t batch : {1u, 64u}) {
      for (const std::size_t depth : {2u, 4u}) {
        run_differential(GetParam() ^ 0x5eedULL, shards, batch, depth, ConsumptionMode::kConsume,
                         "C");
      }
    }
  }
}

TEST_P(CascadeVsSequentialTest, TightQueueBackpressureStreamsMatch) {
  // Deep cascade + an 8-arrival inbox: ingest blocks on the workers while
  // closures drain through the same shards. Ordering must survive.
  core::EngineOptions engine_options;
  engine_options.max_cascade_depth = 4;
  RuntimeOptions options;
  options.shards = 4;
  options.cascade = true;
  options.queue_capacity = 8;
  options.engine = engine_options;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0},
                             engine_options);
  for (const EventDefinition& def :
       cascade_definitions(ConsumptionMode::kUnrestricted, "Q")) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }
  const Stream stream = make_stream(GetParam() ^ 0xbacULL, 192);
  std::vector<std::string> want;
  for (std::size_t i = 0; i < stream.entities.size(); ++i) {
    for (const EventInstance& inst :
         sequential.observe_cascading(stream.entities[i], stream.nows[i])) {
      want.push_back(describe(inst));
    }
  }
  for (std::size_t i = 0; i < stream.entities.size(); i += 64) {
    const std::size_t n = std::min<std::size_t>(64, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
  }
  std::vector<std::string> got;
  for (EventInstance& inst : sharded.flush()) got.push_back(describe(inst));
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) ASSERT_EQ(got[k], want[k]) << k;
}

TEST_P(CascadeVsSequentialTest, TinyCapacityConstantWrapStreamsMatch) {
  // capacity {1,2} with cascading: arrivals, feedback, and the closure
  // frontier all contend while the ring wraps on every push and producers
  // sit in permanent backpressure. Migrations ride along so control items
  // are exercised under the same pressure.
  for (const std::size_t capacity : {1u, 2u}) {
    run_differential(GetParam() ^ 0x71c0ULL, 4, 1, 4, ConsumptionMode::kUnrestricted,
                     "T" + std::to_string(capacity), 128, /*skewed=*/true,
                     {{32, 2, 1}, {64, 0, 2}}, 0, capacity);
    run_differential(GetParam() ^ 0x71c1ULL, 2, 16, 2, ConsumptionMode::kConsume,
                     "T" + std::to_string(capacity) + "b", 128, /*skewed=*/false, {}, 0,
                     capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadeVsSequentialTest, ::testing::Values(1u, 2u, 3u));

/// Forced mid-stream migrations of instance-typed definition groups (the
/// CP self-join consumes HOT *instances*; its group moves twice, the HOT
/// group once) while cascades are in flight: the stream must stay
/// byte-identical — feedback for pre-barrier stamps reaches the group's
/// old shard, post-barrier feedback its new one.
TEST(CascadeMigration, InstanceTypedGroupsMoveMidStream) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    run_differential(seed, 4, 16, 4, ConsumptionMode::kUnrestricted, "M", 256,
                     /*skewed=*/true,
                     {{64, 2, 1}, {128, 0, 2}, {192, 2, 3}});
    run_differential(seed ^ 0x77ULL, 4, 16, 4, ConsumptionMode::kConsume, "MC", 256,
                     /*skewed=*/true,
                     {{64, 2, 1}, {128, 0, 2}, {192, 2, 3}});
  }
}

/// Automatic rebalancing stays exact in cascade mode: the policy may move
/// any group — instance-typed ones included — at epoch barriers while the
/// skewed stream cascades.
TEST(CascadeMigration, AutomaticRebalancingStaysExact) {
  run_differential(21u, 4, 16, 4, ConsumptionMode::kUnrestricted, "R", 256, /*skewed=*/true, {},
                   /*rebalance_epoch=*/48);
}

// ---------------------------------------------------------------------------
// Pipelined closures: cascade x ordering tier x pipeline depth.
// ---------------------------------------------------------------------------

/// Relaxed-tier cascade leg: the merged stream is checked against the
/// sequential cascading engine through the ordering oracle's per-tier
/// projection (byte-exact / per-definition / multiset), with the
/// watermark audited per poll — sub-stamped early releases from still
/// in-flight closures must stay above every promised watermark.
void run_tier_matrix(std::uint64_t seed, OrderingTier tier, std::uint32_t pipeline,
                     std::size_t depth, const std::string& tag) {
  core::EngineOptions engine_options;
  engine_options.max_cascade_depth = depth;

  RuntimeOptions options;
  options.shards = 4;
  options.cascade = true;
  options.engine = engine_options;
  options.ordering = tier;
  options.cascade_pipeline = pipeline;
  ShardedEngineRuntime sharded(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
  DetectionEngine sequential(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0},
                             engine_options);
  for (const EventDefinition& def :
       cascade_definitions(ConsumptionMode::kUnrestricted, tag)) {
    sharded.add_definition(def);
    sequential.add_definition(def);
  }

  const Stream stream = make_stream(seed, 192);
  const std::vector<oracle::Ref> want = oracle::sequential_reference(
      sequential, stream.entities, stream.nows, /*cascade=*/true, /*canonicalize_seq=*/false);

  const std::string ctx = tag + " seed=" + std::to_string(seed) +
                          " tier=" + std::to_string(static_cast<int>(tier)) +
                          " pipeline=" + std::to_string(pipeline) +
                          " depth=" + std::to_string(depth);
  oracle::WatermarkAudit audit(ctx);
  std::vector<TaggedInstance> got_tagged;
  for (std::size_t i = 0; i < stream.entities.size(); i += 16) {
    const std::size_t n = std::min<std::size_t>(16, stream.entities.size() - i);
    sharded.ingest_batch(std::span(stream.entities).subspan(i, n),
                         std::span(stream.nows).subspan(i, n));
    std::vector<TaggedInstance> released = sharded.poll_tagged();
    audit.observe(released);
    audit.after_poll(sharded.low_watermark());
    got_tagged.insert(got_tagged.end(), std::make_move_iterator(released.begin()),
                      std::make_move_iterator(released.end()));
  }
  std::vector<TaggedInstance> released = sharded.flush_tagged();
  audit.observe(released);
  audit.after_poll(sharded.low_watermark());
  got_tagged.insert(got_tagged.end(), std::make_move_iterator(released.begin()),
                    std::make_move_iterator(released.end()));
  audit.at_quiescence(sharded.low_watermark(), sharded.stats().arrivals);

  const std::vector<oracle::Ref> got = oracle::to_refs(got_tagged, /*canonicalize_seq=*/false);
  switch (tier) {
    case OrderingTier::kGlobalTotalOrder:
      oracle::check_equal(got, want, ctx);
      break;
    case OrderingTier::kPerDefinitionOrder:
      oracle::check_per_def(got, want, ctx);
      break;
    case OrderingTier::kUnorderedWatermarked:
      oracle::check_multiset(got, want, ctx);
      break;
  }
}

class CascadePipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CascadePipelineTest, GlobalTierStaysByteExactAtEveryPipelineDepth) {
  for (const std::uint32_t pipeline : {2u, 4u, 8u}) {
    for (const std::size_t depth : {1u, 2u, 4u}) {
      run_differential(GetParam(), 4, 16, depth, ConsumptionMode::kUnrestricted,
                       "P" + std::to_string(pipeline), 192, /*skewed=*/false, {}, 0, 4096,
                       pipeline);
    }
  }
}

TEST_P(CascadePipelineTest, PipelinedConsumeAndBackpressureStayExact) {
  run_differential(GetParam() ^ 0x9e1ULL, 4, 16, 4, ConsumptionMode::kConsume, "PC", 192,
                   /*skewed=*/false, {}, 0, 4096, 4);
  // Tiny inboxes under overlap: admitted-ahead arrivals and feedback
  // contend for the same slots while several closures are open.
  run_differential(GetParam() ^ 0x9e2ULL, 4, 16, 4, ConsumptionMode::kUnrestricted, "PQ", 128,
                   /*skewed=*/true, {}, 0, /*queue_capacity=*/2, 4);
}

TEST_P(CascadePipelineTest, PipelinedMigrationsStayExact) {
  // Mid-stream migrations while up to four closures overlap: post-barrier
  // arrivals fall back to conservative admission, pre-barrier closures
  // keep routing through their stamp's placement version.
  run_differential(GetParam() ^ 0xa11ULL, 4, 16, 4, ConsumptionMode::kUnrestricted, "PM", 256,
                   /*skewed=*/true, {{64, 2, 1}, {128, 0, 2}, {192, 2, 3}}, 0, 4096, 4);
}

TEST_P(CascadePipelineTest, TierMatrixHoldsUnderPipelining) {
  for (const OrderingTier tier :
       {OrderingTier::kGlobalTotalOrder, OrderingTier::kPerDefinitionOrder,
        OrderingTier::kUnorderedWatermarked}) {
    for (const std::uint32_t pipeline : {1u, 4u}) {
      for (const std::size_t depth : {1u, 4u}) {
        run_tier_matrix(GetParam(), tier, pipeline, depth, "TM");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadePipelineTest, ::testing::Values(31u, 32u, 33u));

/// Destroying the runtime right after issuing a migration (no flush) must
/// not deadlock: the destination worker may already be blocked in its
/// receive-side ticket wait, so exiting workers complete the handshake
/// (send controls are drained on stop). Several rounds to catch the race
/// window between issue and worker pickup.
TEST(CascadeMigration, DestructionCompletesInFlightHandshakes) {
  for (std::uint64_t round = 0; round < 24; ++round) {
    core::EngineOptions engine_options;
    engine_options.max_cascade_depth = 4;
    RuntimeOptions options;
    options.shards = 4;
    options.cascade = true;
    options.engine = engine_options;
    ShardedEngineRuntime rt(ObserverId("OB"), core::Layer::kCyberPhysical, {0, 0}, options);
    for (const EventDefinition& def :
         cascade_definitions(ConsumptionMode::kUnrestricted, "D")) {
      rt.add_definition(def);
    }
    const Stream stream = make_stream(round + 100, 8);
    rt.ingest_batch(stream.entities, stream.nows);
    rt.migrate_definition(2, (rt.shard_of(2) + 1 + round % 3) % rt.shard_count());
    // No flush: the runtime is torn down with the control pair possibly
    // still queued behind gated arrivals.
  }
}

}  // namespace
}  // namespace stem::runtime
