#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "sim/random.hpp"

/// Engine-level hierarchical cascade (observe_cascading): the in-engine
/// re-ingestion path must reproduce the hand-rolled caller-side frontier
/// loop it replaced (FlatCollector / SinkNode / CCU), assign hierarchical
/// sub-stamps (depth, emit_index), terminate cyclic definitions at the
/// depth cap, and count cap truncations in EngineStats.

namespace stem::core {
namespace {

using geom::Location;
using geom::Point;
using time_model::seconds;
using time_model::TimePoint;

std::string describe(const EventInstance& i) {
  std::ostringstream os;
  os << i.key << " layer=" << static_cast<int>(i.layer) << " gen=" << i.gen_time
     << " t=" << i.est_time << " l=" << i.est_location << " rho=" << i.confidence
     << " V=" << i.attributes << " from=[";
  for (const auto& p : i.provenance) os << p << ";";
  os << "]";
  return os.str();
}

PhysicalObservation obs(int mote, const std::string& sensor, std::uint64_t seq, TimePoint t,
                        Point p, double value) {
  PhysicalObservation o;
  o.mote = ObserverId("MT" + std::to_string(mote));
  o.sensor = SensorId(sensor);
  o.seq = seq;
  o.time = t;
  o.location = Location(p);
  o.attributes.set("value", value);
  return o;
}

EventDefinition with_value_attr(EventDefinition def, std::vector<SlotIndex> slots) {
  def.synthesis.attributes.push_back(
      AttributeRule{"value", ValueAggregate::kMax, "value", std::move(slots)});
  return def;
}

/// Acyclic three-level chain: obs(SRa|SRb) -> HOT -> CP (pair join over
/// HOT instances) -> ALM. Matches the paper's mote -> sink -> CCU fan-in,
/// hosted by one engine.
std::vector<EventDefinition> chain_definitions(ConsumptionMode mode) {
  std::vector<EventDefinition> defs;
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("HOT"),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      mode},
      {0}));
  // Same event type, different sensor: shares HOT's sequence counter.
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("HOT"),
                      {{"x", SlotFilter::observation(SensorId("SRb"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 40.0),
                      seconds(60),
                      {},
                      mode},
      {0}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("CP"),
                      {{"a", SlotFilter::instance_of(EventTypeId("HOT"))},
                       {"b", SlotFilter::instance_of(EventTypeId("HOT"))}},
                      c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                             c_distance(0, 1, RelationalOp::kLt, 10.0)}),
                      seconds(5),
                      {},
                      mode},
      {0, 1}));
  defs.push_back(with_value_attr(
      EventDefinition{EventTypeId("ALM"),
                      {{"f", SlotFilter::instance_of(EventTypeId("CP"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 50.0),
                      seconds(10),
                      {},
                      mode},
      {0}));
  return defs;
}

/// The caller-side re-feed loop this PR deleted from the node classes,
/// kept here as the reference semantics (no depth cap — callers must use
/// acyclic definitions).
std::vector<EventInstance> reference_cascade(DetectionEngine& engine, const Entity& entity,
                                             TimePoint now) {
  std::vector<EventInstance> out;
  std::vector<EventInstance> frontier = engine.observe(entity, now);
  while (!frontier.empty()) {
    std::vector<EventInstance> next;
    for (auto& inst : frontier) {
      out.push_back(inst);
      auto derived = engine.observe(Entity(std::move(inst)), now);
      for (auto& d : derived) next.push_back(std::move(d));
    }
    frontier = std::move(next);
  }
  return out;
}

Entity random_obs(sim::Rng& rng, std::uint64_t seq, TimePoint t) {
  const char* sensors[] = {"SRa", "SRb", "SRc"};  // SRc routes nowhere
  return Entity(obs(static_cast<int>(rng.uniform_int(1, 4)), sensors[rng.uniform_int(0, 2)], seq,
                    t, {rng.uniform(0, 16), rng.uniform(0, 16)}, rng.uniform(0, 100)));
}

TEST(EngineCascade, MatchesHandRolledFrontierLoop) {
  for (const ConsumptionMode mode : {ConsumptionMode::kUnrestricted, ConsumptionMode::kConsume}) {
    for (const std::uint64_t seed : {1u, 7u, 42u}) {
      DetectionEngine cascading(ObserverId("OB"), Layer::kCyber, {0, 0});
      DetectionEngine reference(ObserverId("OB"), Layer::kCyber, {0, 0});
      for (const EventDefinition& def : chain_definitions(mode)) {
        cascading.add_definition(def);
        reference.add_definition(def);
      }
      sim::Rng rng(seed);
      TimePoint now = TimePoint::epoch();
      for (int i = 0; i < 400; ++i) {
        now += time_model::milliseconds(100 + rng.uniform_int(0, 400));
        sim::Rng fork(seed * 1000 + static_cast<std::uint64_t>(i));
        const Entity e = random_obs(fork, static_cast<std::uint64_t>(i), now);
        const auto got = cascading.observe_cascading(e, now);
        const auto want = reference_cascade(reference, e, now);
        ASSERT_EQ(got.size(), want.size()) << "mode=" << static_cast<int>(mode)
                                           << " seed=" << seed << " arrival " << i;
        for (std::size_t k = 0; k < got.size(); ++k) {
          ASSERT_EQ(describe(got[k]), describe(want[k]))
              << "mode=" << static_cast<int>(mode) << " seed=" << seed << " arrival " << i
              << " instance " << k;
        }
      }
      // Same emissions and matching work counters (entities_in differs:
      // the cascading path skips provably inert re-ingestions).
      EXPECT_EQ(cascading.stats().instances_out, reference.stats().instances_out);
      EXPECT_EQ(cascading.stats().bindings_matched, reference.stats().bindings_matched);
      EXPECT_EQ(cascading.stats().cascade_truncated, 0u);
    }
  }
}

TEST(EngineCascade, SubStampsOrderTheClosure) {
  DetectionEngine engine(ObserverId("OB"), Layer::kCyber, {0, 0});
  for (const EventDefinition& def : chain_definitions(ConsumptionMode::kUnrestricted)) {
    engine.add_definition(def);
  }
  std::vector<Emission> out;
  const TimePoint t0 = TimePoint::epoch() + seconds(1);
  engine.observe_cascading(Entity(obs(1, "SRa", 0, t0, {0, 0}, 80.0)), t0, out);
  ASSERT_EQ(out.size(), 1u);  // one HOT, nothing to pair with yet
  EXPECT_EQ(out[0].depth, 1u);
  EXPECT_EQ(out[0].emit_index, 0u);

  out.clear();
  const TimePoint t1 = t0 + seconds(1);
  engine.observe_cascading(Entity(obs(2, "SRb", 1, t1, {1, 1}, 90.0)), t1, out);
  // HOT#1 (depth 1) -> CP (depth 2) -> ALM (depth 3).
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].instance.key.event, EventTypeId("HOT"));
  EXPECT_EQ(out[1].instance.key.event, EventTypeId("CP"));
  EXPECT_EQ(out[2].instance.key.event, EventTypeId("ALM"));
  for (std::uint32_t k = 0; k < 3; ++k) {
    EXPECT_EQ(out[k].depth, k + 1) << k;
    EXPECT_EQ(out[k].emit_index, 0u) << k;
  }
  // Provenance stays intact through the cascade: ALM <- CP <- HOT pair.
  ASSERT_EQ(out[2].instance.provenance.size(), 1u);
  EXPECT_EQ(out[2].instance.provenance[0], out[1].instance.key);
  ASSERT_EQ(out[1].instance.provenance.size(), 2u);
  EXPECT_EQ(out[1].instance.provenance[1], out[0].instance.key);
  EXPECT_EQ(engine.stats().cascade_reingested, 3u);  // HOT#0, HOT#1, CP (ALM is routeless)
}

/// A definition whose output type feeds its own input: HOT -> HOT with the
/// value attribute preserved, so each level re-fires. The depth cap is the
/// cycle guard.
TEST(EngineCascade, CycleTerminatesAtDepthCap) {
  EngineOptions options;
  options.max_cascade_depth = 4;
  DetectionEngine engine(ObserverId("OB"), Layer::kCyber, {0, 0}, options);
  engine.add_definition(with_value_attr(
      EventDefinition{EventTypeId("HOT"),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume},
      {0}));
  engine.add_definition(with_value_attr(
      EventDefinition{EventTypeId("HOT"),
                      {{"h", SlotFilter::instance_of(EventTypeId("HOT"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume},
      {0}));

  const TimePoint t = TimePoint::epoch() + seconds(1);
  const auto out = engine.observe_cascading(Entity(obs(1, "SRa", 0, t, {0, 0}, 99.0)), t);
  // One HOT per level, levels 1..4; the level-4 instance is suppressed.
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t k = 0; k < out.size(); ++k) {
    EXPECT_EQ(out[k].key.event, EventTypeId("HOT")) << k;
    EXPECT_EQ(out[k].key.seq, k) << k;  // one shared sequence counter
  }
  EXPECT_EQ(engine.stats().cascade_truncated, 1u);
  EXPECT_EQ(engine.stats().cascade_reingested, 3u);

  // Depth cap 1: deliver direct emissions only, count the suppression.
  EngineOptions shallow;
  shallow.max_cascade_depth = 1;
  DetectionEngine engine1(ObserverId("OB"), Layer::kCyber, {0, 0}, shallow);
  engine1.add_definition(with_value_attr(
      EventDefinition{EventTypeId("HOT"),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume},
      {0}));
  engine1.add_definition(with_value_attr(
      EventDefinition{EventTypeId("HOT"),
                      {{"h", SlotFilter::instance_of(EventTypeId("HOT"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume},
      {0}));
  EXPECT_EQ(engine1.observe_cascading(Entity(obs(1, "SRa", 0, t, {0, 0}, 99.0)), t).size(), 1u);
  EXPECT_EQ(engine1.stats().cascade_truncated, 1u);
  EXPECT_EQ(engine1.stats().cascade_reingested, 0u);
}

TEST(EngineCascade, RoutelessEmissionsAreNotReingested) {
  DetectionEngine engine(ObserverId("OB"), Layer::kCyber, {0, 0});
  engine.add_definition(
      EventDefinition{EventTypeId("HOT"),
                      {{"x", SlotFilter::observation(SensorId("SRa"))}},
                      c_attr(ValueAggregate::kAverage, "value", {0}, RelationalOp::kGt, 60.0),
                      seconds(60),
                      {},
                      ConsumptionMode::kConsume});
  const TimePoint t = TimePoint::epoch() + seconds(1);
  const auto out = engine.observe_cascading(Entity(obs(1, "SRa", 0, t, {0, 0}, 99.0)), t);
  EXPECT_EQ(out.size(), 1u);
  // Nothing consumes HOT instances: no re-ingestion, no truncation, and
  // entities_in counts only the raw arrival.
  EXPECT_EQ(engine.stats().cascade_reingested, 0u);
  EXPECT_EQ(engine.stats().cascade_truncated, 0u);
  EXPECT_EQ(engine.stats().entities_in, 1u);
}

TEST(EngineCascade, PrestoredObserveAliasesSharedStorage) {
  // Two-slot join buffers its arrivals; the prestored path must alias the
  // caller's shared entity instead of deep-copying it.
  DetectionEngine engine(ObserverId("OB"), Layer::kSensor, {0, 0});
  engine.add_definition(
      EventDefinition{EventTypeId("PAIR"),
                      {{"a", SlotFilter::observation(SensorId("SR"))},
                       {"b", SlotFilter::observation(SensorId("SR"))}},
                      c_and({c_time(0, time_model::TemporalOp::kBefore, 1),
                             c_distance(0, 1, RelationalOp::kLt, 5.0)}),
                      seconds(60),
                      {},
                      ConsumptionMode::kUnrestricted});
  const TimePoint t = TimePoint::epoch() + seconds(1);
  const auto shared =
      std::make_shared<const Entity>(Entity(obs(1, "SR", 0, t, {0, 0}, 10.0)));
  std::vector<Emission> out;
  engine.observe(shared, t, out);
  EXPECT_TRUE(out.empty());
  // Buffered by aliasing the caller's storage: no copy was made.
  EXPECT_GT(shared.use_count(), 1);

  // A second arrival (plain reference path) joins against the buffered
  // aliased entity exactly as against a deep copy.
  const Entity second(obs(2, "SR", 1, t + seconds(1), {1, 1}, 11.0));
  out.clear();
  engine.observe(second, t + seconds(1), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].instance.key.event, EventTypeId("PAIR"));
}

}  // namespace
}  // namespace stem::core
