/// F1 — Figure 1 as an executable artifact.
///
/// The paper's Figure 1 is the CPS architecture diagram: sensor motes ->
/// sink nodes -> (publish) -> CPS control unit -> (commands) -> dispatch
/// nodes -> actor motes, with database servers archiving instances. This
/// binary runs the smart-building scenario and prints the component
/// inventory and a per-component activity trace, demonstrating that every
/// box and arrow of the figure is exercised.

#include <iomanip>
#include <iostream>

#include "scenario/smart_building.hpp"

int main() {
  using namespace stem;

  scenario::SmartBuildingConfig cfg;
  cfg.deployment.topology.motes = 25;
  cfg.deployment.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.deployment.topology.radio_range = 40.0;
  cfg.deployment.sampling_period = time_model::milliseconds(500);
  cfg.horizon = time_model::minutes(2);

  scenario::SmartBuilding scenario(cfg);
  auto& d = scenario.deployment();

  std::cout << "=== F1: Figure 1 architecture, executable ===\n\n";
  std::cout << "component inventory:\n";
  std::cout << "  sensor motes (SR + MCU + transceiver) : " << d.motes().size() << "\n";
  std::cout << "  sink nodes                            : " << d.sinks().size() << "\n";
  std::cout << "  CPS control units                     : 1 (" << d.ccu().id().value() << ")\n";
  std::cout << "  database servers                      : 1\n";
  std::cout << "  dispatch nodes                        : 1\n";
  std::cout << "  actor motes (window actuator)         : 1\n";
  std::cout << "  pub/sub broker (CPS network)          : 1\n";
  std::cout << "  routing tree depth                    : " << d.topology().max_depth()
            << " hop(s)\n\n";

  const auto result = scenario.run();

  std::cout << "per-component activity (the arrows of Fig. 1):\n";
  std::uint64_t samples = 0, sensor_events = 0, relayed = 0;
  d.for_each_mote([&](wsn::SensorMote& m) {
    samples += m.stats().samples;
    sensor_events += m.stats().events_emitted;
    relayed += m.stats().relayed;
  });
  std::cout << "  sampling (physical world -> motes)       : " << samples << " samples\n";
  std::cout << "  sensor event conditions evaluated at motes: " << sensor_events
            << " sensor events\n";
  std::cout << "  WSN relay (mote -> mote -> sink)          : " << relayed << " relays\n";
  std::uint64_t sink_in = 0, sink_out = 0, sink_pub = 0;
  for (const auto& s : d.sinks()) {
    sink_in += s->stats().entities_received;
    sink_out += s->stats().instances_emitted;
    sink_pub += s->stats().published;
  }
  std::cout << "  sink: entities in / CP events out / published: " << sink_in << " / "
            << sink_out << " / " << sink_pub << "\n";
  std::cout << "  broker: published / fanned out            : " << d.broker().published()
            << " / " << d.broker().fanned_out() << "\n";
  std::cout << "  CCU: entities in / cyber events / commands : "
            << d.ccu().stats().entities_received << " / "
            << d.ccu().stats().cyber_events_emitted << " / "
            << d.ccu().stats().commands_issued << "\n";
  std::cout << "  database server: instances archived        : "
            << d.database().store().size() << "\n";
  std::cout << "  actuation: window closed                   : "
            << (result.window_closed.has_value() ? "yes" : "no") << "\n";
  std::cout << "  network: messages / bytes                  : " << result.network.sent
            << " / " << result.network.bytes_sent << "\n\n";

  const bool all_exercised = samples > 0 && sensor_events > 0 && sink_out > 0 &&
                             d.ccu().stats().cyber_events_emitted > 0 &&
                             d.ccu().stats().commands_issued > 0 &&
                             d.database().store().size() > 0 &&
                             result.window_closed.has_value();
  std::cout << (all_exercised ? "F1 OK: every component class of Figure 1 was exercised\n"
                              : "F1 FAILED: some component saw no traffic\n");
  return all_exercised ? 0 : 1;
}
