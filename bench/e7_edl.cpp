/// E7 — Event Detection Latency, the paper's declared future work
/// (Sec. 6): "a formal temporal analysis of Event Detection Latency (EDL)
/// ... and an end-to-end latency model for CPSs."
///
/// We build that model (analysis::EdlModel) and validate it against the
/// simulator: a punctual physical event (light switched on) occurs at a
/// known time; the mote detects it at the next sample; the sensor event
/// travels the hierarchy to the CCU. We sweep the sampling period and the
/// hop count and compare simulated EDL (mean, p99) against the analytical
/// expectation at every layer.

#include <iomanip>
#include <iostream>
#include <map>
#include <memory>

#include "analysis/edl.hpp"
#include "eventlang/parser.hpp"
#include "net/broker.hpp"
#include "sim/stats.hpp"
#include "wsn/mote.hpp"
#include "wsn/sink.hpp"
#include "cps/ccu.hpp"

namespace {

using namespace stem;
using core::EventTypeId;
using core::ObserverId;
using time_model::Duration;
using time_model::milliseconds;
using time_model::seconds;
using time_model::TimePoint;

struct SweepResult {
  double sim_mean_ms = 0.0;
  double sim_p99_ms = 0.0;
  double model_mean_ms = 0.0;
  std::size_t detections = 0;
};

/// One mote behind a relay chain of (hops-1) repeaters, one sink, one CCU.
/// `toggles` punctual events are spread over the run.
SweepResult run_chain(Duration sampling, int hops, int toggles, std::uint64_t seed) {
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(seed));
  net::Broker broker(network, ObserverId("BROKER"));

  net::LinkSpec hop_link;
  hop_link.base_latency = milliseconds(2);
  hop_link.jitter = milliseconds(2);  // mean 3ms
  hop_link.bytes_per_ms = 0.0;
  net::LinkSpec cps_link = hop_link;

  // Physical event schedule: `toggles` on/off pairs. The on-times carry a
  // random sub-second offset so the sampling phase is uniform — otherwise
  // events aligned with the sampling grid would hide the P/2 term.
  sim::Rng phase_rng(seed ^ 0x5eedULL);
  std::vector<TimePoint> schedule;
  for (int i = 0; i < toggles; ++i) {
    const auto jitter = milliseconds(phase_rng.uniform_int(0, 9999));
    schedule.push_back(TimePoint::epoch() + seconds(5 + 20 * i) + jitter);   // on
    schedule.push_back(TimePoint::epoch() + seconds(10 + 20 * i) + jitter);  // off
  }
  const auto switch_schedule = std::make_shared<sensing::SwitchSchedule>(schedule);

  // Sensing mote.
  wsn::SensorMote::Config mcfg;
  mcfg.id = ObserverId("MT_sense");
  mcfg.position = {0, 0};
  mcfg.sampling_period = sampling;
  mcfg.proc_delay = milliseconds(5);
  wsn::SensorMote mote(network, mcfg, sim::Rng(seed).fork("mote"));
  mote.add_sensor(std::make_shared<sensing::SwitchSensor>(core::SensorId("SRlight"),
                                                          switch_schedule));
  // LIGHT_ON fires on the rising edge: an "on" sample consumed once.
  mote.add_definition(eventlang::parse_event(R"(
    event LIGHT_ON {
      window: 100 ms;
      slot x = obs(SRlight);
      when avg(on of x) > 0.5;
      consume;
    }
  )"));

  // Relay chain.
  std::vector<std::unique_ptr<wsn::SensorMote>> relays;
  net::NodeId prev = mcfg.id;
  for (int h = 1; h < hops; ++h) {
    wsn::SensorMote::Config rcfg;
    rcfg.id = ObserverId("MT_relay" + std::to_string(h));
    rcfg.position = {static_cast<double>(h) * 10, 0};
    relays.push_back(std::make_unique<wsn::SensorMote>(network, rcfg,
                                                       sim::Rng(seed).fork("relay")));
    network.connect(prev, rcfg.id, hop_link);
    if (prev == mcfg.id) {
      mote.set_parent(rcfg.id);
    } else {
      relays[relays.size() - 2]->set_parent(rcfg.id);
    }
    prev = rcfg.id;
  }

  // Sink.
  wsn::SinkNode::Config scfg;
  scfg.id = ObserverId("SINK");
  scfg.position = {100, 0};
  scfg.proc_delay = milliseconds(10);
  wsn::SinkNode sink(network, &broker, scfg);
  sink.add_definition(eventlang::parse_event(R"(
    event CP_LIGHT {
      window: 10 s;
      slot l = event(LIGHT_ON);
      when rho(l) >= 0.0;
      emit { time: latest; }
    }
  )"));
  network.connect(prev, scfg.id, hop_link);
  if (hops == 1) {
    mote.set_parent(scfg.id);
  } else {
    relays.back()->set_parent(scfg.id);
  }
  network.connect(scfg.id, ObserverId("BROKER"), cps_link);

  // CCU.
  cps::ControlUnit::Config ccfg;
  ccfg.id = ObserverId("CCU");
  ccfg.position = {200, 0};
  ccfg.proc_delay = milliseconds(20);
  cps::ControlUnit ccu(network, broker, ccfg);
  network.connect(ccfg.id, ObserverId("BROKER"), cps_link);
  ccu.subscribe(EventTypeId("CP_LIGHT"));
  ccu.add_definition(eventlang::parse_event(R"(
    event CYBER_LIGHT {
      window: 10 s;
      slot c = event(CP_LIGHT);
      when rho(c) >= 0.0;
    }
  )"));

  // EDL scoring: EDL is the latency of the FIRST cyber event reflecting
  // each physical "on" toggle (later samples of the same on-period are
  // re-confirmations, not detections).
  std::map<time_model::Tick, TimePoint> first_detect;  // truth tick -> first t^g
  ccu.on_instance([&](const core::EventInstance& inst) {
    // Ground truth: latest "on" toggle at or before the estimated time.
    TimePoint truth = TimePoint::min();
    for (std::size_t i = 0; i < schedule.size(); i += 2) {
      if (schedule[i] <= inst.est_time.end() && schedule[i] > truth) truth = schedule[i];
    }
    if (truth == TimePoint::min()) return;
    const auto [it, inserted] = first_detect.emplace(truth.ticks(), inst.gen_time);
    if (!inserted && inst.gen_time < it->second) it->second = inst.gen_time;
  });

  const TimePoint horizon = schedule.back() + seconds(10);
  mote.start(horizon);
  simulator.run_until(horizon);

  sim::Percentiles edl_ms;
  for (const auto& [truth_tick, detected] : first_detect) {
    edl_ms.add(static_cast<double>((detected - TimePoint(truth_tick)).ticks()) / 1000.0);
  }

  analysis::EdlModel model;
  model.sampling_period = sampling;
  model.mote_proc = milliseconds(5);
  model.hop_latency = milliseconds(3);
  model.hops = hops;
  model.sink_proc = milliseconds(10);
  model.net_latency = milliseconds(3);
  model.ccu_proc = milliseconds(20);

  SweepResult r;
  r.detections = edl_ms.count();
  r.sim_mean_ms = edl_ms.mean();
  r.sim_p99_ms = edl_ms.percentile(99);
  r.model_mean_ms = static_cast<double>(model.expected().ticks()) / 1000.0;
  return r;
}

}  // namespace

int main() {
  std::cout << "=== E7: end-to-end Event Detection Latency, simulation vs model ===\n\n";
  std::cout << "sampling-period sweep (1 hop):\n";
  std::cout << std::setw(10) << "period" << std::setw(8) << "n" << std::setw(14) << "sim mean"
            << std::setw(14) << "model mean" << std::setw(12) << "sim p99" << std::setw(10)
            << "err%" << "\n";

  bool ok = true;
  for (const auto period : {milliseconds(200), milliseconds(500), seconds(1), seconds(2)}) {
    const SweepResult r = run_chain(period, 1, 12, 7);
    const double err =
        r.model_mean_ms == 0 ? 0 : (r.sim_mean_ms - r.model_mean_ms) / r.model_mean_ms * 100;
    std::cout << std::setw(8) << period.ticks() / 1000 << "ms" << std::setw(8) << r.detections
              << std::setw(12) << std::fixed << std::setprecision(1) << r.sim_mean_ms << "ms"
              << std::setw(12) << r.model_mean_ms << "ms" << std::setw(10) << r.sim_p99_ms
              << "ms" << std::setw(10) << std::setprecision(0) << err << "\n";
    ok = ok && r.detections > 0 && std::abs(err) < 35.0;
  }

  std::cout << "\nhop-count sweep (500 ms sampling):\n";
  std::cout << std::setw(10) << "hops" << std::setw(8) << "n" << std::setw(14) << "sim mean"
            << std::setw(14) << "model mean" << std::setw(10) << "err%" << "\n";
  double prev_mean = 0.0;
  for (const int hops : {1, 2, 4, 8}) {
    const SweepResult r = run_chain(milliseconds(500), hops, 12, 11);
    const double err =
        r.model_mean_ms == 0 ? 0 : (r.sim_mean_ms - r.model_mean_ms) / r.model_mean_ms * 100;
    std::cout << std::setw(10) << hops << std::setw(8) << r.detections << std::setw(12)
              << std::fixed << std::setprecision(1) << r.sim_mean_ms << "ms" << std::setw(12)
              << r.model_mean_ms << "ms" << std::setw(10) << std::setprecision(0) << err
              << "\n";
    ok = ok && r.detections > 0 && r.sim_mean_ms > prev_mean && std::abs(err) < 35.0;
    prev_mean = r.sim_mean_ms;
  }

  std::cout << "\n"
            << (ok ? "E7 OK: analytical EDL model tracks simulation (monotone in hops)\n"
                   : "E7 FAILED: model diverged from simulation\n");
  return ok ? 0 : 1;
}
