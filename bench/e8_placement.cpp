/// E8 — Condition evaluation placement, the paper's second declared future
/// work (Sec. 6): "we will investigate the event condition evaluation at
/// different CPS components."
///
/// The same threshold condition (heat > 80) is evaluated at three
/// placements: at the MOTE (paper's layered design), at the SINK (raw
/// observations shipped one WSN hop), and at the CCU (raw observations
/// shipped across the WSN *and* the CPS backbone). We report WSN+backbone
/// messages, bytes, and mean detection latency of the final cyber event.

#include <iomanip>
#include <iostream>
#include <memory>

#include "eventlang/parser.hpp"
#include "scenario/deployment.hpp"
#include "sensing/phenomena.hpp"
#include "sim/stats.hpp"

namespace {

using namespace stem;
using core::EventTypeId;
using time_model::milliseconds;
using time_model::seconds;
using time_model::TimePoint;

enum class Placement { kMote, kSink, kCcu };

struct Result {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::size_t detections = 0;
  double mean_latency_ms = 0.0;
};

Result run_placement(Placement placement, std::uint64_t seed) {
  scenario::DeploymentConfig cfg;
  cfg.topology.motes = 25;
  cfg.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.topology.radio_range = 45.0;
  cfg.topology.seed = seed;
  cfg.seed = seed;
  cfg.sampling_period = milliseconds(500);
  cfg.forward_raw = placement != Placement::kMote;

  scenario::Deployment d(cfg);
  const TimePoint ignition = TimePoint::epoch() + seconds(5);
  const auto fire =
      std::make_shared<sensing::SpreadingFire>(geom::Point{50, 50}, ignition, 2.0);

  const auto hot = eventlang::parse_event(R"(
    event HOT {
      window: 2 s;
      slot x = obs(SRheat);
      when avg(value of x) > 80;
      emit { attr value = avg(value of x); }
    }
  )");
  // The cyber-level definition consumes whatever the lower level emits.
  const auto cyber_from_hot = eventlang::parse_event(R"(
    event CYBER_FIRE { window: 10 s; slot h = event(HOT); when rho(h) >= 0.0; }
  )");

  d.for_each_mote([&](wsn::SensorMote& mote) {
    mote.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(core::SensorId("SRheat"),
                                                                 fire, 1.0));
    if (placement == Placement::kMote) mote.add_definition(hot);
  });

  for (auto& sink : d.sinks()) {
    if (placement == Placement::kSink) {
      sink->add_definition(hot);  // evaluates raw observations
    } else if (placement == Placement::kMote) {
      // Sensor events pass through as CP events.
      sink->add_definition(eventlang::parse_event(
          "event HOT_CP { window: 10 s; slot h = event(HOT); when rho(h) >= 0.0;\n"
          "  emit { attr value = avg(value of h); } }"));
    }
    // kCcu: the sink forwards nothing itself; observations go to the CCU
    // via the broker below.
  }

  // For CCU placement, raw observations must cross the backbone: the sink
  // republishes every received entity. We model this with a sink pass-
  // through definition over observations.
  if (placement == Placement::kCcu) {
    for (auto& sink : d.sinks()) {
      sink->add_definition(eventlang::parse_event(
          "event OBS_RELAY { window: 10 s; slot x = obs(SRheat); when avg(value of x) >= -1000;\n"
          "  emit { attr value = avg(value of x); } }"));
    }
  }

  auto& ccu = d.ccu();
  if (placement == Placement::kCcu) {
    ccu.subscribe(EventTypeId("OBS_RELAY"));
    ccu.add_definition(eventlang::parse_event(
        "event CYBER_FIRE { window: 10 s; slot x = event(OBS_RELAY);\n"
        "  when avg(value of x) > 80; }"));
  } else if (placement == Placement::kSink) {
    ccu.subscribe(EventTypeId("HOT"));
    ccu.add_definition(cyber_from_hot);
  } else {
    ccu.subscribe(EventTypeId("HOT_CP"));
    ccu.add_definition(eventlang::parse_event(
        "event CYBER_FIRE { window: 10 s; slot h = event(HOT_CP); when rho(h) >= 0.0; }"));
  }

  Result r;
  sim::Summary latency;
  ccu.on_instance([&](const core::EventInstance& inst) {
    if (inst.key.event != EventTypeId("CYBER_FIRE")) return;
    ++r.detections;
    latency.add(static_cast<double>((inst.gen_time - inst.est_time.end()).ticks()) / 1000.0);
  });

  d.run_until(TimePoint::epoch() + seconds(40));
  r.messages = d.network().stats().sent;
  r.bytes = d.network().stats().bytes_sent;
  r.mean_latency_ms = latency.mean();
  return r;
}

}  // namespace

int main() {
  std::cout << "=== E8: condition evaluation placement (mote / sink / CCU) ===\n\n";
  std::cout << std::setw(10) << "placement" << std::setw(12) << "messages" << std::setw(12)
            << "KB" << std::setw(12) << "detections" << std::setw(18) << "obs->cyber ms"
            << "\n";

  Result results[3];
  const char* names[3] = {"mote", "sink", "ccu"};
  const Placement placements[3] = {Placement::kMote, Placement::kSink, Placement::kCcu};
  for (int i = 0; i < 3; ++i) {
    results[i] = run_placement(placements[i], 33);
    std::cout << std::setw(10) << names[i] << std::setw(12) << results[i].messages
              << std::setw(12) << results[i].bytes / 1024 << std::setw(12)
              << results[i].detections << std::setw(15) << std::fixed << std::setprecision(1)
              << results[i].mean_latency_ms << " ms\n";
  }

  // The paper's hierarchy claim: pushing evaluation toward the edge
  // monotonically reduces network load.
  const bool ok = results[0].messages < results[1].messages &&
                  results[1].messages < results[2].messages && results[0].detections > 0 &&
                  results[1].detections > 0 && results[2].detections > 0;
  std::cout << "\n"
            << (ok ? "E8 OK: edge placement minimizes network load; CCU placement is the "
                     "most expensive\n"
                   : "E8 FAILED: unexpected ordering\n");
  return ok ? 0 : 1;
}
