/// E6 — Expressiveness vs a point-only, aspatial ECA baseline.
///
/// The paper's Sec. 2 argues RTL-style point-based models cannot express
/// interval relations (During, Overlap) and that no prior model carries
/// spatial relations at all. We quantify that: six scenario families are
/// generated 200x each with randomized parameters; every family has a
/// ground-truth match that the full model should detect. The baseline
/// sees the same entities degraded to points (interval end, centroid).

#include <iomanip>
#include <iostream>

#include "baseline/point_only.hpp"
#include "core/engine.hpp"
#include "sim/random.hpp"

namespace {

using namespace stem;
using core::ConsumptionMode;
using core::EventDefinition;
using core::EventTypeId;
using core::ObserverId;
using geom::Location;
using geom::Point;
using geom::Polygon;
using time_model::OccurrenceTime;
using time_model::seconds;
using time_model::TimeInterval;
using time_model::TimePoint;

core::Entity inst(const char* type, OccurrenceTime t, Location l) {
  core::EventInstance i;
  i.key = core::EventInstanceKey{ObserverId("SRC"), EventTypeId(type), 0};
  i.layer = core::Layer::kSensor;
  i.gen_time = t.end();
  i.est_time = t;
  i.est_location = std::move(l);
  return core::Entity(std::move(i));
}

struct Family {
  const char* name;
  /// Builds the definition detecting this family's pattern.
  EventDefinition (*def)();
  /// Generates one positive trial: the two entities that should match.
  std::pair<core::Entity, core::Entity> (*trial)(sim::Rng&);
};

EventDefinition two_slot(const char* id, core::ConditionExpr cond) {
  return EventDefinition{EventTypeId(id),
                         {{"a", core::SlotFilter::instance_of(EventTypeId("A"))},
                          {"b", core::SlotFilter::instance_of(EventTypeId("B"))}},
                         std::move(cond),
                         seconds(3600),
                         {},
                         ConsumptionMode::kConsume};
}

core::Entity entity_b(core::Entity e) {
  core::EventInstance i = e.instance();
  i.key.event = EventTypeId("B");
  return core::Entity(std::move(i));
}

const Family kFamilies[] = {
    {"sequence (point)",  // control: point semantics suffice
     [] { return two_slot("SEQ", core::c_time(0, time_model::TemporalOp::kBefore, 1)); },
     [](sim::Rng& rng) {
       const TimePoint t1(rng.uniform_int(0, 1000));
       const TimePoint t2 = t1 + seconds(rng.uniform_int(1, 100));
       return std::pair(inst("A", OccurrenceTime(t1), Location(Point{0, 0})),
                        entity_b(inst("B", OccurrenceTime(t2), Location(Point{0, 0}))));
     }},
    {"interval overlap",
     [] { return two_slot("OVL", core::c_time(0, time_model::TemporalOp::kOverlaps, 1)); },
     [](sim::Rng& rng) {
       const TimePoint a0(rng.uniform_int(0, 1000));
       const TimePoint a1 = a0 + seconds(rng.uniform_int(10, 50));
       const TimePoint b0 = a0 + seconds(rng.uniform_int(1, 9));
       const TimePoint b1 = a1 + seconds(rng.uniform_int(1, 50));
       return std::pair(
           inst("A", OccurrenceTime(TimeInterval(a0, a1)), Location(Point{0, 0})),
           entity_b(inst("B", OccurrenceTime(TimeInterval(b0, b1)), Location(Point{0, 0}))));
     }},
    {"point during interval",
     [] { return two_slot("DUR", core::c_time(0, time_model::TemporalOp::kDuring, 1)); },
     [](sim::Rng& rng) {
       const TimePoint b0(rng.uniform_int(0, 1000));
       const TimePoint b1 = b0 + seconds(rng.uniform_int(20, 60));
       const TimePoint a = b0 + seconds(rng.uniform_int(1, 19));
       return std::pair(
           inst("A", OccurrenceTime(a), Location(Point{0, 0})),
           entity_b(inst("B", OccurrenceTime(TimeInterval(b0, b1)), Location(Point{0, 0}))));
     }},
    {"interval meets",
     [] { return two_slot("MEET", core::c_time(0, time_model::TemporalOp::kMeets, 1)); },
     [](sim::Rng& rng) {
       const TimePoint a0(rng.uniform_int(0, 1000));
       const TimePoint a1 = a0 + seconds(rng.uniform_int(5, 50));
       const TimePoint b1 = a1 + seconds(rng.uniform_int(5, 50));
       return std::pair(
           inst("A", OccurrenceTime(TimeInterval(a0, a1)), Location(Point{0, 0})),
           entity_b(inst("B", OccurrenceTime(TimeInterval(a1, b1)), Location(Point{0, 0}))));
     }},
    {"point inside field",
     [] { return two_slot("INS", core::c_space(0, geom::SpatialOp::kInside, 1)); },
     [](sim::Rng& rng) {
       const Point c{rng.uniform(0, 100), rng.uniform(0, 100)};
       const double r = rng.uniform(5, 20);
       const Point p{c.x + rng.uniform(-r / 2, r / 2), c.y + rng.uniform(-r / 2, r / 2)};
       return std::pair(inst("A", OccurrenceTime(TimePoint(0)), Location(p)),
                        entity_b(inst("B", OccurrenceTime(TimePoint(1)),
                                      Location(Polygon::disk(c, r, 16)))));
     }},
    {"fields joint",
     [] { return two_slot("JNT", core::c_space(0, geom::SpatialOp::kJoint, 1)); },
     [](sim::Rng& rng) {
       const Point c{rng.uniform(0, 100), rng.uniform(0, 100)};
       const double r = rng.uniform(10, 20);
       // Second disk offset by less than the two radii: guaranteed joint,
       // but the centroids stay > epsilon apart.
       const Point c2{c.x + r, c.y};
       return std::pair(inst("A", OccurrenceTime(TimePoint(0)), Location(Polygon::disk(c, r, 16))),
                        entity_b(inst("B", OccurrenceTime(TimePoint(1)),
                                      Location(Polygon::disk(c2, r, 16)))));
     }},
};

}  // namespace

int main() {
  constexpr int kTrials = 200;
  std::cout << "=== E6: detection recall, full spatio-temporal model vs point-only ECA ===\n\n";
  std::cout << std::setw(24) << "scenario family" << std::setw(12) << "full" << std::setw(14)
            << "point-only" << "\n";

  bool ok = true;
  for (const Family& family : kFamilies) {
    sim::Rng rng(2026);
    int full_hits = 0, degraded_hits = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto [a, b] = family.trial(rng);

      core::DetectionEngine full(ObserverId("FULL"), core::Layer::kCyber, {0, 0});
      full.add_definition(family.def());
      full.observe(a, a.occurrence_time().end());
      full_hits += full.observe(b, b.occurrence_time().end() + seconds(1)).empty() ? 0 : 1;

      baseline::PointOnlyEngine degraded(ObserverId("ECA"), core::Layer::kCyber, {0, 0});
      degraded.add_definition(family.def());
      degraded.observe(a, a.occurrence_time().end());
      degraded_hits +=
          degraded.observe(b, b.occurrence_time().end() + seconds(1)).empty() ? 0 : 1;
    }
    const double full_recall = static_cast<double>(full_hits) / kTrials;
    const double degraded_recall = static_cast<double>(degraded_hits) / kTrials;
    std::cout << std::setw(24) << family.name << std::setw(11) << std::fixed
              << std::setprecision(2) << full_recall * 100 << "%" << std::setw(13)
              << degraded_recall * 100 << "%\n";

    ok = ok && full_recall == 1.0;
    // The control family must survive degradation; the others must suffer.
    if (std::string_view(family.name) == "sequence (point)") {
      ok = ok && degraded_recall == 1.0;
    } else {
      ok = ok && degraded_recall < 0.5;
    }
  }

  std::cout << "\n"
            << (ok ? "E6 OK: interval & spatial scenarios require the full model\n"
                   : "E6 FAILED: unexpected recall pattern\n");
  return ok ? 0 : 1;
}
