/// E1 — Temporal operator cost (paper Sec. 4.2 claims support for all
/// three relation classes: punctual-punctual, punctual-interval,
/// interval-interval). Measures eval_temporal and allen_relation over
/// pre-generated random occurrence-time pairs.

#include <benchmark/benchmark.h>

#include <vector>

#include "sim/random.hpp"
#include "time/allen.hpp"
#include "time/temporal_op.hpp"

namespace {

using namespace stem::time_model;

enum class PairClass { kPointPoint, kPointInterval, kIntervalInterval };

std::vector<std::pair<OccurrenceTime, OccurrenceTime>> make_pairs(PairClass cls, std::size_t n) {
  stem::sim::Rng rng(42);
  std::vector<std::pair<OccurrenceTime, OccurrenceTime>> pairs;
  pairs.reserve(n);
  const auto point = [&] { return OccurrenceTime(TimePoint(rng.uniform_int(0, 1'000'000))); };
  const auto interval = [&] {
    const Tick a = rng.uniform_int(0, 1'000'000);
    const Tick len = rng.uniform_int(1, 10'000);
    return OccurrenceTime(TimeInterval(TimePoint(a), TimePoint(a + len)));
  };
  for (std::size_t i = 0; i < n; ++i) {
    switch (cls) {
      case PairClass::kPointPoint: pairs.emplace_back(point(), point()); break;
      case PairClass::kPointInterval: pairs.emplace_back(point(), interval()); break;
      case PairClass::kIntervalInterval: pairs.emplace_back(interval(), interval()); break;
    }
  }
  return pairs;
}

void BM_TemporalOp(benchmark::State& state, PairClass cls, TemporalOp op) {
  const auto pairs = make_pairs(cls, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(eval_temporal(a, op, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_AllenClassify(benchmark::State& state) {
  const auto pairs = make_pairs(PairClass::kIntervalInterval, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(allen_relation(a.as_interval(), b.as_interval()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TimeAggregate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stem::sim::Rng rng(7);
  std::vector<OccurrenceTime> times;
  for (std::size_t i = 0; i < n; ++i) {
    times.push_back(OccurrenceTime(TimePoint(rng.uniform_int(0, 1'000'000))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(aggregate_times(TimeAggregate::kSpan, times.data(), times.size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK_CAPTURE(BM_TemporalOp, before_pp, PairClass::kPointPoint, TemporalOp::kBefore);
BENCHMARK_CAPTURE(BM_TemporalOp, before_pi, PairClass::kPointInterval, TemporalOp::kBefore);
BENCHMARK_CAPTURE(BM_TemporalOp, before_ii, PairClass::kIntervalInterval, TemporalOp::kBefore);
BENCHMARK_CAPTURE(BM_TemporalOp, during_pi, PairClass::kPointInterval, TemporalOp::kDuring);
BENCHMARK_CAPTURE(BM_TemporalOp, during_ii, PairClass::kIntervalInterval, TemporalOp::kDuring);
BENCHMARK_CAPTURE(BM_TemporalOp, overlaps_ii, PairClass::kIntervalInterval, TemporalOp::kOverlaps);
BENCHMARK_CAPTURE(BM_TemporalOp, meets_ii, PairClass::kIntervalInterval, TemporalOp::kMeets);
BENCHMARK_CAPTURE(BM_TemporalOp, equals_pp, PairClass::kPointPoint, TemporalOp::kEquals);
BENCHMARK_CAPTURE(BM_TemporalOp, intersects_ii, PairClass::kIntervalInterval,
                  TemporalOp::kIntersects);
BENCHMARK(BM_AllenClassify);
BENCHMARK(BM_TimeAggregate)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

BENCHMARK_MAIN();
