/// E2 — Spatial operator cost over point and field events (paper Sec. 4.2:
/// point-point, point-field, field-field relation classes), with a
/// polygon-size sweep showing predicate cost scaling in field complexity.

#include <benchmark/benchmark.h>

#include <vector>

#include "geom/location.hpp"
#include "sim/random.hpp"

namespace {

using namespace stem::geom;

std::vector<Location> make_points(std::size_t n, double area) {
  stem::sim::Rng rng(3);
  std::vector<Location> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(Point{rng.uniform(0, area), rng.uniform(0, area)});
  }
  return out;
}

std::vector<Location> make_fields(std::size_t n, double area, int vertices) {
  stem::sim::Rng rng(4);
  std::vector<Location> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point c{rng.uniform(0, area), rng.uniform(0, area)};
    out.emplace_back(Polygon::disk(c, rng.uniform(5, 30), vertices));
  }
  return out;
}

void BM_SpatialPointPoint(benchmark::State& state, SpatialOp op) {
  const auto a = make_points(1024, 1000);
  const auto b = make_points(1024, 1000);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_spatial(a[i & 1023], op, b[i & 1023]));
    ++i;
  }
}

void BM_SpatialPointField(benchmark::State& state, SpatialOp op) {
  const int verts = static_cast<int>(state.range(0));
  const auto a = make_points(1024, 1000);
  const auto b = make_fields(1024, 1000, verts);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_spatial(a[i & 1023], op, b[i & 1023]));
    ++i;
  }
}

void BM_SpatialFieldField(benchmark::State& state, SpatialOp op) {
  const int verts = static_cast<int>(state.range(0));
  const auto a = make_fields(1024, 1000, verts);
  const auto b = make_fields(1024, 1000, verts);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_spatial(a[i & 1023], op, b[i & 1023]));
    ++i;
  }
}

void BM_LocationDistance(benchmark::State& state) {
  const int verts = static_cast<int>(state.range(0));
  const auto a = make_fields(1024, 1000, verts);
  const auto b = make_fields(1024, 1000, verts);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(location_distance(a[i & 1023], b[i & 1023]));
    ++i;
  }
}

void BM_HullAggregate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = make_points(n, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aggregate_locations(SpatialAggregate::kHull, pts.data(), n));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SpatialPointPoint, equal, SpatialOp::kEqual);
BENCHMARK_CAPTURE(BM_SpatialPointPoint, joint, SpatialOp::kJoint);
BENCHMARK_CAPTURE(BM_SpatialPointField, inside, SpatialOp::kInside)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_SpatialPointField, outside, SpatialOp::kOutside)->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_SpatialFieldField, joint, SpatialOp::kJoint)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_SpatialFieldField, inside, SpatialOp::kInside)->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_SpatialFieldField, equal, SpatialOp::kEqual)->Arg(16)->Arg(64);
BENCHMARK(BM_LocationDistance)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_HullAggregate)->Arg(8)->Arg(64)->Arg(512);

BENCHMARK_MAIN();
