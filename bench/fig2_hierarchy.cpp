/// F2 — Figure 2 as an executable artifact.
///
/// Figure 2 is the layered event model: physical event -> physical
/// observation -> sensor event -> cyber-physical event -> cyber event,
/// with fan-in at each level. This binary drives the forest-fire scenario
/// for growing mote counts and prints the per-layer instance counts and
/// fan-in ratios, showing the hierarchy compressing raw data into
/// higher-level events exactly as the figure prescribes.

#include <iomanip>
#include <iostream>

#include "scenario/forest_fire.hpp"

int main() {
  using namespace stem;

  std::cout << "=== F2: Figure 2 event hierarchy, executable ===\n\n";
  std::cout << std::setw(6) << "motes" << std::setw(14) << "observations" << std::setw(14)
            << "sensor-ev" << std::setw(14) << "cyber-phys" << std::setw(12) << "cyber"
            << std::setw(12) << "obs/sens" << std::setw(12) << "sens/cp" << "\n";

  bool ok = true;
  for (const std::size_t motes : {16u, 25u, 36u, 49u}) {
    scenario::ForestFireConfig cfg;
    cfg.deployment.topology.motes = motes;
    cfg.deployment.topology.placement = wsn::TopologyConfig::Placement::kGrid;
    cfg.deployment.topology.radio_range = 45.0;
    cfg.deployment.sampling_period = time_model::milliseconds(500);
    cfg.horizon = time_model::minutes(1);
    cfg.deployment.seed = motes;

    scenario::ForestFire scenario(cfg);
    auto& d = scenario.deployment();
    const auto result = scenario.run();

    std::uint64_t observations = 0;
    d.for_each_mote([&](wsn::SensorMote& m) { observations += m.stats().observations; });
    std::uint64_t cp = 0;
    for (const auto& s : d.sinks()) cp += s->stats().instances_emitted;
    const std::uint64_t cyber = d.ccu().stats().cyber_events_emitted;

    const auto ratio = [](std::uint64_t a, std::uint64_t b) {
      return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
    };
    std::cout << std::setw(6) << motes << std::setw(14) << observations << std::setw(14)
              << result.hot_events << std::setw(14) << cp << std::setw(12) << cyber
              << std::setw(12) << std::fixed << std::setprecision(1)
              << ratio(observations, result.hot_events) << std::setw(12)
              << ratio(result.hot_events, cp) << "\n";

    // The hierarchy must compress: each layer no larger than the one below.
    ok = ok && observations >= result.hot_events && result.hot_events >= cp && cp >= cyber &&
         cyber > 0;
  }

  std::cout << "\n"
            << (ok ? "F2 OK: monotone fan-in through all five layers\n"
                   : "F2 FAILED: hierarchy did not compress\n");
  return ok ? 0 : 1;
}
