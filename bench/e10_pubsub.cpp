/// E10 — Pub/sub fan-out: broker throughput vs subscriber count and topic
/// count (the "Publish/Subscribe" arrows of Fig. 1 under load).

#include <benchmark/benchmark.h>

#include <string>

#include "net/broker.hpp"

namespace {

using namespace stem;

core::EventInstance make_instance(const std::string& topic, std::uint64_t seq) {
  core::EventInstance inst;
  inst.key = core::EventInstanceKey{core::ObserverId("PUB"), core::EventTypeId(topic), seq};
  inst.layer = core::Layer::kCyberPhysical;
  inst.est_time = time_model::OccurrenceTime(time_model::TimePoint(0));
  inst.est_location = geom::Location(geom::Point{0, 0});
  return inst;
}

/// Publishes `batch` instances and drains the simulator, measuring the
/// full publish -> broker -> N subscribers pipeline.
void BM_Fanout(benchmark::State& state) {
  const auto subscribers = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(5));
  net::Broker broker(network, net::NodeId("BROKER"));
  net::LinkSpec fast;
  fast.base_latency = time_model::microseconds(10);
  fast.jitter = time_model::Duration::zero();
  fast.bytes_per_ms = 0.0;

  network.register_node(net::NodeId("PUB"), [](const net::Message&) {});
  network.connect(net::NodeId("PUB"), net::NodeId("BROKER"), fast);
  std::uint64_t delivered = 0;
  for (std::size_t s = 0; s < subscribers; ++s) {
    const net::NodeId id("SUB" + std::to_string(s));
    network.register_node(id, [&delivered](const net::Message&) { ++delivered; });
    network.connect(id, net::NodeId("BROKER"), fast);
    broker.subscribe("T", id);
  }

  std::uint64_t seq = 0;
  for (auto _ : state) {
    broker.publish(net::NodeId("PUB"), core::Entity(make_instance("T", seq++)));
    simulator.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.counters["deliveries_per_publish"] = static_cast<double>(subscribers);
}

/// Many topics, one subscriber each: routing-table scaling.
void BM_TopicRouting(benchmark::State& state) {
  const auto topics = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(6));
  net::Broker broker(network, net::NodeId("BROKER"));
  net::LinkSpec fast;
  fast.base_latency = time_model::microseconds(10);
  fast.jitter = time_model::Duration::zero();
  fast.bytes_per_ms = 0.0;

  network.register_node(net::NodeId("PUB"), [](const net::Message&) {});
  network.connect(net::NodeId("PUB"), net::NodeId("BROKER"), fast);
  network.register_node(net::NodeId("SUB"), [](const net::Message&) {});
  network.connect(net::NodeId("SUB"), net::NodeId("BROKER"), fast);
  for (std::size_t t = 0; t < topics; ++t) {
    broker.subscribe("T" + std::to_string(t), net::NodeId("SUB"));
  }

  std::uint64_t seq = 0;
  for (auto _ : state) {
    broker.publish(net::NodeId("PUB"),
                   core::Entity(make_instance("T" + std::to_string(seq % topics), seq)));
    simulator.run();
    ++seq;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_Fanout)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_TopicRouting)->Arg(4)->Arg(64)->Arg(1024);

BENCHMARK_MAIN();
