/// E13 — Reliable-session overhead: entities/s through a ReliableEndpoint
/// pair as the FaultPlan's link loss climbs from 0% to 20%. The 0% leg
/// prices the protocol itself (framing, acks, timer churn) against the
/// fire-and-forget baseline; the lossy legs price the retransmission
/// machinery that buys exactly-once delivery.

#include <benchmark/benchmark.h>

#include "net/fault.hpp"
#include "net/reliable.hpp"

namespace {

using namespace stem;

core::PhysicalObservation make_obs(std::uint64_t seq) {
  core::PhysicalObservation o;
  o.mote = core::ObserverId("MT1");
  o.sensor = core::SensorId("SR");
  o.seq = seq;
  o.time = time_model::TimePoint(static_cast<time_model::Tick>(seq));
  o.location = geom::Location(geom::Point{1, 2});
  o.attributes.set("value", 50.0);
  return o;
}

net::LinkSpec fast_link() {
  net::LinkSpec fast;
  fast.base_latency = time_model::microseconds(10);
  fast.jitter = time_model::Duration::zero();
  fast.bytes_per_ms = 0.0;
  return fast;
}

/// One send + full simulator drain per iteration (delivery, acks, and any
/// retransmission rounds the loss forced). range(0) is the loss percent.
void BM_ReliableLink(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(5));
  net::FaultPlan plan(0xe13ULL);
  if (loss > 0.0) {
    net::LinkFault fault;
    fault.drop_prob = loss;
    plan.on_link(net::NodeId("a"), net::NodeId("b"), fault);  // data only; acks stay clean
    network.set_fault_plan(&plan);
  }

  std::uint64_t delivered = 0;
  net::ReliableEndpoint b(network, net::NodeId("b"),
                          [&delivered](const net::Message&) { ++delivered; });
  net::ReliableEndpoint a(network, net::NodeId("a"), [](const net::Message&) {});
  network.connect(net::NodeId("a"), net::NodeId("b"), fast_link());

  std::uint64_t seq = 0;
  for (auto _ : state) {
    a.send(net::NodeId("b"), core::Entity(make_obs(seq++)));
    simulator.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.counters["retransmits_per_send"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(a.stats().retransmits) / static_cast<double>(state.iterations());
}

/// Fire-and-forget reference on the identical link: what the session
/// layer's guarantees cost relative to a bare Network::send.
void BM_ReliableLink_PlainBaseline(benchmark::State& state) {
  sim::Simulator simulator;
  net::Network network(simulator, sim::Rng(5));
  std::uint64_t delivered = 0;
  network.register_node(net::NodeId("a"), [](const net::Message&) {});
  network.register_node(net::NodeId("b"), [&delivered](const net::Message&) { ++delivered; });
  network.connect(net::NodeId("a"), net::NodeId("b"), fast_link());

  std::uint64_t seq = 0;
  for (auto _ : state) {
    net::Message msg;
    msg.src = net::NodeId("a");
    msg.dst = net::NodeId("b");
    msg.payload = core::Entity(make_obs(seq++));
    network.send(std::move(msg));
    simulator.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}

}  // namespace

BENCHMARK(BM_ReliableLink)->Arg(0)->Arg(5)->Arg(20);
BENCHMARK(BM_ReliableLink_PlainBaseline);

BENCHMARK_MAIN();
