/// E11 — Detection engine throughput ablation: entities/second through a
/// DetectionEngine as a function of (a) number of registered definitions,
/// (b) correlation window length, (c) per-slot buffer cap, and (d) join
/// arity (slot count). This bounds what a single observer (mote / sink /
/// CCU) can sustain and motivates the engine's buffer-cap and window
/// pruning design.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

namespace {

using namespace stem;
using core::ConsumptionMode;
using core::EventDefinition;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using time_model::seconds;
using time_model::TimePoint;

// STEM_BENCH_PIN=1 opts the sharded-runtime benches into per-shard CPU
// pinning; tools/run_bench.sh records the setting (and the logical-core
// count) in each baseline's JSON context. Leave off on hosts with fewer
// cores than shards — pinning stacked workers only adds scheduler latency.
bool bench_pin_shards() {
  const char* v = std::getenv("STEM_BENCH_PIN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Builds "<prefix><i>" without the temporary-heavy operator+ chain (which
// also trips a GCC 12 -Wrestrict false positive when inlined under -O2).
std::string numbered(const char* prefix, std::size_t i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

std::vector<core::Entity> make_entities(std::size_t n, const char* sensor = "SR",
                                        std::size_t sensor_pool = 0) {
  sim::Rng rng(5);
  std::vector<core::Entity> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::PhysicalObservation obs;
    obs.mote = ObserverId(numbered("MT", i % 8));
    obs.sensor = sensor_pool > 0 ? SensorId(numbered(sensor, i % sensor_pool))
                                 : SensorId(sensor);
    obs.seq = i;
    obs.time = TimePoint(static_cast<time_model::Tick>(i) * 100'000);  // 10 Hz
    obs.location = geom::Location(geom::Point{rng.uniform(0, 100), rng.uniform(0, 100)});
    obs.attributes.set("value", rng.uniform(0, 100));
    out.push_back(core::Entity(std::move(obs)));
  }
  return out;
}

EventDefinition threshold_def(const std::string& id, double threshold,
                              const std::string& sensor = "SR") {
  return EventDefinition{EventTypeId(id),
                         {{"x", SlotFilter::observation(SensorId(sensor))}},
                         core::c_attr(core::ValueAggregate::kAverage, "value", {0},
                                      core::RelationalOp::kGt, threshold),
                         seconds(60),
                         {},
                         ConsumptionMode::kConsume};
}

EventDefinition join_def(std::size_t arity, time_model::Duration window) {
  std::vector<core::SlotSpec> slots;
  for (std::size_t i = 0; i < arity; ++i) {
    slots.push_back({numbered("s", i), SlotFilter::observation(SensorId("SR"))});
  }
  std::vector<core::ConditionExpr> conds;
  for (std::size_t i = 0; i + 1 < arity; ++i) {
    conds.push_back(core::c_time(static_cast<core::SlotIndex>(i),
                                 time_model::TemporalOp::kBefore,
                                 static_cast<core::SlotIndex>(i + 1)));
    conds.push_back(core::c_distance(static_cast<core::SlotIndex>(i),
                                     static_cast<core::SlotIndex>(i + 1),
                                     core::RelationalOp::kLt, 30.0));
  }
  return EventDefinition{EventTypeId("JOIN"), std::move(slots), core::c_and(std::move(conds)),
                         window,             {},               ConsumptionMode::kConsume};
}

void BM_DefinitionCount(benchmark::State& state) {
  const auto defs = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096);
  core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0});
  for (std::size_t i = 0; i < defs; ++i) {
    engine.add_definition(threshold_def(numbered("D", i),
                                        90.0 + static_cast<double>(i)));  // rarely fires
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const core::Entity& e = entities[i & 4095];
    benchmark::DoNotOptimize(engine.observe(e, e.occurrence_time().end()));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Resident-set size in KiB from /proc/self/status, or 0 when the file is
/// unavailable (non-Linux hosts record rss_mb = 0 rather than failing).
long read_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

/// Registration-path scaling: time (and resident memory) to register a
/// near-duplicate definition family, up to a million single-slot
/// threshold rules on one sensor with constants cycling a small set —
/// the shape the shared-plan compiler and the routing index's pending
/// segment lists are built for. One iteration per arg keeps the RSS
/// delta meaningful (later iterations would reuse allocator pools).
void BM_RegistrationScale(benchmark::State& state) {
  const auto defs = static_cast<std::size_t>(state.range(0));
  double rss_mb = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = std::make_unique<core::DetectionEngine>(ObserverId("X"), core::Layer::kSensor,
                                                          geom::Point{0, 0});
    const long before = read_rss_kb();
    state.ResumeTiming();
    for (std::size_t i = 0; i < defs; ++i) {
      engine->add_definition(
          threshold_def(numbered("D", i), 50.0 + static_cast<double>(i % 512)));
    }
    benchmark::DoNotOptimize(engine->definition_count());
    state.PauseTiming();
    rss_mb = std::max(rss_mb, static_cast<double>(read_rss_kb() - before) / 1024.0);
    engine.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(defs));
  state.counters["rss_mb"] = rss_mb;
}

void BM_JoinArity(benchmark::State& state) {
  const auto arity = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096);
  core::EngineOptions opts;
  opts.max_buffer = 16;
  core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0}, opts);
  engine.add_definition(join_def(arity, seconds(2)));
  std::size_t i = 0;
  for (auto _ : state) {
    const core::Entity& e = entities[i & 4095];
    benchmark::DoNotOptimize(engine.observe(e, e.occurrence_time().end()));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["bindings/op"] = benchmark::Counter(
      static_cast<double>(engine.stats().bindings_tried) /
          static_cast<double>(engine.stats().entities_in),
      benchmark::Counter::kAvgThreads);
}

void BM_BufferCap(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096);
  core::EngineOptions opts;
  opts.max_buffer = cap;
  core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0}, opts);
  engine.add_definition(join_def(2, seconds(3600)));  // window never prunes
  std::size_t i = 0;
  for (auto _ : state) {
    const core::Entity& e = entities[i & 4095];
    benchmark::DoNotOptimize(engine.observe(e, e.occurrence_time().end()));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_WindowLength(benchmark::State& state) {
  const auto window_s = state.range(0);
  const auto entities = make_entities(4096);
  core::EngineOptions opts;
  opts.max_buffer = 256;
  core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0}, opts);
  engine.add_definition(join_def(2, seconds(window_s)));
  std::size_t i = 0;
  for (auto _ : state) {
    const core::Entity& e = entities[i & 4095];
    benchmark::DoNotOptimize(engine.observe(e, e.occurrence_time().end()));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Routing fan-out: N definitions each listening on a *distinct* sensor;
/// every arrival is relevant to exactly one. The routing index makes this
/// O(1) in N where the pre-index engine probed all N filters per arrival.
void BM_RoutingFanout(benchmark::State& state) {
  const auto defs = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096, "SR", defs);
  core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0});
  for (std::size_t i = 0; i < defs; ++i) {
    engine.add_definition(threshold_def(numbered("D", i), 50.0, numbered("SR", i)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const core::Entity& e = entities[i & 4095];
    benchmark::DoNotOptimize(engine.observe(e, e.occurrence_time().end()));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Spatial candidate selection: a retain-mode 2-slot distance join over a
/// large window/buffer, where the slot buffers cross the spatial-index
/// activation threshold and candidates come from GridIndex queries. The
/// bindings/op counter shows the selectivity the index exploits.
void BM_SpatialJoin(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096);
  core::EngineOptions opts;
  opts.max_buffer = cap;
  core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0}, opts);
  EventDefinition def{EventTypeId("NEARPAIR"),
                      {{"a", SlotFilter::observation(SensorId("SR"))},
                       {"b", SlotFilter::observation(SensorId("SR"))}},
                      core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                   core::c_distance(0, 1, core::RelationalOp::kLt, 5.0)}),
                      seconds(3600),  // window never prunes; cap governs
                      {},
                      ConsumptionMode::kUnrestricted};
  engine.add_definition(def);
  std::size_t i = 0;
  for (auto _ : state) {
    const core::Entity& e = entities[i & 4095];
    benchmark::DoNotOptimize(engine.observe(e, e.occurrence_time().end()));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["bindings/op"] = benchmark::Counter(
      static_cast<double>(engine.stats().bindings_tried) /
          static_cast<double>(engine.stats().entities_in),
      benchmark::Counter::kAvgThreads);
}

/// The 64-definition shard-scaling workload: 8 sensors x 8 thresholds
/// spread over the value range, so arrivals regularly fire and the
/// per-arrival work (routing + evaluation + instance synthesis) is large
/// enough to parallelize. Entities rotate through the 8 sensors.
std::vector<EventDefinition> scaling_defs() {
  std::vector<EventDefinition> defs;
  for (std::size_t i = 0; i < 64; ++i) {
    defs.push_back(threshold_def(numbered("D", i), 30.0 + 8.0 * static_cast<double>(i / 8),
                                 numbered("SR", i % 8)));
  }
  return defs;
}

/// Shard scaling on the 64-definition workload, batched ingest (256).
/// Arg(0) is the reference: the same workload through one sequential
/// DetectionEngine's observe_batch. Arg(N>0) runs a ShardedEngineRuntime
/// with N worker shards; wall-clock (UseRealTime) captures the end-to-end
/// ingest -> workers -> ordered-merge pipeline. Shard speedup requires
/// cores: on a single-CPU host the runtime adds queue/merge overhead and
/// cannot beat Arg(0).
void BM_ShardScaling(benchmark::State& state) {
  constexpr std::size_t kBatch = 256;
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096, "SR", 8);
  std::vector<time_model::TimePoint> nows;
  nows.reserve(entities.size());
  for (const auto& e : entities) nows.push_back(e.occurrence_time().end());

  std::uint64_t produced = 0;
  if (shards == 0) {
    core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0});
    for (EventDefinition& def : scaling_defs()) engine.add_definition(std::move(def));
    std::size_t i = 0;
    for (auto _ : state) {
      const std::size_t at = (i * kBatch) & 4095;
      auto out = engine.observe_batch(std::span(entities).subspan(at, kBatch),
                                      std::span(nows).subspan(at, kBatch));
      produced += out.size();
      benchmark::DoNotOptimize(out);
      ++i;
    }
  } else {
    runtime::RuntimeOptions options;
    options.shards = shards;
    options.pin_shards = bench_pin_shards();
    runtime::ShardedEngineRuntime rt(ObserverId("X"), core::Layer::kSensor, {0, 0}, options);
    for (EventDefinition& def : scaling_defs()) rt.add_definition(std::move(def));
    std::size_t i = 0;
    // flush() inside the timed region: every iteration fully processes its
    // batch, so no backlog drains untimed and the comparison with Arg(0)
    // is symmetric. Within-batch shard parallelism is still exercised.
    for (auto _ : state) {
      const std::size_t at = (i * kBatch) & 4095;
      rt.ingest_batch(std::span(entities).subspan(at, kBatch),
                      std::span(nows).subspan(at, kBatch));
      auto out = rt.flush();
      produced += out.size();
      benchmark::DoNotOptimize(out);
      ++i;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBatch));
  state.counters["instances/op"] = benchmark::Counter(
      static_cast<double>(produced) / static_cast<double>(state.iterations()),
      benchmark::Counter::kAvgThreads);
}

/// Entities whose sensor follows a skewed (Zipf, s = 1.2) or uniform
/// distribution over the 8-sensor pool of the scaling workload. Under
/// Zipf, sensor 0 draws ~45% of the arrivals, so the shard hosting its
/// definitions saturates while the rest idle — the motivating case for
/// adaptive rebalancing.
std::vector<core::Entity> make_dist_entities(std::size_t n, bool zipf) {
  sim::Rng rng(11);
  // CDF over 8 sensors: p(k) ~ 1 / (k+1)^1.2.
  double cdf[8];
  double total = 0.0;
  for (int k = 0; k < 8; ++k) total += 1.0 / std::pow(static_cast<double>(k + 1), 1.2);
  double acc = 0.0;
  for (int k = 0; k < 8; ++k) {
    acc += (1.0 / std::pow(static_cast<double>(k + 1), 1.2)) / total;
    cdf[k] = acc;
  }
  std::vector<core::Entity> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t sensor = i % 8;
    if (zipf) {
      const double u = rng.uniform();
      sensor = 0;
      while (sensor < 7 && u > cdf[sensor]) ++sensor;
    }
    core::PhysicalObservation obs;
    obs.mote = ObserverId(numbered("MT", i % 8));
    obs.sensor = SensorId(numbered("SR", sensor));
    obs.seq = i;
    obs.time = TimePoint(static_cast<time_model::Tick>(i) * 100'000);
    obs.location = geom::Location(geom::Point{rng.uniform(0, 100), rng.uniform(0, 100)});
    obs.attributes.set("value", rng.uniform(0, 100));
    out.push_back(core::Entity(std::move(obs)));
  }
  return out;
}

/// Drives the 64-definition workload through a 4-shard runtime in 256-
/// arrival batches. `epoch` > 0 turns on automatic rebalancing.
void run_runtime_workload(benchmark::State& state, const std::vector<core::Entity>& entities,
                          std::size_t epoch,
                          runtime::OrderingTier tier = runtime::OrderingTier::kGlobalTotalOrder) {
  constexpr std::size_t kBatch = 256;
  std::vector<time_model::TimePoint> nows;
  nows.reserve(entities.size());
  for (const auto& e : entities) nows.push_back(e.occurrence_time().end());
  runtime::RuntimeOptions options;
  options.shards = 4;
  options.pin_shards = bench_pin_shards();
  options.rebalance_epoch = epoch;
  options.ordering = tier;
  runtime::ShardedEngineRuntime rt(ObserverId("X"), core::Layer::kSensor, {0, 0}, options);
  for (EventDefinition& def : scaling_defs()) rt.add_definition(std::move(def));
  std::size_t i = 0;
  std::uint64_t produced = 0;
  for (auto _ : state) {
    const std::size_t at = (i * kBatch) & 4095;
    rt.ingest_batch(std::span(entities).subspan(at, kBatch),
                    std::span(nows).subspan(at, kBatch));
    auto out = rt.flush();
    produced += out.size();
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBatch));
  const auto loads = rt.shard_arrival_loads();
  const auto total = static_cast<double>(
      std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}));
  const auto peak = static_cast<double>(*std::max_element(loads.begin(), loads.end()));
  // Load-spread headline: 1.0 = perfectly even, 4.0 = one shard owns all.
  state.counters["max/mean load"] = benchmark::Counter(
      total > 0 ? peak / (total / static_cast<double>(loads.size())) : 0.0,
      benchmark::Counter::kAvgThreads);
  state.counters["migrations"] = benchmark::Counter(
      static_cast<double>(rt.stats().migrations), benchmark::Counter::kAvgThreads);
}

/// Skewed vs uniform arrival mix through the sharded runtime with static
/// placement: quantifies what a pinned hot shard costs end to end.
void BM_SkewedLoad(benchmark::State& state, bool zipf) {
  run_runtime_workload(state, make_dist_entities(4096, zipf), /*epoch=*/0);
}

/// Adaptive rebalancing on/off over the Zipf-skewed mix. On a single-core
/// host both legs measure queue+merge overhead (see docs: the shard
/// workers are time-sliced, so spreading load cannot buy wall-clock
/// time); the `max/mean load` counter still shows the policy narrowing
/// the spread — re-record on a multi-core host for the throughput delta.
void BM_Rebalance(benchmark::State& state, bool enabled) {
  run_runtime_workload(state, make_dist_entities(4096, /*zipf=*/true),
                       enabled ? 1024 : 0);
}

/// What each delivery-ordering tier costs on the Zipf-skewed mix: the
/// byte-exact global merge serializes release behind the slowest shard;
/// per-definition order frees cross-definition interleaving but pays for
/// release-hold bookkeeping; unordered releases chunks as produced and
/// only maintains the low watermark.
void BM_OrderingTier(benchmark::State& state, runtime::OrderingTier tier) {
  run_runtime_workload(state, make_dist_entities(4096, /*zipf=*/true), /*epoch=*/0, tier);
}

/// Per-arrival entity-copy elision (the ROADMAP lever): the same buffered
/// 64-definition join workload driven through the reference-path observe
/// (deep-copies each arrival into shared ownership when some slot buffers
/// it) vs the prestored-path observe (aliases caller-owned shared storage
/// — what the sharded runtime's workers do with the ingest batch). Arg:
/// 0 = reference copy path, 1 = shared prestored path. Single-definition
/// no-regression is gated separately by BM_DefinitionCount/1.
void BM_SharedArrival(benchmark::State& state) {
  const bool shared = state.range(0) != 0;
  const auto entities = make_entities(4096, "SR", 64);
  std::vector<std::shared_ptr<const core::Entity>> stored;
  if (shared) {
    stored.reserve(entities.size());
    for (const auto& e : entities) stored.push_back(std::make_shared<const core::Entity>(e));
  }
  core::EngineOptions opts;
  opts.max_buffer = 4;
  core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0}, opts);
  // 64 buffered two-slot joins, one per sensor, that rarely match: each
  // arrival routes to one definition and the per-arrival cost is
  // buffering, where the copy lives (a tight cap keeps enumeration
  // marginal).
  for (std::size_t i = 0; i < 64; ++i) {
    EventDefinition def{EventTypeId(numbered("J", i)),
                        {{"a", SlotFilter::observation(SensorId(numbered("SR", i)))},
                         {"b", SlotFilter::observation(SensorId(numbered("SR", i)))}},
                        core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                     core::c_distance(0, 1, core::RelationalOp::kLt, 0.5)}),
                        seconds(3600),
                        {},
                        ConsumptionMode::kConsume};
    engine.add_definition(std::move(def));
  }
  std::vector<core::Emission> out;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t at = i & 4095;
    out.clear();
    if (shared) {
      engine.observe(stored[at], entities[at].occurrence_time().end(), out);
    } else {
      engine.observe(entities[at], entities[at].occurrence_time().end(), out);
    }
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Hierarchical cascade end to end: a 3-layer workload (8 per-sensor HOT
/// thresholds -> CP pair join over HOT instances -> ALM) through a
/// 4-shard cascading runtime at depth caps 1 / 2 / 4. Depth 1 suppresses
/// all re-ingestion (the L1-only stream), 2 adds the CP layer, 4 closes
/// the full hierarchy. Deterministic closure serializes arrivals behind
/// the frontier, so this family measures the coordination cost a
/// multi-level workload pays for byte-exact merging. items == arrivals.
void add_cascade_hierarchy(runtime::ShardedEngineRuntime& rt) {
  for (std::size_t i = 0; i < 8; ++i) {
    EventDefinition hot = threshold_def(numbered("HOT", i), 75.0, numbered("SR", i));
    hot.synthesis.attributes.push_back(
        core::AttributeRule{"value", core::ValueAggregate::kMax, "value", {0}});
    rt.add_definition(std::move(hot));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EventDefinition cp{EventTypeId(numbered("CP", i)),
                       {{"a", SlotFilter::instance_of(EventTypeId(numbered("HOT", i)))},
                        {"b", SlotFilter::instance_of(EventTypeId(numbered("HOT", i)))}},
                       core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1),
                                    core::c_distance(0, 1, core::RelationalOp::kLt, 40.0)}),
                       seconds(30),
                       {},
                       ConsumptionMode::kConsume};
    cp.synthesis.attributes.push_back(
        core::AttributeRule{"value", core::ValueAggregate::kMax, "value", {0, 1}});
    rt.add_definition(std::move(cp));
    rt.add_definition(EventDefinition{
        EventTypeId(numbered("ALM", i)),
        {{"f", SlotFilter::instance_of(EventTypeId(numbered("CP", i)))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 75.0),
        seconds(30),
        {},
        ConsumptionMode::kConsume});
  }
}

void BM_CascadeDepth(benchmark::State& state) {
  constexpr std::size_t kBatch = 256;
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096, "SR", 8);
  std::vector<time_model::TimePoint> nows;
  nows.reserve(entities.size());
  for (const auto& e : entities) nows.push_back(e.occurrence_time().end());

  runtime::RuntimeOptions options;
  options.shards = 4;
  options.pin_shards = bench_pin_shards();
  options.cascade = true;
  options.cascade_pipeline = 4;
  options.engine.max_cascade_depth = depth;
  runtime::ShardedEngineRuntime rt(ObserverId("X"), core::Layer::kSensor, {0, 0}, options);
  add_cascade_hierarchy(rt);

  std::size_t i = 0;
  std::uint64_t produced = 0;
  for (auto _ : state) {
    const std::size_t at = (i * kBatch) & 4095;
    rt.ingest_batch(std::span(entities).subspan(at, kBatch),
                    std::span(nows).subspan(at, kBatch));
    auto out = rt.flush();
    produced += out.size();
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBatch));
  state.counters["instances/op"] = benchmark::Counter(
      static_cast<double>(produced) / static_cast<double>(state.iterations()),
      benchmark::Counter::kAvgThreads);
  state.counters["reingested"] = benchmark::Counter(
      static_cast<double>(rt.stats().cascade_reingested), benchmark::Counter::kAvgThreads);
}

/// Cascade delivery latency per ordering tier: time from ingesting a
/// 256-arrival batch to the *first* released emission of that batch, with
/// four pipelined closures (cascade_pipeline = 4); the full drain between
/// iterations is untimed. The global tier must merge the batch's oldest
/// whole closure before anything leaves, so its first-release cost grows
/// with the depth cap; the relaxed tiers stream a closure's levels as
/// they are renumbered (per-definition: from the oldest open closure;
/// unordered: from any), so depth ~1 ties global and depth 4 beats it —
/// the tier headroom BM_OrderingTier shows, now reachable by cascades.
/// Arg: cascade depth cap.
void BM_CascadeTier(benchmark::State& state, runtime::OrderingTier tier) {
  constexpr std::size_t kBatch = 256;
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096, "SR", 8);
  std::vector<time_model::TimePoint> nows;
  nows.reserve(entities.size());
  for (const auto& e : entities) nows.push_back(e.occurrence_time().end());

  runtime::RuntimeOptions options;
  options.shards = 4;
  options.pin_shards = bench_pin_shards();
  options.cascade = true;
  options.cascade_pipeline = 4;
  options.ordering = tier;
  options.engine.max_cascade_depth = depth;
  runtime::ShardedEngineRuntime rt(ObserverId("X"), core::Layer::kSensor, {0, 0}, options);
  add_cascade_hierarchy(rt);

  std::size_t i = 0;
  std::uint64_t produced = 0;
  std::uint64_t assigned = 0;
  for (auto _ : state) {
    const std::size_t at = (i * kBatch) & 4095;
    const std::uint64_t base = assigned;  // stamps assigned before this batch
    rt.ingest_batch(std::span(entities).subspan(at, kBatch),
                    std::span(nows).subspan(at, kBatch));
    // Unroutable arrivals (sensor readings under every HOT threshold
    // segment) are dropped unstamped, so the stamp frontier advances by
    // the *routed* count, not kBatch.
    assigned = rt.stats().arrivals;
    bool seen = false;
    while (!seen) {
      for (const runtime::TaggedInstance& t : rt.poll_tagged()) {
        ++produced;
        if (t.stamp > base) seen = true;
      }
      // No emission can come (the whole batch closed silent): stop waiting.
      if (!seen && rt.low_watermark() >= assigned) break;
      // Polling must not starve the coordinator/workers of the core(s)
      // they need to produce the release we are waiting for.
      if (!seen) std::this_thread::yield();
    }
    state.PauseTiming();
    produced += rt.flush_tagged().size();
    state.ResumeTiming();
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBatch));
  state.counters["instances/op"] = benchmark::Counter(
      static_cast<double>(produced) / static_cast<double>(state.iterations()),
      benchmark::Counter::kAvgThreads);
  state.counters["closures_max"] = benchmark::Counter(
      static_cast<double>(rt.stats().closures_in_flight_max), benchmark::Counter::kAvgThreads);
}

/// Batched ingest amortization on a single engine: observe_batch over the
/// 64-definition workload at batch sizes 1 / 16 / 256. items == entities.
void BM_BatchSize(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto entities = make_entities(4096, "SR", 8);
  std::vector<time_model::TimePoint> nows;
  nows.reserve(entities.size());
  for (const auto& e : entities) nows.push_back(e.occurrence_time().end());
  core::DetectionEngine engine(ObserverId("X"), core::Layer::kSensor, {0, 0});
  for (EventDefinition& def : scaling_defs()) engine.add_definition(std::move(def));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t at = (i * batch) & 4095;
    benchmark::DoNotOptimize(engine.observe_batch(std::span(entities).subspan(at, batch),
                                                  std::span(nows).subspan(at, batch)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * batch));
}

}  // namespace

BENCHMARK(BM_DefinitionCount)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);
// One iteration per arg: the RSS delta is only meaningful on a cold
// allocator, and a million registrations are seconds-scale anyway.
BENCHMARK(BM_RegistrationScale)
    ->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_JoinArity)->Arg(1)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_BufferCap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_WindowLength)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_RoutingFanout)->Arg(1)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_SpatialJoin)->Arg(64)->Arg(256)->Arg(1024);
// Arg(0) = sequential reference engine; Arg(N) = N-shard runtime.
BENCHMARK(BM_ShardScaling)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();
// Arg(0) = per-arrival deep copy, Arg(1) = prestored shared storage.
BENCHMARK(BM_SharedArrival)->Arg(0)->Arg(1);
BENCHMARK(BM_CascadeDepth)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK_CAPTURE(BM_CascadeTier, global, runtime::OrderingTier::kGlobalTotalOrder)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_CascadeTier, perdef, runtime::OrderingTier::kPerDefinitionOrder)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_CascadeTier, unordered, runtime::OrderingTier::kUnorderedWatermarked)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime();
BENCHMARK(BM_BatchSize)->Arg(1)->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_SkewedLoad, uniform, false)->UseRealTime();
BENCHMARK_CAPTURE(BM_SkewedLoad, zipf, true)->UseRealTime();
BENCHMARK_CAPTURE(BM_Rebalance, Off, false)->UseRealTime();
BENCHMARK_CAPTURE(BM_Rebalance, On, true)->UseRealTime();
BENCHMARK_CAPTURE(BM_OrderingTier, global, runtime::OrderingTier::kGlobalTotalOrder)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_OrderingTier, perdef, runtime::OrderingTier::kPerDefinitionOrder)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_OrderingTier, unordered, runtime::OrderingTier::kUnorderedWatermarked)
    ->UseRealTime();

BENCHMARK_MAIN();
