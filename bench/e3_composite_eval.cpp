/// E3 — Composite condition evaluation (Eq. 4.5): throughput vs condition
/// tree depth and width, and the short-circuit vs eager ablation called
/// out in DESIGN.md. Trees mix attribute, temporal, spatial, and distance
/// leaves over a two-entity binding.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/condition.hpp"
#include "sim/random.hpp"

namespace {

using namespace stem;
using core::ConditionExpr;

core::Entity make_entity(double value, time_model::Tick t, geom::Point p) {
  core::PhysicalObservation obs;
  obs.mote = core::ObserverId("MT1");
  obs.sensor = core::SensorId("SR");
  obs.time = time_model::TimePoint(t);
  obs.location = geom::Location(p);
  obs.attributes.set("value", value);
  return core::Entity(std::move(obs));
}

/// Random leaf over slots {0, 1}; ~50% of leaves are true for the fixture.
ConditionExpr random_leaf(sim::Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return core::c_attr(core::ValueAggregate::kAverage, "value", {0, 1},
                          rng.chance(0.5) ? core::RelationalOp::kGt : core::RelationalOp::kLt,
                          25.0);
    case 1:
      return core::c_time(0,
                          rng.chance(0.5) ? time_model::TemporalOp::kBefore
                                          : time_model::TemporalOp::kAfter,
                          1);
    case 2:
      return core::c_distance(0, 1, rng.chance(0.5) ? core::RelationalOp::kLt
                                                    : core::RelationalOp::kGt,
                              50.0);
    default:
      return core::c_space_const(0, geom::SpatialOp::kInside,
                                 geom::Location(geom::Polygon::rectangle(
                                     {0, 0}, {rng.chance(0.5) ? 100.0 : 1.0, 100.0})));
  }
}

ConditionExpr build_tree(sim::Rng& rng, std::size_t depth, std::size_t width) {
  if (depth <= 1) return random_leaf(rng);
  std::vector<ConditionExpr> children;
  children.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    children.push_back(build_tree(rng, depth - 1, width));
  }
  if (rng.chance(0.2)) return core::c_not(core::c_and(std::move(children)));
  return rng.chance(0.5) ? core::c_and(std::move(children)) : core::c_or(std::move(children));
}

void BM_CompositeEval(benchmark::State& state, core::EvalMode mode) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto width = static_cast<std::size_t>(state.range(1));
  sim::Rng rng(99);
  const ConditionExpr tree = build_tree(rng, depth, width);

  const core::Entity e0 = make_entity(20.0, 100, {10, 10});
  const core::Entity e1 = make_entity(30.0, 200, {20, 20});
  const core::Entity* slots[] = {&e0, &e1};
  const core::EvalContext ctx(slots, 2);

  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_condition(tree, ctx, mode));
  }
  state.counters["leaves"] = static_cast<double>(tree.leaf_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SingleLeaf(benchmark::State& state) {
  const auto leaf = core::c_attr(core::ValueAggregate::kAverage, "value", {0, 1},
                                 core::RelationalOp::kGt, 25.0);
  const core::Entity e0 = make_entity(20.0, 100, {10, 10});
  const core::Entity e1 = make_entity(30.0, 200, {20, 20});
  const core::Entity* slots[] = {&e0, &e1};
  const core::EvalContext ctx(slots, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_condition(leaf, ctx));
  }
}

}  // namespace

BENCHMARK(BM_SingleLeaf);
BENCHMARK_CAPTURE(BM_CompositeEval, shortcircuit, stem::core::EvalMode::kShortCircuit)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({5, 2})
    ->Args({2, 4})
    ->Args({3, 4})
    ->Args({2, 8});
BENCHMARK_CAPTURE(BM_CompositeEval, eager, stem::core::EvalMode::kEager)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({5, 2})
    ->Args({2, 4})
    ->Args({3, 4})
    ->Args({2, 8});

BENCHMARK_MAIN();
