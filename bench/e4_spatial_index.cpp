/// E4 — Spatial index ablation: naive scan vs uniform grid vs R-tree for
/// field-event Joint (box-intersection) queries, over 10^2..10^5 stored
/// events. Shows where indexing starts paying for spatial condition
/// evaluation at sinks and the database server.

#include <benchmark/benchmark.h>

#include <vector>

#include "geom/grid_index.hpp"
#include "geom/rtree.hpp"
#include "sim/random.hpp"

namespace {

using namespace stem::geom;

struct Workload {
  std::vector<BoundingBox> boxes;
  std::vector<BoundingBox> queries;
};

Workload make_workload(std::size_t n) {
  stem::sim::Rng rng(1234);
  Workload w;
  const double area = 10'000.0;
  w.boxes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point lo{rng.uniform(0, area), rng.uniform(0, area)};
    w.boxes.emplace_back(lo, Point{lo.x + rng.uniform(1, 50), lo.y + rng.uniform(1, 50)});
  }
  for (int i = 0; i < 64; ++i) {
    const Point lo{rng.uniform(0, area), rng.uniform(0, area)};
    w.queries.emplace_back(lo, Point{lo.x + rng.uniform(10, 200), lo.y + rng.uniform(10, 200)});
  }
  return w;
}

void BM_NaiveScan(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  std::size_t qi = 0;
  for (auto _ : state) {
    const BoundingBox& q = w.queries[qi++ & 63];
    std::size_t hits = 0;
    for (const auto& b : w.boxes) {
      if (b.intersects(q)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}

void BM_GridQuery(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  GridIndex<std::uint32_t> grid(100.0);
  for (std::size_t i = 0; i < w.boxes.size(); ++i) {
    grid.insert(w.boxes[i], static_cast<std::uint32_t>(i));
  }
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.query(w.queries[qi++ & 63]));
  }
}

void BM_RTreeQuery(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  RTree<std::uint32_t> tree;
  for (std::size_t i = 0; i < w.boxes.size(); ++i) {
    tree.insert(w.boxes[i], static_cast<std::uint32_t>(i));
  }
  std::size_t qi = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    tree.visit(w.queries[qi++ & 63], [&](const std::uint32_t&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}

void BM_GridInsert(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    GridIndex<std::uint32_t> grid(100.0);
    for (std::size_t i = 0; i < w.boxes.size(); ++i) {
      grid.insert(w.boxes[i], static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(grid.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}

void BM_RTreeInsert(benchmark::State& state) {
  const auto w = make_workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    RTree<std::uint32_t> tree;
    for (std::size_t i = 0; i < w.boxes.size(); ++i) {
      tree.insert(w.boxes[i], static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}

}  // namespace

BENCHMARK(BM_NaiveScan)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_GridQuery)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_RTreeQuery)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_GridInsert)->Arg(1000)->Arg(10000);
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

BENCHMARK_MAIN();
