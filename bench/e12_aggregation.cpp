/// E12 — In-network aggregation trade-off. The paper's motes "relay and
/// aggregate packets from other motes"; batching amortizes per-message
/// headers but delays delivery by up to the aggregation window. This
/// experiment sweeps the window and reports WSN messages, bytes, detection
/// count, and mean obs->CP latency on the fire workload.

#include <iomanip>
#include <iostream>
#include <memory>

#include "eventlang/parser.hpp"
#include "scenario/deployment.hpp"
#include "sensing/phenomena.hpp"
#include "sim/stats.hpp"

namespace {

using namespace stem;

struct Row {
  std::uint64_t messages = 0;
  std::uint64_t kilobytes = 0;
  std::uint64_t detections = 0;
  double mean_latency_ms = 0.0;
};

}  // namespace

int main() {
  using namespace stem;
  std::cout << "=== E12: in-network aggregation window sweep (36 motes, fire) ===\n\n";
  std::cout << std::setw(12) << "window" << std::setw(12) << "messages" << std::setw(10)
            << "KB" << std::setw(12) << "detections" << std::setw(16) << "obs->CP ms"
            << "\n";

  bool ok = true;
  std::uint64_t prev_messages = 0;
  double prev_latency = 0.0;
  bool first = true;
  std::uint64_t base_detections = 0;

  for (const auto window_ms : {0, 500, 1000, 2000, 4000}) {
    scenario::DeploymentConfig cfg;
    cfg.topology.motes = 36;
    cfg.topology.placement = wsn::TopologyConfig::Placement::kGrid;
    cfg.topology.radio_range = 45.0;
    cfg.topology.seed = 17;
    cfg.seed = 17;
    cfg.sampling_period = time_model::milliseconds(500);
    cfg.aggregate_window = time_model::milliseconds(window_ms);

    scenario::Deployment d(cfg);
    const auto fire = std::make_shared<sensing::SpreadingFire>(
        geom::Point{50, 50}, time_model::TimePoint::epoch() + time_model::seconds(5), 2.0);
    const auto hot = eventlang::parse_event(R"(
      event HOT { window: 2 s; slot x = obs(SRheat);
        when avg(value of x) > 80;
        emit { attr value = avg(value of x); } }
    )");
    const auto cp = eventlang::parse_event(R"(
      event CP { window: 10 s; slot h = event(HOT); when rho(h) >= 0.0;
        emit { time: latest; } }
    )");
    d.for_each_mote([&](wsn::SensorMote& mote) {
      mote.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(core::SensorId("SRheat"),
                                                                   fire, 1.0));
      mote.add_definition(hot);
    });

    std::uint64_t detections = 0;
    sim::Summary latency;
    for (auto& sink : d.sinks()) {
      sink->add_definition(cp);
      sink->on_instance([&](const core::EventInstance& inst) {
        if (inst.key.event != core::EventTypeId("CP")) return;
        ++detections;
        latency.add(static_cast<double>((inst.gen_time - inst.est_time.end()).ticks()) /
                    1000.0);
      });
    }
    d.run_until(time_model::TimePoint::epoch() + time_model::seconds(40));

    const Row row{d.network().stats().sent, d.network().stats().bytes_sent / 1024, detections,
                  latency.mean()};
    std::cout << std::setw(10) << window_ms << "ms" << std::setw(12) << row.messages
              << std::setw(10) << row.kilobytes << std::setw(12) << row.detections
              << std::setw(13) << std::fixed << std::setprecision(1) << row.mean_latency_ms
              << " ms\n";

    if (first) {
      base_detections = row.detections;
      ok = ok && row.detections > 0;
      first = false;
    } else {
      // Aggregation must cut messages and raise latency, monotonically.
      ok = ok && row.messages < prev_messages && row.mean_latency_ms > prev_latency;
      // Detections stay within 80% of baseline: the only losses are events
      // still buffered in the final (unflushed) window at the horizon.
      ok = ok && row.detections * 10 >= base_detections * 8;
    }
    prev_messages = row.messages;
    prev_latency = row.mean_latency_ms;
  }

  std::cout << "\n"
            << (ok ? "E12 OK: aggregation trades bounded latency for monotone message "
                     "savings\n"
                   : "E12 FAILED: unexpected trade-off shape\n");
  return ok ? 0 : 1;
}
