/// E5 — Hierarchical vs centralized evaluation.
///
/// The architectural premise of the paper's Sec. 3 hierarchy: evaluating
/// event conditions *at the motes* condenses raw samples into sparse
/// sensor events, unloading the network, versus a centralized design that
/// ships every observation to one evaluator. Both configurations run the
/// same fire workload with the same definitions; we report WSN messages,
/// bytes, and detection counts as the mote population grows.

#include <iomanip>
#include <iostream>

#include "eventlang/parser.hpp"
#include "scenario/deployment.hpp"
#include "sensing/phenomena.hpp"

namespace {

using namespace stem;

struct RunResult {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t detections = 0;  // CP_FIRE at the sink
  double mote_energy_mj = 0.0;   // summed battery drain across motes
};

struct Workload {
  const char* name;
  double threshold;     // HOT threshold
  double spread_speed;  // m/s
  int horizon_s;
};

RunResult run_config(std::size_t motes, bool centralized, const Workload& w,
                     std::uint64_t seed) {
  scenario::DeploymentConfig cfg;
  cfg.topology.motes = motes;
  cfg.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.topology.radio_range = 45.0;
  cfg.topology.seed = seed;
  cfg.seed = seed;
  cfg.sampling_period = time_model::milliseconds(500);
  cfg.forward_raw = centralized;
  cfg.sink_cascade = centralized;  // HOT -> CP_FIRE resolves centrally

  scenario::Deployment d(cfg);
  const auto fire = std::make_shared<sensing::SpreadingFire>(
      geom::Point{50, 50}, time_model::TimePoint::epoch() + time_model::seconds(5),
      w.spread_speed);

  const std::string thr = std::to_string(w.threshold);
  const auto hot = eventlang::parse_event(
      "event HOT { window: 2 s; slot x = obs(SRheat);\n"
      "  when avg(value of x) > " + thr + ";\n"
      "  emit { attr value = avg(value of x); } }");
  const auto cp_fire = eventlang::parse_event(
      "event CP_FIRE { window: 4 s;\n"
      "  slot a = event(HOT); slot b = event(HOT); slot c = event(HOT);\n"
      "  when min(value of a, b, c) > " + thr + "\n"
      "   and distance(a, b) < 40 and distance(b, c) < 40 and distance(a, c) < 40\n"
      "   and distance(a, b) > 0.5 and distance(b, c) > 0.5 and distance(a, c) > 0.5;\n"
      "  emit { time: span; location: hull; attr value = avg(value of a, b, c); } }");

  d.for_each_mote([&](wsn::SensorMote& mote) {
    mote.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(core::SensorId("SRheat"),
                                                                 fire, 1.0));
    if (!centralized) mote.add_definition(hot);
  });
  for (auto& sink : d.sinks()) {
    if (centralized) {
      // Central evaluation: raw observations arrive; the sink hosts both
      // levels and cascades HOT -> CP_FIRE.
      sink->engine().add_definition(hot);
    }
    sink->add_definition(cp_fire);
  }

  RunResult r;
  for (auto& sink : d.sinks()) {
    sink->on_instance([&r](const core::EventInstance& inst) {
      if (inst.key.event == core::EventTypeId("CP_FIRE")) ++r.detections;
    });
  }
  d.run_until(time_model::TimePoint::epoch() + time_model::seconds(w.horizon_s));
  r.messages = d.network().stats().sent;
  r.bytes = d.network().stats().bytes_sent;
  d.for_each_mote(
      [&r](wsn::SensorMote& m) { r.mote_energy_mj += m.energy().total_nj() / 1e6; });
  return r;
}

}  // namespace

int main() {
  using namespace stem;
  std::cout << "=== E5: hierarchical (mote-side) vs centralized (raw shipping) ===\n";

  // Two regimes: rare events (the hierarchy's home turf — most samples are
  // uninteresting) and saturated events (every sample crosses the
  // threshold, so condensation cannot drop anything).
  const Workload workloads[] = {
      {"rare (threshold 300, slow fire)", 300.0, 1.0, 30},
      {"saturated (threshold 80, fast fire)", 80.0, 2.0, 60},
  };

  bool ok = true;
  for (const Workload& w : workloads) {
    std::cout << "\nworkload: " << w.name << "\n";
    std::cout << std::setw(6) << "motes" << std::setw(12) << "h-msgs" << std::setw(12)
              << "c-msgs" << std::setw(12) << "h-KB" << std::setw(12) << "c-KB"
              << std::setw(9) << "h-det" << std::setw(9) << "c-det" << std::setw(10) << "h-mJ"
              << std::setw(10) << "c-mJ" << std::setw(12) << "msg ratio" << "\n";
    const bool rare = std::string_view(w.name).starts_with("rare");
    for (const std::size_t motes : {16u, 36u, 64u, 121u}) {
      const RunResult h = run_config(motes, /*centralized=*/false, w, motes);
      const RunResult c = run_config(motes, /*centralized=*/true, w, motes);
      const double ratio = h.messages == 0
                               ? 0.0
                               : static_cast<double>(c.messages) / static_cast<double>(h.messages);
      std::cout << std::setw(6) << motes << std::setw(12) << h.messages << std::setw(12)
                << c.messages << std::setw(12) << h.bytes / 1024 << std::setw(12)
                << c.bytes / 1024 << std::setw(9) << h.detections << std::setw(9)
                << c.detections << std::setw(10) << std::fixed << std::setprecision(1)
                << h.mote_energy_mj << std::setw(10) << c.mote_energy_mj << std::setw(11)
                << ratio << "x\n";
      ok = ok && c.messages > h.messages;
      if (rare) {
        // In the rare regime the hierarchy must also win on mote energy.
        ok = ok && c.mote_energy_mj > h.mote_energy_mj && h.detections > 0;
      }
    }
  }

  std::cout << "\n"
            << (ok ? "E5 OK: hierarchy ships fewer messages everywhere and saves energy "
                     "when events are rare\n"
                   : "E5 FAILED: unexpected ordering\n");
  return ok ? 0 : 1;
}
