/// E9 — Event language compile cost: tokenize + parse + compile throughput
/// for specifications of growing size (1..64 conditions per event).

#include <benchmark/benchmark.h>

#include <string>

#include "eventlang/lexer.hpp"
#include "eventlang/parser.hpp"

namespace {

std::string make_spec(int conditions) {
  std::string s = "event BIG {\n  window: 30 s;\n  slot x = obs(SR1);\n  slot y = obs(SR2);\n  when ";
  for (int i = 0; i < conditions; ++i) {
    if (i != 0) s += (i % 3 == 0) ? " or " : " and ";
    switch (i % 4) {
      case 0: s += "avg(value of x, y) > " + std::to_string(i); break;
      case 1: s += "time(x) before time(y)"; break;
      case 2: s += "distance(x, y) < " + std::to_string(10 + i); break;
      default: s += "loc(x) inside rect(0, 0, 100, 100)"; break;
    }
  }
  s += ";\n  emit { attr v = avg(value of x, y); }\n}\n";
  return s;
}

void BM_Tokenize(benchmark::State& state) {
  const std::string spec = make_spec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stem::eventlang::tokenize(spec));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.size()));
}

void BM_ParseEvent(benchmark::State& state) {
  const std::string spec = make_spec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stem::eventlang::parse_event(spec));
  }
  state.counters["conditions"] = static_cast<double>(state.range(0));
}

void BM_ParseManyEvents(benchmark::State& state) {
  std::string spec;
  for (int i = 0; i < state.range(0); ++i) {
    spec += "event E" + std::to_string(i) +
            " { slot x = any; when rho(x) >= 0.5 and time(x) after at(1 s); }\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stem::eventlang::parse_spec(spec));
  }
  state.counters["events"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_Tokenize)->Arg(1)->Arg(16)->Arg(64);
BENCHMARK(BM_ParseEvent)->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_ParseManyEvents)->Arg(1)->Arg(16)->Arg(128);

BENCHMARK_MAIN();
