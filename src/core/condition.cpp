#include "core/condition.hpp"

#include <algorithm>
#include <ostream>

namespace stem::core {

namespace {

/// Collects the numeric values of `attribute` from the listed slots.
/// Returns false (condition cannot hold) if any slot lacks the attribute.
bool collect_numbers(const EvalContext& ctx, const std::vector<SlotIndex>& slots,
                     const std::string& attribute, std::vector<double>& out) {
  out.clear();
  out.reserve(slots.size());
  for (const SlotIndex s : slots) {
    const auto v = ctx.slot(s).attributes().number(attribute);
    if (!v.has_value()) return false;
    out.push_back(*v);
  }
  return true;
}

time_model::OccurrenceTime eval_time_expr(const TimeExpr& e, const EvalContext& ctx) {
  std::vector<time_model::OccurrenceTime> times;
  times.reserve(e.slots.size());
  for (const SlotIndex s : e.slots) times.push_back(ctx.slot(s).occurrence_time());
  const auto agg = time_model::aggregate_times(e.aggregate, times.data(), times.size());
  return agg.shifted(e.offset);
}

geom::Location eval_location_expr(const LocationExpr& e, const EvalContext& ctx) {
  // Aggregation over a single entity is the identity; in particular a
  // non-convex field must not be convexified by kHull.
  if (e.slots.size() == 1) return ctx.slot(e.slots.front()).location();
  std::vector<geom::Location> locs;
  locs.reserve(e.slots.size());
  for (const SlotIndex s : e.slots) locs.push_back(ctx.slot(s).location());
  return geom::aggregate_locations(e.aggregate, locs.data(), locs.size());
}

bool eval_leaf(const AttributeCondition& c, const EvalContext& ctx) {
  std::vector<double> values;
  if (!collect_numbers(ctx, c.slots, c.attribute, values)) return false;
  const double lhs = aggregate_values(c.aggregate, values.data(), values.size());
  return eval_relational(lhs, c.op, c.constant);
}

bool eval_leaf(const TemporalCondition& c, const EvalContext& ctx) {
  const auto lhs = eval_time_expr(c.lhs, ctx);
  const auto rhs = std::holds_alternative<time_model::OccurrenceTime>(c.rhs)
                       ? std::get<time_model::OccurrenceTime>(c.rhs)
                       : eval_time_expr(std::get<TimeExpr>(c.rhs), ctx);
  return time_model::eval_temporal(lhs, c.op, rhs);
}

bool eval_leaf(const SpatialCondition& c, const EvalContext& ctx) {
  const auto lhs = eval_location_expr(c.lhs, ctx);
  if (std::holds_alternative<geom::Location>(c.rhs)) {
    return geom::eval_spatial(lhs, c.op, std::get<geom::Location>(c.rhs));
  }
  return geom::eval_spatial(lhs, c.op, eval_location_expr(std::get<LocationExpr>(c.rhs), ctx));
}

bool eval_leaf(const DistanceCondition& c, const EvalContext& ctx) {
  const auto lhs = eval_location_expr(c.lhs, ctx);
  const auto rhs = std::holds_alternative<geom::Location>(c.to)
                       ? std::get<geom::Location>(c.to)
                       : eval_location_expr(std::get<LocationExpr>(c.to), ctx);
  return eval_relational(geom::location_distance(lhs, rhs), c.op, c.constant);
}

bool eval_leaf(const ConfidenceCondition& c, const EvalContext& ctx) {
  std::vector<double> values;
  values.reserve(c.slots.size());
  for (const SlotIndex s : c.slots) values.push_back(ctx.slot(s).confidence());
  const double lhs = aggregate_values(c.aggregate, values.data(), values.size());
  return eval_relational(lhs, c.op, c.constant);
}

}  // namespace

bool eval_condition(const ConditionExpr& expr, const EvalContext& ctx, EvalMode mode) {
  return std::visit(
      [&](const auto& node) -> bool {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode>) {
          if (mode == EvalMode::kShortCircuit) {
            for (const auto& ch : node.children) {
              if (!eval_condition(ch, ctx, mode)) return false;
            }
            return true;
          }
          bool all = true;
          for (const auto& ch : node.children) all &= eval_condition(ch, ctx, mode);
          return all;
        } else if constexpr (std::is_same_v<T, OrNode>) {
          if (mode == EvalMode::kShortCircuit) {
            for (const auto& ch : node.children) {
              if (eval_condition(ch, ctx, mode)) return true;
            }
            return false;
          }
          bool any = false;
          for (const auto& ch : node.children) any |= eval_condition(ch, ctx, mode);
          return any;
        } else if constexpr (std::is_same_v<T, NotNode>) {
          return !eval_condition(node.child.front(), ctx, mode);
        } else {
          return eval_leaf(node, ctx);
        }
      },
      expr.rep());
}

std::size_t ConditionExpr::leaf_count() const {
  return std::visit(
      [](const auto& node) -> std::size_t {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode> || std::is_same_v<T, OrNode>) {
          std::size_t n = 0;
          for (const auto& ch : node.children) n += ch.leaf_count();
          return n;
        } else if constexpr (std::is_same_v<T, NotNode>) {
          return node.child.front().leaf_count();
        } else {
          return 1;
        }
      },
      rep_);
}

std::size_t ConditionExpr::depth() const {
  return std::visit(
      [](const auto& node) -> std::size_t {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode> || std::is_same_v<T, OrNode>) {
          std::size_t d = 0;
          for (const auto& ch : node.children) d = std::max(d, ch.depth());
          return d + 1;
        } else if constexpr (std::is_same_v<T, NotNode>) {
          return node.child.front().depth() + 1;
        } else {
          return 1;
        }
      },
      rep_);
}

namespace {
void collect_slots(const ConditionExpr& expr, std::optional<SlotIndex>& best) {
  const auto update = [&best](const std::vector<SlotIndex>& slots) {
    for (const SlotIndex s : slots) {
      if (!best.has_value() || s > *best) best = s;
    }
  };
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode> || std::is_same_v<T, OrNode>) {
          for (const auto& ch : node.children) collect_slots(ch, best);
        } else if constexpr (std::is_same_v<T, NotNode>) {
          collect_slots(node.child.front(), best);
        } else if constexpr (std::is_same_v<T, AttributeCondition> ||
                             std::is_same_v<T, ConfidenceCondition>) {
          update(node.slots);
        } else if constexpr (std::is_same_v<T, TemporalCondition>) {
          update(node.lhs.slots);
          if (const auto* rhs = std::get_if<TimeExpr>(&node.rhs)) update(rhs->slots);
        } else if constexpr (std::is_same_v<T, SpatialCondition>) {
          update(node.lhs.slots);
          if (const auto* rhs = std::get_if<LocationExpr>(&node.rhs)) update(rhs->slots);
        } else if constexpr (std::is_same_v<T, DistanceCondition>) {
          update(node.lhs.slots);
          if (const auto* rhs = std::get_if<LocationExpr>(&node.to)) update(rhs->slots);
        }
      },
      expr.rep());
}
}  // namespace

std::optional<SlotIndex> ConditionExpr::max_slot() const {
  std::optional<SlotIndex> best;
  collect_slots(*this, best);
  return best;
}

namespace {
void print_slots(std::ostream& os, const std::vector<SlotIndex>& slots) {
  os << "[";
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i != 0) os << ",";
    os << "$" << slots[i];
  }
  os << "]";
}

void print_expr(std::ostream& os, const ConditionExpr& expr) {
  std::visit(
      [&os](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode> || std::is_same_v<T, OrNode>) {
          os << (std::is_same_v<T, AndNode> ? "(and" : "(or");
          for (const auto& ch : node.children) {
            os << " ";
            print_expr(os, ch);
          }
          os << ")";
        } else if constexpr (std::is_same_v<T, NotNode>) {
          os << "(not ";
          print_expr(os, node.child.front());
          os << ")";
        } else if constexpr (std::is_same_v<T, AttributeCondition>) {
          os << "(" << to_string(node.aggregate) << "." << node.attribute;
          print_slots(os, node.slots);
          os << " " << node.op << " " << node.constant << ")";
        } else if constexpr (std::is_same_v<T, TemporalCondition>) {
          os << "(time:" << time_model::to_string(node.lhs.aggregate);
          print_slots(os, node.lhs.slots);
          if (node.lhs.offset != time_model::Duration::zero()) {
            os << "+" << node.lhs.offset;
          }
          os << " " << node.op << " ";
          if (const auto* t = std::get_if<time_model::OccurrenceTime>(&node.rhs)) {
            os << *t;
          } else {
            const auto& rhs = std::get<TimeExpr>(node.rhs);
            os << time_model::to_string(rhs.aggregate);
            print_slots(os, rhs.slots);
          }
          os << ")";
        } else if constexpr (std::is_same_v<T, SpatialCondition>) {
          os << "(space:" << geom::to_string(node.lhs.aggregate);
          print_slots(os, node.lhs.slots);
          os << " " << node.op << " ";
          if (const auto* l = std::get_if<geom::Location>(&node.rhs)) {
            os << *l;
          } else {
            const auto& rhs = std::get<LocationExpr>(node.rhs);
            os << geom::to_string(rhs.aggregate);
            print_slots(os, rhs.slots);
          }
          os << ")";
        } else if constexpr (std::is_same_v<T, DistanceCondition>) {
          os << "(distance:";
          print_slots(os, node.lhs.slots);
          os << " to ";
          if (const auto* l = std::get_if<geom::Location>(&node.to)) {
            os << *l;
          } else {
            print_slots(os, std::get<LocationExpr>(node.to).slots);
          }
          os << " " << node.op << " " << node.constant << ")";
        } else if constexpr (std::is_same_v<T, ConfidenceCondition>) {
          os << "(rho:" << to_string(node.aggregate);
          print_slots(os, node.slots);
          os << " " << node.op << " " << node.constant << ")";
        }
      },
      expr.rep());
}
}  // namespace

std::ostream& operator<<(std::ostream& os, const ConditionExpr& expr) {
  print_expr(os, expr);
  return os;
}

ConditionExpr c_and(std::vector<ConditionExpr> children) {
  return ConditionExpr(AndNode{std::move(children)});
}

ConditionExpr c_or(std::vector<ConditionExpr> children) {
  return ConditionExpr(OrNode{std::move(children)});
}

ConditionExpr c_not(ConditionExpr child) {
  NotNode n;
  n.child.push_back(std::move(child));
  return ConditionExpr(std::move(n));
}

ConditionExpr c_attr(ValueAggregate agg, std::string attribute, std::vector<SlotIndex> slots,
                     RelationalOp op, double constant) {
  return ConditionExpr(AttributeCondition{agg, std::move(attribute), std::move(slots), op, constant});
}

ConditionExpr c_time(SlotIndex lhs, time_model::TemporalOp op, SlotIndex rhs,
                     time_model::Duration lhs_offset) {
  TemporalCondition c;
  c.lhs = TimeExpr{time_model::TimeAggregate::kSpan, {lhs}, lhs_offset};
  c.op = op;
  c.rhs = TimeExpr{time_model::TimeAggregate::kSpan, {rhs}, time_model::Duration::zero()};
  return ConditionExpr(std::move(c));
}

ConditionExpr c_time_const(SlotIndex lhs, time_model::TemporalOp op,
                           time_model::OccurrenceTime constant) {
  TemporalCondition c;
  c.lhs = TimeExpr{time_model::TimeAggregate::kSpan, {lhs}, time_model::Duration::zero()};
  c.op = op;
  c.rhs = constant;
  return ConditionExpr(std::move(c));
}

ConditionExpr c_space(SlotIndex lhs, geom::SpatialOp op, SlotIndex rhs) {
  SpatialCondition c;
  c.lhs = LocationExpr{geom::SpatialAggregate::kHull, {lhs}};
  c.op = op;
  c.rhs = LocationExpr{geom::SpatialAggregate::kHull, {rhs}};
  return ConditionExpr(std::move(c));
}

ConditionExpr c_space_const(SlotIndex lhs, geom::SpatialOp op, geom::Location constant) {
  SpatialCondition c;
  c.lhs = LocationExpr{geom::SpatialAggregate::kHull, {lhs}};
  c.op = op;
  c.rhs = std::move(constant);
  return ConditionExpr(std::move(c));
}

ConditionExpr c_distance(SlotIndex a, SlotIndex b, RelationalOp op, double meters) {
  DistanceCondition c;
  c.lhs = LocationExpr{geom::SpatialAggregate::kHull, {a}};
  c.to = LocationExpr{geom::SpatialAggregate::kHull, {b}};
  c.op = op;
  c.constant = meters;
  return ConditionExpr(std::move(c));
}

ConditionExpr c_distance_const(SlotIndex a, geom::Location to, RelationalOp op, double meters) {
  DistanceCondition c;
  c.lhs = LocationExpr{geom::SpatialAggregate::kHull, {a}};
  c.to = std::move(to);
  c.op = op;
  c.constant = meters;
  return ConditionExpr(std::move(c));
}

ConditionExpr c_confidence(ValueAggregate agg, std::vector<SlotIndex> slots, RelationalOp op,
                           double constant) {
  return ConditionExpr(ConfidenceCondition{agg, std::move(slots), op, constant});
}

}  // namespace stem::core
