#include "core/condition.hpp"

#include <algorithm>
#include <ostream>

namespace stem::core {

namespace {

/// Leaf evaluation runs once per candidate binding in the engine's inner
/// loop; aggregations over up to this many slots use stack storage instead
/// of a heap-allocated vector.
constexpr std::size_t kInlineSlots = 8;

time_model::OccurrenceTime eval_time_expr(const TimeExpr& e, const EvalContext& ctx) {
  const std::size_t n = e.slots.size();
  if (n == 1) {
    // Still aggregated: kEarliest/kLatest/kMean collapse an interval-
    // valued slot to a punctual time, so this is not the identity.
    time_model::OccurrenceTime t = ctx.slot(e.slots.front()).occurrence_time();
    return time_model::aggregate_times(e.aggregate, &t, 1).shifted(e.offset);
  }
  if (n <= kInlineSlots) {
    const time_model::OccurrenceTime zero(time_model::TimePoint::epoch());
    time_model::OccurrenceTime times[kInlineSlots] = {zero, zero, zero, zero,
                                                      zero, zero, zero, zero};
    for (std::size_t i = 0; i < n; ++i) times[i] = ctx.slot(e.slots[i]).occurrence_time();
    return time_model::aggregate_times(e.aggregate, times, n).shifted(e.offset);
  }
  std::vector<time_model::OccurrenceTime> times;
  times.reserve(n);
  for (const SlotIndex s : e.slots) times.push_back(ctx.slot(s).occurrence_time());
  const auto agg = time_model::aggregate_times(e.aggregate, times.data(), times.size());
  return agg.shifted(e.offset);
}

/// Aggregates `attribute` (or confidence, via `Read`) over slots and
/// compares; a slot missing the attribute fails the condition.
template <typename Read>
bool eval_value_aggregate(const EvalContext& ctx, const std::vector<SlotIndex>& slots,
                          ValueAggregate agg, RelationalOp op, double constant, Read read) {
  const std::size_t n = slots.size();
  if (n <= kInlineSlots) {
    double buf[kInlineSlots];
    for (std::size_t i = 0; i < n; ++i) {
      const std::optional<double> v = read(ctx.slot(slots[i]));
      if (!v.has_value()) return false;
      buf[i] = *v;
    }
    return eval_relational(aggregate_values(agg, buf, n), op, constant);
  }
  std::vector<double> values;
  values.reserve(n);
  for (const SlotIndex s : slots) {
    const std::optional<double> v = read(ctx.slot(s));
    if (!v.has_value()) return false;
    values.push_back(*v);
  }
  return eval_relational(aggregate_values(agg, values.data(), values.size()), op, constant);
}

geom::Location eval_location_expr(const LocationExpr& e, const EvalContext& ctx) {
  // Aggregation over a single entity is the identity; in particular a
  // non-convex field must not be convexified by kHull.
  if (e.slots.size() == 1) return ctx.slot(e.slots.front()).location();
  std::vector<geom::Location> locs;
  locs.reserve(e.slots.size());
  for (const SlotIndex s : e.slots) locs.push_back(ctx.slot(s).location());
  return geom::aggregate_locations(e.aggregate, locs.data(), locs.size());
}

bool eval_leaf(const AttributeCondition& c, const EvalContext& ctx) {
  return eval_value_aggregate(ctx, c.slots, c.aggregate, c.op, c.constant,
                              [&c](const Entity& e) { return e.attributes().number(c.attribute); });
}

bool eval_leaf(const TemporalCondition& c, const EvalContext& ctx) {
  const auto lhs = eval_time_expr(c.lhs, ctx);
  const auto rhs = std::holds_alternative<time_model::OccurrenceTime>(c.rhs)
                       ? std::get<time_model::OccurrenceTime>(c.rhs)
                       : eval_time_expr(std::get<TimeExpr>(c.rhs), ctx);
  return time_model::eval_temporal(lhs, c.op, rhs);
}

bool eval_leaf(const SpatialCondition& c, const EvalContext& ctx) {
  const auto lhs = eval_location_expr(c.lhs, ctx);
  if (std::holds_alternative<geom::Location>(c.rhs)) {
    return geom::eval_spatial(lhs, c.op, std::get<geom::Location>(c.rhs));
  }
  return geom::eval_spatial(lhs, c.op, eval_location_expr(std::get<LocationExpr>(c.rhs), ctx));
}

bool eval_leaf(const DistanceCondition& c, const EvalContext& ctx) {
  const auto lhs = eval_location_expr(c.lhs, ctx);
  const auto rhs = std::holds_alternative<geom::Location>(c.to)
                       ? std::get<geom::Location>(c.to)
                       : eval_location_expr(std::get<LocationExpr>(c.to), ctx);
  return eval_relational(geom::location_distance(lhs, rhs), c.op, c.constant);
}

bool eval_leaf(const ConfidenceCondition& c, const EvalContext& ctx) {
  return eval_value_aggregate(ctx, c.slots, c.aggregate, c.op, c.constant,
                              [](const Entity& e) { return std::optional<double>(e.confidence()); });
}

}  // namespace

bool eval_condition(const ConditionExpr& expr, const EvalContext& ctx, EvalMode mode) {
  return std::visit(
      [&](const auto& node) -> bool {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode>) {
          if (mode == EvalMode::kShortCircuit) {
            for (const auto& ch : node.children) {
              if (!eval_condition(ch, ctx, mode)) return false;
            }
            return true;
          }
          bool all = true;
          for (const auto& ch : node.children) all &= eval_condition(ch, ctx, mode);
          return all;
        } else if constexpr (std::is_same_v<T, OrNode>) {
          if (mode == EvalMode::kShortCircuit) {
            for (const auto& ch : node.children) {
              if (eval_condition(ch, ctx, mode)) return true;
            }
            return false;
          }
          bool any = false;
          for (const auto& ch : node.children) any |= eval_condition(ch, ctx, mode);
          return any;
        } else if constexpr (std::is_same_v<T, NotNode>) {
          return !eval_condition(node.child.front(), ctx, mode);
        } else {
          return eval_leaf(node, ctx);
        }
      },
      expr.rep());
}

std::size_t ConditionExpr::leaf_count() const {
  return std::visit(
      [](const auto& node) -> std::size_t {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode> || std::is_same_v<T, OrNode>) {
          std::size_t n = 0;
          for (const auto& ch : node.children) n += ch.leaf_count();
          return n;
        } else if constexpr (std::is_same_v<T, NotNode>) {
          return node.child.front().leaf_count();
        } else {
          return 1;
        }
      },
      rep_);
}

std::size_t ConditionExpr::depth() const {
  return std::visit(
      [](const auto& node) -> std::size_t {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode> || std::is_same_v<T, OrNode>) {
          std::size_t d = 0;
          for (const auto& ch : node.children) d = std::max(d, ch.depth());
          return d + 1;
        } else if constexpr (std::is_same_v<T, NotNode>) {
          return node.child.front().depth() + 1;
        } else {
          return 1;
        }
      },
      rep_);
}

namespace {
void collect_slots(const ConditionExpr& expr, std::optional<SlotIndex>& best) {
  const auto update = [&best](const std::vector<SlotIndex>& slots) {
    for (const SlotIndex s : slots) {
      if (!best.has_value() || s > *best) best = s;
    }
  };
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode> || std::is_same_v<T, OrNode>) {
          for (const auto& ch : node.children) collect_slots(ch, best);
        } else if constexpr (std::is_same_v<T, NotNode>) {
          collect_slots(node.child.front(), best);
        } else if constexpr (std::is_same_v<T, AttributeCondition> ||
                             std::is_same_v<T, ConfidenceCondition>) {
          update(node.slots);
        } else if constexpr (std::is_same_v<T, TemporalCondition>) {
          update(node.lhs.slots);
          if (const auto* rhs = std::get_if<TimeExpr>(&node.rhs)) update(rhs->slots);
        } else if constexpr (std::is_same_v<T, SpatialCondition>) {
          update(node.lhs.slots);
          if (const auto* rhs = std::get_if<LocationExpr>(&node.rhs)) update(rhs->slots);
        } else if constexpr (std::is_same_v<T, DistanceCondition>) {
          update(node.lhs.slots);
          if (const auto* rhs = std::get_if<LocationExpr>(&node.to)) update(rhs->slots);
        }
      },
      expr.rep());
}
}  // namespace

std::optional<SlotIndex> ConditionExpr::max_slot() const {
  std::optional<SlotIndex> best;
  collect_slots(*this, best);
  return best;
}

namespace {

/// `loc OP loc'` implies the two bounding boxes touch for these operators
/// (equality, containment either way, or sharing a point all do).
bool implies_bbox_overlap(geom::SpatialOp op) {
  switch (op) {
    case geom::SpatialOp::kEqual:
    case geom::SpatialOp::kInside:
    case geom::SpatialOp::kContains:
    case geom::SpatialOp::kJoint:
      return true;
    case geom::SpatialOp::kOutside:
    case geom::SpatialOp::kDisjoint:
      return false;
  }
  return false;
}

/// The single slot of a location expression, or nullopt when the
/// expression aggregates several slots (no per-slot bound derivable).
std::optional<SlotIndex> single_slot(const LocationExpr& e) {
  if (e.slots.size() != 1) return std::nullopt;
  return e.slots.front();
}

void emit_guard(std::vector<SpatialGuard>& out, SlotIndex a,
                const std::variant<LocationExpr, geom::Location>& rhs, double radius) {
  if (const auto* loc = std::get_if<geom::Location>(&rhs)) {
    out.push_back(SpatialGuard{a, std::nullopt, *loc, radius});
    return;
  }
  if (const auto b = single_slot(std::get<LocationExpr>(rhs)); b.has_value() && *b != a) {
    // Distance and bbox overlap are symmetric: guard both directions.
    out.push_back(SpatialGuard{a, *b, std::nullopt, radius});
    out.push_back(SpatialGuard{*b, a, std::nullopt, radius});
  }
}

void collect_guards(const ConditionExpr& expr, std::vector<SpatialGuard>& out) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode>) {
          for (const auto& ch : node.children) collect_guards(ch, out);
        } else if constexpr (std::is_same_v<T, SpatialCondition>) {
          if (!implies_bbox_overlap(node.op)) return;
          if (const auto a = single_slot(node.lhs)) emit_guard(out, *a, node.rhs, 0.0);
        } else if constexpr (std::is_same_v<T, DistanceCondition>) {
          if (node.op != RelationalOp::kLt && node.op != RelationalOp::kLe) return;
          if (const auto a = single_slot(node.lhs)) {
            emit_guard(out, *a, node.to, std::max(node.constant, 0.0));
          }
        }
        // OR / NOT subtrees and other leaves imply nothing conjunctively.
      },
      expr.rep());
}

}  // namespace

std::vector<SpatialGuard> extract_spatial_guards(const ConditionExpr& expr) {
  std::vector<SpatialGuard> out;
  collect_guards(expr, out);
  return out;
}

std::optional<ThresholdSignature> extract_threshold_signature(const ConditionExpr& expr) {
  const ConditionExpr* node = &expr;
  // A single-child AND/OR is equivalent to its child.
  while (true) {
    if (const auto* a = std::get_if<AndNode>(&node->rep()); a && a->children.size() == 1) {
      node = &a->children.front();
    } else if (const auto* o = std::get_if<OrNode>(&node->rep()); o && o->children.size() == 1) {
      node = &o->children.front();
    } else {
      break;
    }
  }
  const auto* c = std::get_if<AttributeCondition>(&node->rep());
  if (c == nullptr || c->slots.size() != 1) return std::nullopt;
  // Any aggregate of one value is the value itself — except kCount, which
  // ignores the value entirely.
  if (c->aggregate == ValueAggregate::kCount) return std::nullopt;
  switch (c->op) {
    case RelationalOp::kGt:
    case RelationalOp::kGe:
    case RelationalOp::kLt:
    case RelationalOp::kLe:
      return ThresholdSignature{c->attribute, c->op, c->constant};
    case RelationalOp::kEq:
    case RelationalOp::kNe:
      return std::nullopt;
  }
  return std::nullopt;
}

namespace {
void print_slots(std::ostream& os, const std::vector<SlotIndex>& slots) {
  os << "[";
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i != 0) os << ",";
    os << "$" << slots[i];
  }
  os << "]";
}

void print_expr(std::ostream& os, const ConditionExpr& expr) {
  std::visit(
      [&os](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AndNode> || std::is_same_v<T, OrNode>) {
          os << (std::is_same_v<T, AndNode> ? "(and" : "(or");
          for (const auto& ch : node.children) {
            os << " ";
            print_expr(os, ch);
          }
          os << ")";
        } else if constexpr (std::is_same_v<T, NotNode>) {
          os << "(not ";
          print_expr(os, node.child.front());
          os << ")";
        } else if constexpr (std::is_same_v<T, AttributeCondition>) {
          os << "(" << to_string(node.aggregate) << "." << node.attribute;
          print_slots(os, node.slots);
          os << " " << node.op << " " << node.constant << ")";
        } else if constexpr (std::is_same_v<T, TemporalCondition>) {
          os << "(time:" << time_model::to_string(node.lhs.aggregate);
          print_slots(os, node.lhs.slots);
          if (node.lhs.offset != time_model::Duration::zero()) {
            os << "+" << node.lhs.offset;
          }
          os << " " << node.op << " ";
          if (const auto* t = std::get_if<time_model::OccurrenceTime>(&node.rhs)) {
            os << *t;
          } else {
            const auto& rhs = std::get<TimeExpr>(node.rhs);
            os << time_model::to_string(rhs.aggregate);
            print_slots(os, rhs.slots);
          }
          os << ")";
        } else if constexpr (std::is_same_v<T, SpatialCondition>) {
          os << "(space:" << geom::to_string(node.lhs.aggregate);
          print_slots(os, node.lhs.slots);
          os << " " << node.op << " ";
          if (const auto* l = std::get_if<geom::Location>(&node.rhs)) {
            os << *l;
          } else {
            const auto& rhs = std::get<LocationExpr>(node.rhs);
            os << geom::to_string(rhs.aggregate);
            print_slots(os, rhs.slots);
          }
          os << ")";
        } else if constexpr (std::is_same_v<T, DistanceCondition>) {
          os << "(distance:";
          print_slots(os, node.lhs.slots);
          os << " to ";
          if (const auto* l = std::get_if<geom::Location>(&node.to)) {
            os << *l;
          } else {
            print_slots(os, std::get<LocationExpr>(node.to).slots);
          }
          os << " " << node.op << " " << node.constant << ")";
        } else if constexpr (std::is_same_v<T, ConfidenceCondition>) {
          os << "(rho:" << to_string(node.aggregate);
          print_slots(os, node.slots);
          os << " " << node.op << " " << node.constant << ")";
        }
      },
      expr.rep());
}
}  // namespace

std::ostream& operator<<(std::ostream& os, const ConditionExpr& expr) {
  print_expr(os, expr);
  return os;
}

ConditionExpr c_and(std::vector<ConditionExpr> children) {
  return ConditionExpr(AndNode{std::move(children)});
}

ConditionExpr c_or(std::vector<ConditionExpr> children) {
  return ConditionExpr(OrNode{std::move(children)});
}

ConditionExpr c_not(ConditionExpr child) {
  NotNode n;
  n.child.push_back(std::move(child));
  return ConditionExpr(std::move(n));
}

ConditionExpr c_attr(ValueAggregate agg, std::string attribute, std::vector<SlotIndex> slots,
                     RelationalOp op, double constant) {
  return ConditionExpr(AttributeCondition{agg, std::move(attribute), std::move(slots), op, constant});
}

ConditionExpr c_time(SlotIndex lhs, time_model::TemporalOp op, SlotIndex rhs,
                     time_model::Duration lhs_offset) {
  TemporalCondition c;
  c.lhs = TimeExpr{time_model::TimeAggregate::kSpan, {lhs}, lhs_offset};
  c.op = op;
  c.rhs = TimeExpr{time_model::TimeAggregate::kSpan, {rhs}, time_model::Duration::zero()};
  return ConditionExpr(std::move(c));
}

ConditionExpr c_time_const(SlotIndex lhs, time_model::TemporalOp op,
                           time_model::OccurrenceTime constant) {
  TemporalCondition c;
  c.lhs = TimeExpr{time_model::TimeAggregate::kSpan, {lhs}, time_model::Duration::zero()};
  c.op = op;
  c.rhs = constant;
  return ConditionExpr(std::move(c));
}

ConditionExpr c_space(SlotIndex lhs, geom::SpatialOp op, SlotIndex rhs) {
  SpatialCondition c;
  c.lhs = LocationExpr{geom::SpatialAggregate::kHull, {lhs}};
  c.op = op;
  c.rhs = LocationExpr{geom::SpatialAggregate::kHull, {rhs}};
  return ConditionExpr(std::move(c));
}

ConditionExpr c_space_const(SlotIndex lhs, geom::SpatialOp op, geom::Location constant) {
  SpatialCondition c;
  c.lhs = LocationExpr{geom::SpatialAggregate::kHull, {lhs}};
  c.op = op;
  c.rhs = std::move(constant);
  return ConditionExpr(std::move(c));
}

ConditionExpr c_distance(SlotIndex a, SlotIndex b, RelationalOp op, double meters) {
  DistanceCondition c;
  c.lhs = LocationExpr{geom::SpatialAggregate::kHull, {a}};
  c.to = LocationExpr{geom::SpatialAggregate::kHull, {b}};
  c.op = op;
  c.constant = meters;
  return ConditionExpr(std::move(c));
}

ConditionExpr c_distance_const(SlotIndex a, geom::Location to, RelationalOp op, double meters) {
  DistanceCondition c;
  c.lhs = LocationExpr{geom::SpatialAggregate::kHull, {a}};
  c.to = std::move(to);
  c.op = op;
  c.constant = meters;
  return ConditionExpr(std::move(c));
}

ConditionExpr c_confidence(ValueAggregate agg, std::vector<SlotIndex> slots, RelationalOp op,
                           double constant) {
  return ConditionExpr(ConfidenceCondition{agg, std::move(slots), op, constant});
}

}  // namespace stem::core
