#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

namespace stem::core {

DetectionEngine::DetectionEngine(ObserverId id, Layer layer, geom::Point location,
                                 EngineOptions options)
    : id_(std::move(id)), layer_(layer), location_(location), options_(options) {}

void DetectionEngine::validate_definition(const EventDefinition& def) const {
  if (def.slots.empty()) {
    throw std::invalid_argument("DetectionEngine: definition '" + def.id.value() +
                                "' declares no slots");
  }
  if (const auto max = def.condition.max_slot();
      max.has_value() && *max >= def.slots.size()) {
    throw std::invalid_argument("DetectionEngine: condition of '" + def.id.value() +
                                "' references slot $" + std::to_string(*max) + " but only " +
                                std::to_string(def.slots.size()) + " slots are declared");
  }
}

std::uint32_t DetectionEngine::alloc_def_slot(EventDefinition def) {
  if (!free_slots_.empty()) {
    const std::uint32_t d = free_slots_.back();
    free_slots_.pop_back();
    defs_[d] = DefState(std::move(def));
    return d;
  }
  defs_.emplace_back(std::move(def));
  return static_cast<std::uint32_t>(defs_.size() - 1);
}

void DetectionEngine::init_def_state(DefState& ds) {
  const std::size_t n = ds.def.slots.size();
  const auto [seq_it, new_type] =
      seq_index_.try_emplace(ds.def.id.value(), static_cast<std::uint32_t>(seq_counters_.size()));
  if (new_type) seq_counters_.push_back(0);
  ds.seq_idx = seq_it->second;
  ds.buffered = n > 1;
  scratch_.fit(n);
  if (!ds.buffered) return;

  ds.guards.resize(n);
  for (const SpatialGuard& g : extract_spatial_guards(ds.def.condition)) {
    if (g.slot >= n) continue;  // condition slots were validated above
    Guard guard;
    guard.radius = g.radius;
    if (g.partner.has_value()) {
      if (*g.partner >= n) continue;
      guard.partner = *g.partner;
    } else if (g.region.has_value()) {
      guard.region = g.region->bbox().inflated(g.radius);
    } else {
      continue;
    }
    ds.guards[g.slot].push_back(guard);
  }
  // Retain-mode definitions are stream-backed: their slot buffers (and
  // spatial indexes, once attached for guarded slots) live in shared plan
  // nodes joined by every definition with the same (filter, window) key.
  // Consume-mode definitions keep private buffers — consumption retires
  // entities mid-buffer, which co-subscribers must not see — and use the
  // enumerator's inline guard precheck instead of an index.
  if (ds.def.consumption == ConsumptionMode::kUnrestricted) {
    ds.stream_backed = true;
  } else {
    ds.buffers.resize(n);
  }
}

std::string DetectionEngine::stream_key_for(const DefState& ds, std::size_t slot) {
  std::string key = ds.def.slots[slot].filter.stream_key();
  key += '|';
  key += std::to_string(ds.def.window.ticks());
  return key;
}

std::uint32_t DetectionEngine::create_stream(std::string key, time_model::Duration window) {
  std::uint32_t id;
  if (!free_streams_.empty()) {
    id = free_streams_.back();
    free_streams_.pop_back();
    streams_[id] = std::make_unique<StreamNode>();
  } else {
    streams_.push_back(std::make_unique<StreamNode>());
    id = static_cast<std::uint32_t>(streams_.size() - 1);
  }
  StreamNode& sn = *streams_[id];
  sn.window = window;
  sn.subscribers = 1;
  if (!key.empty()) {
    sn.canonical = true;
    canonical_streams_.emplace(key, id);
    sn.key = std::move(key);
  }
  return id;
}

std::uint32_t DetectionEngine::subscribe_stream(std::string key, time_model::Duration window) {
  if (const auto it = canonical_streams_.find(key); it != canonical_streams_.end()) {
    StreamNode& sn = *streams_[it->second];
    if (sn.buf.empty()) {
      ++sn.subscribers;
      return it->second;
    }
    // The canonical stream already buffers entities the new subscriber
    // must never see (they predate its registration), so it gets a
    // private stream instead — exactness over sharing.
    return create_stream(std::string(), window);
  }
  return create_stream(std::move(key), window);
}

void DetectionEngine::unsubscribe_stream(std::uint32_t stream_id) {
  StreamNode& sn = *streams_[stream_id];
  if (--sn.subscribers > 0) return;
  if (sn.canonical) canonical_streams_.erase(sn.key);
  streams_[stream_id].reset();
  free_streams_.push_back(stream_id);
}

void DetectionEngine::attach_stream_spatial(StreamNode& sn, const std::vector<Guard>& guards) {
  if (sn.spatial != nullptr) return;  // the first guarded subscriber's choice sticks
  // A metric guard's radius is the natural grid cell size; purely
  // topological guards have no length scale, so use the R-tree. (The cell
  // size only affects query cost, never the result set, so sharing one
  // index among subscribers with different radii is exact.)
  double cell = 0.0;
  for (const Guard& g : guards) {
    if (g.radius > 0.0 && (cell == 0.0 || g.radius < cell)) cell = g.radius;
  }
  sn.spatial = cell > 0.0 ? std::make_unique<SlotSpatial>(cell) : std::make_unique<SlotSpatial>();
  if (sn.buf.size() >= kIndexActivate) rebuild_stream_spatial(sn);
}

std::size_t DetectionEngine::add_definition(EventDefinition def) {
  validate_definition(def);
  const std::uint32_t d = alloc_def_slot(std::move(def));
  DefState& ds = defs_[d];
  init_def_state(ds);
  if (ds.stream_backed) {
    const std::size_t n = ds.def.slots.size();
    ds.streams.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      ds.streams[j] = subscribe_stream(stream_key_for(ds, j), ds.def.window);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (!ds.guards[j].empty()) attach_stream_spatial(*streams_[ds.streams[j]], ds.guards[j]);
    }
  } else if (ds.buffered) {
    private_buffered_.push_back(d);
  }
  routing_.add(ds.def, d);
  ++active_defs_;
  return d;
}

DefinitionState DetectionEngine::extract_definition_state(std::size_t def_index) {
  if (def_index >= defs_.size() || !defs_[def_index].active) {
    throw std::out_of_range("DetectionEngine: extract of unknown definition index " +
                            std::to_string(def_index));
  }
  DefState& ds = defs_[def_index];
  routing_.remove(ds.def, static_cast<std::uint32_t>(def_index));

  // A stream-backed definition takes a *copy* of each subscribed stream's
  // buffer (co-subscribers keep theirs untouched) and then drops its
  // subscriptions; private buffers are moved out wholesale. Either way the
  // carried per-slot buffers are exactly what an unshared engine would
  // have held, so the checkpoint/migration codec sees no difference.
  std::vector<std::vector<DefinitionState::BufferedEntity>> buffers(ds.def.slots.size());
  time_model::TimePoint carried_prune = ds.next_prune_at;
  if (ds.stream_backed) {
    carried_prune = time_model::TimePoint::max();
    for (std::size_t s = 0; s < ds.streams.size(); ++s) {
      const StreamNode& sn = *streams_[ds.streams[s]];
      buffers[s].reserve(sn.buf.size());
      for (const Buffered& b : sn.buf) {
        buffers[s].push_back(DefinitionState::BufferedEntity{b.entity, b.stamp});
      }
      if (sn.next_prune_at < carried_prune) carried_prune = sn.next_prune_at;
    }
    for (const std::uint32_t id : ds.streams) unsubscribe_stream(id);
  } else {
    for (std::size_t s = 0; s < ds.buffers.size(); ++s) {
      buffers[s].reserve(ds.buffers[s].size());
      for (Buffered& b : ds.buffers[s]) {
        buffers[s].push_back(DefinitionState::BufferedEntity{std::move(b.entity), b.stamp});
      }
    }
    if (ds.buffered) std::erase(private_buffered_, static_cast<std::uint32_t>(def_index));
  }
  DefinitionState out{std::move(ds.def), seq_counters_[ds.seq_idx], carried_prune,
                      std::move(buffers), ds.load_routed, ds.load_tried};

  // Tombstone the slot: release its state but keep the index reserved (a
  // later implant reuses it), so the indices of the other definitions —
  // and the tags of their emissions — never shift.
  ds.active = false;
  ds.buffered = false;
  ds.stream_backed = false;
  ds.buffers.clear();
  ds.streams.clear();
  ds.guards.clear();
  ds.next_prune_at = time_model::TimePoint::max();
  free_slots_.push_back(static_cast<std::uint32_t>(def_index));
  --active_defs_;
  return out;
}

DefinitionState DetectionEngine::snapshot_definition_state(std::size_t def_index) const {
  if (def_index >= defs_.size() || !defs_[def_index].active) {
    throw std::out_of_range("DetectionEngine: snapshot of unknown definition index " +
                            std::to_string(def_index));
  }
  const DefState& ds = defs_[def_index];
  std::vector<std::vector<DefinitionState::BufferedEntity>> buffers(ds.def.slots.size());
  time_model::TimePoint carried_prune = ds.next_prune_at;
  if (ds.stream_backed) {
    carried_prune = time_model::TimePoint::max();
    for (std::size_t s = 0; s < ds.streams.size(); ++s) {
      const StreamNode& sn = *streams_[ds.streams[s]];
      buffers[s].reserve(sn.buf.size());
      for (const Buffered& b : sn.buf) {
        buffers[s].push_back(DefinitionState::BufferedEntity{b.entity, b.stamp});
      }
      if (sn.next_prune_at < carried_prune) carried_prune = sn.next_prune_at;
    }
  } else {
    for (std::size_t s = 0; s < ds.buffers.size(); ++s) {
      buffers[s].reserve(ds.buffers[s].size());
      for (const Buffered& b : ds.buffers[s]) {
        buffers[s].push_back(DefinitionState::BufferedEntity{b.entity, b.stamp});
      }
    }
  }
  return DefinitionState{ds.def, seq_counters_[ds.seq_idx], carried_prune,
                         std::move(buffers), ds.load_routed, ds.load_tried};
}

std::size_t DetectionEngine::implant_definition_state(DefinitionState state) {
  validate_definition(state.def);
  if (state.buffers.size() != state.def.slots.size()) {
    throw std::invalid_argument("DetectionEngine: implant of '" + state.def.id.value() + "': " +
                                std::to_string(state.buffers.size()) + " slot buffers but " +
                                std::to_string(state.def.slots.size()) + " slots");
  }
  const std::uint32_t d = alloc_def_slot(std::move(state.def));
  DefState& ds = defs_[d];
  init_def_state(ds);
  // Sequence counters only move forward: when a whole group migrates the
  // carried value supersedes the dormant local one (the source engine held
  // the type's only live counter), but when a *split* group's partitions
  // reunite on one engine, numbering must continue past both partitions'
  // high-water marks — never rewind a live counter.
  seq_counters_[ds.seq_idx] = std::max(seq_counters_[ds.seq_idx], state.seq);
  ds.load_routed = state.load_routed;
  ds.load_tried = state.load_tried;

  if (ds.buffered) {
    // Renumber the imported stamps into this engine's stamp space. The map
    // is monotone over the (sorted, deduplicated) old stamps, so ascending
    // per-slot buffer order and cross-slot same-arrival identity — which
    // the self-join dedup rule and consume() both compare by stamp — are
    // preserved, while collisions with future local stamps are impossible.
    std::vector<std::uint64_t> olds;
    for (const auto& slot : state.buffers) {
      for (const auto& b : slot) olds.push_back(b.stamp);
    }
    std::sort(olds.begin(), olds.end());
    olds.erase(std::unique(olds.begin(), olds.end()), olds.end());
    std::unordered_map<std::uint64_t, std::uint64_t> remap;
    remap.reserve(olds.size());
    for (const std::uint64_t old : olds) remap.emplace(old, next_stamp_++);
    const std::size_t n = state.buffers.size();
    if (!ds.stream_backed) {
      ds.next_prune_at = state.next_prune_at;
      if (ds.next_prune_at < global_prune_at_) global_prune_at_ = ds.next_prune_at;
      for (std::size_t s = 0; s < n; ++s) {
        auto& buf = ds.buffers[s];
        for (auto& b : state.buffers[s]) {
          const geom::BoundingBox box = b.entity->location().bbox();
          buf.push_back(Buffered{std::move(b.entity), remap.at(b.stamp), box});
        }
        // Enforce *this* engine's buffer cap: when the source was
        // configured with a larger max_buffer, the oldest imports are
        // evicted (counted as evictions, like any cap overflow) —
        // otherwise the over-cap state would be self-sustaining
        // (insert_buffered evicts only one entry per insert).
        while (buf.size() > options_.max_buffer) evict_front(ds, s);
      }
      private_buffered_.push_back(d);
    } else {
      // A slot whose carried buffer is empty subscribes normally (it may
      // join a canonical stream). A non-empty carried buffer must not be
      // injected into co-subscribers' views, so it lands in a private
      // stream — migration pessimizes sharing for the moved definition,
      // never for the definitions around it.
      ds.streams.resize(n);
      for (std::size_t s = 0; s < n; ++s) {
        if (state.buffers[s].empty()) {
          ds.streams[s] = subscribe_stream(stream_key_for(ds, s), ds.def.window);
          continue;
        }
        const std::uint32_t id = create_stream(std::string(), ds.def.window);
        ds.streams[s] = id;
        StreamNode& sn = *streams_[id];
        for (auto& b : state.buffers[s]) {
          const geom::BoundingBox box = b.entity->location().bbox();
          sn.buf.push_back(Buffered{std::move(b.entity), remap.at(b.stamp), box});
        }
        sn.last_stamp = sn.buf.back().stamp;
        while (sn.buf.size() > options_.max_buffer) evict_stream_front(sn);
        sn.next_prune_at = state.next_prune_at;
        if (sn.next_prune_at < global_prune_at_) global_prune_at_ = sn.next_prune_at;
      }
      for (std::size_t s = 0; s < n; ++s) {
        if (!ds.guards[s].empty()) attach_stream_spatial(*streams_[ds.streams[s]], ds.guards[s]);
      }
    }
  }
  routing_.add(ds.def, d);
  ++active_defs_;
  return d;
}

void DetectionEngine::collect_definition_loads(
    std::vector<std::pair<std::uint32_t, DefinitionLoad>>& out) const {
  // One up-front reserve keeps steady-state publication allocation-free:
  // the caller's reused buffer reaches definition-count capacity once and
  // every later call appends into it without growth.
  out.reserve(out.size() + active_defs_);
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    const DefState& ds = defs_[d];
    if (!ds.active) continue;
    DefinitionLoad load{ds.load_routed, ds.load_tried, 0};
    if (ds.stream_backed) {
      for (const std::uint32_t id : ds.streams) load.buffered += streams_[id]->buf.size();
    } else {
      for (const auto& buf : ds.buffers) load.buffered += buf.size();
    }
    out.push_back({static_cast<std::uint32_t>(d), load});
  }
}

void DetectionEngine::clear() {
  for (const auto& up : streams_) {
    if (up == nullptr) continue;
    up->buf.clear();
    if (up->spatial_active) {
      up->spatial->clear();
      up->spatial_active = false;
    }
    up->next_prune_at = time_model::TimePoint::max();
  }
  for (const std::uint32_t d : private_buffered_) {
    DefState& ds = defs_[d];
    for (auto& buf : ds.buffers) buf.clear();
    ds.next_prune_at = time_model::TimePoint::max();
  }
  global_prune_at_ = time_model::TimePoint::max();
}

void DetectionEngine::evict_front(DefState& ds, std::size_t slot) {
  ds.buffers[slot].pop_front();
  ++stats_.evicted;
}

void DetectionEngine::evict_stream_front(StreamNode& sn) {
  const Buffered& front = sn.buf.front();
  if (sn.spatial_active) {
    sn.spatial->erase(front.box, front.stamp);
    if (sn.buf.size() - 1 <= kIndexDeactivate) {
      sn.spatial->clear();
      sn.spatial_active = false;
    }
  }
  sn.buf.pop_front();
  // Every subscribing (definition, slot) loses the entry, so the eviction
  // counter advances exactly as per-definition buffers would have.
  stats_.evicted += sn.subscribers;
}

void DetectionEngine::rebuild_stream_spatial(StreamNode& sn) {
  sn.spatial->clear();
  for (const Buffered& b : sn.buf) sn.spatial->insert(b.box, b.stamp);
  sn.spatial_active = true;
}

void DetectionEngine::prune_def(DefState& ds, time_model::TimePoint now) {
  const time_model::TimePoint horizon = now - ds.def.window;
  time_model::TimePoint next = time_model::TimePoint::max();
  for (std::size_t s = 0; s < ds.buffers.size(); ++s) {
    auto& buf = ds.buffers[s];
    while (!buf.empty() && buf.front().entity->occurrence_time().end() < horizon) {
      evict_front(ds, s);
    }
    if (!buf.empty()) {
      const time_model::TimePoint at = buf.front().entity->occurrence_time().end() + ds.def.window;
      if (at < next) next = at;
    }
  }
  ds.next_prune_at = next;
}

void DetectionEngine::prune_stream(StreamNode& sn, time_model::TimePoint now) {
  const time_model::TimePoint horizon = now - sn.window;
  while (!sn.buf.empty() && sn.buf.front().entity->occurrence_time().end() < horizon) {
    evict_stream_front(sn);
  }
  sn.next_prune_at = sn.buf.empty()
                         ? time_model::TimePoint::max()
                         : sn.buf.front().entity->occurrence_time().end() + sn.window;
}

void DetectionEngine::maybe_prune(time_model::TimePoint now) {
  // An entity is evictable once now > its occurrence end + window, so
  // nothing can expire while now has not passed the global watermark. The
  // walk below visits only structures that buffer (streams + private
  // consume buffers), never the full definition table.
  if (global_prune_at_ >= now) return;
  time_model::TimePoint global = time_model::TimePoint::max();
  for (const auto& up : streams_) {
    if (up == nullptr) continue;
    if (up->next_prune_at < now) prune_stream(*up, now);
    if (up->next_prune_at < global) global = up->next_prune_at;
  }
  for (const std::uint32_t d : private_buffered_) {
    DefState& ds = defs_[d];
    if (ds.next_prune_at < now) prune_def(ds, now);
    if (ds.next_prune_at < global) global = ds.next_prune_at;
  }
  global_prune_at_ = global;
}

void DetectionEngine::prune(time_model::TimePoint now) {
  time_model::TimePoint global = time_model::TimePoint::max();
  for (const auto& up : streams_) {
    if (up == nullptr) continue;
    prune_stream(*up, now);
    if (up->next_prune_at < global) global = up->next_prune_at;
  }
  for (const std::uint32_t d : private_buffered_) {
    DefState& ds = defs_[d];
    prune_def(ds, now);
    if (ds.next_prune_at < global) global = ds.next_prune_at;
  }
  global_prune_at_ = global;
}

void DetectionEngine::route(const Entity& entity) {
  matched_routes_.clear();
  // The index dispatches on the discriminant key (and threshold constant);
  // the residual filter fields are verified on each hit.
  routing_.collect(entity, matched_routes_, [&](const SlotRoute r) {
    return defs_[r.def_idx].def.slots[r.slot_idx].filter.matches(entity);
  });
}

void DetectionEngine::insert_buffered(DefState& ds, std::size_t slot, const Buffered& fresh) {
  auto& buf = ds.buffers[slot];
  buf.push_back(fresh);
  if (buf.size() > options_.max_buffer) evict_front(ds, slot);
  // Lower (never raise) the prune watermarks: stale-low only costs a
  // spurious check, stale-high would let expired entities join bindings.
  const time_model::TimePoint at = fresh.entity->occurrence_time().end() + ds.def.window;
  if (at < ds.next_prune_at) ds.next_prune_at = at;
  if (at < global_prune_at_) global_prune_at_ = at;
}

void DetectionEngine::insert_stream(StreamNode& sn, const Buffered& fresh) {
  sn.buf.push_back(fresh);
  sn.last_stamp = fresh.stamp;
  if (sn.spatial != nullptr) {
    if (sn.spatial_active) {
      sn.spatial->insert(fresh.box, fresh.stamp);
    } else if (sn.buf.size() >= kIndexActivate) {
      rebuild_stream_spatial(sn);
    }
  }
  if (sn.buf.size() > options_.max_buffer) evict_stream_front(sn);
  const time_model::TimePoint at = fresh.entity->occurrence_time().end() + sn.window;
  if (at < sn.next_prune_at) sn.next_prune_at = at;
  if (at < global_prune_at_) global_prune_at_ = at;
}

std::vector<EventInstance> DetectionEngine::observe(const Entity& entity,
                                                    time_model::TimePoint now) {
  std::vector<EventInstance> out;
  EmitSink sink{&out, nullptr};
  observe_impl(entity, now, sink);
  return out;
}

void DetectionEngine::observe(const Entity& entity, time_model::TimePoint now,
                              std::vector<Emission>& out) {
  EmitSink sink{nullptr, &out};
  observe_impl(entity, now, sink);
}

void DetectionEngine::observe(const std::shared_ptr<const Entity>& entity,
                              time_model::TimePoint now, std::vector<Emission>& out) {
  EmitSink sink{nullptr, &out};
  observe_impl(*entity, now, sink, &entity);
}

bool DetectionEngine::routes_anywhere(const Entity& entity) {
  matched_routes_.clear();
  routing_.collect(entity, matched_routes_, [](const SlotRoute&) { return true; });
  return !matched_routes_.empty();
}

std::vector<EventInstance> DetectionEngine::observe_cascading(const Entity& entity,
                                                             time_model::TimePoint now) {
  std::vector<Emission> emissions;
  observe_cascading(entity, now, emissions);
  std::vector<EventInstance> out;
  out.reserve(emissions.size());
  for (Emission& em : emissions) out.push_back(std::move(em.instance));
  return out;
}

void DetectionEngine::observe_cascading(const Entity& entity, time_model::TimePoint now,
                                        std::vector<Emission>& out) {
  EmitSink sink{nullptr, &out};
  std::size_t level_begin = out.size();
  observe_impl(entity, now, sink);

  // Breadth-first over derivation levels: out[level_begin, level_end) is
  // level `depth`; re-feeding its instances in order appends level
  // depth+1. Indices (not iterators) — re-observing may grow `out`.
  std::uint32_t depth = 1;
  while (level_begin < out.size()) {
    const std::size_t level_end = out.size();
    for (std::size_t k = level_begin; k < level_end; ++k) {
      out[k].depth = depth;
      out[k].emit_index = static_cast<std::uint32_t>(k - level_begin);
    }
    if (depth >= options_.max_cascade_depth) {
      // Cycle guard: the cap level is delivered but not re-ingested.
      for (std::size_t k = level_begin; k < level_end; ++k) {
        Entity fed(std::move(out[k].instance));
        if (routes_anywhere(fed)) ++stats_.cascade_truncated;
        out[k].instance = std::move(fed).extract_instance();
      }
      break;
    }
    for (std::size_t k = level_begin; k < level_end; ++k) {
      // View the emitted instance as an entity without copying it: move it
      // into the Entity for the re-observation, then move it back (slots
      // that buffer it take their own shared copy inside observe_impl).
      Entity fed(std::move(out[k].instance));
      if (routes_anywhere(fed)) {
        ++stats_.cascade_reingested;
        observe_impl(fed, now, sink);
      }
      out[k].instance = std::move(fed).extract_instance();
    }
    level_begin = level_end;
    ++depth;
  }
}

std::vector<EventInstance> DetectionEngine::observe_batch(
    std::span<const Entity> batch, std::span<const time_model::TimePoint> nows) {
  if (batch.size() != nows.size()) {
    throw std::invalid_argument("DetectionEngine::observe_batch: " + std::to_string(batch.size()) +
                                " entities but " + std::to_string(nows.size()) + " time points");
  }
  std::vector<EventInstance> out;
  EmitSink sink{&out, nullptr};
  for (std::size_t i = 0; i < batch.size(); ++i) observe_impl(batch[i], nows[i], sink);
  return out;
}

std::vector<EventInstance> DetectionEngine::observe_batch(std::span<const Entity> batch,
                                                          time_model::TimePoint now) {
  std::vector<EventInstance> out;
  EmitSink sink{&out, nullptr};
  for (const Entity& e : batch) observe_impl(e, now, sink);
  return out;
}

void DetectionEngine::observe_batch(std::span<const Entity> batch,
                                    std::span<const time_model::TimePoint> nows,
                                    std::vector<Emission>& out) {
  if (batch.size() != nows.size()) {
    throw std::invalid_argument("DetectionEngine::observe_batch: " + std::to_string(batch.size()) +
                                " entities but " + std::to_string(nows.size()) + " time points");
  }
  EmitSink sink{nullptr, &out};
  for (std::size_t i = 0; i < batch.size(); ++i) observe_impl(batch[i], nows[i], sink);
}

void DetectionEngine::observe_impl(const Entity& entity, time_model::TimePoint now,
                                   EmitSink& sink,
                                   const std::shared_ptr<const Entity>* prestored) {
  ++stats_.entities_in;
  maybe_prune(now);

  route(entity);
  if (matched_routes_.empty()) return;
  const std::size_t out_begin = sink.size();

  // The entity is copied into shared ownership only if some multi-slot
  // definition actually buffers it; pure threshold workloads bind the
  // caller's entity in place.
  std::shared_ptr<const Entity> shared;
  const std::uint64_t stamp = next_stamp_++;

  std::size_t i = 0;
  while (i < matched_routes_.size()) {
    const std::uint32_t d = matched_routes_[i].def_idx;
    DefState& ds = defs_[d];
    ++ds.load_routed;
    if (!ds.buffered) {  // single-slot: exactly one route, binding is {fresh}
      fire_single(ds, entity, now, sink);
      ++i;
      continue;
    }
    if (shared == nullptr) {
      // Buffering needs shared ownership that outlives this call: alias
      // the caller's storage when it provided some, else copy once.
      shared = prestored != nullptr ? *prestored : std::make_shared<const Entity>(entity);
    }
    const Buffered fresh{shared, stamp, shared->location().bbox()};
    // Insert into every matching slot first, so a definition whose two
    // slots both match can bind the entity against itself only through
    // distinct buffer positions. A shared stream receives the arrival
    // once no matter how many subscribed routes land on it (its
    // co-subscribers' runs see last_stamp already current).
    const std::size_t run_begin = i;
    if (ds.stream_backed) {
      for (; i < matched_routes_.size() && matched_routes_[i].def_idx == d; ++i) {
        StreamNode& sn = *streams_[ds.streams[matched_routes_[i].slot_idx]];
        if (sn.last_stamp != stamp) insert_stream(sn, fresh);
      }
    } else {
      for (; i < matched_routes_.size() && matched_routes_[i].def_idx == d; ++i) {
        insert_buffered(ds, matched_routes_[i].slot_idx, fresh);
      }
    }
    for (std::size_t r = run_begin; r < i; ++r) {
      try_bindings(ds, matched_routes_[r].slot_idx, fresh, now, sink);
    }
  }
  stats_.instances_out += sink.size() - out_begin;
}

void DetectionEngine::fire_single(DefState& ds, const Entity& entity, time_model::TimePoint now,
                                  EmitSink& sink) {
  scratch_.binding[0] = &entity;
  ++stats_.bindings_tried;
  ++ds.load_tried;
  const EvalContext ctx(scratch_.binding.data(), 1);
  if (!eval_condition(ds.def.condition, ctx, options_.eval_mode)) return;
  ++stats_.bindings_matched;
  const auto d = static_cast<std::uint32_t>(&ds - defs_.data());
  sink.emit(d, synthesize(ds, scratch_.binding.data(), 1, now));
}

void DetectionEngine::prepare_candidates(DefState& ds, std::uint32_t slot) {
  if (ds.guards[slot].empty()) {
    scratch_.source[slot] = 0;
    return;
  }
  // Pick the applicable guard with the smallest query footprint. Guards
  // whose partner slot is not yet bound at this depth cannot be used.
  bool have = false;
  bool partner_bound = false;
  geom::BoundingBox query;
  double best_area = 0.0;
  for (const Guard& g : ds.guards[slot]) {
    geom::BoundingBox q;
    if (g.partner == Guard::kNoPartner) {
      q = g.region;
    } else if (scratch_.chosen[g.partner] != nullptr) {
      q = scratch_.chosen[g.partner]->box.inflated(g.radius);
      partner_bound = true;
    } else {
      continue;
    }
    if (!have || q.area() < best_area) {
      have = true;
      query = q;
      best_area = q.area();
    }
  }
  if (!partner_bound) {
    // Constant-region-only (or nothing applicable): identical on every
    // re-descent within this try_bindings call — prepare only once.
    if (scratch_.prep_epoch[slot] == scratch_.cur_epoch) return;
    scratch_.prep_epoch[slot] = scratch_.cur_epoch;
  }
  scratch_.source[slot] = 0;
  if (!have) return;
  StreamNode* const sn = slot_stream(ds, slot);
  if (sn == nullptr || !sn->spatial_active) {
    // Scan the buffer, prechecking each candidate against the guard box.
    scratch_.qbox[slot] = query;
    scratch_.source[slot] = 1;
    return;
  }
  auto& stamps = scratch_.stamp_scratch;
  stamps.clear();
  sn->spatial->query(query, stamps);
  std::sort(stamps.begin(), stamps.end());  // restore arrival order
  auto& cand = scratch_.cand[slot];
  cand.clear();
  auto& buf = sn->buf;
  for (const std::uint64_t stamp : stamps) {
    // Buffers are deques in ascending stamp order; map each hit back to
    // its buffered entry (stale index hits simply miss and are skipped).
    const auto it =
        std::lower_bound(buf.begin(), buf.end(), stamp,
                         [](const Buffered& b, std::uint64_t s) { return b.stamp < s; });
    if (it != buf.end() && it->stamp == stamp) cand.push_back(&*it);
  }
  scratch_.source[slot] = 2;
}

void DetectionEngine::try_bindings(DefState& ds, std::size_t fixed_slot, const Buffered& fresh,
                                   time_model::TimePoint now, EmitSink& sink) {
  const std::size_t n = ds.def.slots.size();
  auto& chosen = scratch_.chosen;
  chosen.assign(n, nullptr);
  chosen[fixed_slot] = &fresh;
  ++scratch_.cur_epoch;  // invalidates cached constant-region preparations

  auto& order = scratch_.order;
  order.clear();
  for (std::uint32_t j = 0; j < n; ++j) {
    if (j != fixed_slot) order.push_back(j);
  }
  const std::size_t m = order.size();

  // Iterative depth-first enumeration over the non-fixed slots. All state
  // lives in the engine-level scratch (the enumerator never re-enters);
  // nothing allocates here.
  std::size_t depth = 0;
  scratch_.cursor[0] = 0;
  prepare_candidates(ds, order[0]);
  while (true) {
    const std::uint32_t slot = order[depth];
    const Buffered* cand = nullptr;
    if (scratch_.source[slot] == 2) {
      if (scratch_.cursor[depth] < scratch_.cand[slot].size()) {
        cand = scratch_.cand[slot][scratch_.cursor[depth]++];
      }
    } else {
      const auto& buf = slot_buffer(ds, slot);
      if (scratch_.cursor[depth] < buf.size()) cand = &buf[scratch_.cursor[depth]++];
    }
    if (cand == nullptr) {  // exhausted: backtrack
      chosen[slot] = nullptr;
      if (depth == 0) return;
      --depth;
      continue;
    }
    // Guard precheck: a candidate outside the guard box cannot satisfy
    // the (conjunctively implied) spatial constraint — skip it without
    // evaluating or descending.
    if (scratch_.source[slot] == 1 && !cand->box.intersects(scratch_.qbox[slot])) continue;
    // Slots below `fixed_slot` must not pick the fresh entity: the binding
    // with the fresh entity in that earlier slot is (or was) enumerated
    // when that slot was the fixed one, so this rule prevents duplicate
    // emissions when one entity matches several slots.
    if (cand->stamp == fresh.stamp && slot < fixed_slot) continue;
    chosen[slot] = cand;
    if (depth + 1 == m) {
      if (emit_binding(ds, now, sink)) return;  // participants were consumed
    } else {
      ++depth;
      scratch_.cursor[depth] = 0;
      prepare_candidates(ds, order[depth]);
    }
  }
}

bool DetectionEngine::emit_binding(DefState& ds, time_model::TimePoint now, EmitSink& sink) {
  const std::size_t n = ds.def.slots.size();
  for (std::size_t j = 0; j < n; ++j) scratch_.binding[j] = scratch_.chosen[j]->entity.get();
  ++stats_.bindings_tried;
  ++ds.load_tried;
  const EvalContext ctx(scratch_.binding.data(), n);
  if (!eval_condition(ds.def.condition, ctx, options_.eval_mode)) return false;
  ++stats_.bindings_matched;
  const auto d = static_cast<std::uint32_t>(&ds - defs_.data());
  sink.emit(d, synthesize(ds, scratch_.binding.data(), n, now));
  if (ds.def.consumption != ConsumptionMode::kConsume) return false;
  consume_participants(ds);
  return true;
}

void DetectionEngine::consume_participants(DefState& ds) {
  // Retire every participant from every slot buffer. Only consume-mode
  // definitions reach here, and those keep private buffers — never shared
  // streams, never spatial indexes — so nothing else can observe the
  // mid-buffer removal.
  const std::size_t n = ds.def.slots.size();
  auto& stamps = scratch_.stamp_scratch;  // enumeration stopped; scratch is free
  stamps.clear();
  for (std::size_t j = 0; j < n; ++j) stamps.push_back(scratch_.chosen[j]->stamp);
  const auto dead = [&stamps](const std::uint64_t s) {
    return std::find(stamps.begin(), stamps.end(), s) != stamps.end();
  };
  for (auto& buf : ds.buffers) {
    std::erase_if(buf, [&dead](const Buffered& b) { return dead(b.stamp); });
  }
}

EventInstance DetectionEngine::synthesize(DefState& ds, const Entity* const* binding,
                                          std::size_t n, time_model::TimePoint now) {
  const EventDefinition& def = ds.def;
  const std::span<const Entity* const> bound(binding, n);

  EventInstance inst;
  inst.key = EventInstanceKey{id_, def.id, seq_counters_[ds.seq_idx]++};
  inst.layer = layer_;
  inst.gen_time = now;
  inst.gen_location = location_;

  // t^eo: aggregate constituent occurrence times.
  std::vector<time_model::OccurrenceTime> times;
  times.reserve(n);
  for (const Entity* e : bound) times.push_back(e->occurrence_time());
  inst.est_time = time_model::aggregate_times(def.synthesis.time, times.data(), times.size());

  // l^eo: aggregate constituent locations (identity for a single slot).
  if (n == 1) {
    inst.est_location = binding[0]->location();
  } else {
    std::vector<geom::Location> locs;
    locs.reserve(n);
    for (const Entity* e : bound) locs.push_back(e->location());
    inst.est_location =
        geom::aggregate_locations(def.synthesis.location, locs.data(), locs.size());
  }

  // V: synthesized attributes.
  for (const AttributeRule& rule : def.synthesis.attributes) {
    std::vector<double> values;
    values.reserve(rule.slots.size());
    bool complete = true;
    for (const SlotIndex s : rule.slots) {
      const auto v = binding[s]->attributes().number(rule.input_attribute);
      if (!v.has_value()) {
        complete = false;
        break;
      }
      values.push_back(*v);
    }
    if (complete) {
      inst.attributes.set(rule.output_name,
                          aggregate_values(rule.aggregate, values.data(), values.size()));
    }
  }

  // rho: combine constituent confidences, then apply the observer's own.
  double rho = 0.0;
  switch (def.synthesis.confidence) {
    case ConfidencePolicy::kMin: {
      rho = 1.0;
      for (const Entity* e : bound) rho = std::min(rho, e->confidence());
      break;
    }
    case ConfidencePolicy::kProduct: {
      rho = 1.0;
      for (const Entity* e : bound) rho *= e->confidence();
      break;
    }
    case ConfidencePolicy::kMean: {
      for (const Entity* e : bound) rho += e->confidence();
      rho /= static_cast<double>(n);
      break;
    }
  }
  inst.confidence = rho * def.synthesis.observer_confidence;

  inst.provenance.reserve(n);
  for (const Entity* e : bound) inst.provenance.push_back(e->provenance_key());
  return inst;
}

}  // namespace stem::core
