#include "core/engine.hpp"

#include <stdexcept>
#include <utility>

namespace stem::core {

DetectionEngine::DetectionEngine(ObserverId id, Layer layer, geom::Point location,
                                 EngineOptions options)
    : id_(std::move(id)), layer_(layer), location_(location), options_(options) {}

void DetectionEngine::add_definition(EventDefinition def) {
  if (def.slots.empty()) {
    throw std::invalid_argument("DetectionEngine: definition '" + def.id.value() +
                                "' declares no slots");
  }
  if (const auto max = def.condition.max_slot();
      max.has_value() && *max >= def.slots.size()) {
    throw std::invalid_argument("DetectionEngine: condition of '" + def.id.value() +
                                "' references slot $" + std::to_string(*max) + " but only " +
                                std::to_string(def.slots.size()) + " slots are declared");
  }
  DefState ds{std::move(def), {}};
  ds.buffers.resize(ds.def.slots.size());
  defs_.push_back(std::move(ds));
}

void DetectionEngine::prune(time_model::TimePoint now) {
  for (DefState& ds : defs_) {
    const time_model::TimePoint horizon =
        now - ds.def.window;
    for (auto& buf : ds.buffers) {
      while (!buf.empty() && buf.front().entity->occurrence_time().end() < horizon) {
        buf.pop_front();
        ++stats_.evicted;
      }
    }
  }
}

std::vector<EventInstance> DetectionEngine::observe(const Entity& entity,
                                                    time_model::TimePoint now) {
  ++stats_.entities_in;
  prune(now);

  std::vector<EventInstance> out;
  const auto shared = std::make_shared<const Entity>(entity);
  const std::uint64_t stamp = next_stamp_++;

  for (DefState& ds : defs_) {
    // Insert into every matching slot first, so a definition whose two
    // slots both match can bind the entity against itself only through
    // distinct buffer positions.
    std::vector<std::size_t> matched;
    for (std::size_t j = 0; j < ds.def.slots.size(); ++j) {
      if (ds.def.slots[j].filter.matches(entity)) {
        auto& buf = ds.buffers[j];
        buf.push_back(Buffered{shared, stamp});
        if (buf.size() > options_.max_buffer) {
          buf.pop_front();
          ++stats_.evicted;
        }
        matched.push_back(j);
      }
    }
    for (const std::size_t j : matched) {
      try_bindings(ds, j, Buffered{shared, stamp}, now, out);
    }
  }
  stats_.instances_out += out.size();
  return out;
}

void DetectionEngine::try_bindings(DefState& ds, std::size_t fixed_slot, const Buffered& fresh,
                                   time_model::TimePoint now, std::vector<EventInstance>& out) {
  const std::size_t n = ds.def.slots.size();
  std::vector<const Buffered*> chosen(n, nullptr);
  chosen[fixed_slot] = &fresh;

  // Depth-first enumeration of candidate bindings over the other slots.
  // Slots below `fixed_slot` must not pick the fresh entity: the binding
  // with the fresh entity in that earlier slot is (or was) enumerated when
  // that slot was the fixed one, so this rule prevents duplicate
  // emissions when one entity matches several slots.
  std::vector<const Entity*> binding(n, nullptr);
  bool consumed = false;

  const auto emit = [&] {
    ++stats_.bindings_tried;
    const EvalContext ctx(binding.data(), n);
    if (!eval_condition(ds.def.condition, ctx, options_.eval_mode)) return;
    ++stats_.bindings_matched;
    out.push_back(synthesize(ds, binding, now));
    if (ds.def.consumption == ConsumptionMode::kConsume) {
      // Retire every participant from every slot buffer.
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t dead = chosen[j]->stamp;
        for (auto& buf : ds.buffers) {
          std::erase_if(buf, [dead](const Buffered& b) { return b.stamp == dead; });
        }
      }
      consumed = true;
    }
  };

  const std::function<void(std::size_t)> recurse = [&](std::size_t slot) {
    if (consumed) return;
    if (slot == n) {
      for (std::size_t j = 0; j < n; ++j) binding[j] = chosen[j]->entity.get();
      emit();
      return;
    }
    if (slot == fixed_slot) {
      recurse(slot + 1);
      return;
    }
    // Iterate a snapshot of candidates: consumption may mutate buffers.
    std::vector<Buffered> candidates(ds.buffers[slot].begin(), ds.buffers[slot].end());
    for (const Buffered& cand : candidates) {
      if (consumed) return;
      if (cand.stamp == fresh.stamp && slot < fixed_slot) continue;
      chosen[slot] = &cand;
      recurse(slot + 1);
    }
    chosen[slot] = nullptr;
  };
  recurse(0);
}

EventInstance DetectionEngine::synthesize(const DefState& ds,
                                          const std::vector<const Entity*>& binding,
                                          time_model::TimePoint now) {
  const EventDefinition& def = ds.def;
  const std::size_t n = binding.size();

  EventInstance inst;
  inst.key = EventInstanceKey{id_, def.id, seq_[def.id.value()]++};
  inst.layer = layer_;
  inst.gen_time = now;
  inst.gen_location = location_;

  // t^eo: aggregate constituent occurrence times.
  std::vector<time_model::OccurrenceTime> times;
  times.reserve(n);
  for (const Entity* e : binding) times.push_back(e->occurrence_time());
  inst.est_time = time_model::aggregate_times(def.synthesis.time, times.data(), times.size());

  // l^eo: aggregate constituent locations (identity for a single slot).
  if (n == 1) {
    inst.est_location = binding[0]->location();
  } else {
    std::vector<geom::Location> locs;
    locs.reserve(n);
    for (const Entity* e : binding) locs.push_back(e->location());
    inst.est_location =
        geom::aggregate_locations(def.synthesis.location, locs.data(), locs.size());
  }

  // V: synthesized attributes.
  for (const AttributeRule& rule : def.synthesis.attributes) {
    std::vector<double> values;
    values.reserve(rule.slots.size());
    bool complete = true;
    for (const SlotIndex s : rule.slots) {
      const auto v = binding[s]->attributes().number(rule.input_attribute);
      if (!v.has_value()) {
        complete = false;
        break;
      }
      values.push_back(*v);
    }
    if (complete) {
      inst.attributes.set(rule.output_name,
                          aggregate_values(rule.aggregate, values.data(), values.size()));
    }
  }

  // rho: combine constituent confidences, then apply the observer's own.
  double rho = 0.0;
  switch (def.synthesis.confidence) {
    case ConfidencePolicy::kMin: {
      rho = 1.0;
      for (const Entity* e : binding) rho = std::min(rho, e->confidence());
      break;
    }
    case ConfidencePolicy::kProduct: {
      rho = 1.0;
      for (const Entity* e : binding) rho *= e->confidence();
      break;
    }
    case ConfidencePolicy::kMean: {
      for (const Entity* e : binding) rho += e->confidence();
      rho /= static_cast<double>(n);
      break;
    }
  }
  inst.confidence = rho * def.synthesis.observer_confidence;

  inst.provenance.reserve(n);
  for (const Entity* e : binding) inst.provenance.push_back(e->provenance_key());
  return inst;
}

}  // namespace stem::core
