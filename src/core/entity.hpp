#pragma once

#include <memory>
#include <variant>

#include "core/instance.hpp"

namespace stem::core {

/// An evaluation entity (paper Sec. 4.1): "An entity in CPS can be a
/// physical observation or an event instance." Event conditions are
/// evaluated over entities, so both kinds expose a uniform view of their
/// time, location, attributes, and confidence.
class Entity {
 public:
  Entity(PhysicalObservation obs)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(obs)) {}
  Entity(EventInstance inst)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(inst)) {}

  [[nodiscard]] bool is_observation() const {
    return std::holds_alternative<PhysicalObservation>(rep_);
  }
  [[nodiscard]] bool is_instance() const { return !is_observation(); }

  [[nodiscard]] const PhysicalObservation& observation() const {
    return std::get<PhysicalObservation>(rep_);
  }
  [[nodiscard]] const EventInstance& instance() const { return std::get<EventInstance>(rep_); }

  /// Moves the wrapped instance back out (rvalue only). The cascading
  /// observation path wraps an emitted instance for re-evaluation and
  /// reclaims it afterwards, so viewing an instance as an entity never
  /// deep-copies it. Precondition: is_instance().
  [[nodiscard]] EventInstance extract_instance() && {
    return std::get<EventInstance>(std::move(rep_));
  }

  /// (Estimated) occurrence time: t^o for observations, t^eo for instances.
  [[nodiscard]] time_model::OccurrenceTime occurrence_time() const {
    if (is_observation()) return time_model::OccurrenceTime(observation().time);
    return instance().est_time;
  }

  /// (Estimated) occurrence location: l^o / l^eo.
  [[nodiscard]] const geom::Location& location() const {
    return is_observation() ? observation().location : instance().est_location;
  }

  [[nodiscard]] const AttributeSet& attributes() const {
    return is_observation() ? observation().attributes : instance().attributes;
  }

  /// Observations are raw measurements: full confidence by convention.
  [[nodiscard]] double confidence() const {
    return is_observation() ? 1.0 : instance().confidence;
  }

  [[nodiscard]] Layer layer() const {
    return is_observation() ? Layer::kPhysicalObservation : instance().layer;
  }

  /// Who produced this entity (the mote for observations, the observer
  /// for instances).
  [[nodiscard]] const ObserverId& producer() const {
    return is_observation() ? observation().mote : instance().key.observer;
  }

  /// Key to record in derived instances' provenance. Observations are
  /// identified by (mote, sensor-as-event-type, seq).
  [[nodiscard]] EventInstanceKey provenance_key() const {
    if (is_observation()) {
      const auto& o = observation();
      return EventInstanceKey{o.mote, EventTypeId("obs:" + o.sensor.value()), o.seq};
    }
    return instance().key;
  }

 private:
  std::variant<PhysicalObservation, EventInstance> rep_;
};

}  // namespace stem::core
