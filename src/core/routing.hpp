#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/event_def.hpp"

namespace stem::core {

/// Routing index entry: one (definition, slot) pair. The meaning of
/// `def_idx` is the registrar's: the DetectionEngine registers definition
/// indexes, the sharded runtime registers *shard* indexes so one lookup
/// yields the set of shards an arrival must be replicated to.
struct SlotRoute {
  std::uint32_t def_idx;
  std::uint32_t slot_idx;

  friend bool operator==(const SlotRoute&, const SlotRoute&) = default;
};

/// Maps an arriving entity to the (definition, slot) pairs whose filters
/// can possibly match it, so unrelated definitions cost nothing.
///
/// Extracted from DetectionEngine (where it powers `observe()` candidate
/// selection) so the sharded runtime (`runtime::ShardedEngineRuntime`) can
/// maintain the same structure keyed by shard index and consult it for
/// arrival placement. Structure:
///  - keyed buckets per sensor id and per event type id, reached by one
///    hash lookup on the arrival's discriminant;
///  - a wildcard list for filters with no usable discriminant, merged into
///    every lookup;
///  - inside a bucket, single-slot `attr OP C` definitions live in
///    per-attribute constant-sorted lists, so an arriving value walks only
///    the rules it can actually fire (output-sensitive in rule count).
class RoutingIndex {
 public:
  /// Registers every slot of `def` under index `def_idx`. Routes are kept
  /// sorted by (def_idx, slot_idx), so registration order and index order
  /// need not coincide (the runtime registers shard indexes out of order).
  void add(const EventDefinition& def, std::uint32_t def_idx);

  /// Shard-level registration: like add(), but collapses every slot to
  /// slot 0 and reference-counts exact-duplicate routes, so a bucket holds
  /// at most one generic route per def_idx no matter how many co-located
  /// definitions share the key. For registrars (the sharded runtime) that
  /// only consume the def_idx of collected routes, this keeps the
  /// per-arrival collect() walk O(distinct indexes), not O(definitions).
  void add_collapsed(const EventDefinition& def, std::uint32_t def_idx);

  /// Incrementally unregisters what add(def, def_idx) registered: every
  /// route entry is reference-counted, so removing one definition leaves
  /// routes still claimed by other registrations (collapsed co-located
  /// definitions sharing a key) in place. Buckets and threshold groups
  /// emptied by the removal are erased. Throws std::logic_error when a
  /// route to remove is not present (indicates an add/remove mismatch).
  void remove(const EventDefinition& def, std::uint32_t def_idx);
  /// Inverse of add_collapsed (same collapsed slot-0 routes).
  void remove_collapsed(const EventDefinition& def, std::uint32_t def_idx);

  /// Collects the routes that can possibly match `entity` into `out` (not
  /// cleared), in ascending (def_idx, slot_idx) order, keeping a route
  /// only when `accept(route)` returns true. `accept` must verify the
  /// residual filter fields (producer, layer) — the index only dispatches
  /// on the discriminant key and, for threshold rules, the constant.
  template <typename Accept>
  void collect(const Entity& entity, std::vector<SlotRoute>& out, Accept&& accept) const {
    const Bucket* bucket = nullptr;
    if (entity.is_observation()) {
      if (const auto it = by_sensor_.find(entity.observation().sensor.value());
          it != by_sensor_.end()) {
        bucket = &it->second;
      }
    } else {
      if (const auto it = by_type_.find(entity.instance().key.event.value());
          it != by_type_.end()) {
        bucket = &it->second;
      }
    }
    const auto push = [&](const SlotRoute r) {
      if (accept(r)) out.push_back(r);
    };
    // Merge the keyed bucket's generic routes with the wildcard list
    // (both sorted by construction).
    std::size_t a = 0;
    std::size_t b = 0;
    const std::size_t an = bucket != nullptr ? bucket->generic.size() : 0;
    const std::size_t bn = any_.size();
    while (a < an && b < bn) {
      const SlotRoute ra = bucket->generic[a];
      const SlotRoute rb = any_[b];
      if (ra.def_idx < rb.def_idx || (ra.def_idx == rb.def_idx && ra.slot_idx < rb.slot_idx)) {
        push(ra);
        ++a;
      } else {
        push(rb);
        ++b;
      }
    }
    for (; a < an; ++a) push(bucket->generic[a]);
    for (; b < bn; ++b) push(any_[b]);

    // Threshold sub-index: walk only the rules the arriving value
    // satisfies. Entries are sorted by constant, so the walk stops at the
    // first rule the value cannot fire (output-sensitive selection). The
    // selected definitions still evaluate their full condition downstream;
    // this is purely a routing pre-filter.
    if (bucket == nullptr || bucket->thresholds.empty()) return;
    const std::size_t generic_end = out.size();
    for (const ThresholdGroup& g : bucket->thresholds) {
      const std::optional<double> value = entity.attributes().number(g.attribute);
      // A missing (or non-numeric) attribute fails every threshold; NaN
      // fails every order comparison.
      if (!value.has_value() || std::isnan(*value)) continue;
      const double v = *value;
      for (std::size_t k = 0; k < g.above.size(); ++k) {
        if (g.above[k].first < v || (g.above[k].first == v && g.above_ge[k] != 0)) {
          push(g.above[k].second);
        } else if (g.above[k].first > v) {
          break;
        }
      }
      for (std::size_t k = 0; k < g.below.size(); ++k) {
        if (g.below[k].first > v || (g.below[k].first == v && g.below_le[k] != 0)) {
          push(g.below[k].second);
        } else if (g.below[k].first < v) {
          break;
        }
      }
    }
    if (out.size() > generic_end) {
      // Restore global (def_idx, slot_idx) order across the generic and
      // threshold-selected routes.
      std::sort(out.begin(), out.end(), [](const SlotRoute& x, const SlotRoute& y) {
        return x.def_idx < y.def_idx || (x.def_idx == y.def_idx && x.slot_idx < y.slot_idx);
      });
    }
  }

 private:
  /// Single-slot `attr OP C` definitions, grouped per attribute with the
  /// entries sorted by constant, so selection walks only the rules the
  /// arriving value actually satisfies (output-sensitive in rule count).
  struct ThresholdGroup {
    std::string attribute;
    /// kGt/kGe entries, ascending by constant: every entry with
    /// constant < value fires; at equality only kGe does.
    std::vector<std::pair<double, SlotRoute>> above;
    std::vector<std::uint8_t> above_ge;   // parallel: 1 = kGe
    std::vector<std::uint32_t> above_refs;  // parallel: registrations
    /// kLt/kLe entries, descending by constant (mirror logic).
    std::vector<std::pair<double, SlotRoute>> below;
    std::vector<std::uint8_t> below_le;   // parallel: 1 = kLe
    std::vector<std::uint32_t> below_refs;  // parallel: registrations

    [[nodiscard]] bool empty() const { return above.empty() && below.empty(); }
  };

  /// One routing bucket (per sensor / event type): generic (def, slot)
  /// routes plus the threshold sub-index. The parallel refcount vector
  /// never participates in collect() — it only arbitrates add/remove of
  /// collapsed duplicates.
  struct Bucket {
    std::vector<SlotRoute> generic;  // sorted by (def_idx, slot_idx)
    std::vector<std::uint32_t> generic_refs;  // parallel: registrations
    std::vector<ThresholdGroup> thresholds;

    [[nodiscard]] bool empty() const { return generic.empty() && thresholds.empty(); }
  };

  void add_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse);
  void remove_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse);

  /// Registers a keyed route, diverting eligible single-slot threshold
  /// definitions into the bucket's threshold sub-index.
  void register_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r);
  /// Inverse of register_keyed; returns whether the bucket became empty.
  void unregister_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r);

  /// Inserts `r` in (def_idx, slot_idx) order; an exact duplicate (which
  /// only collapsed registration can produce) bumps its refcount instead.
  static void insert_sorted(std::vector<SlotRoute>& routes, std::vector<std::uint32_t>& refs,
                           SlotRoute r);
  /// Decrements `r`'s refcount, erasing the entry at zero. Throws
  /// std::logic_error when `r` is absent.
  static void erase_sorted(std::vector<SlotRoute>& routes, std::vector<std::uint32_t>& refs,
                           SlotRoute r);

  std::unordered_map<std::string, Bucket> by_sensor_;
  std::unordered_map<std::string, Bucket> by_type_;
  std::vector<SlotRoute> any_;  // sorted by (def_idx, slot_idx)
  std::vector<std::uint32_t> any_refs_;  // parallel: registrations
};

}  // namespace stem::core
