#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/event_def.hpp"

namespace stem::core {

/// Stable 64-bit hash (FNV-1a) of a routing key — the basis of key-range
/// ownership when a definition group is split across shards: every
/// sensor-keyed definition is owned by the sub-group whose KeyRange
/// contains its key's hash, so the two sub-groups partition the group's
/// routing keys deterministically (same keys => same partition on every
/// run, host, and recovery replay).
[[nodiscard]] std::uint64_t routing_key_hash(std::string_view key) noexcept;

/// Inclusive hash range [lo, hi] over routing_key_hash values. A split
/// definition group owns two complementary ranges: the low sub-group
/// keeps [0, split_point - 1], the high one takes [split_point, 2^64 - 1].
struct KeyRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = ~std::uint64_t{0};

  [[nodiscard]] bool contains(std::uint64_t hash) const noexcept {
    return hash >= lo && hash <= hi;
  }

  friend bool operator==(const KeyRange&, const KeyRange&) = default;
};

/// Routing index entry: one (definition, slot) pair. The meaning of
/// `def_idx` is the registrar's: the DetectionEngine registers definition
/// indexes, the sharded runtime registers *shard* indexes so one lookup
/// yields the set of shards an arrival must be replicated to.
struct SlotRoute {
  std::uint32_t def_idx;
  std::uint32_t slot_idx;

  friend bool operator==(const SlotRoute&, const SlotRoute&) = default;
};

/// Maps an arriving entity to the (definition, slot) pairs whose filters
/// can possibly match it, so unrelated definitions cost nothing.
///
/// Extracted from DetectionEngine (where it powers `observe()` candidate
/// selection) so the sharded runtime (`runtime::ShardedEngineRuntime`) can
/// maintain the same structure keyed by shard index and consult it for
/// arrival placement. Structure:
///  - keyed buckets per sensor id and per event type id, reached by one
///    hash lookup on the arrival's discriminant;
///  - a wildcard list for filters with no usable discriminant, merged into
///    every lookup;
///  - inside a bucket, single-slot `attr OP C` definitions live in
///    per-attribute constant-sorted lists, so an arriving value walks only
///    the rules it can actually fire (output-sensitive in rule count).
class RoutingIndex {
 public:
  /// Registers every slot of `def` under index `def_idx`. Routes are kept
  /// sorted by (def_idx, slot_idx), so registration order and index order
  /// need not coincide (the runtime registers shard indexes out of order).
  void add(const EventDefinition& def, std::uint32_t def_idx);

  /// Shard-level registration: like add(), but collapses every slot to
  /// slot 0 and reference-counts exact-duplicate routes, so a bucket holds
  /// at most one generic route per def_idx no matter how many co-located
  /// definitions share the key. For registrars (the sharded runtime) that
  /// only consume the def_idx of collected routes, this keeps the
  /// per-arrival collect() walk O(distinct indexes), not O(definitions).
  void add_collapsed(const EventDefinition& def, std::uint32_t def_idx);

  /// Incrementally unregisters what add(def, def_idx) registered: every
  /// route entry is reference-counted, so removing one definition leaves
  /// routes still claimed by other registrations (collapsed co-located
  /// definitions sharing a key) in place. Buckets and threshold groups
  /// emptied by the removal are erased. Throws std::logic_error when a
  /// route to remove is not present (indicates an add/remove mismatch).
  void remove(const EventDefinition& def, std::uint32_t def_idx);
  /// Inverse of add_collapsed (same collapsed slot-0 routes).
  void remove_collapsed(const EventDefinition& def, std::uint32_t def_idx);

  /// Collects the routes that can possibly match `entity` into `out` (not
  /// cleared), in ascending (def_idx, slot_idx) order, keeping a route
  /// only when `accept(route)` returns true, with every surviving route
  /// appearing exactly once per call even when several index structures
  /// (keyed bucket, wildcard list, duplicate threshold constants under
  /// collapsed registration) claim it. `accept` must verify the residual
  /// filter fields (producer, layer) — the index only dispatches on the
  /// discriminant key and, for threshold rules, the constant.
  ///
  /// Non-const: threshold registrations land in small per-side pending
  /// lists (keeping add O(1) amortized) and are folded into the segment
  /// nodes lazily on dispatch. Callers already serialize collect() with
  /// add()/remove() (the engine is single-threaded; the runtime guards its
  /// shard/cascade indexes with the registration locks).
  template <typename Accept>
  void collect(const Entity& entity, std::vector<SlotRoute>& out, Accept&& accept) {
    Bucket* bucket = nullptr;
    if (entity.is_observation()) {
      if (const auto it = by_sensor_.find(entity.observation().sensor.value());
          it != by_sensor_.end()) {
        bucket = &it->second;
      }
    } else {
      if (const auto it = by_type_.find(entity.instance().key.event.value());
          it != by_type_.end()) {
        bucket = &it->second;
      }
    }
    const auto push = [&](const SlotRoute r) {
      if (accept(r)) out.push_back(r);
    };
    const std::size_t entry_size = out.size();
    // Merge the keyed bucket's generic routes with the wildcard list (both
    // sorted by construction). An equal pair — one registration reached
    // through both structures — is pushed once.
    std::size_t a = 0;
    std::size_t b = 0;
    const std::size_t an = bucket != nullptr ? bucket->generic.size() : 0;
    const std::size_t bn = any_.size();
    while (a < an && b < bn) {
      const SlotRoute ra = bucket->generic[a];
      const SlotRoute rb = any_[b];
      if (ra == rb) {
        push(ra);
        ++a;
        ++b;
      } else if (ra.def_idx < rb.def_idx ||
                 (ra.def_idx == rb.def_idx && ra.slot_idx < rb.slot_idx)) {
        push(ra);
        ++a;
      } else {
        push(rb);
        ++b;
      }
    }
    for (; a < an; ++a) push(bucket->generic[a]);
    for (; b < bn; ++b) push(any_[b]);

    // Threshold sub-index: dispatch whole segment nodes. Nodes are sorted
    // by constant, so the walk covers exactly the prefix of nodes the
    // arriving value fires and stops at the first it cannot (output-
    // sensitive selection); each fired node contributes its full route
    // range. The selected definitions still evaluate their full condition
    // downstream; this is purely a routing pre-filter.
    if (bucket == nullptr || bucket->thresholds.empty()) return;
    const std::size_t generic_end = out.size();
    for (ThresholdGroup& g : bucket->thresholds) {
      const std::optional<double> value = entity.attributes().number(g.attribute);
      // A missing (or non-numeric) attribute fails every threshold; NaN
      // fails every order comparison.
      if (!value.has_value() || std::isnan(*value)) continue;
      const double v = *value;
      dispatch_side(g.above, /*upper=*/true, v, push);
      dispatch_side(g.below, /*upper=*/false, v, push);
    }
    if (out.size() > generic_end) {
      // Restore global (def_idx, slot_idx) order across the generic and
      // threshold-selected routes, and drop duplicates a route collapsed
      // onto several threshold constants could produce.
      const auto begin = out.begin() + static_cast<std::ptrdiff_t>(entry_size);
      std::sort(begin, out.end(), [](const SlotRoute& x, const SlotRoute& y) {
        return x.def_idx < y.def_idx || (x.def_idx == y.def_idx && x.slot_idx < y.slot_idx);
      });
      out.erase(std::unique(begin, out.end()), out.end());
    }
  }

 private:
  /// One direction of a per-attribute threshold sub-index: the single-slot
  /// `attr > C` / `attr >= C` rules (`upper` = true) or their `<` / `<=`
  /// mirrors, merged into *segment nodes*. A node is one distinct
  /// (constant, inclusiveness) boundary carrying the contiguous range of
  /// routes registered at it (CSR layout), so an arriving value dispatches
  /// ranges of rules — the node walk is output-sensitive in fired nodes,
  /// not registered rules.
  ///
  /// Registration appends to `pending` in O(1) amortized (the fix for the
  /// superlinear add_definition cost the sorted-insert scheme had) and is
  /// folded into the node arrays lazily: dispatch compacts once pending
  /// outgrows a constant-plus-fraction-of-live bound, so a bulk load of N
  /// rules costs one O(N log N) compaction on the first dispatch instead
  /// of O(N^2) sorted inserts.
  struct ThresholdSide {
    // Compacted segment nodes, ordered ascending by constant for the upper
    // side / descending for the lower, inclusive boundary first at ties.
    std::vector<double> constant;
    std::vector<std::uint8_t> inclusive;     // parallel to nodes; 1 = fires at equality
    std::vector<std::uint32_t> node_begin;   // CSR into routes/refs; size = nodes + 1
    std::vector<SlotRoute> routes;           // per node, ascending (def, slot)
    std::vector<std::uint32_t> refs;         // parallel to routes; 0 = dead (lazily purged)
    std::uint32_t dead = 0;                  // zero-ref route entries awaiting compaction

    /// Not-yet-compacted registrations. Kept sorted in the node order
    /// above whenever that is free (monotone registration patterns);
    /// otherwise re-sorted on the next dispatch.
    struct Pending {
      double constant;
      std::uint8_t inclusive;
      SlotRoute route;
      std::uint32_t refs;
    };
    std::vector<Pending> pending;
    bool pending_dirty = false;

    [[nodiscard]] bool empty() const { return live() == 0 && pending.empty(); }
    [[nodiscard]] std::size_t live() const { return routes.size() - dead; }

    void add(bool upper, double c, bool inclusive_bound, SlotRoute r);
    [[nodiscard]] bool remove(bool upper, double c, bool inclusive_bound, SlotRoute r);
    /// Sorts pending if dirty and compacts it into the node arrays once it
    /// outgrows its bound; called by dispatch before walking.
    void ensure_dispatchable(bool upper);
    /// Rebuilds the node arrays from live compacted entries + pending.
    void compact(bool upper);
  };

  /// Single-slot `attr OP C` definitions of one bucket, grouped per
  /// attribute (see ThresholdSide for the segment-node layout).
  struct ThresholdGroup {
    std::string attribute;
    ThresholdSide above;  ///< kGt/kGe: every node with constant < value fires
    ThresholdSide below;  ///< kLt/kLe mirror (descending constants)

    [[nodiscard]] bool empty() const { return above.empty() && below.empty(); }
  };

  /// Walks one threshold side: compacts pending if due, then pushes the
  /// route ranges of every node the value fires, stopping at the first
  /// non-firing constant (plus the ≤ bounded pending tail, same order).
  template <typename Push>
  static void dispatch_side(ThresholdSide& side, bool upper, double v, Push&& push) {
    side.ensure_dispatchable(upper);
    const std::size_t nodes = side.constant.size();
    for (std::size_t k = 0; k < nodes; ++k) {
      const double c = side.constant[k];
      if (upper ? c > v : c < v) break;
      if (c == v && side.inclusive[k] == 0) continue;
      for (std::uint32_t i = side.node_begin[k]; i < side.node_begin[k + 1]; ++i) {
        if (side.refs[i] != 0) push(side.routes[i]);
      }
    }
    for (const ThresholdSide::Pending& p : side.pending) {
      if (upper ? p.constant > v : p.constant < v) break;
      if (p.constant == v && p.inclusive == 0) continue;
      push(p.route);
    }
  }

  /// One routing bucket (per sensor / event type): generic (def, slot)
  /// routes plus the threshold sub-index. The parallel refcount vector
  /// never participates in collect() — it only arbitrates add/remove of
  /// collapsed duplicates.
  struct Bucket {
    std::vector<SlotRoute> generic;  // sorted by (def_idx, slot_idx)
    std::vector<std::uint32_t> generic_refs;  // parallel: registrations
    std::vector<ThresholdGroup> thresholds;

    [[nodiscard]] bool empty() const { return generic.empty() && thresholds.empty(); }
  };

  void add_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse);
  void remove_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse);

  /// Registers a keyed route, diverting eligible single-slot threshold
  /// definitions into the bucket's threshold sub-index.
  void register_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r);
  /// Inverse of register_keyed; returns whether the bucket became empty.
  void unregister_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r);

  /// Inserts `r` in (def_idx, slot_idx) order; an exact duplicate (which
  /// only collapsed registration can produce) bumps its refcount instead.
  static void insert_sorted(std::vector<SlotRoute>& routes, std::vector<std::uint32_t>& refs,
                           SlotRoute r);
  /// Decrements `r`'s refcount, erasing the entry at zero. Throws
  /// std::logic_error when `r` is absent.
  static void erase_sorted(std::vector<SlotRoute>& routes, std::vector<std::uint32_t>& refs,
                           SlotRoute r);

  std::unordered_map<std::string, Bucket> by_sensor_;
  std::unordered_map<std::string, Bucket> by_type_;
  std::vector<SlotRoute> any_;  // sorted by (def_idx, slot_idx)
  std::vector<std::uint32_t> any_refs_;  // parallel: registrations
};

/// Stamp-versioned, copy-on-write routing view: one definition-granular
/// RoutingIndex that is frozen once registration ends, plus a short history
/// of def->target placement maps, each effective from a stamp onward.
///
/// Built for the cascade coordinator, which with pipelined closures may
/// drive several stamps' closures concurrently while a migration barrier
/// sits between them: the closure for a pre-barrier stamp must route
/// feedback to a group's old shard at the same time as a post-barrier
/// closure routes to the new one. A single mutable index cannot express
/// that; mutating it per flip also costs a bucket/threshold-structure
/// erase+insert per definition. Here a flip copies only the flat
/// def->target vector (O(definitions) trivially-copyable words), the
/// match structures are never touched after start, and every in-flight
/// closure resolves targets through the version effective at its stamp.
///
/// Thread contract: add() is registration-time only; publish(),
/// retire_below() and target_mask() are called by one thread (the
/// coordinator). target_mask() is non-const for the same lazy-compaction
/// reason as RoutingIndex::collect().
class VersionedRouting {
 public:
  /// Registers `def` under `def_idx` (collapsed to one route per def) with
  /// its initial placement `target` in the base version.
  void add(const EventDefinition& def, std::uint32_t def_idx, std::uint32_t target);

  /// Publishes a new placement version effective for stamps >= from_stamp:
  /// a copy of the newest map with each def in `defs` moved to `to`.
  /// Same-stamp publishes fold into the just-published version (two
  /// migrations can share a barrier when no arrival lands between them).
  /// from_stamp must be non-decreasing across calls.
  void publish(std::uint64_t from_stamp, const std::vector<std::uint32_t>& defs,
               std::uint32_t to);

  /// Drops versions no closure can need anymore: every version superseded
  /// by another version with from_stamp <= `stamp` (the oldest unclosed
  /// stamp) is retired.
  void retire_below(std::uint64_t stamp);

  /// Collects the definitions that can possibly match `entity` (via
  /// `scratch`, clobbered) and returns the bitmask of their targets under
  /// the version effective at `stamp`. Zero means the entity is inert. The
  /// per-definition routes are left in `scratch` (ascending def_idx) for
  /// callers that need them.
  std::uint64_t target_mask(const Entity& entity, std::uint64_t stamp,
                            std::vector<SlotRoute>& scratch);

 private:
  /// One placement snapshot: def_idx -> target, effective at from_stamp.
  struct Version {
    std::uint64_t from_stamp = 0;
    std::vector<std::uint32_t> target;
  };

  [[nodiscard]] const std::vector<std::uint32_t>& map_for(std::uint64_t stamp) const;

  RoutingIndex index_;           ///< frozen after registration
  std::deque<Version> versions_; ///< ascending from_stamp; front is oldest live
};

}  // namespace stem::core
