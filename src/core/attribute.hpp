#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace stem::core {

/// Value of a single event-occurrence attribute (the V set of Def. 4.1).
using AttributeValue = std::variant<std::int64_t, double, bool, std::string>;

/// Numeric view of a value: ints, doubles, and bools coerce; strings don't.
[[nodiscard]] std::optional<double> as_number(const AttributeValue& v);

std::ostream& operator<<(std::ostream& os, const AttributeValue& v);

/// A small ordered name->value map. Events carry a handful of attributes,
/// so a sorted vector beats a node-based map in both space and speed.
class AttributeSet {
 public:
  AttributeSet() = default;
  AttributeSet(std::initializer_list<std::pair<std::string, AttributeValue>> init);

  /// Inserts or replaces.
  void set(std::string name, AttributeValue value);

  [[nodiscard]] const AttributeValue* find(std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const { return find(name) != nullptr; }
  /// Numeric value of `name`, if present and numeric.
  [[nodiscard]] std::optional<double> number(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

  friend bool operator==(const AttributeSet&, const AttributeSet&) = default;

 private:
  std::vector<std::pair<std::string, AttributeValue>> entries_;  // sorted by name
};

std::ostream& operator<<(std::ostream& os, const AttributeSet& attrs);

/// Relational operators OP_R of attribute-based event conditions (Eq. 4.2):
/// "Greater, Equal, Less" plus the standard complements.
enum class RelationalOp { kEq, kNe, kLt, kLe, kGt, kGe };

[[nodiscard]] bool eval_relational(double lhs, RelationalOp op, double rhs);
[[nodiscard]] std::string_view to_string(RelationalOp op);
[[nodiscard]] std::optional<RelationalOp> relational_op_from_string(std::string_view s);
std::ostream& operator<<(std::ostream& os, RelationalOp op);

/// Aggregation functions g_v over entity attributes (Eq. 4.2): the paper
/// names "Average, Max, Add"; Min/Count round out the usual set.
enum class ValueAggregate { kAverage, kMax, kMin, kSum, kCount };

[[nodiscard]] std::string_view to_string(ValueAggregate a);
[[nodiscard]] std::optional<ValueAggregate> value_aggregate_from_string(std::string_view s);

/// Applies an aggregation to a list of numeric samples.
/// kCount tolerates an empty list; the others throw std::invalid_argument.
[[nodiscard]] double aggregate_values(ValueAggregate agg, const double* first, std::size_t count);

}  // namespace stem::core
