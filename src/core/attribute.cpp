#include "core/attribute.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace stem::core {

std::optional<double> as_number(const AttributeValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* b = std::get_if<bool>(&v)) return *b ? 1.0 : 0.0;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, const AttributeValue& v) {
  std::visit([&os](const auto& x) { os << x; }, v);
  return os;
}

AttributeSet::AttributeSet(std::initializer_list<std::pair<std::string, AttributeValue>> init) {
  for (auto& [name, value] : init) set(name, value);
}

void AttributeSet::set(std::string name, AttributeValue value) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it != entries_.end() && it->first == name) {
    it->second = std::move(value);
  } else {
    entries_.emplace(it, std::move(name), std::move(value));
  }
}

const AttributeValue* AttributeSet::find(std::string_view name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != entries_.end() && it->first == name) return &it->second;
  return nullptr;
}

std::optional<double> AttributeSet::number(std::string_view name) const {
  const AttributeValue* v = find(name);
  if (v == nullptr) return std::nullopt;
  return as_number(*v);
}

std::ostream& operator<<(std::ostream& os, const AttributeSet& attrs) {
  os << "{";
  bool first = true;
  for (const auto& [name, value] : attrs) {
    if (!first) os << ", ";
    first = false;
    os << name << "=" << value;
  }
  return os << "}";
}

bool eval_relational(double lhs, RelationalOp op, double rhs) {
  switch (op) {
    case RelationalOp::kEq: return lhs == rhs;
    case RelationalOp::kNe: return lhs != rhs;
    case RelationalOp::kLt: return lhs < rhs;
    case RelationalOp::kLe: return lhs <= rhs;
    case RelationalOp::kGt: return lhs > rhs;
    case RelationalOp::kGe: return lhs >= rhs;
  }
  return false;  // unreachable
}

std::string_view to_string(RelationalOp op) {
  switch (op) {
    case RelationalOp::kEq: return "==";
    case RelationalOp::kNe: return "!=";
    case RelationalOp::kLt: return "<";
    case RelationalOp::kLe: return "<=";
    case RelationalOp::kGt: return ">";
    case RelationalOp::kGe: return ">=";
  }
  return "?";
}

std::optional<RelationalOp> relational_op_from_string(std::string_view s) {
  if (s == "==" || s == "=") return RelationalOp::kEq;
  if (s == "!=") return RelationalOp::kNe;
  if (s == "<") return RelationalOp::kLt;
  if (s == "<=") return RelationalOp::kLe;
  if (s == ">") return RelationalOp::kGt;
  if (s == ">=") return RelationalOp::kGe;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, RelationalOp op) { return os << to_string(op); }

std::string_view to_string(ValueAggregate a) {
  switch (a) {
    case ValueAggregate::kAverage: return "avg";
    case ValueAggregate::kMax: return "max";
    case ValueAggregate::kMin: return "min";
    case ValueAggregate::kSum: return "sum";
    case ValueAggregate::kCount: return "count";
  }
  return "?";
}

std::optional<ValueAggregate> value_aggregate_from_string(std::string_view s) {
  if (s == "avg" || s == "average") return ValueAggregate::kAverage;
  if (s == "max") return ValueAggregate::kMax;
  if (s == "min") return ValueAggregate::kMin;
  if (s == "sum" || s == "add") return ValueAggregate::kSum;
  if (s == "count") return ValueAggregate::kCount;
  return std::nullopt;
}

double aggregate_values(ValueAggregate agg, const double* first, std::size_t count) {
  if (agg == ValueAggregate::kCount) return static_cast<double>(count);
  if (count == 0 || first == nullptr) {
    throw std::invalid_argument("aggregate_values: empty input");
  }
  double acc = first[0];
  switch (agg) {
    case ValueAggregate::kAverage:
    case ValueAggregate::kSum:
      for (std::size_t i = 1; i < count; ++i) acc += first[i];
      if (agg == ValueAggregate::kAverage) acc /= static_cast<double>(count);
      return acc;
    case ValueAggregate::kMax:
      for (std::size_t i = 1; i < count; ++i) acc = std::max(acc, first[i]);
      return acc;
    case ValueAggregate::kMin:
      for (std::size_t i = 1; i < count; ++i) acc = std::min(acc, first[i]);
      return acc;
    case ValueAggregate::kCount: break;  // handled above
  }
  throw std::logic_error("aggregate_values: bad aggregate");
}

}  // namespace stem::core
