#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/attribute.hpp"
#include "core/entity.hpp"
#include "geom/location.hpp"
#include "time/temporal_op.hpp"

/// Event conditions (paper Def. 4.2).
///
/// An event is defined over named entity *slots* ("x", "y", ...); a
/// condition constrains the attributes (Eq. 4.2), times (Eq. 4.3), and
/// locations (Eq. 4.4) of the entities bound to those slots, and composite
/// conditions combine them with AND / OR / NOT (Eq. 4.5).
namespace stem::core {

/// Index of an entity slot within an event definition.
using SlotIndex = std::uint32_t;

/// Supplies the entities bound to slots during evaluation.
class EvalContext {
 public:
  explicit EvalContext(const Entity* const* slots, std::size_t count)
      : slots_(slots), count_(count) {}

  [[nodiscard]] const Entity& slot(SlotIndex i) const { return *slots_[i]; }
  [[nodiscard]] std::size_t slot_count() const { return count_; }

 private:
  const Entity* const* slots_;
  std::size_t count_;
};

/// Attribute-based condition (Eq. 4.2): g_v[V_1..V_n] OP_R C.
/// The aggregation reads attribute `attribute` from each listed slot;
/// slots missing the attribute (or holding non-numeric values) make the
/// condition evaluate to false (a measurement that is absent cannot
/// satisfy a constraint on its value).
struct AttributeCondition {
  ValueAggregate aggregate = ValueAggregate::kAverage;
  std::string attribute;
  std::vector<SlotIndex> slots;
  RelationalOp op = RelationalOp::kGt;
  double constant = 0.0;

  friend bool operator==(const AttributeCondition&, const AttributeCondition&) = default;
};

/// One side of a temporal comparison: an aggregation over slot times plus
/// a constant offset, e.g. "earliest(t_x) + 5s".
struct TimeExpr {
  time_model::TimeAggregate aggregate = time_model::TimeAggregate::kSpan;
  std::vector<SlotIndex> slots;
  time_model::Duration offset = time_model::Duration::zero();

  friend bool operator==(const TimeExpr&, const TimeExpr&) = default;
};

/// Temporal condition (Eq. 4.3): g_t[t_1..t_n] OP_T C_t, where the right-
/// hand side is either a time constant (point or interval) or another
/// aggregation over slot times ("every instance of x occurs Before y").
struct TemporalCondition {
  TimeExpr lhs;
  time_model::TemporalOp op = time_model::TemporalOp::kBefore;
  std::variant<TimeExpr, time_model::OccurrenceTime> rhs;

  friend bool operator==(const TemporalCondition&, const TemporalCondition&) = default;
};

/// One side of a spatial predicate: an aggregation over slot locations.
struct LocationExpr {
  geom::SpatialAggregate aggregate = geom::SpatialAggregate::kHull;
  std::vector<SlotIndex> slots;

  friend bool operator==(const LocationExpr&, const LocationExpr&) = default;
};

/// Spatial predicate condition (Eq. 4.4): g_s[l_1..l_n] OP_S C_s, where
/// the right-hand side is a location constant (point or field) or another
/// aggregation over slot locations ("x occurs Inside y").
struct SpatialCondition {
  LocationExpr lhs;
  geom::SpatialOp op = geom::SpatialOp::kInside;
  std::variant<LocationExpr, geom::Location> rhs;

  friend bool operator==(const SpatialCondition&, const SpatialCondition&) = default;
};

/// Spatial metric condition: g_distance(l_a, l_b) OP_R C — the paper's S1
/// example constrains the *distance* between two locations with a
/// relational operator rather than a topological one.
struct DistanceCondition {
  LocationExpr lhs;
  /// Distance is measured to either a fixed location or another aggregate.
  std::variant<LocationExpr, geom::Location> to;
  RelationalOp op = RelationalOp::kLt;
  double constant = 0.0;  ///< meters

  friend bool operator==(const DistanceCondition&, const DistanceCondition&) = default;
};

/// Confidence condition (model extension): constrains the aggregated
/// confidence rho of the bound entities, e.g. min(rho) >= 0.8. The paper
/// attaches rho to every instance (Eq. 4.7) but leaves its use open; this
/// makes it available to condition authors.
struct ConfidenceCondition {
  ValueAggregate aggregate = ValueAggregate::kMin;
  std::vector<SlotIndex> slots;
  RelationalOp op = RelationalOp::kGe;
  double constant = 0.0;

  friend bool operator==(const ConfidenceCondition&, const ConfidenceCondition&) = default;
};

class ConditionExpr;

struct AndNode {
  std::vector<ConditionExpr> children;

  friend bool operator==(const AndNode&, const AndNode&) = default;
};
struct OrNode {
  std::vector<ConditionExpr> children;

  friend bool operator==(const OrNode&, const OrNode&) = default;
};
struct NotNode {
  std::vector<ConditionExpr> child;  // exactly one; vector for incomplete-type storage

  friend bool operator==(const NotNode&, const NotNode&) = default;
};

/// Composite event condition (Eq. 4.5): a tree of attribute / temporal /
/// spatial / distance / confidence leaves combined with AND, OR, NOT.
class ConditionExpr {
 public:
  using Rep = std::variant<AttributeCondition, TemporalCondition, SpatialCondition,
                           DistanceCondition, ConfidenceCondition, AndNode, OrNode, NotNode>;

  ConditionExpr(AttributeCondition c) : rep_(std::move(c)) {}   // NOLINT
  ConditionExpr(TemporalCondition c) : rep_(std::move(c)) {}    // NOLINT
  ConditionExpr(SpatialCondition c) : rep_(std::move(c)) {}     // NOLINT
  ConditionExpr(DistanceCondition c) : rep_(std::move(c)) {}    // NOLINT
  ConditionExpr(ConfidenceCondition c) : rep_(std::move(c)) {}  // NOLINT
  ConditionExpr(AndNode n) : rep_(std::move(n)) {}              // NOLINT
  ConditionExpr(OrNode n) : rep_(std::move(n)) {}               // NOLINT
  ConditionExpr(NotNode n) : rep_(std::move(n)) {}              // NOLINT

  [[nodiscard]] const Rep& rep() const { return rep_; }

  /// Number of leaf conditions in the tree.
  [[nodiscard]] std::size_t leaf_count() const;
  /// Height of the tree (1 for a single leaf).
  [[nodiscard]] std::size_t depth() const;
  /// Largest slot index referenced anywhere in the tree, or nullopt if no
  /// slots are referenced (constant-only conditions).
  [[nodiscard]] std::optional<SlotIndex> max_slot() const;

  /// Structural equality (same tree shape, operators, slots, constants).
  friend bool operator==(const ConditionExpr&, const ConditionExpr&) = default;

 private:
  Rep rep_;
};

/// How composite conditions evaluate their children (ablation E3):
/// short-circuit stops at the first decisive child, eager evaluates all.
enum class EvalMode { kShortCircuit, kEager };

/// A spatial constraint *implied* by a condition: every binding satisfying
/// the condition places the entity bound to `slot` within `radius` meters
/// of the entity bound to `partner` (or of the constant `region` when
/// partner is empty; radius 0 means the bounding boxes must touch).
///
/// Guards are extracted only from AND-reachable leaves — never from under
/// an OR or NOT — so they are conjunctively implied and an engine may use
/// them as conservative candidate pre-filters (a spatial index query)
/// without changing which bindings match.
struct SpatialGuard {
  SlotIndex slot = 0;
  std::optional<SlotIndex> partner;     ///< the other slot, for pairwise guards
  std::optional<geom::Location> region; ///< the constant, for region guards
  double radius = 0.0;                  ///< meters; 0 for topological guards

  friend bool operator==(const SpatialGuard&, const SpatialGuard&) = default;
};

/// Extracts the spatial guards implied by `expr`. Pairwise guards are
/// emitted in both directions (slot↔partner). Only single-slot location
/// expressions yield guards; aggregates over several slots are skipped
/// (a bound on the aggregate does not bound the individual slots).
[[nodiscard]] std::vector<SpatialGuard> extract_spatial_guards(const ConditionExpr& expr);

/// A condition that is exactly `attribute OP constant` over one slot's
/// value, with an order comparison: the shape an engine can dispatch with
/// a sorted per-attribute threshold index instead of per-definition
/// evaluation (selection becomes output-sensitive in the rule count).
struct ThresholdSignature {
  std::string attribute;
  RelationalOp op = RelationalOp::kGt;  ///< one of kGt, kGe, kLt, kLe
  double constant = 0.0;

  friend bool operator==(const ThresholdSignature&, const ThresholdSignature&) = default;
};

/// Returns the threshold signature of `expr`, or nullopt if the condition
/// is not a pure single-slot order threshold (single-child AND/OR wrappers
/// are looked through; kCount aggregates and kEq/kNe comparisons are not
/// value thresholds and yield nullopt).
[[nodiscard]] std::optional<ThresholdSignature> extract_threshold_signature(
    const ConditionExpr& expr);

/// Evaluates a condition tree against the bound slots.
[[nodiscard]] bool eval_condition(const ConditionExpr& expr, const EvalContext& ctx,
                                  EvalMode mode = EvalMode::kShortCircuit);

/// Pretty-prints the condition tree (prefix form).
std::ostream& operator<<(std::ostream& os, const ConditionExpr& expr);

// --- Fluent construction helpers ------------------------------------------

[[nodiscard]] ConditionExpr c_and(std::vector<ConditionExpr> children);
[[nodiscard]] ConditionExpr c_or(std::vector<ConditionExpr> children);
[[nodiscard]] ConditionExpr c_not(ConditionExpr child);

/// attr(agg, name, slots) OP C
[[nodiscard]] ConditionExpr c_attr(ValueAggregate agg, std::string attribute,
                                   std::vector<SlotIndex> slots, RelationalOp op, double constant);
/// time-of(slot) OP time-of(slot)
[[nodiscard]] ConditionExpr c_time(SlotIndex lhs, time_model::TemporalOp op, SlotIndex rhs,
                                   time_model::Duration lhs_offset = time_model::Duration::zero());
/// time-of(slot) OP constant
[[nodiscard]] ConditionExpr c_time_const(SlotIndex lhs, time_model::TemporalOp op,
                                         time_model::OccurrenceTime constant);
/// location-of(slot) OP location-of(slot)
[[nodiscard]] ConditionExpr c_space(SlotIndex lhs, geom::SpatialOp op, SlotIndex rhs);
/// location-of(slot) OP constant-location
[[nodiscard]] ConditionExpr c_space_const(SlotIndex lhs, geom::SpatialOp op, geom::Location constant);
/// distance(slot, slot) OP C
[[nodiscard]] ConditionExpr c_distance(SlotIndex a, SlotIndex b, RelationalOp op, double meters);
/// distance(slot, constant-location) OP C
[[nodiscard]] ConditionExpr c_distance_const(SlotIndex a, geom::Location to, RelationalOp op,
                                             double meters);
/// confidence aggregate over slots OP C
[[nodiscard]] ConditionExpr c_confidence(ValueAggregate agg, std::vector<SlotIndex> slots,
                                         RelationalOp op, double constant);

}  // namespace stem::core
