#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "core/attribute.hpp"
#include "core/ids.hpp"
#include "geom/location.hpp"
#include "time/occurrence.hpp"

namespace stem::core {

/// The layer an entity lives on in the CPS event hierarchy (Fig. 2).
enum class Layer {
  kPhysical,             ///< ground-truth physical event (Eq. 5.1)
  kPhysicalObservation,  ///< sensor sample (Eq. 5.2)
  kSensor,               ///< sensor event, emitted by a mote (Eq. 5.3)
  kCyberPhysical,        ///< cyber-physical event, emitted by a sink (Eq. 5.4)
  kCyber,                ///< cyber event, emitted by a CCU (Eq. 5.5)
};

[[nodiscard]] std::string_view to_string(Layer layer);
std::ostream& operator<<(std::ostream& os, Layer layer);

/// A physical observation O(MTid, SRid, i) {to, lo, V} (Eq. 5.2): one
/// sample of the target physical event, taken by sensor `sensor` on mote
/// `mote` as its `seq`-th observation.
struct PhysicalObservation {
  ObserverId mote;
  SensorId sensor;
  std::uint64_t seq = 0;

  time_model::TimePoint time;                   ///< t^o: sampling timestamp
  geom::Location location{geom::Point{0, 0}};   ///< l^o: sampling spacestamp
  AttributeSet attributes;                      ///< V: measured values
};

std::ostream& operator<<(std::ostream& os, const PhysicalObservation& obs);

/// Identity of an event instance: E(OBid, Eid, i) (Eq. 4.6).
struct EventInstanceKey {
  ObserverId observer;
  EventTypeId event;
  std::uint64_t seq = 0;

  friend bool operator==(const EventInstanceKey&, const EventInstanceKey&) = default;
};

std::ostream& operator<<(std::ostream& os, const EventInstanceKey& key);

/// An event instance with the 6-tuple property set of Eq. 4.7:
/// {t^g, l^g, t^eo, l^eo, V, rho}. The instance additionally records the
/// keys of the entities it was derived from (`provenance`), which keeps
/// "the information regarding the original physical event intact"
/// (paper Sec. 1, third requirement) and supports end-to-end latency
/// attribution (experiment E7).
struct EventInstance {
  EventInstanceKey key;
  Layer layer = Layer::kSensor;

  time_model::TimePoint gen_time;  ///< t^g: when the observer generated it
  geom::Point gen_location;        ///< l^g: where the observer is
  /// t^eo: estimated occurrence time.
  time_model::OccurrenceTime est_time{time_model::TimePoint::epoch()};
  /// l^eo: estimated occurrence location.
  geom::Location est_location{geom::Point{0, 0}};
  AttributeSet attributes;                     ///< V: estimated attributes
  double confidence = 1.0;                     ///< rho: observer's confidence

  std::vector<EventInstanceKey> provenance;    ///< constituent entities

  /// True iff the estimated occurrence time is a point (punctual event).
  [[nodiscard]] bool is_punctual() const { return est_time.is_punctual(); }
  /// True iff the estimated occurrence location is a point (point event).
  [[nodiscard]] bool is_point_event() const { return est_location.is_point(); }
};

std::ostream& operator<<(std::ostream& os, const EventInstance& inst);

}  // namespace stem::core
