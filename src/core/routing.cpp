#include "core/routing.hpp"

#include <stdexcept>

namespace stem::core {

std::uint64_t routing_key_hash(std::string_view key) noexcept {
  // FNV-1a, 64-bit: stable across platforms and process restarts, which a
  // split/merge protocol replayed from a checkpoint log depends on.
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace stem::core

#include "core/condition.hpp"

namespace stem::core {

void RoutingIndex::insert_sorted(std::vector<SlotRoute>& routes, std::vector<std::uint32_t>& refs,
                                 SlotRoute r) {
  const auto pos = std::lower_bound(routes.begin(), routes.end(), r,
                                    [](const SlotRoute& a, const SlotRoute& b) {
                                      return a.def_idx < b.def_idx ||
                                             (a.def_idx == b.def_idx && a.slot_idx < b.slot_idx);
                                    });
  const auto at = static_cast<std::size_t>(pos - routes.begin());
  if (pos != routes.end() && *pos == r) {  // collapsed duplicate
    ++refs[at];
    return;
  }
  routes.insert(pos, r);
  refs.insert(refs.begin() + static_cast<std::ptrdiff_t>(at), 1);
}

void RoutingIndex::erase_sorted(std::vector<SlotRoute>& routes, std::vector<std::uint32_t>& refs,
                                SlotRoute r) {
  const auto pos = std::lower_bound(routes.begin(), routes.end(), r,
                                    [](const SlotRoute& a, const SlotRoute& b) {
                                      return a.def_idx < b.def_idx ||
                                             (a.def_idx == b.def_idx && a.slot_idx < b.slot_idx);
                                    });
  if (pos == routes.end() || !(*pos == r)) {
    throw std::logic_error("RoutingIndex: removing a route that was never registered");
  }
  const auto at = static_cast<std::size_t>(pos - routes.begin());
  if (--refs[at] == 0) {
    routes.erase(pos);
    refs.erase(refs.begin() + static_cast<std::ptrdiff_t>(at));
  }
}

void RoutingIndex::add(const EventDefinition& def, std::uint32_t def_idx) {
  add_impl(def, def_idx, /*collapse=*/false);
}

void RoutingIndex::add_collapsed(const EventDefinition& def, std::uint32_t def_idx) {
  add_impl(def, def_idx, /*collapse=*/true);
}

void RoutingIndex::remove(const EventDefinition& def, std::uint32_t def_idx) {
  remove_impl(def, def_idx, /*collapse=*/false);
}

void RoutingIndex::remove_collapsed(const EventDefinition& def, std::uint32_t def_idx) {
  remove_impl(def, def_idx, /*collapse=*/true);
}

void RoutingIndex::add_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse) {
  for (std::uint32_t j = 0; j < def.slots.size(); ++j) {
    const SlotRoute r{def_idx, collapse ? 0 : j};
    const FilterSignature sig = def.slots[j].filter.signature();
    switch (sig.kind) {
      case FilterSignature::Kind::kSensor:
        register_keyed(by_sensor_[sig.key], def, r);
        break;
      case FilterSignature::Kind::kEventType:
        register_keyed(by_type_[sig.key], def, r);
        break;
      case FilterSignature::Kind::kAny:
        insert_sorted(any_, any_refs_, r);
        break;
      case FilterSignature::Kind::kNever:
        break;  // matches nothing: route nowhere
    }
  }
}

void RoutingIndex::remove_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse) {
  for (std::uint32_t j = 0; j < def.slots.size(); ++j) {
    const SlotRoute r{def_idx, collapse ? 0 : j};
    const FilterSignature sig = def.slots[j].filter.signature();
    switch (sig.kind) {
      case FilterSignature::Kind::kSensor: {
        const auto it = by_sensor_.find(sig.key);
        if (it == by_sensor_.end()) {
          throw std::logic_error("RoutingIndex: removing from an absent sensor bucket");
        }
        unregister_keyed(it->second, def, r);
        if (it->second.empty()) by_sensor_.erase(it);
        break;
      }
      case FilterSignature::Kind::kEventType: {
        const auto it = by_type_.find(sig.key);
        if (it == by_type_.end()) {
          throw std::logic_error("RoutingIndex: removing from an absent event-type bucket");
        }
        unregister_keyed(it->second, def, r);
        if (it->second.empty()) by_type_.erase(it);
        break;
      }
      case FilterSignature::Kind::kAny:
        erase_sorted(any_, any_refs_, r);
        break;
      case FilterSignature::Kind::kNever:
        break;
    }
  }
}

namespace {

/// Node / pending ordering of one threshold side: ascending constants for
/// the upper side, descending for the lower, inclusive boundary first at
/// ties, then ascending (def, slot) so a node's route range stays sorted.
bool entry_less(bool upper, double c1, std::uint8_t i1, SlotRoute r1, double c2, std::uint8_t i2,
                SlotRoute r2) {
  if (c1 != c2) return upper ? c1 < c2 : c1 > c2;
  if (i1 != i2) return i1 > i2;
  return r1.def_idx < r2.def_idx || (r1.def_idx == r2.def_idx && r1.slot_idx < r2.slot_idx);
}

/// Pending stays bounded by a constant plus a fraction of the compacted
/// live size: bulk loads compact once (O(N log N) total), interleaved
/// add/dispatch compacts geometrically (O(1) amortized per add), and the
/// unsorted-scan work a dispatch can spend on pending stays proportional
/// to the structure it will be merged into.
constexpr std::size_t kPendingBase = 64;

}  // namespace

void RoutingIndex::ThresholdSide::add(bool upper, double c, bool inclusive_bound, SlotRoute r) {
  const std::uint8_t want = inclusive_bound ? 1 : 0;
  // Exact duplicate in the compacted nodes (same constant, inclusiveness,
  // route — only collapsed shard-level registration produces them): bump
  // the refcount, resurrecting a dead entry if need be.
  const std::size_t nodes = constant.size();
  std::size_t lo = 0;
  std::size_t hi = nodes;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (entry_less(upper, constant[mid], inclusive[mid], SlotRoute{0, 0}, c, want,
                   SlotRoute{0, 0})) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < nodes && constant[lo] == c && inclusive[lo] == want) {
    const auto first = routes.begin() + node_begin[lo];
    const auto last = routes.begin() + node_begin[lo + 1];
    const auto pos = std::lower_bound(first, last, r, [](const SlotRoute& a, const SlotRoute& b) {
      return a.def_idx < b.def_idx || (a.def_idx == b.def_idx && a.slot_idx < b.slot_idx);
    });
    if (pos != last && *pos == r) {
      const auto at = static_cast<std::size_t>(pos - routes.begin());
      if (refs[at] == 0) --dead;
      ++refs[at];
      return;
    }
  }
  // No duplicate scan over pending: a repeated registration (collapsed
  // shard-level routes) simply appends another entry — compact() sums the
  // refs of equal entries, and collect()'s final sort+unique keeps
  // dispatch exactly-once in the meantime. This is what makes add O(1)
  // amortized instead of O(pending).
  if (!pending.empty() &&
      entry_less(upper, c, want, r, pending.back().constant, pending.back().inclusive,
                 pending.back().route)) {
    pending_dirty = true;
  }
  pending.push_back(Pending{c, want, r, 1});
}

bool RoutingIndex::ThresholdSide::remove(bool upper, double c, bool inclusive_bound, SlotRoute r) {
  const std::uint8_t want = inclusive_bound ? 1 : 0;
  const std::size_t nodes = constant.size();
  for (std::size_t k = 0; k < nodes; ++k) {
    if (constant[k] != c || inclusive[k] != want) continue;
    for (std::uint32_t i = node_begin[k]; i < node_begin[k + 1]; ++i) {
      if (!(routes[i] == r) || refs[i] == 0) continue;
      if (--refs[i] == 0) ++dead;
      if (dead * 2 > routes.size()) compact(upper);
      return true;
    }
    break;
  }
  for (std::size_t k = 0; k < pending.size(); ++k) {
    Pending& p = pending[k];
    if (p.constant != c || p.inclusive != want || !(p.route == r)) continue;
    if (--p.refs == 0) {
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));  // keeps sort order
    }
    return true;
  }
  return false;
}

void RoutingIndex::ThresholdSide::ensure_dispatchable(bool upper) {
  if (pending.empty()) return;
  if (pending_dirty) {
    std::sort(pending.begin(), pending.end(), [upper](const Pending& a, const Pending& b) {
      return entry_less(upper, a.constant, a.inclusive, a.route, b.constant, b.inclusive, b.route);
    });
    pending_dirty = false;
  }
  if (pending.size() > kPendingBase + live() / 8) compact(upper);
}

void RoutingIndex::ThresholdSide::compact(bool upper) {
  if (pending_dirty) {
    std::sort(pending.begin(), pending.end(), [upper](const Pending& a, const Pending& b) {
      return entry_less(upper, a.constant, a.inclusive, a.route, b.constant, b.inclusive, b.route);
    });
    pending_dirty = false;
  }
  // Flatten the live compacted entries, merge the (sorted) pending run in,
  // then rebuild the node/CSR arrays.
  std::vector<Pending> all;
  all.reserve(live() + pending.size());
  const std::size_t nodes = constant.size();
  for (std::size_t k = 0; k < nodes; ++k) {
    for (std::uint32_t i = node_begin[k]; i < node_begin[k + 1]; ++i) {
      if (refs[i] != 0) all.push_back(Pending{constant[k], inclusive[k], routes[i], refs[i]});
    }
  }
  const auto mid = all.size();
  all.insert(all.end(), pending.begin(), pending.end());
  std::inplace_merge(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(mid), all.end(),
                     [upper](const Pending& a, const Pending& b) {
                       return entry_less(upper, a.constant, a.inclusive, a.route, b.constant,
                                         b.inclusive, b.route);
                     });
  constant.clear();
  inclusive.clear();
  node_begin.clear();
  routes.clear();
  refs.clear();
  dead = 0;
  pending.clear();
  for (const Pending& p : all) {
    if (constant.empty() || constant.back() != p.constant || inclusive.back() != p.inclusive) {
      constant.push_back(p.constant);
      inclusive.push_back(p.inclusive);
      node_begin.push_back(static_cast<std::uint32_t>(routes.size()));
    } else if (node_begin.back() < routes.size() && routes.back() == p.route) {
      // Equal entries of one node (duplicate pending appends of a
      // collapsed route): fold into one refcounted entry.
      refs.back() += p.refs;
      continue;
    }
    routes.push_back(p.route);
    refs.push_back(p.refs);
  }
  node_begin.push_back(static_cast<std::uint32_t>(routes.size()));
}

void RoutingIndex::register_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r) {
  // Single-slot order thresholds go to the per-attribute segment sub-index
  // so arrivals pay only for the rules their value satisfies; everything
  // else is probed generically.
  std::optional<ThresholdSignature> sig;
  if (def.slots.size() == 1) sig = extract_threshold_signature(def.condition);
  if (!sig.has_value()) {
    insert_sorted(bucket.generic, bucket.generic_refs, r);
    return;
  }
  ThresholdGroup* group = nullptr;
  for (ThresholdGroup& g : bucket.thresholds) {
    if (g.attribute == sig->attribute) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    bucket.thresholds.push_back(ThresholdGroup{sig->attribute, {}, {}});
    group = &bucket.thresholds.back();
  }
  const bool upper = sig->op == RelationalOp::kGt || sig->op == RelationalOp::kGe;
  const bool inclusive = sig->op == RelationalOp::kGe || sig->op == RelationalOp::kLe;
  ThresholdSide& side = upper ? group->above : group->below;
  side.add(upper, sig->constant, inclusive, r);
}

void RoutingIndex::unregister_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r) {
  std::optional<ThresholdSignature> sig;
  if (def.slots.size() == 1) sig = extract_threshold_signature(def.condition);
  if (!sig.has_value()) {
    erase_sorted(bucket.generic, bucket.generic_refs, r);
    return;
  }
  for (std::size_t gi = 0; gi < bucket.thresholds.size(); ++gi) {
    ThresholdGroup& g = bucket.thresholds[gi];
    if (g.attribute != sig->attribute) continue;
    const bool upper = sig->op == RelationalOp::kGt || sig->op == RelationalOp::kGe;
    const bool inclusive = sig->op == RelationalOp::kGe || sig->op == RelationalOp::kLe;
    ThresholdSide& side = upper ? g.above : g.below;
    if (side.remove(upper, sig->constant, inclusive, r)) {
      if (g.empty()) {
        bucket.thresholds.erase(bucket.thresholds.begin() + static_cast<std::ptrdiff_t>(gi));
      }
      return;
    }
    break;
  }
  throw std::logic_error("RoutingIndex: removing a threshold route that was never registered");
}

void VersionedRouting::add(const EventDefinition& def, std::uint32_t def_idx,
                           std::uint32_t target) {
  index_.add_collapsed(def, def_idx);
  if (versions_.empty()) versions_.push_back(Version{});
  Version& base = versions_.front();
  if (def_idx >= base.target.size()) base.target.resize(def_idx + 1, 0);
  base.target[def_idx] = target;
}

void VersionedRouting::publish(std::uint64_t from_stamp, const std::vector<std::uint32_t>& defs,
                               std::uint32_t to) {
  if (versions_.empty()) versions_.push_back(Version{});
  if (versions_.back().from_stamp != from_stamp) {
    // Copy-on-write: only the flat placement vector is duplicated; the
    // match structures in index_ are shared by construction.
    versions_.push_back(Version{from_stamp, versions_.back().target});
  }
  std::vector<std::uint32_t>& map = versions_.back().target;
  for (const std::uint32_t d : defs) map[d] = to;
}

void VersionedRouting::retire_below(std::uint64_t stamp) {
  while (versions_.size() >= 2 && versions_[1].from_stamp <= stamp) versions_.pop_front();
}

const std::vector<std::uint32_t>& VersionedRouting::map_for(std::uint64_t stamp) const {
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->from_stamp <= stamp) return it->target;
  }
  return versions_.front().target;  // base version (from_stamp 0)
}

std::uint64_t VersionedRouting::target_mask(const Entity& entity, std::uint64_t stamp,
                                            std::vector<SlotRoute>& scratch) {
  scratch.clear();
  index_.collect(entity, scratch, [](const SlotRoute&) { return true; });
  if (scratch.empty()) return 0;
  const std::vector<std::uint32_t>& map = map_for(stamp);
  std::uint64_t mask = 0;
  for (const SlotRoute r : scratch) mask |= std::uint64_t{1} << map[r.def_idx];
  return mask;
}

}  // namespace stem::core
