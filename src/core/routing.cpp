#include "core/routing.hpp"

#include <stdexcept>

#include "core/condition.hpp"

namespace stem::core {

void RoutingIndex::insert_sorted(std::vector<SlotRoute>& routes, std::vector<std::uint32_t>& refs,
                                 SlotRoute r) {
  const auto pos = std::lower_bound(routes.begin(), routes.end(), r,
                                    [](const SlotRoute& a, const SlotRoute& b) {
                                      return a.def_idx < b.def_idx ||
                                             (a.def_idx == b.def_idx && a.slot_idx < b.slot_idx);
                                    });
  const auto at = static_cast<std::size_t>(pos - routes.begin());
  if (pos != routes.end() && *pos == r) {  // collapsed duplicate
    ++refs[at];
    return;
  }
  routes.insert(pos, r);
  refs.insert(refs.begin() + static_cast<std::ptrdiff_t>(at), 1);
}

void RoutingIndex::erase_sorted(std::vector<SlotRoute>& routes, std::vector<std::uint32_t>& refs,
                                SlotRoute r) {
  const auto pos = std::lower_bound(routes.begin(), routes.end(), r,
                                    [](const SlotRoute& a, const SlotRoute& b) {
                                      return a.def_idx < b.def_idx ||
                                             (a.def_idx == b.def_idx && a.slot_idx < b.slot_idx);
                                    });
  if (pos == routes.end() || !(*pos == r)) {
    throw std::logic_error("RoutingIndex: removing a route that was never registered");
  }
  const auto at = static_cast<std::size_t>(pos - routes.begin());
  if (--refs[at] == 0) {
    routes.erase(pos);
    refs.erase(refs.begin() + static_cast<std::ptrdiff_t>(at));
  }
}

void RoutingIndex::add(const EventDefinition& def, std::uint32_t def_idx) {
  add_impl(def, def_idx, /*collapse=*/false);
}

void RoutingIndex::add_collapsed(const EventDefinition& def, std::uint32_t def_idx) {
  add_impl(def, def_idx, /*collapse=*/true);
}

void RoutingIndex::remove(const EventDefinition& def, std::uint32_t def_idx) {
  remove_impl(def, def_idx, /*collapse=*/false);
}

void RoutingIndex::remove_collapsed(const EventDefinition& def, std::uint32_t def_idx) {
  remove_impl(def, def_idx, /*collapse=*/true);
}

void RoutingIndex::add_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse) {
  for (std::uint32_t j = 0; j < def.slots.size(); ++j) {
    const SlotRoute r{def_idx, collapse ? 0 : j};
    const FilterSignature sig = def.slots[j].filter.signature();
    switch (sig.kind) {
      case FilterSignature::Kind::kSensor:
        register_keyed(by_sensor_[sig.key], def, r);
        break;
      case FilterSignature::Kind::kEventType:
        register_keyed(by_type_[sig.key], def, r);
        break;
      case FilterSignature::Kind::kAny:
        insert_sorted(any_, any_refs_, r);
        break;
      case FilterSignature::Kind::kNever:
        break;  // matches nothing: route nowhere
    }
  }
}

void RoutingIndex::remove_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse) {
  for (std::uint32_t j = 0; j < def.slots.size(); ++j) {
    const SlotRoute r{def_idx, collapse ? 0 : j};
    const FilterSignature sig = def.slots[j].filter.signature();
    switch (sig.kind) {
      case FilterSignature::Kind::kSensor: {
        const auto it = by_sensor_.find(sig.key);
        if (it == by_sensor_.end()) {
          throw std::logic_error("RoutingIndex: removing from an absent sensor bucket");
        }
        unregister_keyed(it->second, def, r);
        if (it->second.empty()) by_sensor_.erase(it);
        break;
      }
      case FilterSignature::Kind::kEventType: {
        const auto it = by_type_.find(sig.key);
        if (it == by_type_.end()) {
          throw std::logic_error("RoutingIndex: removing from an absent event-type bucket");
        }
        unregister_keyed(it->second, def, r);
        if (it->second.empty()) by_type_.erase(it);
        break;
      }
      case FilterSignature::Kind::kAny:
        erase_sorted(any_, any_refs_, r);
        break;
      case FilterSignature::Kind::kNever:
        break;
    }
  }
}

void RoutingIndex::register_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r) {
  // Single-slot order thresholds go to the sorted per-attribute sub-index
  // so arrivals pay only for the rules their value satisfies; everything
  // else is probed generically.
  std::optional<ThresholdSignature> sig;
  if (def.slots.size() == 1) sig = extract_threshold_signature(def.condition);
  if (!sig.has_value()) {
    insert_sorted(bucket.generic, bucket.generic_refs, r);
    return;
  }
  ThresholdGroup* group = nullptr;
  for (ThresholdGroup& g : bucket.thresholds) {
    if (g.attribute == sig->attribute) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    bucket.thresholds.push_back(ThresholdGroup{sig->attribute, {}, {}, {}, {}, {}, {}});
    group = &bucket.thresholds.back();
  }
  const bool upper = sig->op == RelationalOp::kGt || sig->op == RelationalOp::kGe;
  auto& entries = upper ? group->above : group->below;
  auto& inclusive = upper ? group->above_ge : group->below_le;
  auto& refs = upper ? group->above_refs : group->below_refs;
  const auto cmp = [upper](const std::pair<double, SlotRoute>& a, double c) {
    return upper ? a.first < c : a.first > c;  // above ascending, below descending
  };
  const auto pos = std::lower_bound(entries.begin(), entries.end(), sig->constant, cmp);
  const auto at = static_cast<std::size_t>(pos - entries.begin());
  const std::uint8_t want =
      sig->op == RelationalOp::kGe || sig->op == RelationalOp::kLe ? 1 : 0;
  // Refcount exact duplicates (same constant, route, inclusiveness) — only
  // collapsed (shard-level) registration can produce them.
  for (std::size_t k = at; k < entries.size() && entries[k].first == sig->constant; ++k) {
    if (entries[k].second == r && inclusive[k] == want) {
      ++refs[k];
      return;
    }
  }
  entries.insert(pos, {sig->constant, r});
  inclusive.insert(inclusive.begin() + static_cast<std::ptrdiff_t>(at), want);
  refs.insert(refs.begin() + static_cast<std::ptrdiff_t>(at), 1);
}

void RoutingIndex::unregister_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r) {
  std::optional<ThresholdSignature> sig;
  if (def.slots.size() == 1) sig = extract_threshold_signature(def.condition);
  if (!sig.has_value()) {
    erase_sorted(bucket.generic, bucket.generic_refs, r);
    return;
  }
  for (std::size_t gi = 0; gi < bucket.thresholds.size(); ++gi) {
    ThresholdGroup& g = bucket.thresholds[gi];
    if (g.attribute != sig->attribute) continue;
    const bool upper = sig->op == RelationalOp::kGt || sig->op == RelationalOp::kGe;
    auto& entries = upper ? g.above : g.below;
    auto& inclusive = upper ? g.above_ge : g.below_le;
    auto& refs = upper ? g.above_refs : g.below_refs;
    const std::uint8_t want =
        sig->op == RelationalOp::kGe || sig->op == RelationalOp::kLe ? 1 : 0;
    for (std::size_t k = 0; k < entries.size(); ++k) {
      if (entries[k].first != sig->constant || !(entries[k].second == r) ||
          inclusive[k] != want) {
        continue;
      }
      if (--refs[k] == 0) {
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(k));
        inclusive.erase(inclusive.begin() + static_cast<std::ptrdiff_t>(k));
        refs.erase(refs.begin() + static_cast<std::ptrdiff_t>(k));
        if (g.empty()) bucket.thresholds.erase(bucket.thresholds.begin() +
                                               static_cast<std::ptrdiff_t>(gi));
      }
      return;
    }
    break;
  }
  throw std::logic_error("RoutingIndex: removing a threshold route that was never registered");
}

}  // namespace stem::core
