#include "core/routing.hpp"

#include "core/condition.hpp"

namespace stem::core {

void RoutingIndex::insert_sorted(std::vector<SlotRoute>& routes, SlotRoute r) {
  const auto pos = std::lower_bound(routes.begin(), routes.end(), r,
                                    [](const SlotRoute& a, const SlotRoute& b) {
                                      return a.def_idx < b.def_idx ||
                                             (a.def_idx == b.def_idx && a.slot_idx < b.slot_idx);
                                    });
  if (pos != routes.end() && *pos == r) return;  // collapsed duplicate
  routes.insert(pos, r);
}

void RoutingIndex::add(const EventDefinition& def, std::uint32_t def_idx) {
  add_impl(def, def_idx, /*collapse=*/false);
}

void RoutingIndex::add_collapsed(const EventDefinition& def, std::uint32_t def_idx) {
  add_impl(def, def_idx, /*collapse=*/true);
}

void RoutingIndex::add_impl(const EventDefinition& def, std::uint32_t def_idx, bool collapse) {
  for (std::uint32_t j = 0; j < def.slots.size(); ++j) {
    const SlotRoute r{def_idx, collapse ? 0 : j};
    const FilterSignature sig = def.slots[j].filter.signature();
    switch (sig.kind) {
      case FilterSignature::Kind::kSensor:
        register_keyed(by_sensor_[sig.key], def, r);
        break;
      case FilterSignature::Kind::kEventType:
        register_keyed(by_type_[sig.key], def, r);
        break;
      case FilterSignature::Kind::kAny:
        insert_sorted(any_, r);
        break;
      case FilterSignature::Kind::kNever:
        break;  // matches nothing: route nowhere
    }
  }
}

void RoutingIndex::register_keyed(Bucket& bucket, const EventDefinition& def, SlotRoute r) {
  // Single-slot order thresholds go to the sorted per-attribute sub-index
  // so arrivals pay only for the rules their value satisfies; everything
  // else is probed generically.
  std::optional<ThresholdSignature> sig;
  if (def.slots.size() == 1) sig = extract_threshold_signature(def.condition);
  if (!sig.has_value()) {
    insert_sorted(bucket.generic, r);
    return;
  }
  ThresholdGroup* group = nullptr;
  for (ThresholdGroup& g : bucket.thresholds) {
    if (g.attribute == sig->attribute) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    bucket.thresholds.push_back(ThresholdGroup{sig->attribute, {}, {}, {}, {}});
    group = &bucket.thresholds.back();
  }
  const bool upper = sig->op == RelationalOp::kGt || sig->op == RelationalOp::kGe;
  auto& entries = upper ? group->above : group->below;
  auto& inclusive = upper ? group->above_ge : group->below_le;
  const auto cmp = [upper](const std::pair<double, SlotRoute>& a, double c) {
    return upper ? a.first < c : a.first > c;  // above ascending, below descending
  };
  const auto pos = std::lower_bound(entries.begin(), entries.end(), sig->constant, cmp);
  const auto at = static_cast<std::size_t>(pos - entries.begin());
  const std::uint8_t want =
      sig->op == RelationalOp::kGe || sig->op == RelationalOp::kLe ? 1 : 0;
  // Drop exact duplicates (same constant, route, inclusiveness) — only
  // collapsed (shard-level) registration can produce them.
  for (std::size_t k = at; k < entries.size() && entries[k].first == sig->constant; ++k) {
    if (entries[k].second == r && inclusive[k] == want) return;
  }
  entries.insert(pos, {sig->constant, r});
  inclusive.insert(inclusive.begin() + static_cast<std::ptrdiff_t>(at), want);
}

}  // namespace stem::core
