#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace stem::core {

namespace detail {
/// CRTP string id base: comparable, hashable, printable, but never
/// implicitly convertible between id kinds (an ObserverId is not an
/// EventTypeId even though both are strings).
template <typename Tag>
class StringId {
 public:
  StringId() = default;
  explicit StringId(std::string value) : value_(std::move(value)) {}
  explicit StringId(std::string_view value) : value_(value) {}
  explicit StringId(const char* value) : value_(value) {}

  [[nodiscard]] const std::string& value() const { return value_; }
  [[nodiscard]] bool empty() const { return value_.empty(); }

  friend auto operator<=>(const StringId&, const StringId&) = default;

 private:
  std::string value_;
};
}  // namespace detail

/// Identifies an event type (the paper's E / S / CP id symbols).
struct EventTypeId : detail::StringId<EventTypeId> {
  using StringId::StringId;
};

/// Identifies an observer: a sensor mote, sink node, CCU, or scripted
/// human observer (the paper's OBid / MTid / CCUid symbols).
struct ObserverId : detail::StringId<ObserverId> {
  using StringId::StringId;
};

/// Identifies a physical sensor on a mote (the paper's SRid symbol).
struct SensorId : detail::StringId<SensorId> {
  using StringId::StringId;
};

template <typename Tag>
std::ostream& print_id(std::ostream& os, const detail::StringId<Tag>& id);

std::ostream& operator<<(std::ostream& os, const EventTypeId& id);
std::ostream& operator<<(std::ostream& os, const ObserverId& id);
std::ostream& operator<<(std::ostream& os, const SensorId& id);

}  // namespace stem::core

template <>
struct std::hash<stem::core::EventTypeId> {
  std::size_t operator()(const stem::core::EventTypeId& id) const noexcept {
    return std::hash<std::string>{}(id.value());
  }
};
template <>
struct std::hash<stem::core::ObserverId> {
  std::size_t operator()(const stem::core::ObserverId& id) const noexcept {
    return std::hash<std::string>{}(id.value());
  }
};
template <>
struct std::hash<stem::core::SensorId> {
  std::size_t operator()(const stem::core::SensorId& id) const noexcept {
    return std::hash<std::string>{}(id.value());
  }
};
