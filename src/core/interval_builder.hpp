#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/instance.hpp"

namespace stem::core {

/// Builds *interval events* from streams of punctual detections — the
/// paper's second temporal reading of its running example (Sec. 4.2):
/// "event 'user A is nearby window B' can also be considered as an
/// interval physical event, where the event starts once the user is
/// detected entering into the area and ends once the user is detected
/// leaving this area."
///
/// Punctual instances of a *state* event (e.g. NEARBY_WINDOW fires each
/// time the condition holds at a sample) are coalesced: an interval opens
/// at the first instance, is extended by each further instance within
/// `gap`, and closes when no confirming instance arrives for `gap` (or
/// when `flush` is called). On close, one interval event instance is
/// emitted whose occurrence time is [first, last], whose location is the
/// hull of the constituents, and whose confidence is their mean.
class IntervalBuilder {
 public:
  struct Config {
    /// Input punctual event type to coalesce.
    EventTypeId input;
    /// Emitted interval event type.
    EventTypeId output;
    /// Maximum silence between confirmations before the interval closes.
    time_model::Duration gap = time_model::seconds(5);
    /// Intervals shorter than this are discarded as glitches.
    time_model::Duration min_length = time_model::Duration::zero();
  };

  /// `self` identifies the emitting observer; `position` is its l^g.
  IntervalBuilder(Config config, ObserverId self, geom::Point position);

  /// Feeds one instance; `now` is the observer's clock. If the instance's
  /// arrival closes an *earlier* interval (gap exceeded), that interval is
  /// returned. Non-matching event types are ignored (returns nullopt).
  std::optional<EventInstance> on_instance(const EventInstance& inst, time_model::TimePoint now);

  /// Advances time with no instance; closes the open interval if the gap
  /// has elapsed by `now`.
  std::optional<EventInstance> on_tick(time_model::TimePoint now);

  /// Force-closes the open interval (end of run).
  std::optional<EventInstance> flush(time_model::TimePoint now);

  [[nodiscard]] bool open() const { return state_.has_value(); }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct OpenInterval {
    time_model::TimePoint first;
    time_model::TimePoint last;
    std::vector<geom::Location> locations;
    std::vector<EventInstanceKey> provenance;
    double confidence_sum = 0.0;
    std::size_t count = 0;
  };

  std::optional<EventInstance> close(time_model::TimePoint now);
  void extend(const EventInstance& inst);

  Config config_;
  ObserverId self_;
  geom::Point position_;
  std::optional<OpenInterval> state_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace stem::core
