#include "core/serialize.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <vector>

namespace stem::core {

namespace {

// --- encoding ---------------------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  out += ss.str();
}

void append_point(std::string& out, geom::Point p) {
  out += '[';
  append_number(out, p.x);
  out += ',';
  append_number(out, p.y);
  out += ']';
}

void append_location(std::string& out, const geom::Location& loc) {
  if (loc.is_point()) {
    append_point(out, loc.as_point());
    return;
  }
  out += '[';
  bool first = true;
  for (const geom::Point& v : loc.as_field().vertices()) {
    if (!first) out += ',';
    first = false;
    append_point(out, v);
  }
  out += ']';
}

void append_occurrence(std::string& out, const time_model::OccurrenceTime& t) {
  if (t.is_punctual()) {
    out += std::to_string(t.as_point().ticks());
    return;
  }
  out += '[';
  out += std::to_string(t.begin().ticks());
  out += ',';
  out += std::to_string(t.end().ticks());
  out += ']';
}

void append_attributes(std::string& out, const AttributeSet& attrs) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : attrs) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    std::visit(
        [&out](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, std::string>) {
            append_escaped(out, v);
          } else if constexpr (std::is_same_v<T, bool>) {
            out += v ? "true" : "false";
          } else if constexpr (std::is_same_v<T, std::int64_t>) {
            out += std::to_string(v);
          } else {
            append_number(out, v);
          }
        },
        value);
  }
  out += '}';
}

void append_key(std::string& out, const EventInstanceKey& key) {
  out += "{\"observer\":";
  append_escaped(out, key.observer.value());
  out += ",\"event\":";
  append_escaped(out, key.event.value());
  out += ",\"seq\":";
  out += std::to_string(key.seq);
  out += '}';
}

// --- decoding: a small recursive-descent JSON reader ------------------------

class Reader {
 public:
  explicit Reader(std::string_view s) : s_(s) {}

  bool fail() const { return failed_; }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    failed_ = true;
    return false;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string read_string() {
    skip_ws();
    std::string out;
    if (!consume('"')) return out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc;
        }
      }
      out += c;
    }
    if (pos_ >= s_.size()) {
      failed_ = true;
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  double read_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(s_.data() + start, s_.data() + pos_, value);
    if (ec != std::errc() || start == pos_) failed_ = true;
    (void)ptr;
    return value;
  }

  /// Integer-exact: a pure-integer token (no '.', exponent, or other
  /// trailing cruft) parses via from_chars<int64>, so tick counts beyond
  /// 2^53 round-trip without double-precision loss. Anything else falls
  /// back to the rounded double path.
  std::int64_t read_int() {
    skip_ws();
    std::size_t p = pos_;
    if (p < s_.size() && s_[p] == '-') ++p;
    const std::size_t digits_begin = p;
    while (p < s_.size() && std::isdigit(static_cast<unsigned char>(s_[p])) != 0) ++p;
    const bool pure_integer =
        p > digits_begin &&
        (p >= s_.size() || (s_[p] != '.' && s_[p] != 'e' && s_[p] != 'E' && s_[p] != '+'));
    if (!pure_integer) return static_cast<std::int64_t>(std::llround(read_number()));
    std::int64_t value = 0;
    const auto [ptr, ec] = std::from_chars(s_.data() + pos_, s_.data() + p, value);
    if (ec != std::errc()) {
      failed_ = true;
      return 0;
    }
    (void)ptr;
    pos_ = p;
    return value;
  }

  bool read_bool() {
    skip_ws();
    if (s_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      return true;
    }
    if (s_.substr(pos_).starts_with("false")) {
      pos_ += 5;
      return false;
    }
    failed_ = true;
    return false;
  }

  bool peek_digit_or_minus() {
    skip_ws();
    return pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '-');
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

geom::Point read_point(Reader& r) {
  geom::Point p;
  r.consume('[');
  p.x = r.read_number();
  r.consume(',');
  p.y = r.read_number();
  r.consume(']');
  return p;
}

/// [x, y] -> point; [[x,y],...] -> polygon.
geom::Location read_location(Reader& r) {
  r.consume('[');
  if (r.peek_is('[')) {
    std::vector<geom::Point> vs;
    do {
      vs.push_back(read_point(r));
    } while (r.try_consume(','));
    r.consume(']');
    if (vs.size() < 3) return geom::Location(vs.empty() ? geom::Point{} : vs.front());
    return geom::Location(geom::Polygon(std::move(vs)));
  }
  geom::Point p;
  p.x = r.read_number();
  r.consume(',');
  p.y = r.read_number();
  r.consume(']');
  return geom::Location(p);
}

time_model::OccurrenceTime read_occurrence(Reader& r) {
  if (r.try_consume('[')) {
    const auto b = r.read_int();
    r.consume(',');
    const auto e = r.read_int();
    r.consume(']');
    if (e < b) return time_model::OccurrenceTime(time_model::TimePoint(b));
    return time_model::OccurrenceTime(
        time_model::TimeInterval(time_model::TimePoint(b), time_model::TimePoint(e)));
  }
  return time_model::OccurrenceTime(time_model::TimePoint(r.read_int()));
}

AttributeSet read_attributes(Reader& r) {
  AttributeSet attrs;
  r.consume('{');
  if (r.try_consume('}')) return attrs;
  do {
    const std::string name = r.read_string();
    r.consume(':');
    if (r.peek_is('"')) {
      attrs.set(name, r.read_string());
    } else if (r.peek_digit_or_minus()) {
      const double v = r.read_number();
      if (v == std::floor(v) && std::abs(v) < 1e15 &&
          v == static_cast<double>(static_cast<std::int64_t>(v))) {
        attrs.set(name, static_cast<std::int64_t>(v));
      } else {
        attrs.set(name, v);
      }
    } else {
      attrs.set(name, r.read_bool());
    }
  } while (r.try_consume(','));
  r.consume('}');
  return attrs;
}

EventInstanceKey read_key(Reader& r) {
  EventInstanceKey key;
  r.consume('{');
  do {
    const std::string field = r.read_string();
    r.consume(':');
    if (field == "observer") {
      key.observer = ObserverId(r.read_string());
    } else if (field == "event") {
      key.event = EventTypeId(r.read_string());
    } else if (field == "seq") {
      key.seq = static_cast<std::uint64_t>(r.read_int());
    }
  } while (r.try_consume(','));
  r.consume('}');
  return key;
}

std::optional<Layer> layer_from_string(std::string_view s) {
  if (s == "physical") return Layer::kPhysical;
  if (s == "observation") return Layer::kPhysicalObservation;
  if (s == "sensor") return Layer::kSensor;
  if (s == "cyber-physical") return Layer::kCyberPhysical;
  if (s == "cyber") return Layer::kCyber;
  return std::nullopt;
}

/// Reads one instance object (from '{' through its '}') out of `r`,
/// leaving the reader positioned after the closing brace. Shared by
/// decode_instance and the tagged entity frame.
std::optional<EventInstance> read_instance_body(Reader& r) {
  EventInstance inst;
  if (!r.consume('{')) return std::nullopt;
  do {
    const std::string field = r.read_string();
    if (!r.consume(':')) return std::nullopt;
    if (field == "observer") {
      inst.key.observer = ObserverId(r.read_string());
    } else if (field == "event") {
      inst.key.event = EventTypeId(r.read_string());
    } else if (field == "seq") {
      inst.key.seq = static_cast<std::uint64_t>(r.read_int());
    } else if (field == "layer") {
      const auto layer = layer_from_string(r.read_string());
      if (!layer.has_value()) return std::nullopt;
      inst.layer = *layer;
    } else if (field == "gen_time") {
      inst.gen_time = time_model::TimePoint(r.read_int());
    } else if (field == "gen_location") {
      inst.gen_location = read_point(r);
    } else if (field == "est_time") {
      inst.est_time = read_occurrence(r);
    } else if (field == "est_location") {
      inst.est_location = read_location(r);
    } else if (field == "attributes") {
      inst.attributes = read_attributes(r);
    } else if (field == "confidence") {
      inst.confidence = r.read_number();
    } else if (field == "provenance") {
      if (!r.consume('[')) return std::nullopt;
      if (!r.try_consume(']')) {
        do {
          inst.provenance.push_back(read_key(r));
        } while (r.try_consume(','));
        if (!r.consume(']')) return std::nullopt;
      }
    } else {
      return std::nullopt;  // unknown field
    }
  } while (r.try_consume(','));
  if (!r.consume('}') || r.fail()) return std::nullopt;
  return inst;
}

std::optional<PhysicalObservation> read_observation_body(Reader& r) {
  PhysicalObservation obs;
  if (!r.consume('{')) return std::nullopt;
  do {
    const std::string field = r.read_string();
    if (!r.consume(':')) return std::nullopt;
    if (field == "mote") {
      obs.mote = ObserverId(r.read_string());
    } else if (field == "sensor") {
      obs.sensor = SensorId(r.read_string());
    } else if (field == "seq") {
      obs.seq = static_cast<std::uint64_t>(r.read_int());
    } else if (field == "time") {
      obs.time = time_model::TimePoint(r.read_int());
    } else if (field == "location") {
      obs.location = read_location(r);
    } else if (field == "attributes") {
      obs.attributes = read_attributes(r);
    } else {
      return std::nullopt;
    }
  } while (r.try_consume(','));
  if (!r.consume('}') || r.fail()) return std::nullopt;
  return obs;
}

}  // namespace

std::string encode(const EventInstance& inst) {
  std::string out;
  out.reserve(256);
  out += "{\"observer\":";
  append_escaped(out, inst.key.observer.value());
  out += ",\"event\":";
  append_escaped(out, inst.key.event.value());
  out += ",\"seq\":";
  out += std::to_string(inst.key.seq);
  out += ",\"layer\":";
  append_escaped(out, to_string(inst.layer));
  out += ",\"gen_time\":";
  out += std::to_string(inst.gen_time.ticks());
  out += ",\"gen_location\":";
  append_point(out, inst.gen_location);
  out += ",\"est_time\":";
  append_occurrence(out, inst.est_time);
  out += ",\"est_location\":";
  append_location(out, inst.est_location);
  out += ",\"attributes\":";
  append_attributes(out, inst.attributes);
  out += ",\"confidence\":";
  append_number(out, inst.confidence);
  out += ",\"provenance\":[";
  bool first = true;
  for (const auto& p : inst.provenance) {
    if (!first) out += ',';
    first = false;
    append_key(out, p);
  }
  out += "]}";
  return out;
}

std::string encode(const PhysicalObservation& obs) {
  std::string out;
  out.reserve(128);
  out += "{\"mote\":";
  append_escaped(out, obs.mote.value());
  out += ",\"sensor\":";
  append_escaped(out, obs.sensor.value());
  out += ",\"seq\":";
  out += std::to_string(obs.seq);
  out += ",\"time\":";
  out += std::to_string(obs.time.ticks());
  out += ",\"location\":";
  append_location(out, obs.location);
  out += ",\"attributes\":";
  append_attributes(out, obs.attributes);
  out += '}';
  return out;
}

std::string encode(const Entity& entity) {
  if (entity.is_observation()) {
    return "{\"observation\":" + encode(entity.observation()) + "}";
  }
  return "{\"instance\":" + encode(entity.instance()) + "}";
}

std::optional<EventInstance> decode_instance(std::string_view json) {
  Reader r(json);
  auto inst = read_instance_body(r);
  if (!inst.has_value() || !r.at_end() || r.fail()) return std::nullopt;
  return inst;
}

std::optional<PhysicalObservation> decode_observation(std::string_view json) {
  Reader r(json);
  auto obs = read_observation_body(r);
  if (!obs.has_value() || !r.at_end() || r.fail()) return std::nullopt;
  return obs;
}

std::optional<Entity> decode_entity(std::string_view json) {
  Reader r(json);
  if (!r.consume('{')) return std::nullopt;
  const std::string tag = r.read_string();
  if (!r.consume(':')) return std::nullopt;
  std::optional<Entity> entity;
  if (tag == "observation") {
    auto obs = read_observation_body(r);
    if (obs.has_value()) entity.emplace(*std::move(obs));
  } else if (tag == "instance") {
    auto inst = read_instance_body(r);
    if (inst.has_value()) entity.emplace(*std::move(inst));
  } else {
    return std::nullopt;
  }
  if (!entity.has_value() || !r.consume('}') || !r.at_end() || r.fail()) return std::nullopt;
  return entity;
}

}  // namespace stem::core
