#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "core/event_def.hpp"
#include "core/observer.hpp"
#include "core/routing.hpp"
#include "geom/grid_index.hpp"
#include "geom/rtree.hpp"

namespace stem::core {

/// Engine tuning knobs.
struct EngineOptions {
  /// Composite-condition evaluation strategy (ablation E3).
  EvalMode eval_mode = EvalMode::kShortCircuit;
  /// Per-slot buffer cap; oldest entities are evicted beyond this. Bounds
  /// the join cost per arrival.
  std::size_t max_buffer = 64;
  /// Cascade depth cap for observe_cascading(): derived instances are
  /// re-observed until this derivation depth (direct emissions are depth
  /// 1). Instances emitted *at* the cap are delivered but not re-ingested
  /// — the cycle guard that terminates a definition whose output type
  /// feeds its own input (each suppressed re-ingestion is counted in
  /// EngineStats::cascade_truncated).
  std::size_t max_cascade_depth = 8;
};

/// Engine throughput/selectivity counters. Each engine owns its counters
/// and is single-threaded; the sharded runtime keeps one engine (and thus
/// one counter set) per shard and sums them on read, so counters are never
/// written concurrently.
struct EngineStats {
  std::uint64_t entities_in = 0;     ///< entities fed to the engine
  std::uint64_t bindings_tried = 0;  ///< candidate slot bindings formed
  std::uint64_t bindings_matched = 0;
  std::uint64_t instances_out = 0;
  std::uint64_t evicted = 0;  ///< buffer-cap and window evictions
  /// Derived instances re-observed by the cascading path (instances whose
  /// event type routes to at least one definition slot; routeless
  /// emissions are skipped — re-observing them is a provable no-op).
  std::uint64_t cascade_reingested = 0;
  /// Re-ingestions suppressed by the depth cap: instances emitted at
  /// depth == max_cascade_depth whose type routes somewhere. Nonzero
  /// means the cycle guard fired (or the hierarchy is deeper than the
  /// configured cap).
  std::uint64_t cascade_truncated = 0;

  EngineStats& operator+=(const EngineStats& o) {
    entities_in += o.entities_in;
    bindings_tried += o.bindings_tried;
    bindings_matched += o.bindings_matched;
    instances_out += o.instances_out;
    evicted += o.evicted;
    cascade_reingested += o.cascade_reingested;
    cascade_truncated += o.cascade_truncated;
    return *this;
  }

  friend bool operator==(const EngineStats&, const EngineStats&) = default;
};

/// One emitted instance tagged with the index (registration order) of the
/// definition that produced it. The sharded runtime merges per-shard
/// streams back into global definition order using the tag; plain callers
/// use the untagged observe() overloads.
///
/// Cascading emissions additionally carry their hierarchical *sub-stamp*
/// within the originating arrival: `(arrival stamp, depth, emit_index)`
/// orders the full cascade closure deterministically. The arrival stamp
/// is the caller's (the runtime stamps on ingest; a lone engine orders by
/// call); `depth` is the derivation distance from the raw arrival (1 =
/// emitted directly from it); `emit_index` ranks the instance within its
/// (arrival, depth) level in stream order. Non-cascading paths leave the
/// defaults.
struct Emission {
  std::uint32_t def = 0;
  std::uint32_t depth = 1;
  std::uint32_t emit_index = 0;
  EventInstance instance;
};

/// Cumulative load attributed to one definition (rebalancing input).
/// `routed`/`tried` are counters that survive migration (they travel in
/// DefinitionState); `buffered` is the current buffered-entity gauge.
struct DefinitionLoad {
  std::uint64_t routed = 0;    ///< arrivals routed to the definition
  std::uint64_t tried = 0;     ///< candidate bindings formed for it
  std::uint64_t buffered = 0;  ///< entities currently held in its buffers
};

/// The full dynamic state of one definition, extracted from an engine for
/// implanting into another (live migration between shard engines). The
/// buffered entities keep their *relative* arrival order via `stamp`;
/// implanting renumbers them into the destination engine's stamp space so
/// cross-slot same-arrival identity (self-join dedup, consume) and
/// ascending buffer order are preserved exactly.
struct DefinitionState {
  struct BufferedEntity {
    std::shared_ptr<const Entity> entity;
    std::uint64_t stamp = 0;  ///< source-engine arrival stamp (order only)
  };

  EventDefinition def;
  /// Instance sequence counter of the definition's event type at
  /// extraction. Definitions sharing an event type share the counter, so
  /// a co-located group must migrate together and carries one value.
  std::uint64_t seq = 0;
  /// Horizon watermark: earliest instant any buffered entity can expire.
  time_model::TimePoint next_prune_at = time_model::TimePoint::max();
  std::vector<std::vector<BufferedEntity>> buffers;  ///< per slot, ascending stamp
  std::uint64_t load_routed = 0;  ///< cumulative DefinitionLoad::routed
  std::uint64_t load_tried = 0;   ///< cumulative DefinitionLoad::tried
};

/// The detection engine: the concrete observer (Def. 4.3) used at every
/// level of the hierarchy (mote, sink, CCU — Fig. 2).
///
/// For each registered event definition the engine buffers recently seen
/// entities per slot. When an entity arrives it is placed into every slot
/// whose filter matches, then the engine enumerates bindings that include
/// the new entity, evaluates the composite condition (Eq. 4.5) on each,
/// and synthesizes an event instance (Eq. 4.7) per match.
///
/// Candidate selection is indexed (see docs/architecture.md, "Candidate
/// selection & indexing"):
///  - a *routing index* built at add_definition() time maps an arrival's
///    sensor / event-type to the (definition, slot) pairs whose filters
///    can possibly match, so unrelated definitions cost nothing;
///  - slots constrained by conjunctive spatial predicates back their
///    buffers with a `geom::GridIndex` / `geom::RTree`, so the binding
///    enumerator visits only spatially plausible candidates;
///  - the enumerator itself is iterative and allocation-free in steady
///    state, and window pruning is amortized behind per-definition
///    horizon watermarks.
class DetectionEngine : public Observer {
 public:
  /// `id` is the observer identity stamped into instances; `layer` the
  /// hierarchy level of the *output* instances; `location` the observer's
  /// own position (the l^g of generated instances).
  DetectionEngine(ObserverId id, Layer layer, geom::Point location, EngineOptions options = {});

  /// Registers a definition and builds its routing/spatial index entries.
  /// Returns the definition's index (the tag emitted with its instances).
  /// Throws std::invalid_argument if the condition references a slot index
  /// beyond the declared slots, or if the definition has no slots.
  std::size_t add_definition(EventDefinition def);

  /// Removes the definition at `def_index` and returns its full dynamic
  /// state (spec, buffered entities, sequence counter, horizon watermark,
  /// load counters) for implanting into another engine. The index slot is
  /// retired and reused by a later implant, so the indices of the other
  /// definitions — and the tags of their emissions — never shift. Throws
  /// std::out_of_range for an unknown or already-extracted index.
  [[nodiscard]] DefinitionState extract_definition_state(std::size_t def_index);

  /// Non-destructive variant of extract_definition_state: copies the
  /// definition's full dynamic state (buffered entities by shared_ptr)
  /// without retiring the slot — the engine keeps running untouched.
  /// Shard checkpoints are built from these. Throws std::out_of_range for
  /// an unknown or extracted index.
  [[nodiscard]] DefinitionState snapshot_definition_state(std::size_t def_index) const;

  /// Installs a previously extracted definition, rebuilding its routing
  /// and spatial index entries and renumbering its buffered entities into
  /// this engine's stamp space. The event type's sequence counter is set
  /// to the carried value (the source held the only live copy). Returns
  /// the definition's index in this engine.
  std::size_t implant_definition_state(DefinitionState state);

  /// Appends (definition index, cumulative load) for every registered
  /// definition — the per-definition cost attribution a rebalancer needs.
  void collect_definition_loads(std::vector<std::pair<std::uint32_t, DefinitionLoad>>& out) const;

  /// Drops every buffered entity and resets all horizon watermarks (they
  /// re-arm as new entities buffer). Definitions, sequence counters, and
  /// stats are kept; dropped entities are not counted as evicted.
  void clear();

  [[nodiscard]] const ObserverId& id() const override { return id_; }
  [[nodiscard]] Layer layer() const { return layer_; }
  [[nodiscard]] geom::Point location() const { return location_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  /// Number of currently registered (non-extracted) definitions.
  [[nodiscard]] std::size_t definition_count() const { return active_defs_; }

  std::vector<EventInstance> observe(const Entity& entity, time_model::TimePoint now) override;

  /// Core observation path: appends definition-tagged emissions to `out`
  /// (not cleared). Exactly the same instances, in the same order, as the
  /// untagged overload.
  void observe(const Entity& entity, time_model::TimePoint now, std::vector<Emission>& out);

  /// Zero-copy arrival: identical to the tagged observe() above, but slots
  /// that buffer the entity share `entity` instead of deep-copying it —
  /// the caller's shared storage (e.g. the sharded runtime's refcounted
  /// ingest batch) stays alive while any buffer references it. This is
  /// the ROADMAP "per-arrival entity copy" lever: buffered multi-slot
  /// definitions no longer cost one Entity copy per arrival.
  void observe(const std::shared_ptr<const Entity>& entity, time_model::TimePoint now,
               std::vector<Emission>& out);

  /// Hierarchical cascade (Fig. 2 in one engine): observes `entity`, then
  /// re-observes every derived instance breadth-first — level d+1 is
  /// produced by re-feeding level d's instances in stream order — until a
  /// level is empty or `EngineOptions::max_cascade_depth` is reached.
  /// Returns all instances of the closure in stream order (level 1, then
  /// level 2, ...): exactly the sequence the hand-rolled caller-side
  /// re-feed loop (observe + re-observe frontier) used to produce.
  /// Instances whose event type routes to no definition are not re-fed
  /// (no observable difference); instances emitted at the depth cap are
  /// delivered but never re-fed (EngineStats::cascade_truncated).
  std::vector<EventInstance> observe_cascading(const Entity& entity, time_model::TimePoint now);
  /// Tagged cascade: each emission carries its (depth, emit_index)
  /// sub-stamp (see Emission). Appends to `out` (not cleared).
  void observe_cascading(const Entity& entity, time_model::TimePoint now,
                         std::vector<Emission>& out);

  /// True iff `entity`'s discriminant routes to at least one registered
  /// definition slot (pure index dispatch — residual filter fields are
  /// not checked). The cascading paths use this to skip provably inert
  /// re-ingestions; the sharded runtime's cascade coordinator applies the
  /// same rule at shard level so the two stay comparable.
  [[nodiscard]] bool routes_anywhere(const Entity& entity);

  /// Batched ingest: exactly equivalent to calling
  /// `observe(batch[i], nows[i])` for i in order and concatenating the
  /// results — same instances, same order, same stats. Throws
  /// std::invalid_argument when the spans differ in length.
  std::vector<EventInstance> observe_batch(std::span<const Entity> batch,
                                           std::span<const time_model::TimePoint> nows);
  /// Batched ingest where every arrival shares one observation time.
  std::vector<EventInstance> observe_batch(std::span<const Entity> batch,
                                           time_model::TimePoint now);
  /// Definition-tagged batch path (the sharded runtime's entry point).
  void observe_batch(std::span<const Entity> batch, std::span<const time_model::TimePoint> nows,
                     std::vector<Emission>& out);

  /// Drops buffered entities older than the definitions' windows at `now`.
  /// observe() performs this lazily (per-definition watermarks make it a
  /// no-op until some buffered entity can actually expire); exposed for
  /// idle-time cleanup.
  void prune(time_model::TimePoint now);

 private:
  struct Buffered {
    std::shared_ptr<const Entity> entity;
    std::uint64_t stamp;      ///< global arrival stamp (dedup across slots)
    geom::BoundingBox box;    ///< entity location bounds (guard prechecks)
  };

  /// Emission target: the untagged API writes instances straight into the
  /// caller's vector (no intermediate buffering on the hot path); the
  /// tagged API captures the producing definition per instance. Exactly
  /// one target is set; the branch costs one predictable test per
  /// *emission*, not per arrival.
  struct EmitSink {
    std::vector<EventInstance>* plain = nullptr;
    std::vector<Emission>* tagged = nullptr;

    void emit(std::uint32_t def, EventInstance&& inst) {
      if (tagged != nullptr) {
        tagged->push_back(Emission{def, 1, 0, std::move(inst)});
      } else {
        plain->push_back(std::move(inst));
      }
    }
    [[nodiscard]] std::size_t size() const {
      return tagged != nullptr ? tagged->size() : plain->size();
    }
  };

  /// Spatial backing for one guarded slot buffer: a uniform grid when the
  /// slot has a metric (distance-radius) guard — the radius is the natural
  /// cell size — and an R-tree when its guards are purely topological.
  class SlotSpatial {
   public:
    explicit SlotSpatial(double cell) : rep_(std::in_place_type<geom::GridIndex<std::uint64_t>>, cell) {}
    SlotSpatial() : rep_(std::in_place_type<geom::RTree<std::uint64_t>>) {}

    void insert(const geom::BoundingBox& box, std::uint64_t stamp) {
      std::visit([&](auto& index) { index.insert(box, stamp); }, rep_);
    }
    void erase(const geom::BoundingBox& box, std::uint64_t stamp) {
      std::visit([&](auto& index) { index.erase(box, stamp); }, rep_);
    }
    void query(const geom::BoundingBox& box, std::vector<std::uint64_t>& out) const {
      std::visit([&](const auto& index) {
        index.visit(box, [&out](const std::uint64_t stamp) { out.push_back(stamp); });
      }, rep_);
    }
    void clear() {
      std::visit([](auto& index) { index.clear(); }, rep_);
    }

   private:
    std::variant<geom::GridIndex<std::uint64_t>, geom::RTree<std::uint64_t>> rep_;
  };

  /// One spatial guard usable while enumerating candidates for a slot:
  /// candidates must lie within `radius` of the already-bound `partner`
  /// slot, or inside the precomputed constant `region` box.
  struct Guard {
    static constexpr std::uint32_t kNoPartner = 0xffffffffu;
    std::uint32_t partner = kNoPartner;  ///< kNoPartner => constant region
    geom::BoundingBox region;            ///< pre-inflated by radius
    double radius = 0.0;
  };

  /// One shared plan node: the buffered entity stream of one
  /// (filter, window) key, fanned out to every subscribing
  /// (definition, slot). Definitions with equal filters accept exactly the
  /// same entities under the same expiry policy, so their slot buffers are
  /// views of one deque — and one spatial index — instead of per-
  /// definition copies (the multi-query sharing this engine's plans are
  /// built on). Only retain-mode (kUnrestricted) definitions subscribe:
  /// consume-mode retires matched entities mid-buffer, which would be
  /// observable by co-subscribers.
  struct StreamNode {
    std::deque<Buffered> buf;  ///< ascending stamp
    /// Shared spatial backing, created when any subscriber guards this
    /// stream's slot; same activation hysteresis as before sharing.
    std::unique_ptr<SlotSpatial> spatial;
    bool spatial_active = false;
    /// Registered in canonical_streams_ under `key`; new same-key
    /// subscriptions join it (only while it is empty — a late subscriber
    /// must not see entities buffered before it registered).
    bool canonical = false;
    /// Subscribing (definition, slot) count; evictions count once per
    /// subscriber so EngineStats::evicted matches unshared buffers.
    std::uint32_t subscribers = 0;
    /// Stamp of the last arrival inserted; dedups insertion when several
    /// subscribed routes of one arrival land on the same stream.
    std::uint64_t last_stamp = 0;
    time_model::Duration window{};
    /// Earliest instant the front entity can expire; stale-low only costs
    /// a spurious check, never stale-high.
    time_model::TimePoint next_prune_at = time_model::TimePoint::max();
    std::string key;  ///< canonical registry key; empty for private streams
  };

  struct DefState {
    explicit DefState(EventDefinition d) : def(std::move(d)) {}

    EventDefinition def;
    /// Consume-mode multi-slot definitions keep private per-slot buffers
    /// (consumption mutates mid-buffer); retain-mode ones subscribe their
    /// slots to shared streams instead.
    std::vector<std::deque<Buffered>> buffers;  // one per slot; ascending stamp
    std::vector<std::uint32_t> streams;         // per slot: stream id (stream_backed)
    std::vector<std::vector<Guard>> guards;     // per slot (multi-slot only)
    /// Single-slot definitions never read their buffer (bindings only ever
    /// contain the fresh arrival), so they skip buffering entirely.
    bool buffered = false;
    /// True when the slot buffers live in shared StreamNodes (buffered
    /// retain-mode definitions).
    bool stream_backed = false;
    /// Index into seq_counters_, resolved at add_definition() time.
    /// Definitions sharing an event type share a counter, keeping
    /// EventInstanceKey unique without per-instance string hashing.
    std::uint32_t seq_idx = 0;
    /// Earliest instant any privately buffered entity may fall out of the
    /// window (shared streams carry their own watermark); may be stale-low
    /// (spurious check) but never stale-high.
    time_model::TimePoint next_prune_at = time_model::TimePoint::max();

    /// Per-definition load attribution (DefinitionLoad counters; they
    /// migrate with the definition).
    std::uint64_t load_routed = 0;
    std::uint64_t load_tried = 0;
    /// False once the definition was extracted (migrated away); the slot
    /// is a tombstone awaiting reuse by implant_definition_state, so that
    /// live definitions keep stable indices.
    bool active = true;
  };

  /// Binding-enumeration scratch, engine-level and sized to the widest
  /// registered definition: the enumerator never re-enters (cascades
  /// re-feed after observe_impl returns), so one set serves every
  /// definition — registration no longer allocates per-definition scratch,
  /// which is what lets 10^6 near-duplicate definitions register in
  /// seconds.
  struct EnumScratch {
    std::vector<const Buffered*> chosen;
    std::vector<const Entity*> binding;
    std::vector<std::uint32_t> order;                // slots except the fixed one
    std::vector<std::size_t> cursor;                 // per depth
    std::vector<std::vector<const Buffered*>> cand;  // per slot: index-query results
    /// Candidate source per slot: 0 = plain buffer scan, 1 = buffer scan
    /// with guard-box precheck (qbox), 2 = spatial-index result (cand).
    std::vector<std::uint8_t> source;
    std::vector<geom::BoundingBox> qbox;  // per slot: active guard query box
    std::vector<std::uint64_t> stamp_scratch;
    /// Backtracking re-descends into a depth once per outer candidate;
    /// when a slot's applicable guards are all constant-region (no bound
    /// partner), its prepared candidates are identical each time, so
    /// preparation is skipped while prep_epoch matches cur_epoch (bumped
    /// per try_bindings call — cross-definition reuse is impossible since
    /// the epoch strictly increases).
    std::vector<std::uint64_t> prep_epoch;  // 64-bit: may never wrap
    std::uint64_t cur_epoch = 0;

    /// Grows every per-slot array to at least `n` slots. `binding` tracks
    /// the high-water mark (it is never shrunk by the enumerator).
    void fit(std::size_t n) {
      if (n <= binding.size()) return;
      chosen.resize(n);
      binding.resize(n);
      cursor.resize(n);
      cand.resize(n);
      source.resize(n, 0);
      qbox.resize(n);
      prep_epoch.resize(n, 0);
      order.reserve(n);
    }
  };

  /// Buffer occupancy at which a retain-mode guarded slot starts (stops)
  /// maintaining its spatial index; hysteresis avoids thrash at the edge.
  static constexpr std::size_t kIndexActivate = 32;
  static constexpr std::size_t kIndexDeactivate = 8;

  /// Shared add/implant validation + registration-time DefState setup
  /// (guards, buffering mode, sequence-counter resolution). Stream
  /// subscription is the caller's step: add_definition subscribes every
  /// slot fresh; implant_definition_state must place carried non-empty
  /// buffers in private streams first.
  void validate_definition(const EventDefinition& def) const;
  void init_def_state(DefState& ds);
  /// Allocates a definition slot (reusing a tombstone when available) and
  /// move-constructs `def` into it; returns the slot index.
  std::uint32_t alloc_def_slot(EventDefinition def);

  /// Canonical plan key of one slot subscription: full filter encoding
  /// plus the definition window (both must match for two slots to share a
  /// buffered stream).
  [[nodiscard]] static std::string stream_key_for(const DefState& ds, std::size_t slot);
  /// Subscribes one slot to the canonical stream of `key` — joining it
  /// only while its buffer is empty, so the subscriber never sees entities
  /// older than its registration — or to a fresh stream otherwise (which
  /// becomes the canonical one when the key had none). Returns the stream
  /// id; the subscriber count is already bumped.
  std::uint32_t subscribe_stream(std::string key, time_model::Duration window);
  /// Allocates a stream (reusing a free id); empty `key` = private.
  std::uint32_t create_stream(std::string key, time_model::Duration window);
  /// Drops one subscription; the stream is destroyed (and deregistered
  /// from the canonical map) when the last subscriber leaves.
  void unsubscribe_stream(std::uint32_t stream_id);
  /// Attaches (or keeps) shared spatial backing on a guarded slot's
  /// stream, rebuilding immediately when the buffer is already past the
  /// activation threshold (implanted state).
  void attach_stream_spatial(StreamNode& sn, const std::vector<Guard>& guards);

  void maybe_prune(time_model::TimePoint now);
  void prune_def(DefState& ds, time_model::TimePoint now);
  void prune_stream(StreamNode& sn, time_model::TimePoint now);
  void evict_front(DefState& ds, std::size_t slot);
  void evict_stream_front(StreamNode& sn);
  void insert_buffered(DefState& ds, std::size_t slot, const Buffered& fresh);
  void insert_stream(StreamNode& sn, const Buffered& fresh);
  /// (Re)indexes every buffered entry of the stream (index activation).
  void rebuild_stream_spatial(StreamNode& sn);
  /// The slot's buffer view: the shared stream's deque for stream-backed
  /// definitions, the private one otherwise.
  [[nodiscard]] std::deque<Buffered>& slot_buffer(DefState& ds, std::size_t slot) {
    return ds.stream_backed ? streams_[ds.streams[slot]]->buf : ds.buffers[slot];
  }
  [[nodiscard]] StreamNode* slot_stream(DefState& ds, std::size_t slot) {
    return ds.stream_backed ? streams_[ds.streams[slot]].get() : nullptr;
  }
  /// Fills matched_routes_ with (def, slot) pairs whose filter accepts
  /// `entity`, ordered by (definition, slot) registration order.
  void route(const Entity& entity);
  /// `prestored` (optional) is caller-owned shared storage for `entity`;
  /// when set, buffering slots alias it instead of deep-copying.
  void observe_impl(const Entity& entity, time_model::TimePoint now, EmitSink& sink,
                    const std::shared_ptr<const Entity>* prestored = nullptr);
  void fire_single(DefState& ds, const Entity& entity, time_model::TimePoint now, EmitSink& sink);
  void try_bindings(DefState& ds, std::size_t fixed_slot, const Buffered& fresh,
                    time_model::TimePoint now, EmitSink& sink);
  /// Prepares the candidate source for `slot`: a spatial-index query when
  /// an applicable guard exists, otherwise a direct buffer scan.
  void prepare_candidates(DefState& ds, std::uint32_t slot);
  /// Evaluates the completed binding in ds.chosen; returns true when the
  /// participants were consumed (enumeration must stop).
  bool emit_binding(DefState& ds, time_model::TimePoint now, EmitSink& sink);
  void consume_participants(DefState& ds);
  /// `binding` points at `n` bound entities (a prefix of the shared
  /// scratch, which is sized to the widest registered definition).
  EventInstance synthesize(DefState& ds, const Entity* const* binding, std::size_t n,
                           time_model::TimePoint now);

  ObserverId id_;
  Layer layer_;
  geom::Point location_;
  EngineOptions options_;
  std::vector<DefState> defs_;
  std::vector<std::uint32_t> free_slots_;  ///< tombstoned indices, reused by implant
  std::size_t active_defs_ = 0;

  /// Shared plan nodes (slot streams); null entries are retired ids on
  /// free_streams_. canonical_streams_ maps a plan key to the stream new
  /// same-key subscriptions try to join.
  std::vector<std::unique_ptr<StreamNode>> streams_;
  std::vector<std::uint32_t> free_streams_;
  std::unordered_map<std::string, std::uint32_t> canonical_streams_;
  /// Active definitions with *private* buffers (consume-mode multi-slot):
  /// with streams pruned directly, the prune walks touch only structures
  /// that actually buffer — never the full definition table.
  std::vector<std::uint32_t> private_buffered_;

  EnumScratch scratch_;

  /// Routing index over this engine's definitions (see core/routing.hpp;
  /// shared with the sharded runtime, which keys the same structure by
  /// shard index for placement).
  RoutingIndex routing_;
  std::vector<SlotRoute> matched_routes_;  // per-observe scratch

  /// min over streams/private buffers of next_prune_at; observe() skips
  /// pruning entirely while `now` has not reached it.
  time_model::TimePoint global_prune_at_ = time_model::TimePoint::max();

  /// Instance sequence counters, one per distinct event type; definitions
  /// reach theirs via DefState::seq_idx. seq_index_ is registration-time
  /// only (event type -> counter slot).
  std::vector<std::uint64_t> seq_counters_;
  std::unordered_map<std::string, std::uint32_t> seq_index_;

  std::uint64_t next_stamp_ = 1;
  EngineStats stats_;
};

}  // namespace stem::core
