#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/event_def.hpp"
#include "core/observer.hpp"

namespace stem::core {

/// Engine tuning knobs.
struct EngineOptions {
  /// Composite-condition evaluation strategy (ablation E3).
  EvalMode eval_mode = EvalMode::kShortCircuit;
  /// Per-slot buffer cap; oldest entities are evicted beyond this. Bounds
  /// the join cost per arrival.
  std::size_t max_buffer = 64;
};

/// Engine throughput/selectivity counters.
struct EngineStats {
  std::uint64_t entities_in = 0;     ///< entities fed to the engine
  std::uint64_t bindings_tried = 0;  ///< candidate slot bindings formed
  std::uint64_t bindings_matched = 0;
  std::uint64_t instances_out = 0;
  std::uint64_t evicted = 0;  ///< buffer-cap and window evictions
};

/// The detection engine: the concrete observer (Def. 4.3) used at every
/// level of the hierarchy (mote, sink, CCU — Fig. 2).
///
/// For each registered event definition the engine buffers recently seen
/// entities per slot. When an entity arrives it is placed into every slot
/// whose filter matches, then the engine enumerates bindings that include
/// the new entity, evaluates the composite condition (Eq. 4.5) on each,
/// and synthesizes an event instance (Eq. 4.7) per match.
class DetectionEngine : public Observer {
 public:
  /// `id` is the observer identity stamped into instances; `layer` the
  /// hierarchy level of the *output* instances; `location` the observer's
  /// own position (the l^g of generated instances).
  DetectionEngine(ObserverId id, Layer layer, geom::Point location, EngineOptions options = {});

  /// Registers a definition. Throws std::invalid_argument if the
  /// condition references a slot index beyond the declared slots, or if
  /// the definition has no slots.
  void add_definition(EventDefinition def);

  [[nodiscard]] const ObserverId& id() const override { return id_; }
  [[nodiscard]] Layer layer() const { return layer_; }
  [[nodiscard]] geom::Point location() const { return location_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t definition_count() const { return defs_.size(); }

  std::vector<EventInstance> observe(const Entity& entity, time_model::TimePoint now) override;

  /// Drops buffered entities older than the definitions' windows at `now`.
  /// Called internally on every observe(); exposed for idle-time cleanup.
  void prune(time_model::TimePoint now);

 private:
  struct Buffered {
    std::shared_ptr<const Entity> entity;
    std::uint64_t stamp;  ///< global arrival stamp (dedup across slots)
  };

  struct DefState {
    EventDefinition def;
    std::vector<std::deque<Buffered>> buffers;  // one per slot
  };

  void try_bindings(DefState& ds, std::size_t fixed_slot, const Buffered& fresh,
                    time_model::TimePoint now, std::vector<EventInstance>& out);
  EventInstance synthesize(const DefState& ds, const std::vector<const Entity*>& binding,
                           time_model::TimePoint now);

  ObserverId id_;
  Layer layer_;
  geom::Point location_;
  EngineOptions options_;
  std::vector<DefState> defs_;
  std::unordered_map<std::string, std::uint64_t> seq_;  // per event type
  std::uint64_t next_stamp_ = 1;
  EngineStats stats_;
};

}  // namespace stem::core
