#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "core/event_def.hpp"
#include "core/observer.hpp"
#include "geom/grid_index.hpp"
#include "geom/rtree.hpp"

namespace stem::core {

/// Engine tuning knobs.
struct EngineOptions {
  /// Composite-condition evaluation strategy (ablation E3).
  EvalMode eval_mode = EvalMode::kShortCircuit;
  /// Per-slot buffer cap; oldest entities are evicted beyond this. Bounds
  /// the join cost per arrival.
  std::size_t max_buffer = 64;
};

/// Engine throughput/selectivity counters.
struct EngineStats {
  std::uint64_t entities_in = 0;     ///< entities fed to the engine
  std::uint64_t bindings_tried = 0;  ///< candidate slot bindings formed
  std::uint64_t bindings_matched = 0;
  std::uint64_t instances_out = 0;
  std::uint64_t evicted = 0;  ///< buffer-cap and window evictions
};

/// The detection engine: the concrete observer (Def. 4.3) used at every
/// level of the hierarchy (mote, sink, CCU — Fig. 2).
///
/// For each registered event definition the engine buffers recently seen
/// entities per slot. When an entity arrives it is placed into every slot
/// whose filter matches, then the engine enumerates bindings that include
/// the new entity, evaluates the composite condition (Eq. 4.5) on each,
/// and synthesizes an event instance (Eq. 4.7) per match.
///
/// Candidate selection is indexed (see docs/architecture.md, "Candidate
/// selection & indexing"):
///  - a *routing index* built at add_definition() time maps an arrival's
///    sensor / event-type to the (definition, slot) pairs whose filters
///    can possibly match, so unrelated definitions cost nothing;
///  - slots constrained by conjunctive spatial predicates back their
///    buffers with a `geom::GridIndex` / `geom::RTree`, so the binding
///    enumerator visits only spatially plausible candidates;
///  - the enumerator itself is iterative and allocation-free in steady
///    state, and window pruning is amortized behind per-definition
///    horizon watermarks.
class DetectionEngine : public Observer {
 public:
  /// `id` is the observer identity stamped into instances; `layer` the
  /// hierarchy level of the *output* instances; `location` the observer's
  /// own position (the l^g of generated instances).
  DetectionEngine(ObserverId id, Layer layer, geom::Point location, EngineOptions options = {});

  /// Registers a definition and builds its routing/spatial index entries.
  /// Throws std::invalid_argument if the condition references a slot index
  /// beyond the declared slots, or if the definition has no slots.
  void add_definition(EventDefinition def);

  [[nodiscard]] const ObserverId& id() const override { return id_; }
  [[nodiscard]] Layer layer() const { return layer_; }
  [[nodiscard]] geom::Point location() const { return location_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t definition_count() const { return defs_.size(); }

  std::vector<EventInstance> observe(const Entity& entity, time_model::TimePoint now) override;

  /// Drops buffered entities older than the definitions' windows at `now`.
  /// observe() performs this lazily (per-definition watermarks make it a
  /// no-op until some buffered entity can actually expire); exposed for
  /// idle-time cleanup.
  void prune(time_model::TimePoint now);

 private:
  struct Buffered {
    std::shared_ptr<const Entity> entity;
    std::uint64_t stamp;      ///< global arrival stamp (dedup across slots)
    geom::BoundingBox box;    ///< entity location bounds (guard prechecks)
  };

  /// Spatial backing for one guarded slot buffer: a uniform grid when the
  /// slot has a metric (distance-radius) guard — the radius is the natural
  /// cell size — and an R-tree when its guards are purely topological.
  class SlotSpatial {
   public:
    explicit SlotSpatial(double cell) : rep_(std::in_place_type<geom::GridIndex<std::uint64_t>>, cell) {}
    SlotSpatial() : rep_(std::in_place_type<geom::RTree<std::uint64_t>>) {}

    void insert(const geom::BoundingBox& box, std::uint64_t stamp) {
      std::visit([&](auto& index) { index.insert(box, stamp); }, rep_);
    }
    void erase(const geom::BoundingBox& box, std::uint64_t stamp) {
      std::visit([&](auto& index) { index.erase(box, stamp); }, rep_);
    }
    void query(const geom::BoundingBox& box, std::vector<std::uint64_t>& out) const {
      std::visit([&](const auto& index) {
        index.visit(box, [&out](const std::uint64_t stamp) { out.push_back(stamp); });
      }, rep_);
    }
    void clear() {
      std::visit([](auto& index) { index.clear(); }, rep_);
    }

   private:
    std::variant<geom::GridIndex<std::uint64_t>, geom::RTree<std::uint64_t>> rep_;
  };

  /// One spatial guard usable while enumerating candidates for a slot:
  /// candidates must lie within `radius` of the already-bound `partner`
  /// slot, or inside the precomputed constant `region` box.
  struct Guard {
    static constexpr std::uint32_t kNoPartner = 0xffffffffu;
    std::uint32_t partner = kNoPartner;  ///< kNoPartner => constant region
    geom::BoundingBox region;            ///< pre-inflated by radius
    double radius = 0.0;
  };

  struct DefState {
    explicit DefState(EventDefinition d) : def(std::move(d)) {}

    EventDefinition def;
    std::vector<std::deque<Buffered>> buffers;  // one per slot; ascending stamp
    /// Single-slot definitions never read their buffer (bindings only ever
    /// contain the fresh arrival), so they skip buffering entirely.
    bool buffered = false;
    /// Index into seq_counters_, resolved at add_definition() time.
    /// Definitions sharing an event type share a counter, keeping
    /// EventInstanceKey unique without per-instance string hashing.
    std::uint32_t seq_idx = 0;
    /// Earliest instant any buffered entity may fall out of the window;
    /// may be stale-low (spurious check) but never stale-high.
    time_model::TimePoint next_prune_at = time_model::TimePoint::max();

    std::vector<std::vector<Guard>> guards;             // per slot
    /// Spatial index backing a guarded slot's buffer. Only retain-mode
    /// (kUnrestricted) definitions get one: they enumerate every
    /// candidate, so an index query pays off; consume-mode stops at the
    /// first match and uses the inline guard precheck instead.
    std::vector<std::unique_ptr<SlotSpatial>> spatial;  // per slot; null = none
    /// Whether the slot's index is live. Maintenance activates (with a
    /// rebuild) once the buffer outgrows kIndexActivate and deactivates
    /// below kIndexDeactivate, so small buffers pay nothing.
    std::vector<std::uint8_t> spatial_active;

    // Enumeration scratch, preallocated at add_definition() so the hot
    // path performs no steady-state allocations.
    std::vector<const Buffered*> chosen;
    std::vector<const Entity*> binding;
    std::vector<std::uint32_t> order;                // slots except the fixed one
    std::vector<std::size_t> cursor;                 // per depth
    std::vector<std::vector<const Buffered*>> cand;  // per slot: index-query results
    /// Candidate source per slot: 0 = plain buffer scan, 1 = buffer scan
    /// with guard-box precheck (qbox), 2 = spatial-index result (cand).
    std::vector<std::uint8_t> source;
    std::vector<geom::BoundingBox> qbox;  // per slot: active guard query box
    std::vector<std::uint64_t> stamp_scratch;
    /// Backtracking re-descends into a depth once per outer candidate;
    /// when a slot's applicable guards are all constant-region (no bound
    /// partner), its prepared candidates are identical each time, so
    /// preparation is skipped while prep_epoch matches cur_epoch (bumped
    /// per try_bindings call).
    std::vector<std::uint64_t> prep_epoch;  // 64-bit: may never wrap
    std::uint64_t cur_epoch = 0;
  };

  /// Buffer occupancy at which a retain-mode guarded slot starts (stops)
  /// maintaining its spatial index; hysteresis avoids thrash at the edge.
  static constexpr std::size_t kIndexActivate = 32;
  static constexpr std::size_t kIndexDeactivate = 8;

  /// Routing index entry: one (definition, slot) pair.
  struct SlotRoute {
    std::uint32_t def_idx;
    std::uint32_t slot_idx;
  };

  /// Single-slot `attr OP C` definitions, grouped per attribute with the
  /// entries sorted by constant, so selection walks only the rules the
  /// arriving value actually satisfies (output-sensitive in rule count).
  struct ThresholdGroup {
    std::string attribute;
    /// kGt/kGe entries, ascending by constant: every entry with
    /// constant < value fires; at equality only kGe does.
    std::vector<std::pair<double, SlotRoute>> above;
    std::vector<std::uint8_t> above_ge;  // parallel: 1 = kGe
    /// kLt/kLe entries, descending by constant (mirror logic).
    std::vector<std::pair<double, SlotRoute>> below;
    std::vector<std::uint8_t> below_le;  // parallel: 1 = kLe
  };

  /// One routing bucket (per sensor / event type / the unkeyed rest):
  /// generic (definition, slot) routes plus the threshold sub-index.
  struct RouteBucket {
    std::vector<SlotRoute> generic;  // sorted by (def_idx, slot_idx)
    std::vector<ThresholdGroup> thresholds;
  };

  void maybe_prune(time_model::TimePoint now);
  void prune_def(DefState& ds, time_model::TimePoint now);
  void evict_front(DefState& ds, std::size_t slot);
  void insert_buffered(DefState& ds, std::size_t slot, const Buffered& fresh);
  /// (Re)indexes every buffered entry of `slot` (index activation).
  void rebuild_spatial(DefState& ds, std::size_t slot);
  /// Fills matched_routes_ with (def, slot) pairs whose filter accepts
  /// `entity`, ordered by (definition, slot) registration order.
  void route(const Entity& entity);
  void fire_single(DefState& ds, const Entity& entity, time_model::TimePoint now,
                   std::vector<EventInstance>& out);
  void try_bindings(DefState& ds, std::size_t fixed_slot, const Buffered& fresh,
                    time_model::TimePoint now, std::vector<EventInstance>& out);
  /// Prepares the candidate source for `slot`: a spatial-index query when
  /// an applicable guard exists, otherwise a direct buffer scan.
  void prepare_candidates(DefState& ds, std::uint32_t slot);
  /// Evaluates the completed binding in ds.chosen; returns true when the
  /// participants were consumed (enumeration must stop).
  bool emit_binding(DefState& ds, time_model::TimePoint now, std::vector<EventInstance>& out);
  void consume_participants(DefState& ds);
  EventInstance synthesize(DefState& ds, const std::vector<const Entity*>& binding,
                           time_model::TimePoint now);

  ObserverId id_;
  Layer layer_;
  geom::Point location_;
  EngineOptions options_;
  std::vector<DefState> defs_;

  /// Registers a keyed route, diverting eligible single-slot threshold
  /// definitions into the bucket's threshold sub-index.
  void register_keyed(RouteBucket& bucket, const EventDefinition& def, SlotRoute r);

  // Routing index: keyed buckets plus the unkeyed remainder, generic
  // routes sorted by (def_idx, slot_idx) construction order.
  std::unordered_map<std::string, RouteBucket> routes_by_sensor_;
  std::unordered_map<std::string, RouteBucket> routes_by_type_;
  std::vector<SlotRoute> routes_any_;
  std::vector<SlotRoute> matched_routes_;  // per-observe scratch

  /// min over defs_ of next_prune_at; observe() skips pruning entirely
  /// while `now` has not reached it.
  time_model::TimePoint global_prune_at_ = time_model::TimePoint::max();

  /// Instance sequence counters, one per distinct event type; definitions
  /// reach theirs via DefState::seq_idx. seq_index_ is registration-time
  /// only (event type -> counter slot).
  std::vector<std::uint64_t> seq_counters_;
  std::unordered_map<std::string, std::uint32_t> seq_index_;

  std::uint64_t next_stamp_ = 1;
  EngineStats stats_;
};

}  // namespace stem::core
