#include "core/event_def.hpp"

#include <stdexcept>

namespace stem::core {

bool SlotFilter::matches(const Entity& e) const {
  if (layer.has_value() && e.layer() != *layer) return false;
  if (producer.has_value() && e.producer() != *producer) return false;
  if (event_type.has_value()) {
    if (!e.is_instance() || e.instance().key.event != *event_type) return false;
  }
  if (sensor.has_value()) {
    if (!e.is_observation() || e.observation().sensor != *sensor) return false;
  }
  return true;
}

FilterSignature SlotFilter::signature() const {
  if (sensor.has_value() && event_type.has_value()) {
    // A sensor field only matches observations, an event type only
    // instances: both at once can never match.
    return {FilterSignature::Kind::kNever, {}};
  }
  if (sensor.has_value()) {
    // Observations always carry Layer::kPhysicalObservation.
    if (layer.has_value() && *layer != Layer::kPhysicalObservation) {
      return {FilterSignature::Kind::kNever, {}};
    }
    return {FilterSignature::Kind::kSensor, sensor->value()};
  }
  if (event_type.has_value()) return {FilterSignature::Kind::kEventType, event_type->value()};
  return {FilterSignature::Kind::kAny, {}};
}

std::string SlotFilter::stream_key() const {
  std::string key;
  const auto put = [&key](char tag, const std::string& v) {
    key += tag;
    key += std::to_string(v.size());
    key += ':';
    key += v;
  };
  if (event_type.has_value()) put('t', event_type->value());
  if (sensor.has_value()) put('s', sensor->value());
  if (producer.has_value()) put('p', producer->value());
  if (layer.has_value()) {
    key += 'l';
    key += std::to_string(static_cast<int>(*layer));
  }
  return key;
}

SlotFilter SlotFilter::observation(SensorId sensor_id) {
  SlotFilter f;
  f.sensor = std::move(sensor_id);
  f.layer = Layer::kPhysicalObservation;
  return f;
}

SlotFilter SlotFilter::instance_of(EventTypeId type) {
  SlotFilter f;
  f.event_type = std::move(type);
  return f;
}

SlotFilter SlotFilter::any() { return SlotFilter{}; }

SlotIndex EventDefinition::slot_index(std::string_view name) const {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].name == name) return static_cast<SlotIndex>(i);
  }
  throw std::out_of_range("EventDefinition: unknown slot '" + std::string(name) + "'");
}

}  // namespace stem::core
