#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/condition.hpp"
#include "core/ids.hpp"
#include "core/instance.hpp"

namespace stem::core {

/// How an engine routing index can bucket a slot filter. `kSensor` /
/// `kEventType` filters are reached through a hash lookup on `key`; `kAny`
/// filters must be probed for every arrival; `kNever` filters are
/// internally contradictory (they demand observation-only and
/// instance-only fields at once) and match no entity.
struct FilterSignature {
  enum class Kind { kSensor, kEventType, kAny, kNever };
  Kind kind = Kind::kAny;
  std::string key;  ///< the sensor / event-type value for keyed kinds

  friend bool operator==(const FilterSignature&, const FilterSignature&) = default;
};

/// Selects which entities may bind to a slot of an event definition.
/// Every populated field must match; an empty filter matches everything.
struct SlotFilter {
  std::optional<EventTypeId> event_type;  ///< instance's event id
  std::optional<SensorId> sensor;         ///< observation's sensor id
  std::optional<ObserverId> producer;     ///< producing mote / observer
  std::optional<Layer> layer;             ///< entity's layer

  [[nodiscard]] bool matches(const Entity& e) const;

  /// Routing signature: the most selective discriminant an index can key
  /// this filter by. `matches()` must still be checked for the residual
  /// fields (producer, layer).
  [[nodiscard]] FilterSignature signature() const;

  /// Plan-sharing key: a stable, unambiguous string encoding of *every*
  /// filter field (not just the routing discriminant). Two filters with
  /// equal stream_key() accept exactly the same entities, so an engine can
  /// back their slot buffers with one shared stream (see DetectionEngine's
  /// shared evaluation plans). Field values are length-prefixed so distinct
  /// filters can never collide.
  [[nodiscard]] std::string stream_key() const;

  // -- Fluent factories --------------------------------------------------
  /// Matches observations from a specific sensor type.
  [[nodiscard]] static SlotFilter observation(SensorId sensor);
  /// Matches event instances of a given type.
  [[nodiscard]] static SlotFilter instance_of(EventTypeId type);
  /// Matches anything.
  [[nodiscard]] static SlotFilter any();

  [[nodiscard]] SlotFilter& from(ObserverId producer_id) {
    producer = std::move(producer_id);
    return *this;
  }
  [[nodiscard]] SlotFilter& on_layer(Layer l) {
    layer = l;
    return *this;
  }

  friend bool operator==(const SlotFilter&, const SlotFilter&) = default;
};

/// A named entity slot (the x, y of the paper's condition examples).
struct SlotSpec {
  std::string name;
  SlotFilter filter;

  friend bool operator==(const SlotSpec&, const SlotSpec&) = default;
};

/// How the confidences rho of constituent entities combine into the
/// derived instance's confidence.
enum class ConfidencePolicy {
  kMin,      ///< weakest-link
  kProduct,  ///< independent-evidence
  kMean,     ///< average
};

/// Rule synthesizing one output attribute from constituent entities.
struct AttributeRule {
  std::string output_name;
  ValueAggregate aggregate = ValueAggregate::kAverage;
  std::string input_attribute;
  std::vector<SlotIndex> slots;

  friend bool operator==(const AttributeRule&, const AttributeRule&) = default;
};

/// How a detected instance's 6-tuple (Eq. 4.7) is synthesized from the
/// entities that satisfied the condition.
struct SynthesisSpec {
  /// t^eo: aggregation over constituent occurrence times.
  time_model::TimeAggregate time = time_model::TimeAggregate::kSpan;
  /// l^eo: aggregation over constituent locations.
  geom::SpatialAggregate location = geom::SpatialAggregate::kHull;
  ConfidencePolicy confidence = ConfidencePolicy::kProduct;
  /// The observer's own confidence factor, multiplied into the result.
  double observer_confidence = 1.0;
  std::vector<AttributeRule> attributes;

  friend bool operator==(const SynthesisSpec&, const SynthesisSpec&) = default;
};

/// How matched entities are retired from the engine's buffers.
enum class ConsumptionMode {
  kConsume,       ///< matched entities are removed (at most one use each)
  kUnrestricted,  ///< matched entities stay until their window expires
};

/// A complete event definition: the event type it detects, the entity
/// slots it binds, the composite condition (Eq. 4.5), the correlation
/// window, and the instance synthesis policy.
struct EventDefinition {
  EventTypeId id;
  std::vector<SlotSpec> slots;
  ConditionExpr condition;
  /// Maximum age (relative to the engine's current time) of an entity
  /// still eligible to join a binding.
  time_model::Duration window = time_model::seconds(60);
  SynthesisSpec synthesis;
  ConsumptionMode consumption = ConsumptionMode::kConsume;

  /// Index of the named slot. Throws std::out_of_range if unknown.
  [[nodiscard]] SlotIndex slot_index(std::string_view name) const;

  /// Structural equality over the whole definition (id, slots, condition,
  /// window, synthesis, consumption). Lets tests and dedup logic compare
  /// parsed specifications directly.
  friend bool operator==(const EventDefinition&, const EventDefinition&) = default;
};

}  // namespace stem::core
