#include <ostream>

#include "core/ids.hpp"
#include "core/instance.hpp"

namespace stem::core {

std::ostream& operator<<(std::ostream& os, const EventTypeId& id) { return os << id.value(); }
std::ostream& operator<<(std::ostream& os, const ObserverId& id) { return os << id.value(); }
std::ostream& operator<<(std::ostream& os, const SensorId& id) { return os << id.value(); }

std::string_view to_string(Layer layer) {
  switch (layer) {
    case Layer::kPhysical: return "physical";
    case Layer::kPhysicalObservation: return "observation";
    case Layer::kSensor: return "sensor";
    case Layer::kCyberPhysical: return "cyber-physical";
    case Layer::kCyber: return "cyber";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Layer layer) { return os << to_string(layer); }

std::ostream& operator<<(std::ostream& os, const PhysicalObservation& obs) {
  return os << "O(" << obs.mote << "," << obs.sensor << "," << obs.seq << "){" << obs.time << ", "
            << obs.location << ", " << obs.attributes << "}";
}

std::ostream& operator<<(std::ostream& os, const EventInstanceKey& key) {
  return os << "E(" << key.observer << "," << key.event << "," << key.seq << ")";
}

std::ostream& operator<<(std::ostream& os, const EventInstance& inst) {
  return os << inst.key << "@" << to_string(inst.layer) << "{tg=" << inst.gen_time
            << ", teo=" << inst.est_time << ", leo=" << inst.est_location
            << ", V=" << inst.attributes << ", rho=" << inst.confidence << "}";
}

}  // namespace stem::core
