#include "core/interval_builder.hpp"

namespace stem::core {

IntervalBuilder::IntervalBuilder(Config config, ObserverId self, geom::Point position)
    : config_(std::move(config)), self_(std::move(self)), position_(position) {}

void IntervalBuilder::extend(const EventInstance& inst) {
  const time_model::TimePoint t = inst.est_time.end();
  if (!state_.has_value()) {
    state_ = OpenInterval{};
    state_->first = inst.est_time.begin();
    state_->last = t;
  } else {
    if (t > state_->last) state_->last = t;
    if (inst.est_time.begin() < state_->first) state_->first = inst.est_time.begin();
  }
  state_->locations.push_back(inst.est_location);
  state_->provenance.push_back(inst.key);
  state_->confidence_sum += inst.confidence;
  ++state_->count;
}

std::optional<EventInstance> IntervalBuilder::close(time_model::TimePoint now) {
  if (!state_.has_value()) return std::nullopt;
  OpenInterval open_interval = *std::move(state_);
  state_.reset();
  if (open_interval.last - open_interval.first < config_.min_length) return std::nullopt;

  EventInstance inst;
  inst.key = EventInstanceKey{self_, config_.output, next_seq_++};
  inst.layer = Layer::kCyberPhysical;
  inst.gen_time = now;
  inst.gen_location = position_;
  inst.est_time = open_interval.first == open_interval.last
                      ? time_model::OccurrenceTime(open_interval.first)
                      : time_model::OccurrenceTime(
                            time_model::TimeInterval(open_interval.first, open_interval.last));
  inst.est_location = geom::aggregate_locations(geom::SpatialAggregate::kHull,
                                                open_interval.locations.data(),
                                                open_interval.locations.size());
  inst.attributes.set("confirmations", static_cast<std::int64_t>(open_interval.count));
  inst.confidence = open_interval.confidence_sum / static_cast<double>(open_interval.count);
  inst.provenance = std::move(open_interval.provenance);
  return inst;
}

std::optional<EventInstance> IntervalBuilder::on_instance(const EventInstance& inst,
                                                          time_model::TimePoint now) {
  if (inst.key.event != config_.input) return std::nullopt;
  std::optional<EventInstance> closed;
  if (state_.has_value() && inst.est_time.begin() - state_->last > config_.gap) {
    closed = close(now);
  }
  extend(inst);
  return closed;
}

std::optional<EventInstance> IntervalBuilder::on_tick(time_model::TimePoint now) {
  if (state_.has_value() && now - state_->last > config_.gap) return close(now);
  return std::nullopt;
}

std::optional<EventInstance> IntervalBuilder::flush(time_model::TimePoint now) {
  return close(now);
}

}  // namespace stem::core
