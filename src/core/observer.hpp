#pragma once

#include <vector>

#include "core/entity.hpp"
#include "core/instance.hpp"

namespace stem::core {

/// An observer (paper Def. 4.3): collects entities, evaluates them against
/// event conditions, and outputs event instances when conditions are met.
/// Sensor motes, sink nodes, CCUs, and scripted humans all implement this.
class Observer {
 public:
  virtual ~Observer() = default;

  [[nodiscard]] virtual const ObserverId& id() const = 0;

  /// Feeds one entity; returns instances generated as a result.
  /// `now` is the observer's current (local) time.
  virtual std::vector<EventInstance> observe(const Entity& entity, time_model::TimePoint now) = 0;
};

}  // namespace stem::core
