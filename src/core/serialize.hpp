#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/entity.hpp"
#include "core/instance.hpp"

namespace stem::core {

/// JSON serialization of the event-model data types.
///
/// Instances circulate through the CPS network and are archived by the
/// database server "for later retrieval" (paper Sec. 3); a stable wire
/// format makes both concrete. The encoding is plain JSON with a fixed
/// schema; `decode_*` functions accept exactly what `encode_*` emit plus
/// arbitrary whitespace, and return nullopt on malformed input.
///
/// Schema (event instance):
/// {
///   "observer": "SINK1", "event": "CP_FIRE", "seq": 3,
///   "layer": "cyber-physical",
///   "gen_time": 12000000, "gen_location": [50.0, 50.0],
///   "est_time": 11500000 | [11000000, 11500000],
///   "est_location": [x, y] | [[x, y], [x, y], ...],
///   "attributes": {"value": 93.5, "zone": "north", "armed": true, "n": 4},
///   "confidence": 0.81,
///   "provenance": [{"observer": "MT1", "event": "HOT", "seq": 9}, ...]
/// }
[[nodiscard]] std::string encode(const EventInstance& inst);
[[nodiscard]] std::string encode(const PhysicalObservation& obs);
/// Tagged entity frame: {"observation": {...}} or {"instance": {...}}.
/// Shard checkpoints (runtime/checkpoint.cpp) persist buffered entities
/// through this wrapper so either kind round-trips through one function.
[[nodiscard]] std::string encode(const Entity& entity);

[[nodiscard]] std::optional<EventInstance> decode_instance(std::string_view json);
[[nodiscard]] std::optional<PhysicalObservation> decode_observation(std::string_view json);
[[nodiscard]] std::optional<Entity> decode_entity(std::string_view json);

}  // namespace stem::core
