#include "runtime/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace stem::runtime {

#if defined(__linux__)

bool affinity_supported() noexcept { return true; }

std::size_t logical_cpu_count() noexcept {
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int n = CPU_COUNT(&mask);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool pin_current_thread(std::size_t slot) noexcept {
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  const int n = CPU_COUNT(&allowed);
  if (n <= 0) return false;
  // Map `slot` (mod n) onto the slot-th *set* bit: the allowed mask need
  // not be contiguous (cgroup cpusets rarely are).
  int want = static_cast<int>(slot % static_cast<std::size_t>(n));
  int cpu = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &allowed)) continue;
    if (want-- == 0) {
      cpu = c;
      break;
    }
  }
  if (cpu < 0) return false;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpu, &one);
  return pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
}

#else  // portable no-op fallback

bool affinity_supported() noexcept { return false; }

std::size_t logical_cpu_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool pin_current_thread(std::size_t) noexcept { return false; }

#endif

}  // namespace stem::runtime
