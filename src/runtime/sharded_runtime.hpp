#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/routing.hpp"
#include "runtime/mpsc_ring.hpp"
#include "runtime/rebalance.hpp"

namespace stem::runtime {

/// Ordering contract of the merged output stream (RuntimeOptions::ordering).
/// Every tier delivers the same emission *multiset* — exactly once, nothing
/// lost — they differ only in how much cross-shard serialization the merge
/// pays to order it.
enum class OrderingTier {
  /// Byte-exact sequential order (the default): emissions are released in
  /// (arrival stamp, definition index) order once *every* recipient shard
  /// has passed the stamp — the merged stream is byte-identical to a
  /// single sequential DetectionEngine fed the same arrivals, instance
  /// sequence numbers included (the merge renumbers per event type at
  /// release, which also keeps split groups stream-exact).
  kGlobalTotalOrder,
  /// Each definition's emissions arrive in stamp order; interleaving
  /// *across* definitions is unspecified. The merge gates per shard
  /// outbox (one definition's emissions all flow through its host shard,
  /// in stamp order) instead of waiting on the globally slowest shard;
  /// migration hand-offs are fenced by per-destination release holds so a
  /// moved definition's stream stays in stamp order across the barrier.
  kPerDefinitionOrder,
  /// Emissions flow as produced (per-shard outbox order, cross-shard
  /// free), tagged with a monotone low watermark: low_watermark() = W
  /// guarantees every emission with stamp <= W has already been released,
  /// so consumers can window/reorder externally.
  kUnorderedWatermarked,
};

/// Sharded-runtime tuning knobs.
struct RuntimeOptions {
  /// Worker shard count; clamped to [1, 64] (recipient sets are bitmasks).
  std::size_t shards = 4;
  /// Per-shard inbox capacity in arrivals. Ingestion blocks (backpressure)
  /// while a recipient shard's inbox is full, so an overwhelmed consumer
  /// throttles producers instead of growing queues without bound.
  std::size_t queue_capacity = 4096;
  /// Arrivals between automatic rebalance-policy passes; 0 disables
  /// adaptive rebalancing (placement then changes only via
  /// migrate_definition()). Each pass attributes the epoch's load to
  /// definition groups from the engines' per-definition counters and lets
  /// the policy issue migrations.
  std::size_t rebalance_epoch = 0;
  /// Policy consulted each epoch; defaults to SpilloverPolicy (migrate the
  /// highest-cost movable group off any shard above 1.5x the mean load)
  /// when rebalancing is enabled and no policy is supplied.
  std::shared_ptr<RebalancePolicy> rebalance_policy;
  /// Enables deterministic hierarchical cascading: derived instances are
  /// routed back through the shard-level routing index as *feedback*
  /// items, each shard processes work in sub-stamp order behind the
  /// cascade closure frontier, and the merged stream is exactly what a
  /// sequential DetectionEngine::observe_cascading() fed the same
  /// arrivals would emit (depth cap: engine.max_cascade_depth). Off by
  /// default — the non-cascading pipeline is byte-identical to plain
  /// observe() and pays none of the closure coordination.
  bool cascade = false;
  /// Cascade mode: maximum number of stamps' closures the coordinator
  /// drives concurrently (clamped to >= 1). At the default 1 exactly one
  /// closure is in flight at a time. Higher depths overlap independent
  /// stamps: a shard may observe arrival s as soon as every closure below
  /// s has finished *dispatching* feedback and this shard has consumed
  /// the sub-stamps that targeted it — it no longer waits for other
  /// shards to finish processing or for the closure to merge. Every
  /// depth preserves the tier contract (the global tier stays
  /// byte-identical to the sequential cascade at any setting); deeper
  /// pipelines buffer proportionally more in-flight closure state.
  std::uint32_t cascade_pipeline = 1;
  /// Pin each shard worker thread to a distinct logical CPU (shard index
  /// modulo the process's allowed-CPU count; see runtime/affinity.hpp).
  /// Off by default: pinning helps on dedicated multi-core hosts (stable
  /// cache/NUMA placement for the per-shard engines) and hurts when the
  /// process shares cores with other work. No-op on platforms without
  /// affinity support and on failure — never fatal.
  bool pin_shards = false;
  /// Test-only fault-injection hook: when set, every shard worker invokes
  /// it (with its shard index) before processing each work item — the
  /// stress suite uses it to stall a consumer shard at random so wrap,
  /// backpressure, and shutdown paths are exercised under contention. Must
  /// be thread-safe; never called after the runtime's destructor returns.
  std::function<void(std::size_t)> stall_hook;
  /// Arrivals between epoch-barrier checkpoints of every shard's engine
  /// state; 0 disables checkpointing. Each boundary pushes a checkpoint
  /// control item through every shard's stamp-ordered inbox: the worker
  /// serializes its definitions' dynamic state (runtime/checkpoint.hpp)
  /// and truncates its replay log, so a crashed shard can be rebuilt from
  /// the last checkpoint plus the bounded post-checkpoint log. Not
  /// supported together with cascade (the constructor throws).
  std::size_t checkpoint_epoch = 0;
  /// Test-only crash-injection hook: polled by every shard worker (with
  /// its shard index) at work-item boundaries; returning true makes the
  /// worker die in place, abandoning the item it holds and any
  /// unpublished run — exactly the state an OS-level crash would lose. A
  /// supervisor thread reaps the dead worker and reincarnates the shard
  /// from its last checkpoint plus the replay log; the merged stream
  /// stays byte-identical to the sequential reference. Requires
  /// checkpoint_epoch != 0 (the constructor throws otherwise). Must be
  /// thread-safe, and must stop firing eventually — a hook that always
  /// returns true crash-loops the shard.
  std::function<bool(std::size_t)> crash_hook;
  /// Options forwarded to every shard's DetectionEngine.
  core::EngineOptions engine;
  /// Ordering contract of the merged stream (see OrderingTier). Cascade
  /// mode honors it too: the global tier releases whole closures in stamp
  /// order (byte-identical to the sequential cascade); under
  /// kPerDefinitionOrder the oldest in-flight closure streams its levels
  /// out as they complete (per-definition sequence order is preserved by
  /// construction — levels release in closure order per stamp, stamps in
  /// order per definition); under kUnorderedWatermarked every closure's
  /// levels release as produced and the low watermark clamps below the
  /// oldest in-flight closure.
  OrderingTier ordering = OrderingTier::kGlobalTotalOrder;
};

/// Aggregate runtime counters. Engine counters are owned per shard (each
/// shard engine is single-threaded) and summed on read from per-shard
/// snapshots — they are never written concurrently, and reading while
/// ingestion is in flight is safe but trails the unprocessed work. Totals
/// are exact after flush().
struct RuntimeStats {
  core::EngineStats engine;       ///< summed over shard engines
  std::uint64_t arrivals = 0;     ///< entities accepted for processing
  std::uint64_t deliveries = 0;   ///< shard deliveries (>= arrivals)
  std::uint64_t replicated = 0;   ///< deliveries beyond the first per arrival
  std::uint64_t dropped = 0;      ///< arrivals no shard was interested in
  std::uint64_t instances = 0;    ///< instances merged out so far
  std::uint64_t migrations = 0;   ///< definition-group migrations issued
  std::uint64_t rebalance_passes = 0;  ///< automatic policy passes run
  std::uint64_t max_inbox = 0;    ///< high-water inbox depth (arrivals), any shard
  /// Cascade mode: derived instances re-ingested as feedback (counted
  /// once per instance, not per recipient shard) — comparable to
  /// EngineStats::cascade_reingested on the sequential reference.
  std::uint64_t cascade_reingested = 0;
  /// Cascade mode: re-ingestions suppressed by the depth cap (the cycle
  /// guard) — comparable to EngineStats::cascade_truncated.
  std::uint64_t cascade_truncated = 0;
  /// Cascade mode: high-water count of closures the coordinator drove
  /// concurrently (bounded by RuntimeOptions::cascade_pipeline; 1 means
  /// the pipeline never overlapped two stamps).
  std::uint64_t closures_in_flight_max = 0;
  /// Cascade mode: feedback batches dispatched — one per (shard, level)
  /// that received any feedback, i.e. one queue push + one wake each,
  /// however many instances the batch carried.
  std::uint64_t cascade_feedback_batches = 0;
  std::uint64_t checkpoints = 0;  ///< shard checkpoints taken
  std::uint64_t crashes = 0;      ///< injected worker deaths reaped
  std::uint64_t recoveries = 0;   ///< shards rebuilt from checkpoint + log
  std::uint64_t replayed = 0;     ///< log arrivals re-fed during recoveries
  /// Key-range group splits issued (split_group + policy split orders).
  std::uint64_t splits = 0;
  /// Split groups reunified onto their primary shard (merge_group).
  std::uint64_t group_merges = 0;
  /// Hot shards the rebalancer had to leave alone: no whole-group move
  /// strictly improved the imbalance and no hosted group was splittable
  /// (plus any split order the runtime had to reject). Persistently
  /// nonzero under skew means the workload's hot keys collapse onto too
  /// few sensor routing keys for key-range splitting to help.
  std::uint64_t spillover_skipped_indivisible = 0;
};

/// One merged emission with its provenance tags: the arrival stamp it was
/// derived from and the *global* registration index of the definition that
/// produced it. The relaxed ordering tiers' consumer-facing unit —
/// per-definition subsequences and watermark windows are reconstructed
/// from these tags (poll_tagged/flush_tagged).
struct TaggedInstance {
  std::uint64_t stamp = 0;
  std::uint32_t def = 0;
  core::EventInstance instance;
};

/// Multi-core detection runtime: partitions registered definitions across
/// N worker shards, each running its own single-threaded DetectionEngine,
/// and merges per-shard emissions back into one deterministic stream.
///
/// **Placement** (add_definition): definitions sharing an event type id
/// are co-located (their instance sequence numbers share one counter, so
/// splitting them would renumber the stream) — they form a *definition
/// group*, the unit of migration; everything else goes to the
/// least-loaded shard, preferring — among equally loaded shards — one
/// that already hosts the definition's routing key (sensor / event-type
/// bucket), which caps arrival fan-out without unbalancing the shards.
///
/// **Routing** (ingest): a shard-level core::RoutingIndex (the same
/// structure the engine uses for candidate selection, keyed by shard
/// index) maps each arrival to the set of shards hosting a definition
/// whose filter can match it. The arrival is replicated to every such
/// shard — in particular, a shard hosting a wildcard definition receives
/// the full stream. Each definition lives on exactly one shard, so every
/// instance is produced exactly once.
///
/// **Ingest path** (hot): each shard's inbox is a bounded lock-free MPSC
/// ring (runtime/mpsc_ring.hpp) — producers claim slots with a CAS
/// sequence protocol, the worker consumes spin-then-park, and no mutex or
/// condvar sits between an arrival and its shard. queue_capacity is
/// enforced in *arrivals* by an atomic counter + eventcount (blocking
/// backpressure, oversized batches admitted into an empty inbox), control
/// items are capacity-exempt exactly as before. Workers drain runs of
/// items and publish outbox/watermark/stats once per drained run (capped
/// at kPublishBatch arrivals), so the out_mutex handshake is amortized
/// instead of per-item. RuntimeOptions::pin_shards optionally pins each
/// worker to a CPU.
///
/// **Rebalancing** (migrate_definition / rebalance_now / automatic
/// epochs): initial placement is load-blind, so a skewed stream can pin
/// one shard. The runtime keeps per-definition load counters (published
/// by the shard engines), attributes each epoch's cost to definition
/// groups, and lets a RebalancePolicy move groups between shards *live*:
/// the group's routing entries flip to the destination under the ingest
/// lock (an epoch barrier in the arrival stamp order), a pair of control
/// items flows through the two shards' stamp-ordered inboxes, the source
/// worker extracts the group's engine state after processing every
/// pre-barrier arrival (core::DetectionEngine::extract_definition_state),
/// and the destination worker implants it before processing any
/// post-barrier arrival — so no instance is dropped, duplicated, or
/// reordered (tests/runtime_migration_test.cpp proves stream equality
/// under forced migrations differentially).
///
/// **Ordering** (poll/flush): arrivals are stamped on ingest; each shard
/// processes its arrivals in stamp order and reports a processed-stamp
/// watermark. The merge releases an arrival's emissions only once every
/// recipient shard's watermark has passed its stamp, ordering instances by
/// (arrival stamp, definition registration index) — exactly the order a
/// single sequential DetectionEngine fed the same stream would emit
/// (tests/runtime_shard_test.cpp proves equality differentially).
///
/// **Hierarchical cascade** (RuntimeOptions::cascade): instances detected
/// at one layer become entities evaluated at the next (paper Fig. 2). A
/// dedicated coordinator thread drives each arrival's *cascade closure*:
/// once every recipient shard has processed the arrival, its merged
/// emissions (level 1) are routed through a stamp-versioned copy-on-write
/// view of the routing index (core::VersionedRouting) and re-ingested as
/// *feedback items* carrying the hierarchical sub-stamp
/// `(arrival stamp, depth, emit index)`, batched per (shard, level); the
/// recipients' level-2 emissions are gathered, merged and re-ingested in
/// turn, until a level is empty or the depth cap is reached. Workers
/// process work in sub-stamp order: each consumes the smaller of its
/// inbox head and feedback head, and an arrival is gated on the
/// *admission frontier* — the highest stamp below which every closure
/// has finished dispatching feedback. Up to
/// RuntimeOptions::cascade_pipeline closures are in flight concurrently;
/// because dispatch completion is serialized in stamp order, each
/// shard's feedback queue stays sub-stamp-ordered and buffer mutations
/// interleave exactly as in a sequential cascading engine at any
/// pipeline depth. The coordinator renumbers each closure level's
/// instance sequence numbers from per-group counters in closure order
/// (the identity while a group is unsplit; with a group split across
/// shards it restores the sequential assignment, which is what makes
/// split_group legal in cascade mode). Release honors the ordering tier:
/// the global tier merges whole closures in stamp order (byte-identical
/// to the sequential cascade), the relaxed tiers stream completed levels
/// out earlier (see RuntimeOptions::ordering). Migrations stay exact:
/// control items gate on the admission frontier of their barrier stamp,
/// and routing flips are published as new placement versions that each
/// in-flight closure resolves by its own stamp, so feedback for
/// pre-barrier stamps still reaches the group's old shard
/// (tests/runtime_cascade_test.cpp proves stream equality against
/// DetectionEngine::observe_cascading differentially, migrations
/// included, at several pipeline depths).
class ShardedEngineRuntime {
 public:
  ShardedEngineRuntime(core::ObserverId id, core::Layer layer, geom::Point location,
                       RuntimeOptions options = {});
  ~ShardedEngineRuntime();
  ShardedEngineRuntime(const ShardedEngineRuntime&) = delete;
  ShardedEngineRuntime& operator=(const ShardedEngineRuntime&) = delete;

  /// Registers a definition on its shard (see placement rules above).
  /// Registration is only allowed before the first ingest — later
  /// placement changes go through migration; throws std::logic_error
  /// afterwards. Filter/condition validation errors propagate from
  /// DetectionEngine::add_definition.
  void add_definition(core::EventDefinition def);

  /// Ingests one arrival: stamps it, replicates it to every interested
  /// shard's inbox, and returns. Detection runs on the shard workers;
  /// collect results with poll() or flush(). Blocks while a recipient
  /// inbox is full (backpressure). Thread-safe.
  void ingest(const core::Entity& entity, time_model::TimePoint now);
  /// Batched ingest: one routing pass and at most one inbox operation per
  /// shard for the whole batch, and the batch storage is shared between
  /// recipient shards — workers buffer arrivals by aliasing it, so no
  /// per-arrival entity copy is made at all. Memory tradeoff: one
  /// buffered entity keeps its whole ingest batch alive until evicted,
  /// so long-window definitions fed huge batches retain
  /// O(buffered slots x batch size) entities; prefer moderate batch
  /// sizes (hundreds) when windows are long.
  /// Equivalent to ingest(batch[i], nows[i]) for i in order.
  void ingest_batch(std::span<const core::Entity> batch,
                    std::span<const time_model::TimePoint> nows);
  /// Batched ingest where every arrival shares one observation time.
  void ingest_batch(std::span<const core::Entity> batch, time_model::TimePoint now);

  /// Returns the merged instances whose arrivals have been fully processed
  /// by every recipient shard, in stream order. Non-blocking; call
  /// periodically between ingests to keep per-shard output buffers short.
  [[nodiscard]] std::vector<core::EventInstance> poll();
  /// Waits until every ingested arrival has been processed, then returns
  /// the remainder of the merged stream.
  [[nodiscard]] std::vector<core::EventInstance> flush();

  /// poll()/flush() with (stamp, definition) provenance tags on every
  /// instance — the natural consumption shape for the relaxed ordering
  /// tiers (available in every tier).
  [[nodiscard]] std::vector<TaggedInstance> poll_tagged();
  [[nodiscard]] std::vector<TaggedInstance> flush_tagged();
  /// Monotone low watermark of the released stream: every emission whose
  /// arrival stamp is <= the returned value has already been handed out by
  /// a previous poll/flush, and no later release will carry a stamp at or
  /// below it. Stamps are assigned densely from 1 in arrival order, so
  /// after flush() the watermark equals the number of routed arrivals.
  [[nodiscard]] std::uint64_t low_watermark() const;

  /// Splits the definition group containing `def_index` by sensor-key
  /// range: its sensor-keyed definitions are partitioned by key hash
  /// around the median (core::routing_key_hash — keyless/wildcard
  /// definitions stay with the low sub-group) and the high sub-group
  /// migrates to `to_shard` at an epoch barrier, exactly like a group
  /// migration. Afterwards the two sub-groups rebalance independently
  /// (migrate_definition moves the sub-group containing the definition).
  /// Instance sequence numbers are partitioned by key range; the
  /// global_total_order merge renumbers them back to the sequential
  /// stream's values, so splitting is invisible there — the relaxed tiers
  /// surface the partitioned counters (each definition's sequence stays
  /// strictly increasing). In cascade mode the split barrier acts at
  /// sub-stamp granularity (after every pre-barrier closure item on the
  /// affected shards) and the coordinator renumbers sequences in closure
  /// order, so the cascade stream too is unchanged by a split — the
  /// SpilloverPolicy may therefore relieve cascade-hot groups. Returns
  /// false when the group is already split, spans fewer than two distinct
  /// sensor keys, or already lives on `to_shard`; throws
  /// std::out_of_range on bad indices. Thread-safe, callable mid-stream.
  bool split_group(std::size_t def_index, std::size_t to_shard);
  /// Reunifies a split group: the high sub-group migrates back to the
  /// primary shard (epoch barrier again) and the partition dissolves —
  /// the engine-side sequence counter resumes past both partitions' high
  /// water marks. Returns false when the group is not split. Thread-safe.
  bool merge_group(std::size_t def_index);
  /// True while the group containing `def_index` is split (introspection).
  [[nodiscard]] bool group_split(std::size_t def_index) const;

  /// Moves the definition group (event type) containing the `def_index`-th
  /// registered definition to `to_shard`, live, at an epoch barrier in the
  /// arrival stream (see class comment). Returns false when the group
  /// already lives there. Blocks until any previous migration of the same
  /// group has been implanted, then issues this one asynchronously (the
  /// workers complete it in stream order). Thread-safe; callable while
  /// ingestion is running. Throws std::out_of_range on bad indices.
  bool migrate_definition(std::size_t def_index, std::size_t to_shard);

  /// Runs one rebalance-policy pass immediately over the load observed
  /// since the last pass; returns the number of migrations issued. Usable
  /// with rebalance_epoch == 0 for externally paced rebalancing.
  std::size_t rebalance_now();

  /// Stops the runtime: wakes every producer parked in ingest backpressure
  /// (their ingest calls return without enqueuing more work), closes the
  /// shard rings, lets workers drain — in-flight migration handshakes
  /// still complete in decision order — and joins every thread. The ring
  /// close is serialized with ingestion and migration issuance (both hold
  /// the ingest lock), so a migration's control-item pair is never split
  /// across the close: either both sides are admitted and the workers
  /// finish the handshake, or neither is and its ticket is completed
  /// unblocked. Idempotent;
  /// the destructor calls it. Afterwards ingest is a no-op, poll() returns
  /// whatever was merged, and flush() returns immediately instead of
  /// waiting for work that was abandoned mid-shutdown. Safe to call from
  /// one thread while others are blocked in ingest (they are released
  /// before shutdown returns); do not destroy the runtime until those
  /// ingest calls have returned.
  void shutdown() noexcept;

  /// Summed counters; exact only at quiescence (see RuntimeStats).
  [[nodiscard]] RuntimeStats stats() const;

  /// Cumulative arrivals delivered to each shard's inbox — the load-
  /// spread view (max/mean over this is the skew a rebalancer narrows).
  [[nodiscard]] std::vector<std::uint64_t> shard_arrival_loads() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t definition_count() const { return def_shard_.size(); }
  /// Shard currently hosting the `def_index`-th registered definition
  /// (placement introspection for tests and load inspection).
  [[nodiscard]] std::size_t shard_of(std::size_t def_index) const;
  /// Definition group (co-located event type) of a definition.
  [[nodiscard]] std::size_t group_of(std::size_t def_index) const;
  [[nodiscard]] std::size_t group_count() const;

 private:
  /// A refcounted block of stamped arrivals, shared by all recipient
  /// shards (entities are copied into it once per ingest_batch call).
  struct Batch {
    std::vector<core::Entity> entities;
    std::vector<time_model::TimePoint> nows;
    std::vector<std::uint64_t> stamps;  ///< 0 = dropped (routed nowhere)
  };

  /// Rendezvous for one group migration: the source worker fills `states`
  /// and flips `ready`; the destination worker waits for it, implants,
  /// and flips `done` (migrate_definition of the same group waits on
  /// `done` before issuing a follow-up move).
  struct MigrationTicket {
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;  // guarded by m
    bool done = false;   // guarded by m
    std::vector<std::uint32_t> globals;  ///< group defs, ascending global index
    std::vector<core::DefinitionState> states;  ///< parallel to globals
  };

  /// One inbox entry: either the indices of `batch` routed to this shard,
  /// or (batch == nullptr) a migration control item — `send` extracts the
  /// ticket's definitions and publishes them, `!send` waits for the
  /// states and implants them. Control items ride the stamp-ordered inbox
  /// so they execute exactly at the migration's epoch barrier.
  struct WorkItem {
    std::shared_ptr<const Batch> batch;
    std::vector<std::uint32_t> indices;  // ascending (stamp order)
    std::shared_ptr<MigrationTicket> ticket;
    bool send = false;
    /// Control items in cascade mode: the migration's barrier stamp. The
    /// control acts at sub-stamp (barrier-1, +inf) — after every
    /// pre-barrier stamp's closure, before any post-barrier arrival.
    std::uint64_t barrier = 0;
    /// Cascade mode: next unprocessed position in `indices` (workers
    /// consume batch items one arrival at a time behind the closure
    /// frontier, mutating the head item in place through the ring's
    /// consumer peek — worker-owned, like the rest of the head cell).
    std::size_t next = 0;
    /// Checkpoint control item (batch and ticket both null): nonzero
    /// checkpoint id. The worker snapshots its engine state and truncates
    /// its replay log through this item.
    std::uint64_t ckpt = 0;
    /// Per-shard monotone push sequence, assigned under ingest_mutex_
    /// when checkpointing is on (0 otherwise): pairs ring items with
    /// their replay-log copies during recovery.
    std::uint64_t push_seq = 0;
  };

  /// Cascade mode: one derived instance re-ingested into a shard, keyed
  /// by its hierarchical sub-stamp. `entity` is shared across recipient
  /// shards (and aliased by any slot that buffers it); `now` is the
  /// originating arrival's observation time, exactly what the sequential
  /// cascading loop re-feeds with. The coordinator appends feedback in
  /// one batch per (shard, level) — a single queue splice and wake
  /// however many instances the level routed here. Feedback carries no
  /// inbox-capacity cost: at most cascade_pipeline closures are in
  /// flight, so the outstanding feedback is bounded by that many
  /// cascades' width.
  struct FeedbackItem {
    std::uint64_t stamp = 0;
    std::uint32_t depth = 0;  ///< depth of the instance being re-fed
    std::uint32_t sub = 0;    ///< its emit_index within (stamp, depth)
    std::shared_ptr<const core::Entity> entity;
    time_model::TimePoint now;
  };

  /// Cascade mode: a routing flip the coordinator publishes into its
  /// stamp-versioned routing view as a placement version effective from
  /// `barrier` — feedback for stamps before the barrier still resolves
  /// through the older version to the group's old shard, concurrent
  /// post-barrier closures through the new one.
  struct CascadeReroute {
    std::uint64_t barrier = 0;
    std::vector<std::uint32_t> defs;  ///< the group's global def indices
    std::uint32_t from = 0;
    std::uint32_t to = 0;
  };

  /// One processed arrival's emissions (tagged with *global* definition
  /// indices), in a shard's outbox. Only emitting arrivals enqueue a
  /// chunk; completion of silent arrivals is conveyed by the watermark.
  /// Cascade mode: (depth, sub) identify the source item — (0, 0) for the
  /// arrival itself, the feedback item's sub-stamp otherwise — and `now`
  /// carries the observation time forward for the next level's re-feeds.
  struct OutChunk {
    std::uint64_t stamp = 0;
    std::vector<core::Emission> emissions;
    std::uint32_t depth = 0;
    std::uint32_t sub = 0;
    time_model::TimePoint now;
  };

  /// A shard's serialized engine state at a checkpoint barrier: one frame
  /// per hosted definition (runtime/checkpoint.hpp, ascending local
  /// index), the cumulative stats to date, and the barrier's push
  /// sequence — log entries at or before it are covered by the frames.
  struct ShardCheckpoint {
    std::uint64_t push_seq = 0;
    core::EngineStats stats;
    std::vector<std::pair<std::uint32_t, std::string>> frames;  ///< (global, frame)
  };

  struct Shard {
    Shard(const core::ObserverId& id, core::Layer layer, geom::Point location,
          const core::EngineOptions& options, std::size_t inbox_slots)
        : engine(std::make_unique<core::DetectionEngine>(id, layer, location, options)),
          inbox(inbox_slots) {}

    /// Touched only by the worker; a pointer so crash recovery can swap
    /// in a fresh engine rebuilt from checkpoint + replay (the join of
    /// the dead worker orders the hand-off).
    std::unique_ptr<core::DetectionEngine> engine;
    /// local def index -> global. Written pre-start by add_definition and
    /// by the worker at implant time; the ring's release/acquire slot
    /// hand-off orders the pre-start writes before any worker read.
    std::vector<std::uint32_t> global_def;
    /// Inverse map (global -> local), worker-owned for the same reason;
    /// consulted when a send control item extracts a group.
    std::unordered_map<std::uint32_t, std::uint32_t> local_of;

    std::size_t index = 0;  ///< position in shards_ (pinning/stall hook)

    /// Lock-free stamp-ordered inbox. Producers (ingest + migration
    /// control) claim slots with the ring's CAS sequence protocol; the
    /// worker is the only consumer. Slot-capacity is queue_capacity plus
    /// headroom for capacity-exempt control items — the *arrival*-denominated
    /// queue_capacity contract is enforced by queued_arrivals below, not
    /// by ring fullness.
    MpscRing<WorkItem> inbox;
    /// Arrivals admitted but not yet fully processed (ring + in flight).
    /// Producers block (space_ec) while an admission would overflow
    /// queue_capacity — unless the inbox is empty, so oversized batches
    /// cannot block forever. The worker decrements as it finishes items.
    std::atomic<std::uint64_t> queued_arrivals{0};
    std::atomic<std::uint64_t> max_queued{0};  ///< high-water queued_arrivals
    std::atomic<bool> stop{false};
    EventCount space_ec;  ///< producers park for arrival-capacity space
    /// Cascade mode: the worker parks here (its wake sources — ring push,
    /// feedback push, closure-frontier advance, stop — are more than the
    /// ring alone can signal). Unused otherwise: the non-cascade worker
    /// parks inside MpscRing::pop.
    EventCount work_ec;

    /// Cascade mode: feedback items dispatched by the coordinator, in
    /// sub-stamp order, guarded by fb_mutex. Drained interleaved with the
    /// inbox by sub-stamp (the worker picks whichever head item has the
    /// smaller key). Not capacity-accounted (bounded by cascade_pipeline
    /// closures).
    std::mutex fb_mutex;
    std::deque<FeedbackItem> feedback;

    std::mutex out_mutex;                     ///< guards outbox/watermark pub
    std::condition_variable done_cv;          ///< flush waits for watermark
    std::deque<OutChunk> outbox;              ///< ascending stamp
    /// Set (under out_mutex) whenever a publish touches the outbox or the
    /// completion key; cleared by the coordinator's sweep. The pump polls
    /// it relaxed to skip out_mutex for shards with nothing new — the
    /// publisher's signal bump (a release the pump's snapshot acquires)
    /// orders the store, so a skipped shard is re-polled on the next pass.
    std::atomic<bool> out_dirty{false};
    /// Snapshot of engine.stats() published by the worker after each work
    /// item. stats() reads this (not the live engine counters, which only
    /// the worker may touch), so concurrent stats() is race-free — merely
    /// trailing the in-flight work until flush().
    core::EngineStats published_stats;        ///< guarded by out_mutex
    /// Per-definition cumulative loads, keyed by *global* index, published
    /// alongside published_stats; the rebalancer's cost attribution.
    std::vector<std::pair<std::uint32_t, core::DefinitionLoad>> published_def_loads;
    /// Highest stamp this shard has fully processed (its arrivals are
    /// stamp-ordered, so everything routed to it up to the watermark is
    /// done). Written under out_mutex *after* the matching outbox push;
    /// poll() reads it lock-free with acquire ordering.
    std::atomic<std::uint64_t> watermark{0};
    /// Cascade mode: sub-stamp of the last fully processed work item
    /// (arrival or feedback), published under out_mutex after the
    /// matching outbox push. The coordinator waits on it (done_cv) to
    /// know a level has drained on this shard. Monotone: workers consume
    /// in sub-stamp order.
    std::uint64_t ck_stamp = 0;               ///< guarded by out_mutex
    std::uint32_t ck_depth = 0;               ///< guarded by out_mutex
    std::uint32_t ck_sub = 0;                 ///< guarded by out_mutex
    std::uint64_t last_routed = 0;            ///< guarded by ingest_mutex_
    /// Control items admitted to this shard's inbox (migration sides and
    /// checkpoints), vs. fully handled. The per-definition-order flush
    /// waits for the two to meet so every send-side `sent_through` store
    /// is final before the last hold-fenced sweep. ctl_done may overcount
    /// across crash-recovery replays (a control can be re-handled), hence
    /// the >= comparison there.
    std::uint64_t ctl_pushed = 0;  ///< guarded by ingest_mutex_
    std::atomic<std::uint64_t> ctl_done{0};
    /// Highest migration barrier whose send side this shard has completed:
    /// every pre-barrier arrival routed here has been processed and its
    /// chunks published. The merge's release holds read it (seq_cst store
    /// after the send-side publish) to decide when a migration
    /// destination may release post-barrier chunks.
    std::atomic<std::uint64_t> sent_through{0};
    /// Cascade mode: true once this shard hosts (or was ever the
    /// destination of) a definition with an event-type or wildcard slot —
    /// i.e. it can receive feedback, so its arrivals must gate on the
    /// admission frontier. Monotone; shards that stay false run ahead of
    /// the frontier (bounded by kCascadeRunahead) since feedback provably
    /// never reaches them.
    std::atomic<bool> cascade_reachable{false};
    /// Cascade mode: this shard's admission frontier — the coordinator
    /// stores the largest stamp V such that no in-flight (or not yet
    /// activated) closure with stamp <= V can still dispatch feedback to
    /// this shard. The worker admits an item exactly when its gate is
    /// <= this frontier, so a shard outside every in-flight closure's
    /// reach overlaps later arrivals with those closures' roundtrips.
    std::atomic<std::uint64_t> admitted{0};
    /// Cascade mode: the frontier value the parked worker is waiting for,
    /// ~0 when it is not gate-blocked. Stored (seq_cst) before the
    /// worker's pre-park claim recheck; the coordinator's frontier store
    /// (also seq_cst) is followed by a load of this word, so either the
    /// worker re-checks the new frontier or the coordinator sees the
    /// parked gate and wakes it — advances below the gate skip the futex.
    std::atomic<std::uint64_t> parked_gate{~std::uint64_t{0}};

    // --- Crash recovery (all unused unless checkpoint_epoch != 0) ---
    /// Initial placement (global index, spec) in registration order:
    /// recovery before the first checkpoint rebuilds the engine from
    /// these. Written pre-start by add_definition only.
    std::vector<std::pair<std::uint32_t, core::EventDefinition>> initial_defs;
    /// Guards replay_log and checkpoint (producers append, the worker
    /// truncates at checkpoints, recovery and shutdown read).
    std::mutex log_mutex;
    /// Copies of every work item pushed since the last checkpoint, in
    /// push_seq order: appended right before the matching ring push
    /// (under ingest_mutex_), truncated by the worker at each
    /// checkpoint — the bounded replay window.
    std::deque<WorkItem> replay_log;
    std::optional<ShardCheckpoint> checkpoint;  ///< guarded by log_mutex
    /// Baseline added to the live engine's counters when publishing
    /// stats: a recovered engine only counts post-checkpoint work, so
    /// the checkpoint's cumulative stats carry over here. Worker-owned.
    core::EngineStats stats_base;
    /// push_seq of the last item whose effects were fully published;
    /// recovery replays log entries beyond it (earlier entries only
    /// rebuild engine state — their emissions already merged). Written
    /// by the worker, read by recovery and the shutdown ticket sweep.
    std::atomic<std::uint64_t> consumed_seq{0};
    /// push_seq of the last item popped off the ring: entries at or
    /// before it are replayed from the log alone, later ones also pop
    /// their ring copy. Worker-owned; the supervisor's join orders the
    /// hand-off to the replacement worker.
    std::uint64_t popped_seq = 0;
    std::uint64_t push_seq_next = 0;  ///< guarded by ingest_mutex_
    /// Set by a dying worker (crash_hook) or an interrupted recovery;
    /// the supervisor reaps and respawns, shutdown sweeps leftovers.
    std::atomic<bool> dead{false};

    std::thread worker;
  };

  /// One not-yet-merged arrival: its stamp and recipient-shard bitmask.
  /// In cascade mode `future` is the bitmask of shards its closure could
  /// ever dispatch feedback to (the union of the matched definitions'
  /// downstream reach under the placement at ingest, or all-ones once a
  /// migration has made the reachability table conservative): a shard
  /// outside it may run later arrivals while this closure is in flight.
  struct Pending {
    std::uint64_t stamp = 0;
    std::uint64_t mask = 0;
    std::uint64_t future = 0;
  };

  /// A definition group: the co-located definitions of one event type.
  /// When split, the group is two independently placed sub-groups: the
  /// *low* side (sensor keys hashing below split_point, plus every
  /// keyless/wildcard definition) stays on `shard`, the *high* side
  /// ([split_point, 2^64-1] — see core::KeyRange) lives on `high_shard`.
  /// All fields are guarded by ingest_mutex_; `ticket` serializes every
  /// move/split/merge of the group (one in flight at a time).
  struct Group {
    std::vector<std::uint32_t> defs;  ///< global indices, ascending
    std::uint32_t shard = 0;          ///< current host (low sub-group when split)
    std::shared_ptr<MigrationTicket> ticket;  ///< last migration; null if none
    bool split = false;
    std::uint32_t high_shard = 0;          ///< host of the high sub-group
    std::uint64_t split_point = 0;         ///< key-hash boundary (high: hash >= point)
    std::vector<std::uint32_t> high_defs;  ///< high sub-group, ascending
    // Splittability, maintained incrementally at registration: a group is
    // splittable iff its definitions span >= 2 distinct sensor-key hashes.
    bool has_key = false;
    bool multi_key = false;
    std::uint64_t first_key_hash = 0;
  };

  /// Cumulative per-definition load totals (rebalance epoch deltas).
  struct DefTotals {
    std::uint64_t routed = 0;
    std::uint64_t tried = 0;
    std::uint64_t buffered = 0;  ///< gauge, not deltaed
  };

  void worker_loop(Shard& shard);
  /// Publishes outbox chunks + stats/def-load snapshots and the watermark.
  void publish_work(Shard& shard, std::vector<OutChunk>& chunks, std::uint64_t last_stamp,
                    std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch);
  /// Worker body in cascade mode: consumes inbox + feedback in sub-stamp
  /// order, arrivals and control items gated behind the admission
  /// frontier.
  void worker_cascade_loop(Shard& shard);
  /// Executes a migration control item (send: extract + hand over;
  /// receive: wait + implant) and republishes snapshots. Shared by both
  /// worker loops.
  void handle_control(Shard& shard, WorkItem& item,
                      std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch);
  /// Cascade-mode publish: chunks + snapshots + the completion key of the
  /// last processed item, covering a whole run of items consumed since the
  /// previous publish (workers batch: one publish + one coordinator wake
  /// per admissible run, not per item). `watermark` is the run's newest
  /// fully-consumed arrival stamp (0 = the run had no arrivals).
  void publish_cascade(Shard& shard, std::vector<OutChunk>& chunks, std::uint64_t stamp,
                       std::uint32_t depth, std::uint32_t sub, std::uint64_t watermark,
                       std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch);
  /// Coordinator body: drives up to cascade_pipeline pending arrivals'
  /// cascade closures concurrently as non-blocking state machines,
  /// advancing the admission frontier as each closure finishes
  /// dispatching and merging closures in stamp order (see class comment).
  void cascade_loop();
  /// Bumps the progress counter and wakes the coordinator.
  void signal_cascade();
  /// Builds the definition-reachability table (cascade_future_): for each
  /// definition, the bitmask of shards hosting any definition reachable
  /// from its output type in one or more cascade steps. Called once under
  /// ingest_mutex_ before the first arrival is stamped; placements are
  /// the registration-time ones (migrations flip the table to all-ones,
  /// see issue_subset_locked).
  void build_cascade_graph();
  /// True once every shard in `mask` has processed sub-stamp (stamp,
  /// depth, sub) — i.e. published a ck at or beyond it.
  bool ck_reached_all(std::uint64_t mask, std::uint64_t stamp, std::uint32_t depth,
                      std::uint32_t sub);
  /// Appends merged instances that are ready into exactly one of the two
  /// sinks; merge_mutex_ must be held. Global-total-order release: stamp
  /// frontier gating + within-stamp definition sort + per-event-type
  /// sequence renumbering (non-cascade).
  void drain_ready_locked(std::vector<core::EventInstance>* plain,
                          std::vector<TaggedInstance>* tagged);
  /// Relaxed-tier release (per-definition / unordered): sweeps every
  /// shard's outbox to a fixpoint — per-definition order additionally
  /// fences migration destinations behind release holds — then advances
  /// the low watermark from the pending frontier, clamped by any chunk
  /// still unreleased. merge_mutex_ must be held.
  void drain_relaxed_locked(std::vector<core::EventInstance>* plain,
                            std::vector<TaggedInstance>* tagged);
  /// Tier- and mode-dispatching bodies of poll/flush (+_tagged).
  void poll_into(std::vector<core::EventInstance>* plain, std::vector<TaggedInstance>* tagged);
  void flush_into(std::vector<core::EventInstance>* plain, std::vector<TaggedInstance>* tagged);
  /// Appends one released emission to whichever sink is non-null.
  static void emit_to(std::vector<core::EventInstance>* plain,
                      std::vector<TaggedInstance>* tagged, std::uint64_t stamp,
                      core::Emission&& em);
  /// Flips routing/bookkeeping of `group` to `to` and enqueues the
  /// extract/implant control pair; ingest_mutex_ must be held and the
  /// group must have no migration in flight.
  void issue_migration_locked(std::uint32_t group, std::uint32_t to);
  /// Shared issuance core: flips routing/def_shard_/key bookkeeping for
  /// the `defs` subset of `group` (a whole group, or one side of a split)
  /// from `from` to `to`, installs the group ticket, registers the
  /// per-definition-order release hold, and pushes the control pair.
  /// Callers update Group host fields. ingest_mutex_ must be held.
  void issue_subset_locked(std::uint32_t group, std::vector<std::uint32_t> defs,
                           std::uint32_t from, std::uint32_t to);
  /// Computes the key-range partition of an unsplit `group` and issues the
  /// high sub-group's migration to `to`; returns false (no state changed)
  /// when the group cannot be split or already lives on `to`.
  /// ingest_mutex_ must be held; not supported in cascade mode.
  bool issue_split_locked(std::uint32_t group, std::uint32_t to);
  /// Blocks until `group`'s in-flight migration (if any) has implanted,
  /// releasing `lk` while waiting; false when shutdown interrupted.
  bool wait_group_ticket(std::unique_lock<std::mutex>& lk, std::uint32_t group);
  /// One policy pass over the epoch's group loads; ingest_mutex_ held.
  std::size_t rebalance_locked();
  /// Enqueues a control item, bypassing capacity (it carries no arrivals).
  void push_control(Shard& shard, WorkItem item);
  /// Assigns the item's push_seq and appends a copy to the shard's replay
  /// log; ingest_mutex_ must be held (checkpointing on only).
  void log_push_locked(Shard& shard, WorkItem& item);
  /// Worker handler for a checkpoint control item: serializes the hosted
  /// definitions' state, publishes the checkpoint, truncates the log.
  void take_checkpoint(Shard& shard, const WorkItem& item);
  /// Marks the worker dead and wakes the supervisor (worker thread only).
  void die(Shard& shard);
  /// Supervisor body: reaps dead workers and respawns them through
  /// recover_shard (runs only when crash_hook is set).
  void supervisor_loop();
  /// Rebuilds a dead shard on its replacement worker thread: fresh engine
  /// from the last checkpoint (or the initial placement), then replays
  /// the log — entries published before the crash only rebuild engine
  /// state, later ones publish normally and pop their ring copies so
  /// ring and log stay in lockstep. Returns false when shutdown
  /// interrupted the rebuild (the shard is re-marked dead).
  bool recover_shard(Shard& shard);
  /// Executes one replayed migration control item; `suppress` marks a
  /// control whose original handling was already published pre-crash.
  /// Returns false when shutdown interrupted the receive wait.
  bool replay_control(Shard& shard, WorkItem& item, bool suppress,
                      std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch);

  core::ObserverId id_;
  core::Layer layer_;
  geom::Point location_;
  RuntimeOptions options_;
  std::atomic<bool> shutdown_{false};  ///< set once by shutdown()
  /// Whether workers publish per-definition loads with each work item.
  /// False on the default configuration (rebalancing disabled and
  /// rebalance_now() never called), so the hot path skips the
  /// O(definitions) collection+copy entirely.
  std::atomic<bool> publish_loads_{false};
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Shard-level routing: def_idx in these routes is a *shard* index.
  core::RoutingIndex shard_routes_;
  std::unordered_map<std::string, std::uint32_t> type_group_;  ///< event type -> group
  std::vector<Group> groups_;                    // guarded by ingest_mutex_
  std::vector<core::EventDefinition> def_specs_;  ///< registration copies (routing updates)
  std::vector<std::uint32_t> def_group_;  ///< global def index -> group
  /// Routing keys hosted per shard, refcounted (placement affinity; keys
  /// follow their definitions on migration).
  std::vector<std::unordered_map<std::string, std::uint32_t>> shard_keys_;
  std::vector<std::size_t> shard_def_count_;
  std::vector<std::uint32_t> def_shard_;  ///< global def index -> shard
  /// 1 when the definition belongs to its group's high sub-group (guarded
  /// by ingest_mutex_; all zero while the group is unsplit).
  std::vector<std::uint8_t> def_high_;

  /// Serializes stamp assignment + inbox dispatch so every shard's inbox
  /// stays stamp-ordered even under concurrent ingestion. Also guards all
  /// placement state (groups_, def_shard_, shard_routes_, epoch loads).
  mutable std::mutex ingest_mutex_;
  bool started_ = false;                              // guarded by ingest_mutex_
  std::uint64_t next_stamp_ = 1;                      // guarded by ingest_mutex_
  std::vector<core::SlotRoute> route_scratch_;        // guarded by ingest_mutex_
  std::vector<std::vector<std::uint32_t>> dispatch_scratch_;  // guarded by ingest_mutex_
  std::vector<Pending> pending_scratch_;              // guarded by ingest_mutex_
  std::vector<std::uint64_t> shard_routed_;           // guarded by ingest_mutex_
  std::uint64_t epoch_arrivals_ = 0;                  // guarded by ingest_mutex_
  std::uint64_t migrations_ = 0;                      // guarded by ingest_mutex_
  std::uint64_t rebalance_passes_ = 0;                // guarded by ingest_mutex_
  std::vector<DefTotals> def_load_now_;               // guarded by ingest_mutex_
  std::vector<DefTotals> def_load_prev_;              // guarded by ingest_mutex_
  std::vector<MigrationOrder> order_scratch_;         // guarded by ingest_mutex_
  std::vector<GroupLoad> group_load_scratch_;         // guarded by ingest_mutex_
  std::vector<std::uint64_t> shard_load_scratch_;     // guarded by ingest_mutex_
  std::vector<std::uint32_t> high_row_scratch_;       // guarded by ingest_mutex_
  std::uint64_t ckpt_arrivals_ = 0;                   // guarded by ingest_mutex_
  std::uint64_t ckpt_seq_ = 0;                        // guarded by ingest_mutex_
  std::uint64_t splits_ = 0;                          // guarded by ingest_mutex_
  std::uint64_t group_merges_ = 0;                    // guarded by ingest_mutex_
  std::uint64_t spillover_skipped_ = 0;               // guarded by ingest_mutex_

  // --- Crash recovery (active only with crash_hook / checkpoint_epoch) ---
  std::thread supervisor_thread_;  ///< spawned iff crash_hook is set
  mutable std::mutex supervisor_mutex_;
  std::condition_variable supervisor_cv_;
  bool supervisor_stop_ = false;  // guarded by supervisor_mutex_
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> replayed_{0};

  /// Guards the merge frontier and runtime counters (poll vs ingest).
  mutable std::mutex merge_mutex_;
  std::deque<Pending> pending_;  // ascending stamp
  std::uint64_t arrivals_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t replicated_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t instances_ = 0;
  std::vector<core::Emission> gather_scratch_;  // guarded by merge_mutex_
  /// Released-stream low watermark (see low_watermark()); advanced by the
  /// tier-specific drains (and the cascade coordinator at closure).
  std::uint64_t low_watermark_ = 0;  // guarded by merge_mutex_
  /// Global-total-order, non-cascade: per-group (= per event type)
  /// released-instance counters — the merge assigns each released
  /// emission its sequential sequence number, which is the identity while
  /// the group is whole and restores stream exactness when it is split.
  /// Indexed by group; grown lazily (def_group_ is registration-frozen
  /// before the first pending arrival exists).
  std::vector<std::uint64_t> group_seq_;  // guarded by merge_mutex_
  /// Per-definition-order tier: release fences installed at migration
  /// issuance, one deque per *destination* shard in ascending barrier
  /// order. The destination may not release a chunk with stamp >= the
  /// front hold's barrier until the source shard has completed the send
  /// side (sent_through >= barrier) and released everything it published
  /// below the barrier — exactly the stamp-order hand-off a moved
  /// definition's stream needs.
  struct ReleaseHold {
    std::uint64_t barrier = 0;
    std::uint32_t from = 0;
  };
  std::vector<std::deque<ReleaseHold>> shard_holds_;   // guarded by merge_mutex_
  std::vector<std::uint64_t> sent_snap_scratch_;       // guarded by merge_mutex_
  std::vector<std::uint64_t> front_snap_scratch_;      // guarded by merge_mutex_
  /// Relaxed tiers: highest stamp every recipient shard has passed
  /// (pending_ is popped up to here; monotone). The published watermark
  /// is this frontier clamped below any still-unreleased chunk.
  std::uint64_t relaxed_frontier_ = 0;  // guarded by merge_mutex_

  // --- Cascade mode (all unused unless options_.cascade) ---
  /// The coordinator's stamp-versioned copy-on-write routing view:
  /// registration mirrors shard_routes_ at definition granularity; after
  /// start it is touched only by the coordinator thread, which publishes
  /// queued CascadeReroutes as placement versions effective from their
  /// barrier and resolves each in-flight closure through the version at
  /// its own stamp.
  core::VersionedRouting cascade_routes_;
  /// Ingest-side twin of the coordinator's definition index (collect() is
  /// lazily self-compacting, so the two threads cannot share one): maps
  /// an arrival to its matched definitions so ingest can stamp each
  /// Pending with its closure's downstream-reach shard mask.
  core::RoutingIndex cascade_ingest_routes_;
  /// Per definition: bitmask of shards hosting any definition reachable
  /// from its output type (1+ cascade steps) under registration-time
  /// placement. Built once by build_cascade_graph() under ingest_mutex_
  /// before the first stamp; immutable afterwards (the coordinator reads
  /// it concurrently). Migrations make it stale, so the first one flips
  /// cascade_conservative_ and new arrivals carry an all-ones reach.
  std::vector<std::uint64_t> cascade_future_;
  bool cascade_graph_built_ = false;   // guarded by ingest_mutex_
  bool cascade_conservative_ = false;  // guarded by ingest_mutex_
  std::thread cascade_thread_;
  /// Guards the coordinator's wake-up state and the reroute queue.
  /// Coordinator wake protocol: publishers bump cascade_signal_ (seq_cst
  /// RMW, a release) and notify cascade_ec_ — one fenced load when the
  /// coordinator is awake, no mutex on the publish fast path. The
  /// coordinator snapshots the counter before a pass and parks only if it
  /// is unchanged after a no-progress pass (EventCount's Dekker pair makes
  /// the sleep race-free). cascade_mutex_ now guards only reroutes_.
  mutable std::mutex cascade_mutex_;
  EventCount cascade_ec_;
  std::atomic<std::uint64_t> cascade_signal_{0};
  std::atomic<bool> cascade_stop_{false};
  std::deque<CascadeReroute> reroutes_;  // guarded by cascade_mutex_, ascending barrier
  /// Nonzero when reroutes_ has entries; lets the pump skip the mutex on
  /// the (overwhelmingly common) reroute-free pass. Bumped under
  /// cascade_mutex_ before the signal, cleared under it by the drain.
  std::atomic<std::uint32_t> reroutes_pending_{0};
  /// Global admission frontier: the stamp immediately below the first
  /// in-flight closure that has not finished dispatching feedback. Every
  /// per-shard frontier (Shard::admitted, the reachability-refined gate
  /// feedback-reachable shards use) is at least this; shards that can
  /// never receive feedback run ahead of it by up to kCascadeRunahead,
  /// which bounds coordinator-side buffering. An item with gate g
  /// (arrival stamp s gates on s-1, control barrier b on b-1) is
  /// admissible at a shard once g <= that shard's frontier: no smaller
  /// sub-stamp can ever reach the shard's queues again, and the
  /// per-shard inbox/feedback merge orders what is already there.
  std::atomic<std::uint64_t> admitted_through_{0};
  /// High-water concurrent closures and per-(shard, level) feedback
  /// batches (RuntimeStats mirrors; written by the coordinator).
  std::atomic<std::uint64_t> closures_in_flight_max_{0};
  std::atomic<std::uint64_t> cascade_feedback_batches_{0};
  /// False while no registered definition can match an event instance
  /// (no event-type or wildcard slot): feedback then provably never
  /// exists and workers skip the closure gate entirely.
  std::atomic<bool> feedback_possible_{false};
  std::condition_variable merged_cv_;  ///< with merge_mutex_: closure progress
  std::vector<TaggedInstance> cascade_out_;       // guarded by merge_mutex_
  std::uint64_t last_stamp_assigned_ = 0;         // guarded by merge_mutex_
  std::uint64_t cascade_reingested_ = 0;          // guarded by merge_mutex_
  std::uint64_t cascade_truncated_ = 0;           // guarded by merge_mutex_
};

}  // namespace stem::runtime
