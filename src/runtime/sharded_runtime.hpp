#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/routing.hpp"
#include "runtime/rebalance.hpp"

namespace stem::runtime {

/// Sharded-runtime tuning knobs.
struct RuntimeOptions {
  /// Worker shard count; clamped to [1, 64] (recipient sets are bitmasks).
  std::size_t shards = 4;
  /// Per-shard inbox capacity in arrivals. Ingestion blocks (backpressure)
  /// while a recipient shard's inbox is full, so an overwhelmed consumer
  /// throttles producers instead of growing queues without bound.
  std::size_t queue_capacity = 4096;
  /// Arrivals between automatic rebalance-policy passes; 0 disables
  /// adaptive rebalancing (placement then changes only via
  /// migrate_definition()). Each pass attributes the epoch's load to
  /// definition groups from the engines' per-definition counters and lets
  /// the policy issue migrations.
  std::size_t rebalance_epoch = 0;
  /// Policy consulted each epoch; defaults to SpilloverPolicy (migrate the
  /// highest-cost movable group off any shard above 1.5x the mean load)
  /// when rebalancing is enabled and no policy is supplied.
  std::shared_ptr<RebalancePolicy> rebalance_policy;
  /// Options forwarded to every shard's DetectionEngine.
  core::EngineOptions engine;
};

/// Aggregate runtime counters. Engine counters are owned per shard (each
/// shard engine is single-threaded) and summed on read from per-shard
/// snapshots — they are never written concurrently, and reading while
/// ingestion is in flight is safe but trails the unprocessed work. Totals
/// are exact after flush().
struct RuntimeStats {
  core::EngineStats engine;       ///< summed over shard engines
  std::uint64_t arrivals = 0;     ///< entities accepted for processing
  std::uint64_t deliveries = 0;   ///< shard deliveries (>= arrivals)
  std::uint64_t replicated = 0;   ///< deliveries beyond the first per arrival
  std::uint64_t dropped = 0;      ///< arrivals no shard was interested in
  std::uint64_t instances = 0;    ///< instances merged out so far
  std::uint64_t migrations = 0;   ///< definition-group migrations issued
  std::uint64_t rebalance_passes = 0;  ///< automatic policy passes run
  std::uint64_t max_inbox = 0;    ///< high-water inbox depth (arrivals), any shard
};

/// Multi-core detection runtime: partitions registered definitions across
/// N worker shards, each running its own single-threaded DetectionEngine,
/// and merges per-shard emissions back into one deterministic stream.
///
/// **Placement** (add_definition): definitions sharing an event type id
/// are co-located (their instance sequence numbers share one counter, so
/// splitting them would renumber the stream) — they form a *definition
/// group*, the unit of migration; everything else goes to the
/// least-loaded shard, preferring — among equally loaded shards — one
/// that already hosts the definition's routing key (sensor / event-type
/// bucket), which caps arrival fan-out without unbalancing the shards.
///
/// **Routing** (ingest): a shard-level core::RoutingIndex (the same
/// structure the engine uses for candidate selection, keyed by shard
/// index) maps each arrival to the set of shards hosting a definition
/// whose filter can match it. The arrival is replicated to every such
/// shard — in particular, a shard hosting a wildcard definition receives
/// the full stream. Each definition lives on exactly one shard, so every
/// instance is produced exactly once.
///
/// **Rebalancing** (migrate_definition / rebalance_now / automatic
/// epochs): initial placement is load-blind, so a skewed stream can pin
/// one shard. The runtime keeps per-definition load counters (published
/// by the shard engines), attributes each epoch's cost to definition
/// groups, and lets a RebalancePolicy move groups between shards *live*:
/// the group's routing entries flip to the destination under the ingest
/// lock (an epoch barrier in the arrival stamp order), a pair of control
/// items flows through the two shards' stamp-ordered inboxes, the source
/// worker extracts the group's engine state after processing every
/// pre-barrier arrival (core::DetectionEngine::extract_definition_state),
/// and the destination worker implants it before processing any
/// post-barrier arrival — so no instance is dropped, duplicated, or
/// reordered (tests/runtime_migration_test.cpp proves stream equality
/// under forced migrations differentially).
///
/// **Ordering** (poll/flush): arrivals are stamped on ingest; each shard
/// processes its arrivals in stamp order and reports a processed-stamp
/// watermark. The merge releases an arrival's emissions only once every
/// recipient shard's watermark has passed its stamp, ordering instances by
/// (arrival stamp, definition registration index) — exactly the order a
/// single sequential DetectionEngine fed the same stream would emit
/// (tests/runtime_shard_test.cpp proves equality differentially).
class ShardedEngineRuntime {
 public:
  ShardedEngineRuntime(core::ObserverId id, core::Layer layer, geom::Point location,
                       RuntimeOptions options = {});
  ~ShardedEngineRuntime();
  ShardedEngineRuntime(const ShardedEngineRuntime&) = delete;
  ShardedEngineRuntime& operator=(const ShardedEngineRuntime&) = delete;

  /// Registers a definition on its shard (see placement rules above).
  /// Registration is only allowed before the first ingest — later
  /// placement changes go through migration; throws std::logic_error
  /// afterwards. Filter/condition validation errors propagate from
  /// DetectionEngine::add_definition.
  void add_definition(core::EventDefinition def);

  /// Ingests one arrival: stamps it, replicates it to every interested
  /// shard's inbox, and returns. Detection runs on the shard workers;
  /// collect results with poll() or flush(). Blocks while a recipient
  /// inbox is full (backpressure). Thread-safe.
  void ingest(const core::Entity& entity, time_model::TimePoint now);
  /// Batched ingest: one routing pass and at most one inbox operation per
  /// shard for the whole batch, and the batch storage is shared between
  /// recipient shards (each arrival is copied once, regardless of
  /// replication). Equivalent to ingest(batch[i], nows[i]) for i in order.
  void ingest_batch(std::span<const core::Entity> batch,
                    std::span<const time_model::TimePoint> nows);
  /// Batched ingest where every arrival shares one observation time.
  void ingest_batch(std::span<const core::Entity> batch, time_model::TimePoint now);

  /// Returns the merged instances whose arrivals have been fully processed
  /// by every recipient shard, in stream order. Non-blocking; call
  /// periodically between ingests to keep per-shard output buffers short.
  [[nodiscard]] std::vector<core::EventInstance> poll();
  /// Waits until every ingested arrival has been processed, then returns
  /// the remainder of the merged stream.
  [[nodiscard]] std::vector<core::EventInstance> flush();

  /// Moves the definition group (event type) containing the `def_index`-th
  /// registered definition to `to_shard`, live, at an epoch barrier in the
  /// arrival stream (see class comment). Returns false when the group
  /// already lives there. Blocks until any previous migration of the same
  /// group has been implanted, then issues this one asynchronously (the
  /// workers complete it in stream order). Thread-safe; callable while
  /// ingestion is running. Throws std::out_of_range on bad indices.
  bool migrate_definition(std::size_t def_index, std::size_t to_shard);

  /// Runs one rebalance-policy pass immediately over the load observed
  /// since the last pass; returns the number of migrations issued. Usable
  /// with rebalance_epoch == 0 for externally paced rebalancing.
  std::size_t rebalance_now();

  /// Summed counters; exact only at quiescence (see RuntimeStats).
  [[nodiscard]] RuntimeStats stats() const;

  /// Cumulative arrivals delivered to each shard's inbox — the load-
  /// spread view (max/mean over this is the skew a rebalancer narrows).
  [[nodiscard]] std::vector<std::uint64_t> shard_arrival_loads() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t definition_count() const { return def_shard_.size(); }
  /// Shard currently hosting the `def_index`-th registered definition
  /// (placement introspection for tests and load inspection).
  [[nodiscard]] std::size_t shard_of(std::size_t def_index) const;
  /// Definition group (co-located event type) of a definition.
  [[nodiscard]] std::size_t group_of(std::size_t def_index) const;
  [[nodiscard]] std::size_t group_count() const;

 private:
  /// A refcounted block of stamped arrivals, shared by all recipient
  /// shards (entities are copied into it once per ingest_batch call).
  struct Batch {
    std::vector<core::Entity> entities;
    std::vector<time_model::TimePoint> nows;
    std::vector<std::uint64_t> stamps;  ///< 0 = dropped (routed nowhere)
  };

  /// Rendezvous for one group migration: the source worker fills `states`
  /// and flips `ready`; the destination worker waits for it, implants,
  /// and flips `done` (migrate_definition of the same group waits on
  /// `done` before issuing a follow-up move).
  struct MigrationTicket {
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;  // guarded by m
    bool done = false;   // guarded by m
    std::vector<std::uint32_t> globals;  ///< group defs, ascending global index
    std::vector<core::DefinitionState> states;  ///< parallel to globals
  };

  /// One inbox entry: either the indices of `batch` routed to this shard,
  /// or (batch == nullptr) a migration control item — `send` extracts the
  /// ticket's definitions and publishes them, `!send` waits for the
  /// states and implants them. Control items ride the stamp-ordered inbox
  /// so they execute exactly at the migration's epoch barrier.
  struct WorkItem {
    std::shared_ptr<const Batch> batch;
    std::vector<std::uint32_t> indices;  // ascending (stamp order)
    std::shared_ptr<MigrationTicket> ticket;
    bool send = false;
  };

  /// One processed arrival's emissions (tagged with *global* definition
  /// indices), in a shard's outbox. Only emitting arrivals enqueue a
  /// chunk; completion of silent arrivals is conveyed by the watermark.
  struct OutChunk {
    std::uint64_t stamp = 0;
    std::vector<core::Emission> emissions;
  };

  struct Shard {
    Shard(const core::ObserverId& id, core::Layer layer, geom::Point location,
          const core::EngineOptions& options)
        : engine(id, layer, location, options) {}

    core::DetectionEngine engine;             ///< touched only by the worker
    /// local def index -> global. Written pre-start by add_definition and
    /// by the worker at implant time; the inbox mutex hand-off orders the
    /// pre-start writes before any worker read.
    std::vector<std::uint32_t> global_def;
    /// Inverse map (global -> local), worker-owned for the same reason;
    /// consulted when a send control item extracts a group.
    std::unordered_map<std::uint32_t, std::uint32_t> local_of;

    std::mutex in_mutex;                      ///< guards inbox/queued/stop
    std::condition_variable work_cv;          ///< worker waits for work
    std::condition_variable space_cv;         ///< producers wait for space
    std::deque<WorkItem> inbox;
    std::size_t queued_arrivals = 0;          ///< inbox + in-flight arrivals
    std::uint64_t max_queued = 0;             ///< high-water queued_arrivals
    bool stop = false;

    std::mutex out_mutex;                     ///< guards outbox/watermark pub
    std::condition_variable done_cv;          ///< flush waits for watermark
    std::deque<OutChunk> outbox;              ///< ascending stamp
    /// Snapshot of engine.stats() published by the worker after each work
    /// item. stats() reads this (not the live engine counters, which only
    /// the worker may touch), so concurrent stats() is race-free — merely
    /// trailing the in-flight work until flush().
    core::EngineStats published_stats;        ///< guarded by out_mutex
    /// Per-definition cumulative loads, keyed by *global* index, published
    /// alongside published_stats; the rebalancer's cost attribution.
    std::vector<std::pair<std::uint32_t, core::DefinitionLoad>> published_def_loads;
    /// Highest stamp this shard has fully processed (its arrivals are
    /// stamp-ordered, so everything routed to it up to the watermark is
    /// done). Written under out_mutex *after* the matching outbox push;
    /// poll() reads it lock-free with acquire ordering.
    std::atomic<std::uint64_t> watermark{0};
    std::uint64_t last_routed = 0;            ///< guarded by ingest_mutex_

    std::thread worker;
  };

  /// One not-yet-merged arrival: its stamp and recipient-shard bitmask.
  struct Pending {
    std::uint64_t stamp = 0;
    std::uint64_t mask = 0;
  };

  /// A definition group: the co-located definitions of one event type.
  struct Group {
    std::vector<std::uint32_t> defs;  ///< global indices, ascending
    std::uint32_t shard = 0;          ///< current host (guarded by ingest_mutex_)
    std::shared_ptr<MigrationTicket> ticket;  ///< last migration; null if none
  };

  /// Cumulative per-definition load totals (rebalance epoch deltas).
  struct DefTotals {
    std::uint64_t routed = 0;
    std::uint64_t tried = 0;
    std::uint64_t buffered = 0;  ///< gauge, not deltaed
  };

  void worker_loop(Shard& shard);
  /// Publishes outbox chunks + stats/def-load snapshots and the watermark.
  void publish_work(Shard& shard, std::vector<OutChunk>& chunks, std::uint64_t last_stamp,
                    std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch);
  /// Appends merged instances that are ready; merge_mutex_ must be held.
  void drain_ready_locked(std::vector<core::EventInstance>& out);
  /// Flips routing/bookkeeping of `group` to `to` and enqueues the
  /// extract/implant control pair; ingest_mutex_ must be held and the
  /// group must have no migration in flight.
  void issue_migration_locked(std::uint32_t group, std::uint32_t to);
  /// One policy pass over the epoch's group loads; ingest_mutex_ held.
  std::size_t rebalance_locked();
  /// Enqueues a control item, bypassing capacity (it carries no arrivals).
  static void push_control(Shard& shard, WorkItem item);

  core::ObserverId id_;
  core::Layer layer_;
  geom::Point location_;
  RuntimeOptions options_;
  /// Whether workers publish per-definition loads with each work item.
  /// False on the default configuration (rebalancing disabled and
  /// rebalance_now() never called), so the hot path skips the
  /// O(definitions) collection+copy entirely.
  std::atomic<bool> publish_loads_{false};
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Shard-level routing: def_idx in these routes is a *shard* index.
  core::RoutingIndex shard_routes_;
  std::unordered_map<std::string, std::uint32_t> type_group_;  ///< event type -> group
  std::vector<Group> groups_;                    // guarded by ingest_mutex_
  std::vector<core::EventDefinition> def_specs_;  ///< registration copies (routing updates)
  std::vector<std::uint32_t> def_group_;  ///< global def index -> group
  /// Routing keys hosted per shard, refcounted (placement affinity; keys
  /// follow their definitions on migration).
  std::vector<std::unordered_map<std::string, std::uint32_t>> shard_keys_;
  std::vector<std::size_t> shard_def_count_;
  std::vector<std::uint32_t> def_shard_;  ///< global def index -> shard

  /// Serializes stamp assignment + inbox dispatch so every shard's inbox
  /// stays stamp-ordered even under concurrent ingestion. Also guards all
  /// placement state (groups_, def_shard_, shard_routes_, epoch loads).
  mutable std::mutex ingest_mutex_;
  bool started_ = false;                              // guarded by ingest_mutex_
  std::uint64_t next_stamp_ = 1;                      // guarded by ingest_mutex_
  std::vector<core::SlotRoute> route_scratch_;        // guarded by ingest_mutex_
  std::vector<std::vector<std::uint32_t>> dispatch_scratch_;  // guarded by ingest_mutex_
  std::vector<Pending> pending_scratch_;              // guarded by ingest_mutex_
  std::vector<std::uint64_t> shard_routed_;           // guarded by ingest_mutex_
  std::uint64_t epoch_arrivals_ = 0;                  // guarded by ingest_mutex_
  std::uint64_t migrations_ = 0;                      // guarded by ingest_mutex_
  std::uint64_t rebalance_passes_ = 0;                // guarded by ingest_mutex_
  std::vector<DefTotals> def_load_now_;               // guarded by ingest_mutex_
  std::vector<DefTotals> def_load_prev_;              // guarded by ingest_mutex_
  std::vector<MigrationOrder> order_scratch_;         // guarded by ingest_mutex_
  std::vector<GroupLoad> group_load_scratch_;         // guarded by ingest_mutex_
  std::vector<std::uint64_t> shard_load_scratch_;     // guarded by ingest_mutex_

  /// Guards the merge frontier and runtime counters (poll vs ingest).
  mutable std::mutex merge_mutex_;
  std::deque<Pending> pending_;  // ascending stamp
  std::uint64_t arrivals_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t replicated_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t instances_ = 0;
  std::vector<core::Emission> gather_scratch_;  // guarded by merge_mutex_
};

}  // namespace stem::runtime
