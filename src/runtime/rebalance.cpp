#include "runtime/rebalance.hpp"

#include <algorithm>
#include <numeric>

namespace stem::runtime {

void SpilloverPolicy::decide(const RebalanceView& view, std::vector<MigrationOrder>& out) {
  const std::size_t shards = view.shard_load.size();
  if (shards < 2 || view.groups.empty()) return;

  const std::uint64_t total =
      std::accumulate(view.shard_load.begin(), view.shard_load.end(), std::uint64_t{0});
  if (total == 0) return;
  const double mean = static_cast<double>(total) / static_cast<double>(shards);
  const double hot = options_.overload_factor * mean;

  // Working copy of the loads so one pass's picks stay consistent.
  std::vector<std::uint64_t> load(view.shard_load.begin(), view.shard_load.end());
  std::vector<std::uint32_t> by_load(shards);
  std::iota(by_load.begin(), by_load.end(), 0);
  std::sort(by_load.begin(), by_load.end(),
            [&](const std::uint32_t a, const std::uint32_t b) { return load[a] > load[b]; });

  std::size_t issued = 0;
  for (const std::uint32_t src : by_load) {
    if (options_.max_migrations != 0 && issued >= options_.max_migrations) break;
    // Hotness is judged on the epoch's observed loads, not the working
    // copy: a shard that merely *received* a group this pass must not be
    // treated as a fresh hotspot (that would churn groups within one
    // pass); it gets its own epoch of observed load first.
    if (static_cast<double>(view.shard_load[src]) <= hot) continue;

    const auto dst = static_cast<std::uint32_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    if (dst == src) continue;

    // Highest-cost movable group on the hot shard whose move strictly
    // shrinks the source-destination gap.
    const GroupLoad* pick = nullptr;
    for (const GroupLoad& g : view.groups) {
      if (g.shard != src || !g.movable || g.cost == 0) continue;
      if (load[dst] + g.cost >= load[src]) continue;
      if (pick == nullptr || g.cost > pick->cost) pick = &g;
    }
    if (pick != nullptr) {
      out.push_back(MigrationOrder{pick->group, dst});
      load[src] -= pick->cost;
      load[dst] += pick->cost;
      ++issued;
      continue;
    }

    // No whole-group move strictly improves — the shard is hot because of
    // an indivisible group. Split the highest-cost splittable one by
    // sensor-key range instead, planning on roughly half its cost moving
    // (the runtime partitions by key hash, so the exact share depends on
    // the key skew). Acceptance mirrors the whole-move rule: the
    // destination must stay below the source's pre-split load, so the
    // cluster's peak strictly drops even when the group *is* the whole
    // hot load. Otherwise record the skip.
    const GroupLoad* cut = nullptr;
    for (const GroupLoad& g : view.groups) {
      if (g.shard != src || !g.movable || !g.splittable || g.cost == 0) continue;
      if (load[dst] + g.cost / 2 >= load[src]) continue;
      if (cut == nullptr || g.cost > cut->cost) cut = &g;
    }
    if (cut == nullptr) {
      if (view.skipped_indivisible != nullptr) ++*view.skipped_indivisible;
      continue;
    }
    out.push_back(MigrationOrder{cut->group, dst, true});
    load[src] -= cut->cost / 2;
    load[dst] += cut->cost / 2;
    ++issued;
  }
}

}  // namespace stem::runtime
