#include "runtime/sharded_runtime.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace stem::runtime {

namespace {

/// Kind-prefixed routing key of a keyed slot signature, or empty.
std::string routing_key(const core::FilterSignature& sig) {
  switch (sig.kind) {
    case core::FilterSignature::Kind::kSensor:
      return "s:" + sig.key;
    case core::FilterSignature::Kind::kEventType:
      return "t:" + sig.key;
    case core::FilterSignature::Kind::kAny:
    case core::FilterSignature::Kind::kNever:
      return {};
  }
  return {};
}

}  // namespace

ShardedEngineRuntime::ShardedEngineRuntime(core::ObserverId id, core::Layer layer,
                                           geom::Point location, RuntimeOptions options)
    : id_(std::move(id)), layer_(layer), location_(location), options_(options) {
  options_.shards = std::clamp<std::size_t>(options_.shards, 1, 64);
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(id_, layer_, location_, options_.engine));
  }
  shard_keys_.resize(options_.shards);
  shard_def_count_.assign(options_.shards, 0);
  dispatch_scratch_.resize(options_.shards);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    shard->worker = std::thread([this, s] { worker_loop(*s); });
  }
}

ShardedEngineRuntime::~ShardedEngineRuntime() {
  for (auto& shard : shards_) {
    {
      const std::lock_guard lk(shard->in_mutex);
      shard->stop = true;
    }
    shard->work_cv.notify_all();
    shard->space_cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedEngineRuntime::add_definition(core::EventDefinition def) {
  const std::lock_guard lk(ingest_mutex_);
  if (started_) {
    throw std::logic_error(
        "ShardedEngineRuntime: add_definition after ingestion started (placement is static)");
  }

  // Placement. Same event type => same shard: definitions sharing a type
  // share an instance sequence counter, and splitting them would renumber
  // the merged stream relative to a sequential engine.
  std::uint32_t shard = 0;
  if (const auto it = type_shard_.find(def.id.value()); it != type_shard_.end()) {
    shard = it->second;
  } else {
    std::vector<std::string> keys;
    for (const core::SlotSpec& slot : def.slots) {
      if (std::string key = routing_key(slot.filter.signature()); !key.empty()) {
        keys.push_back(std::move(key));
      }
    }
    const auto affine = [&](const std::size_t s) {
      return std::any_of(keys.begin(), keys.end(),
                         [&](const std::string& k) { return shard_keys_[s].contains(k); });
    };
    // Least-loaded shard; among equals prefer one already hosting one of
    // the definition's routing keys (bounds fan-out at equal balance).
    bool best_affine = affine(0);
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      if (shard_def_count_[s] > shard_def_count_[shard]) continue;
      const bool a = affine(s);
      if (shard_def_count_[s] < shard_def_count_[shard] || (a && !best_affine)) {
        shard = static_cast<std::uint32_t>(s);
        best_affine = a;
      }
    }
  }

  // Register with the shard engine first: it validates and may throw, and
  // must not leave any placement state (type_shard_ included) half-updated.
  Shard& host = *shards_[shard];
  host.engine.add_definition(def);

  type_shard_.try_emplace(def.id.value(), shard);
  const auto global = static_cast<std::uint32_t>(def_shard_.size());
  host.global_def.push_back(global);
  def_shard_.push_back(shard);
  ++shard_def_count_[shard];
  for (const core::SlotSpec& slot : def.slots) {
    if (std::string key = routing_key(slot.filter.signature()); !key.empty()) {
      shard_keys_[shard].insert(std::move(key));
    }
  }
  // Collapsed: the per-arrival collect() walk stays O(shards) per key,
  // however many co-located definitions share it.
  shard_routes_.add_collapsed(def, shard);
}

void ShardedEngineRuntime::ingest(const core::Entity& entity, time_model::TimePoint now) {
  ingest_batch(std::span<const core::Entity>(&entity, 1),
               std::span<const time_model::TimePoint>(&now, 1));
}

void ShardedEngineRuntime::ingest_batch(std::span<const core::Entity> batch,
                                        time_model::TimePoint now) {
  const std::vector<time_model::TimePoint> nows(batch.size(), now);
  ingest_batch(batch, nows);
}

void ShardedEngineRuntime::ingest_batch(std::span<const core::Entity> batch,
                                        std::span<const time_model::TimePoint> nows) {
  if (batch.size() != nows.size()) {
    throw std::invalid_argument("ShardedEngineRuntime::ingest_batch: " +
                                std::to_string(batch.size()) + " entities but " +
                                std::to_string(nows.size()) + " time points");
  }
  if (batch.empty()) return;

  auto block = std::make_shared<Batch>();
  block->entities.assign(batch.begin(), batch.end());
  block->nows.assign(nows.begin(), nows.end());
  block->stamps.assign(batch.size(), 0);

  const std::lock_guard ingest_lk(ingest_mutex_);
  started_ = true;

  // Route + stamp the whole batch into ingest-local scratch; merge_mutex_
  // is taken only for the bulk pending_/counter append below, so a large
  // batch's routing pass never stalls a concurrent poll() or stats().
  for (auto& indices : dispatch_scratch_) indices.clear();
  pending_scratch_.clear();
  std::uint64_t dropped = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t replicated = 0;
  for (std::size_t i = 0; i < block->entities.size(); ++i) {
    route_scratch_.clear();
    shard_routes_.collect(block->entities[i], route_scratch_,
                          [](const core::SlotRoute&) { return true; });
    std::uint64_t mask = 0;
    for (const core::SlotRoute r : route_scratch_) mask |= std::uint64_t{1} << r.def_idx;
    if (mask == 0) {
      ++dropped;
      continue;  // no shard hosts a possibly-matching definition
    }
    const std::uint64_t stamp = next_stamp_++;
    block->stamps[i] = stamp;
    pending_scratch_.push_back(Pending{stamp, mask});
    bool first = true;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const auto s = static_cast<std::size_t>(std::countr_zero(m));
      dispatch_scratch_[s].push_back(static_cast<std::uint32_t>(i));
      shards_[s]->last_routed = stamp;
      ++deliveries;
      if (!first) ++replicated;
      first = false;
    }
  }
  {
    const std::lock_guard merge_lk(merge_mutex_);
    pending_.insert(pending_.end(), pending_scratch_.begin(), pending_scratch_.end());
    arrivals_ += pending_scratch_.size();
    deliveries_ += deliveries;
    replicated_ += replicated;
    dropped_ += dropped;
  }

  const std::shared_ptr<const Batch> frozen = std::move(block);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (dispatch_scratch_[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::size_t count = dispatch_scratch_[s].size();
    {
      std::unique_lock lk(shard.in_mutex);
      // Backpressure: wait for inbox space. Oversized batches are admitted
      // into an empty inbox so they cannot block forever.
      shard.space_cv.wait(lk, [&] {
        return shard.stop || shard.queued_arrivals == 0 ||
               shard.queued_arrivals + count <= options_.queue_capacity;
      });
      if (shard.stop) continue;
      shard.inbox.push_back(WorkItem{frozen, std::move(dispatch_scratch_[s])});
      dispatch_scratch_[s] = {};
      shard.queued_arrivals += count;
    }
    shard.work_cv.notify_one();
  }
}

void ShardedEngineRuntime::worker_loop(Shard& shard) {
  std::vector<core::Emission> emissions;
  std::vector<OutChunk> chunks;
  for (;;) {
    WorkItem item;
    {
      std::unique_lock lk(shard.in_mutex);
      shard.work_cv.wait(lk, [&] { return shard.stop || !shard.inbox.empty(); });
      if (shard.inbox.empty()) return;  // stop requested and drained
      item = std::move(shard.inbox.front());
      shard.inbox.pop_front();
    }

    chunks.clear();
    for (const std::uint32_t i : item.indices) {
      emissions.clear();
      shard.engine.observe(item.batch->entities[i], item.batch->nows[i], emissions);
      if (emissions.empty()) continue;
      for (core::Emission& em : emissions) em.def = shard.global_def[em.def];
      chunks.push_back(OutChunk{item.batch->stamps[i], std::move(emissions)});
      emissions = {};
    }
    const std::uint64_t last = item.batch->stamps[item.indices.back()];
    {
      const std::lock_guard lk(shard.out_mutex);
      for (OutChunk& chunk : chunks) shard.outbox.push_back(std::move(chunk));
      shard.published_stats = shard.engine.stats();
      // Publish completion only after the emissions are visible in the
      // outbox; poll() pairs this release store with an acquire load.
      shard.watermark.store(last, std::memory_order_release);
    }
    shard.done_cv.notify_all();
    {
      const std::lock_guard lk(shard.in_mutex);
      shard.queued_arrivals -= item.indices.size();
    }
    shard.space_cv.notify_all();
  }
}

void ShardedEngineRuntime::drain_ready_locked(std::vector<core::EventInstance>& out) {
  while (!pending_.empty()) {
    const Pending p = pending_.front();
    bool ready = true;
    for (std::uint64_t m = p.mask; m != 0; m &= m - 1) {
      const auto s = static_cast<std::size_t>(std::countr_zero(m));
      if (shards_[s]->watermark.load(std::memory_order_acquire) < p.stamp) {
        ready = false;
        break;
      }
    }
    if (!ready) return;  // stream order: nothing later may overtake

    gather_scratch_.clear();
    int sources = 0;
    for (std::uint64_t m = p.mask; m != 0; m &= m - 1) {
      const auto s = static_cast<std::size_t>(std::countr_zero(m));
      Shard& shard = *shards_[s];
      const std::lock_guard lk(shard.out_mutex);
      if (!shard.outbox.empty() && shard.outbox.front().stamp == p.stamp) {
        OutChunk chunk = std::move(shard.outbox.front());
        shard.outbox.pop_front();
        ++sources;
        for (core::Emission& em : chunk.emissions) gather_scratch_.push_back(std::move(em));
      }
    }
    // Each shard's chunk is already ascending in global definition index
    // (per-shard registration order is a subsequence of global order), so
    // the cross-shard merge restores exactly the sequential engine's
    // within-arrival order.
    if (sources > 1) {
      std::stable_sort(gather_scratch_.begin(), gather_scratch_.end(),
                       [](const core::Emission& a, const core::Emission& b) {
                         return a.def < b.def;
                       });
    }
    for (core::Emission& em : gather_scratch_) {
      out.push_back(std::move(em.instance));
      ++instances_;
    }
    pending_.pop_front();
  }
}

std::vector<core::EventInstance> ShardedEngineRuntime::poll() {
  std::vector<core::EventInstance> out;
  const std::lock_guard lk(merge_mutex_);
  drain_ready_locked(out);
  return out;
}

std::vector<core::EventInstance> ShardedEngineRuntime::flush() {
  std::vector<std::uint64_t> targets(shards_.size(), 0);
  {
    const std::lock_guard lk(ingest_mutex_);
    for (std::size_t s = 0; s < shards_.size(); ++s) targets[s] = shards_[s]->last_routed;
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::unique_lock lk(shard.out_mutex);
    shard.done_cv.wait(lk, [&] {
      return shard.watermark.load(std::memory_order_acquire) >= targets[s];
    });
  }
  return poll();
}

RuntimeStats ShardedEngineRuntime::stats() const {
  RuntimeStats s;
  for (const auto& shard : shards_) {
    const std::lock_guard lk(shard->out_mutex);
    s.engine += shard->published_stats;
  }
  const std::lock_guard lk(merge_mutex_);
  s.arrivals = arrivals_;
  s.deliveries = deliveries_;
  s.replicated = replicated_;
  s.dropped = dropped_;
  s.instances = instances_;
  return s;
}

}  // namespace stem::runtime
