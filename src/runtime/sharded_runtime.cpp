#include "runtime/sharded_runtime.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "runtime/affinity.hpp"
#include "runtime/checkpoint.hpp"

namespace stem::runtime {

namespace {

/// Cap on arrivals a worker drains per outbox/watermark publication: the
/// out_mutex handshake is amortized over a run of ring items, but a run
/// must end often enough that poll()/flush() see progress under sustained
/// load.
constexpr std::uint64_t kPublishBatch = 256;

/// Ring-slot headroom beyond queue_capacity: capacity is enforced in
/// *arrivals* by Shard::queued_arrivals, so arrival items can never occupy
/// more than queue_capacity slots (+1 oversized batch); the headroom keeps
/// capacity-exempt migration control items from contending for slots.
constexpr std::size_t kControlSlotHeadroom = 64;

/// Cascade mode: how far past the closure frontier a feedback-unreachable
/// shard may run ahead. Such a shard never receives feedback, so it need
/// not wait for earlier stamps' closures at all — but an unbounded lead
/// would grow its outbox without limit while the coordinator trails.
constexpr std::uint64_t kCascadeRunahead = 256;

/// Hash of the definition's first sensor routing key, or nullopt when it
/// has none (wildcard / event-type slots only). This is the basis of
/// key-range group splitting: a definition belongs to the high sub-group
/// iff this hash lands at or above the group's split point.
std::optional<std::uint64_t> def_sensor_hash(const core::EventDefinition& def) {
  for (const core::SlotSpec& slot : def.slots) {
    const core::FilterSignature sig = slot.filter.signature();
    if (sig.kind == core::FilterSignature::Kind::kSensor) {
      return core::routing_key_hash(sig.key);
    }
  }
  return std::nullopt;
}

/// Kind-prefixed routing key of a keyed slot signature, or empty.
std::string routing_key(const core::FilterSignature& sig) {
  switch (sig.kind) {
    case core::FilterSignature::Kind::kSensor:
      return "s:" + sig.key;
    case core::FilterSignature::Kind::kEventType:
      return "t:" + sig.key;
    case core::FilterSignature::Kind::kAny:
    case core::FilterSignature::Kind::kNever:
      return {};
  }
  return {};
}

}  // namespace

ShardedEngineRuntime::ShardedEngineRuntime(core::ObserverId id, core::Layer layer,
                                           geom::Point location, RuntimeOptions options)
    : id_(std::move(id)), layer_(layer), location_(location), options_(std::move(options)) {
  options_.shards = std::clamp<std::size_t>(options_.shards, 1, 64);
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.checkpoint_epoch != 0 && options_.cascade) {
    throw std::invalid_argument(
        "ShardedEngineRuntime: checkpoint_epoch is not supported in cascade mode");
  }
  if (options_.crash_hook && options_.checkpoint_epoch == 0) {
    throw std::invalid_argument(
        "ShardedEngineRuntime: crash_hook requires checkpoint_epoch != 0 (recovery rebuilds "
        "a dead shard from its checkpoint plus the replay log)");
  }
  if (options_.rebalance_policy == nullptr) {
    options_.rebalance_policy = std::make_shared<SpilloverPolicy>();
  }
  publish_loads_.store(options_.rebalance_epoch != 0, std::memory_order_relaxed);
  const std::size_t inbox_slots = options_.queue_capacity + kControlSlotHeadroom;
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>(id_, layer_, location_, options_.engine, inbox_slots);
    shard->index = s;
    shards_.push_back(std::move(shard));
  }
  shard_keys_.resize(options_.shards);
  shard_def_count_.assign(options_.shards, 0);
  shard_routed_.assign(options_.shards, 0);
  dispatch_scratch_.resize(options_.shards);
  shard_holds_.resize(options_.shards);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    shard->worker = std::thread([this, s] {
      if (options_.pin_shards) pin_current_thread(s->index);
      if (options_.cascade) {
        worker_cascade_loop(*s);
      } else {
        worker_loop(*s);
      }
    });
  }
  if (options_.cascade) {
    cascade_thread_ = std::thread([this] { cascade_loop(); });
  }
  if (options_.crash_hook) {
    supervisor_thread_ = std::thread([this] { supervisor_loop(); });
  }
}

ShardedEngineRuntime::~ShardedEngineRuntime() { shutdown(); }

void ShardedEngineRuntime::shutdown() noexcept {
  if (shutdown_.exchange(true, std::memory_order_seq_cst)) return;
  {
    // Serialize with producers and migration issuance: control items are
    // pushed in send/implant *pairs* under ingest_mutex_, so closing the
    // rings mid-pair could drop one side on a closed ring while admitting
    // the other — the receive-side worker would then wait forever on a
    // ready flag nobody sets. Holding ingest_mutex_ here makes the close
    // atomic with respect to every inbox push. Liveness: nothing is
    // stopped until the flags below are set, so whoever holds the lock —
    // including an ingest parked on backpressure or a cascade-gated
    // worker it depends on — keeps progressing, and the wait terminates.
    const std::lock_guard ingest_lk(ingest_mutex_);
    cascade_stop_.store(true, std::memory_order_seq_cst);
    signal_cascade();
    for (auto& shard : shards_) {
      shard->stop.store(true, std::memory_order_seq_cst);
      shard->inbox.close();          // wakes the worker and ring-parked producers
      shard->space_ec.notify_all();  // wakes capacity-parked producers
      shard->work_ec.notify_all();   // wakes a cascade worker off its gate
    }
  }
  // Crash-recovery teardown, in dependency order: stop the supervisor (so
  // no more replacement workers are spawned and shard.worker is stable),
  // then force-complete every migration ticket still in a replay log — a
  // dead or mid-recovery shard can no longer run its send side, and a
  // live peer may be parked in handle_control's receive wait that only
  // the ticket can release — and only then join the workers. Completing a
  // ticket a live worker also drains genuinely is benign: both sides set
  // the same flags under the ticket lock, and the state transfer is
  // abandoned with the rest of the in-flight work either way.
  if (supervisor_thread_.joinable()) {
    {
      const std::lock_guard lk(supervisor_mutex_);
      supervisor_stop_ = true;
    }
    supervisor_cv_.notify_all();
    supervisor_thread_.join();
  }
  if (options_.checkpoint_epoch != 0) {
    for (auto& shard : shards_) {
      const std::lock_guard lk(shard->log_mutex);
      const std::uint64_t consumed = shard->consumed_seq.load(std::memory_order_relaxed);
      for (const WorkItem& e : shard->replay_log) {
        if (e.push_seq <= consumed || e.ticket == nullptr) continue;
        {
          const std::lock_guard tlk(e.ticket->m);
          e.ticket->ready = true;
          e.ticket->done = true;
        }
        e.ticket->cv.notify_all();
      }
    }
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  if (cascade_thread_.joinable()) cascade_thread_.join();
  // Release any flush() parked on progress that will now never come (its
  // predicates are stop-aware). The empty lock/unlock pairs the notify
  // with the waiter's predicate evaluation.
  for (auto& shard : shards_) {
    { const std::lock_guard lk(shard->out_mutex); }
    shard->done_cv.notify_all();
  }
  { const std::lock_guard lk(merge_mutex_); }
  merged_cv_.notify_all();
}

void ShardedEngineRuntime::add_definition(core::EventDefinition def) {
  const std::lock_guard lk(ingest_mutex_);
  if (started_) {
    throw std::logic_error(
        "ShardedEngineRuntime: add_definition after ingestion or migration started "
        "(initial placement is registration-time; use migrate_definition to move groups)");
  }

  // Placement. Same event type => same group => same shard: definitions
  // sharing a type share an instance sequence counter, and splitting them
  // would renumber the merged stream relative to a sequential engine.
  std::uint32_t shard = 0;
  const auto git = type_group_.find(def.id.value());
  if (git != type_group_.end()) {
    shard = groups_[git->second].shard;
  } else {
    std::vector<std::string> keys;
    for (const core::SlotSpec& slot : def.slots) {
      if (std::string key = routing_key(slot.filter.signature()); !key.empty()) {
        keys.push_back(std::move(key));
      }
    }
    const auto affine = [&](const std::size_t s) {
      return std::any_of(keys.begin(), keys.end(),
                         [&](const std::string& k) { return shard_keys_[s].contains(k); });
    };
    // Least-loaded shard; among equals prefer one already hosting one of
    // the definition's routing keys (bounds fan-out at equal balance).
    bool best_affine = affine(0);
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      if (shard_def_count_[s] > shard_def_count_[shard]) continue;
      const bool a = affine(s);
      if (shard_def_count_[s] < shard_def_count_[shard] || (a && !best_affine)) {
        shard = static_cast<std::uint32_t>(s);
        best_affine = a;
      }
    }
  }

  // Register with the shard engine first: it validates and may throw, and
  // must not leave any placement state (groups_ included) half-updated.
  Shard& host = *shards_[shard];
  const auto local = static_cast<std::uint32_t>(host.engine->add_definition(def));

  const auto global = static_cast<std::uint32_t>(def_shard_.size());
  std::uint32_t group;
  if (git != type_group_.end()) {
    group = git->second;
  } else {
    group = static_cast<std::uint32_t>(groups_.size());
    Group fresh;
    fresh.shard = shard;
    groups_.push_back(std::move(fresh));
    type_group_.emplace(def.id.value(), group);
  }
  groups_[group].defs.push_back(global);
  def_group_.push_back(group);
  def_high_.push_back(0);
  // Splittability bookkeeping: the group becomes key-range splittable the
  // moment its definitions span two distinct sensor-key hashes.
  if (const std::optional<std::uint64_t> h = def_sensor_hash(def)) {
    Group& grp = groups_[group];
    if (!grp.has_key) {
      grp.has_key = true;
      grp.first_key_hash = *h;
    } else if (*h != grp.first_key_hash) {
      grp.multi_key = true;
    }
  }
  if (local >= host.global_def.size()) host.global_def.resize(local + 1, 0);
  host.global_def[local] = global;
  host.local_of.emplace(global, local);
  // Pre-first-checkpoint recovery rebuilds the engine from the initial
  // placement (then replays any migration controls from the log).
  if (options_.checkpoint_epoch != 0) host.initial_defs.emplace_back(global, def);
  def_shard_.push_back(shard);
  ++shard_def_count_[shard];
  for (const core::SlotSpec& slot : def.slots) {
    if (std::string key = routing_key(slot.filter.signature()); !key.empty()) {
      ++shard_keys_[shard][std::move(key)];
    }
  }
  // Collapsed: the per-arrival collect() walk stays O(shards) per key,
  // however many co-located definitions share it.
  shard_routes_.add_collapsed(def, shard);
  if (options_.cascade) {
    // The coordinator's stamp-versioned view starts identical to the
    // shard routing and diverges only through placement versions
    // published at migration barriers. Definition-granular registration:
    // the view maps matched definitions to shards per closure stamp.
    cascade_routes_.add(def, global, shard);
    cascade_ingest_routes_.add_collapsed(def, global);
    // A new definition changes the type graph's reach: recompute the
    // per-definition downstream masks on the next ingest.
    cascade_graph_built_ = false;
    for (const core::SlotSpec& slot : def.slots) {
      const auto kind = slot.filter.signature().kind;
      if (kind == core::FilterSignature::Kind::kEventType ||
          kind == core::FilterSignature::Kind::kAny) {
        feedback_possible_.store(true, std::memory_order_release);
        // This shard can now receive feedback: it must honor the closure
        // frontier gate strictly (no run-ahead).
        host.cascade_reachable.store(true, std::memory_order_seq_cst);
      }
    }
  }
  def_specs_.push_back(std::move(def));  // retained for migration routing updates
}

void ShardedEngineRuntime::ingest(const core::Entity& entity, time_model::TimePoint now) {
  ingest_batch(std::span<const core::Entity>(&entity, 1),
               std::span<const time_model::TimePoint>(&now, 1));
}

void ShardedEngineRuntime::ingest_batch(std::span<const core::Entity> batch,
                                        time_model::TimePoint now) {
  const std::vector<time_model::TimePoint> nows(batch.size(), now);
  ingest_batch(batch, nows);
}

void ShardedEngineRuntime::ingest_batch(std::span<const core::Entity> batch,
                                        std::span<const time_model::TimePoint> nows) {
  if (batch.size() != nows.size()) {
    throw std::invalid_argument("ShardedEngineRuntime::ingest_batch: " +
                                std::to_string(batch.size()) + " entities but " +
                                std::to_string(nows.size()) + " time points");
  }
  if (batch.empty()) return;

  auto block = std::make_shared<Batch>();
  block->entities.assign(batch.begin(), batch.end());
  block->nows.assign(nows.begin(), nows.end());
  block->stamps.assign(batch.size(), 0);

  const std::lock_guard ingest_lk(ingest_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) return;  // stopped: drop
  started_ = true;
  if (options_.cascade && !cascade_graph_built_) build_cascade_graph();

  // Route + stamp the whole batch into ingest-local scratch; merge_mutex_
  // is taken only for the bulk pending_/counter append below, so a large
  // batch's routing pass never stalls a concurrent poll() or stats().
  for (auto& indices : dispatch_scratch_) indices.clear();
  pending_scratch_.clear();
  std::uint64_t dropped = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t replicated = 0;
  for (std::size_t i = 0; i < block->entities.size(); ++i) {
    std::uint64_t mask = 0;
    std::uint64_t future = 0;
    route_scratch_.clear();
    if (options_.cascade && !cascade_conservative_) {
      // One def-granular routing pass yields both the delivery mask (via
      // each matched definition's host shard) and the closure's
      // downstream reach — the union of the matched definitions'
      // transitive feedback targets; shards outside it may run later
      // arrivals while the closure is still in flight. Exact only while
      // no subset has ever moved (def_shard_ then tells the whole
      // placement story); the first migration/split flips
      // cascade_conservative_ and the collapsed fallback below takes
      // over for good.
      cascade_ingest_routes_.collect(block->entities[i], route_scratch_,
                                     [](const core::SlotRoute&) { return true; });
      for (const core::SlotRoute r : route_scratch_) {
        mask |= std::uint64_t{1} << def_shard_[r.def_idx];
        future |= cascade_future_[r.def_idx];
      }
    } else {
      shard_routes_.collect(block->entities[i], route_scratch_,
                            [](const core::SlotRoute&) { return true; });
      for (const core::SlotRoute r : route_scratch_) mask |= std::uint64_t{1} << r.def_idx;
      if (options_.cascade) future = ~std::uint64_t{0};
    }
    if (mask == 0) {
      ++dropped;
      continue;  // no shard hosts a possibly-matching definition
    }
    const std::uint64_t stamp = next_stamp_++;
    block->stamps[i] = stamp;
    pending_scratch_.push_back(Pending{stamp, mask, future});
    bool first = true;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const auto s = static_cast<std::size_t>(std::countr_zero(m));
      dispatch_scratch_[s].push_back(static_cast<std::uint32_t>(i));
      shards_[s]->last_routed = stamp;
      ++shard_routed_[s];
      ++deliveries;
      if (!first) ++replicated;
      first = false;
    }
  }
  epoch_arrivals_ += pending_scratch_.size();
  {
    const std::lock_guard merge_lk(merge_mutex_);
    pending_.insert(pending_.end(), pending_scratch_.begin(), pending_scratch_.end());
    arrivals_ += pending_scratch_.size();
    deliveries_ += deliveries;
    replicated_ += replicated;
    dropped_ += dropped;
    last_stamp_assigned_ = next_stamp_ - 1;
  }

  const std::shared_ptr<const Batch> frozen = std::move(block);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (dispatch_scratch_[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::uint64_t count = dispatch_scratch_[s].size();
    // Backpressure: park until the shard has arrival-capacity for `count`
    // more. Oversized batches are admitted into an empty inbox so they
    // cannot block forever. The seq_cst loads pair with the worker's
    // decrement + space_ec fences, so the park never misses a wakeup.
    bool stopped = false;
    for (;;) {
      const std::uint64_t q = shard.queued_arrivals.load(std::memory_order_seq_cst);
      if (shard.stop.load(std::memory_order_seq_cst)) {
        stopped = true;
        break;
      }
      if (q == 0 || q + count <= options_.queue_capacity) break;
      const std::uint32_t ticket = shard.space_ec.prepare_wait();
      const std::uint64_t q2 = shard.queued_arrivals.load(std::memory_order_seq_cst);
      if (shard.stop.load(std::memory_order_seq_cst) || q2 == 0 ||
          q2 + count <= options_.queue_capacity) {
        shard.space_ec.cancel_wait();
        continue;
      }
      shard.space_ec.wait(ticket);
    }
    if (stopped) continue;
    const std::uint64_t q =
        shard.queued_arrivals.fetch_add(count, std::memory_order_seq_cst) + count;
    // Producers are serialized by ingest_mutex_, so this read-modify-write
    // high-water update is exact despite the relaxed ordering.
    if (q > shard.max_queued.load(std::memory_order_relaxed)) {
      shard.max_queued.store(q, std::memory_order_relaxed);
    }
    WorkItem work{frozen, std::move(dispatch_scratch_[s]), nullptr, false};
    if (options_.checkpoint_epoch != 0) log_push_locked(shard, work);
    if (shard.inbox.push(std::move(work))) {
      if (options_.cascade) shard.work_ec.notify_all();
    } else {
      // Ring closed mid-shutdown: the item was discarded — undo the
      // admission (and its never-pushed log copy) so the counters stay
      // consistent for late observers.
      if (options_.checkpoint_epoch != 0) {
        --shard.push_seq_next;
        const std::lock_guard llk(shard.log_mutex);
        shard.replay_log.pop_back();
      }
      shard.queued_arrivals.fetch_sub(count, std::memory_order_seq_cst);
      shard.space_ec.notify_all();
    }
    dispatch_scratch_[s] = {};
  }

  // Checkpoint epoch boundary: one checkpoint control item per shard,
  // pushed under the same ingest lock that stamped this batch — an epoch
  // barrier in every shard's stamp-ordered inbox.
  if (options_.checkpoint_epoch != 0) {
    ckpt_arrivals_ += pending_scratch_.size();
    if (ckpt_arrivals_ >= options_.checkpoint_epoch) {
      ckpt_arrivals_ = 0;
      const std::uint64_t id = ++ckpt_seq_;
      for (auto& sp : shards_) {
        WorkItem item;
        item.ckpt = id;
        push_control(*sp, std::move(item));
      }
    }
  }

  if (options_.cascade) signal_cascade();  // new pending arrivals to close

  // Epoch boundary: let the policy look at the load just attributed.
  if (options_.rebalance_epoch != 0 && epoch_arrivals_ >= options_.rebalance_epoch) {
    epoch_arrivals_ = 0;
    rebalance_locked();
  }
}

void ShardedEngineRuntime::log_push_locked(Shard& shard, WorkItem& item) {
  item.push_seq = ++shard.push_seq_next;
  const std::lock_guard lk(shard.log_mutex);
  shard.replay_log.push_back(item);  // copy: batch/ticket references are shared
}

void ShardedEngineRuntime::push_control(Shard& shard, WorkItem item) {
  // Control items carry no arrivals: they bypass the arrival-capacity
  // check (blocking on it under ingest_mutex_ could stall the very
  // workers that free the space). The ring keeps slot headroom for them;
  // a full ring parks on the worker's drain, which always progresses.
  const std::shared_ptr<MigrationTicket> ticket = item.ticket;
  if (options_.checkpoint_epoch != 0) log_push_locked(shard, item);
  if (!shard.inbox.push(std::move(item))) {
    if (options_.checkpoint_epoch != 0) {
      --shard.push_seq_next;
      const std::lock_guard llk(shard.log_mutex);
      shard.replay_log.pop_back();
    }
    if (ticket == nullptr) return;  // checkpoint item: nothing to release
    // Closed ring: shutdown() won the race before this pair was issued
    // (issuance and ring close both hold ingest_mutex_, so a pair is
    // never split — both pushes fail together). Complete the handshake
    // so anyone waiting on this ticket (a worker in handle_control's
    // receive wait, or migrate_definition's done wait) is released; the
    // state transfer is abandoned with the rest of the in-flight work.
    {
      const std::lock_guard tlk(ticket->m);
      ticket->ready = true;
      ticket->done = true;
    }
    ticket->cv.notify_all();
    return;
  }
  shard.work_ec.notify_all();
  // Admitted: flush()'s control-completion wait counts it (all callers
  // hold ingest_mutex_). Failed pushes above are never counted — their
  // handshake completes here, not on the worker.
  ++shard.ctl_pushed;
}

void ShardedEngineRuntime::issue_migration_locked(std::uint32_t group, std::uint32_t to) {
  Group& grp = groups_[group];
  const std::uint32_t from = grp.shard;
  issue_subset_locked(group, grp.defs, from, to);
  grp.shard = to;
}

void ShardedEngineRuntime::issue_subset_locked(std::uint32_t group,
                                               std::vector<std::uint32_t> defs,
                                               std::uint32_t from, std::uint32_t to) {
  Group& grp = groups_[group];
  auto ticket = std::make_shared<MigrationTicket>();
  ticket->globals = std::move(defs);  // ascending global order

  // Flip routing and bookkeeping under the ingest lock: every arrival
  // stamped before this point was routed to `from` (and is already, or
  // will be, ahead of the control items in its inbox); every arrival
  // stamped after is routed to `to` behind the implant item. That is the
  // epoch barrier.
  for (const std::uint32_t d : ticket->globals) {
    const core::EventDefinition& def = def_specs_[d];
    shard_routes_.remove_collapsed(def, from);
    shard_routes_.add_collapsed(def, to);
    def_shard_[d] = to;
    for (const core::SlotSpec& slot : def.slots) {
      if (std::string key = routing_key(slot.filter.signature()); !key.empty()) {
        auto& src_keys = shard_keys_[from];
        if (const auto it = src_keys.find(key); it != src_keys.end() && --(it->second) == 0) {
          src_keys.erase(it);
        }
        ++shard_keys_[to][std::move(key)];
      }
    }
    --shard_def_count_[from];
    ++shard_def_count_[to];
  }
  grp.ticket = ticket;
  ++migrations_;
  // Placement is now dynamic; worker threads own the local index maps.
  started_ = true;

  // Cascade mode: the control items act at sub-stamp (barrier-1, +inf) —
  // after every pre-barrier closure, before any post-barrier arrival —
  // and the coordinator's routing copy flips when the closure frontier
  // reaches the barrier, so feedback for pre-barrier stamps still reaches
  // the group's old shard.
  const std::uint64_t barrier = next_stamp_;
  if (options_.cascade) {
    // The reachability table was computed against the pre-flip placement,
    // so post-barrier arrivals can no longer trust it: they carry an
    // all-ones downstream reach from here on (pre-barrier closures keep
    // their refined masks — the placement at their stamps is the one the
    // table was built from). Ordered with ingest by ingest_mutex_.
    cascade_conservative_ = true;
    // The destination may now host a feedback-reachable definition; flip
    // its gate *before* the control pair is visible so its worker never
    // runs a post-barrier arrival ahead of the closure frontier.
    for (const std::uint32_t d : ticket->globals) {
      for (const core::SlotSpec& slot : def_specs_[d].slots) {
        const auto kind = slot.filter.signature().kind;
        if (kind == core::FilterSignature::Kind::kEventType ||
            kind == core::FilterSignature::Kind::kAny) {
          shards_[to]->cascade_reachable.store(true, std::memory_order_seq_cst);
        }
      }
    }
    {
      const std::lock_guard clk(cascade_mutex_);
      reroutes_.push_back(CascadeReroute{barrier, ticket->globals, from, to});
      reroutes_pending_.fetch_add(1, std::memory_order_release);
    }
    signal_cascade();
  } else if (options_.ordering == OrderingTier::kPerDefinitionOrder) {
    // Per-definition order: the destination's post-barrier chunks must not
    // be released before the source has drained up to the barrier, or a
    // migrated definition's later emissions could overtake its earlier
    // ones. The hold is registered before either control item exists, so
    // no post-barrier chunk can possibly be published yet.
    const std::lock_guard merge_lk(merge_mutex_);
    shard_holds_[to].push_back(ReleaseHold{barrier, from});
  }
  push_control(*shards_[from], WorkItem{nullptr, {}, ticket, true, barrier, 0});
  push_control(*shards_[to], WorkItem{nullptr, {}, ticket, false, barrier, 0});
}

bool ShardedEngineRuntime::migrate_definition(std::size_t def_index, std::size_t to_shard) {
  std::unique_lock lk(ingest_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) return false;  // stopped: no-op
  if (def_index >= def_group_.size()) {
    throw std::out_of_range("ShardedEngineRuntime: unknown definition index " +
                            std::to_string(def_index));
  }
  if (to_shard >= shards_.size()) {
    throw std::out_of_range("ShardedEngineRuntime: unknown shard " + std::to_string(to_shard));
  }
  const std::uint32_t group = def_group_[def_index];
  if (!wait_group_ticket(lk, group)) return false;  // stopped: no-op

  Group& grp = groups_[group];
  const auto to = static_cast<std::uint32_t>(to_shard);
  if (!grp.split) {
    if (grp.shard == to) return false;
    issue_migration_locked(group, to);
    return true;
  }
  // Split group: the named definition's *sub-group* is the migration unit
  // (the two sides move independently; merge_group reunifies them).
  const bool high = def_high_[def_index] != 0;
  const std::uint32_t from = high ? grp.high_shard : grp.shard;
  if (from == to) return false;
  std::vector<std::uint32_t> defs;
  for (const std::uint32_t d : grp.defs) {
    if ((def_high_[d] != 0) == high) defs.push_back(d);
  }
  issue_subset_locked(group, std::move(defs), from, to);
  (high ? grp.high_shard : grp.shard) = to;
  return true;
}

bool ShardedEngineRuntime::wait_group_ticket(std::unique_lock<std::mutex>& lk,
                                             std::uint32_t group) {
  // Wait out any in-flight migration of this group: its destination
  // worker must implant before the group can move again (the worker-side
  // index maps are only consistent at implanted boundaries). The wait
  // holds no runtime lock, and the implant only needs the two workers to
  // drain their inboxes, so this always terminates.
  for (;;) {
    const std::shared_ptr<MigrationTicket> t = groups_[group].ticket;
    if (t == nullptr) break;
    bool done;
    {
      const std::lock_guard tlk(t->m);
      done = t->done;
    }
    if (done) break;
    lk.unlock();
    {
      std::unique_lock tlk(t->m);
      t->cv.wait(tlk, [&] { return t->done; });
    }
    lk.lock();
  }
  // The wait above releases ingest_mutex_, so a shutdown may have slipped
  // in; issuing now would push a control pair onto closed rings.
  return !shutdown_.load(std::memory_order_acquire);
}

bool ShardedEngineRuntime::split_group(std::size_t def_index, std::size_t to_shard) {
  std::unique_lock lk(ingest_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) return false;  // stopped: no-op
  if (def_index >= def_group_.size()) {
    throw std::out_of_range("ShardedEngineRuntime: unknown definition index " +
                            std::to_string(def_index));
  }
  if (to_shard >= shards_.size()) {
    throw std::out_of_range("ShardedEngineRuntime: unknown shard " + std::to_string(to_shard));
  }
  // Legal in cascade mode too: the split is issued as a subset migration,
  // whose control pair acts at sub-stamp granularity (after every
  // pre-barrier closure, before any post-barrier arrival), and the
  // coordinator renumbers per-group sequences at dispatch time, restoring
  // the single numbering the two sub-engines can no longer agree on.
  const std::uint32_t group = def_group_[def_index];
  if (!wait_group_ticket(lk, group)) return false;
  return issue_split_locked(group, static_cast<std::uint32_t>(to_shard));
}

bool ShardedEngineRuntime::issue_split_locked(std::uint32_t group, std::uint32_t to) {
  Group& grp = groups_[group];
  if (grp.split || !grp.multi_key || to == grp.shard) return false;
  if (grp.ticket != nullptr) {
    // Callers either waited the ticket out or (rebalance) marked the
    // group unmovable; re-check non-blockingly for safety.
    const std::lock_guard tlk(grp.ticket->m);
    if (!grp.ticket->done) return false;
  }
  // Partition around the median distinct sensor-key hash: hash >= point
  // goes high, everything else (lower hashes, keyless, wildcard) stays
  // low. Both sides are non-empty by construction (>= 2 distinct hashes).
  std::vector<std::uint64_t> hashes;
  for (const std::uint32_t d : grp.defs) {
    if (const std::optional<std::uint64_t> h = def_sensor_hash(def_specs_[d])) {
      hashes.push_back(*h);
    }
  }
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  if (hashes.size() < 2) return false;  // unreachable given multi_key
  const std::uint64_t point = hashes[hashes.size() / 2];
  std::vector<std::uint32_t> high;
  for (const std::uint32_t d : grp.defs) {
    const std::optional<std::uint64_t> h = def_sensor_hash(def_specs_[d]);
    if (h.has_value() && *h >= point) {
      high.push_back(d);
      def_high_[d] = 1;
    }
  }
  issue_subset_locked(group, high, grp.shard, to);
  grp.split = true;
  grp.high_shard = to;
  grp.split_point = point;
  grp.high_defs = std::move(high);
  ++splits_;
  return true;
}

bool ShardedEngineRuntime::merge_group(std::size_t def_index) {
  std::unique_lock lk(ingest_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) return false;  // stopped: no-op
  if (def_index >= def_group_.size()) {
    throw std::out_of_range("ShardedEngineRuntime: unknown definition index " +
                            std::to_string(def_index));
  }
  const std::uint32_t group = def_group_[def_index];
  if (!wait_group_ticket(lk, group)) return false;
  Group& grp = groups_[group];
  if (!grp.split) return false;
  if (grp.high_shard != grp.shard) {
    // Reunify on the low side's shard. The engine's implant keeps the max
    // of the live and implanted sequence counters, so the rejoined group
    // resumes a single gap-free per-type numbering going forward.
    issue_subset_locked(group, grp.high_defs, grp.high_shard, grp.shard);
  }
  for (const std::uint32_t d : grp.high_defs) def_high_[d] = 0;
  grp.split = false;
  grp.high_shard = grp.shard;
  grp.split_point = 0;
  grp.high_defs.clear();
  ++group_merges_;
  return true;
}

bool ShardedEngineRuntime::group_split(std::size_t def_index) const {
  const std::lock_guard lk(ingest_mutex_);
  return groups_[def_group_.at(def_index)].split;
}

std::size_t ShardedEngineRuntime::rebalance_now() {
  // Externally paced rebalancing: from here on the workers publish
  // per-definition loads (the first pass may still see empty snapshots —
  // loads trail by design).
  publish_loads_.store(true, std::memory_order_relaxed);
  const std::lock_guard lk(ingest_mutex_);
  epoch_arrivals_ = 0;
  return rebalance_locked();
}

std::size_t ShardedEngineRuntime::rebalance_locked() {
  if (shutdown_.load(std::memory_order_acquire)) return 0;  // stopped: no-op
  ++rebalance_passes_;
  if (def_specs_.empty() || shards_.size() < 2) return 0;

  // Refresh the cumulative per-definition loads from the shards' latest
  // publications. The snapshots trail in-flight work (and a mid-migration
  // group is absent from both sides until implanted) — the counters are
  // monotone per definition, so unattributed work simply lands in a later
  // epoch.
  def_load_now_.resize(def_specs_.size());
  def_load_prev_.resize(def_specs_.size());
  for (const auto& shard : shards_) {
    const std::lock_guard lk(shard->out_mutex);
    for (const auto& [global, load] : shard->published_def_loads) {
      if (global >= def_load_now_.size()) continue;
      // Newest wins: the counters are monotone per definition, so if two
      // snapshots ever mention the same definition (the source's last
      // pre-migration publication racing the destination's first), the
      // larger cumulative total is the fresher one.
      DefTotals& now = def_load_now_[global];
      if (load.routed + load.tried >= now.routed + now.tried) {
        now = DefTotals{load.routed, load.tried, load.buffered};
      }
    }
  }

  group_load_scratch_.clear();
  group_load_scratch_.reserve(groups_.size());
  high_row_scratch_.assign(groups_.size(), 0xffffffffu);
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    const Group& grp = groups_[g];
    bool settled = true;
    if (grp.ticket != nullptr) {
      const std::lock_guard tlk(grp.ticket->m);
      settled = grp.ticket->done;
    }
    // A split group's sides are pinned for the policy (rejoin via
    // merge_group, not rebalancing) but its load still lands on the right
    // shards via the extra high row below.
    const bool movable = settled && !grp.split;
    const bool splittable = movable && grp.multi_key;
    group_load_scratch_.push_back(GroupLoad{g, grp.shard, 0, movable, splittable});
  }
  for (std::uint32_t g = 0; g < static_cast<std::uint32_t>(groups_.size()); ++g) {
    if (!groups_[g].split) continue;
    high_row_scratch_[g] = static_cast<std::uint32_t>(group_load_scratch_.size());
    group_load_scratch_.push_back(GroupLoad{g, groups_[g].high_shard, 0, false, false});
  }
  // Saturating deltas: a (theoretical) stale-over-fresh snapshot must
  // cost an epoch of attribution, never wrap to ~2^64 and stampede the
  // policy.
  const auto sat_delta = [](const std::uint64_t now, const std::uint64_t prev) {
    return now >= prev ? now - prev : 0;
  };
  for (std::uint32_t d = 0; d < def_specs_.size(); ++d) {
    const DefTotals& now = def_load_now_[d];
    const DefTotals& prev = def_load_prev_[d];
    const std::uint64_t delta = sat_delta(now.routed, prev.routed) +
                                sat_delta(now.tried, prev.tried) + now.buffered;
    const std::uint32_t g = def_group_[d];
    const std::uint32_t row =
        (def_high_[d] != 0 && high_row_scratch_[g] != 0xffffffffu) ? high_row_scratch_[g] : g;
    group_load_scratch_[row].cost += delta;
  }
  def_load_prev_ = def_load_now_;

  shard_load_scratch_.assign(shards_.size(), 0);
  for (const GroupLoad& g : group_load_scratch_) shard_load_scratch_[g.shard] += g.cost;

  order_scratch_.clear();
  options_.rebalance_policy->decide(
      RebalanceView{shard_load_scratch_, group_load_scratch_, &spillover_skipped_},
      order_scratch_);

  std::size_t issued = 0;
  for (const MigrationOrder& order : order_scratch_) {
    if (order.group >= groups_.size() || order.to >= shards_.size()) continue;
    if (!group_load_scratch_[order.group].movable) continue;
    if (order.split) {
      if (issue_split_locked(order.group, order.to)) {
        group_load_scratch_[order.group].movable = false;  // one move per pass
        ++issued;
      } else {
        ++spillover_skipped_;  // invalid split order: the hot shard stays put
      }
      continue;
    }
    if (groups_[order.group].shard == order.to) continue;
    issue_migration_locked(order.group, order.to);
    group_load_scratch_[order.group].movable = false;  // one move per pass
    ++issued;
  }
  return issued;
}

void ShardedEngineRuntime::publish_work(
    Shard& shard, std::vector<OutChunk>& chunks, std::uint64_t last_stamp,
    std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch) {
  // Per-definition loads are collected only when someone rebalances —
  // the default static configuration skips this O(definitions) walk.
  const bool loads = publish_loads_.load(std::memory_order_relaxed);
  if (loads) {
    load_scratch.clear();
    shard.engine->collect_definition_loads(load_scratch);
    for (auto& [idx, load] : load_scratch) idx = shard.global_def[idx];  // local -> global
  }
  // A recovered engine only counts post-checkpoint work; stats_base
  // carries the checkpoint's cumulative counters (zero before any crash).
  core::EngineStats stats = shard.stats_base;
  stats += shard.engine->stats();
  {
    const std::lock_guard lk(shard.out_mutex);
    if (!chunks.empty()) shard.out_dirty.store(true, std::memory_order_relaxed);
    for (OutChunk& chunk : chunks) shard.outbox.push_back(std::move(chunk));
    shard.published_stats = stats;
    // Swap, don't copy: the retired publication becomes the next
    // collection scratch, so steady-state publishing at 1e5+ definitions
    // allocates nothing under the lock.
    if (loads) std::swap(shard.published_def_loads, load_scratch);
    // Publish completion only after the emissions are visible in the
    // outbox; poll() pairs this release store with an acquire load.
    shard.watermark.store(last_stamp, std::memory_order_release);
  }
  shard.done_cv.notify_all();
}

void ShardedEngineRuntime::handle_control(
    Shard& shard, WorkItem& item,
    std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch) {
  // Migration control item, exactly at the epoch barrier of this shard's
  // stamp-ordered inbox.
  std::vector<OutChunk> chunks;
  MigrationTicket& ticket = *item.ticket;
  if (item.send) {
    // Every pre-barrier arrival for the group has been processed;
    // extract its engine state and hand it to the destination worker.
    std::vector<core::DefinitionState> states;
    states.reserve(ticket.globals.size());
    for (const std::uint32_t global : ticket.globals) {
      // at(): a missing mapping is a bookkeeping bug — fail loudly
      // (std::terminate via the uncaught throw) over silent UB.
      states.push_back(shard.engine->extract_definition_state(shard.local_of.at(global)));
      shard.local_of.erase(global);
    }
    // Republish *before* signalling ready: once the destination can
    // implant (and start publishing the moved definitions' loads),
    // this shard's published snapshot must no longer list them — two
    // live publications of one definition would let a stale value
    // overwrite a newer one in the rebalancer's merge.
    publish_work(shard, chunks, shard.watermark.load(std::memory_order_relaxed), load_scratch);
    // The barrier's pre-epoch is fully drained: chunks below `barrier` are
    // all published. Monotone max — barriers surface in stamp order per
    // shard, but a recovery replay may revisit an older one.
    if (item.barrier > shard.sent_through.load(std::memory_order_seq_cst)) {
      shard.sent_through.store(item.barrier, std::memory_order_seq_cst);
    }
    {
      const std::lock_guard tlk(ticket.m);
      // Already ready: the shutdown ticket sweep (or a crash-recovery
      // replay) force-completed this handshake first — the extraction
      // stands (the group has left this engine) but the hand-off is void.
      if (!ticket.ready) {
        ticket.states = std::move(states);
        ticket.ready = true;
      }
    }
    ticket.cv.notify_all();
  } else {
    // Wait for the source's extraction, then implant before touching
    // any post-barrier arrival. The wait only depends on the source
    // worker draining its inbox (send items never block), so chains
    // of concurrent migrations resolve in decision order.
    std::vector<core::DefinitionState> states;
    {
      std::unique_lock tlk(ticket.m);
      ticket.cv.wait(tlk, [&] { return ticket.ready; });
      if (options_.checkpoint_epoch != 0) {
        // Keep the ticket's copy: if this shard later crashes and its
        // checkpoint predates this control, the recovery replay implants
        // from the ticket again.
        states = ticket.states;
      } else {
        states = std::move(ticket.states);
      }
    }
    for (std::size_t i = 0; i < states.size(); ++i) {
      const auto local =
          static_cast<std::uint32_t>(shard.engine->implant_definition_state(std::move(states[i])));
      if (local >= shard.global_def.size()) shard.global_def.resize(local + 1, 0);
      shard.global_def[local] = ticket.globals[i];
      shard.local_of[ticket.globals[i]] = local;
    }
    // Republish stats/loads so the rebalancer sees the new layout;
    // the watermark is unchanged (control items carry no arrivals).
    publish_work(shard, chunks, shard.watermark.load(std::memory_order_relaxed), load_scratch);
    {
      const std::lock_guard tlk(ticket.m);
      ticket.done = true;
    }
    ticket.cv.notify_all();
  }
  // Control completion, for flush()'s per-definition-order wait. The
  // empty lock/unlock pairs the notify with the waiter's predicate.
  shard.ctl_done.fetch_add(1, std::memory_order_seq_cst);
  { const std::lock_guard lk(shard.out_mutex); }
  shard.done_cv.notify_all();
}

void ShardedEngineRuntime::worker_loop(Shard& shard) {
  std::vector<core::Emission> emissions;
  std::vector<OutChunk> chunks;
  std::vector<std::pair<std::uint32_t, core::DefinitionLoad>> load_scratch;
  const bool ckpt_on = options_.checkpoint_epoch != 0;
  WorkItem item;
  for (;;) {
    // Spin-then-park consume; false only once the ring is closed *and*
    // fully drained, so every admitted item (controls included) is
    // processed before exit.
    if (!shard.inbox.pop(item)) return;
    if (ckpt_on) shard.popped_seq = item.push_seq;
    if (options_.crash_hook && options_.crash_hook(shard.index)) {
      // Injected crash: abandon the in-hand item (its log copy survives;
      // recovery replays it) and die. Only fires at item boundaries, so
      // consumed_seq exactly bounds what the merge has seen.
      item = WorkItem{};
      die(shard);
      return;
    }
    if (options_.stall_hook) options_.stall_hook(shard.index);

    if (item.batch == nullptr) {
      if (item.ckpt != 0) {
        take_checkpoint(shard, item);
      } else {
        handle_control(shard, item, load_scratch);
        if (ckpt_on) shard.consumed_seq.store(item.push_seq, std::memory_order_relaxed);
      }
      item = WorkItem{};
      continue;
    }

    // Drain a run of consecutive arrival items and publish once: the
    // out_mutex handshake (outbox append + stats snapshot + watermark
    // store + done_cv notify) is amortized over the run instead of paid
    // per item. The run ends when the ring goes empty, a control item
    // surfaces (it must see the pre-barrier watermark published), or
    // kPublishBatch arrivals have accumulated (bounds merge latency).
    chunks.clear();
    std::uint64_t run_arrivals = 0;
    std::uint64_t last_stamp = 0;
    std::uint64_t last_seq = 0;
    bool crashed = false;
    for (;;) {
      for (const std::uint32_t i : item.indices) {
        emissions.clear();
        // Aliasing pointer into the refcounted batch: slots that buffer
        // the arrival share the batch storage instead of deep-copying
        // (the ROADMAP per-arrival-copy lever; the batch stays alive
        // while any shard buffers any of its entities).
        const std::shared_ptr<const core::Entity> entity(item.batch, &item.batch->entities[i]);
        shard.engine->observe(entity, item.batch->nows[i], emissions);
        if (emissions.empty()) continue;
        for (core::Emission& em : emissions) em.def = shard.global_def[em.def];
        chunks.push_back(OutChunk{item.batch->stamps[i], std::move(emissions), 0, 0, {}});
        emissions = {};
      }
      last_stamp = item.batch->stamps[item.indices.back()];
      run_arrivals += item.indices.size();
      last_seq = item.push_seq;
      item = WorkItem{};  // drop the batch reference before publishing
      if (run_arrivals >= kPublishBatch) break;
      WorkItem* next = shard.inbox.front();  // never waits: runs only extend
      if (next == nullptr || next->batch == nullptr) break;
      item = std::move(*next);
      shard.inbox.pop_front();
      if (ckpt_on) shard.popped_seq = item.push_seq;
      if (options_.crash_hook && options_.crash_hook(shard.index)) {
        // Mid-run crash: the whole unpublished run dies with the engine —
        // nothing of it reached the merge, so recovery replays it from
        // the log and regenerates the identical emissions.
        crashed = true;
        item = WorkItem{};
        break;
      }
      if (options_.stall_hook) options_.stall_hook(shard.index);
    }
    if (crashed) {
      die(shard);
      return;
    }
    publish_work(shard, chunks, last_stamp, load_scratch);
    if (ckpt_on) shard.consumed_seq.store(last_seq, std::memory_order_relaxed);
    shard.queued_arrivals.fetch_sub(run_arrivals, std::memory_order_seq_cst);
    shard.space_ec.notify_all();
  }
}

void ShardedEngineRuntime::take_checkpoint(Shard& shard, const WorkItem& item) {
  ShardCheckpoint ck;
  ck.push_seq = item.push_seq;
  ck.stats = shard.stats_base;
  ck.stats += shard.engine->stats();
  // Snapshot hosted definitions in ascending local order: implanting in
  // frame order on recovery then reproduces a dense local index space.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> locals;  // (local, global)
  locals.reserve(shard.local_of.size());
  for (const auto& [global, local] : shard.local_of) locals.emplace_back(local, global);
  std::sort(locals.begin(), locals.end());
  ck.frames.reserve(locals.size());
  for (const auto& [local, global] : locals) {
    ck.frames.emplace_back(
        global, encode_definition_state(shard.engine->snapshot_definition_state(local)));
  }
  {
    const std::lock_guard lk(shard.log_mutex);
    shard.checkpoint = std::move(ck);
    // The frames cover every logged item up to the barrier — truncate.
    while (!shard.replay_log.empty() && shard.replay_log.front().push_seq <= item.push_seq) {
      shard.replay_log.pop_front();
    }
  }
  shard.consumed_seq.store(item.push_seq, std::memory_order_relaxed);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  shard.ctl_done.fetch_add(1, std::memory_order_seq_cst);
  { const std::lock_guard lk(shard.out_mutex); }
  shard.done_cv.notify_all();
}

void ShardedEngineRuntime::die(Shard& shard) {
  shard.dead.store(true, std::memory_order_seq_cst);
  // Empty lock/unlock pairs the notify with the supervisor's predicate.
  { const std::lock_guard lk(supervisor_mutex_); }
  supervisor_cv_.notify_all();
}

void ShardedEngineRuntime::supervisor_loop() {
  for (;;) {
    {
      std::unique_lock lk(supervisor_mutex_);
      supervisor_cv_.wait(lk, [&] {
        if (supervisor_stop_) return true;
        for (const auto& shard : shards_) {
          if (shard->dead.load(std::memory_order_seq_cst)) return true;
        }
        return false;
      });
      if (supervisor_stop_) return;
    }
    for (auto& sp : shards_) {
      Shard& shard = *sp;
      if (!shard.dead.load(std::memory_order_seq_cst)) continue;
      // The dying worker returned right after setting the flag; the join
      // orders every worker-owned field for the replacement thread.
      if (shard.worker.joinable()) shard.worker.join();
      shard.dead.store(false, std::memory_order_seq_cst);
      if (shutdown_.load(std::memory_order_acquire)) continue;  // shutdown sweeps the leftovers
      crashes_.fetch_add(1, std::memory_order_relaxed);
      Shard* s = &shard;
      shard.worker = std::thread([this, s] {
        if (options_.pin_shards) pin_current_thread(s->index);
        if (recover_shard(*s)) worker_loop(*s);
      });
    }
  }
}

bool ShardedEngineRuntime::recover_shard(Shard& shard) {
  // Runs on the shard's replacement worker thread, after the supervisor
  // joined the dead one (the join orders every plain-field read below).
  const std::uint64_t consumed_at_crash = shard.consumed_seq.load(std::memory_order_relaxed);
  const std::uint64_t popped_at_crash = shard.popped_seq;

  // 1. Fresh engine from the last checkpoint, or the initial placement
  //    when the shard died before its first checkpoint barrier.
  auto engine = std::make_unique<core::DetectionEngine>(id_, layer_, location_, options_.engine);
  shard.global_def.clear();
  shard.local_of.clear();
  const auto adopt = [&](const std::uint32_t global, const std::uint32_t local) {
    if (local >= shard.global_def.size()) shard.global_def.resize(local + 1, 0);
    shard.global_def[local] = global;
    shard.local_of[global] = local;
  };
  std::optional<ShardCheckpoint> ck;
  {
    const std::lock_guard lk(shard.log_mutex);
    ck = shard.checkpoint;  // copy: the stored one must survive this recovery
  }
  if (ck.has_value()) {
    shard.stats_base = ck->stats;
    for (const auto& [global, frame] : ck->frames) {
      // def_specs_ stops growing once ingestion starts (and a crash
      // implies ingestion), so reading it off-thread is safe.
      std::optional<core::DefinitionState> state =
          decode_definition_state(frame, def_specs_[global]);
      if (!state.has_value()) {
        // A checkpoint this runtime wrote always decodes; failing loudly
        // beats resurrecting a shard with silently missing definitions.
        throw std::runtime_error("ShardedEngineRuntime: corrupt shard checkpoint frame");
      }
      adopt(global,
            static_cast<std::uint32_t>(engine->implant_definition_state(std::move(*state))));
    }
  } else {
    shard.stats_base = core::EngineStats{};
    for (const auto& [global, def] : shard.initial_defs) {
      adopt(global, static_cast<std::uint32_t>(engine->add_definition(def)));
    }
  }
  shard.engine = std::move(engine);

  // 2. Replay the log in push order, strictly up to the last entry the
  //    dead worker popped — everything later is still sitting in the ring
  //    and belongs to the resumed live loop (replaying past that point
  //    would chase the log tail forever while producers keep appending,
  //    and would bypass the stall/crash hooks for the rest of the run).
  //    Entries the dead worker had already published
  //    (push_seq <= consumed_at_crash) only rebuild engine state — their
  //    emissions are in the merge and their capacity was released. The
  //    remainder (consumed < push_seq <= popped) was popped but never
  //    published: processed for real, published, capacity-released.
  std::vector<std::pair<std::uint32_t, core::DefinitionLoad>> load_scratch;
  std::vector<core::Emission> emissions;
  std::vector<OutChunk> chunks;
  std::uint64_t done_seq = ck.has_value() ? ck->push_seq : 0;
  std::uint64_t replayed = 0;
  for (;;) {
    if (shard.stop.load(std::memory_order_seq_cst)) {
      shard.dead.store(true, std::memory_order_seq_cst);
      return false;
    }
    WorkItem entry;
    bool have = false;
    {
      const std::lock_guard lk(shard.log_mutex);
      for (const WorkItem& e : shard.replay_log) {
        if (e.push_seq > done_seq && e.push_seq <= popped_at_crash) {
          entry = e;  // copy: the log keeps its own for a future crash
          have = true;
          break;
        }
      }
    }
    if (!have) break;  // popped prefix replayed — hand over to the live loop

    const bool suppress = entry.push_seq <= consumed_at_crash;
    if (entry.batch == nullptr) {
      if (entry.ckpt != 0) {
        // Re-taking the checkpoint here reproduces the original barrier
        // exactly (same prefix of the log has been applied).
        take_checkpoint(shard, entry);
      } else {
        if (!replay_control(shard, entry, suppress, load_scratch)) {
          shard.dead.store(true, std::memory_order_seq_cst);
          return false;
        }
        if (!suppress) shard.consumed_seq.store(entry.push_seq, std::memory_order_relaxed);
      }
    } else {
      chunks.clear();
      for (const std::uint32_t i : entry.indices) {
        emissions.clear();
        const std::shared_ptr<const core::Entity> entity(entry.batch, &entry.batch->entities[i]);
        shard.engine->observe(entity, entry.batch->nows[i], emissions);
        ++replayed;
        if (emissions.empty() || suppress) continue;  // suppressed: already merged pre-crash
        for (core::Emission& em : emissions) em.def = shard.global_def[em.def];
        chunks.push_back(OutChunk{entry.batch->stamps[i], std::move(emissions), 0, 0, {}});
        emissions = {};
      }
      if (!suppress) {
        publish_work(shard, chunks, entry.batch->stamps[entry.indices.back()], load_scratch);
        shard.consumed_seq.store(entry.push_seq, std::memory_order_relaxed);
        shard.queued_arrivals.fetch_sub(entry.indices.size(), std::memory_order_seq_cst);
        shard.space_ec.notify_all();
      }
    }
    done_seq = entry.push_seq;
  }
  replayed_.fetch_add(replayed, std::memory_order_relaxed);
  recoveries_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ShardedEngineRuntime::replay_control(
    Shard& shard, WorkItem& item, bool suppress,
    std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch) {
  MigrationTicket& ticket = *item.ticket;
  std::vector<OutChunk> chunks;
  if (item.send) {
    // Re-extract: the rebuilt engine holds the group (restored from a
    // pre-barrier checkpoint or implanted by an earlier replayed
    // receive) and it must leave again either way. The extracted state
    // is only handed over if the original hand-off never happened;
    // otherwise the destination already owns a copy and this one drops.
    std::vector<core::DefinitionState> states;
    states.reserve(ticket.globals.size());
    for (const std::uint32_t global : ticket.globals) {
      states.push_back(shard.engine->extract_definition_state(shard.local_of.at(global)));
      shard.local_of.erase(global);
    }
    if (!suppress) {
      publish_work(shard, chunks, shard.watermark.load(std::memory_order_relaxed), load_scratch);
    }
    if (item.barrier > shard.sent_through.load(std::memory_order_seq_cst)) {
      shard.sent_through.store(item.barrier, std::memory_order_seq_cst);
    }
    {
      const std::lock_guard tlk(ticket.m);
      if (!ticket.ready) {
        ticket.states = std::move(states);
        ticket.ready = true;
      }
    }
    ticket.cv.notify_all();
  } else {
    // Wait for the states (the source may itself be mid-recovery). The
    // wait polls so shutdown can interrupt it; the live receive path
    // keeps the ticket's copy (see handle_control), so a replayed
    // implant always finds the states still there.
    std::vector<core::DefinitionState> states;
    {
      std::unique_lock tlk(ticket.m);
      for (;;) {
        if (ticket.ready) break;
        if (shard.stop.load(std::memory_order_seq_cst)) return false;
        ticket.cv.wait_for(tlk, std::chrono::milliseconds(1));
      }
      states = ticket.states;  // copy: a later recovery may need it again
    }
    for (std::size_t i = 0; i < states.size(); ++i) {
      const auto local =
          static_cast<std::uint32_t>(shard.engine->implant_definition_state(std::move(states[i])));
      if (local >= shard.global_def.size()) shard.global_def.resize(local + 1, 0);
      shard.global_def[local] = ticket.globals[i];
      shard.local_of[ticket.globals[i]] = local;
    }
    if (!suppress) {
      publish_work(shard, chunks, shard.watermark.load(std::memory_order_relaxed), load_scratch);
    }
    {
      const std::lock_guard tlk(ticket.m);
      ticket.done = true;
    }
    ticket.cv.notify_all();
  }
  // May recount a control the dead worker already completed — ctl_done
  // legitimately overcounts across recoveries (flush waits with >=).
  shard.ctl_done.fetch_add(1, std::memory_order_seq_cst);
  { const std::lock_guard lk(shard.out_mutex); }
  shard.done_cv.notify_all();
  return true;
}

void ShardedEngineRuntime::publish_cascade(
    Shard& shard, std::vector<OutChunk>& chunks, std::uint64_t stamp, std::uint32_t depth,
    std::uint32_t sub, std::uint64_t watermark,
    std::vector<std::pair<std::uint32_t, core::DefinitionLoad>>& load_scratch) {
  const bool loads = publish_loads_.load(std::memory_order_relaxed);
  if (loads) {
    load_scratch.clear();
    shard.engine->collect_definition_loads(load_scratch);
    for (auto& [idx, load] : load_scratch) idx = shard.global_def[idx];  // local -> global
  }
  {
    const std::lock_guard lk(shard.out_mutex);
    if (!chunks.empty()) shard.out_dirty.store(true, std::memory_order_relaxed);
    for (OutChunk& chunk : chunks) shard.outbox.push_back(std::move(chunk));
    shard.published_stats = shard.engine->stats();
    if (loads) std::swap(shard.published_def_loads, load_scratch);
    shard.ck_stamp = stamp;
    shard.ck_depth = depth;
    shard.ck_sub = sub;
    // The run's newest fully-consumed arrival, which may precede the final
    // completion key when the run ended on a feedback item.
    if (watermark != 0) shard.watermark.store(watermark, std::memory_order_release);
  }
  shard.done_cv.notify_all();
  signal_cascade();
}

void ShardedEngineRuntime::worker_cascade_loop(Shard& shard) {
  std::vector<core::Emission> emissions;
  std::vector<OutChunk> chunks;  // accumulated, unpublished run output
  std::vector<std::pair<std::uint32_t, core::DefinitionLoad>> load_scratch;
  // Completion state withheld while a run of admissible items is in
  // progress: one publish + one coordinator wake per run instead of per
  // item. Flushed whenever the worker is about to block (park, control
  // handshake, stop) so no one ever waits on a withheld completion.
  bool ck_dirty = false;
  std::uint64_t ck_stamp = 0;
  std::uint32_t ck_depth = 0;
  std::uint32_t ck_sub = 0;
  std::uint64_t wm_run = 0;  // newest arrival stamp consumed in the run
  const auto flush_run = [&] {
    if (!ck_dirty) return;
    publish_cascade(shard, chunks, ck_stamp, ck_depth, ck_sub, wm_run, load_scratch);
    chunks.clear();
    ck_dirty = false;
    wm_run = 0;
  };

  enum class Action { kFeedback, kControl, kArrival };
  for (;;) {
    Action action{};
    FeedbackItem fb;
    WorkItem control;
    std::shared_ptr<const Batch> batch;
    std::uint32_t index = 0;

    // Claims the next admissible item across the two work sources, or
    // returns false (park on work_ec). Picks the head item with the
    // smaller sub-stamp key: arrivals act at (s, 0), feedback at
    // (s, depth >= 1), control items at (barrier-1, +inf). The coordinator
    // dispatches feedback in key order and the inbox is stamp-ordered, so
    // comparing the two heads yields the globally next item for this
    // shard. Arrivals are consumed one at a time through the ring's
    // consumer peek (the head item's `next` cursor advances in place).
    std::uint64_t blocked_gate = ~std::uint64_t{0};  // set by a gate-refused claim
    const auto try_claim = [&]() -> bool {
      blocked_gate = ~std::uint64_t{0};
      bool have = false;
      Action candidate{};
      std::uint64_t key_stamp = 0;
      std::uint32_t key_depth = 0;
      std::uint64_t gate = 0;  // closure frontier the item waits for
      WorkItem* head = shard.inbox.front();
      if (head != nullptr) {
        if (head->batch == nullptr) {
          candidate = Action::kControl;
          key_stamp = head->barrier - 1;
          key_depth = 0xffffffffu;
          gate = head->barrier - 1;
        } else {
          candidate = Action::kArrival;
          key_stamp = head->batch->stamps[head->indices[head->next]];
          key_depth = 0;
          gate = key_stamp - 1;
        }
        have = true;
      }
      {
        const std::lock_guard flk(shard.fb_mutex);
        if (!shard.feedback.empty()) {
          const FeedbackItem& f = shard.feedback.front();
          if (!have || f.stamp < key_stamp ||
              (f.stamp == key_stamp && f.depth < key_depth)) {
            // Sequenced by the coordinator; always admissible.
            fb = std::move(shard.feedback.front());
            shard.feedback.pop_front();
            action = Action::kFeedback;
            return true;
          }
        }
      }
      if (!have) return false;
      // Arrivals and control items wait on this shard's admission
      // frontier: every in-flight closure below theirs either finished
      // dispatching feedback or provably cannot reach this shard, so
      // nothing with a smaller sub-stamp can enter its queues anymore —
      // items already queued are ordered by the head comparison above.
      // (Gating is not needed when feedback provably cannot exist.) A
      // shard hosting no feedback-reachable definition never receives
      // feedback items, so it runs ahead of the *global* frontier — but
      // only by kCascadeRunahead stamps, bounding its outbox while the
      // coordinator trails. The seq_cst loads pair with the
      // coordinator's frontier stores through work_ec's fences, so
      // parking never misses an advance.
      if (feedback_possible_.load(std::memory_order_seq_cst)) {
        if (shard.cascade_reachable.load(std::memory_order_seq_cst)) {
          if (gate > shard.admitted.load(std::memory_order_seq_cst)) {
            blocked_gate = gate;  // frontier value that would admit the head
            return false;
          }
        } else if (gate > admitted_through_.load(std::memory_order_seq_cst) +
                              kCascadeRunahead) {
          // Global-frontier advances wake unreachable shards directly;
          // leave blocked_gate unset so per-shard stores skip the futex.
          return false;
        }
      }
      if (candidate == Action::kControl) {
        control = std::move(*head);
        shard.inbox.pop_front();
      } else {
        batch = head->batch;
        index = head->indices[head->next];
        if (++head->next == head->indices.size()) shard.inbox.pop_front();
      }
      action = candidate;
      return true;
    };

    bool stopping = false;
    for (;;) {
      if (shard.stop.load(std::memory_order_seq_cst)) {
        stopping = true;
        break;
      }
      if (try_claim()) break;
      // Out of admissible work: make the run's completions visible before
      // parking — the coordinator (or a peer) may be waiting on them, and
      // the resulting frontier advance may itself admit the next item.
      flush_run();
      // Publish what would unblock us before the pre-park recheck: the
      // coordinator's frontier store / parked_gate probe pair is the
      // mirror of this store / claim recheck, so a wake is never lost.
      shard.parked_gate.store(blocked_gate, std::memory_order_seq_cst);
      const std::uint32_t ticket = shard.work_ec.prepare_wait();
      if (shard.stop.load(std::memory_order_seq_cst)) {
        shard.work_ec.cancel_wait();
        stopping = true;
        break;
      }
      if (try_claim()) {
        shard.work_ec.cancel_wait();
        break;
      }
      shard.work_ec.wait(ticket);
    }
    if (stopping) {
      flush_run();
      // Arrivals and feedback are abandoned (the runtime is being
      // destroyed and the coordinator is stopping too), but pending
      // migration handshakes must still complete: a peer worker may
      // already be blocked in its receive-side ticket wait, which
      // only the matching send can release. Every worker drains its
      // control items on exit, so chains still resolve in decision
      // order exactly as they would have live.
      WorkItem leftover;
      while (shard.inbox.try_pop(leftover)) {
        if (leftover.batch == nullptr) handle_control(shard, leftover, load_scratch);
        leftover = WorkItem{};
      }
      return;
    }
    if (options_.stall_hook) options_.stall_hook(shard.index);

    if (action == Action::kControl) {
      // Control handshakes block on a peer and peers may block on this
      // run's completions: publish before entering.
      flush_run();
      handle_control(shard, control, load_scratch);
      continue;
    }
    if (action == Action::kFeedback) {
      emissions.clear();
      shard.engine->observe(fb.entity, fb.now, emissions);
      if (!emissions.empty()) {
        for (core::Emission& em : emissions) em.def = shard.global_def[em.def];
        chunks.push_back(OutChunk{fb.stamp, std::move(emissions), fb.depth, fb.sub, fb.now});
        emissions = {};
      }
      ck_stamp = fb.stamp;
      ck_depth = fb.depth;
      ck_sub = fb.sub;
      ck_dirty = true;
      continue;
    }
    // Arrival: observed one at a time so the completion key can advance
    // between consecutive stamps; the publish itself is deferred to the
    // end of the admissible run.
    emissions.clear();
    const std::shared_ptr<const core::Entity> entity(batch, &batch->entities[index]);
    const std::uint64_t stamp = batch->stamps[index];
    shard.engine->observe(entity, batch->nows[index], emissions);
    if (!emissions.empty()) {
      for (core::Emission& em : emissions) em.def = shard.global_def[em.def];
      chunks.push_back(OutChunk{stamp, std::move(emissions), 0, 0, batch->nows[index]});
      emissions = {};
    }
    ck_stamp = stamp;
    ck_depth = 0;
    ck_sub = 0;
    ck_dirty = true;
    wm_run = stamp;
    shard.queued_arrivals.fetch_sub(1, std::memory_order_seq_cst);
    shard.space_ec.notify_all();
  }
}

void ShardedEngineRuntime::signal_cascade() {
  cascade_signal_.fetch_add(1, std::memory_order_seq_cst);
  cascade_ec_.notify_all();
}

bool ShardedEngineRuntime::ck_reached_all(std::uint64_t mask, std::uint64_t stamp,
                                          std::uint32_t depth, std::uint32_t sub) {
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    Shard& shard = *shards_[static_cast<std::size_t>(std::countr_zero(m))];
    const std::lock_guard lk(shard.out_mutex);
    if (shard.ck_stamp != stamp) {
      if (shard.ck_stamp < stamp) return false;
      continue;
    }
    if (shard.ck_depth != depth) {
      if (shard.ck_depth < depth) return false;
      continue;
    }
    if (shard.ck_sub < sub) return false;
  }
  return true;
}

void ShardedEngineRuntime::build_cascade_graph() {
  cascade_graph_built_ = true;
  const auto defs = static_cast<std::uint32_t>(def_specs_.size());
  // Type-level consumption edges: definition d consumes a group's output
  // type when one of its slots filters on instances of that type (or on
  // anything). Producers are groups — one event type each — so reach is
  // computed per group and shared by the group's definitions.
  std::vector<std::vector<std::uint32_t>> consumers(groups_.size());
  std::vector<std::uint32_t> wildcard;  // defs with kAny slots: consume every type
  for (std::uint32_t d = 0; d < defs; ++d) {
    for (const core::SlotSpec& slot : def_specs_[d].slots) {
      const core::FilterSignature sig = slot.filter.signature();
      if (sig.kind == core::FilterSignature::Kind::kEventType) {
        if (const auto it = type_group_.find(sig.key); it != type_group_.end()) {
          consumers[it->second].push_back(d);
        }
      } else if (sig.kind == core::FilterSignature::Kind::kAny) {
        wildcard.push_back(d);
      }
    }
  }
  // reach[g]: shards hosting any definition reachable from the group's
  // output type in one or more cascade steps. Fixed-point iteration
  // handles cascade cycles (the engine's depth cap bounds those at run
  // time, not here); it terminates because masks only ever grow.
  std::vector<std::uint64_t> reach(groups_.size(), 0);
  for (bool changed = true; changed;) {
    changed = false;
    for (std::uint32_t g = 0; g < groups_.size(); ++g) {
      std::uint64_t m = reach[g];
      for (const std::uint32_t d : consumers[g]) {
        m |= std::uint64_t{1} << def_shard_[d];
        m |= reach[def_group_[d]];
      }
      for (const std::uint32_t d : wildcard) {
        m |= std::uint64_t{1} << def_shard_[d];
        m |= reach[def_group_[d]];
      }
      if (m != reach[g]) {
        reach[g] = m;
        changed = true;
      }
    }
  }
  cascade_future_.assign(defs, 0);
  for (std::uint32_t d = 0; d < defs; ++d) cascade_future_[d] = reach[def_group_[d]];
}

void ShardedEngineRuntime::cascade_loop() {
  const std::size_t pipeline = std::max<std::uint32_t>(1, options_.cascade_pipeline);
  const bool hold_whole = options_.ordering == OrderingTier::kGlobalTotalOrder;
  const bool per_def = options_.ordering == OrderingTier::kPerDefinitionOrder;

  // One in-flight closure. Lifecycle: activated (awaiting its arrival
  // chunks) -> alternating [renumber+dispatch a level / await its
  // consumption] -> finished (the terminal level was renumbered in the
  // same pass that learned no further dispatch happens, so "finished
  // dispatching" and "closure complete" coincide; the admission
  // frontiers may pass it) -> merged in stamp order. `level` buffers
  // gathered child emissions tagged with their parent's sub; `closure`
  // holds renumbered emissions not yet released to the merged stream.
  struct Active {
    Pending p{};
    std::uint32_t depth = 0;       ///< dispatched level awaiting consumption
    std::uint32_t next_level = 1;  ///< closure level the gathered children form
    bool awaiting_arrival = true;
    bool finished = false;
    std::uint64_t remaining = 0;  ///< shards future feedback could still reach
    std::uint64_t reingested = 0;
    std::uint64_t truncated = 0;
    std::vector<std::uint8_t> touched;    ///< shards the awaited level went to
    std::vector<std::uint32_t> last_sub;  ///< last sub dispatched per shard
    std::vector<core::Emission> level;
    std::vector<core::Emission> closure;
    time_model::TimePoint now{};
  };
  std::deque<Active> active;  // stamp order; mirrors pending_'s prefix
  std::vector<core::SlotRoute> routes;
  std::vector<std::vector<FeedbackItem>> fb_batch(shards_.size());
  std::vector<std::uint64_t> cascade_seq;  // coordinator-owned per-group counters
  std::vector<std::uint64_t> adm(shards_.size(), 0);
  const auto by_parent_then_def = [](const core::Emission& a, const core::Emission& b) {
    return a.emit_index != b.emit_index ? a.emit_index < b.emit_index : a.def < b.def;
  };

  const auto find_active = [&](std::uint64_t stamp) -> Active* {
    for (Active& a : active) {
      if (a.p.stamp == stamp) return &a;
    }
    return nullptr;
  };

  // Pops every outbox chunk belonging to an in-flight closure into that
  // closure's level buffer. Per-shard outboxes are sub-stamp ordered, so
  // stopping at the first chunk of a not-yet-activated stamp preserves
  // order — that chunk is picked up after its closure activates.
  const auto sweep_shard = [&](Shard& shard) {
    // Quiet-shard fast path: nothing published since the last drain, so
    // skip the mutex. The flag only clears when the outbox empties —
    // chunks held back for a not-yet-activated stamp keep it set, since
    // a later activate() (not a publish) is what makes them consumable.
    if (!shard.out_dirty.load(std::memory_order_relaxed)) return;
    const std::lock_guard lk(shard.out_mutex);
    while (!shard.outbox.empty()) {
      OutChunk& front = shard.outbox.front();
      Active* a = find_active(front.stamp);
      if (a == nullptr) break;
      a->now = front.now;
      for (core::Emission& em : front.emissions) {
        // Tag with the source item's sub so level order (parent order,
        // then definition) can be restored before renumbering.
        em.emit_index = front.sub;
        a->level.push_back(std::move(em));
      }
      shard.outbox.pop_front();
    }
    if (shard.outbox.empty()) shard.out_dirty.store(false, std::memory_order_relaxed);
  };

  const auto activate = [&]() -> bool {
    // Steady-state fast path: a full window cannot activate anything, so
    // skip the merge_mutex_ section (the common case on idle wakes).
    if (active.size() >= pipeline) return false;
    bool any = false;
    {
      const std::lock_guard lk(merge_mutex_);
      while (active.size() < pipeline && active.size() < pending_.size()) {
        Active a;
        a.p = pending_[active.size()];
        a.remaining = a.p.future;
        a.touched.assign(shards_.size(), 0);
        a.last_sub.assign(shards_.size(), 0);
        active.push_back(std::move(a));
        any = true;
      }
    }
    if (active.size() > closures_in_flight_max_.load(std::memory_order_relaxed)) {
      closures_in_flight_max_.store(active.size(), std::memory_order_relaxed);
    }
    return any;
  };

  // Tier-relaxed release: stream `a`'s renumbered emissions from `from`
  // on without waiting for the whole closure. Unordered releases from any
  // in-flight closure as produced; per-definition order only from the
  // oldest (younger closures buffer until they reach the front at merge,
  // keeping each definition's stream stamp- and seq-ordered). The
  // watermark stays clamped below the oldest in-flight closure, so early
  // releases always carry stamps above it.
  const auto release_tail = [&](Active& a, std::size_t from) {
    if (hold_whole) return;
    if (per_def && &a != &active.front()) return;
    if (from >= a.closure.size()) return;
    {
      const std::lock_guard lk(merge_mutex_);
      for (std::size_t k = from; k < a.closure.size(); ++k) {
        cascade_out_.push_back(
            TaggedInstance{a.p.stamp, a.closure[k].def, std::move(a.closure[k].instance)});
      }
      instances_ += a.closure.size() - from;
    }
    a.closure.resize(from);
  };

  // Consumes `a`'s fully-gathered level: restore global level order,
  // renumber, and either finish the closure (empty / inert / depth-capped
  // level) or dispatch it as per-shard feedback batches.
  const auto advance = [&](Active& a) {
    std::stable_sort(a.level.begin(), a.level.end(), by_parent_then_def);
    const std::uint32_t depth = a.next_level;
    const std::size_t base = a.closure.size();
    for (std::size_t k = 0; k < a.level.size(); ++k) {
      core::Emission& em = a.level[k];
      em.depth = depth;
      em.emit_index = static_cast<std::uint32_t>(k);
      // Renumber the instance key's sequence from coordinator-owned
      // per-group counters, in closure order, *before* dispatch (children
      // observe the renumbered parent). Identity while a group lives on
      // one shard — each group's engine numbers its own emissions in this
      // exact order — and with a split group it restores the sequential
      // numbering the two sub-engines can no longer agree on, which is
      // what makes split_group legal in cascade mode.
      const std::uint32_t g = def_group_[em.def];
      if (g >= cascade_seq.size()) cascade_seq.resize(g + 1, 0);
      em.instance.key.seq = cascade_seq[g]++;
      a.closure.push_back(std::move(em));
    }
    a.level.clear();
    a.awaiting_arrival = false;
    if (base == a.closure.size()) {  // empty level: closure complete
      a.remaining = 0;
      a.finished = true;
      return;
    }
    if (depth >= options_.engine.max_cascade_depth) {
      // Cycle guard: the cap level is delivered but never re-ingested;
      // count the suppressed re-ingestions exactly as the engine does.
      // Known without another roundtrip, so the closure finishes here.
      for (std::size_t k = base; k < a.closure.size(); ++k) {
        core::Entity fed(std::move(a.closure[k].instance));
        if (cascade_routes_.target_mask(fed, a.p.stamp, routes) != 0) ++a.truncated;
        a.closure[k].instance = std::move(fed).extract_instance();
      }
      a.remaining = 0;
      a.finished = true;
      release_tail(a, base);
      return;
    }
    // Re-ingest the level as feedback, batched per shard (one queue splice
    // + one wake per recipient, not per instance), and shrink the
    // closure's downstream reach to what the dispatched types can still
    // produce — shards outside it may admit younger arrivals immediately.
    std::fill(a.touched.begin(), a.touched.end(), 0);
    std::uint64_t next_remaining = 0;
    bool any_dispatch = false;
    for (std::size_t k = base; k < a.closure.size(); ++k) {
      core::Emission& em = a.closure[k];
      core::Entity fed(std::move(em.instance));
      const std::uint64_t mask = cascade_routes_.target_mask(fed, a.p.stamp, routes);
      if (mask == 0) {  // inert: no shard hosts a candidate definition
        em.instance = std::move(fed).extract_instance();
        continue;
      }
      ++a.reingested;
      any_dispatch = true;
      if (a.p.future == ~std::uint64_t{0}) {
        next_remaining = ~std::uint64_t{0};  // post-migration: the table is stale
      } else {
        next_remaining |= cascade_future_[em.def];
      }
      const auto shared = std::make_shared<const core::Entity>(std::move(fed));
      em.instance = shared->instance();  // the merged stream keeps its copy
      for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        const auto s = static_cast<std::size_t>(std::countr_zero(m));
        fb_batch[s].push_back(FeedbackItem{a.p.stamp, depth, em.emit_index, shared, a.now});
        a.touched[s] = 1;
        a.last_sub[s] = em.emit_index;
      }
    }
    if (!any_dispatch) {  // whole level inert: no roundtrip, closure complete
      a.remaining = 0;
      a.finished = true;
      release_tail(a, base);
      return;
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (fb_batch[s].empty()) continue;
      {
        const std::lock_guard lk(shards_[s]->fb_mutex);
        for (FeedbackItem& item : fb_batch[s]) {
          shards_[s]->feedback.push_back(std::move(item));
        }
      }
      fb_batch[s].clear();
      shards_[s]->work_ec.notify_all();
      cascade_feedback_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    a.remaining = next_remaining;
    a.depth = depth;
    a.next_level = depth + 1;
    release_tail(a, base);
  };

  // Steps `a` once if its awaited level has been fully consumed: check
  // the recipients' consumption clocks, re-sweep exactly those shards'
  // outboxes (the level's children are complete once the clocks passed),
  // then advance. A shard whose clock ran ahead to a younger admitted
  // stamp counts as passed (ck_reached_all is lexicographic).
  const auto try_step = [&](Active& a) -> bool {
    if (a.finished) return false;
    if (a.awaiting_arrival) {
      if (!ck_reached_all(a.p.mask, a.p.stamp, 0, 0)) return false;
      for (std::uint64_t m = a.p.mask; m != 0; m &= m - 1) {
        sweep_shard(*shards_[static_cast<std::size_t>(std::countr_zero(m))]);
      }
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (a.touched[s] != 0 &&
            !ck_reached_all(std::uint64_t{1} << s, a.p.stamp, a.depth, a.last_sub[s])) {
          return false;
        }
      }
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (a.touched[s] != 0) sweep_shard(*shards_[s]);
      }
    }
    advance(a);
    return true;
  };

  // Merges the oldest closure once finished: whole closures always leave
  // in stamp order (the relaxed tiers released their emissions earlier,
  // so only the withheld tail moves here), the watermark advances to just
  // below the new oldest unclosed stamp, and routing versions nothing
  // in flight can need are retired.
  const auto merge_front = [&]() -> bool {
    if (active.empty() || !active.front().finished) return false;
    Active a = std::move(active.front());
    active.pop_front();
    bool drained = false;
    {
      const std::lock_guard lk(merge_mutex_);
      for (core::Emission& em : a.closure) {
        cascade_out_.push_back(TaggedInstance{a.p.stamp, em.def, std::move(em.instance)});
      }
      instances_ += a.closure.size();
      cascade_reingested_ += a.reingested;
      cascade_truncated_ += a.truncated;
      pending_.pop_front();
      if (per_def && !active.empty()) {
        // The new oldest closure may stream from here on: flush what it
        // withheld while it was not the front.
        Active& nf = active.front();
        for (core::Emission& em : nf.closure) {
          cascade_out_.push_back(TaggedInstance{nf.p.stamp, em.def, std::move(em.instance)});
        }
        instances_ += nf.closure.size();
        nf.closure.clear();
      }
      low_watermark_ = pending_.empty() ? last_stamp_assigned_ : pending_.front().stamp - 1;
      drained = pending_.empty();
    }
    // flush() parks on merged_cv_ until the pending frontier empties;
    // notifying on every merge would wake it once per closure just to
    // re-check a predicate that can only pass at quiescence.
    if (drained) merged_cv_.notify_all();
    cascade_routes_.retire_below(a.p.stamp + 1);
    return true;
  };

  // Recomputes the admission frontiers from the in-flight set. Base: the
  // stamp just below the first not-yet-activated arrival (everything
  // activated and finished imposes no constraint). Global frontier: below
  // the first unfinished closure — the gate for shards outside the
  // cascade graph, which run ahead of it by kCascadeRunahead. Per-shard
  // frontier: below the first unfinished closure whose remaining
  // downstream reach includes the shard — reachable shards outside every
  // in-flight closure's reach admit younger arrivals immediately, which
  // is where the closure overlap comes from.
  const auto publish_frontiers = [&] {
    std::uint64_t base;
    {
      const std::lock_guard lk(merge_mutex_);
      base = active.size() < pending_.size() ? pending_[active.size()].stamp - 1
                                             : last_stamp_assigned_;
    }
    std::uint64_t global = base;
    for (const Active& a : active) {
      if (!a.finished) {
        global = a.p.stamp - 1;
        break;
      }
    }
    bool global_advanced = false;
    if (global > admitted_through_.load(std::memory_order_relaxed)) {
      // The seq_cst frontier store pairs with the workers' gate load
      // through work_ec's registration/probe fences — no missed wakeup.
      admitted_through_.store(global, std::memory_order_seq_cst);
      global_advanced = true;
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) adm[s] = base;
    for (const Active& a : active) {
      if (a.finished) continue;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if ((a.remaining >> s) & 1 && a.p.stamp - 1 < adm[s]) adm[s] = a.p.stamp - 1;
      }
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      if (adm[s] > shard.admitted.load(std::memory_order_relaxed)) {
        shard.admitted.store(adm[s], std::memory_order_seq_cst);
        // Skip the futex unless this advance reaches the gate the worker
        // parked on (most closure finishes admit exactly one arrival,
        // on one shard — waking the other workers just burns switches).
        if (adm[s] >= shard.parked_gate.load(std::memory_order_seq_cst)) {
          shard.work_ec.notify_all();
        }
      }
    }
    // The global frontier only gates cascade-unreachable shards (the
    // reachable ones gate on their per-shard store above) — waking every
    // worker here would cost a futex round per parked worker per closure.
    if (global_advanced) {
      for (auto& sp : shards_) {
        if (!sp->cascade_reachable.load(std::memory_order_seq_cst)) {
          sp->work_ec.notify_all();
        }
      }
    }
  };

  std::vector<CascadeReroute> reroute_scratch;
  for (;;) {
    if (cascade_stop_.load(std::memory_order_seq_cst)) return;
    // Snapshot before the pass: anything published after this load bumps
    // the counter past `seen`, so a no-progress pass either observes it
    // or skips the park below.
    const std::uint64_t seen = cascade_signal_.load(std::memory_order_seq_cst);
    if (reroutes_pending_.load(std::memory_order_acquire) != 0) {
      reroute_scratch.clear();
      {
        const std::lock_guard lk(cascade_mutex_);
        while (!reroutes_.empty()) {
          reroute_scratch.push_back(std::move(reroutes_.front()));
          reroutes_.pop_front();
        }
        reroutes_pending_.store(0, std::memory_order_relaxed);
      }
      // Eager: each version is effective from its barrier stamp onward, so
      // in-flight pre-barrier closures keep resolving through the older
      // placement and the flip needs no frontier rendezvous.
      for (const CascadeReroute& r : reroute_scratch) {
        cascade_routes_.publish(r.barrier, r.defs, r.to);
      }
    }
    bool progressed = activate();
    for (auto& sp : shards_) sweep_shard(*sp);
    // Renumber+dispatch strictly in stamp order: step the oldest
    // unfinished closure as far as it goes; younger closures only have
    // their chunks swept and buffered until the prefix ahead of them has
    // finished, which keeps per-group sequence numbering — and therefore
    // the global tier's merged stream — byte-identical to the sequential
    // engine. The overlap is in the *shards*: while this closure waits on
    // its recipients, shards outside its remaining reach are already
    // consuming younger arrivals (see publish_frontiers), whose chunks
    // land here ready to renumber without further roundtrips.
    for (Active& a : active) {
      if (a.finished) continue;
      while (try_step(a)) progressed = true;
      if (!a.finished) break;
    }
    while (merge_front()) progressed = true;
    // The frontiers are pure functions of the in-flight set: a pass that
    // made no progress cannot have moved them, so an idle wake skips the
    // merge_mutex_ section and the store/notify sweep entirely.
    if (progressed) {
      publish_frontiers();
      continue;
    }
    // Idle: park on the event count unless something signalled since the
    // snapshot (the registration/probe fences make the recheck sound).
    const std::uint32_t ticket = cascade_ec_.prepare_wait();
    if (cascade_stop_.load(std::memory_order_seq_cst) ||
        cascade_signal_.load(std::memory_order_seq_cst) != seen) {
      cascade_ec_.cancel_wait();
      continue;
    }
    cascade_ec_.wait(ticket);
  }
}

void ShardedEngineRuntime::emit_to(std::vector<core::EventInstance>* plain,
                                   std::vector<TaggedInstance>* tagged, std::uint64_t stamp,
                                   core::Emission&& em) {
  if (tagged != nullptr) {
    tagged->push_back(TaggedInstance{stamp, em.def, std::move(em.instance)});
  } else {
    plain->push_back(std::move(em.instance));
  }
}

void ShardedEngineRuntime::drain_ready_locked(std::vector<core::EventInstance>* plain,
                                              std::vector<TaggedInstance>* tagged) {
  while (!pending_.empty()) {
    const Pending p = pending_.front();
    bool ready = true;
    for (std::uint64_t m = p.mask; m != 0; m &= m - 1) {
      const auto s = static_cast<std::size_t>(std::countr_zero(m));
      if (shards_[s]->watermark.load(std::memory_order_acquire) < p.stamp) {
        ready = false;
        break;
      }
    }
    if (!ready) return;  // stream order: nothing later may overtake

    gather_scratch_.clear();
    for (std::uint64_t m = p.mask; m != 0; m &= m - 1) {
      const auto s = static_cast<std::size_t>(std::countr_zero(m));
      Shard& shard = *shards_[s];
      const std::lock_guard lk(shard.out_mutex);
      if (!shard.outbox.empty() && shard.outbox.front().stamp == p.stamp) {
        OutChunk chunk = std::move(shard.outbox.front());
        shard.outbox.pop_front();
        for (core::Emission& em : chunk.emissions) gather_scratch_.push_back(std::move(em));
      }
    }
    // Restore the sequential engine's within-arrival order: ascending
    // global definition index, stable so one definition's multiple
    // bindings keep their enumeration order. (A single shard's chunk is
    // ascending in *local* registration order, which after a migration is
    // no longer a subsequence of global order — so sort unconditionally.)
    if (gather_scratch_.size() > 1) {
      std::stable_sort(gather_scratch_.begin(), gather_scratch_.end(),
                       [](const core::Emission& a, const core::Emission& b) {
                         return a.def < b.def;
                       });
    }
    for (core::Emission& em : gather_scratch_) {
      // Renumber each instance with a merge-side per-group (= per event
      // type) counter. With the group unsplit this is the identity: the
      // release order above *is* the engine's emission order for the
      // type, so the engine-assigned seq already equals this counter.
      // With the group split across shards it restores exactly the
      // sequence a single engine would have assigned, keeping the global
      // tier byte-identical to the sequential reference across splits.
      const std::uint32_t g = def_group_[em.def];
      if (g >= group_seq_.size()) group_seq_.resize(g + 1, 0);
      em.instance.key.seq = group_seq_[g]++;
      emit_to(plain, tagged, p.stamp, std::move(em));
      ++instances_;
    }
    low_watermark_ = p.stamp;
    pending_.pop_front();
  }
}

void ShardedEngineRuntime::drain_relaxed_locked(std::vector<core::EventInstance>* plain,
                                                std::vector<TaggedInstance>* tagged) {
  const bool perdef = options_.ordering == OrderingTier::kPerDefinitionOrder;
  // Sweep every shard's outbox to a fixpoint. Per-definition order gates
  // a migration destination's post-barrier chunks on release holds; a
  // hold clears once the source worker has drained past the barrier
  // (sent_through) *and* everything it published before the barrier has
  // been released here (outbox front empty or past the barrier). The
  // clearing inputs are snapshotted once per pass — sent_through strictly
  // before the outbox front, so a front that moved past the barrier after
  // its sent_through was read can only make the check conservatively
  // *hold* longer, never release early. Each pass that releases anything
  // may unblock another shard's hold, hence the fixpoint; it terminates
  // because holds only clear monotonically and outboxes only shrink while
  // merge_mutex_ is held (workers still publish, but every published
  // chunk is also releasable in a later poll).
  bool progress = true;
  while (progress) {
    progress = false;
    if (perdef) {
      sent_snap_scratch_.resize(shards_.size());
      front_snap_scratch_.resize(shards_.size());
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        sent_snap_scratch_[s] = shards_[s]->sent_through.load(std::memory_order_seq_cst);
        const std::lock_guard lk(shards_[s]->out_mutex);
        front_snap_scratch_[s] =
            shards_[s]->outbox.empty() ? 0 : shards_[s]->outbox.front().stamp;
      }
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      std::deque<ReleaseHold>& holds = shard_holds_[s];
      for (;;) {
        OutChunk chunk;
        {
          const std::lock_guard lk(shard.out_mutex);
          if (shard.outbox.empty()) break;
          const std::uint64_t t = shard.outbox.front().stamp;
          bool held = false;
          while (perdef && !holds.empty() && t >= holds.front().barrier) {
            const ReleaseHold h = holds.front();
            if (sent_snap_scratch_[h.from] >= h.barrier &&
                (front_snap_scratch_[h.from] == 0 ||
                 front_snap_scratch_[h.from] >= h.barrier)) {
              holds.pop_front();  // the source's pre-barrier stream is out
              continue;
            }
            held = true;
            break;
          }
          if (held) break;
          chunk = std::move(shard.outbox.front());
          shard.outbox.pop_front();
        }
        for (core::Emission& em : chunk.emissions) {
          emit_to(plain, tagged, chunk.stamp, std::move(em));
          ++instances_;
        }
        progress = true;
      }
    }
  }

  // Advance the low watermark. The pending frontier (stamps every
  // recipient shard's watermark has passed) is computed *after* the
  // sweep and clamped below any chunk still unreleased — one published
  // after its shard was swept, or fenced by a hold. Reading a shard's
  // watermark and its remaining outbox front under one out_mutex section
  // makes the clamp sound: chunks are pushed before the watermark store
  // (publish_work), so a stamp counted into the frontier either has its
  // chunks already released or still visible in the front we clamp by.
  std::uint64_t clamp = ~std::uint64_t{0};
  front_snap_scratch_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const std::lock_guard lk(shard.out_mutex);
    front_snap_scratch_[s] = shard.watermark.load(std::memory_order_acquire);
    if (!shard.outbox.empty() && shard.outbox.front().stamp != 0) {
      clamp = std::min(clamp, shard.outbox.front().stamp - 1);
    }
  }
  while (!pending_.empty()) {
    const Pending p = pending_.front();
    bool done = true;
    for (std::uint64_t m = p.mask; m != 0; m &= m - 1) {
      if (front_snap_scratch_[static_cast<std::size_t>(std::countr_zero(m))] < p.stamp) {
        done = false;
        break;
      }
    }
    if (!done) break;
    relaxed_frontier_ = p.stamp;
    pending_.pop_front();
  }
  low_watermark_ = std::max(low_watermark_, std::min(relaxed_frontier_, clamp));
}

void ShardedEngineRuntime::poll_into(std::vector<core::EventInstance>* plain,
                                     std::vector<TaggedInstance>* tagged) {
  const std::lock_guard lk(merge_mutex_);
  if (options_.cascade) {
    // The coordinator merges autonomously as closures complete; poll just
    // takes what has been released so far.
    if (tagged != nullptr) {
      if (tagged->empty()) {
        tagged->swap(cascade_out_);
      } else {
        tagged->insert(tagged->end(), std::make_move_iterator(cascade_out_.begin()),
                       std::make_move_iterator(cascade_out_.end()));
        cascade_out_.clear();
      }
    } else {
      plain->reserve(plain->size() + cascade_out_.size());
      for (TaggedInstance& t : cascade_out_) plain->push_back(std::move(t.instance));
      cascade_out_.clear();
    }
    return;
  }
  if (options_.ordering == OrderingTier::kGlobalTotalOrder) {
    drain_ready_locked(plain, tagged);
  } else {
    drain_relaxed_locked(plain, tagged);
  }
}

void ShardedEngineRuntime::flush_into(std::vector<core::EventInstance>* plain,
                                      std::vector<TaggedInstance>* tagged) {
  if (options_.cascade) {
    // Closed stamps leave pending_ only after their full cascade closure
    // has been merged, so an empty frontier means quiescence. A stopped
    // runtime abandons unclosed stamps — return what was merged.
    std::unique_lock lk(merge_mutex_);
    merged_cv_.wait(lk, [&] {
      return pending_.empty() || shutdown_.load(std::memory_order_acquire);
    });
    lk.unlock();
    poll_into(plain, tagged);
    return;
  }
  std::vector<std::uint64_t> targets(shards_.size(), 0);
  std::vector<std::uint64_t> ctl_targets(shards_.size(), 0);
  // Per-definition order: trailing migration controls must finish too —
  // an unprocessed send leaves its destination's chunks fenced behind a
  // hold that only the send's sent_through store can clear.
  const bool wait_ctl = options_.ordering == OrderingTier::kPerDefinitionOrder;
  {
    const std::lock_guard lk(ingest_mutex_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      targets[s] = shards_[s]->last_routed;
      ctl_targets[s] = shards_[s]->ctl_pushed;
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::unique_lock lk(shard.out_mutex);
    // Stop-aware: a shut-down runtime abandons unpushed work, so the
    // watermark may never reach a stamp that was routed but dropped.
    shard.done_cv.wait(lk, [&] {
      if (shard.stop.load(std::memory_order_acquire)) return true;
      if (shard.watermark.load(std::memory_order_acquire) < targets[s]) return false;
      // >=: recovery replays can complete one control more than once.
      return !wait_ctl || shard.ctl_done.load(std::memory_order_seq_cst) >= ctl_targets[s];
    });
  }
  poll_into(plain, tagged);
}

std::vector<core::EventInstance> ShardedEngineRuntime::poll() {
  std::vector<core::EventInstance> out;
  poll_into(&out, nullptr);
  return out;
}

std::vector<TaggedInstance> ShardedEngineRuntime::poll_tagged() {
  std::vector<TaggedInstance> out;
  poll_into(nullptr, &out);
  return out;
}

std::vector<core::EventInstance> ShardedEngineRuntime::flush() {
  std::vector<core::EventInstance> out;
  flush_into(&out, nullptr);
  return out;
}

std::vector<TaggedInstance> ShardedEngineRuntime::flush_tagged() {
  std::vector<TaggedInstance> out;
  flush_into(nullptr, &out);
  return out;
}

std::uint64_t ShardedEngineRuntime::low_watermark() const {
  const std::lock_guard lk(merge_mutex_);
  return low_watermark_;
}

RuntimeStats ShardedEngineRuntime::stats() const {
  RuntimeStats s;
  for (const auto& shard : shards_) {
    const std::lock_guard lk(shard->out_mutex);
    s.engine += shard->published_stats;
  }
  for (const auto& shard : shards_) {
    const std::uint64_t mq = shard->max_queued.load(std::memory_order_relaxed);
    if (mq > s.max_inbox) s.max_inbox = mq;
  }
  {
    const std::lock_guard lk(ingest_mutex_);
    s.migrations = migrations_;
    s.rebalance_passes = rebalance_passes_;
    s.splits = splits_;
    s.group_merges = group_merges_;
    s.spillover_skipped_indivisible = spillover_skipped_;
  }
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.crashes = crashes_.load(std::memory_order_relaxed);
  s.recoveries = recoveries_.load(std::memory_order_relaxed);
  s.replayed = replayed_.load(std::memory_order_relaxed);
  s.closures_in_flight_max = closures_in_flight_max_.load(std::memory_order_relaxed);
  s.cascade_feedback_batches = cascade_feedback_batches_.load(std::memory_order_relaxed);
  const std::lock_guard lk(merge_mutex_);
  s.arrivals = arrivals_;
  s.deliveries = deliveries_;
  s.replicated = replicated_;
  s.dropped = dropped_;
  s.instances = instances_;
  s.cascade_reingested = cascade_reingested_;
  s.cascade_truncated = cascade_truncated_;
  return s;
}

std::vector<std::uint64_t> ShardedEngineRuntime::shard_arrival_loads() const {
  const std::lock_guard lk(ingest_mutex_);
  return shard_routed_;
}

std::size_t ShardedEngineRuntime::shard_of(std::size_t def_index) const {
  const std::lock_guard lk(ingest_mutex_);
  return def_shard_.at(def_index);
}

std::size_t ShardedEngineRuntime::group_of(std::size_t def_index) const {
  const std::lock_guard lk(ingest_mutex_);
  return def_group_.at(def_index);
}

std::size_t ShardedEngineRuntime::group_count() const {
  const std::lock_guard lk(ingest_mutex_);
  return groups_.size();
}

}  // namespace stem::runtime
